// The exponential separation, live (Theorem 1.2): the SAME language, decided
// two ways —
//   * as a locally checkable proof ("distributed NP"): every node must
//     receive Theta(n^2) bits of advice;
//   * as a one-round Arthur-Merlin interaction: O(log n) bits per node.
// The language is Dumbbell Symmetry (Definition 5), whose LCP hardness is
// inherited from Goos-Suomela's Omega(n^2) bound.
//
//   $ ./separation_demo [side]
#include <cstdio>
#include <cstdlib>

#include "core/dsym_dam.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "pls/sym_lcp.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dip;
  std::size_t side = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 12;
  const std::size_t radius = 2;
  util::Rng rng(11);

  graph::Graph f = graph::randomConnected(side, side / 2, rng);
  graph::Graph g = graph::dsymInstance(f, radius);
  graph::DSymLayout layout = graph::dsymLayout(side, radius);
  std::printf("instance: dumbbell-symmetry graph, N = %zu vertices\n", layout.numVertices);
  std::printf("membership (ground truth): %s\n\n",
              graph::isDSymInstance(g, layout) ? "YES" : "NO");

  // Route 1: distributed NP. The known-optimal scheme ships the whole
  // adjacency matrix to every node.
  std::size_t lcpBits = pls::SymLcp::adviceBitsPerNode(layout.numVertices);
  std::printf("route 1 (no interaction): %zu bits of advice per node\n", lcpBits);

  // Route 2: one Arthur-Merlin round.
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{layout.numVertices}, 3);
  core::DSymDamProtocol protocol(
      layout, hash::LinearHashFamily(
                  util::findPrimeInRange(util::BigUInt{10} * n3,
                                         util::BigUInt{100} * n3, rng),
                  static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices));
  core::HonestDSymProver prover(layout, protocol.family());
  core::RunResult result = protocol.run(g, prover, rng);
  std::printf("route 2 (one AM round):   %zu bits per node, verdict: %s\n",
              result.transcript.maxPerNodeBits(),
              result.accepted ? "ACCEPT" : "reject");

  std::printf("\nseparation at this size: %.1fx;  at side = 512 it is > 5000x —\n",
              static_cast<double>(lcpBits) /
                  static_cast<double>(result.transcript.maxPerNodeBits()));
  std::printf("the gap is exponential (log n vs n^2) because the prover only\n"
              "has to beat a hash that was chosen AFTER the instance was fixed.\n");
  return result.accepted ? 0 : 1;
}
