// Model zoo: the same claim verified under three trust models.
//
// A 14-node network wants certainty that its topology is symmetric. Three
// verification technologies exist (Section 1.2 of the paper):
//   1. LCP  — the prover leaves every node a full written proof;
//   2. RPLS — same proof, but neighbors spot-check each other with
//             fingerprints instead of re-reading everything;
//   3. dMAM — nobody ever holds the proof: a short interactive challenge
//             makes lying statistically impossible.
//
//   $ ./model_zoo
#include <cstdio>

#include "core/sym_dmam.hpp"
#include "graph/generators.hpp"
#include "pls/sym_lcp.hpp"
#include "pls/sym_rpls.hpp"
#include "util/rng.hpp"

int main() {
  using namespace dip;
  const std::size_t n = 14;
  util::Rng rng(31337);
  graph::Graph network = graph::randomSymmetricConnected(n, rng);
  std::printf("claim: 'this %zu-node network is symmetric'\n\n", n);

  // 1. LCP.
  auto advice = pls::SymLcp::honestAdvice(network);
  std::vector<pls::SymLcpAdvice> labels(n, *advice);
  bool lcpOk = pls::SymLcp::accepts(network, labels);
  std::printf("[LCP ] verdict: %-6s  advice: %5zu bits/node, neighbor exchange: %zu "
              "bits/edge\n",
              lcpOk ? "accept" : "reject", pls::SymLcp::adviceBitsPerNode(n),
              pls::SymLcp::adviceBitsPerNode(n));

  // 2. RPLS.
  util::Rng setup(31338);
  pls::SymRpls rpls = pls::makeSymRpls(n, setup);
  bool rplsOk = rpls.accepts(network, labels, rng);
  pls::SymRplsCosts rplsCosts = rpls.costs(n);
  std::printf("[RPLS] verdict: %-6s  advice: %5zu bits/node, neighbor exchange: %zu "
              "bits/edge\n",
              rplsOk ? "accept" : "reject", rplsCosts.adviceBitsPerNode,
              rplsCosts.verificationBitsPerEdge);

  // 3. dMAM (Protocol 1).
  core::SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  core::HonestSymDmamProver prover(protocol.family());
  core::RunResult run = protocol.run(network, prover, rng);
  std::printf("[dMAM] verdict: %-6s  prover exchange: %zu bits/node TOTAL "
              "(interactive)\n\n",
              run.accepted ? "accept" : "reject", run.transcript.maxPerNodeBits());

  std::printf("all three agree; they differ in WHO pays:\n"
              "  LCP  pays the prover channel AND the neighbor channel in full;\n"
              "  RPLS keeps the written proof but spot-checks neighbors cheaply;\n"
              "  dMAM replaces the written proof with %zu bits of interaction —\n"
              "       the paper's contribution, exponentially below both.\n",
              run.transcript.maxPerNodeBits());
  return 0;
}
