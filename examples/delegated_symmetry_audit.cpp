// Delegated computation with an untrusted cloud — the paper's motivating
// scenario (Section 1): computationally limited devices delegate a graph
// computation to a powerful service and must verify the answer.
//
// Here a sensor network asks a cloud service whether its topology is
// symmetric. We audit three services: an honest one, a buggy one that
// reports a wrong automorphism, and a malicious one that tampers with the
// aggregation values. The dMAM protocol accepts the first and catches both
// others — without any node ever seeing more than a few dozen bytes.
//
//   $ ./delegated_symmetry_audit
#include <cstdio>
#include <memory>

#include "core/sym_dmam.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "util/rng.hpp"

int main() {
  using namespace dip;
  util::Rng rng(77);
  const std::size_t n = 20;

  std::printf("scenario: %zu-node sensor network, cloud claims 'your topology is "
              "symmetric'\n\n", n);

  // Case 1: the topology IS symmetric; the honest cloud proves it.
  {
    graph::Graph network = graph::randomSymmetricConnected(n, rng);
    core::SymDmamProtocol protocol(hash::makeProtocol1Family(n, rng));
    core::HonestSymDmamProver honest(protocol.family());
    std::size_t accepted = 0;
    for (int audit = 0; audit < 50; ++audit) {
      if (protocol.run(network, honest, rng).accepted) ++accepted;
    }
    std::printf("[honest cloud, symmetric topology]    audits passed: %zu/50\n", accepted);
  }

  // Case 2: the topology is NOT symmetric; a cloud bluffing with a fake
  // automorphism is caught.
  {
    graph::Graph network = graph::randomRigidConnected(n, rng);
    core::SymDmamProtocol protocol(hash::makeProtocol1Family(n, rng));
    std::size_t accepted = 0;
    for (int audit = 0; audit < 50; ++audit) {
      core::CheatingRhoProver bluffing(protocol.family(),
                                       core::CheatingRhoProver::Strategy::kTransposition,
                                       static_cast<std::uint64_t>(audit));
      if (protocol.run(network, bluffing, rng).accepted) ++accepted;
    }
    std::printf("[bluffing cloud, rigid topology]      audits passed: %zu/50  "
                "(every pass would be a hash collision, prob <= 1/(10n))\n", accepted);
  }

  // Case 3: symmetric topology, but a buggy cloud corrupts one aggregation
  // value — the local chain checks catch it deterministically.
  {
    graph::Graph network = graph::randomSymmetricConnected(n, rng);
    core::SymDmamProtocol protocol(hash::makeProtocol1Family(n, rng));
    std::size_t accepted = 0;
    for (int audit = 0; audit < 50; ++audit) {
      core::HashChainLiarProver buggy(protocol.family(), static_cast<std::uint64_t>(audit));
      if (protocol.run(network, buggy, rng).accepted) ++accepted;
    }
    std::printf("[buggy cloud, corrupted aggregation]  audits passed: %zu/50  "
                "(caught deterministically)\n", accepted);
  }

  std::printf("\nconclusion: the network never trusts the cloud — it trusts the\n"
              "protocol. Per-node communication stays logarithmic in n.\n");
  return 0;
}
