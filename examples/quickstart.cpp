// Quickstart: run the paper's headline protocol end to end.
//
// A network of n nodes wants to verify, with a powerful untrusted prover,
// that its own topology is symmetric (has a non-trivial automorphism) —
// exchanging only O(log n) bits per node (Theorem 1.1 / Protocol 1).
//
//   $ ./quickstart [n]
#include <cstdio>
#include <cstdlib>

#include "core/sym_dmam.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "hash/linear_hash.hpp"
#include "util/bitio.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dip;

  std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16;
  if (n < 6 || n % 2 != 0) {
    std::fprintf(stderr, "need an even n >= 6\n");
    return 1;
  }
  util::Rng rng(2024);

  // 1. A network graph. randomSymmetricConnected builds a prism over a
  //    random base, so it is guaranteed to have a non-trivial automorphism.
  graph::Graph network = graph::randomSymmetricConnected(n, rng);
  std::printf("network: %zu nodes, %zu edges, symmetric: %s\n", network.numVertices(),
              network.numEdges(),
              graph::isRigid(network) ? "no" : "yes");

  // 2. Protocol parameters: the linear hash family of Theorem 3.2 over a
  //    prime p in [10 n^3, 100 n^3].
  core::SymDmamProtocol protocol(hash::makeProtocol1Family(n, rng));
  std::printf("hash field: p with %zu bits (family size = p)\n",
              protocol.family().seedBits());

  // 3. The honest prover finds an automorphism, commits to it, and helps
  //    the nodes sum fingerprints up a spanning tree.
  core::HonestSymDmamProver prover(protocol.family());
  core::RunResult result = protocol.run(network, prover, rng);

  std::printf("verdict: %s\n", result.accepted ? "ALL NODES ACCEPT" : "rejected");
  std::printf("max bits exchanged between any node and the prover: %zu\n",
              result.transcript.maxPerNodeBits());
  for (const auto& round : result.transcript.rounds()) {
    std::printf("  round %-32s max %4zu bits/node\n", round.label.c_str(),
                round.maxBitsThisRound);
  }
  std::printf("(a non-interactive locally checkable proof would need %zu bits/node)\n",
              n * n + n * util::bitsFor(n) + util::bitsFor(n));
  return result.accepted ? 0 : 1;
}
