// "Facebook knows the topology" — the paper's data-holder scenario: a
// central entity holding a large graph convinces its clients of a truth
// about that graph. Here the claim is STRUCTURAL DIFFERENCE: the service
// claims this year's anonymized community graph is genuinely different from
// (not a mere relabeling of) last year's.
//
// That is exactly Graph Non-Isomorphism, and the distributed
// Goldwasser-Sipser protocol of Section 4 (Theorem 1.5) lets the clients
// check the claim against an untrusted prover with O(n log n) bits each.
//
//   $ ./social_graph_distinction
#include <cstdio>
#include <memory>

#include "core/gni_amam.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "util/rng.hpp"

int main() {
  using namespace dip;
  util::Rng rng(99);
  const std::size_t n = 6;  // The honest prover enumerates 2 n! candidates.

  util::Rng setupRng(100);
  core::GniParams params = core::GniParams::choose(n, setupRng);
  core::GniAmamProtocol protocol(params);
  std::printf("protocol: %zu repetitions, accept at >= %zu verified preimages\n\n",
              params.repetitions, params.threshold);

  // Claim 1 (true): the graphs really are structurally different.
  {
    core::GniInstance instance = core::gniYesInstance(n, rng);
    std::printf("claim: 'this year differs structurally from last year' (TRUE)\n");
    core::HonestGniProver prover(params);
    std::size_t accepted = 0;
    const int audits = 9;
    for (int audit = 0; audit < audits; ++audit) {
      if (protocol.run(instance, prover, rng).accepted) ++accepted;
    }
    std::printf("  verified in %zu/%d audits (soundness target: accept > 2/3)\n\n",
                accepted, audits);
  }

  // Claim 2 (false): the "new" graph is just a relabeling. However hard the
  // service searches, it cannot hit enough hash targets: the candidate set
  // is half as large, and the verifiers notice the deficit.
  {
    core::GniInstance instance = core::gniNoInstance(n, rng);
    std::printf("claim: 'this year differs structurally from last year' (FALSE —\n");
    std::printf("        it is a relabeling: %s)\n",
                graph::areIsomorphic(instance.g0, instance.g1) ? "verified isomorphic"
                                                               : "??");
    core::HonestGniProver prover(params);  // Also the OPTIMAL cheater here.
    std::size_t accepted = 0;
    const int audits = 9;
    for (int audit = 0; audit < audits; ++audit) {
      if (protocol.run(instance, prover, rng).accepted) ++accepted;
    }
    std::printf("  slipped through %zu/%d audits (soundness target: accept < 1/3)\n\n",
                accepted, audits);
  }

  std::printf("note: without interaction, certifying non-isomorphism needs the\n"
              "entire Theta(n^2)-bit graph at every client; with four message\n"
              "rounds it drops to O(n log n) per client (Theorem 1.5).\n");
  return 0;
}
