// dipcli — command-line driver for the library.
//
// Subcommands:
//   dipcli sym     --n 16 [--rigid] [--seed 7] [--trials 50]
//   dipcli dam     --n 8  [--rigid] [--seed 7]
//   dipcli dsym    --side 6 --radius 2 [--no]
//   dipcli gni     --n 6 [--iso] [--trials 100]
//   dipcli census  --n 6
//   dipcli packing --max 16384
//   dipcli cost    --n 64
//
// Every run prints the verdict and the exact per-node communication, so the
// tool doubles as a quick calculator for "what would this protocol cost on
// my network".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dsym_dam.hpp"
#include "core/api.hpp"
#include "core/gni_amam.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "graph/graph6.hpp"
#include "graph/isomorphism.hpp"
#include "lb/census.hpp"
#include "lb/packing.hpp"
#include "pls/sym_lcp.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

using namespace dip;

namespace {

struct Args {
  std::string graph6;
  std::size_t n = 16;
  std::size_t side = 6;
  std::size_t radius = 2;
  std::size_t max = 16384;
  std::uint64_t seed = 7;
  std::size_t trials = 50;
  bool rigid = false;
  bool no = false;
  bool iso = false;
};

Args parseArgs(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    auto value = [&](std::size_t fallback) -> std::size_t {
      return (i + 1 < argc) ? static_cast<std::size_t>(std::atoll(argv[++i])) : fallback;
    };
    if (!std::strcmp(argv[i], "--n")) args.n = value(args.n);
    else if (!std::strcmp(argv[i], "--g6")) args.graph6 = (i + 1 < argc) ? argv[++i] : "";
    else if (!std::strcmp(argv[i], "--side")) args.side = value(args.side);
    else if (!std::strcmp(argv[i], "--radius")) args.radius = value(args.radius);
    else if (!std::strcmp(argv[i], "--max")) args.max = value(args.max);
    else if (!std::strcmp(argv[i], "--seed")) args.seed = value(args.seed);
    else if (!std::strcmp(argv[i], "--trials")) args.trials = value(args.trials);
    else if (!std::strcmp(argv[i], "--rigid")) args.rigid = true;
    else if (!std::strcmp(argv[i], "--no")) args.no = true;
    else if (!std::strcmp(argv[i], "--iso")) args.iso = true;
  }
  return args;
}

void printTranscript(const net::Transcript& transcript) {
  std::printf("max bits per node: %zu (total %zu)\n", transcript.maxPerNodeBits(),
              transcript.totalBits());
  for (const auto& round : transcript.rounds()) {
    std::printf("  %-40s max %6zu bits/node\n", round.label.c_str(),
                round.maxBitsThisRound);
  }
}

int cmdSym(const Args& args) {
  util::Rng rng(args.seed);
  graph::Graph g = !args.graph6.empty() ? graph::fromGraph6(args.graph6)
                   : args.rigid         ? graph::randomRigidConnected(args.n, rng)
                                        : graph::randomSymmetricConnected(args.n, rng);
  if (!args.graph6.empty() && !g.isConnected()) {
    std::fprintf(stderr, "graph6 input must be connected (it is the network)\n");
    return 2;
  }
  bool rigid = args.graph6.empty() ? args.rigid : graph::isRigid(g);
  std::printf("instance: n = %zu, %zu edges, %s (graph6: %s)\n", g.numVertices(),
              g.numEdges(), rigid ? "rigid" : "symmetric", graph::toGraph6(g).c_str());
  core::SymDmamProtocol protocol(hash::makeProtocol1Family(g.numVertices(), rng));
  if (rigid) {
    int seed = 0;
    core::AcceptanceStats stats = protocol.estimateAcceptance(
        g,
        [&] {
          return std::make_unique<core::CheatingRhoProver>(
              protocol.family(), core::CheatingRhoProver::Strategy::kRandomPermutation,
              seed++);
        },
        args.trials, rng);
    std::printf("best cheating prover accepted %zu/%zu times (soundness error "
                "budget 1/(10n) = %.4f)\n", stats.accepts, stats.trials,
                1.0 / (10.0 * static_cast<double>(g.numVertices())));
    return 0;
  }
  core::HonestSymDmamProver prover(protocol.family());
  core::RunResult result = protocol.run(g, prover, rng);
  std::printf("verdict: %s\n", result.accepted ? "ACCEPT" : "reject");
  printTranscript(result.transcript);
  return result.accepted ? 0 : 1;
}

int cmdDam(const Args& args) {
  util::Rng rng(args.seed);
  graph::Graph g = args.rigid ? graph::randomRigidConnected(args.n, rng)
                              : graph::randomSymmetricConnected(args.n, rng);
  core::SymDamProtocol protocol(hash::makeProtocol2Family(args.n, rng));
  std::printf("instance: n = %zu (%s); hash field: %zu-bit prime\n", args.n,
              args.rigid ? "rigid" : "symmetric", protocol.family().seedBits());
  if (args.rigid) {
    core::AdaptiveCollisionProver cheater(protocol.family(), 5000, args.seed);
    core::RunResult result = protocol.run(g, cheater, rng);
    std::printf("adaptive cheater: %s (collision search %s)\n",
                result.accepted ? "ACCEPTED?!" : "rejected",
                cheater.lastSearchSucceeded() ? "succeeded" : "failed");
    return 0;
  }
  core::HonestSymDamProver prover(protocol.family());
  core::RunResult result = protocol.run(g, prover, rng);
  std::printf("verdict: %s\n", result.accepted ? "ACCEPT" : "reject");
  printTranscript(result.transcript);
  return result.accepted ? 0 : 1;
}

int cmdDSym(const Args& args) {
  util::Rng rng(args.seed);
  graph::DSymLayout layout = graph::dsymLayout(args.side, args.radius);
  graph::Graph f = args.no ? graph::randomRigidConnected(args.side, rng)
                           : graph::randomConnected(args.side, args.side / 2, rng);
  graph::Graph g = [&] {
    if (args.no) {
      graph::Graph fOther = graph::randomRigidConnected(args.side, rng);
      while (fOther == f) fOther = graph::randomRigidConnected(args.side, rng);
      return graph::dsymNoInstance(f, fOther, args.radius);
    }
    return graph::dsymInstance(f, args.radius);
  }();
  std::printf("instance: N = %zu (%s); ground truth: %s\n", layout.numVertices,
              args.no ? "NO instance" : "YES instance",
              graph::isDSymInstance(g, layout) ? "in DSym" : "not in DSym");
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{layout.numVertices}, 3);
  core::DSymDamProtocol protocol(
      layout, hash::LinearHashFamily(
                  util::findPrimeInRange(util::BigUInt{10} * n3,
                                         util::BigUInt{100} * n3, rng),
                  static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices));
  core::HonestDSymProver prover(layout, protocol.family());
  core::RunResult result = protocol.run(g, prover, rng);
  std::printf("verdict: %s\n", result.accepted ? "ACCEPT" : "reject");
  printTranscript(result.transcript);
  std::printf("(LCP baseline would need %zu bits/node)\n",
              pls::SymLcp::adviceBitsPerNode(layout.numVertices));
  return 0;
}

int cmdGni(const Args& args) {
  util::Rng rng(args.seed);
  util::Rng setup(args.seed + 1);
  core::GniParams params = core::GniParams::choose(args.n, setup);
  core::GniAmamProtocol protocol(params);
  core::GniInstance instance = args.iso ? core::gniNoInstance(args.n, rng)
                                        : core::gniYesInstance(args.n, rng);
  std::printf("instance: n = %zu, graphs %s; k = %zu repetitions, threshold %zu\n",
              args.n, args.iso ? "ISOMORPHIC" : "non-isomorphic", params.repetitions,
              params.threshold);
  core::AcceptanceStats hits = protocol.estimatePerRoundHit(instance, args.trials, rng);
  std::printf("per-repetition preimage hits: %zu/%zu (%.3f)\n", hits.accepts, hits.trials,
              hits.rate());
  core::HonestGniProver prover(params);
  core::RunResult result = protocol.run(instance, prover, rng);
  std::printf("amplified verdict: %s\n", result.accepted ? "ACCEPT" : "reject");
  printTranscript(result.transcript);
  return 0;
}

// High-level facade route: decides non-isomorphism on symmetric or rigid
// inputs, dispatching to the right protocol automatically.
int cmdIso(const Args& args) {
  util::Rng rng(args.seed);
  graph::Graph g0 = args.rigid ? graph::randomRigidConnected(args.n, rng)
                               : graph::randomSymmetricConnected(args.n, rng);
  graph::Graph g1 = args.iso ? graph::randomIsomorphicCopy(g0, rng)
                   : args.rigid ? graph::randomRigidConnected(args.n, rng)
                                : graph::randomRigidConnected(args.n, rng);
  std::printf("instance: n = %zu, g0 %s, pair %s\n", args.n,
              args.rigid ? "rigid" : "symmetric",
              graph::areIsomorphic(g0, g1) ? "isomorphic" : "non-isomorphic");
  core::DecideOptions options;
  options.seed = args.seed;
  core::Decision decision = core::decideNonIsomorphism(g0, g1, options);
  std::printf("decideNonIsomorphism: %s (%zu rounds, %zu bits/node)\n",
              decision.accepted ? "ACCEPT (graphs differ)" : "reject",
              decision.rounds, decision.maxBitsPerNode);
  return 0;
}

int cmdCensus(const Args& args) {
  lb::CensusResult census = lb::exhaustiveCensus(args.n);
  std::printf("n = %zu: %llu labeled graphs, %llu labeled rigid, |F| = %llu rigid "
              "classes, %llu isomorphism classes\n",
              census.n, static_cast<unsigned long long>(census.labeledGraphs),
              static_cast<unsigned long long>(census.labeledRigid),
              static_cast<unsigned long long>(census.rigidClasses),
              static_cast<unsigned long long>(census.isoClasses));
  return 0;
}

int cmdPacking(const Args& args) {
  std::printf("%10s  %16s  %18s\n", "n", "log2 |F(n)|", "lower bound (bits)");
  for (std::size_t n = 8; n <= args.max; n *= 4) {
    double logF = lb::log2FamilyLowerBound(n);
    std::printf("%10zu  %16.1f  %18.3f\n", n, logF, lb::lowerBoundBits(logF));
  }
  return 0;
}

int cmdCost(const Args& args) {
  std::printf("per-node communication for n = %zu:\n", args.n);
  std::printf("  Protocol 1 (dMAM, Sym):      %8zu bits\n",
              core::SymDmamProtocol::costModel(args.n).totalPerNode());
  std::printf("  Protocol 2 (dAM, Sym):       %8zu bits\n",
              core::SymDamProtocol::costModel(args.n).totalPerNode());
  graph::DSymLayout layout = graph::dsymLayout(args.n / 2, 2);
  std::printf("  DSym dAM (side n/2, r = 2):  %8zu bits\n",
              core::DSymDamProtocol::costModel(layout).totalPerNode());
  std::printf("  GNI dAMAM (k = 64):          %8zu bits\n",
              core::GniAmamProtocol::costModel(args.n, 64).totalPerNode());
  std::printf("  LCP baseline (Sym):          %8zu bits\n",
              pls::SymLcp::adviceBitsPerNode(args.n));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dipcli <sym|dam|dsym|gni|iso|census|packing|cost> [options]\n");
    return 2;
  }
  Args args = parseArgs(argc, argv);
  std::string command = argv[1];
  if (command == "sym") return cmdSym(args);
  if (command == "dam") return cmdDam(args);
  if (command == "dsym") return cmdDSym(args);
  if (command == "gni") return cmdGni(args);
  if (command == "iso") return cmdIso(args);
  if (command == "census") return cmdCensus(args);
  if (command == "packing") return cmdPacking(args);
  if (command == "cost") return cmdCost(args);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
