#include "source.hpp"

#include <cctype>

namespace dip::analyze {

namespace {

bool isRuleChar(char c) {
  return std::islower(static_cast<unsigned char>(c)) || c == '-';
}

// Parses every `dip-lint: allow(<rule>)` / `dip-analyze: allow(<rule>)`
// annotation out of one comment. A single comment may carry several.
void parseAnnotations(const Comment& comment, std::vector<Suppression>& out) {
  const std::string& text = comment.text;
  std::size_t pos = 0;
  while (true) {
    std::size_t tag = text.find("allow(", pos);
    if (tag == std::string::npos) return;
    // Require a "dip-lint:" or "dip-analyze:" marker before the allow().
    std::size_t lintTag = text.rfind("dip-lint:", tag);
    std::size_t analyzeTag = text.rfind("dip-analyze:", tag);
    if (lintTag == std::string::npos && analyzeTag == std::string::npos) {
      pos = tag + 6;
      continue;
    }
    std::size_t ruleStart = tag + 6;
    std::size_t ruleEnd = ruleStart;
    while (ruleEnd < text.size() && isRuleChar(text[ruleEnd])) ++ruleEnd;
    if (ruleEnd == ruleStart || ruleEnd >= text.size() || text[ruleEnd] != ')') {
      pos = tag + 6;
      continue;
    }
    Suppression suppression;
    suppression.rule = text.substr(ruleStart, ruleEnd - ruleStart);
    suppression.line = comment.line;
    // A reason is the conventional ` -- <why>` tail with non-space content.
    std::size_t dashes = text.find("--", ruleEnd);
    if (dashes != std::string::npos) {
      std::size_t why = dashes + 2;
      while (why < text.size() && std::isspace(static_cast<unsigned char>(text[why]))) {
        ++why;
      }
      suppression.hasReason = why < text.size();
    }
    out.push_back(std::move(suppression));
    pos = ruleEnd;
  }
}

}  // namespace

bool SourceFile::consumeSuppression(std::string_view rule, int line) {
  bool found = false;
  for (Suppression& suppression : suppressions) {
    if (suppression.rule == rule && suppression.line <= line &&
        line <= suppression.line + kSuppressionWindow) {
      suppression.used = true;
      found = true;  // Keep scanning: mark every covering annotation used.
    }
  }
  return found;
}

SourceFile makeSourceFile(std::string path, std::string_view content) {
  SourceFile file;
  file.path = std::move(path);
  file.lexed = lex(content);
  std::size_t lineStart = 0;
  for (std::size_t i = 0; i <= content.size(); ++i) {
    if (i == content.size() || content[i] == '\n') {
      std::string_view line = content.substr(lineStart, i - lineStart);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      file.lines.emplace_back(line);
      lineStart = i + 1;
    }
  }
  for (const Comment& comment : file.lexed.comments) {
    parseAnnotations(comment, file.suppressions);
  }
  return file;
}

std::string_view baseName(std::string_view path) {
  std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

bool isVerifierPath(std::string_view path) {
  return path.starts_with("src/core/") || path.starts_with("src/pls/") ||
         path.starts_with("src/lb/");
}

bool isWireModule(std::string_view path) {
  return baseName(path).find("wire") != std::string_view::npos;
}

bool isTranscriptImpl(std::string_view path) {
  if (!path.starts_with("src/net/")) return false;
  std::string_view base = baseName(path);
  return base.find("transcript") != std::string_view::npos ||
         base.find("audit") != std::string_view::npos;
}

bool isSimPath(std::string_view path) { return path.starts_with("src/sim/"); }

bool isHotPath(std::string_view path) {
  return path.starts_with("src/hash/") || path == "src/util/montgomery.cpp";
}

bool isTranscriptEncodePath(std::string_view path) {
  if (path == "src/util/bitio.cpp") return true;
  if (isTranscriptImpl(path)) return true;
  return path.starts_with("src/core/") && isWireModule(path);
}

bool isTraversalPath(std::string_view path) {
  return path.starts_with("src/net/") || path.starts_with("src/lb/");
}

bool isAdvPath(std::string_view path) { return path.starts_with("src/adv/"); }

}  // namespace dip::analyze
