// SARIF 2.1.0 rendering so CI can annotate PRs with findings.
//
// The output is deliberately deterministic: findings are emitted in the
// analyzer's sorted order, artifact URIs are repo-relative under the
// SRCROOT uriBase, and there are no timestamps -- a golden-file test
// byte-compares a snapshot.
#pragma once

#include <string>
#include <vector>

#include "rule.hpp"

namespace dip::analyze {

inline constexpr const char* kToolName = "dip-analyze";
inline constexpr const char* kToolVersion = "1.0.0";

// Renders one SARIF run. Baselined findings are included with
// `suppressions: [{kind: external}]` so viewers show them as suppressed;
// active findings carry level "error".
std::string renderSarif(const std::vector<Finding>& findings);

}  // namespace dip::analyze
