#include "analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace dip::analyze {

namespace fs = std::filesystem;

namespace {

bool isCppFile(const fs::path& path) {
  std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

void sortFindings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

}  // namespace

std::vector<Finding> AnalysisReport::activeFindings() const {
  std::vector<Finding> active;
  for (const Finding& finding : findings) {
    if (!finding.baselined) active.push_back(finding);
  }
  return active;
}

AnalysisReport analyzeFiles(std::vector<SourceFile>& files, const Baseline* baseline) {
  AnalysisReport report;
  for (SourceFile& file : files) {
    runFileRules(file, report.findings);
  }
  runTreeRules(files, report.findings);
  sortFindings(report.findings);

  if (baseline != nullptr) {
    for (Finding& finding : report.findings) {
      std::string_view lineText;
      for (const SourceFile& file : files) {
        if (file.path == finding.path) {
          std::size_t index = static_cast<std::size_t>(finding.line) - 1;
          if (index < file.lines.size()) lineText = file.lines[index];
          break;
        }
      }
      finding.baselined =
          baseline->matches(finding.rule, finding.path, fingerprintLine(lineText));
    }
  }
  for (const Finding& finding : report.findings) {
    if (finding.baselined) {
      ++report.baselinedCount;
    } else {
      ++report.activeCount;
    }
  }
  return report;
}

AnalysisReport analyzeInMemory(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Baseline* baseline) {
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const auto& [path, content] : files) {
    sources.push_back(makeSourceFile(path, content));
  }
  std::sort(sources.begin(), sources.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });
  return analyzeFiles(sources, baseline);
}

bool loadTree(const std::string& root, std::vector<SourceFile>& out,
              std::string& error) {
  fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    error = "no src/ directory under " + root;
    return false;
  }
  std::vector<fs::path> paths;
  for (fs::recursive_directory_iterator it(src, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      error = "walking " + src.string() + ": " + ec.message();
      return false;
    }
    if (it->is_regular_file() && isCppFile(it->path())) {
      paths.push_back(it->path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      error = "unreadable: " + path.string();
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string rel = fs::relative(path, root, ec).generic_string();
    if (ec) rel = path.generic_string();
    out.push_back(makeSourceFile(std::move(rel), buffer.str()));
  }
  return true;
}

}  // namespace dip::analyze
