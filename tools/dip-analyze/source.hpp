// Per-file model: token stream plus the suppression annotations parsed out
// of comments. The suppression syntax is unchanged from the regex linter:
//
//   // dip-lint: allow(<rule>) -- <reason>
//
// (`dip-analyze:` is accepted as a synonym.) An annotation covers findings
// on its own line and the six lines below it, same window as before. The
// engine additionally records whether each annotation was ever *used* and
// whether it carries a reason -- the suppression-hygiene rule reports
// reasonless and dead annotations, which the regex linter could not know.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace dip::analyze {

// How many lines below the annotation line a suppression still covers.
inline constexpr int kSuppressionWindow = 6;

struct Suppression {
  std::string rule;
  int line = 1;  // Line of the comment carrying the annotation.
  bool hasReason = false;
  bool used = false;
};

struct SourceFile {
  std::string path;  // Repo-relative with forward slashes, e.g. "src/core/wire.cpp".
  LexedFile lexed;
  std::vector<std::string> lines;  // Raw physical lines (baseline fingerprints).
  std::vector<Suppression> suppressions;

  // True if an allow(<rule>) annotation covers `line`; marks it used.
  bool consumeSuppression(std::string_view rule, int line);

  const std::vector<Token>& tokens() const { return lexed.tokens; }
};

// Lexes `content` and extracts suppression annotations.
SourceFile makeSourceFile(std::string path, std::string_view content);

// Path classification shared by the rules.
bool isVerifierPath(std::string_view path);   // src/core, src/pls, src/lb
bool isWireModule(std::string_view path);     // basename contains "wire"
bool isTranscriptImpl(std::string_view path); // src/net transcript/audit impl
bool isSimPath(std::string_view path);        // src/sim
bool isHotPath(std::string_view path);        // src/hash + montgomery kernel
bool isTranscriptEncodePath(std::string_view path);  // core wire + bitio + net audit
bool isTraversalPath(std::string_view path);  // src/net + src/lb neighborhood loops
bool isAdvPath(std::string_view path);        // src/adv
std::string_view baseName(std::string_view path);

}  // namespace dip::analyze
