// The rule contract. A rule is a named check over one SourceFile (or, for
// cross-file rules, over the whole file set) that appends Findings. Adding
// a rule means:
//
//   1. a RuleDescriptor entry in ruleRegistry() (rules.cpp) -- the name is
//      the suppression key and the SARIF ruleId;
//   2. an implementation hooked into runFileRules()/runTreeRules();
//   3. one firing and one clean fixture under tests/analyze/fixtures/<rule>/
//      plus a seeded case in selftest.cpp.
//
// Rules must check suppressions via SourceFile::consumeSuppression at the
// finding line *before* emitting, so suppression-hygiene can tell used
// annotations from dead ones.
#pragma once

#include <string>
#include <vector>

#include "source.hpp"

namespace dip::analyze {

struct Finding {
  std::string rule;
  std::string path;
  int line = 1;
  int col = 1;
  std::string message;
  bool baselined = false;  // Matched by a baseline entry (reported, not fatal).
};

struct RuleDescriptor {
  std::string name;
  std::string summary;  // One line, shown by --list-rules and in SARIF.
};

const std::vector<RuleDescriptor>& ruleRegistry();

// Per-file rules. `file` is mutable so suppressions can be marked used.
void runFileRules(SourceFile& file, std::vector<Finding>& findings);

// Cross-file rules (mutator-selftest) plus suppression-hygiene, which must
// run after every other rule has had the chance to consume annotations.
void runTreeRules(std::vector<SourceFile>& files, std::vector<Finding>& findings);

}  // namespace dip::analyze
