#include "rule.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>

#include "model.hpp"

namespace dip::analyze {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers

void emit(SourceFile& file, std::vector<Finding>& findings, const char* rule,
          int line, int col, std::string message) {
  if (file.consumeSuppression(rule, line)) return;
  Finding finding;
  finding.rule = rule;
  finding.path = file.path;
  finding.line = line;
  finding.col = col;
  finding.message = std::move(message);
  findings.push_back(std::move(finding));
}

void emitAt(SourceFile& file, std::vector<Finding>& findings, const char* rule,
            const Token& token, std::string message) {
  emit(file, findings, rule, token.line, token.col, std::move(message));
}

bool isChargeCall(const CallSite& call) {
  return call.isMember && call.name.starts_with("charge");
}

bool isAuditCall(const CallSite& call) {
  return call.name == "auditCharge" || call.name == "auditChargedRound";
}

bool isWireEncodeCall(const CallSite& call) {
  return call.name.starts_with("encode") &&
         (call.qualified.starts_with("wire::") ||
          call.qualified.find("::wire::") != std::string::npos);
}

// ---------------------------------------------------------------------------
// charge-audit: every Transcript::charge* must be cross-checked by
// auditCharge/auditChargedRound before the next beginRound.

void ruleChargeAudit(SourceFile& file, const std::vector<CallSite>& calls,
                     std::vector<Finding>& findings) {
  if (isTranscriptImpl(file.path)) return;
  const std::vector<Token>& tokens = file.tokens();
  std::vector<std::size_t> pending;  // nameIndex of unaudited charges.
  auto flush = [&] {
    for (std::size_t index : pending) {
      emitAt(file, findings, "charge-audit", tokens[index],
             "Transcript charge with no auditCharge/auditChargedRound "
             "cross-check before the next round");
    }
    pending.clear();
  };
  for (const CallSite& call : calls) {
    if (call.isMember && call.name == "beginRound") flush();
    if (isAuditCall(call)) pending.clear();
    if (isChargeCall(call)) pending.push_back(call.nameIndex);
  }
  flush();
}

// ---------------------------------------------------------------------------
// uncharged-wire: wire::encode* outside wire modules and outside
// #if DIP_AUDIT regions is communication nobody charged.

void ruleUnchargedWire(SourceFile& file, const std::vector<CallSite>& calls,
                       std::vector<Finding>& findings) {
  if (isWireModule(file.path)) return;
  const std::vector<Token>& tokens = file.tokens();
  for (const CallSite& call : calls) {
    if (!isWireEncodeCall(call)) continue;
    if (tokens[call.nameIndex].inAudit) continue;
    emitAt(file, findings, "uncharged-wire", tokens[call.nameIndex],
           "wire encoding outside #if DIP_AUDIT: who charged these bits?");
  }
}

// ---------------------------------------------------------------------------
// nondeterminism: verifier modules may draw randomness only from the
// seeded util::Rng.

void ruleNondeterminism(SourceFile& file, const std::vector<CallSite>& calls,
                        std::vector<Finding>& findings) {
  if (!isVerifierPath(file.path)) return;
  const std::vector<Token>& tokens = file.tokens();
  for (const CallSite& call : calls) {
    if (call.name == "rand" || call.name == "srand") {
      emitAt(file, findings, "nondeterminism", tokens[call.nameIndex],
             call.name + "() is banned in verifier code");
    } else if (call.name == "time") {
      auto args = splitArgs(tokens, call);
      bool nullish = args.empty();
      if (args.size() == 1) {
        std::size_t width = args[0].second - args[0].first;
        if (width == 0) nullish = true;
        if (width == 1) {
          const Token& arg = tokens[args[0].first];
          nullish = arg.isIdent("NULL") || arg.isIdent("nullptr") ||
                    arg.is(TokenKind::kNumber, "0");
        }
      }
      if (nullish) {
        emitAt(file, findings, "nondeterminism", tokens[call.nameIndex],
               "wall-clock time must not feed verifier randomness");
      }
    } else if (call.name == "now") {
      static constexpr std::array<std::string_view, 3> kClocks = {
          "system_clock", "steady_clock", "high_resolution_clock"};
      for (std::string_view clock : kClocks) {
        if (call.qualified.find(clock) != std::string::npos) {
          emitAt(file, findings, "nondeterminism", tokens[call.nameIndex],
                 "clock reads are banned in verifier code");
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].isIdent("std") && tokens[i + 1].isPunct("::") &&
        tokens[i + 2].isIdent("random_device")) {
      emitAt(file, findings, "nondeterminism", tokens[i + 2],
             "std::random_device is nondeterministic");
    }
  }
}

// ---------------------------------------------------------------------------
// library-io: src/ stays silent; reporting belongs to examples/bench/tests.

void ruleLibraryIo(SourceFile& file, const std::vector<CallSite>& calls,
                   std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = file.tokens();
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kDirective) continue;
    if (token.text.find("include") == std::string::npos) continue;
    if (token.text.find("<iostream>") != std::string::npos) {
      emitAt(file, findings, "library-io", token,
             "library code must not include <iostream>");
    } else if (token.text.find("<cstdio>") != std::string::npos ||
               token.text.find("<stdio.h>") != std::string::npos) {
      emitAt(file, findings, "library-io", token,
             "library code must not include stdio");
    }
  }
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].isIdent("std") && tokens[i + 1].isPunct("::") &&
        (tokens[i + 2].isIdent("cout") || tokens[i + 2].isIdent("cerr") ||
         tokens[i + 2].isIdent("clog"))) {
      emitAt(file, findings, "library-io", tokens[i + 2],
             "library code must not write to std streams");
    }
  }
  for (const CallSite& call : calls) {
    if (call.name == "printf" || call.name == "fprintf" || call.name == "puts" ||
        call.name == "fputs") {
      emitAt(file, findings, "library-io", tokens[call.nameIndex],
             "library code must not printf");
    }
  }
}

// ---------------------------------------------------------------------------
// thread-containment: raw threading lives only in the src/sim trial engine.

void ruleThreadContainment(SourceFile& file, std::vector<Finding>& findings) {
  if (isSimPath(file.path)) return;
  const std::vector<Token>& tokens = file.tokens();
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].isIdent("std") && tokens[i + 1].isPunct("::") &&
        (tokens[i + 2].isIdent("thread") || tokens[i + 2].isIdent("jthread") ||
         tokens[i + 2].isIdent("this_thread"))) {
      emitAt(file, findings, "thread-containment", tokens[i + 2],
             "raw std::thread/std::this_thread outside src/sim: thread "
             "management belongs to the trial engine");
    }
  }
}

// ---------------------------------------------------------------------------
// hot-loop-alloc: no per-iteration allocation on the hash/Montgomery hot
// path or the transcript-encode path (the core wire modules, bitio, and the
// net audit layer — under DIP_AUDIT these run once per protocol round inside
// the trial loop, and the audit re-encodings are arena-backed precisely so
// the rounds stay allocation-free). Three shapes are flagged inside loop
// bodies: BigUInt construction (one heap block per iteration), raw operator
// new, and container growth (push_back/emplace_back) on a receiver that was
// never reserve()d earlier in the file -- geometric regrowth reallocates
// mid-loop.
//
// A fourth shape guards the traversal paths (src/net, src/lb) specifically:
// `g.neighbors(v)` / `g.closedNeighbors(v)` inside a loop body materializes
// a fresh vector per visited vertex, which is exactly the allocation the
// streaming `forEachNeighbor` visitors exist to avoid — spanning-tree
// construction and the lower-bound baselines run these loops once per node
// per trial. Only the traversal shape applies there; the three allocation
// shapes above stay scoped to the hash/encode paths so cold src/net setup
// code is not spuriously flagged.

void ruleHotLoopAlloc(SourceFile& file, std::vector<Finding>& findings) {
  const bool allocScoped = isHotPath(file.path) || isTranscriptEncodePath(file.path);
  const bool traversalScoped = isTraversalPath(file.path);
  if (!allocScoped && !traversalScoped) return;
  const std::vector<Token>& tokens = file.tokens();
  auto bodies = loopBodies(tokens);
  auto inLoop = [&](std::size_t index) {
    for (auto [begin, end] : bodies) {
      if (begin <= index && index < end) return true;
    }
    return false;
  };
  if (traversalScoped) {
    for (std::size_t i = 2; i + 1 < tokens.size(); ++i) {
      if (!(tokens[i].isIdent("neighbors") || tokens[i].isIdent("closedNeighbors"))) {
        continue;
      }
      if (!tokens[i + 1].isPunct("(")) continue;
      if (!(tokens[i - 1].isPunct(".") || tokens[i - 1].isPunct("->"))) continue;
      if (!inLoop(i)) continue;
      emitAt(file, findings, "hot-loop-alloc",
             tokens[i],
             tokens[i].text + "() inside a traversal loop: materializes a "
             "neighbor vector per visited vertex -- use the streaming "
             "forEachNeighbor/forEachClosedNeighbor visitors instead");
    }
  }
  if (!allocScoped) return;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!tokens[i].isIdent("BigUInt")) continue;
    if (tokens[i + 1].kind != TokenKind::kIdentifier) continue;
    const Token& after = tokens[i + 2];
    if (!(after.isPunct(";") || after.isPunct("=") || after.isPunct("{") ||
          after.isPunct("("))) {
      continue;
    }
    if (!inLoop(i)) continue;
    emitAt(file, findings, "hot-loop-alloc", tokens[i],
           "BigUInt declared inside a loop body on the hash hot path: "
           "one heap allocation per iteration -- hoist and reuse");
  }

  // Raw operator new (including new[] and placement-syntax spellings): the
  // hot path allocates from the caller's Scratch/Arena, never per iteration.
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!tokens[i].isIdent("new")) continue;
    if (!inLoop(i)) continue;
    emitAt(file, findings, "hot-loop-alloc", tokens[i],
           "operator new inside a loop body on the hash hot path: "
           "allocate from the caller's arena/scratch or hoist the buffer");
  }

  // Container growth without a prior capacity reservation. The check is
  // whole-file-ordered, not scope-exact: any earlier `recv.reserve(...)`
  // clears `recv.push_back(...)` -- cheap, and the hot-path idiom is
  // reserve-immediately-before-loop anyway.
  auto isGrowthName = [](const Token& token) {
    return token.isIdent("push_back") || token.isIdent("emplace_back");
  };
  auto memberOn = [&](std::size_t nameIndex) -> const Token* {
    if (nameIndex < 2) return nullptr;
    if (!(tokens[nameIndex - 1].isPunct(".") || tokens[nameIndex - 1].isPunct("->")))
      return nullptr;
    if (tokens[nameIndex - 2].kind != TokenKind::kIdentifier) return nullptr;
    return &tokens[nameIndex - 2];
  };
  for (std::size_t i = 2; i + 1 < tokens.size(); ++i) {
    if (!isGrowthName(tokens[i]) || !tokens[i + 1].isPunct("(")) continue;
    const Token* receiver = memberOn(i);
    if (receiver == nullptr) continue;
    if (!inLoop(i)) continue;
    bool reserved = false;
    for (std::size_t j = 2; j < i && !reserved; ++j) {
      if (tokens[j].isIdent("reserve") && tokens[j + 1].isPunct("(")) {
        const Token* reservedOn = memberOn(j);
        reserved = reservedOn != nullptr && reservedOn->text == receiver->text;
      }
    }
    if (reserved) continue;
    emitAt(file, findings, "hot-loop-alloc", tokens[i],
           tokens[i].text + " on '" + receiver->text +
               "' inside a hash hot-path loop with no prior reserve: "
               "geometric regrowth reallocates mid-loop -- reserve the "
               "capacity before entering");
  }
}

// ---------------------------------------------------------------------------
// locality (brace-matched): nodeDecision bodies may read the graph only
// through the own vertex's row/closedRow/hasEdge and may not leak the graph
// into helpers that do not also receive the own vertex.

void ruleLocality(SourceFile& file, const std::vector<CallSite>& calls,
                  std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = file.tokens();
  for (const FunctionDef& def : findFunctionDefs(tokens, "nodeDecision")) {
    const std::string vertex =
        def.vertexParams.empty() ? std::string("v") : def.vertexParams.front();

    // Whole-graph loops: a classic for whose condition bounds an index by
    // n or numVertices(). Range-fors (single top-level ':') are exempt --
    // iterating children/neighbors is the model.
    for (std::size_t i = def.bodyOpen; i < def.bodyClose; ++i) {
      if (!tokens[i].isIdent("for") || !tokens[i + 1].isPunct("(")) continue;
      std::size_t head = matchingClose(tokens, i + 1);
      if (head == kNpos) continue;
      // Find the condition: between the first and second top-level ';'.
      std::vector<std::size_t> semis;
      int depth = 0;
      for (std::size_t j = i + 2; j < head; ++j) {
        if (tokens[j].kind != TokenKind::kPunct) continue;
        if (tokens[j].text == "(" || tokens[j].text == "[" || tokens[j].text == "{") {
          ++depth;
        } else if (tokens[j].text == ")" || tokens[j].text == "]" ||
                   tokens[j].text == "}") {
          --depth;
        } else if (tokens[j].text == ";" && depth == 0) {
          semis.push_back(j);
        }
      }
      if (semis.size() < 2) continue;
      bool comparesAll = false;
      for (std::size_t j = semis[0] + 1; j < semis[1]; ++j) {
        if (!tokens[j].isPunct("<") && !tokens[j].isPunct("<=")) continue;
        for (std::size_t k = j + 1; k < semis[1]; ++k) {
          if (tokens[k].isIdent("n") || tokens[k].isIdent("numVertices")) {
            comparesAll = true;
          }
        }
      }
      if (comparesAll) {
        emitAt(file, findings, "locality", tokens[i],
               "whole-graph loop in nodeDecision: verifiers see only N(v)");
      }
    }

    for (const CallSite& call : calls) {
      if (call.nameIndex <= def.bodyOpen || call.nameIndex >= def.bodyClose) continue;

      // Own-row reads: row/closedRow/hasEdge must take the own vertex.
      if (call.isMember && (call.name == "row" || call.name == "closedRow" ||
                            call.name == "hasEdge")) {
        auto args = splitArgs(tokens, call);
        bool ownVertex = !args.empty() &&
                         args[0].second - args[0].first == 1 &&
                         tokens[args[0].first].isIdent(vertex);
        if (!ownVertex) {
          std::string arg;
          if (!args.empty()) {
            for (std::size_t j = args[0].first; j < args[0].second; ++j) {
              if (!arg.empty()) arg += ' ';
              arg += tokens[j].text;
            }
          }
          emitAt(file, findings, "locality", tokens[call.nameIndex],
                 call.name + "(" + arg + ") in nodeDecision: only the own "
                 "vertex's row may be read");
        }
        continue;
      }

      // Graph escape: passing the graph/instance to a helper that does not
      // also receive the own vertex hands it a non-local view. The receiver
      // chain counts: row(v).forEachSet(visitor) pins the visitor to N(v).
      if (def.graphLikeParams.empty()) continue;
      auto args = splitArgs(tokens, call);
      if (args.empty()) continue;
      bool passesGraph = false;
      bool passesVertex = false;
      for (auto [begin, end] : args) {
        for (const std::string& graphParam : def.graphLikeParams) {
          if (rangeHasIdent(tokens, begin, end, graphParam)) passesGraph = true;
        }
        if (rangeHasIdent(tokens, begin, end, vertex)) passesVertex = true;
      }
      if (call.isMember) {
        std::size_t chain = receiverChainStart(tokens, call.nameIndex);
        if (rangeHasIdent(tokens, chain, call.nameIndex, vertex)) {
          passesVertex = true;
        }
      }
      if (passesGraph && !passesVertex) {
        emitAt(file, findings, "locality", tokens[call.nameIndex],
               "graph escapes nodeDecision into " + call.qualified +
               "(...) without the own vertex: helpers must compute local "
               "views only");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// charge-coverage: per round (beginRound .. next beginRound), wire
// encodings and transcript charges must back each other: a round that
// re-encodes messages but charges nothing is unaccounted communication,
// and an audit whose arguments never touch a codec (encode*/bitCount()/
// bitsForNode()) cross-checks the charges against nothing.

void ruleChargeCoverage(SourceFile& file, const std::vector<CallSite>& calls,
                        std::vector<Finding>& findings) {
  if (!isVerifierPath(file.path)) return;
  const std::vector<Token>& tokens = file.tokens();
  bool hasRound = false;
  for (const CallSite& call : calls) {
    if (call.isMember && call.name == "beginRound") hasRound = true;
  }
  if (!hasRound) return;  // Not a protocol round driver (e.g. merge helpers).

  struct Span {
    std::size_t chargeCount = 0;
    const CallSite* firstEncode = nullptr;
    std::vector<const CallSite*> audits;
  };
  std::vector<Span> spans(1);
  for (const CallSite& call : calls) {
    if (call.isMember && call.name == "beginRound") {
      spans.emplace_back();
      continue;
    }
    Span& span = spans.back();
    if (isChargeCall(call)) ++span.chargeCount;
    if (isWireEncodeCall(call) && span.firstEncode == nullptr) {
      span.firstEncode = &call;
    }
    if (isAuditCall(call)) span.audits.push_back(&call);
  }

  for (const Span& span : spans) {
    if (span.firstEncode != nullptr && span.chargeCount == 0) {
      emitAt(file, findings, "charge-coverage",
             tokens[span.firstEncode->nameIndex],
             "round invokes " + span.firstEncode->qualified +
             "() but charges no bits to the transcript: encoded fields "
             "nobody paid for");
    }
    for (const CallSite* audit : span.audits) {
      if (audit->closeParen == kNpos) continue;
      bool codecBacked = false;
      for (std::size_t j = audit->openParen + 1; j < audit->closeParen; ++j) {
        if (tokens[j].kind != TokenKind::kIdentifier) continue;
        if (tokens[j].text.starts_with("encode") || tokens[j].text == "bitCount" ||
            tokens[j].text == "bitsForNode") {
          codecBacked = true;
          break;
        }
      }
      if (!codecBacked) {
        emitAt(file, findings, "charge-coverage", tokens[audit->nameIndex],
               audit->name + "() is not backed by a wire codec: its "
               "arguments reference no encode*/bitCount()/bitsForNode()");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-escape: (a) iterating an unordered container lets the hash
// map's bucket order -- implementation-defined and pointer-dependent --
// reach transcript digests, folds and printed tables; (b) floating-point
// accumulation in the trial-fold layer makes results depend on summation
// order.

void ruleDeterminismEscape(SourceFile& file, const std::vector<CallSite>& calls,
                           std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = file.tokens();
  static constexpr std::array<std::string_view, 4> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  auto isUnorderedName = [](const Token& token) {
    if (token.kind != TokenKind::kIdentifier) return false;
    for (std::string_view name : kUnordered) {
      if (token.text == name) return true;
    }
    return false;
  };
  // Skip a template argument list starting at '<'; returns the index just
  // past the matching '>'. Handles '>>' closing two levels at once.
  auto skipTemplateArgs = [&](std::size_t i) {
    if (i >= tokens.size() || !tokens[i].isPunct("<")) return i;
    int depth = 0;
    for (std::size_t j = i; j < tokens.size(); ++j) {
      if (tokens[j].kind != TokenKind::kPunct) continue;
      if (tokens[j].text == "<") ++depth;
      if (tokens[j].text == ">") --depth;
      if (tokens[j].text == ">>") depth -= 2;
      if (depth <= 0) return j + 1;
    }
    return tokens.size();
  };

  std::set<std::string> unorderedVars;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!isUnorderedName(tokens[i])) continue;
    std::size_t after = skipTemplateArgs(i + 1);
    if (after >= tokens.size()) break;
    if (tokens[after].isPunct("::") && after + 1 < tokens.size() &&
        (tokens[after + 1].isIdent("iterator") ||
         tokens[after + 1].isIdent("const_iterator"))) {
      emitAt(file, findings, "determinism-escape", tokens[after + 1],
             "iterator over a std::" + tokens[i].text +
             ": bucket order is implementation-defined and can reach a "
             "digest, fold, or printed table");
      continue;
    }
    // Reference/pointer/const-qualified declarations still bind a name.
    while (after < tokens.size() &&
           (tokens[after].isPunct("&") || tokens[after].isPunct("*") ||
            tokens[after].isIdent("const"))) {
      ++after;
    }
    if (after < tokens.size() && tokens[after].kind == TokenKind::kIdentifier) {
      unorderedVars.insert(tokens[after].text);
    }
  }

  if (!unorderedVars.empty()) {
    // Range-for over a tracked container.
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!tokens[i].isIdent("for") || !tokens[i + 1].isPunct("(")) continue;
      std::size_t head = matchingClose(tokens, i + 1);
      if (head == kNpos) continue;
      std::size_t colon = kNpos;
      int depth = 0;
      for (std::size_t j = i + 2; j < head; ++j) {
        if (tokens[j].kind != TokenKind::kPunct) continue;
        if (tokens[j].text == "(" || tokens[j].text == "[" || tokens[j].text == "{") {
          ++depth;
        } else if (tokens[j].text == ")" || tokens[j].text == "]" ||
                   tokens[j].text == "}") {
          --depth;
        } else if (tokens[j].text == ":" && depth == 0) {
          colon = j;
          break;
        }
      }
      if (colon == kNpos) continue;
      for (std::size_t j = colon + 1; j < head; ++j) {
        if (tokens[j].kind == TokenKind::kIdentifier &&
            unorderedVars.count(tokens[j].text) != 0) {
          emitAt(file, findings, "determinism-escape", tokens[j],
                 "range-for over unordered container '" + tokens[j].text +
                 "': iteration order is implementation-defined and can "
                 "reach a digest, fold, or printed table");
          break;
        }
      }
    }
    // Explicit iterator walks: container.begin()/cbegin()/...
    for (const CallSite& call : calls) {
      if (!call.isMember) continue;
      if (call.name != "begin" && call.name != "cbegin" && call.name != "end" &&
          call.name != "cend" && call.name != "rbegin" && call.name != "rend") {
        continue;
      }
      if (call.nameIndex < 2) continue;
      const Token& receiver = tokens[call.nameIndex - 2];
      if (receiver.kind == TokenKind::kIdentifier &&
          unorderedVars.count(receiver.text) != 0) {
        emitAt(file, findings, "determinism-escape", tokens[call.nameIndex],
               "iterating unordered container '" + receiver.text +
               "' via " + call.name + "(): bucket order is "
               "implementation-defined");
      }
    }
  }

  // (b) Float accumulation in the fold layer.
  if (isSimPath(file.path)) {
    std::set<std::string> floatVars;
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (!tokens[i].isIdent("double") && !tokens[i].isIdent("float")) continue;
      if (tokens[i + 1].kind != TokenKind::kIdentifier) continue;
      const Token& after = tokens[i + 2];
      if (after.isPunct(";") || after.isPunct("=") || after.isPunct("{") ||
          after.isPunct(",") || after.isPunct(")")) {
        floatVars.insert(tokens[i + 1].text);
      }
    }
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind != TokenKind::kIdentifier) continue;
      if (floatVars.count(tokens[i].text) == 0) continue;
      if (tokens[i + 1].isPunct("+=") || tokens[i + 1].isPunct("-=")) {
        emitAt(file, findings, "determinism-escape", tokens[i],
               "floating-point accumulation of '" + tokens[i].text +
               "' in the trial-fold layer: summation order changes the "
               "result; fold integers, or keep wall-clock out of the "
               "determinism contract");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// mutator-selftest (cross-file): every MessageMutator subclass in src/adv
// must have a DIP_MUTATOR_SELF_TEST registration somewhere in src/adv.

void ruleMutatorSelftest(std::vector<SourceFile>& files,
                         std::vector<Finding>& findings) {
  struct Declaration {
    SourceFile* file;
    std::size_t tokenIndex;
    std::string className;
  };
  std::vector<Declaration> declarations;
  std::set<std::string> registered;
  for (SourceFile& file : files) {
    if (!isAdvPath(file.path)) continue;
    const std::vector<Token>& tokens = file.tokens();
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].isIdent("class") &&
          tokens[i + 1].kind == TokenKind::kIdentifier) {
        // Scan the base-clause up to the body brace (or a semicolon for a
        // forward declaration) for `: ... MessageMutator`.
        bool sawColon = false;
        bool subclass = false;
        for (std::size_t j = i + 2; j < tokens.size(); ++j) {
          if (tokens[j].isPunct("{") || tokens[j].isPunct(";")) break;
          if (tokens[j].isPunct(":")) sawColon = true;
          if (sawColon && tokens[j].isIdent("MessageMutator")) subclass = true;
        }
        if (subclass) {
          declarations.push_back({&file, i, tokens[i + 1].text});
        }
      }
      if (tokens[i].isIdent("DIP_MUTATOR_SELF_TEST") && tokens[i + 1].isPunct("(") &&
          i + 2 < tokens.size() && tokens[i + 2].kind == TokenKind::kIdentifier) {
        registered.insert(tokens[i + 2].text);
      }
    }
  }
  for (const Declaration& decl : declarations) {
    if (registered.count(decl.className) != 0) continue;
    const Token& token = decl.file->tokens()[decl.tokenIndex];
    emitAt(*decl.file, findings, "mutator-selftest", token,
           "MessageMutator subclass " + decl.className +
           " has no DIP_MUTATOR_SELF_TEST registration: nothing replays a "
           "seed proving this adversary is deterministic and non-vacuous");
  }
}

// ---------------------------------------------------------------------------
// suppression-hygiene: every allow() must carry a reason, name a real rule,
// and actually suppress something. Runs after all other rules.

void ruleSuppressionHygiene(std::vector<SourceFile>& files,
                            std::vector<Finding>& findings) {
  std::set<std::string> known;
  for (const RuleDescriptor& rule : ruleRegistry()) known.insert(rule.name);
  for (SourceFile& file : files) {
    // Phase 1: reasonless or unknown-rule annotations.
    for (const Suppression& suppression : file.suppressions) {
      if (known.count(suppression.rule) == 0) {
        emit(file, findings, "suppression-hygiene", suppression.line, 1,
             "allow(" + suppression.rule + ") names no known rule");
      } else if (!suppression.hasReason) {
        emit(file, findings, "suppression-hygiene", suppression.line, 1,
             "allow(" + suppression.rule + ") without a reason: write "
             "`-- <why>` (reviewed like NOLINT)");
      }
    }
    // Phase 2: dead annotations (checked after phase 1 so an annotation
    // consumed by a hygiene finding above counts as used).
    for (const Suppression& suppression : file.suppressions) {
      if (suppression.used || known.count(suppression.rule) == 0) continue;
      emit(file, findings, "suppression-hygiene", suppression.line, 1,
           "dead suppression: allow(" + suppression.rule + ") matched no "
           "finding in its window -- remove it, or move it next to the "
           "finding it should cover");
    }
  }
}

}  // namespace

const std::vector<RuleDescriptor>& ruleRegistry() {
  static const std::vector<RuleDescriptor> kRules = {
      {"charge-audit",
       "Every Transcript::charge* call is cross-checked by "
       "auditCharge/auditChargedRound before the next beginRound"},
      {"uncharged-wire",
       "wire::encode* appears only in wire modules or under #if DIP_AUDIT"},
      {"nondeterminism",
       "Verifier modules use no rand()/srand(), std::random_device, "
       "time() or clock reads: verdicts are functions of (instance, "
       "messages, seeded Rng) only"},
      {"library-io",
       "Library code under src/ never writes to stdout/stderr"},
      {"locality",
       "nodeDecision bodies read only the own vertex's "
       "row/closedRow/hasEdge and N(v) messages; no whole-graph loops, no "
       "graph escapes into non-local helpers"},
      {"thread-containment",
       "Raw threading (std::thread/jthread/this_thread) appears only in "
       "the src/sim trial engine"},
      {"hot-loop-alloc",
       "No per-iteration allocation in loops on the hash/Montgomery hot "
       "path: BigUInt construction, operator new, or push_back/"
       "emplace_back growth without a prior reserve"},
      {"mutator-selftest",
       "Every MessageMutator subclass in src/adv carries a "
       "DIP_MUTATOR_SELF_TEST registration"},
      {"charge-coverage",
       "Per protocol round, wire encodings and transcript charges back "
       "each other: no encoded-but-uncharged rounds, no audits that "
       "reference no codec"},
      {"determinism-escape",
       "No iteration over std::unordered_map/set (bucket order can reach "
       "digests/folds/tables) and no floating-point accumulation in the "
       "trial-fold layer"},
      {"suppression-hygiene",
       "allow() annotations name real rules, carry reasons, and suppress "
       "an actual finding"},
  };
  return kRules;
}

void runFileRules(SourceFile& file, std::vector<Finding>& findings) {
  const std::vector<CallSite> calls = findCalls(file.tokens());
  ruleChargeAudit(file, calls, findings);
  ruleUnchargedWire(file, calls, findings);
  ruleNondeterminism(file, calls, findings);
  ruleLibraryIo(file, calls, findings);
  ruleThreadContainment(file, findings);
  ruleHotLoopAlloc(file, findings);
  ruleLocality(file, calls, findings);
  ruleChargeCoverage(file, calls, findings);
  ruleDeterminismEscape(file, calls, findings);
}

void runTreeRules(std::vector<SourceFile>& files, std::vector<Finding>& findings) {
  ruleMutatorSelftest(files, findings);
  ruleSuppressionHygiene(files, findings);
}

}  // namespace dip::analyze
