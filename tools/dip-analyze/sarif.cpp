#include "sarif.hpp"

#include <cstdio>
#include <string_view>

namespace dip::analyze {

namespace {

std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string renderSarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n";
  out += "          \"name\": \"" + std::string(kToolName) + "\",\n";
  out += "          \"version\": \"" + std::string(kToolVersion) + "\",\n";
  out +=
      "          \"informationUri\": "
      "\"https://example.invalid/dip/docs/STATIC_ANALYSIS.md\",\n"
      "          \"rules\": [\n";
  const std::vector<RuleDescriptor>& rules = ruleRegistry();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\n";
    out += "              \"id\": \"" + jsonEscape(rules[i].name) + "\",\n";
    out += "              \"shortDescription\": { \"text\": \"" +
           jsonEscape(rules[i].summary) + "\" }\n";
    out += i + 1 < rules.size() ? "            },\n" : "            }\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"originalUriBaseIds\": {\n"
      "        \"SRCROOT\": { \"uri\": \"file:///\" }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& finding = findings[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + jsonEscape(finding.rule) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": { \"text\": \"" + jsonEscape(finding.message) +
           "\" },\n";
    out += "          \"locations\": [\n"
           "            {\n"
           "              \"physicalLocation\": {\n"
           "                \"artifactLocation\": {\n";
    out += "                  \"uri\": \"" + jsonEscape(finding.path) + "\",\n";
    out += "                  \"uriBaseId\": \"SRCROOT\"\n"
           "                },\n"
           "                \"region\": {\n";
    out += "                  \"startLine\": " + std::to_string(finding.line) + ",\n";
    out += "                  \"startColumn\": " + std::to_string(finding.col) + "\n";
    out += "                }\n"
           "              }\n"
           "            }\n"
           "          ]";
    if (finding.baselined) {
      out += ",\n          \"suppressions\": [ { \"kind\": \"external\" } ]\n";
    } else {
      out += "\n";
    }
    out += i + 1 < findings.size() ? "        },\n" : "        }\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace dip::analyze
