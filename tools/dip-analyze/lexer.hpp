// dip-analyze: a real C++ lexer for the protocol-invariant analyzer.
//
// The regex linter this engine replaces could not see through block
// comments, string/char literals, raw strings, or line splices, and had no
// notion of preprocessor conditionals beyond "the line starts with #if".
// This lexer produces a token stream with all of those resolved:
//
//   - line splices (backslash-newline) are removed before tokenization,
//     with physical line numbers preserved per token;
//   - comments are captured separately (they carry the suppression
//     annotations) and never appear as tokens;
//   - string literals -- including raw strings R"delim(...)delim" and
//     prefixed forms (u8, L, ...) -- and character literals become single
//     String/CharLit tokens, so `"rand()"` can never match a call pattern;
//   - a preprocessor directive is one Directive token holding the whole
//     logical line, and every token carries an `inAudit` flag saying
//     whether it sits inside an `#if DIP_AUDIT` region (#else flips it,
//     #endif pops; nested conditionals stack).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dip::analyze {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,
  kCharLit,
  kPunct,
  kDirective,
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 1;  // 1-based physical line of the token's first character.
  int col = 1;   // 1-based column on that line.
  bool inAudit = false;

  bool is(TokenKind k, std::string_view t) const { return kind == k && text == t; }
  bool isIdent(std::string_view t) const { return is(TokenKind::kIdentifier, t); }
  bool isPunct(std::string_view t) const { return is(TokenKind::kPunct, t); }
};

struct Comment {
  std::string text;  // Contents without the // or /* */ markers.
  int line = 1;      // First physical line.
  int endLine = 1;   // Last physical line (block comments may span).
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  int lineCount = 0;
};

// Tokenizes one translation unit's worth of source text. Never throws on
// malformed input: an unterminated literal or comment simply ends at EOF.
LexedFile lex(std::string_view source);

}  // namespace dip::analyze
