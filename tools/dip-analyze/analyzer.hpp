// Analysis driver: loads a tree (or an in-memory file set), runs every
// rule, applies the baseline, and produces a sorted report. The in-memory
// entry point exists so the self-test and the unit tests can exercise the
// full pipeline without touching the filesystem.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "baseline.hpp"
#include "rule.hpp"

namespace dip::analyze {

struct AnalysisReport {
  std::vector<Finding> findings;  // Sorted by (path, line, rule); includes baselined.
  std::size_t activeCount = 0;    // Findings not matched by the baseline.
  std::size_t baselinedCount = 0;

  std::vector<Finding> activeFindings() const;
};

// Runs all rules over already-lexed files. `baseline` may be nullptr.
AnalysisReport analyzeFiles(std::vector<SourceFile>& files, const Baseline* baseline);

// Convenience: builds SourceFiles from (path, content) pairs and analyzes.
AnalysisReport analyzeInMemory(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Baseline* baseline = nullptr);

// Loads every C++ file under <root>/src (sorted by path for determinism).
// Returns false (with a message) if root has no src/ directory.
bool loadTree(const std::string& root, std::vector<SourceFile>& out,
              std::string& error);

}  // namespace dip::analyze
