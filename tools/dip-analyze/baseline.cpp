#include "baseline.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace dip::analyze {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string_view takeWord(std::string_view& rest) {
  rest = trim(rest);
  std::size_t end = 0;
  while (end < rest.size() && !std::isspace(static_cast<unsigned char>(rest[end]))) {
    ++end;
  }
  std::string_view word = rest.substr(0, end);
  rest.remove_prefix(end);
  return word;
}

}  // namespace

std::uint64_t fingerprintLine(std::string_view lineText) {
  std::string_view trimmed = trim(lineText);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : trimmed) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Baseline Baseline::parse(std::string_view text, std::vector<std::string>& errors) {
  Baseline baseline;
  int lineNo = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = trim(text.substr(start, end - start));
    start = end + 1;
    ++lineNo;
    if (line.empty() || line.front() == '#') continue;

    std::string_view rest = line;
    std::string_view rule = takeWord(rest);
    std::string_view path = takeWord(rest);
    std::string_view hashWord = takeWord(rest);
    rest = trim(rest);
    std::string_view reason;
    if (rest.starts_with("--")) {
      reason = trim(rest.substr(2));
    }
    std::uint64_t hash = 0;
    auto [ptr, ec] = std::from_chars(hashWord.data(), hashWord.data() + hashWord.size(),
                                     hash, 16);
    if (rule.empty() || path.empty() || ec != std::errc{} ||
        ptr != hashWord.data() + hashWord.size() || reason.empty()) {
      errors.push_back("baseline line " + std::to_string(lineNo) +
                       ": expected `<rule> <path> <hex-hash> -- <reason>`");
      continue;
    }
    BaselineEntry entry;
    entry.rule = std::string(rule);
    entry.path = std::string(path);
    entry.hash = hash;
    entry.reason = std::string(reason);
    baseline.entries_.push_back(std::move(entry));
  }
  return baseline;
}

bool Baseline::matches(std::string_view rule, std::string_view path,
                       std::uint64_t hash) const {
  for (const BaselineEntry& entry : entries_) {
    if (entry.hash == hash && entry.rule == rule && entry.path == path) return true;
  }
  return false;
}

std::string Baseline::render(const std::vector<BaselineEntry>& entries) {
  std::string out =
      "# dip-analyze baseline: grandfathered findings.\n"
      "# Format: <rule> <path> <16-hex-hash-of-trimmed-line> -- <reason>\n"
      "# Editing a flagged line invalidates its entry; the finding resurfaces.\n";
  for (const BaselineEntry& entry : entries) {
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(entry.hash));
    out += entry.rule + " " + entry.path + " " + hex + " -- " +
           (entry.reason.empty() ? "TODO: justify or fix" : entry.reason) + "\n";
  }
  return out;
}

}  // namespace dip::analyze
