#include "lexer.hpp"

#include <array>
#include <cctype>

namespace dip::analyze {

namespace {

// One source character after line-splice removal, with its physical
// position. Lexing runs over this array so every token keeps the line/col
// of the file as the editor shows it.
struct Ch {
  char c;
  int line;
  int col;
};

std::vector<Ch> splice(std::string_view source) {
  std::vector<Ch> out;
  out.reserve(source.size());
  int line = 1;
  int col = 1;
  for (std::size_t i = 0; i < source.size(); ++i) {
    char c = source[i];
    // Backslash-newline (optionally \r\n) is a line splice: drop both,
    // keep counting physical lines.
    if (c == '\\' && i + 1 < source.size() &&
        (source[i + 1] == '\n' ||
         (source[i + 1] == '\r' && i + 2 < source.size() && source[i + 2] == '\n'))) {
      i += source[i + 1] == '\r' ? 2 : 1;
      ++line;
      col = 1;
      continue;
    }
    if (c == '\r') continue;  // Normalize CRLF.
    out.push_back({c, line, col});
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return out;
}

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character operators, longest first so greedy matching is correct.
constexpr std::array<std::string_view, 23> kMultiPunct = {
    "<<=", ">>=", "...", "->*", "::", "->", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "++",
};

// String-literal prefixes whose identifier form may precede a quote.
bool isStringPrefix(std::string_view id) {
  return id == "u8" || id == "u" || id == "U" || id == "L";
}
bool isRawPrefix(std::string_view id) {
  return id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : chars_(splice(source)) {
    if (!chars_.empty()) {
      out_.lineCount = chars_.back().line;
    }
  }

  LexedFile run() {
    while (pos_ < chars_.size()) {
      char c = cur();
      if (c == '\n') {
        atLineStart_ = true;
        ++pos_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\f' || c == '\v') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lexLineComment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lexBlockComment();
        continue;
      }
      if (c == '#' && atLineStart_) {
        lexDirective();
        continue;
      }
      atLineStart_ = false;
      if (isIdentStart(c)) {
        lexIdentifierOrLiteralPrefix();
        continue;
      }
      if (isDigit(c) || (c == '.' && isDigit(peek(1)))) {
        lexNumber();
        continue;
      }
      if (c == '"') {
        lexString(pos_);
        continue;
      }
      if (c == '\'') {
        lexCharLit();
        continue;
      }
      lexPunct();
    }
    return std::move(out_);
  }

 private:
  char cur() const { return chars_[pos_].c; }
  char peek(std::size_t ahead) const {
    return pos_ + ahead < chars_.size() ? chars_[pos_ + ahead].c : '\0';
  }

  void push(TokenKind kind, std::string text, std::size_t startIndex) {
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.line = chars_[startIndex].line;
    token.col = chars_[startIndex].col;
    token.inAudit = false;
    for (const AuditFrame& frame : auditStack_) {
      if (frame.active) token.inAudit = true;
    }
    out_.tokens.push_back(std::move(token));
  }

  void lexLineComment() {
    std::size_t start = pos_;
    pos_ += 2;
    std::string text;
    while (pos_ < chars_.size() && cur() != '\n') {
      text.push_back(cur());
      ++pos_;
    }
    out_.comments.push_back({std::move(text), chars_[start].line, chars_[start].line});
  }

  void lexBlockComment() {
    std::size_t start = pos_;
    pos_ += 2;
    std::string text;
    int endLine = chars_[start].line;
    while (pos_ < chars_.size()) {
      if (cur() == '*' && peek(1) == '/') {
        endLine = chars_[pos_].line;
        pos_ += 2;
        break;
      }
      endLine = chars_[pos_].line;
      text.push_back(cur());
      ++pos_;
    }
    out_.comments.push_back({std::move(text), chars_[start].line, endLine});
  }

  // Consumes `#...` to end of line (splices already merged). Stops at a
  // comment start so the comment is still captured for suppressions.
  void lexDirective() {
    std::size_t start = pos_;
    std::string text;
    while (pos_ < chars_.size() && cur() != '\n') {
      if (cur() == '/' && (peek(1) == '/' || peek(1) == '*')) break;
      text.push_back(cur());
      ++pos_;
    }
    trackAudit(text);
    push(TokenKind::kDirective, std::move(text), start);
    atLineStart_ = false;
  }

  static bool startsWithDirective(std::string_view text, std::string_view name) {
    std::size_t i = 1;  // Skip '#'.
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    return text.compare(i, name.size(), name) == 0;
  }

  void trackAudit(std::string_view text) {
    if (text.empty() || text[0] != '#') return;
    const bool mentions = text.find("DIP_AUDIT") != std::string_view::npos;
    if (startsWithDirective(text, "ifdef") || startsWithDirective(text, "ifndef") ||
        startsWithDirective(text, "if")) {
      auditStack_.push_back({mentions, mentions && !startsWithDirective(text, "ifndef")});
    } else if (startsWithDirective(text, "elif")) {
      if (!auditStack_.empty()) auditStack_.back() = {mentions, mentions};
    } else if (startsWithDirective(text, "else")) {
      // Only the complement of a DIP_AUDIT-gated branch is (not) audit
      // code; the #else of an unrelated conditional stays non-audit.
      if (!auditStack_.empty()) {
        auditStack_.back().active = auditStack_.back().mentionsAudit &&
                                    !auditStack_.back().active;
      }
    } else if (startsWithDirective(text, "endif")) {
      if (!auditStack_.empty()) auditStack_.pop_back();
    }
  }

  void lexIdentifierOrLiteralPrefix() {
    std::size_t start = pos_;
    std::string text;
    while (pos_ < chars_.size() && isIdentChar(cur())) {
      text.push_back(cur());
      ++pos_;
    }
    if (pos_ < chars_.size() && cur() == '"' && isRawPrefix(text)) {
      lexRawString(start);
      return;
    }
    if (pos_ < chars_.size() && cur() == '"' && isStringPrefix(text)) {
      lexString(start);
      return;
    }
    if (pos_ < chars_.size() && cur() == '\'' && isStringPrefix(text)) {
      lexCharLit();
      return;
    }
    push(TokenKind::kIdentifier, std::move(text), start);
  }

  void lexNumber() {
    std::size_t start = pos_;
    std::string text;
    // pp-number: digits, identifier chars, digit separators, exponents
    // with signs, and dots. Exact numeric grammar is irrelevant here.
    while (pos_ < chars_.size()) {
      char c = cur();
      if (isIdentChar(c) || c == '.' ||
          (c == '\'' && isIdentChar(peek(1)) && !text.empty())) {
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (peek(1) == '+' || peek(1) == '-')) {
          text.push_back(c);
          ++pos_;
          text.push_back(cur());
          ++pos_;
          continue;
        }
        text.push_back(c);
        ++pos_;
        continue;
      }
      break;
    }
    push(TokenKind::kNumber, std::move(text), start);
  }

  void lexString(std::size_t start) {
    // pos_ is at the opening quote.
    ++pos_;
    std::string text;
    while (pos_ < chars_.size() && cur() != '\n') {
      if (cur() == '\\' && pos_ + 1 < chars_.size()) {
        text.push_back(cur());
        text.push_back(peek(1));
        pos_ += 2;
        continue;
      }
      if (cur() == '"') {
        ++pos_;
        break;
      }
      text.push_back(cur());
      ++pos_;
    }
    push(TokenKind::kString, std::move(text), start);
  }

  void lexRawString(std::size_t start) {
    // pos_ is at the opening quote of R"delim( ... )delim".
    ++pos_;
    std::string delim;
    while (pos_ < chars_.size() && cur() != '(' && cur() != '\n') {
      delim.push_back(cur());
      ++pos_;
    }
    if (pos_ < chars_.size() && cur() == '(') ++pos_;
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (pos_ < chars_.size()) {
      if (cur() == ')') {
        bool match = true;
        for (std::size_t k = 0; k < closer.size(); ++k) {
          if (peek(k) != closer[k]) {
            match = false;
            break;
          }
        }
        if (match) {
          pos_ += closer.size();
          break;
        }
      }
      text.push_back(cur());
      ++pos_;
    }
    push(TokenKind::kString, std::move(text), start);
  }

  void lexCharLit() {
    std::size_t start = pos_;
    ++pos_;  // Opening quote.
    std::string text;
    while (pos_ < chars_.size() && cur() != '\n') {
      if (cur() == '\\' && pos_ + 1 < chars_.size()) {
        text.push_back(cur());
        text.push_back(peek(1));
        pos_ += 2;
        continue;
      }
      if (cur() == '\'') {
        ++pos_;
        break;
      }
      text.push_back(cur());
      ++pos_;
    }
    push(TokenKind::kCharLit, std::move(text), start);
  }

  void lexPunct() {
    std::size_t start = pos_;
    for (std::string_view op : kMultiPunct) {
      bool match = true;
      for (std::size_t k = 0; k < op.size(); ++k) {
        if (peek(k) != op[k]) {
          match = false;
          break;
        }
      }
      if (match) {
        pos_ += op.size();
        push(TokenKind::kPunct, std::string(op), start);
        return;
      }
    }
    // "--" would shadow the "-- reason" marker nowhere (comments are not
    // tokens), so it is safe to match it after the table misses "->*".
    if (cur() == '-' && peek(1) == '-') {
      pos_ += 2;
      push(TokenKind::kPunct, "--", start);
      return;
    }
    std::string text(1, cur());
    ++pos_;
    push(TokenKind::kPunct, std::move(text), start);
  }

  struct AuditFrame {
    bool mentionsAudit;
    bool active;
  };

  std::vector<Ch> chars_;
  std::size_t pos_ = 0;
  bool atLineStart_ = true;
  std::vector<AuditFrame> auditStack_;
  LexedFile out_;
};

}  // namespace

LexedFile lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace dip::analyze
