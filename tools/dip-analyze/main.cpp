// dip-analyze: self-hosted static analysis for the protocol invariants the
// C++ compiler cannot express. See docs/STATIC_ANALYSIS.md.
//
//   dip-analyze --root .                      scan <root>/src
//   dip-analyze --root . --sarif out.sarif    also emit SARIF 2.1.0
//   dip-analyze --root . --write-baseline F   grandfather current findings
//   dip-analyze --self-test                   prove seeded bugs are caught
//   dip-analyze --list-rules                  print the rule registry
//
// Exit status: 0 clean (or all findings baselined), 1 active findings,
// 2 usage/internal error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "sarif.hpp"
#include "selftest.hpp"

namespace {

using namespace dip::analyze;

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "dip-analyze: %s\n", error);
  std::fprintf(stderr,
               "usage: dip-analyze [--root DIR] [--baseline FILE] "
               "[--no-baseline]\n"
               "                   [--write-baseline FILE] [--sarif FILE]\n"
               "                   [--list-rules] [--self-test]\n");
  return 2;
}

bool readFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool fileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baselinePath;
  std::string writeBaselinePath;
  std::string sarifPath;
  bool noBaseline = false;
  bool listRules = false;
  bool selfTest = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dip-analyze: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return 2;
      root = v;
    } else if (arg == "--baseline") {
      const char* v = value("--baseline");
      if (v == nullptr) return 2;
      baselinePath = v;
    } else if (arg == "--no-baseline") {
      noBaseline = true;
    } else if (arg == "--write-baseline") {
      const char* v = value("--write-baseline");
      if (v == nullptr) return 2;
      writeBaselinePath = v;
    } else if (arg == "--sarif") {
      const char* v = value("--sarif");
      if (v == nullptr) return 2;
      sarifPath = v;
    } else if (arg == "--list-rules") {
      listRules = true;
    } else if (arg == "--self-test") {
      selfTest = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(nullptr);
      return 0;
    } else {
      return usage(("unknown argument: " + arg).c_str());
    }
  }

  if (listRules) {
    for (const RuleDescriptor& rule : ruleRegistry()) {
      std::printf("%-20s %s\n", rule.name.c_str(), rule.summary.c_str());
    }
    return 0;
  }
  if (selfTest) return runSelfTest();

  // Default baseline: the checked-in file, when present.
  if (baselinePath.empty() && !noBaseline) {
    std::string candidate = root + "/tools/dip-analyze/baseline.txt";
    if (fileExists(candidate)) baselinePath = candidate;
  }
  Baseline baseline;
  bool haveBaseline = false;
  if (!baselinePath.empty() && !noBaseline) {
    std::string text;
    if (!readFile(baselinePath, text)) {
      std::fprintf(stderr, "dip-analyze: cannot read baseline %s\n",
                   baselinePath.c_str());
      return 2;
    }
    std::vector<std::string> errors;
    baseline = Baseline::parse(text, errors);
    for (const std::string& error : errors) {
      std::fprintf(stderr, "dip-analyze: %s: %s\n", baselinePath.c_str(),
                   error.c_str());
    }
    if (!errors.empty()) return 2;
    haveBaseline = true;
  }

  std::vector<SourceFile> files;
  std::string error;
  if (!loadTree(root, files, error)) {
    std::fprintf(stderr, "dip-analyze: %s\n", error.c_str());
    return 2;
  }

  AnalysisReport report = analyzeFiles(files, haveBaseline ? &baseline : nullptr);

  if (!writeBaselinePath.empty()) {
    std::vector<BaselineEntry> entries;
    for (const Finding& finding : report.findings) {
      if (finding.baselined) continue;
      BaselineEntry entry;
      entry.rule = finding.rule;
      entry.path = finding.path;
      std::size_t index = static_cast<std::size_t>(finding.line) - 1;
      for (const SourceFile& file : files) {
        if (file.path == finding.path && index < file.lines.size()) {
          entry.hash = fingerprintLine(file.lines[index]);
          break;
        }
      }
      entries.push_back(std::move(entry));
    }
    std::ofstream out(writeBaselinePath, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "dip-analyze: cannot write %s\n",
                   writeBaselinePath.c_str());
      return 2;
    }
    out << Baseline::render(entries);
    std::printf("dip-analyze: wrote %zu baseline entries to %s\n", entries.size(),
                writeBaselinePath.c_str());
    return 0;
  }

  if (!sarifPath.empty()) {
    std::ofstream out(sarifPath, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "dip-analyze: cannot write %s\n", sarifPath.c_str());
      return 2;
    }
    out << renderSarif(report.findings);
  }

  for (const Finding& finding : report.findings) {
    if (finding.baselined) continue;
    std::printf("%s:%d: [%s] %s\n", finding.path.c_str(), finding.line,
                finding.rule.c_str(), finding.message.c_str());
  }
  if (report.activeCount > 0) {
    std::printf("dip-analyze: %zu violation(s)", report.activeCount);
    if (report.baselinedCount > 0) {
      std::printf(" (+%zu baselined)", report.baselinedCount);
    }
    std::printf("\n");
    return 1;
  }
  std::printf("dip-analyze: clean (%zu files, %zu rules",
              files.size(), ruleRegistry().size());
  if (report.baselinedCount > 0) {
    std::printf(", %zu baselined finding(s)", report.baselinedCount);
  }
  std::printf(")\n");
  return 0;
}
