// Checked-in baseline of grandfathered findings.
//
// A baseline entry keys on (rule, path, fingerprint-of-line-text) rather
// than a line number, so unrelated edits above a grandfathered finding do
// not invalidate it, while editing the flagged line itself does -- the
// finding then resurfaces and must be re-justified or fixed.
//
// File format, one entry per line (lines starting with '#' are comments):
//
//   <rule> <path> <16-hex-digit-hash> -- <reason>
//
// Reasons are mandatory: a baseline line without `-- <why>` fails to parse.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dip::analyze {

struct BaselineEntry {
  std::string rule;
  std::string path;
  std::uint64_t hash = 0;
  std::string reason;
};

// FNV-1a 64 over the line with leading/trailing whitespace removed, so
// re-indenting does not invalidate an entry.
std::uint64_t fingerprintLine(std::string_view lineText);

class Baseline {
 public:
  // Parses baseline text. On malformed lines, appends a message to
  // `errors` and skips the line.
  static Baseline parse(std::string_view text, std::vector<std::string>& errors);

  bool matches(std::string_view rule, std::string_view path,
               std::uint64_t hash) const;

  const std::vector<BaselineEntry>& entries() const { return entries_; }

  // Renders entries back to the file format (used by --write-baseline).
  static std::string render(const std::vector<BaselineEntry>& entries);

 private:
  std::vector<BaselineEntry> entries_;
};

}  // namespace dip::analyze
