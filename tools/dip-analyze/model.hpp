// Token-level structure recovery: matched delimiters, call sites, loop
// bodies and function bodies. Everything the rules need that a line regex
// fundamentally cannot provide -- multi-line call expressions, brace-matched
// scopes, argument lists -- lives here.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace dip::analyze {

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// Index of the matching closer for the opener at `open` ("(", "{", "["),
// skipping nested pairs of the same kind. kNpos if unbalanced.
std::size_t matchingClose(const std::vector<Token>& tokens, std::size_t open);

// Index of the matching opener for the closer at `close`. kNpos if none.
std::size_t matchingOpen(const std::vector<Token>& tokens, std::size_t close);

// Start of the postfix expression a member call hangs off: walks the
// receiver chain (identifiers, ::, ., ->, balanced () and []) leftwards
// from the callee. For `instance.g0.row(v).forEachSet` at `forEachSet`,
// returns the index of `instance`.
std::size_t receiverChainStart(const std::vector<Token>& tokens,
                               std::size_t nameIndex);

// A resolved call expression: `name(args)` or `recv.name(args)`.
struct CallSite {
  std::string name;            // Unqualified callee name.
  std::string qualified;       // Full dotted form, e.g. "wire::encodeGniFirst".
  bool isMember = false;       // Preceded by `.` or `->`.
  std::size_t nameIndex = 0;   // Token index of the callee identifier.
  std::size_t openParen = 0;   // Token index of '('.
  std::size_t closeParen = 0;  // Matching ')' (kNpos if unbalanced).
};

// All call sites in the token stream, in order of appearance. Control-flow
// keywords (if/for/while/switch/catch/return/sizeof) are not calls.
std::vector<CallSite> findCalls(const std::vector<Token>& tokens);

// Splits the argument tokens of a call (openParen..closeParen exclusive)
// into top-level comma-separated ranges: pairs of [begin, end) indices.
std::vector<std::pair<std::size_t, std::size_t>> splitArgs(
    const std::vector<Token>& tokens, const CallSite& call);

// True if any token in [begin, end) is the identifier `name`.
bool rangeHasIdent(const std::vector<Token>& tokens, std::size_t begin,
                   std::size_t end, std::string_view name);

// Token ranges [begin, end) that are loop bodies: for/while statements
// (braced or single-statement) and forEachSet visitor arguments. Nested
// loops yield nested ranges.
std::vector<std::pair<std::size_t, std::size_t>> loopBodies(
    const std::vector<Token>& tokens);

// An out-of-line (or in-class) function definition of interest.
struct FunctionDef {
  std::size_t nameIndex = 0;
  std::size_t paramOpen = 0;   // '(' of the parameter list.
  std::size_t paramClose = 0;  // Matching ')'.
  std::size_t bodyOpen = 0;    // '{' of the body.
  std::size_t bodyClose = 0;   // Matching '}'.
  std::vector<std::string> paramNames;       // All parameter names, in order.
  std::vector<std::string> vertexParams;     // Names of graph::Vertex params.
  std::vector<std::string> graphLikeParams;  // Names of Graph/instance reference params.
};

// Finds definitions of functions called `name` (e.g. "nodeDecision") that
// have a brace-enclosed body. Declarations (ending in ';') are skipped.
std::vector<FunctionDef> findFunctionDefs(const std::vector<Token>& tokens,
                                          std::string_view name);

}  // namespace dip::analyze
