// The analyzer's seeded self-test: an in-memory tree with at least one
// violation per rule and a set of must-stay-clean files (including the
// comment/string/raw-string/splice shapes the old regex linter tripped
// over). `dip-analyze --self-test` proves the engine still catches every
// seeded bug before CI trusts a clean scan of the real tree.
#pragma once

namespace dip::analyze {

// Returns 0 on success, 1 on any missed or spurious finding.
int runSelfTest();

}  // namespace dip::analyze
