#include "model.hpp"

#include <array>

namespace dip::analyze {

namespace {

std::string_view closerFor(std::string_view open) {
  if (open == "(") return ")";
  if (open == "{") return "}";
  if (open == "[") return "]";
  return "";
}

bool isCallKeyword(std::string_view name) {
  constexpr std::array<std::string_view, 12> kKeywords = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "new",   "delete", "co_await",
  };
  for (std::string_view keyword : kKeywords) {
    if (name == keyword) return true;
  }
  return false;
}

}  // namespace

std::size_t matchingClose(const std::vector<Token>& tokens, std::size_t open) {
  std::string_view openText = tokens[open].text;
  std::string_view closeText = closerFor(openText);
  if (closeText.empty()) return kNpos;
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (tokens[i].text == openText) {
      ++depth;
    } else if (tokens[i].text == closeText) {
      if (--depth == 0) return i;
    }
  }
  return kNpos;
}

std::size_t matchingOpen(const std::vector<Token>& tokens, std::size_t close) {
  std::string_view closeText = tokens[close].text;
  std::string_view openText;
  if (closeText == ")") openText = "(";
  else if (closeText == "}") openText = "{";
  else if (closeText == "]") openText = "[";
  else return kNpos;
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (tokens[i].text == closeText) {
      ++depth;
    } else if (tokens[i].text == openText) {
      if (--depth == 0) return i;
    }
  }
  return kNpos;
}

std::size_t receiverChainStart(const std::vector<Token>& tokens,
                               std::size_t nameIndex) {
  std::size_t i = nameIndex;
  while (i > 0) {
    const Token& prev = tokens[i - 1];
    if (prev.kind == TokenKind::kIdentifier) {
      i -= 1;
      continue;
    }
    if (prev.isPunct(".") || prev.isPunct("->") || prev.isPunct("::")) {
      i -= 1;
      continue;
    }
    if (prev.isPunct(")") || prev.isPunct("]")) {
      std::size_t open = matchingOpen(tokens, i - 1);
      if (open == kNpos) break;
      i = open;
      continue;
    }
    break;
  }
  return i;
}

std::vector<CallSite> findCalls(const std::vector<Token>& tokens) {
  std::vector<CallSite> calls;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    if (!tokens[i + 1].isPunct("(")) continue;
    if (isCallKeyword(tokens[i].text)) continue;
    CallSite call;
    call.name = tokens[i].text;
    call.nameIndex = i;
    call.openParen = i + 1;
    call.closeParen = matchingClose(tokens, i + 1);
    // Walk namespace qualifiers backwards: a::b::name(...).
    std::size_t first = i;
    std::string qualified = call.name;
    while (first >= 2 && tokens[first - 1].isPunct("::") &&
           tokens[first - 2].kind == TokenKind::kIdentifier) {
      qualified = tokens[first - 2].text + "::" + qualified;
      first -= 2;
    }
    call.qualified = std::move(qualified);
    call.isMember = first > 0 && (tokens[first - 1].isPunct(".") ||
                                  tokens[first - 1].isPunct("->"));
    calls.push_back(std::move(call));
  }
  return calls;
}

std::vector<std::pair<std::size_t, std::size_t>> splitArgs(
    const std::vector<Token>& tokens, const CallSite& call) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  if (call.closeParen == kNpos || call.closeParen <= call.openParen + 1) return args;
  int depth = 0;
  std::size_t begin = call.openParen + 1;
  for (std::size_t i = begin; i < call.closeParen; ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::kPunct) continue;
    if (token.text == "(" || token.text == "[" || token.text == "{") {
      ++depth;
    } else if (token.text == ")" || token.text == "]" || token.text == "}") {
      --depth;
    } else if (token.text == "," && depth == 0) {
      args.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  args.emplace_back(begin, call.closeParen);
  return args;
}

bool rangeHasIdent(const std::vector<Token>& tokens, std::size_t begin,
                   std::size_t end, std::string_view name) {
  for (std::size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier && tokens[i].text == name) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<std::size_t, std::size_t>> loopBodies(
    const std::vector<Token>& tokens) {
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::kIdentifier) continue;
    if (token.text == "for" || token.text == "while") {
      if (!tokens[i + 1].isPunct("(")) continue;
      std::size_t head = matchingClose(tokens, i + 1);
      if (head == kNpos || head + 1 >= tokens.size()) continue;
      if (tokens[head + 1].isPunct("{")) {
        std::size_t close = matchingClose(tokens, head + 1);
        if (close != kNpos) bodies.emplace_back(head + 2, close);
      } else {
        // Braceless body: up to the first ';' at delimiter depth zero.
        int depth = 0;
        for (std::size_t j = head + 1; j < tokens.size(); ++j) {
          const Token& t = tokens[j];
          if (t.kind != TokenKind::kPunct) continue;
          if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
          if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
          if (t.text == ";" && depth == 0) {
            bodies.emplace_back(head + 1, j);
            break;
          }
        }
      }
    } else if (token.text == "forEachSet" && tokens[i + 1].isPunct("(")) {
      // The visitor lambda runs once per set bit: its tokens are a loop
      // body for allocation purposes.
      std::size_t close = matchingClose(tokens, i + 1);
      if (close != kNpos) bodies.emplace_back(i + 2, close);
    }
  }
  return bodies;
}

namespace {

bool identEndsWith(const Token& token, std::string_view suffix) {
  return token.kind == TokenKind::kIdentifier && token.text.size() >= suffix.size() &&
         std::string_view(token.text).substr(token.text.size() - suffix.size()) ==
             suffix;
}

void parseParams(const std::vector<Token>& tokens, FunctionDef& def) {
  CallSite pseudo;
  pseudo.openParen = def.paramOpen;
  pseudo.closeParen = def.paramClose;
  for (auto [begin, end] : splitArgs(tokens, pseudo)) {
    // Ignore default arguments: the name precedes '='.
    std::size_t stop = end;
    for (std::size_t i = begin; i < end; ++i) {
      if (tokens[i].isPunct("=")) {
        stop = i;
        break;
      }
    }
    // The parameter name is the last identifier before `stop`.
    std::size_t nameIndex = kNpos;
    for (std::size_t i = begin; i < stop; ++i) {
      if (tokens[i].kind == TokenKind::kIdentifier) nameIndex = i;
    }
    if (nameIndex == kNpos) continue;
    const std::string& name = tokens[nameIndex].text;
    def.paramNames.push_back(name);
    bool isVertex = false;
    bool isGraphLike = false;
    for (std::size_t i = begin; i < nameIndex; ++i) {
      if (tokens[i].isIdent("Vertex")) isVertex = true;
      if (tokens[i].isIdent("Graph") || identEndsWith(tokens[i], "Instance")) {
        isGraphLike = true;
      }
    }
    if (isVertex) def.vertexParams.push_back(name);
    if (isGraphLike) def.graphLikeParams.push_back(name);
  }
}

}  // namespace

std::vector<FunctionDef> findFunctionDefs(const std::vector<Token>& tokens,
                                          std::string_view name) {
  std::vector<FunctionDef> defs;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!tokens[i].isIdent(name) || !tokens[i + 1].isPunct("(")) continue;
    std::size_t paramClose = matchingClose(tokens, i + 1);
    if (paramClose == kNpos) continue;
    // Skip qualifiers after the parameter list (const, noexcept, override);
    // a definition reaches '{', a declaration reaches ';'.
    std::size_t j = paramClose + 1;
    while (j < tokens.size() && (tokens[j].isIdent("const") ||
                                 tokens[j].isIdent("noexcept") ||
                                 tokens[j].isIdent("override") ||
                                 tokens[j].isIdent("final"))) {
      ++j;
    }
    if (j >= tokens.size() || !tokens[j].isPunct("{")) continue;
    std::size_t bodyClose = matchingClose(tokens, j);
    if (bodyClose == kNpos) continue;
    FunctionDef def;
    def.nameIndex = i;
    def.paramOpen = i + 1;
    def.paramClose = paramClose;
    def.bodyOpen = j;
    def.bodyClose = bodyClose;
    parseParams(tokens, def);
    defs.push_back(std::move(def));
  }
  return defs;
}

}  // namespace dip::analyze
