#include "selftest.hpp"

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace dip::analyze {

namespace {

struct SeededCase {
  const char* path;
  const char* content;
  const char* expectRule;  // nullptr: the file must produce zero findings.
};

// The seeded tree is analyzed as one file set (the mutator rule is
// cross-file), so clean files must stay clean in the presence of every
// firing file.
const SeededCase kCases[] = {
    // --- ported from the regex linter's self-test -------------------------
    {"src/core/bad_uncharged.cpp",
     "#include \"core/wire.hpp\"\n"
     "std::size_t leak() {\n"
     "  return wire::encodeSymDmamFirst(first, n).bitsForNode(0);\n"
     "}\n",
     "uncharged-wire"},
    {"src/core/bad_rand.cpp",
     "#include <cstdlib>\n"
     "int pick() { return rand(); }\n",
     "nondeterminism"},
    {"src/core/bad_uncovered_charge.cpp",
     "void run(net::Transcript& transcript) {\n"
     "  transcript.beginRound(\"M\");\n"
     "  transcript.chargeFromProver(0, 42);\n"
     "}\n",
     "charge-audit"},
    {"src/net/bad_print.cpp",
     "#include <iostream>\n"
     "void report() { std::cout << \"hi\\n\"; }\n",
     "library-io"},
    {"src/core/bad_global_view.cpp",
     "bool Proto::nodeDecision(const graph::Graph& g, graph::Vertex v) {\n"
     "  for (graph::Vertex u = 0; u < n; ++u) {\n"
     "    if (g.closedRow(u).none()) return false;\n"
     "  }\n"
     "  return true;\n"
     "}\n",
     "locality"},
    {"src/core/bad_thread.cpp",
     "#include <thread>\n"
     "void spin() {\n"
     "  std::thread worker([] { std::this_thread::yield(); });\n"
     "  worker.join();\n"
     "}\n",
     "thread-containment"},
    {"src/sim/good_worker_pool.cpp",
     "#include <thread>\n"
     "#include <vector>\n"
     "void fanOut(unsigned poolSize) {\n"
     "  std::vector<std::thread> pool;\n"
     "  for (unsigned i = 0; i < poolSize; ++i) pool.emplace_back([] {});\n"
     "  for (std::thread& t : pool) t.join();\n"
     "}\n",
     nullptr},
    {"src/core/good_protocol.cpp",
     "void run(net::Transcript& transcript, util::Rng& rng) {\n"
     "  transcript.beginRound(\"A\");\n"
     "  transcript.chargeToProver(0, seedBits);\n"
     "#if DIP_AUDIT\n"
     "  net::auditCharge(\"Good/A\", 0, transcript.roundBitsToProver(0),\n"
     "                   wire::encodeChallenge(c, family).bitCount());\n"
     "#endif\n"
     "}\n",
     nullptr},
    {"src/core/good_annotated.cpp",
     "void merge(net::Transcript& transcript) {\n"
     "  // dip-lint: allow(charge-audit) -- transcript merge, not a wire round\n"
     "  transcript.chargeToProver(0, 7);\n"
     "}\n",
     nullptr},
    {"src/hash/bad_loop_alloc.cpp",
     "util::BigUInt sum(const util::BigUInt& p, std::size_t n) {\n"
     "  util::BigUInt acc{0};\n"
     "  for (std::size_t i = 0; i < n; ++i) {\n"
     "    util::BigUInt term = power(i) % p;\n"
     "    acc = addMod(acc, term, p);\n"
     "  }\n"
     "  return acc;\n"
     "}\n",
     "hot-loop-alloc"},
    {"src/hash/bad_foreachset_alloc.cpp",
     "void walk(const util::BitRow& row, const util::BigUInt& p) {\n"
     "  row.forEachSet([&](std::size_t w) {\n"
     "    util::BigUInt coefficient{w};\n"
     "    consume(coefficient % p);\n"
     "  });\n"
     "}\n",
     "hot-loop-alloc"},
    {"src/hash/good_hoisted.cpp",
     "util::BigUInt sum(const util::BigUInt& p, std::size_t n) {\n"
     "  util::BigUInt acc{0};\n"
     "  util::BigUInt term{0};\n"
     "  for (std::size_t i = 0; i < n; ++i) {\n"
     "    term = power(i);\n"
     "    const util::BigUInt& reduced = term;\n"
     "    acc = addMod(acc, reduced, p);\n"
     "  }\n"
     "  return acc;\n"
     "}\n",
     nullptr},
    {"src/core/good_cold_loop.cpp",
     "util::BigUInt product(std::size_t n) {\n"
     "  util::BigUInt out{1};\n"
     "  for (std::size_t i = 1; i <= n; ++i) {\n"
     "    util::BigUInt factor{i};\n"
     "    out = out * factor;\n"
     "  }\n"
     "  return out;\n"
     "}\n",
     nullptr},
    {"src/adv/bad_unregistered_mutator.hpp",
     "class SilentMutator final : public MessageMutator {\n"
     " public:\n"
     "  const char* name() const override { return \"silent\"; }\n"
     "  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,\n"
     "              const MutationContext& ctx, util::Rng& rng) const override;\n"
     "};\n",
     "mutator-selftest"},
    {"src/adv/good_registered_mutator.hpp",
     "class LoudMutator final : public MessageMutator {\n"
     " public:\n"
     "  const char* name() const override { return \"loud\"; }\n"
     "  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,\n"
     "              const MutationContext& ctx, util::Rng& rng) const override;\n"
     "};\n",
     nullptr},
    {"src/adv/good_registered_mutator.cpp",
     "#include \"adv/good_registered_mutator.hpp\"\n"
     "DIP_MUTATOR_SELF_TEST(LoudMutator, \"loud\", 0x10d)\n",
     nullptr},
    {"src/adv/good_annotated_mutator.hpp",
     "// dip-lint: allow(mutator-selftest) -- test scaffold, never in the battery\n"
     "class ScaffoldMutator final : public MessageMutator {\n"
     " public:\n"
     "  const char* name() const override { return \"scaffold\"; }\n"
     "  void mutate(core::wire::EncodedRound& round, FieldSurface* surface,\n"
     "              const MutationContext& ctx, util::Rng& rng) const override;\n"
     "};\n",
     nullptr},
    {"src/hash/good_annotated_loop.cpp",
     "void setup(std::vector<util::BigUInt>& table, std::size_t n) {\n"
     "  table.reserve(n);\n"
     "  for (std::size_t i = 0; i < n; ++i) {\n"
     "    // dip-lint: allow(hot-loop-alloc) -- one-time table construction\n"
     "    util::BigUInt entry{i};\n"
     "    table.push_back(entry);\n"
     "  }\n"
     "}\n",
     nullptr},
    {"src/hash/bad_loop_new.cpp",
     "void expand(std::vector<std::uint64_t*>& slots, std::size_t n) {\n"
     "  for (std::size_t i = 0; i < n; ++i) {\n"
     "    slots[i] = new std::uint64_t[4];\n"
     "  }\n"
     "}\n",
     "hot-loop-alloc"},
    {"src/hash/bad_growth_unreserved.cpp",
     "void collect(std::vector<std::uint64_t>& out, std::size_t n) {\n"
     "  for (std::size_t i = 0; i < n; ++i) {\n"
     "    out.push_back(i * i);\n"
     "  }\n"
     "}\n",
     "hot-loop-alloc"},
    {"src/hash/good_growth_reserved.cpp",
     "void collect(std::vector<std::uint64_t>& out, std::size_t n) {\n"
     "  out.reserve(n);\n"
     "  for (std::size_t i = 0; i < n; ++i) {\n"
     "    out.push_back(i * i);\n"
     "  }\n"
     "}\n",
     nullptr},
    {"src/core/good_cold_growth.cpp",
     "void collect(std::vector<std::uint64_t>& out, std::size_t n) {\n"
     "  for (std::size_t i = 0; i < n; ++i) {\n"
     "    out.emplace_back(i);\n"
     "  }\n"
     "}\n",
     nullptr},
    {"src/core/bad_wire_loop_alloc.cpp",
     "EncodedRound encode(const Message& message, std::size_t n) {\n"
     "  EncodedRound round;\n"
     "  for (graph::Vertex v = 0; v < n; ++v) {\n"
     "    util::BigUInt share = message.a[v];\n"
     "    round.unicast[v].writeBig(share, 64);\n"
     "  }\n"
     "  return round;\n"
     "}\n",
     "hot-loop-alloc"},
    {"src/core/good_wire_hoisted.cpp",
     "EncodedRound encode(const Message& message, std::size_t n) {\n"
     "  EncodedRound round;\n"
     "  for (graph::Vertex v = 0; v < n; ++v) {\n"
     "    round.unicast[v].writeBig(message.a[v], 64);\n"
     "  }\n"
     "  return round;\n"
     "}\n",
     nullptr},
    {"src/net/bad_audit_growth.cpp",
     "void stage(std::vector<std::size_t>& charged, std::size_t n) {\n"
     "  for (std::size_t v = 0; v < n; ++v) {\n"
     "    charged.push_back(v);\n"
     "  }\n"
     "}\n",
     "hot-loop-alloc"},
    {"src/net/bad_traversal_neighbors.cpp",
     "std::size_t scan(const graph::Graph& g, std::size_t n) {\n"
     "  std::size_t acc = 0;\n"
     "  for (graph::Vertex v = 0; v < n; ++v) {\n"
     "    for (graph::Vertex u : g.neighbors(v)) acc += u;\n"
     "  }\n"
     "  return acc;\n"
     "}\n",
     "hot-loop-alloc"},
    {"src/lb/bad_traversal_closed.cpp",
     "bool check(const graph::Graph* g, graph::Vertex v, std::size_t rounds) {\n"
     "  for (std::size_t r = 0; r < rounds; ++r) {\n"
     "    if (g->closedNeighbors(v).empty()) return false;\n"
     "  }\n"
     "  return true;\n"
     "}\n",
     "hot-loop-alloc"},
    {"src/net/good_traversal_foreach.cpp",
     "std::size_t scan(const graph::Graph& g, std::size_t n) {\n"
     "  std::size_t acc = 0;\n"
     "  for (graph::Vertex v = 0; v < n; ++v) {\n"
     "    g.forEachNeighbor(v, [&](graph::Vertex u) { acc += u; });\n"
     "  }\n"
     "  return acc;\n"
     "}\n",
     nullptr},
    {"src/net/good_traversal_cold.cpp",
     "std::vector<graph::Vertex> snapshot(const graph::Graph& g, graph::Vertex v) {\n"
     "  return g.neighbors(v);\n"
     "}\n",
     nullptr},
    {"src/core/good_traversal_unscoped.cpp",
     "std::size_t scan(const graph::Graph& g, std::size_t n) {\n"
     "  std::size_t acc = 0;\n"
     "  for (graph::Vertex v = 0; v < n; ++v) {\n"
     "    acc += g.neighbors(v).size();\n"
     "  }\n"
     "  return acc;\n"
     "}\n",
     nullptr},

    // --- charge-coverage --------------------------------------------------
    {"src/core/bad_free_encode_round.cpp",
     "void run(net::Transcript& transcript) {\n"
     "  transcript.beginRound(\"M\");\n"
     "#if DIP_AUDIT\n"
     "  net::auditChargedRound(\"Bad/M\", transcript,\n"
     "                         [&] { return wire::encodeSymDmamFirst(first, n); });\n"
     "#endif\n"
     "}\n",
     "charge-coverage"},
    {"src/core/bad_blind_audit.cpp",
     "void run(net::Transcript& transcript) {\n"
     "  transcript.beginRound(\"M\");\n"
     "  transcript.chargeFromProver(0, 42);\n"
     "  net::auditCharge(\"Bad/M\", 0, transcript.roundBitsFromProver(0), 42);\n"
     "}\n",
     "charge-coverage"},

    // --- determinism-escape -----------------------------------------------
    {"src/core/bad_unordered_iter.cpp",
     "#include <unordered_map>\n"
     "std::size_t foldCounts(const std::vector<int>& xs) {\n"
     "  std::unordered_map<int, int> counts;\n"
     "  for (int x : xs) counts[x]++;\n"
     "  std::size_t digest = 0;\n"
     "  for (const auto& entry : counts) digest = digest * 31 + entry.second;\n"
     "  return digest;\n"
     "}\n",
     "determinism-escape"},
    {"src/sim/bad_float_fold.cpp",
     "struct PartStats { double meanBits = 0.0; };\n"
     "void fold(PartStats& acc, const PartStats& part) {\n"
     "  acc.meanBits += part.meanBits;\n"
     "}\n",
     "determinism-escape"},
    {"src/graph/good_unordered_membership.cpp",
     "#include <string>\n"
     "#include <unordered_set>\n"
     "bool seenBefore(std::unordered_set<std::string>& seen, const std::string& key) {\n"
     "  return !seen.insert(key).second;\n"
     "}\n",
     nullptr},

    // --- locality: brace-matched analysis ---------------------------------
    {"src/core/bad_graph_escape.cpp",
     "bool Proto::nodeDecision(const graph::Graph& g, graph::Vertex v,\n"
     "                         const Msg& msg) const {\n"
     "  return helpers::globalTriangleCount(g, msg) > 0;\n"
     "}\n",
     "locality"},
    {"src/core/good_local_decision.cpp",
     "bool Proto::nodeDecision(const graph::Graph& g, graph::Vertex v,\n"
     "                         const Msg& msg) const {\n"
     "  if (!net::verifyTreeLocally(g, tree, v)) return false;\n"
     "  bool ok = g.hasEdge(v, msg.parent[v]);\n"
     "  g.row(v).forEachSet([&](std::size_t u) {\n"
     "    if (msg.claims[u] != msg.claims[v]) ok = false;\n"
     "  });\n"
     "  for (graph::Vertex child : net::childrenOf(g, tree, v)) {\n"
     "    if (msg.claims[child] > bound) ok = false;\n"
     "  }\n"
     "  return ok;\n"
     "}\n",
     nullptr},

    // --- suppression-hygiene ----------------------------------------------
    {"src/core/bad_dead_allow.cpp",
     "// dip-lint: allow(nondeterminism) -- nothing here actually fires\n"
     "int constantPick() { return 4; }\n",
     "suppression-hygiene"},
    {"src/core/bad_reasonless_allow.cpp",
     "void merge(net::Transcript& transcript) {\n"
     "  // dip-lint: allow(charge-audit)\n"
     "  transcript.chargeToProver(0, 7);\n"
     "}\n",
     "suppression-hygiene"},

    // --- regex false-positive regressions: must stay clean ----------------
    {"src/core/good_commented_patterns.cpp",
     "/* In a block comment none of this is code:\n"
     "   std::cout << \"x\"; rand(); wire::encodeFoo(y);\n"
     "   transcript.chargeToProver(v, 1); std::thread t; */\n"
     "// std::random_device also_not_code;\n"
     "static const char* kDoc = \"std::thread is banned; rand() too\";\n"
     "static const char* kRaw = R\"doc(srand(1);\n"
     "#include <iostream>\n"
     "std::cout << time(NULL);)doc\";\n"
     "int f() { return 1; }\n",
     nullptr},
    {"src/core/good_spliced_comment.cpp",
     "// a line comment continued by a splice \\\n"
     "   rand(); std::cout << 1; srand(2);\n"
     "int g() { return 2; }\n",
     nullptr},
};

}  // namespace

int runSelfTest() {
  std::vector<std::pair<std::string, std::string>> files;
  for (const SeededCase& seeded : kCases) {
    files.emplace_back(seeded.path, seeded.content);
  }
  AnalysisReport report = analyzeInMemory(files);

  std::map<std::string, std::set<std::string>> byFile;
  for (const Finding& finding : report.findings) {
    byFile[finding.path].insert(finding.rule);
  }

  std::vector<std::string> failures;
  for (const SeededCase& seeded : kCases) {
    const std::set<std::string>& caught = byFile[seeded.path];
    if (seeded.expectRule == nullptr) {
      if (!caught.empty()) {
        std::string rules;
        for (const std::string& rule : caught) rules += " " + rule;
        failures.push_back(std::string(seeded.path) + ": expected clean, got" + rules);
      }
    } else if (caught.count(seeded.expectRule) == 0) {
      failures.push_back(std::string(seeded.path) + ": expected [" +
                         seeded.expectRule + "] to fire");
    }
  }

  // Every rule in the registry must be covered by at least one firing case.
  std::set<std::string> firingRules;
  for (const SeededCase& seeded : kCases) {
    if (seeded.expectRule != nullptr) firingRules.insert(seeded.expectRule);
  }
  for (const RuleDescriptor& rule : ruleRegistry()) {
    if (firingRules.count(rule.name) == 0) {
      failures.push_back("rule [" + rule.name + "] has no seeded firing case");
    }
  }

  if (!failures.empty()) {
    std::printf("dip-analyze self-test FAILED:\n");
    for (const std::string& failure : failures) {
      std::printf("  %s\n", failure.c_str());
    }
    return 1;
  }
  std::printf("dip-analyze self-test OK (%zu seeded cases, %zu rules)\n",
              std::size(kCases), ruleRegistry().size());
  return 0;
}

}  // namespace dip::analyze
