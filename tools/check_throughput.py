#!/usr/bin/env python3
"""CI gate for bench_throughput: flag >10% speedup regressions.

Compares a fresh bench_throughput --json run against the committed
BENCH_throughput.json baseline. Absolute trials/sec are machine-dependent,
so the gate compares the batch/scalar *speedup ratio* per protocol — a
dimensionless number that survives moving between CI runners. A cell
regresses when its current speedup falls more than TOLERANCE below the
baseline speedup.

Independently of the baseline comparison, any cell whose current speedup is
below 1.0 fails outright: a no-win cell must either be fixed or pinned to
the scalar path via the no-win list in sim/throughput.cpp, in which case its
"engine" field reads "scalar-fallback" and the sub-1.0 ratio is exempt.

Usage: check_throughput.py BASELINE.json CURRENT.json
Exit 0 when every cell is within tolerance, 1 otherwise.
"""
import json
import sys

TOLERANCE = 0.10


def load_cells(path):
    with open(path) as handle:
        doc = json.load(handle)
    return {cell["protocol"]: cell for cell in doc["cells"]}


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline = load_cells(argv[1])
    current = load_cells(argv[2])

    failed = []
    for protocol, base in sorted(baseline.items()):
        cur = current.get(protocol)
        if cur is None:
            failed.append(f"{protocol}: missing from current run")
            continue
        base_speedup = float(base["speedup"])
        cur_speedup = float(cur["speedup"])
        floor = base_speedup * (1.0 - TOLERANCE)
        status = "ok" if cur_speedup >= floor else "REGRESSED"
        print(
            f"{protocol:12s}  baseline {base_speedup:5.2f}x  "
            f"current {cur_speedup:5.2f}x  floor {floor:5.2f}x  {status}"
        )
        if cur_speedup < floor:
            failed.append(
                f"{protocol}: speedup {cur_speedup:.3f} below floor {floor:.3f} "
                f"(baseline {base_speedup:.3f}, tolerance {TOLERANCE:.0%})"
            )
        if cur_speedup < 1.0 and cur.get("engine") != "scalar-fallback":
            failed.append(
                f"{protocol}: batch engine loses to scalar "
                f"(speedup {cur_speedup:.3f} < 1.0) and the cell is not pinned "
                f"to the scalar path — fix it or add it to the no-win list in "
                f"sim/throughput.cpp"
            )
    for protocol in sorted(set(current) - set(baseline)):
        print(f"{protocol:12s}  new cell (not in baseline) — add it to the baseline")

    if failed:
        print("\nThroughput regression gate FAILED:", file=sys.stderr)
        for line in failed:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("\nThroughput regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
