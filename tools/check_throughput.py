#!/usr/bin/env python3
"""CI gate for the benchmark JSON documents: flag regressions.

Compares a fresh --json run against its committed baseline. The document's
"benchmark" field selects the rule set:

bench_throughput (BENCH_throughput.json)
    Absolute trials/sec are machine-dependent, so the gate compares the
    batch/scalar *speedup ratio* per protocol — a dimensionless number that
    survives moving between CI runners. A cell regresses when its current
    speedup falls more than TOLERANCE below the baseline speedup.

    Independently of the baseline comparison, any cell whose current speedup
    is below 1.0 fails outright: a no-win cell must either be fixed or
    pinned to the scalar path via the no-win list in sim/throughput.cpp, in
    which case its "engine" field reads "scalar-fallback" and the sub-1.0
    ratio is exempt.

bench_e16_distributed (BENCH_distributed.json)
    Rows are keyed by (protocol, workers). Digests are machine-independent
    and must match the baseline EXACTLY — a digest drift means the sharded
    fold is no longer byte-identical to the committed results. The
    scaling_vs_1 ratio (again dimensionless) must stay at or above the
    baseline row's committed min_scaling floor.

In both modes a baseline row missing from the current run is a failure —
silently dropping a cell is how coverage rots.

Usage: check_throughput.py BASELINE.json CURRENT.json
Exit 0 when every cell is within tolerance, 1 otherwise.
"""
import json
import sys

TOLERANCE = 0.10


def load_doc(path):
    with open(path) as handle:
        return json.load(handle)


def row_key(doc, cell):
    if doc.get("benchmark") == "bench_e16_distributed":
        return (cell["protocol"], int(cell["workers"]))
    return cell["protocol"]


def key_str(key):
    if isinstance(key, tuple):
        return f"{key[0]} @ {key[1]}w"
    return key


def load_cells(doc):
    return {row_key(doc, cell): cell for cell in doc["cells"]}


def check_throughput(key, base, cur, failed):
    base_speedup = float(base["speedup"])
    cur_speedup = float(cur["speedup"])
    floor = base_speedup * (1.0 - TOLERANCE)
    status = "ok" if cur_speedup >= floor else "REGRESSED"
    print(
        f"{key_str(key):18s}  baseline {base_speedup:5.2f}x  "
        f"current {cur_speedup:5.2f}x  floor {floor:5.2f}x  {status}"
    )
    if cur_speedup < floor:
        failed.append(
            f"{key_str(key)}: speedup {cur_speedup:.3f} below floor {floor:.3f} "
            f"(baseline {base_speedup:.3f}, tolerance {TOLERANCE:.0%})"
        )
    if cur_speedup < 1.0 and cur.get("engine") != "scalar-fallback":
        failed.append(
            f"{key_str(key)}: batch engine loses to scalar "
            f"(speedup {cur_speedup:.3f} < 1.0) and the cell is not pinned "
            f"to the scalar path — fix it or add it to the no-win list in "
            f"sim/throughput.cpp"
        )


def check_distributed(key, base, cur, failed):
    floor = float(base["min_scaling"])
    scaling = float(cur["scaling_vs_1"])
    digest_ok = cur.get("digest") == base["digest"]
    status = "ok" if digest_ok and scaling >= floor else "REGRESSED"
    print(
        f"{key_str(key):18s}  digest {'match' if digest_ok else 'MISMATCH':8s}  "
        f"scaling {scaling:5.2f}x  floor {floor:5.2f}x  {status}"
    )
    if not digest_ok:
        failed.append(
            f"{key_str(key)}: digest {cur.get('digest')} != baseline "
            f"{base['digest']} — the distributed fold is no longer "
            f"byte-identical to the committed results"
        )
    if scaling < floor:
        failed.append(
            f"{key_str(key)}: scaling_vs_1 {scaling:.3f} below committed "
            f"floor {floor:.3f}"
        )


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base_doc = load_doc(argv[1])
    cur_doc = load_doc(argv[2])
    kind = base_doc.get("benchmark", "bench_throughput")
    if cur_doc.get("benchmark", "bench_throughput") != kind:
        print(
            f"baseline is {kind} but current run is "
            f"{cur_doc.get('benchmark')!r} — wrong file pairing",
            file=sys.stderr,
        )
        return 2
    baseline = load_cells(base_doc)
    current = load_cells(cur_doc)
    check = check_distributed if kind == "bench_e16_distributed" else check_throughput

    failed = []
    for key, base in sorted(baseline.items()):
        cur = current.get(key)
        if cur is None:
            failed.append(f"{key_str(key)}: missing from current run")
            continue
        check(key, base, cur, failed)
    for key in sorted(set(current) - set(baseline)):
        print(f"{key_str(key):18s}  new cell (not in baseline) — add it to the baseline")

    if failed:
        print(f"\n{kind} regression gate FAILED:", file=sys.stderr)
        for line in failed:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print(f"\n{kind} regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
