// dipd — verification-as-a-service from the command line.
//
// Runs named workload cells on the sharded multi-process runtime
// (sim::DistributedRunner) and prints the same deterministic table the
// in-process benches print: the stdout bytes are identical for ANY
// --workers value (including 1) because both substrates share one trial
// engine and one index-ordered fold. Timings and fleet info go to stderr.
//
//   dipd --list-cells
//   dipd --cell sym_dam_p2 --workers 4
//   dipd --workers 2 --grain 32 --trials 200        # all six cells
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "sim/distributed.hpp"
#include "sim/workload.hpp"

using namespace dip;

namespace {

struct Options {
  std::string cell;  // Empty: every registered cell.
  unsigned workers = 2;
  unsigned threadsPerWorker = 1;
  std::uint64_t grain = 16;
  std::uint64_t seed = 0;
  std::size_t trials = 0;  // 0: the cell's committed count.
  bool listCells = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list-cells] [--cell NAME] [--workers N]\n"
               "          [--threads-per-worker N] [--grain N] [--trials N] [--seed N]\n",
               argv0);
  return 2;
}

bool parseU64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 0);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::uint64_t value = 0;
    if (std::strcmp(arg, "--list-cells") == 0) {
      opt.listCells = true;
    } else if (std::strcmp(arg, "--cell") == 0 && i + 1 < argc) {
      opt.cell = argv[++i];
    } else if (std::strcmp(arg, "--workers") == 0 && i + 1 < argc &&
               parseU64(argv[++i], value)) {
      opt.workers = static_cast<unsigned>(value);
    } else if (std::strcmp(arg, "--threads-per-worker") == 0 && i + 1 < argc &&
               parseU64(argv[++i], value)) {
      opt.threadsPerWorker = static_cast<unsigned>(value);
    } else if (std::strcmp(arg, "--grain") == 0 && i + 1 < argc &&
               parseU64(argv[++i], value)) {
      opt.grain = value;
    } else if (std::strcmp(arg, "--trials") == 0 && i + 1 < argc &&
               parseU64(argv[++i], value)) {
      opt.trials = static_cast<std::size_t>(value);
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc &&
               parseU64(argv[++i], value)) {
      opt.seed = value;
    } else {
      return usage(argv[0]);
    }
  }

  if (opt.listCells) {
    for (const sim::workload::CellInfo& info : sim::workload::cells()) {
      std::printf("%-12s  %7zu trials  %s\n", std::string(info.name).c_str(),
                  info.trials, info.gni ? "gni" : "fast");
    }
    return 0;
  }

  std::vector<std::string> names;
  if (!opt.cell.empty()) {
    if (sim::workload::findCell(opt.cell) == nullptr) {
      std::fprintf(stderr, "dipd: unknown cell '%s' (try --list-cells)\n",
                   opt.cell.c_str());
      return 2;
    }
    names.push_back(opt.cell);
  } else {
    for (const sim::workload::CellInfo& info : sim::workload::cells()) {
      names.emplace_back(info.name);
    }
  }

  sim::TrialConfig base;
  base.masterSeed = opt.seed;
  base.threads = opt.threadsPerWorker;
  sim::DistributedConfig dist;
  dist.workers = opt.workers;
  dist.threadsPerWorker = opt.threadsPerWorker;
  dist.grain = opt.grain;

  std::fprintf(stderr, "[dipd: %u worker(s) x %u thread(s), grain %llu]\n",
               dist.workers, dist.threadsPerWorker,
               static_cast<unsigned long long>(dist.grain));

  try {
    sim::DistributedRunner runner(base, dist);
    std::printf("%-12s  %7s  %7s  %8s  %18s\n", "protocol", "trials", "accepts",
                "maxBits", "digest");
    for (const std::string& name : names) {
      const sim::TrialStats stats = runner.runCell(name, opt.trials);
      std::printf("%-12s  %7zu  %7zu  %8zu  0x%016llx\n", name.c_str(),
                  stats.trials, stats.accepts, stats.maxPerNodeBits,
                  static_cast<unsigned long long>(stats.digest));
      std::fprintf(stderr, "%-12s  %10.1f trials/s  (%u live worker(s))\n",
                   name.c_str(),
                   stats.wallSeconds > 0.0
                       ? static_cast<double>(stats.trials) / stats.wallSeconds
                       : 0.0,
                   runner.liveWorkers());
    }
    runner.shutdown();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dipd: %s\n", e.what());
    return 1;
  }
  return 0;
}
