#!/usr/bin/env python3
"""CI gate for the CSR graph engine's bytes-per-node budget.

Compares a fresh `bench_e15_dryrun --json` memory report against the
committed ceilings in BENCH_memory.json. The report is fully deterministic
(fixed seeds, no timing), so unlike the throughput gate there is no
tolerance band: a row fails when its bytes-per-node exceeds the committed
ceiling, and the ceilings carry the headroom explicitly.

A committed row that is missing from the current run also fails — dropping
a family or size from the bench silently would un-gate it.

Usage: check_memory.py BASELINE.json CURRENT.json
Exit 0 when every committed row is present and within its ceiling,
1 otherwise.
"""
import json
import sys


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        ceilings = json.load(handle)["maxBytesPerNode"]
    with open(argv[2]) as handle:
        rows = json.load(handle)["rows"]
    current = {(row["family"], row["n"]): row for row in rows}

    failed = []
    for entry in ceilings:
        key = (entry["family"], entry["n"])
        label = f"{entry['family']:>8s} n={entry['n']:<8d}"
        row = current.get(key)
        if row is None:
            print(f"{label}  MISSING from current run")
            failed.append(f"{key}: missing from current run")
            continue
        measured = float(row["bytesPerNode"])
        ceiling = float(entry["ceiling"])
        status = "ok" if measured <= ceiling else "OVER BUDGET"
        print(f"{label}  {measured:6.2f} B/node  ceiling {ceiling:6.2f}  {status}")
        if measured > ceiling:
            failed.append(f"{key}: {measured:.3f} B/node exceeds ceiling {ceiling:.3f}")

    if failed:
        print("\nMemory budget violations:", file=sys.stderr)
        for line in failed:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nAll {len(ceilings)} rows within the committed bytes-per-node budget.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
