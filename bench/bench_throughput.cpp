// Throughput macro-benchmark: trials/sec per protocol, batch engine vs the
// scalar hash path on identical workloads.
//
// The deterministic table (protocol, trials, accepts, maxBits, digest) goes
// to stdout and is bit-identical at every thread count and in both engine
// modes — the batch engine changes evaluation strategy, never values.
// Timings (trials/sec, speedup) go to stderr and, with --json PATH, to a
// JSON file in the BENCH_throughput.json baseline format; CI compares the
// speedup ratios (machine-normalized) against the committed baseline and
// flags >10% regressions.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "hash/batch_eval.hpp"
#include "sim/throughput.hpp"

using namespace dip;

namespace {

// Best-of-5 wall times per cell keep the committed speedups stable on noisy
// machines without inflating the smoke-step runtime; main() interleaves the
// scalar and batch repeats so thermal or frequency drift hits both modes
// equally.
constexpr int kRepeats = 5;

std::vector<sim::ThroughputCell> runOnce(const sim::TrialConfig& config, bool batch) {
  const bool saved = hash::batchEnabled();
  hash::setBatchEnabled(batch);
  std::vector<sim::ThroughputCell> cells = sim::runThroughputWorkload(config);
  hash::setBatchEnabled(saved);
  return cells;
}

void keepBest(std::vector<sim::ThroughputCell>& best,
              std::vector<sim::ThroughputCell>&& cells) {
  if (best.empty()) {
    best = std::move(cells);
    return;
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].stats.wallSeconds < best[i].stats.wallSeconds) {
      best[i].stats.wallSeconds = cells[i].stats.wallSeconds;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      jsonPath = argv[i] + 7;
    }
  }

  bench::printHeader("THROUGHPUT", "Trial engine throughput: batch vs scalar hash path");

  std::vector<sim::ThroughputCell> scalar;
  std::vector<sim::ThroughputCell> batch;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    keepBest(scalar, runOnce(engine, false));
    keepBest(batch, runOnce(engine, true));
  }

  // Deterministic table only: identical at any pool size and engine mode.
  std::printf("\n%-12s  %7s  %7s  %8s  %18s\n", "protocol", "trials", "accepts",
              "maxBits", "digest");
  bench::printRule();
  bool identical = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const sim::TrialStats& s = batch[i].stats;
    std::printf("%-12s  %7zu  %7zu  %8zu  0x%016llx\n", batch[i].protocol.c_str(),
                s.trials, s.accepts, s.maxPerNodeBits,
                static_cast<unsigned long long>(s.digest));
    if (!s.sameResults(scalar[i].stats)) identical = false;
  }
  std::printf("\nbatch == scalar results: %s\n", identical ? "yes" : "NO (BUG)");

  // Timings: stderr + optional JSON, never stdout.
  std::fprintf(stderr, "\n%-12s  %12s  %12s  %8s\n", "protocol", "scalar t/s",
               "batch t/s", "speedup");
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::fprintf(stderr, "%-12s  %12.1f  %12.1f  %7.2fx\n",
                 batch[i].protocol.c_str(), scalar[i].trialsPerSecond(),
                 batch[i].trialsPerSecond(),
                 scalar[i].stats.wallSeconds / batch[i].stats.wallSeconds);
  }

  if (!jsonPath.empty()) {
    std::FILE* out = std::fopen(jsonPath.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"bench_throughput\",\n  \"cells\": [\n");
    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::fprintf(out,
                   "    {\"protocol\": \"%s\", \"trials\": %zu, "
                   "\"scalar_trials_per_sec\": %.1f, \"batch_trials_per_sec\": %.1f, "
                   "\"speedup\": %.3f, \"engine\": \"%s\"}%s\n",
                   batch[i].protocol.c_str(), batch[i].stats.trials,
                   scalar[i].trialsPerSecond(), batch[i].trialsPerSecond(),
                   scalar[i].stats.wallSeconds / batch[i].stats.wallSeconds,
                   batch[i].engine.c_str(), i + 1 < batch.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }
  return identical ? 0 : 1;
}
