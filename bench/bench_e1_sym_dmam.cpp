// E1 — Theorem 1.1: Sym in dMAM[O(log n)] (Protocol 1).
//
// Regenerates:
//   (a) acceptance table: honest prover on symmetric graphs (completeness)
//       vs the optimal committed cheater on rigid graphs (soundness), with
//       Wilson intervals;
//   (b) cost table: measured max per-node bits of real executions, the
//       structural cost model, and the Theta(n^2) LCP baseline — the
//       exponential gap interaction buys.
//
// Trials run on the sim::TrialRunner engine (--threads N / DIP_THREADS);
// the tables are bit-identical at every thread count.
#include <cstdio>
#include <memory>

#include "bench/dryrun_section.hpp"
#include "bench/options.hpp"
#include "bench/table.hpp"
#include "core/sym_dmam.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "pls/sym_lcp.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

using namespace dip;

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E1", "Protocol 1: Sym in dMAM[O(log n)] (Theorem 1.1)");

  double trialSeconds = 0.0;
  std::printf("\n(a) Acceptance (2/3 vs 1/3 thresholds; trials per cell: 400)\n");
  std::printf("%6s  %26s  %26s\n", "n", "honest on symmetric", "cheater on rigid");
  bench::printRule();
  for (std::size_t n : {8u, 12u, 16u, 24u, 32u}) {
    util::Rng rng(1000 + n);
    core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(n));

    graph::Graph symmetric = graph::randomSymmetricConnected(n, rng);
    sim::TrialStats honest = sim::estimateAcceptance(
        protocol, symmetric,
        [&](std::size_t) { return std::make_unique<core::HonestSymDmamProver>(protocol.family()); },
        400, bench::cellConfig(engine, 1100 + n));

    graph::Graph rigid = graph::randomRigidConnected(n, rng);
    sim::TrialStats cheater = sim::estimateAcceptance(
        protocol, rigid,
        [&](std::size_t trial) {
          return std::make_unique<core::CheatingRhoProver>(
              protocol.family(), core::CheatingRhoProver::Strategy::kRandomPermutation,
              trial);
        },
        400, bench::cellConfig(engine, 1200 + n));
    trialSeconds += honest.wallSeconds + cheater.wallSeconds;

    std::printf("%6zu  %26s  %26s\n", n, bench::formatRate(honest).c_str(),
                bench::formatRate(cheater).c_str());
  }

  std::printf("\n(b) Communication cost, max bits per node\n");
  std::printf("%6s  %14s  %12s  %14s  %10s\n", "n", "measured", "model",
              "LCP baseline", "LCP/model");
  bench::printRule();
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    std::size_t model = core::SymDmamProtocol::costModel(n).totalPerNode();
    std::size_t lcp = pls::SymLcp::adviceBitsPerNode(n);
    std::string measured = "-";
    if (n <= 256) {
      util::Rng rng(2000 + n);
      core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(n));
      graph::Graph g = graph::randomSymmetricConnected(n, rng);
      core::HonestSymDmamProver prover(protocol.family());
      measured = std::to_string(protocol.run(g, prover, rng).transcript.maxPerNodeBits());
    }
    std::printf("%6zu  %14s  %12zu  %14zu  %9.1fx\n", n, measured.c_str(), model, lcp,
                static_cast<double>(lcp) / static_cast<double>(model));
  }
  std::printf("\n(c) Large-n structural dry-run (CSR engine, model widths)\n");
  bench::printDryRunColumns();
  for (std::size_t bigN : bench::kDryRunSizes) {
    bench::forEachDryRunFamily(bigN, [&](const char* family, const graph::CsrGraph& g) {
      const sim::SymWidths widths = sim::symDmamModelWidths(g.numVertices());
      bench::printDryRunRow(family, g, sim::dryRunSymDmam(g, widths));
    });
  }
  std::printf(
      "\nShape check (paper): per-node cost grows additively with log n while\n"
      "the non-interactive baseline grows quadratically.\n");
  std::fprintf(stderr, "[trial wall time: %.3f s]\n", trialSeconds);
  return 0;
}
