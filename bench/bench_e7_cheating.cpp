// E7 — soundness internals of Protocol 1: the cheating-strategy sweep.
//
// Regenerates: acceptance rate of each cheating-prover strategy on rigid
// graphs, showing which lies are caught deterministically (structure lies)
// and which survive only with the hash-collision probability (<= 1/(10n)).
#include <cstdio>
#include <memory>

#include "bench/table.hpp"
#include "core/sym_dmam.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "util/rng.hpp"

using namespace dip;

int main() {
  bench::printHeader("E7", "Protocol 1 cheating-strategy sweep");

  std::printf("\n%6s  %-22s  %26s  %12s\n", "n", "strategy", "acceptance", "bound");
  bench::printRule();
  for (std::size_t n : {8u, 16u}) {
    util::Rng rng(7000 + n);
    core::SymDmamProtocol protocol(hash::makeProtocol1Family(n, rng));
    graph::Graph rigid = graph::randomRigidConnected(n, rng);
    double bound = protocol.family().collisionBound();

    struct Row {
      const char* name;
      core::CheatingRhoProver::Strategy strategy;
    };
    for (const Row& row : {Row{"random permutation",
                               core::CheatingRhoProver::Strategy::kRandomPermutation},
                           Row{"same-degree transposition",
                               core::CheatingRhoProver::Strategy::kTransposition},
                           Row{"identity (trivial rho)",
                               core::CheatingRhoProver::Strategy::kIdentity}}) {
      int seed = 0;
      core::AcceptanceStats stats = protocol.estimateAcceptance(
          rigid,
          [&] {
            return std::make_unique<core::CheatingRhoProver>(protocol.family(),
                                                             row.strategy, seed++);
          },
          500, rng);
      std::printf("%6zu  %-22s  %26s  %12.5f\n", n, row.name,
                  bench::formatRate(stats).c_str(), bound);
    }

    // Hash-chain liar on a SYMMETRIC graph: the graph is a YES instance,
    // but the corrupted chain must still be caught (deterministically).
    graph::Graph symmetric = graph::randomSymmetricConnected(n, rng);
    int seed = 0;
    core::AcceptanceStats liar = protocol.estimateAcceptance(
        symmetric,
        [&] {
          return std::make_unique<core::HashChainLiarProver>(protocol.family(), seed++);
        },
        200, rng);
    std::printf("%6zu  %-22s  %26s  %12s\n", n, "chain-value liar*",
                bench::formatRate(liar).c_str(), "0 (exact)");
  }
  std::printf(
      "\n* the chain liar corrupts one subtree sum on a symmetric (YES)\n"
      "  instance — local verification catches it every time.\n"
      "Shape check (paper, Theorem 3.4): committed-rho cheaters succeed only\n"
      "via hash collisions, bounded by n^2/p <= 1/(10 n); structural lies\n"
      "never succeed.\n");
  return 0;
}
