// E7 — soundness internals of Protocol 1: the cheating-strategy sweep.
//
// Regenerates: acceptance rate of each cheating-prover strategy on rigid
// graphs, showing which lies are caught deterministically (structure lies)
// and which survive only with the hash-collision probability (<= 1/(10n)).
#include <cstdio>
#include <memory>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "core/sym_dmam.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

using namespace dip;

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E7", "Protocol 1 cheating-strategy sweep");

  std::printf("\n%6s  %-22s  %26s  %12s\n", "n", "strategy", "acceptance", "bound");
  bench::printRule();
  for (std::size_t n : {8u, 16u}) {
    util::Rng rng(7000 + n);
    core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(n));
    graph::Graph rigid = graph::randomRigidConnected(n, rng);
    double bound = protocol.family().collisionBound();

    struct Row {
      const char* name;
      core::CheatingRhoProver::Strategy strategy;
    };
    std::uint64_t cell = 7100 + n;
    for (const Row& row : {Row{"random permutation",
                               core::CheatingRhoProver::Strategy::kRandomPermutation},
                           Row{"same-degree transposition",
                               core::CheatingRhoProver::Strategy::kTransposition},
                           Row{"identity (trivial rho)",
                               core::CheatingRhoProver::Strategy::kIdentity}}) {
      sim::TrialStats stats = sim::estimateAcceptance(
          protocol, rigid,
          [&](std::size_t trial) {
            return std::make_unique<core::CheatingRhoProver>(protocol.family(),
                                                             row.strategy, trial);
          },
          500, bench::cellConfig(engine, cell++));
      std::printf("%6zu  %-22s  %26s  %12.5f\n", n, row.name,
                  bench::formatRate(stats).c_str(), bound);
    }

    // Hash-chain liar on a SYMMETRIC graph: the graph is a YES instance,
    // but the corrupted chain must still be caught (deterministically).
    graph::Graph symmetric = graph::randomSymmetricConnected(n, rng);
    sim::TrialStats liar = sim::estimateAcceptance(
        protocol, symmetric,
        [&](std::size_t trial) {
          return std::make_unique<core::HashChainLiarProver>(protocol.family(), trial);
        },
        200, bench::cellConfig(engine, cell++));
    std::printf("%6zu  %-22s  %26s  %12s\n", n, "chain-value liar*",
                bench::formatRate(liar).c_str(), "0 (exact)");
  }
  std::printf(
      "\n* the chain liar corrupts one subtree sum on a symmetric (YES)\n"
      "  instance — local verification catches it every time.\n"
      "Shape check (paper, Theorem 3.4): committed-rho cheaters succeed only\n"
      "via hash collisions, bounded by n^2/p <= 1/(10 n); structural lies\n"
      "never succeed.\n");
  return 0;
}
