// E7 — soundness internals of Protocol 1: the cheating-strategy sweep.
//
// Regenerates: acceptance rate of each cheating-prover strategy on rigid
// graphs, showing which lies are caught deterministically (structure lies)
// and which survive only with the hash-collision probability (<= 1/(10n)).
//
// The sweep itself lives in src/adv/classic_cheaters.{hpp,cpp} (with unit
// tests pinning each row under its bound); this bench only prints it. The
// systematic wire-mutation battery is E14 (bench_e14_adversary).
#include <cstdio>

#include "adv/classic_cheaters.hpp"
#include "bench/options.hpp"
#include "bench/table.hpp"

using namespace dip;

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E7", "Protocol 1 cheating-strategy sweep");

  std::printf("\n%6s  %-22s  %26s  %12s\n", "n", "strategy", "acceptance", "bound");
  bench::printRule();
  for (const adv::CheaterCell& cell : adv::protocol1CheaterSweep(engine)) {
    if (cell.exactCatch) {
      std::printf("%6zu  %-22s  %26s  %12s\n", cell.n, cell.strategy.c_str(),
                  bench::formatRate(cell.stats).c_str(), "0 (exact)");
    } else {
      std::printf("%6zu  %-22s  %26s  %12.5f\n", cell.n, cell.strategy.c_str(),
                  bench::formatRate(cell.stats).c_str(), cell.bound);
    }
  }
  std::printf(
      "\n* the chain liar corrupts one subtree sum on a symmetric (YES)\n"
      "  instance — local verification catches it every time.\n"
      "Shape check (paper, Theorem 3.4): committed-rho cheaters succeed only\n"
      "via hash collisions, bounded by n^2/p <= 1/(10 n); structural lies\n"
      "never succeed.\n");
  return 0;
}
