// E4 — Theorem 1.4: the Omega(log log n) lower bound for dAM Sym protocols.
//
// Regenerates:
//   (a) the exact census of the rigid family F(n) for small n (the lower
//       bound needs |F| = Omega(2^(n^2)/n!); the census verifies the family
//       is as large as claimed where it can be counted exactly);
//   (b) the packing inequality curve: the smallest protocol length L not
//       excluded by 5^(2^(2^(4L))) >= |F(n)| — the paper's log log n.
// Set DIP_CENSUS7=1 to include the n = 7 sweep (2^21 graphs, ~1 second);
// DIP_CENSUS8=1 extends to n = 8 (2^28 graphs — minutes of CPU, cut down
// by --threads; the table itself is thread-count invariant).
#include <cstdio>
#include <cstdlib>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "lb/census.hpp"
#include "lb/packing.hpp"

using namespace dip;

int main(int argc, char** argv) {
  // Exhaustive counts, no Monte Carlo trials; the census sweep fans out
  // over the trial engine's pool (--threads) with a thread-count-invariant
  // fold, so stdout stays bit-identical at every pool size.
  sim::TrialConfig config = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E4", "Lower bound machinery (Theorem 1.4)");

  std::printf("\n(a) Exact census of the rigid family F(n)\n");
  std::printf("%4s  %14s  %14s  %12s  %12s\n", "n", "labeled graphs", "labeled rigid",
              "|F(n)|", "iso classes");
  bench::printRule();
  std::size_t censusMax = std::getenv("DIP_CENSUS7") ? 7 : 6;
  if (std::getenv("DIP_CENSUS8")) censusMax = 8;
  for (std::size_t n = 2; n <= censusMax; ++n) {
    lb::CensusResult census = lb::exhaustiveCensus(n, config.threads);
    std::printf("%4zu  %14llu  %14llu  %12llu  %12llu\n", n,
                static_cast<unsigned long long>(census.labeledGraphs),
                static_cast<unsigned long long>(census.labeledRigid),
                static_cast<unsigned long long>(census.rigidClasses),
                static_cast<unsigned long long>(census.isoClasses));
  }
  std::printf("  (expected: |F| = 0 for n <= 5, 8 at n = 6, 152 at n = 7, 3696 at\n"
              "   n = 8 — the family becomes an overwhelming fraction of all graphs\n"
              "   as n grows)\n");

  std::printf("\n(b) Packing-inequality lower-bound curve\n");
  std::printf("    (exact |F|: 8 at n = 6, 152 at n = 7; asymptotic bound beyond)\n");
  std::printf("%10s  %16s  %18s\n", "n", "log2 |F(n)|", "lower bound (bits)");
  bench::printRule();
  for (std::size_t n : {8u, 16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u, 1u << 20}) {
    double logF = lb::log2FamilyLowerBound(n);
    std::printf("%10zu  %16.1f  %18.3f\n", n, logF, lb::lowerBoundBits(logF));
  }
  std::printf(
      "\nShape check (paper): the bound column grows with log log n — doubling\n"
      "n repeatedly adds vanishing increments, but the bound never stops\n"
      "growing. Combined with E1: Theta(log n) upper vs Omega(log log n)\n"
      "lower, the paper's open gap.\n");
  return 0;
}
