// E11 (extension) — general-input GNI via automorphism compensation.
//
// The paper restricts its GNI presentation to asymmetric graphs and notes
// the fix of [15]: have the prover exhibit an automorphism of sigma(G_b)
// along with it, making |S| = 2 n! vs n! for ALL inputs. This bench
// regenerates the per-repetition gap on SYMMETRIC instances — where the
// basic protocol's counting demonstrably collapses — plus the amplified
// acceptance and the cost overhead of the compensation.
#include <cstdio>
#include <memory>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "core/gni_amam.hpp"
#include "core/gni_general.hpp"
#include "graph/isomorphism.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

using namespace dip;

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E11", "General-input GNI (automorphism compensation)");

  util::Rng setupRng(9000);
  core::GniGeneralParams genParams = core::GniGeneralParams::choose(6, setupRng);
  core::GniParams basicParams = core::GniParams::choose(6, setupRng);
  core::GniGeneralProtocol generalProtocol(genParams);
  core::GniAmamProtocol basicProtocol(basicParams);

  std::printf("\n(a) Per-repetition hit rates on SYMMETRIC instances (150 trials)\n");
  {
    util::Rng rng(9100);
    core::GniInstance yes = core::gniGeneralYesInstance(6, rng);
    core::GniInstance no = core::gniGeneralNoInstance(6, rng);
    std::printf("  |Aut(g0)| = %llu (symmetric), instance pair non-isomorphic: %s\n",
                static_cast<unsigned long long>(graph::countAutomorphisms(yes.g0)),
                graph::areIsomorphic(yes.g0, yes.g1) ? "no?!" : "yes");

    // Automorphism lists are precomputed once and shared read-only across
    // the engine's workers.
    auto yesAut0 = graph::allAutomorphisms(yes.g0);
    auto yesAut1 = graph::allAutomorphisms(yes.g1);
    auto noAut0 = graph::allAutomorphisms(no.g0);
    auto noAut1 = graph::allAutomorphisms(no.g1);
    sim::TrialStats genYes = sim::estimateHitRate(
        [&](sim::TrialContext& ctx) {
          return generalProtocol.perRoundHitOnce(yes, yesAut0, yesAut1, ctx.rng);
        },
        150, bench::cellConfig(engine, 9101));
    sim::TrialStats genNo = sim::estimateHitRate(
        [&](sim::TrialContext& ctx) {
          return generalProtocol.perRoundHitOnce(no, noAut0, noAut1, ctx.rng);
        },
        150, bench::cellConfig(engine, 9102));
    std::printf("  compensated protocol:  YES %s   NO %s\n",
                bench::formatRate(genYes).c_str(), bench::formatRate(genNo).c_str());

    // The BASIC protocol on the same symmetric instances: its candidate set
    // shrinks by |Aut| on each symmetric side, so its YES hit rate drops
    // toward the NO band — the failure mode the compensation repairs.
    sim::TrialStats basicYes = sim::estimateHitRate(
        [&](sim::TrialContext& ctx) { return basicProtocol.perRoundHitOnce(yes, ctx.rng); },
        150, bench::cellConfig(engine, 9103));
    sim::TrialStats basicNo = sim::estimateHitRate(
        [&](sim::TrialContext& ctx) { return basicProtocol.perRoundHitOnce(no, ctx.rng); },
        150, bench::cellConfig(engine, 9104));
    std::printf("  basic protocol:        YES %s   NO %s\n",
                bench::formatRate(basicYes).c_str(), bench::formatRate(basicNo).c_str());
    std::printf("  -> basic YES rate %.3f has fallen BELOW its calibrated YES bound\n"
                "     %.3f (|S| shrank by |Aut| on the symmetric side): the amplified\n"
                "     threshold test loses completeness; compensation repairs it.\n",
                basicYes.rate(), basicParams.perRoundYesLb);
  }

  std::printf("\n(b) Amplified acceptance on symmetric instances (8 runs per cell)\n");
  {
    util::Rng rng(9200);
    core::GniInstance yes = core::gniGeneralYesInstance(6, rng);
    core::GniInstance no = core::gniGeneralNoInstance(6, rng);
    auto honestFactory = [&](std::size_t) {
      return std::make_unique<core::HonestGniGeneralProver>(genParams);
    };
    sim::TrialStats yesStats = sim::estimateAcceptance(
        generalProtocol, yes, honestFactory, 8, bench::cellConfig(engine, 9201));
    sim::TrialStats noStats = sim::estimateAcceptance(
        generalProtocol, no, honestFactory, 8, bench::cellConfig(engine, 9202));
    std::printf("  non-isomorphic: %s  (target > 2/3)\n", bench::formatRate(yesStats).c_str());
    std::printf("  isomorphic:     %s  (target < 1/3)\n", bench::formatRate(noStats).c_str());
  }

  std::printf("\n(c) Cost of compensation (k = %zu), max bits per node\n",
              genParams.repetitions);
  std::printf("%6s  %14s  %14s  %10s\n", "n", "basic GNI", "general GNI", "overhead");
  bench::printRule();
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    std::size_t basic = core::GniAmamProtocol::costModel(n, genParams.repetitions).totalPerNode();
    std::size_t general =
        core::GniGeneralProtocol::costModel(n, genParams.repetitions).totalPerNode();
    std::printf("%6zu  %14zu  %14zu  %9.2fx\n", n, basic, general,
                static_cast<double>(general) / static_cast<double>(basic));
  }
  std::printf(
      "\nShape check: compensation preserves the 2x candidate gap on inputs\n"
      "where the basic counting collapses, at a constant-factor cost — still\n"
      "O(n log n) per node (Theorem 1.5 for unrestricted GNI).\n");
  return 0;
}
