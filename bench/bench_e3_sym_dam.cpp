// E3 — Theorem 1.3: Sym in dAM[O(n log n)] (Protocol 2).
//
// Regenerates: acceptance of the dAM protocol with the paper's huge hash
// prime p in [10 n^(n+2), 100 n^(n+2)] (completeness, and soundness against
// the seed-adaptive collision searcher), and the Theta(n log n) cost curve.
// The n^(n+2) windows are searched once per process through the prime cache;
// trials run on the sim::TrialRunner engine (--threads N).
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/dryrun_section.hpp"
#include "bench/options.hpp"
#include "bench/table.hpp"
#include "core/sym_dam.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

using namespace dip;

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E3", "Protocol 2: Sym in dAM[O(n log n)] (Theorem 1.3)");

  std::printf("\n(a) Acceptance with paper parameters\n");
  std::printf("%6s  %10s  %26s  %26s\n", "n", "log2(p)", "honest on symmetric",
              "adaptive cheater on rigid");
  bench::printRule();
  // n = 16 pushes p past 2^76: the acceptance row exercises the multi-limb
  // Montgomery hash path end-to-end (the smaller n fit u64).
  for (std::size_t n : {6u, 8u, 10u, 12u, 16u}) {
    util::Rng rng(4000 + n);
    core::SymDamProtocol protocol(hash::makeProtocol2FamilyCached(n));

    graph::Graph symmetric = graph::randomSymmetricConnected(n, rng);
    sim::TrialStats honest = sim::estimateAcceptance(
        protocol, symmetric,
        [&](std::size_t) { return std::make_unique<core::HonestSymDamProver>(protocol.family()); },
        100, bench::cellConfig(engine, 4200 + n));

    graph::Graph rigid = graph::randomRigidConnected(n, rng);
    sim::TrialStats cheater = sim::estimateAcceptance(
        protocol, rigid,
        [&](std::size_t trial) {
          return std::make_unique<core::AdaptiveCollisionProver>(protocol.family(), 1000,
                                                                 trial);
        },
        60, bench::cellConfig(engine, 4300 + n));

    std::printf("%6zu  %10zu  %26s  %26s\n", n, protocol.family().seedBits(),
                bench::formatRate(honest).c_str(), bench::formatRate(cheater).c_str());
  }

  std::printf("\n(b) Cost curve, max bits per node (structural model)\n");
  std::printf("%6s  %12s  %16s  %16s\n", "n", "bits/node", "bits/(n log2 n)",
              "measured (run)");
  bench::printRule();
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    std::size_t model = core::SymDamProtocol::costModel(n).totalPerNode();
    double normalized = static_cast<double>(model) /
                        (static_cast<double>(n) * std::log2(static_cast<double>(n)));
    std::string measured = "-";
    if (n <= 16) {
      util::Rng rng(4100 + n);
      core::SymDamProtocol protocol(hash::makeProtocol2FamilyCached(n));
      graph::Graph g = graph::randomSymmetricConnected(n, rng);
      core::HonestSymDamProver prover(protocol.family());
      measured = std::to_string(protocol.run(g, prover, rng).transcript.maxPerNodeBits());
    }
    std::printf("%6zu  %12zu  %16.2f  %16s\n", n, model, normalized, measured.c_str());
  }
  std::printf("\n(c) Large-n structural dry-run (CSR engine, model widths)\n");
  bench::printDryRunColumns();
  for (std::size_t bigN : bench::kDryRunSizes) {
    bench::forEachDryRunFamily(bigN, [&](const char* family, const graph::CsrGraph& g) {
      const sim::SymWidths widths = sim::symDamModelWidths(g.numVertices());
      bench::printDryRunRow(family, g, sim::dryRunSymDam(g, widths));
    });
  }
  std::printf(
      "\nShape check (paper): the normalized column is flat => Theta(n log n),\n"
      "and no seed-adaptive adversary beats the union-bound-sized hash.\n");
  return 0;
}
