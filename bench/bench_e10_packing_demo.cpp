// E10 — the lower-bound framework of Section 3.4, executed on toy instances.
//
// Regenerates:
//   (a) the Lemma 3.9 identity: max-prover acceptance == Pr[M_A cap M_B
//       non-empty], verified by two independent exhaustive computations on
//       dumbbells with an XOR-constraint toy protocol;
//   (b) the response-set distributions mu_A(F) and their pairwise L1
//       distances — the quantities whose 2/3-separation (Lemma 3.11) feeds
//       the packing bound 5^(2^(2^L)) (Lemma 3.12).
#include <cstdio>
#include <vector>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "lb/packing.hpp"
#include "lb/simple_protocol.hpp"

using namespace dip;

int main(int argc, char** argv) {
  // Exhaustive enumerations, no trials: --threads accepted for uniformity.
  bench::parseTrialOptions(argc, argv);
  bench::printHeader("E10", "Simple-protocol machinery demo (Section 3.4)");

  // A small family of side graphs on 3 vertices (all structures).
  std::vector<std::pair<const char*, graph::Graph>> sides;
  sides.emplace_back("empty", graph::Graph(3));
  sides.emplace_back("1-edge", graph::Graph::fromEdges(3, {{0, 1}}));
  sides.emplace_back("path", graph::pathGraph(3));
  sides.emplace_back("triangle", graph::cycleGraph(3));

  graph::DumbbellLayout layout = graph::dumbbellLayout(3);
  lb::SimpleProtocolAnalyzer analyzer(lb::parityToyProtocol(), layout);

  std::printf("\n(a) Lemma 3.9 identity on G(F_A, F_B): best prover vs intersection\n");
  std::printf("%-10s %-10s  %14s  %14s\n", "F_A", "F_B", "best prover",
              "Pr[MA cap MB]");
  bench::printRule();
  for (const auto& [nameA, fa] : sides) {
    for (const auto& [nameB, fb] : sides) {
      graph::Graph dumbbell = graph::dumbbell(fa, fb);
      double best = analyzer.bestProverAcceptance(dumbbell);
      double intersect = analyzer.intersectionProbability(dumbbell);
      std::printf("%-10s %-10s  %14.4f  %14.4f%s\n", nameA, nameB, best, intersect,
                  std::abs(best - intersect) < 1e-12 ? "" : "   MISMATCH!");
    }
  }

  std::printf("\n(b) L1 distances between response-set distributions mu_A(F)\n");
  std::vector<lb::ResponseSetDistribution> distributions;
  for (const auto& [name, f] : sides) {
    distributions.push_back(
        analyzer.responseSetDistribution(graph::dumbbell(f, f), true));
  }
  std::printf("%-10s", "");
  for (const auto& [name, f] : sides) std::printf("  %-9s", name);
  std::printf("\n");
  bench::printRule();
  for (std::size_t i = 0; i < sides.size(); ++i) {
    std::printf("%-10s", sides[i].first);
    for (std::size_t j = 0; j < sides.size(); ++j) {
      std::printf("  %-9.3f", lb::SimpleProtocolAnalyzer::l1Distance(distributions[i],
                                                                     distributions[j]));
    }
    std::printf("\n");
  }

  std::printf("\n(c) Packing capacity vs family size (where the bound bites)\n");
  std::printf("%4s  %22s  %20s\n", "L", "log2 5^(2^(2^L))", "needs log2|F| above");
  bench::printRule();
  for (std::size_t L : {1u, 2u, 3u, 4u}) {
    double capacity = lb::packingCapacityLog2(L);
    std::printf("%4zu  %22.1f  %20.1f\n", L, capacity, capacity);
  }
  std::printf(
      "\nShape check: (a) the two columns agree exactly — the reduction from\n"
      "prover strategies to response-set intersections (Lemmas 3.8-3.9) is\n"
      "an identity, not an approximation; (b) distinct side graphs induce\n"
      "distinguishable response-set distributions; (c) a correct protocol\n"
      "must push |F| below the capacity column => L = Omega(log log n).\n");
  return 0;
}
