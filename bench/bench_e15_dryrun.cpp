// E15 — Large-n structural dry-run engine: cost curves at n = 10^4..10^6
// and the bytes-per-node memory budget.
//
// Regenerates:
//   (a) representation cross-check: dense and CSR dry-runs of the same
//       small graphs must produce identical cost digests (the same fold the
//       differential tests pin against measured transcripts);
//   (b) cost curves: exact structural f(n) for Protocols 1-4 on the
//       committed sparse families at n = 10^4 / 10^5 / 10^6 — sizes where
//       the dense adjacency alone would need ~125 GB;
//   (c) memory report: compressed adjacency size per family (bits/edge,
//       bytes/node) vs the dense row storage. `--json FILE` emits (c) for
//       tools/check_memory.py, which gates CI on the committed ceilings in
//       BENCH_memory.json.
//
// Everything here is deterministic: no trials, no threads, byte-identical
// stdout on every run.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/dryrun_section.hpp"
#include "bench/table.hpp"

using namespace dip;

namespace {

sim::GniClaimProfile honestProfile(std::size_t repetitions) {
  sim::GniClaimProfile profile;
  profile.claimed.assign(repetitions, 1);
  profile.b.assign(repetitions, 1);
  return profile;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) jsonPath = argv[++i];
  }

  bench::printHeader("E15", "Structural dry-run at large n (CSR engine)");

  std::printf("\n(a) Dense vs CSR dry-run digests (n = 64, must agree)\n");
  std::printf("%10s  %18s  %18s  %6s\n", "family", "dense digest", "csr digest", "match");
  bench::printRule();
  {
    util::Rng treeRngDense(0xD1500 + 64);
    graph::Graph denseTree = graph::randomTree(64, treeRngDense);
    graph::Graph denseGrid = graph::gridGraph(8, 8);
    const sim::SymWidths widths = sim::symDmamModelWidths(64);
    struct Pair {
      const char* name;
      graph::Graph dense;
      graph::CsrGraph csr;
    } pairs[] = {
        {"tree", denseTree, bench::dryRunTree(64)},
        {"grid", denseGrid, graph::csrGridGraph(8, 8)},
    };
    for (const auto& pair : pairs) {
      const auto dense = sim::dryRunSymDmam(pair.dense, widths);
      const auto csr = sim::dryRunSymDmam(pair.csr, widths);
      std::printf("%10s  0x%016llx  0x%016llx  %6s\n", pair.name,
                  static_cast<unsigned long long>(dense.costDigest),
                  static_cast<unsigned long long>(csr.costDigest),
                  dense.costDigest == csr.costDigest && dense.maxPerNodeBits ==
                          csr.maxPerNodeBits
                      ? "yes"
                      : "NO");
    }
  }

  std::printf("\n(b) Cost curves, max bits per node (structural dry-run)\n");
  std::printf("%8s  %8s  %12s  %12s  %12s  %14s\n", "n", "family", "P1 (E1)",
              "P2 (E3)", "GNI k=1", "LCP baseline");
  bench::printRule();
  for (std::size_t n : bench::kDryRunSizes) {
    const sim::GniClaimProfile profile = honestProfile(1);
    bench::forEachDryRunFamily(n, [&](const char* family, const graph::CsrGraph& g) {
      const auto r1 = sim::dryRunSymDmam(g, sim::symDmamModelWidths(g.numVertices()));
      const auto r2 = sim::dryRunSymDam(g, sim::symDamModelWidths(g.numVertices()));
      const auto rg =
          sim::dryRunGniAmam(g, g, sim::gniModelWidths(g.numVertices(), 1), profile);
      std::printf("%8zu  %8s  %12zu  %12zu  %12zu  %14zu\n", g.numVertices(),
                  family, r1.maxPerNodeBits, r2.maxPerNodeBits,
                  rg.maxPerNodeBits, pls::SymLcp::adviceBitsPerNode(g.numVertices()));
    });
  }
  std::printf(
      "\nShape check (paper): P1 stays polylogarithmic, P2 pays the n log n\n"
      "rho broadcast, and the LCP baseline is quadratic - at n = 10^6 the\n"
      "interactive protocols beat it by ~10 orders of magnitude.\n");

  std::printf("\n(c) Memory report (CSR resident bytes per node; dense needs n/8 B/node per row = n^2/8 total)\n");
  std::printf("%8s  %8s  %10s  %10s  %10s  %12s\n", "n", "family", "edges",
              "bits/edge", "B/node", "dense B/node");
  bench::printRule();
  std::string json = "{\n  \"rows\": [\n";
  bool firstRow = true;
  for (std::size_t n : bench::kDryRunSizes) {
    bench::forEachDryRunFamily(n, [&](const char* family, const graph::CsrGraph& g) {
      const double perNode = bench::bytesPerNode(g);
      std::printf("%8zu  %8s  %10zu  %10.2f  %10.1f  %12.1f\n", g.numVertices(),
                  family, g.numEdges(), g.bitsPerEdge(), perNode,
                  static_cast<double>(g.numVertices()) / 8.0);
      char row[256];
      std::snprintf(row, sizeof(row),
                    "%s    {\"family\": \"%s\", \"n\": %zu, \"edges\": %zu, "
                    "\"bitsPerEdge\": %.3f, \"bytesPerNode\": %.3f}",
                    firstRow ? "" : ",\n", family, g.numVertices(), g.numEdges(),
                    g.bitsPerEdge(), perNode);
      json += row;
      firstRow = false;
    });
  }
  json += "\n  ]\n}\n";
  if (!jsonPath.empty()) {
    if (std::FILE* out = std::fopen(jsonPath.c_str(), "w")) {
      std::fputs(json.c_str(), out);
      std::fclose(out);
    } else {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
  }
  return 0;
}
