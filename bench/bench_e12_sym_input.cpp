// E12 (extension) — Symmetry of an INPUT graph.
//
// Definition 4's discussion separates the network from graphs handed to the
// nodes as inputs. This bench regenerates the acceptance and cost tables
// for the dMAM protocol on input graphs, where the prover must additionally
// CLAIM the rho-images of each node's input neighbors (their edges are not
// links) and the claims are verified with one extra fingerprint pair.
#include <cstdio>
#include <memory>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "core/sym_input.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

using namespace dip;

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E12", "Symmetry of an input graph (extension)");

  std::printf("\n(a) Acceptance (300 trials per soundness cell)\n");
  std::printf("%6s  %26s  %26s  %26s\n", "n", "honest, symmetric input",
              "fake rho, rigid input", "claim liar, symmetric");
  bench::printRule();
  for (std::size_t n : {8u, 12u, 16u}) {
    util::Rng rng(12000 + n);
    core::SymInputProtocol protocol(hash::makeProtocol1FamilyCached(n));

    core::SymInputInstance symInstance{graph::randomConnected(n, n / 2, rng),
                                       graph::randomSymmetricConnected(n, rng)};
    sim::TrialStats honest = sim::estimateAcceptance(
        protocol, symInstance,
        [&](std::size_t) {
          return std::make_unique<core::HonestSymInputProver>(protocol.family());
        },
        100, bench::cellConfig(engine, 12100 + n));

    core::SymInputInstance rigidInstance{graph::randomConnected(n, n / 2, rng),
                                         graph::randomRigidConnected(n, rng)};
    sim::TrialStats fake = sim::estimateAcceptance(
        protocol, rigidInstance,
        [&](std::size_t trial) {
          return std::make_unique<core::CheatingSymInputProver>(
              protocol.family(),
              core::CheatingSymInputProver::Strategy::kFakeRhoHonestClaims, trial);
        },
        300, bench::cellConfig(engine, 12200 + n));

    sim::TrialStats liar = sim::estimateAcceptance(
        protocol, symInstance,
        [&](std::size_t trial) {
          return std::make_unique<core::CheatingSymInputProver>(
              protocol.family(), core::CheatingSymInputProver::Strategy::kClaimLiar,
              trial);
        },
        300, bench::cellConfig(engine, 12300 + n));

    std::printf("%6zu  %26s  %26s  %26s\n", n, bench::formatRate(honest).c_str(),
                bench::formatRate(fake).c_str(), bench::formatRate(liar).c_str());
  }

  std::printf("\n(b) Cost, max bits per node (model; Delta = max input degree)\n");
  std::printf("%6s  %14s  %14s  %14s\n", "n", "Delta = 4", "Delta = 16",
              "Delta = n-1");
  bench::printRule();
  for (std::size_t n : {32u, 128u, 512u, 2048u}) {
    std::printf("%6zu  %14zu  %14zu  %14zu\n", n,
                core::SymInputProtocol::costModel(n, 4).totalPerNode(),
                core::SymInputProtocol::costModel(n, 16).totalPerNode(),
                core::SymInputProtocol::costModel(n, n - 1).totalPerNode());
  }
  std::printf(
      "\nShape check: O((Delta + 1) log n) per node — bounded-degree inputs\n"
      "keep Protocol 1's O(log n); even Delta = n-1 stays below the\n"
      "quadratic non-interactive baseline. The claim-consistency fingerprint\n"
      "pair is what makes lying about invisible neighbors impossible.\n");
  return 0;
}
