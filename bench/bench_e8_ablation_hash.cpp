// E8 — ablation: why the dAM protocol needs the n^(n+2)-sized hash field.
//
// Regenerates: the adaptive-adversary success table for Protocol 2 run with
// (i) the paper's hash (p ~ n^(n+2)) and (ii) Protocol 1's short hash
// (p ~ n^3). With the short hash, a prover that sees the seed before
// committing finds a colliding mapping and breaks soundness — which is
// exactly why Protocol 1 needs its commit-then-challenge (dMAM) order, and
// Protocol 2 needs its union-bound-sized field.
#include <cstdio>
#include <memory>

#include "bench/table.hpp"
#include "core/sym_dam.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "util/rng.hpp"

using namespace dip;

namespace {

void runRow(const char* label, core::SymDamProtocol& protocol, const graph::Graph& rigid,
            std::size_t searchBudget, std::size_t trials, util::Rng& rng) {
  int seed = 0;
  std::size_t searchHits = 0;
  core::AcceptanceStats stats;
  stats.trials = trials;
  for (std::size_t t = 0; t < trials; ++t) {
    core::AdaptiveCollisionProver prover(protocol.family(), searchBudget, seed++);
    if (protocol.run(rigid, prover, rng).accepted) ++stats.accepts;
    if (prover.lastSearchSucceeded()) ++searchHits;
  }
  std::printf("%-12s  %10zu  %10zu  %26s  %10.2f\n", label,
              protocol.family().seedBits(), searchBudget,
              bench::formatRate(stats).c_str(),
              static_cast<double>(searchHits) / trials);
}

}  // namespace

int main() {
  bench::printHeader("E8", "Ablation: adaptive adversary vs hash size (dAM)");

  const std::size_t n = 6;
  util::Rng rng(8000);
  graph::Graph rigid = graph::randomRigidConnected(n, rng);

  std::printf("\nNon-symmetric graph, n = %zu; adversary sees the seed first\n", n);
  std::printf("%-12s  %10s  %10s  %26s  %10s\n", "hash", "seed bits", "budget",
              "acceptance (soundness!)", "collision");
  bench::printRule();

  {
    util::Rng setup(8001);
    core::SymDamProtocol paperProtocol(hash::makeProtocol2Family(n, setup));
    runRow("paper n^(n+2)", paperProtocol, rigid, 20000, 25, rng);
  }
  {
    util::Rng setup(8002);
    core::SymDamProtocol shortProtocol(hash::makeProtocol1Family(n, setup));
    runRow("short n^3", shortProtocol, rigid, 20000, 25, rng);
    runRow("short n^3", shortProtocol, rigid, 1000, 25, rng);
    runRow("short n^3", shortProtocol, rigid, 1, 200, rng);
  }

  std::printf(
      "\nShape check: with the short hash the seed-adaptive prover finds a\n"
      "fingerprint collision for a large fraction of seeds (soundness far\n"
      "above 1/3 — broken; it grows with the search budget);\n"
      "with the paper's field it never does. A budget-1 adversary (morally a\n"
      "committed prover, as in dMAM) is safe even with the short hash —\n"
      "interaction order and seed length trade off exactly as the paper\n"
      "argues in Sections 3.1-3.2.\n");
  return 0;
}
