// E8 — ablation: why the dAM protocol needs the n^(n+2)-sized hash field.
//
// Regenerates: the adaptive-adversary success table for Protocol 2 run with
// (i) the paper's hash (p ~ n^(n+2)) and (ii) Protocol 1's short hash
// (p ~ n^3). With the short hash, a prover that sees the seed before
// committing finds a colliding mapping and breaks soundness — which is
// exactly why Protocol 1 needs its commit-then-challenge (dMAM) order, and
// Protocol 2 needs its union-bound-sized field.
#include <atomic>
#include <cstdio>
#include <memory>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "core/sym_dam.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "sim/trial_runner.hpp"
#include "util/rng.hpp"

using namespace dip;

namespace {

void runRow(const char* label, const core::SymDamProtocol& protocol,
            const graph::Graph& rigid, std::size_t searchBudget, std::size_t trials,
            const sim::TrialConfig& config) {
  // Collision hits are counted with an atomic (order-independent, so still
  // deterministic across thread counts).
  std::atomic<std::size_t> searchHits{0};
  sim::TrialRunner runner(config);
  sim::TrialStats stats = runner.run(trials, [&](sim::TrialContext& ctx) {
    core::AdaptiveCollisionProver prover(protocol.family(), searchBudget, ctx.index);
    sim::TrialOutcome outcome;
    outcome.accepted = protocol.run(rigid, prover, ctx.rng).accepted;
    if (prover.lastSearchSucceeded()) searchHits.fetch_add(1, std::memory_order_relaxed);
    return outcome;
  });
  std::printf("%-12s  %10zu  %10zu  %26s  %10.2f\n", label,
              protocol.family().seedBits(), searchBudget,
              bench::formatRate(stats).c_str(),
              static_cast<double>(searchHits.load()) / trials);
}

}  // namespace

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E8", "Ablation: adaptive adversary vs hash size (dAM)");

  const std::size_t n = 6;
  util::Rng rng(8000);
  graph::Graph rigid = graph::randomRigidConnected(n, rng);

  std::printf("\nNon-symmetric graph, n = %zu; adversary sees the seed first\n", n);
  std::printf("%-12s  %10s  %10s  %26s  %10s\n", "hash", "seed bits", "budget",
              "acceptance (soundness!)", "collision");
  bench::printRule();

  {
    core::SymDamProtocol paperProtocol(hash::makeProtocol2FamilyCached(n));
    runRow("paper n^(n+2)", paperProtocol, rigid, 20000, 25,
           bench::cellConfig(engine, 8001));
  }
  {
    core::SymDamProtocol shortProtocol(hash::makeProtocol1FamilyCached(n));
    runRow("short n^3", shortProtocol, rigid, 20000, 25, bench::cellConfig(engine, 8002));
    runRow("short n^3", shortProtocol, rigid, 1000, 25, bench::cellConfig(engine, 8003));
    runRow("short n^3", shortProtocol, rigid, 1, 200, bench::cellConfig(engine, 8004));
  }

  std::printf(
      "\nShape check: with the short hash the seed-adaptive prover finds a\n"
      "fingerprint collision for a large fraction of seeds (soundness far\n"
      "above 1/3 — broken; it grows with the search budget);\n"
      "with the paper's field it never does. A budget-1 adversary (morally a\n"
      "committed prover, as in dMAM) is safe even with the short hash —\n"
      "interaction order and seed length trade off exactly as the paper\n"
      "argues in Sections 3.1-3.2.\n");
  return 0;
}
