// E6 — Theorem 3.2 and the Section 4 hash: empirical hash-family statistics.
//
// Regenerates: the collision-probability table for the linear family
// (measured vs the m/p bound), and the eps-API marginal/pairwise statistics
// that the GNI analysis depends on.
#include <cstdio>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "graph/generators.hpp"
#include "hash/eps_api.hpp"
#include "hash/linear_hash.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

using namespace dip;

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E6", "Hash family statistics (Theorem 3.2, Section 4)");

  std::printf("\n(a) Linear family: fingerprint collision rate for non-automorphisms\n");
  std::printf("%6s  %12s  %14s  %14s\n", "n", "log2(p)", "measured", "bound m/p");
  bench::printRule();
  for (std::size_t n : {6u, 8u, 12u}) {
    util::Rng rng(6000 + n);
    hash::LinearHashFamily family = hash::makeProtocol1FamilyCached(n);
    graph::Graph g = graph::randomRigidConnected(n, rng);

    // A trial draws a permutation and a hash index; it "hits" when the
    // fingerprints of g and its rho-image collide. Identity draws count as
    // non-collisions (the family is only tested on non-automorphisms).
    sim::TrialStats stats = sim::estimateHitRate(
        [&](sim::TrialContext& ctx) {
          graph::Permutation rho = graph::randomPermutation(n, ctx.rng);
          if (graph::isIdentity(rho)) return false;
          util::BigUInt a = family.randomIndex(ctx.rng);
          util::BigUInt lhs, rhs;
          for (graph::Vertex v = 0; v < n; ++v) {
            lhs = util::addMod(lhs, family.hashMatrixRow(a, v, g.closedRow(v), n),
                               family.prime());
            rhs = util::addMod(
                rhs,
                family.hashMatrixRow(a, rho[v],
                                     graph::Graph::imageOf(g.closedRow(v), rho), n),
                family.prime());
          }
          return lhs == rhs;
        },
        3000, bench::cellConfig(engine, 6000 + n));
    std::printf("%6zu  %12zu  %14.5f  %14.5f\n", n, family.seedBits(), stats.rate(),
                family.collisionBound());
  }

  std::printf("\n(b) eps-API hash: marginal uniformity (Pr[H(x) = y] * 2^ell)\n");
  std::printf("%6s  %6s  %10s  %12s  %12s\n", "n", "ell", "eps bound", "min bucket",
              "max bucket");
  bench::printRule();
  for (std::size_t n : {5u, 6u}) {
    util::Rng rng(6100 + n);
    const std::size_t ell = 4;
    hash::EpsApiHash h = hash::EpsApiHash::create(n, ell, rng);
    graph::Graph g = graph::randomConnected(n, n / 2, rng);
    std::vector<util::DynBitset> rows;
    for (graph::Vertex v = 0; v < n; ++v) rows.push_back(g.closedRow(v));

    // Each trial records its hash bucket in the outcome digest; the
    // histogram is folded from the index-ordered outcome vector.
    const std::size_t trials = 8000;
    std::vector<sim::TrialOutcome> outcomes;
    sim::TrialRunner runner(bench::cellConfig(engine, 6100 + n));
    runner.run(
        trials,
        [&](sim::TrialContext& ctx) {
          sim::TrialOutcome outcome;
          outcome.digest = h.hashRows(h.randomSeed(ctx.rng), rows).toU64();
          return outcome;
        },
        &outcomes);
    std::vector<std::size_t> histogram(1u << ell, 0);
    for (const sim::TrialOutcome& outcome : outcomes) histogram[outcome.digest] += 1;
    double expected = static_cast<double>(trials) / (1u << ell);
    std::size_t minBucket = trials, maxBucket = 0;
    for (std::size_t count : histogram) {
      minBucket = std::min(minBucket, count);
      maxBucket = std::max(maxBucket, count);
    }
    std::printf("%6zu  %6zu  %10.4f  %12.3f  %12.3f\n", n, ell, h.epsilonBound(),
                static_cast<double>(minBucket) / expected,
                static_cast<double>(maxBucket) / expected);
  }

  std::printf("\n(c) eps-API hash: pairwise collision rate vs 2^-ell\n");
  {
    util::Rng rng(6200);
    const std::size_t n = 5;
    const std::size_t ell = 4;
    hash::EpsApiHash h = hash::EpsApiHash::create(n, ell, rng);
    graph::Graph g1 = graph::completeGraph(n);
    graph::Graph g2 = graph::cycleGraph(n);
    std::vector<util::DynBitset> rows1, rows2;
    for (graph::Vertex v = 0; v < n; ++v) {
      rows1.push_back(g1.closedRow(v));
      rows2.push_back(g2.closedRow(v));
    }
    sim::TrialStats stats = sim::estimateHitRate(
        [&](sim::TrialContext& ctx) {
          hash::EpsApiHash::Seed seed = h.randomSeed(ctx.rng);
          return h.hashRows(seed, rows1) == h.hashRows(seed, rows2);
        },
        10000, bench::cellConfig(engine, 6200));
    std::printf("  measured: %.5f   ideal 2^-ell: %.5f   (1+eps) bound: %.5f\n",
                stats.rate(), 1.0 / (1u << ell), (1.0 + h.epsilonBound()) / (1u << ell));
  }
  std::printf(
      "\nShape check: measured collision rates sit below the analytic bounds;\n"
      "the eps-API construction behaves like a pairwise-independent hash up\n"
      "to the small eps the GNI analysis budgets for.\n");
  return 0;
}
