// E9 — ablation: rounds vs bits (dMAM vs dAM for Sym).
//
// Regenerates: the trade-off table between Protocol 1 (3 rounds, O(log n)
// bits) and Protocol 2 (2 rounds, O(n log n) bits) — the concrete cost of
// removing Merlin's commitment round, and the open round-reduction question
// the paper raises (is AM[k] = AM[2] distributively?).
#include <cstdio>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "pls/sym_lcp.hpp"

using namespace dip;

int main(int argc, char** argv) {
  // Closed-form cost models, no trials: --threads accepted for uniformity.
  bench::parseTrialOptions(argc, argv);
  bench::printHeader("E9", "Rounds-vs-bits ablation: dMAM vs dAM for Sym");

  std::printf("\n%6s  %16s  %16s  %16s  %12s\n", "n", "dMAM (3 rounds)",
              "dAM (2 rounds)", "LCP (0 rounds)", "dAM/dMAM");
  bench::printRule();
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    std::size_t mam = core::SymDmamProtocol::costModel(n).totalPerNode();
    std::size_t am = core::SymDamProtocol::costModel(n).totalPerNode();
    std::size_t lcp = pls::SymLcp::adviceBitsPerNode(n);
    std::printf("%6zu  %16zu  %16zu  %16zu  %11.1fx\n", n, mam, am, lcp,
                static_cast<double>(am) / static_cast<double>(mam));
  }

  std::printf("\nPer-round breakdown at n = 64 (max bits per node per round)\n");
  bench::printRule();
  {
    core::CostBreakdown mam = core::SymDmamProtocol::costModel(64);
    core::CostBreakdown am = core::SymDamProtocol::costModel(64);
    std::printf("  dMAM: challenge %zu bits, responses %zu bits\n",
                mam.bitsToProverPerNode, mam.bitsFromProverPerNode);
    std::printf("  dAM:  challenge %zu bits, responses %zu bits\n",
                am.bitsToProverPerNode, am.bitsFromProverPerNode);
  }
  std::printf(
      "\nShape check (paper): dropping the commitment round costs a factor\n"
      "~n/log n in communication (log n -> n log n) — every verification\n"
      "trick stays the same, only the union bound over mappings grows. Both\n"
      "remain exponentially below the 0-round Omega(n^2) LCP.\n");
  return 0;
}
