// Shared large-n CSR dry-run plumbing for the experiment cost tables
// (bench_e1/e2/e3/e5 section (c)) and the dedicated bench_e15_dryrun
// memory report. Families and seeds are fixed here so every table and the
// committed BENCH_memory.json budget agree on the exact same instances.
#pragma once

#include <cmath>
#include <cstdio>

#include "graph/generators.hpp"
#include "pls/sym_lcp.hpp"
#include "sim/dryrun.hpp"
#include "util/rng.hpp"

namespace dip::bench {

// The large-n rows every dry-run table reports.
inline constexpr std::size_t kDryRunSizes[] = {10'000, 100'000, 1'000'000};

// The two committed sparse random families (plus the deterministic grid).
// Seeds derive from n so rows are reproducible in isolation.
inline graph::CsrGraph dryRunTree(std::size_t n) {
  util::Rng rng(0xD1500 + n);
  return graph::csrRandomTree(n, rng);
}

inline graph::CsrGraph dryRunBoundedDegree(std::size_t n) {
  util::Rng rng(0xD1600 + n);
  return graph::csrRandomBoundedDegree(n, 8, n / 4, rng);
}

inline graph::CsrGraph dryRunGrid(std::size_t n) {
  const std::size_t side =
      static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(n))));
  return graph::csrGridGraph(side, side);
}

template <typename Fn>
void forEachDryRunFamily(std::size_t n, Fn&& fn) {
  fn("tree", dryRunTree(n));
  fn("deg<=8", dryRunBoundedDegree(n));
  fn("grid", dryRunGrid(n));
}

inline double bytesPerNode(const graph::CsrGraph& g) {
  return static_cast<double>(g.memoryBytes()) /
         static_cast<double>(g.numVertices());
}

inline void printDryRunColumns() {
  std::printf("%8s  %8s  %12s  %14s  %10s\n", "n", "family", "f(n) bits",
              "LCP baseline", "B/node");
  std::printf("----------------------------------------------------------------\n");
}

inline void printDryRunRow(const char* family, const graph::CsrGraph& g,
                           const sim::DryRunReport& report) {
  const std::size_t n = g.numVertices();
  const std::size_t lcp = pls::SymLcp::adviceBitsPerNode(n);
  std::printf("%8zu  %8s  %12zu  %14zu  %10.1f\n", n, family,
              report.maxPerNodeBits, lcp, bytesPerNode(g));
}

}  // namespace dip::bench
