// E5 — Theorem 1.5: GNI in dAMAM[O(n log n)] (distributed Goldwasser-Sipser).
//
// Regenerates:
//   (a) the per-repetition preimage-hit gap (the 2q vs q separation that
//       drives the protocol), with the theory bounds alongside;
//   (b) amplified end-to-end acceptance (completeness > 2/3, soundness < 1/3);
//   (c) the Theta(n log n) cost curve vs the Theta(n^2) full-information
//       baseline.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench/dryrun_section.hpp"
#include "bench/options.hpp"
#include "bench/table.hpp"
#include "core/gni_amam.hpp"
#include "pls/gni_fullinfo.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

using namespace dip;

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E5", "GNI in dAMAM[O(n log n)] (Theorem 1.5)");

  util::Rng setupRng(5000);
  core::GniParams params = core::GniParams::choose(6, setupRng);
  std::printf("\nParameters at n = 6: ell = %zu, k = %zu repetitions, threshold = %zu\n",
              params.ell, params.repetitions, params.threshold);
  std::printf("Theory: per-round YES >= %.3f, per-round NO <= %.3f (q = n!/2^ell)\n",
              params.perRoundYesLb, params.perRoundNoUb);

  core::GniAmamProtocol protocol(params);

  std::printf("\n(a) Per-repetition preimage-hit rate (240 trials per cell)\n");
  {
    util::Rng rng(5100);
    core::GniInstance yes = core::gniYesInstance(6, rng);
    core::GniInstance no = core::gniNoInstance(6, rng);
    sim::TrialStats yesStats = sim::estimateHitRate(
        [&](sim::TrialContext& ctx) { return protocol.perRoundHitOnce(yes, ctx.rng); },
        240, bench::cellConfig(engine, 5101));
    sim::TrialStats noStats = sim::estimateHitRate(
        [&](sim::TrialContext& ctx) { return protocol.perRoundHitOnce(no, ctx.rng); },
        240, bench::cellConfig(engine, 5102));
    std::printf("  non-isomorphic (|S| = 2 n!): %s\n", bench::formatRate(yesStats).c_str());
    std::printf("  isomorphic     (|S| =   n!): %s\n", bench::formatRate(noStats).c_str());
    std::printf("  measured ratio: %.2fx (theory: ~2x, shrunk by collisions)\n",
                yesStats.rate() / (noStats.rate() > 0 ? noStats.rate() : 1.0));
  }

  std::printf("\n(b) Amplified protocol acceptance (%zu repetitions; 15 runs per cell)\n",
              params.repetitions);
  {
    util::Rng rng(5200);
    core::GniInstance yes = core::gniYesInstance(6, rng);
    core::GniInstance no = core::gniNoInstance(6, rng);
    auto honestFactory = [&](std::size_t) {
      return std::make_unique<core::HonestGniProver>(params);
    };
    sim::TrialStats yesStats = sim::estimateAcceptance(
        protocol, yes, honestFactory, 15, bench::cellConfig(engine, 5201));
    sim::TrialStats noStats = sim::estimateAcceptance(
        protocol, no, honestFactory, 15, bench::cellConfig(engine, 5202));
    std::printf("  non-isomorphic: %s  (must be > 2/3)\n", bench::formatRate(yesStats).c_str());
    std::printf("  isomorphic:     %s  (must be < 1/3)\n", bench::formatRate(noStats).c_str());
  }

  std::printf("\n(c) Cost curve (k = %zu), max bits per node\n", params.repetitions);
  std::printf("%6s  %14s  %18s  %16s  %8s\n", "n", "dAMAM model", "per rep /(n log n)",
              "full-info base", "gap");
  bench::printRule();
  for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    std::size_t cost = core::GniAmamProtocol::costModel(n, params.repetitions).totalPerNode();
    double perRepNorm =
        static_cast<double>(cost) / static_cast<double>(params.repetitions) /
        (static_cast<double>(n) * std::log2(static_cast<double>(n)));
    std::size_t baseline = pls::GniFullInfo::adviceBitsPerNode(n);
    std::printf("%6zu  %14zu  %18.2f  %16zu  %7.2fx\n", n, cost, perRepNorm, baseline,
                static_cast<double>(baseline) / static_cast<double>(cost));
  }
  std::printf("\n(d) Large-n structural dry-run (CSR engine, k = 1, honest claims)\n");
  bench::printDryRunColumns();
  {
    sim::GniClaimProfile profile;
    profile.claimed.assign(1, 1);
    profile.b.assign(1, 1);
    for (std::size_t bigN : bench::kDryRunSizes) {
      bench::forEachDryRunFamily(bigN, [&](const char* family, const graph::CsrGraph& g) {
        const sim::GniWidths widths = sim::gniModelWidths(g.numVertices(), 1);
        bench::printDryRunRow(family, g, sim::dryRunGniAmam(g, g, widths, profile));
      });
    }
  }
  std::printf(
      "\nShape check (paper): per-repetition cost is Theta(n log n) (flat\n"
      "normalized column); the interactive protocol overtakes the only\n"
      "non-interactive alternative as n grows, and the YES/NO hit-rate gap\n"
      "matches the Goldwasser-Sipser set-size argument.\n");
  return 0;
}
