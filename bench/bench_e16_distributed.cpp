// E16 — distributed verification throughput: the dipd multi-process runtime
// against the worker-count axis (1 -> N), all six workload cells.
//
// The deterministic table (protocol, trials, accepts, maxBits, digest) goes
// to stdout ONCE and is bit-identical for every worker count — the bench
// itself verifies that by running the whole cell set at each fleet size and
// comparing results, so a determinism break fails the bench, not just the
// test tier. Timings (trials/sec per worker count, scaling vs one worker)
// go to stderr and, with --json PATH, to a JSON file in the
// BENCH_distributed.json baseline format; CI pins the digests exactly
// (machine-independent) and gates scaling_vs_1 against committed floors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "sim/distributed.hpp"
#include "sim/workload.hpp"

using namespace dip;

namespace {

constexpr unsigned kWorkerCounts[] = {1, 2, 4};
constexpr int kRepeats = 3;  // Best-of wall time; results are checked identical.

struct CellRun {
  std::string protocol;
  unsigned workers = 0;
  sim::TrialStats stats;
};

std::vector<CellRun> runFleet(unsigned workers, unsigned threadsPerWorker) {
  sim::TrialConfig base;  // The committed base seed (0): digests match goldens.
  sim::DistributedConfig dist;
  dist.workers = workers;
  dist.threadsPerWorker = threadsPerWorker;
  dist.grain = 64;
  sim::DistributedRunner runner(base, dist);
  std::vector<CellRun> runs;
  for (const sim::workload::CellInfo& info : sim::workload::cells()) {
    CellRun run;
    run.protocol = std::string(info.name);
    run.workers = workers;
    run.stats = runner.runCell(info.name);
    for (int rep = 1; rep < kRepeats; ++rep) {
      sim::TrialStats again = runner.runCell(info.name);
      if (!again.sameResults(run.stats)) {
        std::fprintf(stderr, "repeat diverged on %s\n", info.name.data());
        std::exit(1);
      }
      if (again.wallSeconds < run.stats.wallSeconds) run.stats = again;
    }
    runs.push_back(std::move(run));
  }
  runner.shutdown();
  return runs;
}

double trialsPerSecond(const sim::TrialStats& stats) {
  return stats.wallSeconds > 0.0
             ? static_cast<double>(stats.trials) / stats.wallSeconds
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  unsigned threadsPerWorker = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      jsonPath = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--threads-per-worker") == 0 && i + 1 < argc) {
      threadsPerWorker = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    }
  }

  bench::printHeader("E16", "Distributed verification: dipd throughput scaling 1 -> N workers");
  std::fprintf(stderr, "[dipd fleet: %u thread(s) per worker]\n", threadsPerWorker);

  std::vector<std::vector<CellRun>> byWorkers;
  for (unsigned workers : kWorkerCounts) {
    byWorkers.push_back(runFleet(workers, threadsPerWorker));
  }

  // Deterministic table, printed from the single-worker fleet; every other
  // fleet size must agree bit for bit.
  const std::vector<CellRun>& base = byWorkers.front();
  std::printf("\n%-12s  %7s  %7s  %8s  %18s\n", "protocol", "trials", "accepts",
              "maxBits", "digest");
  bench::printRule();
  bool identical = true;
  for (const CellRun& run : base) {
    std::printf("%-12s  %7zu  %7zu  %8zu  0x%016llx\n", run.protocol.c_str(),
                run.stats.trials, run.stats.accepts, run.stats.maxPerNodeBits,
                static_cast<unsigned long long>(run.stats.digest));
  }
  for (std::size_t w = 1; w < byWorkers.size(); ++w) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      if (!byWorkers[w][i].stats.sameResults(base[i].stats)) identical = false;
    }
  }
  std::printf("\nresults identical across worker counts {1, 2, 4}: %s\n",
              identical ? "yes" : "NO (BUG)");

  // Timings: stderr + optional JSON, never stdout.
  std::fprintf(stderr, "\n%-12s  %7s  %12s  %10s\n", "protocol", "workers",
               "trials/s", "scaling");
  for (std::size_t w = 0; w < byWorkers.size(); ++w) {
    for (std::size_t i = 0; i < base.size(); ++i) {
      const CellRun& run = byWorkers[w][i];
      const double scaling =
          trialsPerSecond(base[i].stats) > 0.0
              ? trialsPerSecond(run.stats) / trialsPerSecond(base[i].stats)
              : 0.0;
      std::fprintf(stderr, "%-12s  %7u  %12.1f  %9.2fx\n", run.protocol.c_str(),
                   run.workers, trialsPerSecond(run.stats), scaling);
    }
  }

  if (!jsonPath.empty()) {
    std::FILE* out = std::fopen(jsonPath.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"bench_e16_distributed\",\n  \"cells\": [\n");
    bool first = true;
    for (std::size_t w = 0; w < byWorkers.size(); ++w) {
      for (std::size_t i = 0; i < base.size(); ++i) {
        const CellRun& run = byWorkers[w][i];
        const double scaling =
            trialsPerSecond(base[i].stats) > 0.0
                ? trialsPerSecond(run.stats) / trialsPerSecond(base[i].stats)
                : 0.0;
        std::fprintf(out,
                     "%s    {\"protocol\": \"%s\", \"workers\": %u, \"trials\": %zu, "
                     "\"accepts\": %zu, \"max_bits\": %zu, \"digest\": \"0x%016llx\", "
                     "\"trials_per_sec\": %.1f, \"scaling_vs_1\": %.3f}",
                     first ? "" : ",\n", run.protocol.c_str(), run.workers,
                     run.stats.trials, run.stats.accepts, run.stats.maxPerNodeBits,
                     static_cast<unsigned long long>(run.stats.digest),
                     trialsPerSecond(run.stats), scaling);
        first = false;
      }
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
  }
  return identical ? 0 : 1;
}
