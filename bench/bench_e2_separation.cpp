// E2 — Theorem 1.2: the exponential separation between distributed NP
// (locally checkable proofs) and distributed AM, on DSym.
//
// Regenerates: the cost-vs-n series for the DSym dAM protocol against the
// Theta(N^2) LCP advice length, plus acceptance checks for the protocol.
// Acceptance trials run on the sim::TrialRunner engine (--threads N).
#include <cstdio>
#include <memory>

#include "bench/dryrun_section.hpp"
#include "bench/options.hpp"
#include "bench/table.hpp"
#include "core/dsym_dam.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "pls/sym_lcp.hpp"
#include "sim/acceptance.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

using namespace dip;

namespace {

core::DSymDamProtocol makeProtocol(const graph::DSymLayout& layout) {
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{layout.numVertices}, 3);
  return core::DSymDamProtocol(
      layout,
      hash::LinearHashFamily(
          util::cachedPrimeInRange(util::BigUInt{10} * n3, util::BigUInt{100} * n3),
          static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices));
}

}  // namespace

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  bench::printHeader("E2", "DSym: dAM[O(log n)] vs LCP Omega(n^2) (Theorem 1.2)");

  std::printf("\n(a) Cost separation (path radius r = 2), max bits per node\n");
  std::printf("%6s  %6s  %12s  %12s  %14s  %10s\n", "side", "N", "dAM measured",
              "dAM model", "LCP baseline", "gap");
  bench::printRule();
  for (std::size_t side : {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    graph::DSymLayout layout = graph::dsymLayout(side, 2);
    std::size_t model = core::DSymDamProtocol::costModel(layout).totalPerNode();
    std::size_t lcp = pls::SymLcp::adviceBitsPerNode(layout.numVertices);
    std::string measured = "-";
    if (side <= 32) {
      util::Rng rng(3000 + side);
      graph::Graph f = graph::randomConnected(side, side / 2, rng);
      graph::Graph g = graph::dsymInstance(f, 2);
      core::DSymDamProtocol protocol = makeProtocol(layout);
      core::HonestDSymProver prover(layout, protocol.family());
      measured = std::to_string(protocol.run(g, prover, rng).transcript.maxPerNodeBits());
    }
    std::printf("%6zu  %6zu  %12s  %12zu  %14zu  %9.1fx\n", side, layout.numVertices,
                measured.c_str(), model, lcp,
                static_cast<double>(lcp) / static_cast<double>(model));
  }

  std::printf("\n(b) Acceptance at side = 6, r = 1 (300 trials per cell)\n");
  {
    const std::size_t side = 6;
    graph::DSymLayout layout = graph::dsymLayout(side, 1);
    core::DSymDamProtocol protocol = makeProtocol(layout);
    util::Rng rng(3100);

    graph::Graph f = graph::randomRigidConnected(side, rng);
    graph::Graph yes = graph::dsymInstance(f, 1);
    auto honestFactory = [&](std::size_t) {
      return std::make_unique<core::HonestDSymProver>(layout, protocol.family());
    };
    sim::TrialStats yesStats = sim::estimateAcceptance(
        protocol, yes, honestFactory, 300, bench::cellConfig(engine, 3101));

    graph::Graph fOther = graph::randomRigidConnected(side, rng);
    while (fOther == f) fOther = graph::randomRigidConnected(side, rng);
    graph::Graph no = graph::dsymNoInstance(f, fOther, 1);
    sim::TrialStats noStats = sim::estimateAcceptance(
        protocol, no, honestFactory, 300, bench::cellConfig(engine, 3102));

    std::printf("  YES instance (G in DSym):      %s\n", bench::formatRate(yesStats).c_str());
    std::printf("  NO instance (mismatched side): %s\n", bench::formatRate(noStats).c_str());
  }

  std::printf("\n(c) Large-n structural dry-run (CSR DSym instances, r = 2)\n");
  bench::printDryRunColumns();
  for (std::size_t bigN : bench::kDryRunSizes) {
    // sideSize chosen so the instance has ~bigN vertices (N = 2 side + 2r + 1).
    const std::size_t side = (bigN - 5) / 2;
    util::Rng rng(0xD1700 + bigN);
    graph::CsrGraph g = graph::csrDsymOverTree(side, 2, rng);
    const sim::SymWidths widths = sim::dsymDamModelWidths(g.numVertices());
    bench::printDryRunRow("dsym", g, sim::dryRunDsymDam(g, widths));
  }
  std::printf(
      "\nShape check (paper): one Arthur-Merlin round decides DSym with\n"
      "O(log n) bits — the same language needs Omega(n^2)-bit labels without\n"
      "interaction [Goos-Suomela], an exponential gap.\n");
  return 0;
}
