// E14 — the wire-mutation adversary stress tier.
//
// Regenerates: per-mutator acceptance of the standard adversary battery on
// a soundness instance of each of the six protocols, certifying measured
// cheating success <= 1/3 (95% Wilson upper bound) per theorem. Every cell
// is reproducible from the printed master seed; stdout is bit-identical at
// every --threads value.
#include <cstdio>
#include <cstring>

#include "adv/stress.hpp"
#include "bench/options.hpp"
#include "bench/table.hpp"
#include "sim/trial_runner.hpp"

using namespace dip;

int main(int argc, char** argv) {
  const sim::TrialConfig engine = bench::parseTrialOptions(argc, argv);
  adv::StressOptions options;
  options.threads = engine.threads;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) options.trialsPerMutator = 8;
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.masterSeed = std::strtoull(argv[++i], nullptr, 0);
    }
  }

  bench::printHeader("E14", "Wire-mutation adversary soundness stress");
  std::printf("\nmaster seed 0x%llX — %zu trials per mutator per protocol\n",
              static_cast<unsigned long long>(options.masterSeed),
              options.trialsPerMutator);

  bool allCertified = true;
  for (const adv::StressProtocolEntry& entry : adv::stressProtocols()) {
    adv::SoundnessStressReport report = entry.run(options);
    std::printf("\n%s (n = %zu)\n", report.protocol.c_str(), report.numNodes);
    std::printf("%-18s  %9s  %26s  %8s\n", "mutator", "accepts", "acceptance",
                "rejected");
    bench::printRule();
    for (const adv::MutatorCell& cell : report.cells) {
      std::printf("%-18s  %5zu/%-3zu  %26s  %8zu\n", cell.mutator.c_str(),
                  cell.stats.accepts, cell.stats.trials,
                  bench::formatRate(cell.stats).c_str(), cell.decodeRejected);
    }
    util::WilsonInterval overall = report.overall();
    const bool certified = report.soundnessCertified();
    allCertified = allCertified && certified;
    std::printf("overall: %zu/%zu accepted, Wilson95 upper %.4f <= 1/3: %s "
                "(%zu mutants rejected at the decoder)\n",
                report.totalAccepts(), report.totalTrials(), overall.high,
                certified ? "yes" : "NO", report.totalDecodeRejected());
  }

  std::printf("\nSoundness certification: %s — every protocol's measured mutant\n"
              "success stays under the paper's 1/3 soundness error.\n",
              allCertified ? "PASS" : "FAIL");
  return allCertified ? 0 : 1;
}
