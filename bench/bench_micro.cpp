// Microbenchmarks (google-benchmark) for the performance-critical
// substrate: big-integer arithmetic, hash evaluation, tree aggregation, and
// the honest prover's searches. These gate how large the executable
// experiments can go.
#include <benchmark/benchmark.h>

#include "core/sym_dmam.hpp"
#include "graph/canonical.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/ir.hpp"
#include "graph/isomorphism.hpp"
#include "hash/batch_eval.hpp"
#include "hash/eps_api.hpp"
#include "hash/linear_hash.hpp"
#include "net/spanning.hpp"
#include "util/biguint.hpp"
#include "util/montgomery.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

using namespace dip;

static void BM_BigUIntMulMod(benchmark::State& state) {
  util::Rng rng(1);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  util::BigUInt m = util::findPrimeWithBits(bits, rng);
  util::BigUInt a = rng.nextBigBelow(m);
  util::BigUInt b = rng.nextBigBelow(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::mulMod(a, b, m));
  }
}
BENCHMARK(BM_BigUIntMulMod)->Arg(32)->Arg(64)->Arg(256)->Arg(1024);

static void BM_BigUIntPowMod(benchmark::State& state) {
  util::Rng rng(2);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  util::BigUInt m = util::findPrimeWithBits(bits, rng);
  util::BigUInt base = rng.nextBigBelow(m);
  util::BigUInt exp = rng.nextBigBelow(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::powMod(base, exp, m));
  }
}
BENCHMARK(BM_BigUIntPowMod)->Arg(64)->Arg(256)->Arg(1024);

static void BM_MontgomeryPowMod(benchmark::State& state) {
  util::Rng rng(12);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  util::BigUInt m = util::findPrimeWithBits(bits, rng);
  util::MontgomeryContext ctx(m);
  util::BigUInt base = rng.nextBigBelow(m);
  util::BigUInt exp = rng.nextBigBelow(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.powMod(base, exp));
  }
}
BENCHMARK(BM_MontgomeryPowMod)->Arg(64)->Arg(256)->Arg(1024);

// An odd modulus of exactly `bits` bits (top bit forced). Montgomery needs
// oddness, not primality, and skipping the prime search keeps the 4096-bit
// setups instant.
static util::BigUInt randomOddModulus(util::Rng& rng, std::size_t bits) {
  util::BigUInt m = (util::BigUInt{1} << (bits - 1)) + rng.nextBigBits(bits - 1);
  if (!m.isOdd()) m += util::BigUInt{1};
  return m;
}

static void BM_BigMul(benchmark::State& state) {
  // Plain product through the allocation-free mulInto entry point:
  // schoolbook below kKaratsubaThresholdLimbs, Karatsuba above (4096-bit
  // operands are 64 limbs, well past the threshold).
  util::Rng rng(20);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  util::BigUInt a = rng.nextBigBits(bits);
  util::BigUInt b = rng.nextBigBits(bits);
  util::BigUInt out;
  std::vector<util::BigUInt::Limb> scratch;
  for (auto _ : state) {
    util::BigUInt::mulInto(a, b, out, scratch);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BigMul)->Arg(256)->Arg(1024)->Arg(4096);

static void BM_MulMod(benchmark::State& state) {
  // In-domain Montgomery multiply: one CIOS pass, no conversions, no
  // allocations -- the per-term cost of the hash layer's Horner chains.
  // Compare against BM_BigUIntMulMod (multiply + Knuth division) above.
  util::Rng rng(21);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  util::BigUInt m = randomOddModulus(rng, bits);
  util::MontgomeryContext ctx(m);
  util::MontgomeryContext::Scratch scratch;
  util::MontgomeryValue a = ctx.toValue(rng.nextBigBelow(m));
  util::MontgomeryValue b = ctx.toValue(rng.nextBigBelow(m));
  util::MontgomeryValue out;
  for (auto _ : state) {
    ctx.mulValue(a, b, out, scratch);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MulMod)->Arg(256)->Arg(1024)->Arg(4096);

static void BM_PowMod(benchmark::State& state) {
  // Fixed-window (w = 4) in-domain exponentiation with a full-width
  // exponent. Compare against BM_BigUIntPowMod above.
  util::Rng rng(22);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  util::BigUInt m = randomOddModulus(rng, bits);
  util::MontgomeryContext ctx(m);
  util::MontgomeryContext::Scratch scratch;
  util::MontgomeryValue base = ctx.toValue(rng.nextBigBelow(m));
  util::BigUInt exponent = rng.nextBigBits(bits);
  util::MontgomeryValue out;
  for (auto _ : state) {
    ctx.powValue(base, exponent, out, scratch);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PowMod)->Arg(256)->Arg(1024)->Arg(4096);

static void BM_PowModWindowed(benchmark::State& state) {
  // Shared-window exponentiation of a pinned base: prepareWindow builds the
  // 15-entry table once, each powValueWindowed pays only the square/multiply
  // ladder. The delta against BM_PowMod (which rebuilds the table per call)
  // is what the trial loop's pinned-base hashing amortizes away.
  util::Rng rng(25);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  util::BigUInt m = randomOddModulus(rng, bits);
  util::MontgomeryContext ctx(m);
  util::MontgomeryContext::Scratch scratch;
  util::MontgomeryValue base = ctx.toValue(rng.nextBigBelow(m));
  util::BigUInt exponent = rng.nextBigBits(bits);
  util::MontgomeryContext::PowWindow window;
  ctx.prepareWindow(base, window, scratch);
  util::MontgomeryValue out;
  for (auto _ : state) {
    ctx.powValueWindowed(window, exponent, out, scratch);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PowModWindowed)->Arg(256)->Arg(1024)->Arg(4096);

static void BM_LinearHashEval(benchmark::State& state) {
  // One LinearHashEvaluator polynomial walk over a dense 1024-position bit
  // row, parameterized by modulus width. Multi-limb widths pin the
  // Montgomery backend (in-domain Horner, one REDC per set bit); the
  // evaluator is rebound once, so steady state allocates nothing.
  util::Rng rng(23);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  util::BigUInt m = randomOddModulus(rng, bits);
  const std::uint64_t dimension = 1024;
  util::BigUInt a = rng.nextBigBelow(m);
  hash::LinearHashEvaluator evaluator;
  evaluator.rebind(m, dimension, a);
  util::DynBitset row(dimension);
  for (std::size_t i = 0; i < dimension; ++i) row.set(i, rng.nextBool());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.hashBits(row));
  }
}
BENCHMARK(BM_LinearHashEval)->Arg(256)->Arg(1024)->Arg(4096);

static void BM_MillerRabin(benchmark::State& state) {
  // 1024-bit setup stays cheap because findPrimeWithBits runs the packed
  // small-prime sieve before any Miller-Rabin round.
  util::Rng rng(3);
  std::size_t bits = static_cast<std::size_t>(state.range(0));
  util::BigUInt prime = util::findPrimeWithBits(bits, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::isProbablePrime(prime, rng, 8));
  }
}
BENCHMARK(BM_MillerRabin)->Arg(64)->Arg(256)->Arg(1024);

static void BM_LinearHashRow(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  hash::LinearHashFamily family = hash::makeProtocol1Family(n, rng);
  graph::Graph g = graph::randomConnected(n, n, rng);
  util::BigUInt a = family.randomIndex(rng);
  graph::Vertex v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(family.hashMatrixRow(a, v, g.closedRow(v), n));
    v = static_cast<graph::Vertex>((v + 1) % n);
  }
}
BENCHMARK(BM_LinearHashRow)->Arg(16)->Arg(64)->Arg(256);

static void BM_BatchHashMatrix(benchmark::State& state) {
  // Full n x n closed-row matrix through the batch engine's span entry
  // point under a pinned index — the protocol trial shape. Against n
  // BM_LinearHashRow walks, the shared column/row-base tables turn each row
  // into residue adds (AVX2 lanes at n >= 16) plus one multiply.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  hash::LinearHashFamily family = hash::makeProtocol1Family(n, rng);
  graph::Graph g = graph::randomConnected(n, n, rng);
  util::BigUInt a = family.randomIndex(rng);
  hash::BatchLinearHashEvaluator batch;
  batch.rebind(family, a);
  std::vector<std::uint64_t> rowIndices(n);
  std::vector<util::DynBitset> rows;
  for (graph::Vertex v = 0; v < n; ++v) {
    rowIndices[v] = v;
    rows.push_back(g.closedRow(v));
  }
  std::vector<util::BigUInt> out;
  for (auto _ : state) {
    batch.hashMatrixRows(rowIndices, rows, n, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BatchHashMatrix)->Arg(16)->Arg(64)->Arg(256);

static void BM_EpsApiHashMatrix(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  std::size_t ell = util::factorial(n).bitLength() + 2;
  hash::EpsApiHash h = hash::EpsApiHash::create(n, ell, rng);
  graph::Graph g = graph::randomConnected(n, n, rng);
  std::vector<util::DynBitset> rows;
  for (graph::Vertex v = 0; v < n; ++v) rows.push_back(g.closedRow(v));
  hash::EpsApiHash::Seed seed = h.randomSeed(rng);
  hash::EpsApiHash::PowerTable table = h.preparePowers(seed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.hashRowsPrepared(seed, table, rows));
  }
}
BENCHMARK(BM_EpsApiHashMatrix)->Arg(6)->Arg(8)->Arg(10);

static void BM_AutomorphismSearchSymmetric(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  graph::Graph g = graph::randomSymmetricConnected(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::findNontrivialAutomorphism(g));
  }
}
BENCHMARK(BM_AutomorphismSearchSymmetric)->Arg(16)->Arg(64)->Arg(128);

static void BM_RigidityProof(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  graph::Graph g = graph::randomRigidConnected(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::isRigid(g));
  }
}
BENCHMARK(BM_RigidityProof)->Arg(8)->Arg(16)->Arg(32);

static void BM_CanonicalForm(benchmark::State& state) {
  // Lex-min branch-and-bound: practical through n ~ 16 on sparse graphs
  // (docs/PERFORMANCE.md); larger sizes need the search engine, not a
  // canonical form.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(9);
  graph::Graph g = graph::randomConnected(n, n + n / 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::canonicalForm(g));
  }
}
BENCHMARK(BM_CanonicalForm)->Arg(8)->Arg(12)->Arg(16);

static void BM_IsRigid(benchmark::State& state) {
  // Rigid and symmetric side by side: the rigid case exercises the
  // discrete-refinement fast path, the symmetric one the full search.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(10);
  graph::Graph rigid = graph::randomRigidConnected(n, rng);
  graph::Graph symmetric = graph::randomSymmetricConnected(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::isRigid(rigid));
    benchmark::DoNotOptimize(graph::isRigid(symmetric));
  }
}
BENCHMARK(BM_IsRigid)->Arg(16)->Arg(64)->Arg(128);

static void BM_FindIsomorphism(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  graph::Graph g = graph::randomConnected(n, 2 * n, rng);
  graph::Graph h = graph::randomIsomorphicCopy(g, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::findIsomorphism(g, h));
  }
}
BENCHMARK(BM_FindIsomorphism)->Arg(16)->Arg(64)->Arg(128);

static void BM_CensusSlice(benchmark::State& state) {
  // One 2^16-code chunk of the n = 7 census sweep — the exact unit of work
  // exhaustiveCensus hands to each parallelMap index.
  graph::IrSolver solver;
  for (auto _ : state) {
    std::uint64_t rigid = 0;
    for (std::uint64_t code = 0; code < (1ull << 16); ++code) {
      if (solver.isRigidCode(7, code)) ++rigid;
    }
    benchmark::DoNotOptimize(rigid);
  }
}
BENCHMARK(BM_CensusSlice);

static void BM_CsrBuild(benchmark::State& state) {
  // Edge list -> delta-compressed CSR: sort + dedup + per-block width scan
  // + bit packing. The setup cost every large-n dry-run table pays once per
  // family.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng setup(13);
  graph::CsrGraph g = graph::csrRandomBoundedDegree(n, 8, n / 4, setup);
  std::vector<std::pair<graph::Vertex, graph::Vertex>> edges;
  edges.reserve(g.numEdges());
  g.forEachEdge([&](graph::Vertex u, graph::Vertex v) { edges.emplace_back(u, v); });
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CsrGraph::fromEdges(n, edges));
  }
}
BENCHMARK(BM_CsrBuild)->Arg(1024)->Arg(16384)->Arg(262144);

static void BM_CsrNeighborSweep(benchmark::State& state) {
  // Full forEachNeighbor pass over every vertex: the streaming block
  // decoder's per-edge cost (header read + gap add), nothing materialized.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng setup(14);
  graph::CsrGraph g = graph::csrRandomBoundedDegree(n, 8, n / 4, setup);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (graph::Vertex v = 0; v < n; ++v) {
      g.forEachNeighbor(v, [&](graph::Vertex u) { acc += u; });
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CsrNeighborSweep)->Arg(1024)->Arg(16384)->Arg(262144);

static void BM_SpanningTreeCsr(benchmark::State& state) {
  // buildBfsTree through the compressed representation — the structural
  // dry-run engine's dominant traversal.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng setup(15);
  graph::CsrGraph g = graph::csrRandomBoundedDegree(n, 8, n / 4, setup);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::buildBfsTree(g, 0).dist.back());
  }
}
BENCHMARK(BM_SpanningTreeCsr)->Arg(1024)->Arg(16384)->Arg(262144);

static void BM_Protocol1FullRun(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(8);
  core::SymDmamProtocol protocol(hash::makeProtocol1Family(n, rng));
  graph::Graph g = graph::randomSymmetricConnected(n, rng);
  core::HonestSymDmamProver prover(protocol.family());
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.run(g, prover, rng).accepted);
  }
}
BENCHMARK(BM_Protocol1FullRun)->Arg(16)->Arg(64)->Arg(128);

BENCHMARK_MAIN();
