// E13 (extension) — the three verification models side by side.
//
// The paper's Section 1.2 situates distributed interactive proofs against
// two non-interactive relatives: locally checkable proofs (LCP, [17/23])
// and randomized proof-labeling schemes (RPLS, [4]). This bench regenerates
// the comparison as a cost table, separating the two currencies the models
// trade in — prover->node advice bits vs node->node verification bits —
// which is exactly the distinction the paper draws when it explains why
// [4]'s compression does not apply to its model.
#include <cstdio>

#include "bench/options.hpp"
#include "bench/table.hpp"
#include "core/sym_dmam.hpp"
#include "graph/generators.hpp"
#include "pls/sym_lcp.hpp"
#include "pls/sym_rpls.hpp"
#include "util/rng.hpp"

using namespace dip;

int main(int argc, char** argv) {
  // Cost models plus single demonstration runs, no trial cells: --threads
  // is accepted for uniformity with the Monte Carlo benches.
  bench::parseTrialOptions(argc, argv);
  bench::printHeader("E13", "Three verification models for Sym");

  std::printf("\n(a) Cost per node/edge by model\n");
  std::printf("%6s  %16s  %16s  %16s  %16s\n", "n", "LCP advice", "RPLS advice",
              "RPLS verif/edge", "dMAM total/node");
  bench::printRule();
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    util::Rng setup(13000 + n);
    pls::SymRpls rpls = pls::makeSymRpls(n, setup);
    pls::SymRplsCosts rplsCosts = rpls.costs(n);
    std::printf("%6zu  %16zu  %16zu  %16zu  %16zu\n", n,
                pls::SymLcp::adviceBitsPerNode(n), rplsCosts.adviceBitsPerNode,
                rplsCosts.verificationBitsPerEdge,
                core::SymDmamProtocol::costModel(n).totalPerNode());
  }

  std::printf("\n(b) Verdict agreement at n = 12 (all models decide Sym)\n");
  {
    util::Rng rng(13100);
    graph::Graph symmetric = graph::randomSymmetricConnected(12, rng);
    graph::Graph rigid = graph::randomRigidConnected(12, rng);

    util::Rng setup(13101);
    pls::SymRpls rpls = pls::makeSymRpls(12, setup);
    core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(12));
    core::HonestSymDmamProver prover(protocol.family());

    auto lcpAdvice = pls::SymLcp::honestAdvice(symmetric);
    bool lcpYes = lcpAdvice.has_value() &&
                  pls::SymLcp::accepts(symmetric,
                                       std::vector<pls::SymLcpAdvice>(12, *lcpAdvice));
    bool rplsYes = lcpAdvice.has_value() &&
                   rpls.accepts(symmetric,
                                std::vector<pls::SymLcpAdvice>(12, *lcpAdvice), rng);
    bool dmamYes = protocol.run(symmetric, prover, rng).accepted;
    std::printf("  symmetric instance: LCP %s, RPLS %s, dMAM %s\n",
                lcpYes ? "accept" : "reject", rplsYes ? "accept" : "reject",
                dmamYes ? "accept" : "reject");
    bool lcpNo = pls::SymLcp::honestAdvice(rigid).has_value();
    std::printf("  rigid instance:     LCP %s, RPLS %s, dMAM %s (no valid proof exists)\n",
                lcpNo ? "accept?!" : "reject", lcpNo ? "accept?!" : "reject", "reject");
  }

  std::printf(
      "\nShape check: RPLS compresses the node-to-node round exponentially\n"
      "(n^2 -> log n per edge, [4]) but the prover still ships Theta(n^2)\n"
      "bits; only interaction compresses the PROVER's communication — the\n"
      "axis the paper's model charges and its theorems bound.\n");
  return 0;
}
