// Shared command-line handling for the experiment benches.
//
// Every bench accepts `--threads N` (equivalently the DIP_THREADS
// environment variable; an explicit flag wins) to size the trial engine's
// worker pool. Thread count never changes the tables: trial randomness is
// counter-derived per trial index and aggregation is index-ordered, so
// stdout is bit-identical at every pool size. Engine info (resolved thread
// count) goes to stderr to keep it that way.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/trial_runner.hpp"

namespace dip::bench {

inline sim::TrialConfig parseTrialOptions(int argc, char** argv) {
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = static_cast<unsigned>(std::strtoul(arg + 10, nullptr, 10));
    }
  }
  sim::TrialConfig config;
  config.threads = sim::resolveThreads(threads);
  std::fprintf(stderr, "[trial engine: %u thread(s)]\n", config.threads);
  return config;
}

// The per-cell config: same pool size, cell-specific master seed.
inline sim::TrialConfig cellConfig(const sim::TrialConfig& base, std::uint64_t seed) {
  sim::TrialConfig config = base;
  config.masterSeed = seed;
  return config;
}

}  // namespace dip::bench
