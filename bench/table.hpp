// Shared table-printing helpers for the experiment benches. Every bench
// regenerates one experiment of EXPERIMENTS.md as a fixed-width text table.
#pragma once

#include <cstdio>
#include <string>

#include "core/result.hpp"
#include "sim/trial.hpp"
#include "util/mathutil.hpp"

namespace dip::bench {

inline void printHeader(const std::string& experimentId, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experimentId.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void printRule() {
  std::printf("----------------------------------------------------------------\n");
}

// "0.842 [0.801, 0.876]" — point estimate with a Wilson 95% interval.
inline std::string formatInterval(const dip::util::WilsonInterval& interval) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f [%.3f, %.3f]", interval.pointEstimate,
                interval.low, interval.high);
  return buffer;
}

inline std::string formatRate(const dip::core::AcceptanceStats& stats) {
  return formatInterval(stats.interval());
}

inline std::string formatRate(const dip::sim::TrialStats& stats) {
  return formatInterval(stats.interval());
}

}  // namespace dip::bench
