// Differential suite for the compressed CSR graph engine: CsrGraph must be
// observationally identical to the dense Graph on every graph — exhaustively
// for n <= 7 (every upper-triangle code), plus 10^3 seeded sparse instances
// at the sizes the dense representation still tolerates, plus the codec's
// block-boundary cases (empty, star, path, full blocks, block tails).
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "graph/builders.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "net/spanning.hpp"
#include "sim/dryrun.hpp"
#include "util/rng.hpp"

namespace dip::graph {
namespace {

// Collects forEachNeighbor output into a reused buffer.
template <typename G>
void neighborsInto(const G& g, Vertex v, std::vector<Vertex>& out) {
  out.clear();
  g.forEachNeighbor(v, [&](Vertex u) { out.push_back(u); });
}

// Full observational comparison of one dense/CSR pair. Returns false (and
// records one gtest failure) on the first mismatch so exhaustive sweeps do
// not drown the log.
bool equivalent(const Graph& g, const CsrGraph& c, const char* what) {
  const std::size_t n = g.numVertices();
  if (c.numVertices() != n || c.numEdges() != g.numEdges()) {
    ADD_FAILURE() << what << ": size mismatch";
    return false;
  }
  Graph back = c.toGraph();
  if (!(back == g) || !(back.upperTriangleBits() == g.upperTriangleBits())) {
    ADD_FAILURE() << what << ": round trip not byte-identical";
    return false;
  }
  if (CsrGraph::fromGraph(back) != c) {
    ADD_FAILURE() << what << ": re-encoding is not canonical";
    return false;
  }
  thread_local std::vector<Vertex> denseNbrs, csrNbrs;
  for (Vertex v = 0; v < n; ++v) {
    if (c.degree(v) != g.degree(v)) {
      ADD_FAILURE() << what << ": degree(" << v << ") mismatch";
      return false;
    }
    neighborsInto(g, v, denseNbrs);
    neighborsInto(c, v, csrNbrs);
    if (denseNbrs != csrNbrs) {
      ADD_FAILURE() << what << ": neighbor set of " << v << " mismatch";
      return false;
    }
    denseNbrs.clear();
    g.forEachClosedNeighbor(v, [&](Vertex u) { denseNbrs.push_back(u); });
    csrNbrs.clear();
    c.forEachClosedNeighbor(v, [&](Vertex u) { csrNbrs.push_back(u); });
    if (denseNbrs != csrNbrs) {
      ADD_FAILURE() << what << ": closed neighborhood of " << v << " mismatch";
      return false;
    }
  }
  std::size_t denseMax = 0;
  for (Vertex v = 0; v < n; ++v) denseMax = std::max(denseMax, g.degree(v));
  if (n > 0 && c.maxDegree() != denseMax) {
    ADD_FAILURE() << what << ": maxDegree mismatch";
    return false;
  }
  if (c.isConnected() != g.isConnected()) {
    ADD_FAILURE() << what << ": connectivity mismatch";
    return false;
  }
  return true;
}

// Spanning-tree and dry-run identity on a connected pair: the BFS advice and
// the degree-dependent GNI charge digest must agree bit for bit.
bool equivalentTraversal(const Graph& g, const CsrGraph& c,
                         const sim::GniWidths& widths, const char* what) {
  net::SpanningTreeAdvice dense = net::buildBfsTree(g, 0);
  net::SpanningTreeAdvice csr = net::buildBfsTree(c, 0);
  if (dense.parent != csr.parent || dense.dist != csr.dist) {
    ADD_FAILURE() << what << ": BFS advice differs across representations";
    return false;
  }
  sim::GniClaimProfile profile;
  profile.claimed.assign(1, 1);
  profile.b.assign(1, 1);
  const sim::DryRunReport a = sim::dryRunGniAmam(g, g, widths, profile);
  const sim::DryRunReport b = sim::dryRunGniAmam(c, c, widths, profile);
  if (a.costDigest != b.costDigest || a.maxPerNodeBits != b.maxPerNodeBits ||
      a.totalBits != b.totalBits || a.treeHeight != b.treeHeight ||
      a.maxDegree != b.maxDegree) {
    ADD_FAILURE() << what << ": dry-run report differs across representations";
    return false;
  }
  return true;
}

TEST(CsrGraph, ExhaustiveSmallGraphs) {
  for (std::size_t n = 1; n <= 7; ++n) {
    const std::size_t pairBits = n * (n - 1) / 2;
    const std::uint64_t codes = 1ull << pairBits;
    const sim::GniWidths widths = sim::gniModelWidths(n, 1);
    char what[64];
    for (std::uint64_t code = 0; code < codes; ++code) {
      std::snprintf(what, sizeof(what), "n=%zu code=%llu", n,
                    static_cast<unsigned long long>(code));
      Graph g = Graph::fromUpperTriangleCode(n, code);
      CsrGraph c = CsrGraph::fromGraph(g);
      ASSERT_TRUE(equivalent(g, c, what));
      if (g.isConnected()) {
        ASSERT_TRUE(equivalentTraversal(g, c, widths, what));
      }
    }
  }
}

TEST(CsrGraph, SeededSparseInstances) {
  for (std::size_t i = 0; i < 1000; ++i) {
    const std::size_t n = 30 + (i * 7) % 170;
    char what[64];
    std::snprintf(what, sizeof(what), "instance %zu (n=%zu)", i, n);
    util::Rng rng(987000 + i);
    CsrGraph c;
    switch (i % 3) {
      case 0:
        c = csrRandomTree(n, rng);
        break;
      case 1:
        c = csrRandomBoundedDegree(n, 3 + i % 6, n / 3, rng);
        break;
      default:
        c = csrDsymOverTree(n, 1 + i % 4, rng);
        break;
    }
    Graph g = c.toGraph();
    ASSERT_TRUE(equivalent(g, c, what));
    ASSERT_TRUE(c.isConnected()) << what;
    const sim::GniWidths widths = sim::gniModelWidths(g.numVertices(), 1);
    ASSERT_TRUE(equivalentTraversal(g, c, widths, what));
  }
}

TEST(CsrGraph, EqualSeedTwins) {
  // The csr* sparse generators consume randomness draw-for-draw like their
  // dense counterparts, so equal seeds must give equal graphs.
  for (std::size_t n : {2u, 3u, 17u, 64u, 257u}) {
    util::Rng a(5550 + n), b(5550 + n);
    EXPECT_EQ(csrRandomTree(n, a).toGraph(), randomTree(n, b)) << "tree n=" << n;
  }
  for (std::size_t side : {1u, 4u, 20u}) {
    for (std::size_t r : {1u, 2u, 5u}) {
      util::Rng a(6660 + side * 10 + r), b(6660 + side * 10 + r);
      Graph dense = dsymInstance(randomTree(side, b), r);
      EXPECT_EQ(csrDsymOverTree(side, r, a).toGraph(), dense)
          << "dsym side=" << side << " r=" << r;
    }
  }
}

TEST(CsrGraph, FixedFamiliesMatchDense) {
  EXPECT_EQ(csrPathGraph(1).toGraph(), pathGraph(1));
  EXPECT_EQ(csrPathGraph(9).toGraph(), pathGraph(9));
  EXPECT_EQ(csrStarGraph(2).toGraph(), starGraph(2));
  EXPECT_EQ(csrStarGraph(40).toGraph(), starGraph(40));
  EXPECT_EQ(csrGridGraph(1, 1).toGraph(), gridGraph(1, 1));
  EXPECT_EQ(csrGridGraph(3, 5).toGraph(), gridGraph(3, 5));
  EXPECT_EQ(csrGridGraph(8, 8).toGraph(), gridGraph(8, 8));
}

TEST(CsrGraph, CompressionBoundaries) {
  // Empty graphs: no payload, zero edges, still round-trips.
  for (std::size_t n : {0u, 1u, 5u, 100u}) {
    Graph g(n);
    CsrGraph c = CsrGraph::fromGraph(g);
    EXPECT_EQ(c.numEdges(), 0u);
    EXPECT_EQ(c.adjacencyBits(), 0u);
    EXPECT_EQ(c.bitsPerEdge(), 0.0);
    EXPECT_EQ(c.toGraph(), g);
  }
  // Hub degrees straddling the 32-neighbor block cap: one short block, one
  // exactly full block, a full block plus a 1-entry tail, two full blocks,
  // and two full blocks plus a tail.
  for (std::size_t hubDegree : {31u, 32u, 33u, 64u, 65u}) {
    Graph g = starGraph(hubDegree + 1);
    CsrGraph c = CsrGraph::fromGraph(g);
    char what[32];
    std::snprintf(what, sizeof(what), "star deg=%zu", hubDegree);
    ASSERT_TRUE(equivalent(g, c, what));
    EXPECT_EQ(c.maxDegree(), hubDegree);
  }
  // Paths keep every gap at 1 (minimum-width blocks); long enough to cross
  // several word boundaries in the blob.
  for (std::size_t n : {2u, 33u, 200u}) {
    Graph g = pathGraph(n);
    char what[32];
    std::snprintf(what, sizeof(what), "path n=%zu", n);
    ASSERT_TRUE(equivalent(g, CsrGraph::fromGraph(g), what));
  }
}

TEST(CsrGraph, FromEdgesNormalizes) {
  // Duplicates (in either orientation) collapse; order does not matter.
  CsrGraph a = CsrGraph::fromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  CsrGraph b = CsrGraph::fromEdges(4, {{3, 2}, {1, 0}, {2, 1}, {1, 2}, {0, 1}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.numEdges(), 3u);
  EXPECT_EQ(a.toGraph(), Graph::fromEdges(4, {{0, 1}, {1, 2}, {2, 3}}));

  EXPECT_THROW(CsrGraph::fromEdges(3, {{1, 1}}), std::invalid_argument);
  EXPECT_THROW(CsrGraph::fromEdges(3, {{0, 3}}), std::out_of_range);
}

TEST(CsrGraph, HasEdgeScansEitherEndpoint) {
  util::Rng rng(424242);
  CsrGraph c = csrRandomBoundedDegree(120, 8, 60, rng);
  Graph g = c.toGraph();
  for (Vertex u = 0; u < 120; ++u) {
    for (Vertex v = 0; v < 120; ++v) {
      ASSERT_EQ(c.hasEdge(u, v), g.hasEdge(u, v)) << u << "," << v;
    }
  }
  EXPECT_LE(c.maxDegree(), 8u);
}

TEST(CsrGraph, MemoryAccountingIsSane) {
  util::Rng rng(31337);
  CsrGraph c = csrRandomTree(4096, rng);
  // Compressed adjacency must undercut the dense rows (4096^2 bits) by a
  // wide margin, and the per-edge payload stays within the header-amortized
  // bound: 5 (header) + idBits (first) + idBits (worst-case gap) per
  // endpoint pair is a loose ceiling for a tree.
  EXPECT_LT(c.memoryBytes(), 4096u * 4096u / 8u / 10u);
  EXPECT_GT(c.bitsPerEdge(), 0.0);
  EXPECT_LT(c.bitsPerEdge(), 2.0 * (5.0 + 2.0 * 12.0));
  EXPECT_EQ(c.numEdges(), 4095u);
}

}  // namespace
}  // namespace dip::graph
