// Tests for the randomized proof-labeling scheme baseline [4].
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pls/sym_rpls.hpp"
#include "util/rng.hpp"

namespace dip::pls {
namespace {

using util::Rng;

TEST(SymRpls, HonestAdviceAccepted) {
  Rng rng(261);
  for (std::size_t n : {6u, 10u, 14u}) {
    Rng setup(262 + n);
    SymRpls rpls = makeSymRpls(n, setup);
    graph::Graph g = graph::randomSymmetricConnected(n, rng);
    auto advice = SymLcp::honestAdvice(g);
    ASSERT_TRUE(advice.has_value());
    std::vector<SymLcpAdvice> perNode(n, *advice);
    for (int trial = 0; trial < 10; ++trial) {
      EXPECT_TRUE(rpls.accepts(g, perNode, rng)) << n;
    }
  }
}

TEST(SymRpls, InconsistentLabelsCaughtByFingerprints) {
  // Unlike the deterministic LCP, neighbors only compare O(log n)-bit
  // fingerprints — a disagreement is still caught except with probability
  // <= labelBits/p.
  Rng rng(263);
  const std::size_t n = 10;
  Rng setup(264);
  SymRpls rpls = makeSymRpls(n, setup);
  graph::Graph g = graph::randomSymmetricConnected(n, rng);
  auto advice = SymLcp::honestAdvice(g);
  ASSERT_TRUE(advice.has_value());
  std::vector<SymLcpAdvice> perNode(n, *advice);
  // Give node 4 a label claiming a different witness.
  perNode[4].witness = (perNode[4].witness + 1) % n;

  std::size_t accepts = 0;
  for (int trial = 0; trial < 200; ++trial) {
    if (rpls.accepts(g, perNode, rng)) ++accepts;
  }
  EXPECT_LE(accepts, 4u);  // Collision budget is tiny.
}

TEST(SymRpls, SoundOnRigidGraphs) {
  Rng rng(265);
  const std::size_t n = 8;
  Rng setup(266);
  SymRpls rpls = makeSymRpls(n, setup);
  graph::Graph rigid = graph::randomRigidConnected(n, rng);
  // Best adversarial advice: true matrix, fake permutation, consistent
  // everywhere — the local automorphism check kills it deterministically.
  SymLcpAdvice advice;
  for (graph::Vertex v = 0; v < n; ++v) advice.matrixRows.push_back(rigid.row(v));
  advice.rho = graph::randomPermutation(n, rng);
  while (graph::isIdentity(advice.rho)) advice.rho = graph::randomPermutation(n, rng);
  for (graph::Vertex v = 0; v < n; ++v) {
    if (advice.rho[v] != v) {
      advice.witness = v;
      break;
    }
  }
  std::vector<SymLcpAdvice> perNode(n, advice);
  for (int trial = 0; trial < 50; ++trial) {
    EXPECT_FALSE(rpls.accepts(rigid, perNode, rng));
  }
}

TEST(SymRpls, CostsShowTheThreeWayTradeoff) {
  Rng setup(267);
  const std::size_t n = 256;
  SymRpls rpls = makeSymRpls(n, setup);
  SymRplsCosts costs = rpls.costs(n);
  // Advice is still quadratic (same as the LCP)...
  EXPECT_GE(costs.adviceBitsPerNode, n * n);
  // ...but verification across an edge is logarithmic, exponentially less
  // than shipping the label.
  EXPECT_LT(costs.verificationBitsPerEdge, 100u);
  EXPECT_LT(costs.verificationBitsPerEdge * 500, costs.adviceBitsPerNode);
}

TEST(SymRpls, LabelEncodingIsInjectiveOnComponents) {
  Rng rng(268);
  graph::Graph g = graph::randomSymmetricConnected(8, rng);
  auto advice = SymLcp::honestAdvice(g);
  ASSERT_TRUE(advice.has_value());
  auto bits1 = SymRpls::encodeLabel(*advice, 8);
  SymLcpAdvice altered = *advice;
  altered.witness = (altered.witness + 1) % 8;
  auto bits2 = SymRpls::encodeLabel(altered, 8);
  EXPECT_NE(bits1, bits2);
  altered = *advice;
  std::swap(altered.rho[0], altered.rho[1]);
  EXPECT_NE(SymRpls::encodeLabel(altered, 8), bits1);
}

}  // namespace
}  // namespace dip::pls
