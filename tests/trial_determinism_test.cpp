// The engine's determinism contract: same master seed => bit-identical
// results at every thread count. Runs under the tsan preset too, where the
// shared work counter, result slots, and prime-cache single-flight paths
// get exercised with real concurrency.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sym_dmam.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

namespace dip::sim {
namespace {

using graph::Graph;
using util::Rng;

TrialConfig config(std::uint64_t masterSeed, unsigned threads) {
  TrialConfig c;
  c.masterSeed = masterSeed;
  c.threads = threads;
  return c;
}

TEST(trial_determinism, RawRunnerIdenticalAcrossThreadCounts) {
  // A body that exercises the per-trial stream directly: the outcome is a
  // pure function of (master seed, index), so stats and per-trial outcomes
  // must match across pool sizes.
  auto body = [](TrialContext& ctx) {
    TrialOutcome outcome;
    std::uint64_t x = ctx.rng.nextU64();
    for (int i = 0; i < 16; ++i) x = digestCombine(x, ctx.rng.nextU64());
    outcome.digest = x;
    outcome.accepted = (x & 1) != 0;
    outcome.maxPerNodeBits = static_cast<std::size_t>(x % 97);
    return outcome;
  };

  std::vector<TrialOutcome> base;
  TrialStats baseStats = TrialRunner(config(9001, 1)).run(257, body, &base);
  for (unsigned threads : {2u, 8u}) {
    std::vector<TrialOutcome> outcomes;
    TrialStats stats = TrialRunner(config(9001, threads)).run(257, body, &outcomes);
    EXPECT_TRUE(stats.sameResults(baseStats)) << "threads=" << threads;
    EXPECT_EQ(outcomes, base) << "threads=" << threads;
  }
}

TEST(trial_determinism, ChildStreamsIndependentOfClaimOrder) {
  // Child derivation is pure: deriving child(i) repeatedly, in any order,
  // yields the same stream, and distinct indices yield distinct streams.
  const Rng master(424242);
  Rng a = master.child(7);
  Rng b = master.child(3);
  Rng a2 = master.child(7);
  EXPECT_EQ(a.nextU64(), a2.nextU64());
  EXPECT_EQ(a.nextU64(), a2.nextU64());
  Rng c = master.child(3);
  EXPECT_EQ(b.nextU64(), c.nextU64());
  EXPECT_NE(master.child(0).nextU64(), master.child(1).nextU64());
}

TEST(trial_determinism, ProtocolTrialsIdenticalAcrossThreadCounts) {
  // End-to-end on a real protocol: transcripts (via the run digest) and the
  // acceptance fold must be identical at 1, 2, and 8 threads.
  const std::size_t n = 8;
  Rng rng(9100);
  core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(n));
  Graph symmetric = graph::randomSymmetricConnected(n, rng);
  auto factory = [&](std::size_t) {
    return std::make_unique<core::HonestSymDmamProver>(protocol.family());
  };

  std::vector<TrialOutcome> base;
  TrialStats baseStats =
      estimateAcceptance(protocol, symmetric, factory, 64, config(9101, 1), &base);
  ASSERT_EQ(base.size(), 64u);
  for (unsigned threads : {2u, 8u}) {
    std::vector<TrialOutcome> outcomes;
    TrialStats stats = estimateAcceptance(protocol, symmetric, factory, 64,
                                          config(9101, threads), &outcomes);
    EXPECT_TRUE(stats.sameResults(baseStats)) << "threads=" << threads;
    EXPECT_EQ(outcomes, base) << "threads=" << threads;
  }
}

TEST(trial_determinism, MasterSeedChangesResults) {
  auto body = [](TrialContext& ctx) {
    TrialOutcome outcome;
    outcome.digest = ctx.rng.nextU64();
    return outcome;
  };
  TrialStats a = TrialRunner(config(1, 4)).run(32, body);
  TrialStats b = TrialRunner(config(2, 4)).run(32, body);
  EXPECT_NE(a.digest, b.digest);
}

TEST(trial_determinism, ExceptionSurfacedByLowestTrialIndex) {
  // Failures are rethrown deterministically: the lowest failing index wins
  // regardless of which worker hit it first.
  for (unsigned threads : {1u, 8u}) {
    TrialRunner runner(config(77, threads));
    try {
      runner.run(100, [](TrialContext& ctx) -> TrialOutcome {
        if (ctx.index >= 40) throw ctx.index;
        return {};
      });
      FAIL() << "expected the trial exception to propagate";
    } catch (const std::size_t& index) {
      EXPECT_EQ(index, 40u) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dip::sim
