// Tests for the RNG, bit-exact message I/O, dynamic bitsets, primality, and
// numeric helpers.
#include <gtest/gtest.h>

#include <set>

#include "util/bitio.hpp"
#include "util/bitset.hpp"
#include "util/mathutil.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::util {
namespace {

// ---- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.nextU64() != b.nextU64()) ++differing;
  }
  EXPECT_GE(differing, 15);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t value = rng.nextBelow(10);
    ASSERT_LT(value, 10u);
    ++counts[value];
  }
  for (int count : counts) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(Rng, NextBitsMasksCorrectly) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.nextBits(5), 32u);
    EXPECT_EQ(rng.nextBits(0), 0u);
  }
}

TEST(Rng, BigBelowStaysBelow) {
  Rng rng(5);
  BigUInt bound = BigUInt::fromDecimal("123456789123456789123456789");
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.nextBigBelow(bound), bound);
}

TEST(Rng, BigBitsBounded) {
  Rng rng(6);
  for (std::size_t bits : {1u, 7u, 32u, 33u, 65u, 200u}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_LE(rng.nextBigBits(bits).bitLength(), bits);
    }
  }
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(9), parent2(9);
  Rng childA1 = parent1.split(0);
  Rng childA2 = parent2.split(0);
  EXPECT_EQ(childA1.nextU64(), childA2.nextU64());

  Rng parent3(9);
  Rng childX = parent3.split(0);
  Rng childY = parent3.split(1);
  EXPECT_NE(childX.nextU64(), childY.nextU64());
}

// ---- BitWriter / BitReader ----

TEST(BitIo, UIntRoundTrip) {
  BitWriter writer;
  writer.writeUInt(0b101, 3);
  writer.writeUInt(0xFFFF, 16);
  writer.writeUInt(0, 1);
  writer.writeUInt(12345678901234ull, 44);
  EXPECT_EQ(writer.bitCount(), 3u + 16 + 1 + 44);

  BitReader reader(writer);
  EXPECT_EQ(reader.readUInt(3), 0b101u);
  EXPECT_EQ(reader.readUInt(16), 0xFFFFu);
  EXPECT_EQ(reader.readUInt(1), 0u);
  EXPECT_EQ(reader.readUInt(44), 12345678901234ull);
  EXPECT_EQ(reader.bitsRemaining(), 0u);
}

TEST(BitIo, ValueMustFitWidth) {
  BitWriter writer;
  EXPECT_THROW(writer.writeUInt(4, 2), std::invalid_argument);
  EXPECT_THROW(writer.writeUInt(1, 65), std::invalid_argument);
}

TEST(BitIo, BigRoundTrip) {
  BigUInt value = BigUInt::fromDecimal("987654321987654321987654321");
  BitWriter writer;
  writer.writeBig(value, 96);
  EXPECT_EQ(writer.bitCount(), 96u);
  BitReader reader(writer);
  EXPECT_EQ(reader.readBig(96), value);
}

TEST(BitIo, BigRejectsOverflow) {
  BitWriter writer;
  EXPECT_THROW(writer.writeBig(BigUInt{256}, 8), std::invalid_argument);
}

TEST(BitIo, VarUIntRoundTrip) {
  BitWriter writer;
  std::vector<std::uint64_t> values{0, 1, 127, 128, 300, 1ull << 40, UINT64_MAX};
  for (auto value : values) writer.writeVarUInt(value);
  BitReader reader(writer);
  for (auto value : values) EXPECT_EQ(reader.readVarUInt(), value);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter writer;
  writer.writeUInt(1, 1);
  BitReader reader(writer);
  reader.readBit();
  EXPECT_THROW(reader.readBit(), std::out_of_range);
}

TEST(BitIo, BitsForCounts) {
  EXPECT_EQ(bitsFor(1), 1u);
  EXPECT_EQ(bitsFor(2), 1u);
  EXPECT_EQ(bitsFor(3), 2u);
  EXPECT_EQ(bitsFor(4), 2u);
  EXPECT_EQ(bitsFor(5), 3u);
  EXPECT_EQ(bitsFor(1024), 10u);
  EXPECT_EQ(bitsFor(1025), 11u);
}

// ---- DynBitset ----

TEST(DynBitset, SetTestCount) {
  DynBitset bits(130);
  EXPECT_TRUE(bits.none());
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(64));
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_EQ(bits.count(), 2u);
  EXPECT_THROW(bits.test(130), std::out_of_range);
}

TEST(DynBitset, ForEachSetAscending) {
  DynBitset bits(200);
  std::vector<std::size_t> expected{3, 63, 64, 127, 128, 199};
  for (auto i : expected) bits.set(i);
  std::vector<std::size_t> seen;
  bits.forEachSet([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynBitset, XorAndIntersects) {
  DynBitset a(70), b(70);
  a.set(1);
  a.set(69);
  b.set(69);
  EXPECT_TRUE(a.intersects(b));
  a ^= b;
  EXPECT_TRUE(a.test(1));
  EXPECT_FALSE(a.test(69));
  EXPECT_FALSE(a.intersects(b));
}

TEST(DynBitset, FirstSet) {
  DynBitset bits(100);
  EXPECT_EQ(bits.firstSet(), 100u);
  bits.set(77);
  EXPECT_EQ(bits.firstSet(), 77u);
  bits.set(5);
  EXPECT_EQ(bits.firstSet(), 5u);
}

TEST(DynBitset, EqualityAndHash) {
  DynBitset a(50), b(50), c(51);
  a.set(10);
  b.set(10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hashValue(), b.hashValue());
  EXPECT_NE(a, c);
}

TEST(DynBitset, InlineToHeapBoundary) {
  // Sizes straddling the single-word small-size optimization (<= 64 bits
  // inline, > 64 heap-backed) must behave identically through every op.
  for (std::size_t size : {63u, 64u, 65u, 128u, 129u}) {
    DynBitset bits(size);
    EXPECT_EQ(bits.wordCount(), (size + 63) / 64);
    bits.set(0);
    bits.set(size - 1);
    EXPECT_EQ(bits.count(), size == 1 ? 1u : 2u);
    EXPECT_TRUE(bits.test(size - 1));
    EXPECT_EQ(bits.firstSet(), 0u);
    EXPECT_THROW(bits.set(size), std::out_of_range);

    DynBitset other(size);
    other.set(size - 1);
    EXPECT_TRUE(bits.intersects(other));
    bits ^= other;
    EXPECT_FALSE(bits.test(size - 1));
    EXPECT_TRUE(bits.test(0));

    // Copies must be independent (deep-copied heap words, detached SSO).
    DynBitset copy = other;
    copy.reset(size - 1);
    EXPECT_TRUE(other.test(size - 1));
    EXPECT_FALSE(copy.test(size - 1));
    EXPECT_NE(copy, other);
  }
}

// ---- Primes ----

TEST(Primes, SmallKnownValues) {
  Rng rng(11);
  for (std::uint32_t prime : {2u, 3u, 5u, 7u, 97u, 251u, 257u, 65537u}) {
    EXPECT_TRUE(isProbablePrime(BigUInt{prime}, rng)) << prime;
  }
  for (std::uint32_t composite : {0u, 1u, 4u, 9u, 91u, 255u, 561u, 65535u}) {
    EXPECT_FALSE(isProbablePrime(BigUInt{composite}, rng)) << composite;
  }
}

TEST(Primes, CarmichaelNumbersRejected) {
  Rng rng(12);
  // Carmichael numbers fool Fermat but not Miller-Rabin.
  for (std::uint64_t carmichael : {561ull, 1105ull, 1729ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(isProbablePrime(BigUInt{carmichael}, rng)) << carmichael;
  }
}

TEST(Primes, LargeKnownPrime) {
  Rng rng(13);
  // 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite.
  BigUInt mersenne = (BigUInt{1} << 127) - BigUInt{1};
  EXPECT_TRUE(isProbablePrime(mersenne, rng));
  BigUInt fermatLike = (BigUInt{1} << 128) + BigUInt{1};
  EXPECT_FALSE(isProbablePrime(fermatLike, rng));
}

TEST(Primes, FindPrimeInRangeRespectsBounds) {
  Rng rng(14);
  BigUInt lo{1000000};
  BigUInt hi{2000000};
  for (int i = 0; i < 5; ++i) {
    BigUInt prime = findPrimeInRange(lo, hi, rng);
    EXPECT_GE(prime, lo);
    EXPECT_LE(prime, hi);
    EXPECT_TRUE(isProbablePrime(prime, rng));
  }
}

TEST(Primes, FindPrimeWithBitsHasExactWidth) {
  Rng rng(15);
  for (std::size_t bits : {8u, 20u, 64u, 128u, 256u}) {
    BigUInt prime = findPrimeWithBits(bits, rng);
    EXPECT_EQ(prime.bitLength(), bits);
    EXPECT_TRUE(isProbablePrime(prime, rng));
  }
}

// ---- Math helpers ----

TEST(MathUtil, Logs) {
  EXPECT_EQ(floorLog2(1), 0u);
  EXPECT_EQ(floorLog2(2), 1u);
  EXPECT_EQ(floorLog2(1023), 9u);
  EXPECT_EQ(ceilLog2(1), 0u);
  EXPECT_EQ(ceilLog2(2), 1u);
  EXPECT_EQ(ceilLog2(3), 2u);
  EXPECT_EQ(ceilLog2(1024), 10u);
  EXPECT_THROW(floorLog2(0), std::invalid_argument);
}

TEST(MathUtil, Factorial) {
  EXPECT_EQ(factorial(0).toU64(), 1u);
  EXPECT_EQ(factorial(5).toU64(), 120u);
  EXPECT_EQ(factorial(20).toDecimal(), "2432902008176640000");
  EXPECT_EQ(factorial(25).toDecimal(), "15511210043330985984000000");
}

TEST(MathUtil, WilsonIntervalCoversPointEstimate) {
  auto interval = wilson95(70, 100);
  EXPECT_NEAR(interval.pointEstimate, 0.7, 1e-12);
  EXPECT_LT(interval.low, 0.7);
  EXPECT_GT(interval.high, 0.7);
  EXPECT_GT(interval.low, 0.59);
  EXPECT_LT(interval.high, 0.79);
}

TEST(MathUtil, WilsonDegenerateCases) {
  auto zero = wilson95(0, 100);
  EXPECT_GE(zero.low, 0.0);
  EXPECT_LT(zero.high, 0.05);
  auto all = wilson95(100, 100);
  EXPECT_GT(all.low, 0.95);
  EXPECT_LE(all.high, 1.0);
  auto empty = wilson95(0, 0);
  EXPECT_EQ(empty.low, 0.0);
  EXPECT_EQ(empty.high, 1.0);
}

TEST(MathUtil, BinomialTail) {
  EXPECT_DOUBLE_EQ(binomialTailGE(10, 0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomialTailGE(10, 0.5, 11), 0.0);
  EXPECT_NEAR(binomialTailGE(10, 0.5, 5), 0.623046875, 1e-9);
  EXPECT_NEAR(binomialTailGE(1, 0.3, 1), 0.3, 1e-12);
  // Monotone in p.
  EXPECT_LT(binomialTailGE(100, 0.2, 30), binomialTailGE(100, 0.4, 30));
}

}  // namespace
}  // namespace dip::util
