// The gated adversary stress tier (ctest label `adv_stress`, its own
// dip_adv_stress binary): runs the standard mutator battery against a
// soundness instance of every protocol and asserts the measured cheating
// success is certified under the paper's 1/3 bound by a 95% Wilson upper
// bound.
//
// Two profiles share this source:
//   * quick (default)        — 4 trials/mutator/protocol; runs in the
//                              release and asan CI jobs on every push.
//   * full (DIP_ADV_STRESS_FULL=1) — 96 trials/mutator = 1056 per protocol;
//                              the nightly scheduled job. This is the
//                              >= 1000-mutated-trials-per-protocol
//                              certification from the PR acceptance bar.
//
// Reports are reproducible from the master seed alone and independent of
// the thread count (asserted below), so a nightly failure replays locally
// with: DIP_ADV_STRESS_FULL=1 ./dip_adv_stress.
#include <gtest/gtest.h>

#include <cstdlib>

#include "adv/stress.hpp"

namespace dip::adv {
namespace {

bool fullProfile() {
  const char* flag = std::getenv("DIP_ADV_STRESS_FULL");
  return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

StressOptions profileOptions() {
  StressOptions options;
  options.trialsPerMutator = fullProfile() ? 96 : 4;
  return options;
}

class AdversaryStress : public ::testing::TestWithParam<StressProtocolEntry> {};

TEST_P(AdversaryStress, MutantSuccessCertifiedUnderOneThird) {
  const StressProtocolEntry& entry = GetParam();
  SoundnessStressReport report = entry.run(profileOptions());
  EXPECT_EQ(report.protocol, entry.name);
  ASSERT_EQ(report.cells.size(), 11u);  // One cell per standard mutator.
  ASSERT_EQ(report.totalTrials(), profileOptions().trialsPerMutator * 11);
  if (fullProfile()) {
    ASSERT_GE(report.totalTrials(), 1000u);
  }
  EXPECT_TRUE(report.soundnessCertified())
      << report.protocol << ": " << report.totalAccepts() << "/"
      << report.totalTrials() << " mutants accepted, Wilson95 upper "
      << report.overall().high << " > 1/3 (master seed 0x" << std::hex
      << report.masterSeed << ")";
}

std::string protocolName(const ::testing::TestParamInfo<StressProtocolEntry>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, AdversaryStress,
                         ::testing::ValuesIn(stressProtocols()), protocolName);

TEST(AdversaryStressDeterminism, ReportsAreThreadCountInvariant) {
  // One protocol suffices: all six share the battery loop and the trial
  // engine, and this is the cheapest (bench_e14 re-checks the full table).
  StressOptions one = profileOptions();
  one.threads = 1;
  StressOptions four = profileOptions();
  four.threads = 4;
  SoundnessStressReport a = stressSymDmam(one);
  SoundnessStressReport b = stressSymDmam(four);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t m = 0; m < a.cells.size(); ++m) {
    EXPECT_TRUE(a.cells[m].stats.sameResults(b.cells[m].stats)) << a.cells[m].mutator;
    EXPECT_EQ(a.cells[m].decodeRejected, b.cells[m].decodeRejected)
        << a.cells[m].mutator;
  }
}

}  // namespace
}  // namespace dip::adv
