// Fixture-corpus tests for dip-analyze: every rule has its own mini source
// tree under tests/analyze/fixtures/<rule>/src with at least one firing
// file and one clean file. Files whose basename contains "clean" must
// produce zero findings; every other file must produce at least one finding
// of the tree's rule (and no findings of any *other* rule, so fixtures
// cannot drift into accidentally testing a neighbour).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace dip::analyze {
namespace {

#ifndef DIP_ANALYZE_TESTDATA_DIR
#error "DIP_ANALYZE_TESTDATA_DIR must point at tests/analyze"
#endif

std::map<std::string, std::vector<Finding>> findingsByPath(
    const std::string& tree) {
  std::string root = std::string(DIP_ANALYZE_TESTDATA_DIR) + "/fixtures/" + tree;
  std::vector<SourceFile> files;
  std::string error;
  EXPECT_TRUE(loadTree(root, files, error)) << error;
  EXPECT_FALSE(files.empty()) << "no fixture files under " << root;
  AnalysisReport report = analyzeFiles(files, nullptr);
  std::map<std::string, std::vector<Finding>> byPath;
  for (const SourceFile& file : files) byPath[file.path];  // clean files too
  for (const Finding& finding : report.findings) {
    byPath[finding.path].push_back(finding);
  }
  return byPath;
}

bool isCleanFixture(const std::string& path) {
  return path.find("clean") != std::string::npos;
}

// Runs the firing/clean contract for one rule tree.
void checkTree(const std::string& rule) {
  auto byPath = findingsByPath(rule);
  int firingFiles = 0;
  int cleanFiles = 0;
  for (const auto& [path, findings] : byPath) {
    if (isCleanFixture(path)) {
      ++cleanFiles;
      EXPECT_TRUE(findings.empty())
          << path << " must be clean but got: " << (findings.empty()
              ? std::string()
              : findings.front().rule + ": " + findings.front().message);
      continue;
    }
    ++firingFiles;
    EXPECT_FALSE(findings.empty()) << path << " must fire " << rule;
    for (const Finding& finding : findings) {
      EXPECT_EQ(finding.rule, rule)
          << path << " fired foreign rule " << finding.rule << ": "
          << finding.message;
    }
  }
  EXPECT_GE(firingFiles, 1) << rule << " tree has no firing fixture";
  EXPECT_GE(cleanFiles, 1) << rule << " tree has no clean fixture";
}

TEST(AnalyzeFixtures, ChargeAudit) { checkTree("charge-audit"); }
TEST(AnalyzeFixtures, UnchargedWire) { checkTree("uncharged-wire"); }
TEST(AnalyzeFixtures, Nondeterminism) { checkTree("nondeterminism"); }
TEST(AnalyzeFixtures, LibraryIo) { checkTree("library-io"); }
TEST(AnalyzeFixtures, Locality) { checkTree("locality"); }
TEST(AnalyzeFixtures, ThreadContainment) { checkTree("thread-containment"); }
TEST(AnalyzeFixtures, HotLoopAlloc) { checkTree("hot-loop-alloc"); }
TEST(AnalyzeFixtures, MutatorSelftest) { checkTree("mutator-selftest"); }
TEST(AnalyzeFixtures, ChargeCoverage) { checkTree("charge-coverage"); }
TEST(AnalyzeFixtures, DeterminismEscape) { checkTree("determinism-escape"); }
TEST(AnalyzeFixtures, SuppressionHygiene) { checkTree("suppression-hygiene"); }

// Every rule in the registry has a fixture tree exercised above.
TEST(AnalyzeFixtures, RegistryIsFullyCovered) {
  const std::set<std::string> covered = {
      "charge-audit",     "uncharged-wire",    "nondeterminism",
      "library-io",       "locality",          "thread-containment",
      "hot-loop-alloc",   "mutator-selftest",  "charge-coverage",
      "determinism-escape", "suppression-hygiene"};
  for (const RuleDescriptor& rule : ruleRegistry()) {
    EXPECT_TRUE(covered.count(rule.name) != 0)
        << "rule " << rule.name << " has no fixture tree";
  }
  EXPECT_EQ(covered.size(), ruleRegistry().size());
}

// The regression tree holds the comment/string/raw-string/splice shapes the
// regex linter tripped over: banned patterns that are not code. Everything
// in it must be clean.
TEST(AnalyzeFixtures, RegexFalsePositiveRegressions) {
  auto byPath = findingsByPath("regression");
  EXPECT_GE(byPath.size(), 2u);
  for (const auto& [path, findings] : byPath) {
    EXPECT_TRUE(findings.empty())
        << path << " false positive: " << (findings.empty()
            ? std::string()
            : findings.front().rule + ": " + findings.front().message);
  }
}

}  // namespace
}  // namespace dip::analyze
