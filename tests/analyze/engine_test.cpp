// Engine-level tests for dip-analyze: the lexer invariants the rules rely
// on, suppression window semantics, the baseline round-trip, and the golden
// SARIF snapshot.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "baseline.hpp"
#include "lexer.hpp"
#include "sarif.hpp"
#include "source.hpp"

namespace dip::analyze {
namespace {

// ---------------------------------------------------------------------------
// Lexer

TEST(AnalyzeLexer, CommentsNeverBecomeTokens) {
  LexedFile lexed = lex("int a; // rand();\n/* std::thread t; */ int b;\n");
  for (const Token& token : lexed.tokens) {
    EXPECT_NE(token.text, "rand");
    EXPECT_NE(token.text, "thread");
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_NE(lexed.comments[0].text.find("rand"), std::string::npos);
}

TEST(AnalyzeLexer, StringAndRawStringAreSingleTokens) {
  LexedFile lexed = lex(
      "const char* s = \"rand() inside\";\n"
      "const char* r = R\"doc( printf(\"x\") )doc\";\n");
  int strings = 0;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kString) ++strings;
    EXPECT_NE(token.text, "rand");
    EXPECT_NE(token.text, "printf");
  }
  EXPECT_EQ(strings, 2);
}

TEST(AnalyzeLexer, LineSplicePreservesPhysicalLines) {
  // `ra\<newline>nd` splices to the identifier `rand` on physical line 1.
  LexedFile lexed = lex("ra\\\nnd();\nint after;\n");
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_TRUE(lexed.tokens[0].isIdent("rand"));
  EXPECT_EQ(lexed.tokens[0].line, 1);
  // The token after the spliced construct still knows its physical line.
  bool sawAfter = false;
  for (const Token& token : lexed.tokens) {
    if (token.isIdent("after")) {
      EXPECT_EQ(token.line, 3);
      sawAfter = true;
    }
  }
  EXPECT_TRUE(sawAfter);
}

TEST(AnalyzeLexer, SplicedLineCommentSwallowsNextLine) {
  LexedFile lexed = lex("// comment \\\nrand();\nint x;\n");
  for (const Token& token : lexed.tokens) {
    EXPECT_NE(token.text, "rand");
  }
}

TEST(AnalyzeLexer, AuditRegionsMarkTokens) {
  LexedFile lexed = lex(
      "int a;\n"
      "#if DIP_AUDIT\n"
      "int audited;\n"
      "#else\n"
      "int normal;\n"
      "#endif\n"
      "#if OTHER_FLAG\n"
      "int other;\n"
      "#else\n"
      "int alsoNotAudit;\n"
      "#endif\n");
  for (const Token& token : lexed.tokens) {
    if (token.kind != TokenKind::kIdentifier || token.text == "int") continue;
    EXPECT_EQ(token.inAudit, token.text == "audited") << token.text;
  }
}

// ---------------------------------------------------------------------------
// Suppressions

constexpr const char* kRandFile =
    "#include <cstdlib>\n"
    "// dip-lint: allow(nondeterminism) -- test fixture\n"
    "int f() { return rand(); }\n";

TEST(AnalyzeSuppression, AnnotationInWindowSuppresses) {
  AnalysisReport report = analyzeInMemory({{"src/core/a.cpp", kRandFile}});
  EXPECT_EQ(report.activeCount, 0u)
      << (report.findings.empty() ? std::string()
                                  : report.findings.front().message);
}

TEST(AnalyzeSuppression, AnnotationBeyondWindowDoesNotSuppress) {
  std::string content =
      "#include <cstdlib>\n"
      "// dip-lint: allow(nondeterminism) -- too far away\n";
  for (int i = 0; i < kSuppressionWindow; ++i) content += "int pad" + std::to_string(i) + ";\n";
  content += "int f() { return rand(); }\n";
  AnalysisReport report = analyzeInMemory({{"src/core/a.cpp", content}});
  // The rand() fires (out of window) and the annotation is reported dead.
  bool sawRand = false;
  bool sawDead = false;
  for (const Finding& finding : report.findings) {
    if (finding.rule == "nondeterminism") sawRand = true;
    if (finding.rule == "suppression-hygiene") sawDead = true;
  }
  EXPECT_TRUE(sawRand);
  EXPECT_TRUE(sawDead);
}

TEST(AnalyzeSuppression, DipAnalyzeMarkerIsASynonym) {
  std::string content =
      "#include <cstdlib>\n"
      "// dip-analyze: allow(nondeterminism) -- synonym marker\n"
      "int f() { return rand(); }\n";
  AnalysisReport report = analyzeInMemory({{"src/core/a.cpp", content}});
  EXPECT_EQ(report.activeCount, 0u);
}

// ---------------------------------------------------------------------------
// Baseline

TEST(AnalyzeBaseline, RoundTripSuppressesUntilTheLineChanges) {
  const std::string path = "src/core/legacy.cpp";
  const std::string content =
      "#include <cstdlib>\n"
      "int f() { return rand(); }\n";
  AnalysisReport before = analyzeInMemory({{path, content}});
  ASSERT_EQ(before.activeCount, 1u);
  const Finding& finding = before.findings.front();

  // Build a baseline entry exactly like --write-baseline does.
  BaselineEntry entry;
  entry.rule = finding.rule;
  entry.path = finding.path;
  entry.hash = fingerprintLine("int f() { return rand(); }");
  entry.reason = "grandfathered by test";
  std::string rendered = Baseline::render({entry});

  std::vector<std::string> errors;
  Baseline baseline = Baseline::parse(rendered, errors);
  EXPECT_TRUE(errors.empty());

  AnalysisReport after = analyzeInMemory({{path, content}}, &baseline);
  EXPECT_EQ(after.activeCount, 0u);
  EXPECT_EQ(after.baselinedCount, 1u);

  // Editing the flagged line invalidates the entry: the finding resurfaces.
  const std::string edited =
      "#include <cstdlib>\n"
      "int f() { return rand() + 1; }\n";
  AnalysisReport resurfaced = analyzeInMemory({{path, edited}}, &baseline);
  EXPECT_EQ(resurfaced.activeCount, 1u);
  EXPECT_EQ(resurfaced.baselinedCount, 0u);

  // Re-indenting does NOT invalidate it: the fingerprint trims whitespace.
  const std::string reindented =
      "#include <cstdlib>\n"
      "    int f() { return rand(); }\n";
  AnalysisReport stable = analyzeInMemory({{path, reindented}}, &baseline);
  EXPECT_EQ(stable.activeCount, 0u);
  EXPECT_EQ(stable.baselinedCount, 1u);
}

TEST(AnalyzeBaseline, ReasonIsMandatory) {
  std::vector<std::string> errors;
  Baseline::parse("nondeterminism src/core/a.cpp 0123456789abcdef\n", errors);
  EXPECT_FALSE(errors.empty());
}

TEST(AnalyzeBaseline, CommentsAndBlankLinesAreIgnored) {
  std::vector<std::string> errors;
  Baseline baseline = Baseline::parse(
      "# header comment\n"
      "\n"
      "nondeterminism src/core/a.cpp 0123456789abcdef -- why\n",
      errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(baseline.entries().size(), 1u);
  EXPECT_TRUE(baseline.matches("nondeterminism", "src/core/a.cpp",
                               0x0123456789abcdefULL));
  EXPECT_FALSE(baseline.matches("nondeterminism", "src/core/a.cpp", 1));
}

// ---------------------------------------------------------------------------
// SARIF golden snapshot

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(AnalyzeSarif, GoldenSnapshot) {
  std::string root =
      std::string(DIP_ANALYZE_TESTDATA_DIR) + "/fixtures/sarif-golden";
  std::vector<SourceFile> files;
  std::string error;
  ASSERT_TRUE(loadTree(root, files, error)) << error;
  AnalysisReport report = analyzeFiles(files, nullptr);
  std::string sarif = renderSarif(report.findings);
  std::string golden =
      slurp(std::string(DIP_ANALYZE_TESTDATA_DIR) + "/golden/findings.sarif");
  EXPECT_EQ(sarif, golden)
      << "SARIF output drifted from the golden snapshot. If the change is "
         "intentional, regenerate tests/analyze/golden/findings.sarif.";
}

}  // namespace
}  // namespace dip::analyze
