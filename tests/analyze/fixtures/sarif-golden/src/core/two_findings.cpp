// Golden-snapshot input: exactly two deterministic findings.
#include <cstdlib>

int pickChallenge(int n) {
  return rand() % n;  // nondeterminism
}

void parallelCheck() {
  std::thread worker;  // thread-containment
}
