// Golden-snapshot input: a clean file, so the artifact list and result list
// differ.
int answer() { return 42; }
