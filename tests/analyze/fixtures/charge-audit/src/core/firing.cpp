// Fixture: a Transcript charge that is never cross-checked by
// auditCharge/auditChargedRound before the next round.
#include "net/transcript.hpp"

void roundOne(net::Transcript& t) {
  t.beginRound();
  t.chargeBroadcast(12);  // never audited -> charge-audit fires here
  t.beginRound();
}
