// Fixture: the canonical audited round shape; must produce no findings.
#include "net/transcript.hpp"

void roundOne(net::Transcript& t) {
  t.beginRound();
  t.chargeBroadcast(12);
#if DIP_AUDIT
  net::auditChargedRound(t, wire::encodeDecision(1).bitCount());
#endif
  t.beginRound();
  t.chargeBroadcast(4);
#if DIP_AUDIT
  net::auditCharge(t, wire::encodeVerdict(0).bitCount());
#endif
}
