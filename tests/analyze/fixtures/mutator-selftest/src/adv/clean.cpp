// Fixture: a registered mutator; must stay clean.
#include "adv/mutator.hpp"

namespace adv {

class BitFlipper : public MessageMutator {
 public:
  void mutate(Message& message, util::Rng& rng) override;
};

DIP_MUTATOR_SELF_TEST(BitFlipper);

}  // namespace adv
