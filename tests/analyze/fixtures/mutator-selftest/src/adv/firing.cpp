// Fixture: a MessageMutator subclass with no DIP_MUTATOR_SELF_TEST
// registration anywhere in src/adv.
#include "adv/mutator.hpp"

namespace adv {

class BitSmasher : public MessageMutator {  // mutator-selftest fires
 public:
  void mutate(Message& message, util::Rng& rng) override;
};

}  // namespace adv
