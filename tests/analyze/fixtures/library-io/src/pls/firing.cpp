// Fixture: library code writing to stdout. Both the include and the call
// sites fire.
#include <iostream>

void reportRank(int rank) {
  std::cout << "rank=" << rank << "\n";  // library-io fires
}
