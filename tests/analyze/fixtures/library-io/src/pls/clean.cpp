// Fixture: silent library code; must stay clean.
#include <string>

std::string describeRank(int rank) {
  return "rank=" + std::to_string(rank);
}
