// Fixture: a wire module (basename contains "wire") may call its own
// encoders freely; must stay clean.
#include "net/wire.hpp"

namespace wire {

int roundTrip(int verdict) {
  return wire::encodeDecision(verdict).bitCount();
}

}  // namespace wire
