// Fixture: wire encodings are fine under #if DIP_AUDIT; must stay clean.
#include "net/wire.hpp"

int auditedBits(int verdict) {
#if DIP_AUDIT
  return wire::encodeDecision(verdict).bitCount();
#else
  (void)verdict;
  return 0;
#endif
}
