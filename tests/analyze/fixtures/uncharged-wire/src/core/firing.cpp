// Fixture: a wire encoding produced on the normal (non-audit) path, outside
// any wire module -- communication nobody charged.
#include "net/wire.hpp"

int decisionBits(int verdict) {
  return wire::encodeDecision(verdict).bitCount();  // uncharged-wire fires
}
