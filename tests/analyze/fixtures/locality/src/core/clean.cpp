// Fixture: a properly local nodeDecision -- reads only row(v), hasEdge(v, u)
// over neighbours, and hands helpers the vertex along with the graph. Must
// stay clean.
#include "graph/graph.hpp"

int localView(const Graph& g, Vertex v);

bool nodeDecision(const Graph& g, Vertex v) {
  int neighbours = 0;
  g.row(v).forEachSet([&](Vertex u) {
    if (g.hasEdge(v, u)) ++neighbours;
  });
  return neighbours + localView(g, v) > 0;
}
