// Fixture: a nodeDecision that counts over the whole graph and reads a
// non-own row -- both locality breaks.
#include "graph/graph.hpp"

bool nodeDecision(const Graph& g, Vertex v, int n) {
  int degreeSum = 0;
  for (Vertex u = 0; u < n; ++u) {  // locality fires: whole-graph loop
    if (g.hasEdge(u, v)) ++degreeSum;  // locality fires: non-own row read
  }
  return degreeSum % 2 == 0;
}
