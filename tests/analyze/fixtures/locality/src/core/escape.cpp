// Fixture: the graph escapes nodeDecision into a helper that never receives
// the own vertex -- the helper can compute any global view it likes.
#include "graph/graph.hpp"

int globalTriangleCount(const Graph& g);

bool nodeDecision(const Graph& g, Vertex v) {
  (void)v;
  return globalTriangleCount(g) > 0;  // locality fires: graph escape
}
