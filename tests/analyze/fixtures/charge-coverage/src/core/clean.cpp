// Fixture: charges and encodings back each other in every round; must stay
// clean.
#include "net/transcript.hpp"

void protocol(net::Transcript& t, int verdict) {
  t.beginRound();
  t.chargeBroadcast(12);
#if DIP_AUDIT
  net::auditChargedRound(t, wire::encodeDecision(verdict).bitCount());
#endif
  t.beginRound();
  t.chargePointToPoint(0, 1, 4);
#if DIP_AUDIT
  net::auditCharge(t, wire::encodeVerdict(verdict).bitCount());
#endif
}
