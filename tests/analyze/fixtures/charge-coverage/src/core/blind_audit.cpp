// Fixture: an audit whose arguments reference no wire codec cross-checks
// the charges against nothing.
#include "net/transcript.hpp"

void roundOne(net::Transcript& t) {
  t.beginRound();
  t.chargeBroadcast(8);
#if DIP_AUDIT
  net::auditChargedRound(t, 8);  // charge-coverage fires: no codec backing
#endif
}
