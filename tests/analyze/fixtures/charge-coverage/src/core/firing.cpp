// Fixture: a round that re-encodes messages but charges nothing -- the
// encoding exists, so the communication happened, but no bits were charged
// to the transcript.
#include "net/transcript.hpp"

void roundOne(net::Transcript& t, int verdict) {
  t.beginRound();
#if DIP_AUDIT
  net::auditChargedRound(t, wire::encodeDecision(verdict).bitCount());
#endif
}
