// Fixture: a justified, *used* suppression -- the rand() below would fire
// nondeterminism, the annotation consumes it, and hygiene stays quiet.
#include <cstdlib>

int sampleForDiagnostics(int n) {
  // dip-lint: allow(nondeterminism) -- diagnostics-only helper, never on the verdict path
  return rand() % n;
}
