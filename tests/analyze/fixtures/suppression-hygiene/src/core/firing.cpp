// Fixture: three bad annotations -- an unknown rule name, a reasonless
// allow, and a dead allow that suppresses nothing.

// dip-lint: allow(made-up-rule) -- the rule name is wrong
static int unknownRule = 1;

// dip-lint: allow(nondeterminism)
static int reasonless = 2;

// dip-lint: allow(library-io) -- nothing below ever prints
static int dead = 3;
