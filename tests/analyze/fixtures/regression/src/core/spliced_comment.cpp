// Fixture: a line comment continued by a backslash-newline splice swallows
// the next physical line -- the rand() call below the splice is commented
// out. A physical-line scanner flags it; the lexer must not. \
   rand();

int fortyTwo() {
  // Digraph-free, splice-free control: a normal function.
  return 42;
}
