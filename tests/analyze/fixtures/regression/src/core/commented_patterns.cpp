// Fixture: every banned pattern below lives in a comment or a string
// literal. The regex linter had to special-case these; the lexer simply
// never sees them as code. Must stay clean.
//
//   t.chargeBroadcast(12);
//   wire::encodeDecision(1);
//   rand(); srand(7); std::random_device rd;
//   std::thread worker;
#include <string>

/* block comment:
   std::cout << "hello";
   for (Vertex u = 0; u < n; ++u) {}
*/

std::string helpText() {
  return "call rand() and std::cout << wire::encodeDecision(v) -- "
         "none of this is code";
}

std::string rawHelp() {
  return R"doc(
    std::thread t;
    t.chargeBroadcast(99);
    printf("uncharged!\n");
  )doc";
}
