// Fixture: verifier code drawing randomness outside util::Rng.
#include <cstdlib>

int pickChallenge(int n) {
  return rand() % n;  // nondeterminism fires
}
