// Fixture: the seeded util::Rng is the only sanctioned randomness source;
// must stay clean.
#include "util/rng.hpp"

int pickChallenge(util::Rng& rng, int n) {
  return static_cast<int>(rng.nextBounded(static_cast<unsigned>(n)));
}
