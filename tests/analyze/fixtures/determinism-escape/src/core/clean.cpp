// Fixture: membership-only use of an unordered container is fine -- no
// iteration order can leak; must stay clean.
#include <unordered_set>
#include <vector>

std::vector<int> dedupe(const std::vector<int>& values) {
  std::unordered_set<int> seen;
  std::vector<int> kept;
  for (int value : values) {
    if (seen.count(value) != 0) continue;
    seen.insert(value);
    kept.push_back(value);
  }
  return kept;
}
