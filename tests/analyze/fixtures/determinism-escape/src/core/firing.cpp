// Fixture: iterating an unordered container -- bucket order is
// implementation-defined and here it reaches a digest fold.
#include <cstdint>
#include <unordered_map>

std::uint64_t foldLabels(const std::unordered_map<int, std::uint64_t>& labels) {
  std::uint64_t digest = 0;
  for (const auto& entry : labels) {  // determinism-escape fires
    digest ^= entry.second * 0x9e3779b97f4a7c15ULL;
  }
  return digest;
}
