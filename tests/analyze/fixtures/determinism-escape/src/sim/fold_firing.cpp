// Fixture: floating-point accumulation in the trial-fold layer -- the sum
// depends on worker completion order.
void foldWall(double* samples, int count) {
  double total = 0.0;
  for (int i = 0; i < count; ++i) {
    total += samples[i];  // determinism-escape fires
  }
}
