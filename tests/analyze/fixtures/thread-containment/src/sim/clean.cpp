// Fixture: the trial engine in src/sim owns thread management; must stay
// clean.
#include <thread>

void spawnWorkers(int count) {
  for (int i = 0; i < count; ++i) {
    std::thread worker([] {});
    worker.join();
  }
}
