// Fixture: raw threading outside the trial engine.
#include <thread>

void parallelCheck() {
  std::thread worker([] {});  // thread-containment fires
  worker.join();
}
