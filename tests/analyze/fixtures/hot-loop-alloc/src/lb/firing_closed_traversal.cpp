// Fixture: closedNeighbors() in a loop body on the lower-bound baseline
// path (src/lb) must fire hot-loop-alloc via the traversal shape.
#include "graph/graph.hpp"

namespace dip::lb {

bool allNonEmpty(const graph::Graph* g, std::size_t rounds, graph::Vertex v) {
  for (std::size_t r = 0; r < rounds; ++r) {
    if (g->closedNeighbors(v).empty()) return false;
  }
  return true;
}

}  // namespace dip::lb
