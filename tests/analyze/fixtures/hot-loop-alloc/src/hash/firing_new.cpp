// Fixture: raw operator new every iteration on the hash hot path -- the
// engine allocates from the caller's arena/scratch, never per round.
#include <cstdint>
#include <vector>

void expand(std::vector<std::uint64_t*>& slots, std::size_t rounds) {
  for (std::size_t i = 0; i < rounds; ++i) {
    slots[i] = new std::uint64_t[8];  // hot-loop-alloc fires
  }
}
