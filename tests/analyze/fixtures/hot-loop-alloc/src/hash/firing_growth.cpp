// Fixture: push_back inside a hot-path loop with no reserve anywhere in the
// file -- geometric regrowth reallocates mid-loop.
#include <cstdint>
#include <vector>

void collect(std::vector<std::uint64_t>& out, std::size_t rounds) {
  for (std::size_t i = 0; i < rounds; ++i) {
    out.push_back(i * i);  // hot-loop-alloc fires
  }
}
