// Fixture: the scratch value is hoisted out of the loop and reused; must
// stay clean.
#include "util/biguint.hpp"

void absorb(const util::BigUInt& block, int rounds) {
  util::BigUInt scratch = block;
  for (int i = 0; i < rounds; ++i) {
    scratch.shiftLeft(1);
  }
}
