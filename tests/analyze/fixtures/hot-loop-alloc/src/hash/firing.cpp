// Fixture: a fresh BigUInt every iteration on the hash hot path -- one heap
// allocation per round of the compression loop.
#include "util/biguint.hpp"

void absorb(const util::BigUInt& block, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    util::BigUInt scratch = block;  // hot-loop-alloc fires
    scratch.shiftLeft(1);
  }
}
