// Fixture: the reserve-immediately-before-loop idiom; growth calls on a
// reserved receiver must stay clean, as must emplace_back on a second
// container with its own earlier reserve.
#include <cstdint>
#include <vector>

void collect(std::vector<std::uint64_t>& out, std::vector<std::uint64_t>& aux,
             std::size_t rounds) {
  out.reserve(rounds);
  aux.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    out.push_back(i * i);
    aux.emplace_back(i);
  }
}
