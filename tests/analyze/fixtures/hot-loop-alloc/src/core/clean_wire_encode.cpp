// Fixture: the encode loop writes through references into preallocated
// writers — nothing is constructed per node; must stay clean.
#include "util/biguint.hpp"

void encodeShares(const util::BigUInt* shares, std::size_t n) {
  util::BigUInt scratch;
  for (std::size_t v = 0; v < n; ++v) {
    scratch = shares[v];
    scratch.shiftLeft(1);
  }
}
