// Fixture: the transcript-encode path (core wire modules) is covered by
// hot-loop-alloc — under DIP_AUDIT every round re-encodes inside the trial
// loop, so a fresh BigUInt per node is one heap block per node per round.
#include "util/biguint.hpp"

void encodeShares(const util::BigUInt* shares, std::size_t n) {
  for (std::size_t v = 0; v < n; ++v) {
    util::BigUInt share = shares[v];  // hot-loop-alloc fires
    share.shiftLeft(1);
  }
}
