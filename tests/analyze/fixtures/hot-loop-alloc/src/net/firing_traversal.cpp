// Fixture: neighbor-vector materialization inside a traversal loop on a
// src/net path must fire hot-loop-alloc.
#include "graph/graph.hpp"

namespace dip::net {

std::size_t sumDegrees(const graph::Graph& g) {
  std::size_t acc = 0;
  for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
    acc += g.neighbors(v).size();
  }
  return acc;
}

}  // namespace dip::net
