// Fixture: the streaming visitor form of the same loop is clean, and a
// one-shot neighbors() call outside any loop is tolerated (cold snapshot).
#include "graph/graph.hpp"

namespace dip::net {

std::size_t sumDegrees(const graph::Graph& g) {
  std::size_t acc = 0;
  for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
    g.forEachNeighbor(v, [&](graph::Vertex u) { acc += u; });
  }
  return acc;
}

std::vector<graph::Vertex> snapshot(const graph::Graph& g, graph::Vertex v) {
  return g.closedNeighbors(v);
}

}  // namespace dip::net
