// Known-answer tests for the classic-graph catalog: automorphism group
// ORDERS of famous graphs are textbook facts, making these the strongest
// ground-truth checks the automorphism engine gets — and showpiece inputs
// for the protocols.
#include <gtest/gtest.h>

#include <memory>

#include "core/sym_dmam.hpp"
#include "graph/catalog.hpp"
#include "graph/isomorphism.hpp"
#include "hash/linear_hash.hpp"
#include "util/rng.hpp"

namespace dip::graph {
namespace {

TEST(Catalog, PetersenBasicFacts) {
  Graph petersen = petersenGraph();
  EXPECT_EQ(petersen.numVertices(), 10u);
  EXPECT_EQ(petersen.numEdges(), 15u);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(petersen.degree(v), 3u);
  EXPECT_TRUE(petersen.isConnected());
}

TEST(Catalog, PetersenAutomorphismGroupOrder) {
  // |Aut(Petersen)| = 120 = S_5 (a classical fact).
  EXPECT_EQ(countAutomorphisms(petersenGraph()), 120u);
}

TEST(Catalog, FruchtIsTheClassicRigidCubicGraph) {
  Graph frucht = fruchtGraph();
  EXPECT_EQ(frucht.numVertices(), 12u);
  EXPECT_EQ(frucht.numEdges(), 18u);
  for (Vertex v = 0; v < 12; ++v) EXPECT_EQ(frucht.degree(v), 3u);
  EXPECT_TRUE(frucht.isConnected());
  EXPECT_TRUE(isRigid(frucht));  // Trivial automorphism group.
}

TEST(Catalog, HeawoodAutomorphismGroupOrder) {
  Graph heawood = heawoodGraph();
  EXPECT_EQ(heawood.numVertices(), 14u);
  EXPECT_EQ(heawood.numEdges(), 21u);
  // |Aut(Heawood)| = 336 = PGL(2,7).
  EXPECT_EQ(countAutomorphisms(heawood), 336u);
}

TEST(Catalog, CompleteBipartiteGroups) {
  // |Aut(K_{a,b})| = a! b! for a != b; 2 (a!)^2 for a = b.
  EXPECT_EQ(countAutomorphisms(completeBipartite(2, 3)), 2u * 6u);
  EXPECT_EQ(countAutomorphisms(completeBipartite(3, 3)), 2u * 36u);
  EXPECT_EQ(completeBipartite(3, 4).numEdges(), 12u);
}

TEST(Catalog, HypercubeGroups) {
  // |Aut(Q_d)| = 2^d d!.
  EXPECT_EQ(countAutomorphisms(hypercubeGraph(2)), 8u);    // Q2 = C4: 2^2 * 2.
  EXPECT_EQ(countAutomorphisms(hypercubeGraph(3)), 48u);   // 2^3 * 6.
  Graph q4 = hypercubeGraph(4);
  EXPECT_EQ(q4.numVertices(), 16u);
  EXPECT_EQ(q4.numEdges(), 32u);
  EXPECT_TRUE(q4.isConnected());
}

TEST(Catalog, LcfNotationRejectsBadInput) {
  EXPECT_THROW(fromLcfNotation(2, {1}), std::invalid_argument);
  EXPECT_THROW(fromLcfNotation(10, {}), std::invalid_argument);
}

TEST(Catalog, Protocol1ProvesPetersenSymmetric) {
  // End to end on a famous instance: Protocol 1 proves the Petersen graph
  // symmetric with ~60 bits per node.
  util::Rng rng(331);
  Graph petersen = petersenGraph();
  core::SymDmamProtocol protocol(hash::makeProtocol1Family(10, rng));
  core::HonestSymDmamProver prover(protocol.family());
  core::RunResult result = protocol.run(petersen, prover, rng);
  EXPECT_TRUE(result.accepted);
  EXPECT_LT(result.transcript.maxPerNodeBits(), 120u);
}

TEST(Catalog, CheatersFailOnFrucht) {
  // The Frucht graph has NO non-trivial automorphism: every committed rho
  // is a lie, and the fingerprints catch it.
  util::Rng rng(332);
  Graph frucht = fruchtGraph();
  core::SymDmamProtocol protocol(hash::makeProtocol1Family(12, rng));
  int seed = 0;
  core::AcceptanceStats stats = protocol.estimateAcceptance(
      frucht,
      [&] {
        return std::make_unique<core::CheatingRhoProver>(
            protocol.family(), core::CheatingRhoProver::Strategy::kRandomPermutation,
            seed++);
      },
      200, rng);
  EXPECT_LT(stats.rate(), 0.05);
}

}  // namespace
}  // namespace dip::graph
