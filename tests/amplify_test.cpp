// Tests for AND-composition soundness amplification.
#include <gtest/gtest.h>

#include <memory>

#include "core/amplify.hpp"
#include "core/sym_dmam.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using util::Rng;

TEST(Amplify, PerfectCompletenessSurvivesRepetition) {
  Rng rng(281);
  const std::size_t n = 10;
  Rng setup(282);
  SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  graph::Graph g = graph::randomSymmetricConnected(n, rng);
  HonestSymDmamProver prover(protocol.family());
  for (std::size_t t : {1u, 3u, 8u}) {
    RunResult result = runAmplified(protocol, g, prover, t, rng);
    EXPECT_TRUE(result.accepted) << t;
  }
}

TEST(Amplify, CostsAddAcrossRepetitions) {
  Rng rng(283);
  const std::size_t n = 8;
  Rng setup(284);
  SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  graph::Graph g = graph::randomSymmetricConnected(n, rng);
  HonestSymDmamProver prover(protocol.family());

  RunResult one = runAmplified(protocol, g, prover, 1, rng);
  RunResult four = runAmplified(protocol, g, prover, 4, rng);
  EXPECT_EQ(four.transcript.maxPerNodeBits(), 4 * one.transcript.maxPerNodeBits());
  EXPECT_EQ(four.transcript.totalBits(), 4 * one.transcript.totalBits());
}

TEST(Amplify, SoundnessErrorShrinksGeometrically) {
  EXPECT_DOUBLE_EQ(amplifiedSoundness(0.1, 1), 0.1);
  EXPECT_DOUBLE_EQ(amplifiedSoundness(0.1, 3), 0.001);
  EXPECT_DOUBLE_EQ(amplifiedSoundness(1.0 / 3.0, 2), 1.0 / 9.0);
  EXPECT_LT(amplifiedSoundness(1.0 / 3.0, 40), 1e-19);
}

TEST(Amplify, CheatersFailFasterUnderRepetition) {
  // Empirical: a cheater whose single-run acceptance is already tiny never
  // survives even 2 repetitions across many trials.
  Rng rng(285);
  const std::size_t n = 8;
  Rng setup(286);
  SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  graph::Graph rigid = graph::randomRigidConnected(n, rng);
  std::size_t accepts = 0;
  for (int trial = 0; trial < 150; ++trial) {
    CheatingRhoProver cheater(protocol.family(),
                              CheatingRhoProver::Strategy::kRandomPermutation,
                              static_cast<std::uint64_t>(trial));
    if (runAmplified(protocol, rigid, cheater, 2, rng).accepted) ++accepts;
  }
  EXPECT_EQ(accepts, 0u);
}

TEST(Amplify, EarlyExitKeepsTranscriptPartial) {
  // AND-composition stops at the first rejection; the transcript reflects
  // only the executed repetitions (no phantom charges).
  Rng rng(287);
  const std::size_t n = 8;
  Rng setup(288);
  SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  graph::Graph rigid = graph::randomRigidConnected(n, rng);
  CheatingRhoProver cheater(protocol.family(),
                            CheatingRhoProver::Strategy::kIdentity, 1);
  RunResult result = runAmplified(protocol, rigid, cheater, 10, rng);
  EXPECT_FALSE(result.accepted);
  // The identity cheater is rejected deterministically in run 1.
  RunResult single = protocol.run(rigid, cheater, rng);
  EXPECT_EQ(result.transcript.totalBits(), single.transcript.totalBits());
}

}  // namespace
}  // namespace dip::core
