// Property fuzz for the bit-level serialization substrate: random sequences
// of heterogeneous writes must read back exactly, and the bit count must
// equal the sum of the written widths. The second half structurally fuzzes
// the core/wire decoders: truncated and garbage prover streams must fail
// with a clean exception, never an out-of-bounds read (run under the
// asan-ubsan preset to make that claim meaningful).
// Each fuzz iteration draws from its own counter-based child stream (see
// fuzz_seed.hpp), so a failure reproduces from the printed seed line alone.
#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>
#include <vector>

#include "core/wire.hpp"
#include "graph/generators.hpp"
#include "fuzz_seed.hpp"
#include "util/bitio.hpp"
#include "util/rng.hpp"

namespace dip::util {
namespace {

using testutil::fuzzStream;
using testutil::seedLine;

struct UIntOp {
  std::uint64_t value;
  unsigned width;
};
struct BigOp {
  BigUInt value;
  std::size_t width;
};
struct VarOp {
  std::uint64_t value;
};
using Op = std::variant<UIntOp, BigOp, VarOp>;

TEST(BitIoFuzz, RandomHeterogeneousSequencesRoundTrip) {
  constexpr std::uint64_t kSeed = 351;
  for (std::uint64_t sequence = 0; sequence < 50; ++sequence) {
    SCOPED_TRACE(seedLine(kSeed, sequence));
    Rng rng = fuzzStream(kSeed, sequence);
    std::vector<Op> ops;
    BitWriter writer;
    std::size_t expectedFixedBits = 0;
    const std::size_t opCount = 1 + rng.nextBelow(40);
    for (std::size_t i = 0; i < opCount; ++i) {
      switch (rng.nextBelow(3)) {
        case 0: {
          unsigned width = 1 + static_cast<unsigned>(rng.nextBelow(64));
          std::uint64_t value = rng.nextBits(width);
          writer.writeUInt(value, width);
          expectedFixedBits += width;
          ops.push_back(UIntOp{value, width});
          break;
        }
        case 1: {
          std::size_t width = 1 + rng.nextBelow(300);
          BigUInt value = rng.nextBigBits(width);
          writer.writeBig(value, width);
          expectedFixedBits += width;
          ops.push_back(BigOp{value, width});
          break;
        }
        case 2: {
          std::uint64_t value = rng.nextBits(1 + static_cast<unsigned>(rng.nextBelow(64)));
          std::size_t before = writer.bitCount();
          writer.writeVarUInt(value);
          expectedFixedBits += writer.bitCount() - before;
          ops.push_back(VarOp{value});
          break;
        }
      }
    }
    EXPECT_EQ(writer.bitCount(), expectedFixedBits);

    BitReader reader(writer);
    for (const Op& op : ops) {
      if (const auto* u = std::get_if<UIntOp>(&op)) {
        EXPECT_EQ(reader.readUInt(u->width), u->value);
      } else if (const auto* b = std::get_if<BigOp>(&op)) {
        EXPECT_EQ(reader.readBig(b->width), b->value);
      } else {
        EXPECT_EQ(reader.readVarUInt(), std::get<VarOp>(op).value);
      }
    }
    EXPECT_EQ(reader.bitsRemaining(), 0u);
  }
}

TEST(BitIoFuzz, InterleavedBitsAndFields) {
  Rng rng = fuzzStream(352, 0);
  BitWriter writer;
  std::vector<bool> bits;
  for (int i = 0; i < 200; ++i) {
    bool bit = rng.nextBool();
    bits.push_back(bit);
    writer.writeBit(bit);
    if (i % 13 == 0) {
      writer.writeUInt(static_cast<std::uint64_t>(i), 9);
    }
  }
  BitReader reader(writer);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(reader.readBit(), bits[static_cast<std::size_t>(i)]);
    if (i % 13 == 0) {
      EXPECT_EQ(reader.readUInt(9), static_cast<std::uint64_t>(i));
    }
  }
}

}  // namespace
}  // namespace dip::util

namespace dip::core {
namespace {

using testutil::fuzzStream;
using testutil::seedLine;
using util::BitReader;
using util::BitWriter;
using util::Rng;

// Keeps only the first `keepBits` bits of a payload.
BitWriter truncated(const BitWriter& source, std::size_t keepBits) {
  BitReader reader(source);
  BitWriter out;
  for (std::size_t i = 0; i < keepBits; ++i) out.writeBit(reader.readBit());
  return out;
}

BitWriter randomBits(Rng& rng, std::size_t bits) {
  BitWriter out;
  for (std::size_t i = 0; i < bits; ++i) out.writeBit(rng.nextBool());
  return out;
}

class WireDecoderFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng setup(941);
    n_ = 10;
    family_ = hash::makeProtocol1Family(n_, setup);
    Rng graphRng(942);
    g_ = graph::randomSymmetricConnected(n_, graphRng);
  }
  std::size_t n_ = 0;
  hash::LinearHashFamily family_;
  graph::Graph g_{1};
};

TEST_F(WireDecoderFuzz, TruncatedSymDmamFirstStreamsFailCleanly) {
  constexpr std::uint64_t kSeed = 943;
  HonestSymDmamProver prover(family_);
  wire::EncodedRound round = wire::encodeSymDmamFirst(prover.firstMessage(g_), n_);
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE(seedLine(kSeed, trial));
    Rng rng = fuzzStream(kSeed, trial);
    wire::EncodedRound cut = round;
    if (rng.nextBool()) {
      cut.broadcast = truncated(round.broadcast, rng.nextBelow(round.broadcastBits()));
    } else {
      graph::Vertex victim = static_cast<graph::Vertex>(rng.nextBelow(n_));
      cut.unicast[victim] =
          truncated(round.unicast[victim], rng.nextBelow(round.unicastBits(victim)));
    }
    EXPECT_THROW(wire::decodeSymDmamFirst(cut, n_), std::out_of_range);
  }
}

TEST_F(WireDecoderFuzz, TruncatedSymDmamSecondStreamsFailCleanly) {
  constexpr std::uint64_t kSeed = 944;
  Rng setupRng = fuzzStream(kSeed, 0);
  HonestSymDmamProver prover(family_);
  SymDmamFirstMessage first = prover.firstMessage(g_);
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < n_; ++v) {
    challenges.push_back(family_.randomIndex(setupRng));
  }
  wire::EncodedRound round = wire::encodeSymDmamSecond(
      prover.secondMessage(g_, first, challenges), n_, family_);
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE(seedLine(kSeed, trial + 1));
    Rng rng = fuzzStream(kSeed, trial + 1);
    wire::EncodedRound cut = round;
    graph::Vertex victim = static_cast<graph::Vertex>(rng.nextBelow(n_));
    cut.unicast[victim] =
        truncated(round.unicast[victim], rng.nextBelow(round.unicastBits(victim)));
    EXPECT_THROW(wire::decodeSymDmamSecond(cut, n_, family_), std::out_of_range);
  }
}

TEST_F(WireDecoderFuzz, WrongUnicastCountRefused) {
  HonestSymDmamProver prover(family_);
  wire::EncodedRound round = wire::encodeSymDmamFirst(prover.firstMessage(g_), n_);
  wire::EncodedRound missing = round;
  missing.unicast.pop_back();
  EXPECT_THROW(wire::decodeSymDmamFirst(missing, n_), std::invalid_argument);
  wire::EncodedRound extra = round;
  extra.unicast.emplace_back();
  EXPECT_THROW(wire::decodeSymDmamFirst(extra, n_), std::invalid_argument);
}

TEST_F(WireDecoderFuzz, GarbageStreamsEitherDecodeOrThrowCleanly) {
  // Arbitrary bitstreams must never read out of bounds: a decoder either
  // produces a (garbage, range-unchecked) message for the decision layer to
  // reject, or throws out_of_range from the bounds-checked BitReader.
  constexpr std::uint64_t kSeed = 945;
  Rng setup(946);
  hash::LinearHashFamily family2 = hash::makeProtocol2Family(n_, setup);
  int decoded = 0, rejected = 0;
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    SCOPED_TRACE(seedLine(kSeed, trial));
    Rng rng = fuzzStream(kSeed, trial);
    wire::EncodedRound garbage;
    garbage.broadcast = randomBits(rng, rng.nextBelow(600));
    garbage.unicast.resize(n_);
    for (auto& payload : garbage.unicast) {
      payload = randomBits(rng, rng.nextBelow(400));
    }
    const int decoder = static_cast<int>(trial % 3);
    try {
      switch (decoder) {
        case 0: wire::decodeSymDmamFirst(garbage, n_); break;
        case 1: wire::decodeSymDmamSecond(garbage, n_, family_); break;
        default: wire::decodeSymDam(garbage, n_, family2); break;
      }
      ++decoded;
    } catch (const std::out_of_range&) {
      ++rejected;
    }
  }
  // Both outcomes must actually occur over 60 trials, otherwise the fuzz
  // lost its bite (payload size distribution drifted).
  EXPECT_GT(decoded, 0);
  EXPECT_GT(rejected, 0);
}

TEST_F(WireDecoderFuzz, TruncatedChallengeFailsCleanly) {
  Rng rng = fuzzStream(947, 0);
  util::BigUInt index = family_.randomIndex(rng);
  BitWriter encoded = wire::encodeChallenge(index, family_);
  for (std::size_t keep = 0; keep < encoded.bitCount(); keep += 7) {
    BitWriter cut = truncated(encoded, keep);
    EXPECT_THROW(wire::decodeChallenge(cut, family_), std::out_of_range);
  }
}

}  // namespace
}  // namespace dip::core
