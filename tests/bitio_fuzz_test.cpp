// Property fuzz for the bit-level serialization substrate: random sequences
// of heterogeneous writes must read back exactly, and the bit count must
// equal the sum of the written widths.
#include <gtest/gtest.h>

#include <variant>
#include <vector>

#include "util/bitio.hpp"
#include "util/rng.hpp"

namespace dip::util {
namespace {

struct UIntOp {
  std::uint64_t value;
  unsigned width;
};
struct BigOp {
  BigUInt value;
  std::size_t width;
};
struct VarOp {
  std::uint64_t value;
};
using Op = std::variant<UIntOp, BigOp, VarOp>;

TEST(BitIoFuzz, RandomHeterogeneousSequencesRoundTrip) {
  Rng rng(351);
  for (int sequence = 0; sequence < 50; ++sequence) {
    std::vector<Op> ops;
    BitWriter writer;
    std::size_t expectedFixedBits = 0;
    const std::size_t opCount = 1 + rng.nextBelow(40);
    for (std::size_t i = 0; i < opCount; ++i) {
      switch (rng.nextBelow(3)) {
        case 0: {
          unsigned width = 1 + static_cast<unsigned>(rng.nextBelow(64));
          std::uint64_t value = rng.nextBits(width);
          writer.writeUInt(value, width);
          expectedFixedBits += width;
          ops.push_back(UIntOp{value, width});
          break;
        }
        case 1: {
          std::size_t width = 1 + rng.nextBelow(300);
          BigUInt value = rng.nextBigBits(width);
          writer.writeBig(value, width);
          expectedFixedBits += width;
          ops.push_back(BigOp{value, width});
          break;
        }
        case 2: {
          std::uint64_t value = rng.nextBits(1 + static_cast<unsigned>(rng.nextBelow(64)));
          std::size_t before = writer.bitCount();
          writer.writeVarUInt(value);
          expectedFixedBits += writer.bitCount() - before;
          ops.push_back(VarOp{value});
          break;
        }
      }
    }
    EXPECT_EQ(writer.bitCount(), expectedFixedBits);

    BitReader reader(writer);
    for (const Op& op : ops) {
      if (const auto* u = std::get_if<UIntOp>(&op)) {
        EXPECT_EQ(reader.readUInt(u->width), u->value);
      } else if (const auto* b = std::get_if<BigOp>(&op)) {
        EXPECT_EQ(reader.readBig(b->width), b->value);
      } else {
        EXPECT_EQ(reader.readVarUInt(), std::get<VarOp>(op).value);
      }
    }
    EXPECT_EQ(reader.bitsRemaining(), 0u);
  }
}

TEST(BitIoFuzz, InterleavedBitsAndFields) {
  Rng rng(352);
  BitWriter writer;
  std::vector<bool> bits;
  for (int i = 0; i < 200; ++i) {
    bool bit = rng.nextBool();
    bits.push_back(bit);
    writer.writeBit(bit);
    if (i % 13 == 0) {
      writer.writeUInt(static_cast<std::uint64_t>(i), 9);
    }
  }
  BitReader reader(writer);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(reader.readBit(), bits[static_cast<std::size_t>(i)]);
    if (i % 13 == 0) {
      EXPECT_EQ(reader.readUInt(9), static_cast<std::uint64_t>(i));
    }
  }
}

}  // namespace
}  // namespace dip::util
