// Tests for the isomorphism/automorphism search engine — the honest
// prover's "unbounded computation" and the experiments' ground truth.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/catalog.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/isomorphism.hpp"
#include "util/rng.hpp"

namespace dip::graph {
namespace {

// Brute-force oracles for cross-checking on tiny graphs.
bool bruteForceHasNontrivialAutomorphism(const Graph& g) {
  Permutation perm = identityPermutation(g.numVertices());
  while (std::next_permutation(perm.begin(), perm.end())) {
    if (isAutomorphism(g, perm)) return true;
  }
  return false;
}

std::uint64_t bruteForceCountAutomorphisms(const Graph& g) {
  Permutation perm = identityPermutation(g.numVertices());
  std::uint64_t count = 0;
  do {
    if (isAutomorphism(g, perm)) ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return count;
}

TEST(RefinementColors, SeparatesDegreeClasses) {
  Graph star = starGraph(5);
  auto colors = refinementColors(star);
  EXPECT_NE(colors[0], colors[1]);  // Hub vs leaf.
  EXPECT_EQ(colors[1], colors[4]);  // Leaves alike.
}

TEST(RefinementColors, PathEndpointsMatch) {
  auto colors = refinementColors(pathGraph(5));
  EXPECT_EQ(colors[0], colors[4]);
  EXPECT_EQ(colors[1], colors[3]);
  EXPECT_NE(colors[0], colors[2]);
}

TEST(Automorphism, ClassicFamilies) {
  EXPECT_FALSE(isRigid(cycleGraph(6)));
  EXPECT_FALSE(isRigid(completeGraph(5)));
  EXPECT_FALSE(isRigid(starGraph(6)));
  EXPECT_FALSE(isRigid(pathGraph(4)));
  EXPECT_FALSE(isRigid(gridGraph(3, 3)));
}

TEST(Automorphism, SmallestRigidGraphHasSixVertices) {
  // Classic fact: every graph on 2 <= n <= 5 vertices has a non-trivial
  // automorphism; rigid graphs exist from n = 6 on (K1 is trivially rigid).
  for (std::size_t n = 2; n <= 5; ++n) {
    const std::size_t slots = n * (n - 1) / 2;
    for (std::uint64_t code = 0; code < (1ull << slots); ++code) {
      util::DynBitset bits(slots);
      for (std::size_t i = 0; i < slots; ++i) {
        if ((code >> i) & 1ull) bits.set(i);
      }
      EXPECT_FALSE(isRigid(Graph::fromUpperTriangleBits(n, bits)))
          << "n=" << n << " code=" << code;
    }
  }
}

TEST(Automorphism, KnownRigidSixVertexGraph) {
  // The standard minimal asymmetric graph: a path 0-1-2-3-4 plus edges
  // {0,2} and {5,1},{5,2}... use a verified instance instead: find one by
  // search and cross-check with brute force.
  util::Rng rng(41);
  Graph g = randomRigidConnected(6, rng);
  EXPECT_FALSE(bruteForceHasNontrivialAutomorphism(g));
}

TEST(Automorphism, FoundAutomorphismsAreReal) {
  util::Rng rng(42);
  for (int i = 0; i < 10; ++i) {
    Graph g = randomSymmetricConnected(12, rng);
    auto rho = findNontrivialAutomorphism(g);
    ASSERT_TRUE(rho.has_value());
    EXPECT_FALSE(isIdentity(*rho));
    EXPECT_TRUE(isAutomorphism(g, *rho));
  }
}

TEST(Automorphism, AgreesWithBruteForceOnRandomTinyGraphs) {
  util::Rng rng(43);
  for (int i = 0; i < 60; ++i) {
    std::size_t n = 4 + rng.nextBelow(3);  // 4..6
    Graph g = erdosRenyi(n, 0.5, rng);
    EXPECT_EQ(findNontrivialAutomorphism(g).has_value(),
              bruteForceHasNontrivialAutomorphism(g))
        << "iteration " << i;
  }
}

TEST(Automorphism, CountMatchesBruteForce) {
  util::Rng rng(44);
  for (int i = 0; i < 30; ++i) {
    Graph g = erdosRenyi(5, 0.5, rng);
    EXPECT_EQ(countAutomorphisms(g), bruteForceCountAutomorphisms(g));
  }
  EXPECT_EQ(countAutomorphisms(completeGraph(4)), 24u);
  EXPECT_EQ(countAutomorphisms(cycleGraph(5)), 10u);   // Dihedral group D5.
  EXPECT_EQ(countAutomorphisms(pathGraph(3)), 2u);
}

TEST(Automorphism, CountRespectsCap) {
  EXPECT_EQ(countAutomorphisms(completeGraph(5), 7), 7u);
}

TEST(Automorphism, OrbitPrunedCountMatchesKnownGroupOrders) {
  // The IR engine counts via orbit-stabilizer with pruning; these classical
  // group orders cross-check the pruning against published values.
  EXPECT_EQ(countAutomorphisms(petersenGraph()), 120u);       // S5 on 2-subsets.
  EXPECT_EQ(countAutomorphisms(fruchtGraph()), 1u);           // Smallest rigid cubic.
  EXPECT_EQ(countAutomorphisms(heawoodGraph()), 336u);        // PGL(2,7).
  EXPECT_EQ(countAutomorphisms(completeBipartite(3, 4)), 144u);  // 3! * 4!.
  EXPECT_EQ(countAutomorphisms(completeBipartite(3, 3)), 72u);   // 3!*3!*2.
  EXPECT_EQ(countAutomorphisms(hypercubeGraph(3)), 48u);      // 2^3 * 3!.
  EXPECT_EQ(countAutomorphisms(hypercubeGraph(4)), 384u);     // 2^4 * 4!.
}

TEST(Automorphism, OrbitPrunedCountMatchesUnprunedSearcher) {
  // Differential test: the orbit-pruned IR counter and the retained
  // unpruned backtracking searcher must agree on rigid AND symmetric
  // inputs (pruning may only skip automorphisms it can prove redundant).
  util::Rng rng(47);
  for (int i = 0; i < 12; ++i) {
    Graph rigid = randomRigidConnected(8, rng);
    EXPECT_EQ(countAutomorphisms(rigid), countAutomorphismsBacktracking(rigid));
    Graph symmetric = randomSymmetricConnected(10, rng);
    EXPECT_EQ(countAutomorphisms(symmetric),
              countAutomorphismsBacktracking(symmetric));
  }
  EXPECT_EQ(countAutomorphisms(petersenGraph()),
            countAutomorphismsBacktracking(petersenGraph()));
}

TEST(Isomorphism, AgreesWithBacktrackingOracle) {
  // The IR decider and the original backtracking searcher must return the
  // same yes/no on every pair, and every witness must be exact.
  util::Rng rng(48);
  for (int i = 0; i < 30; ++i) {
    Graph g0 = erdosRenyi(7, 0.5, rng);
    Graph g1 =
        (i % 2 == 0) ? randomIsomorphicCopy(g0, rng) : erdosRenyi(7, 0.5, rng);
    auto ir = findIsomorphism(g0, g1);
    auto oracle = findIsomorphismBacktracking(g0, g1);
    EXPECT_EQ(ir.has_value(), oracle.has_value()) << "iteration " << i;
    if (ir) {
      EXPECT_EQ(g0.relabeled(*ir), g1);
    }
    if (oracle) {
      EXPECT_EQ(g0.relabeled(*oracle), g1);
    }
  }
}

TEST(Isomorphism, RelabeledCopiesAreIsomorphic) {
  util::Rng rng(45);
  for (int i = 0; i < 10; ++i) {
    Graph g = randomConnected(10, 8, rng);
    Permutation perm = randomPermutation(10, rng);
    Graph h = g.relabeled(perm);
    auto iso = findIsomorphism(g, h);
    ASSERT_TRUE(iso.has_value());
    // Verify the witness maps edges to edges.
    EXPECT_EQ(g.relabeled(*iso), h);
  }
}

TEST(Isomorphism, DetectsNonIsomorphicPairs) {
  util::Rng rng(46);
  // Different edge counts: trivially non-isomorphic.
  EXPECT_FALSE(areIsomorphic(pathGraph(6), cycleGraph(6)));
  // Same degree sequence, different structure: C6 vs two triangles.
  Graph twoTriangles = Graph::fromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_FALSE(areIsomorphic(cycleGraph(6), twoTriangles));
  // Random rigid graphs are non-isomorphic to their complements' relabels
  // essentially always; spot-check with independent rigid graphs.
  Graph f1 = randomRigidConnected(7, rng);
  Graph f2 = randomRigidConnected(7, rng);
  if (f1.numEdges() != f2.numEdges()) {
    EXPECT_FALSE(areIsomorphic(f1, f2));
  }
}

TEST(Isomorphism, SizeMismatchFails) {
  EXPECT_FALSE(areIsomorphic(pathGraph(4), pathGraph(5)));
}

TEST(Isomorphism, RegularGraphsNeedBacktracking) {
  // Two 3-regular graphs on 6 vertices: K_3,3 and the prism (C3 x K2) are
  // NOT isomorphic (K_3,3 is triangle-free); colors alone cannot tell.
  Graph k33 = Graph::fromEdges(6, {{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5},
                                   {2, 3}, {2, 4}, {2, 5}});
  Graph prism = Graph::fromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3},
                                     {0, 3}, {1, 4}, {2, 5}});
  EXPECT_FALSE(areIsomorphic(k33, prism));
  EXPECT_TRUE(areIsomorphic(k33, k33.relabeled({3, 1, 5, 0, 2, 4})));
}

// Parameterized sweep: relabeled copies of many random graphs at multiple
// sizes must always be recognized; the witness must be exact.
class IsomorphismSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IsomorphismSweep, RoundTrip) {
  util::Rng rng(100 + GetParam());
  Graph g = randomConnected(GetParam(), GetParam() / 2, rng);
  Graph h = randomIsomorphicCopy(g, rng);
  auto iso = findIsomorphism(g, h);
  ASSERT_TRUE(iso.has_value());
  EXPECT_EQ(g.relabeled(*iso), h);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IsomorphismSweep,
                         ::testing::Values(4, 6, 8, 12, 16, 24, 32, 48));

}  // namespace
}  // namespace dip::graph
