// Randomized differential suite: the batch hash engine against the scalar
// LinearHashEvaluator, the same oracle pattern as biguint_diff_test. Every
// batch entry point runs seeded random (seed, input) matrices through both
// engines and demands bit-identical results, across all three backends:
//   - kU64: random moduli anywhere below 2^64 (k = 1 limb);
//   - kMontgomery: random ODD wider moduli at k = 2, 3, 4, 8 and 16 limbs —
//     the fixed-k CIOS kernel widths (the context does not require
//     primality, so no prime search in the hot test loop);
//   - kPlain: random EVEN wider moduli (the placeholder-field backend).
// The many-seeds path additionally sweeps every lane remainder around
// kLanes so partial final blocks are exercised, not just full ones.
//
// The single-call forms (hashMatrixEntry, hashMatrixRow) and the
// entry-series accumulator — the shapes behind sym_input's piecesFor
// fingerprints and the GNI eps-API consistency series — get their own
// 10^4-case sweep, and the u64 backend's AVX2 residue lanes are pinned
// against the portable kernel at every gather-tail remainder.
//
// CI runs this suite under ASan/UBSan (full ctest) and TSan (the sanitizer
// preset's regex includes batch_eval).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "hash/batch_eval.hpp"
#include "hash/linear_hash.hpp"
#include "util/biguint.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace dip::hash {
namespace {

// Total (seed, input) matrices per differential test; the Montgomery sweep
// splits its budget evenly across the five kernel widths.
constexpr int kMatrixCases = 10000;

util::DynBitset randomBits(util::Rng& rng, std::size_t size) {
  util::DynBitset bits(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (rng.nextU64() & 1) bits.set(i);
  }
  return bits;
}

// A modulus of exactly `limbs` 64-bit limbs (top limb nonzero) with the
// requested parity — wide enough to force the Montgomery/plain backends.
util::BigUInt randomWideModulus(util::Rng& rng, std::size_t limbs, bool odd) {
  std::vector<std::uint64_t> words(limbs);
  for (auto& word : words) word = rng.nextU64();
  words.back() |= std::uint64_t{1} << 63;
  if (odd) {
    words.front() |= 1;
  } else {
    words.front() &= ~std::uint64_t{1};
  }
  return util::BigUInt::fromWords(words);
}

util::BigUInt randomBelow(util::Rng& rng, const util::BigUInt& bound,
                          std::size_t limbs) {
  for (;;) {
    std::vector<std::uint64_t> words(limbs);
    for (auto& word : words) word = rng.nextU64();
    util::BigUInt value = util::BigUInt::fromWords(words);
    if (value < bound) return value;
  }
}

// One differential case: random n x n matrix slice (row indices + bitset
// rows), hashed by the batch engine and re-hashed row-by-row by the scalar
// evaluator; also checks the accumulate shape against the scalar fold.
void runMatrixCase(util::Rng& rng, const util::BigUInt& p, const util::BigUInt& a,
                   BatchLinearHashEvaluator& batch, LinearHashEvaluator& scalar) {
  const std::uint64_t n = 1 + rng.nextBelow(17);
  batch.rebind(p, n * n, a);
  scalar.rebind(p, n * n, a);

  const std::size_t rowCount = 1 + rng.nextBelow(n);
  std::vector<std::uint64_t> rowIndices;
  std::vector<util::DynBitset> rows;
  rowIndices.reserve(rowCount);
  rows.reserve(rowCount);
  for (std::size_t i = 0; i < rowCount; ++i) {
    rowIndices.push_back(rng.nextBelow(n));
    rows.push_back(randomBits(rng, n));
  }

  std::vector<util::BigUInt> got;
  batch.hashMatrixRows(rowIndices, rows, n, got);
  ASSERT_EQ(got.size(), rowCount);
  util::BigUInt sum;
  for (std::size_t i = 0; i < rowCount; ++i) {
    util::BigUInt want = scalar.hashMatrixRow(rowIndices[i], rows[i], n);
    ASSERT_EQ(got[i].toHex(), want.toHex())
        << "p=" << p.toHex() << " a=" << a.toHex() << " n=" << n << " row " << i;
    sum = util::addMod(sum, want, p);
  }
  EXPECT_EQ(batch.accumulateMatrixRows(rowIndices, rows, n).toHex(), sum.toHex());
}

TEST(batch_eval, U64MatrixRowsMatchScalar) {
  util::Rng rng(0xBA7C4001ull);
  BatchLinearHashEvaluator batch;
  LinearHashEvaluator scalar;
  for (int i = 0; i < kMatrixCases; ++i) {
    // Random width in [2, 64] bits so small fields and near-2^64 moduli both
    // appear; the add-with-conditional-subtract trick must hold everywhere.
    const std::size_t bits = 2 + rng.nextBelow(63);
    std::uint64_t p = rng.nextU64() >> (64 - bits);
    if (p < 2) p = 2;
    const util::BigUInt pBig{p};
    const util::BigUInt a{rng.nextU64() % p};
    runMatrixCase(rng, pBig, a, batch, scalar);
  }
}

TEST(batch_eval, MontgomeryMatrixRowsMatchScalarAllKernelWidths) {
  util::Rng rng(0xBA7C4002ull);
  BatchLinearHashEvaluator batch;
  LinearHashEvaluator scalar;
  const std::size_t kernelWidths[] = {2, 3, 4, 8, 16};
  // A handful of moduli per width (context construction is the expensive
  // part), many (seed, input) matrices per modulus.
  const int modsPerWidth = 20;
  const int casesPerMod = kMatrixCases / (5 * modsPerWidth);
  for (std::size_t k : kernelWidths) {
    for (int m = 0; m < modsPerWidth; ++m) {
      const util::BigUInt p = randomWideModulus(rng, k, /*odd=*/true);
      for (int c = 0; c < casesPerMod; ++c) {
        const util::BigUInt a = randomBelow(rng, p, k);
        runMatrixCase(rng, p, a, batch, scalar);
      }
    }
  }
}

TEST(batch_eval, PlainBackendMatchesScalar) {
  util::Rng rng(0xBA7C4003ull);
  BatchLinearHashEvaluator batch;
  LinearHashEvaluator scalar;
  for (int i = 0; i < 500; ++i) {
    const std::size_t k = 2 + rng.nextBelow(3);
    const util::BigUInt p = randomWideModulus(rng, k, /*odd=*/false);
    const util::BigUInt a = randomBelow(rng, p, k);
    runMatrixCase(rng, p, a, batch, scalar);
  }
}

// One differential case for the single-call forms and the entry-series
// accumulator under a pinned index: random entry coordinates against the
// scalar evaluator, plus the scalar fold for accumulateMatrixEntries.
void runEntryCase(util::Rng& rng, const util::BigUInt& p, const util::BigUInt& a,
                  BatchLinearHashEvaluator& batch, LinearHashEvaluator& scalar) {
  const std::uint64_t n = 1 + rng.nextBelow(17);
  batch.rebind(p, n * n, a);
  scalar.rebind(p, n * n, a);

  const std::size_t count = 1 + rng.nextBelow(2 * n);
  std::vector<std::uint64_t> rowIndices(count);
  std::vector<std::uint64_t> colIndices(count);
  util::BigUInt sum;
  for (std::size_t i = 0; i < count; ++i) {
    rowIndices[i] = rng.nextBelow(n);
    colIndices[i] = rng.nextBelow(n);
    sum = util::addMod(sum, scalar.hashMatrixEntry(rowIndices[i], colIndices[i], 1, n),
                       p);
  }
  EXPECT_EQ(batch.accumulateMatrixEntries(rowIndices, colIndices, n).toHex(),
            sum.toHex())
      << "p=" << p.toHex() << " a=" << a.toHex() << " n=" << n;

  const std::uint64_t coefficient = 1 + rng.nextBelow(7);
  ASSERT_EQ(
      batch.hashMatrixEntry(rowIndices[0], colIndices[0], coefficient, n).toHex(),
      scalar.hashMatrixEntry(rowIndices[0], colIndices[0], coefficient, n).toHex());

  const util::DynBitset row = randomBits(rng, n);
  ASSERT_EQ(batch.hashMatrixRow(rowIndices[0], row, n).toHex(),
            scalar.hashMatrixRow(rowIndices[0], row, n).toHex());
}

TEST(batch_eval, U64EntrySeriesMatchScalar) {
  util::Rng rng(0xBA7C4009ull);
  BatchLinearHashEvaluator batch;
  LinearHashEvaluator scalar;
  for (int i = 0; i < kMatrixCases; ++i) {
    const std::size_t bits = 2 + rng.nextBelow(63);
    std::uint64_t p = rng.nextU64() >> (64 - bits);
    if (p < 2) p = 2;
    const util::BigUInt pBig{p};
    const util::BigUInt a{rng.nextU64() % p};
    runEntryCase(rng, pBig, a, batch, scalar);
  }
}

TEST(batch_eval, WideEntrySeriesMatchScalar) {
  util::Rng rng(0xBA7C400Aull);
  BatchLinearHashEvaluator batch;
  LinearHashEvaluator scalar;
  for (int i = 0; i < 400; ++i) {
    const std::size_t k = 2 + rng.nextBelow(3);
    // Alternate odd (Montgomery) and even (plain) wide moduli.
    const util::BigUInt p = randomWideModulus(rng, k, /*odd=*/(i % 2) == 0);
    const util::BigUInt a = randomBelow(rng, p, k);
    runEntryCase(rng, p, a, batch, scalar);
  }
}

TEST(batch_eval, Avx2LanesMatchPortableKernel) {
  // The same rows through the u64 backend with AVX2 residue lanes on and
  // off: canonical-residue modular addition is associative, so the four-lane
  // fold must land on the portable kernel's value bit-for-bit. Rows at and
  // above kAvx2MinBits engage the lanes; dense rows on widths 16..47 sweep
  // every gather-tail remainder (set-bit count mod 8). On machines without
  // AVX2 both passes run the portable kernel and the test still holds.
  const bool saved = avx2Enabled();
  util::Rng rng(0xBA7C400Bull);
  BatchLinearHashEvaluator batch;
  for (int i = 0; i < 2500; ++i) {
    const std::size_t bits = 2 + rng.nextBelow(63);
    std::uint64_t p = rng.nextU64() >> (64 - bits);
    if (p < 2) p = 2;
    const util::BigUInt pBig{p};
    const util::BigUInt a{rng.nextU64() % p};
    const std::uint64_t n = 16 + rng.nextBelow(32);
    batch.rebind(pBig, n * n, a);

    std::vector<std::uint64_t> rowIndices;
    std::vector<util::DynBitset> rows;
    const std::size_t rowCount = 1 + rng.nextBelow(4);
    for (std::size_t r = 0; r < rowCount; ++r) {
      rowIndices.push_back(rng.nextBelow(n));
      util::DynBitset row(n);
      if (r == 0) {
        for (std::size_t w = 0; w < n; ++w) row.set(w);  // Dense: count == n.
      } else {
        row = randomBits(rng, n);
      }
      rows.push_back(std::move(row));
    }

    std::vector<util::BigUInt> gotAvx2;
    std::vector<util::BigUInt> gotPortable;
    setAvx2Enabled(true);
    batch.hashMatrixRows(rowIndices, rows, n, gotAvx2);
    const util::BigUInt accAvx2 = batch.accumulateMatrixRows(rowIndices, rows, n);
    setAvx2Enabled(false);
    batch.hashMatrixRows(rowIndices, rows, n, gotPortable);
    const util::BigUInt accPortable = batch.accumulateMatrixRows(rowIndices, rows, n);

    ASSERT_EQ(gotAvx2.size(), gotPortable.size());
    for (std::size_t r = 0; r < gotAvx2.size(); ++r) {
      ASSERT_EQ(gotAvx2[r].toHex(), gotPortable[r].toHex())
          << "p=" << p << " n=" << n << " row " << r;
    }
    ASSERT_EQ(accAvx2.toHex(), accPortable.toHex());
  }
  setAvx2Enabled(saved);
}

TEST(batch_eval, Avx2ToggleClampsToCpuSupport) {
  const bool saved = avx2Enabled();
  setAvx2Enabled(false);
  EXPECT_FALSE(avx2Enabled());
  // true is clamped to CPU capability: afterwards the flag either reports
  // support (and the lanes run) or stays false — never an illegal kernel.
  setAvx2Enabled(true);
  setAvx2Enabled(saved);
  EXPECT_EQ(avx2Enabled(), saved);
}

TEST(batch_eval, HashBitsManyMatchesScalar) {
  util::Rng rng(0xBA7C4004ull);
  BatchLinearHashEvaluator batch;
  LinearHashEvaluator scalar;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t p = rng.nextU64();
    if (p < 2) p = 2;
    const std::uint64_t dim = 1 + rng.nextBelow(40);
    const util::BigUInt pBig{p};
    const util::BigUInt a{rng.nextU64() % p};
    batch.rebind(pBig, dim, a);
    scalar.rebind(pBig, dim, a);
    std::vector<util::DynBitset> inputs;
    const std::size_t count = 1 + rng.nextBelow(6);
    for (std::size_t j = 0; j < count; ++j) {
      inputs.push_back(randomBits(rng, 1 + rng.nextBelow(dim)));
    }
    std::vector<util::BigUInt> got;
    batch.hashBitsMany(inputs, got);
    ASSERT_EQ(got.size(), count);
    for (std::size_t j = 0; j < count; ++j) {
      EXPECT_EQ(got[j].toHex(), scalar.hashBits(inputs[j]).toHex());
    }
  }
}

TEST(batch_eval, ManySeedsCoversEveryLaneRemainder) {
  util::Rng rng(0xBA7C4005ull);
  LinearHashEvaluator scalar;
  // Seed counts 1..2*kLanes+1: full lane blocks, the empty-tail boundary,
  // and every partial final block width.
  for (std::size_t seedCount = 1; seedCount <= 2 * BatchLinearHashEvaluator::kLanes + 1;
       ++seedCount) {
    for (int rep = 0; rep < 40; ++rep) {
      std::uint64_t p = rng.nextU64();
      if (p < 2) p = 2;
      const std::uint64_t dim = 1 + rng.nextBelow(40);
      const util::BigUInt pBig{p};
      std::vector<util::BigUInt> seeds;
      for (std::size_t j = 0; j < seedCount; ++j) {
        seeds.push_back(util::BigUInt{rng.nextU64() % p});
      }
      const util::DynBitset input = randomBits(rng, 1 + rng.nextBelow(dim));
      std::vector<util::BigUInt> got;
      BatchLinearHashEvaluator::hashBitsManySeeds(pBig, dim, seeds, input, got);
      ASSERT_EQ(got.size(), seedCount);
      for (std::size_t j = 0; j < seedCount; ++j) {
        scalar.rebind(pBig, dim, seeds[j]);
        EXPECT_EQ(got[j].toHex(), scalar.hashBits(input).toHex())
            << "seedCount=" << seedCount << " lane " << j;
      }
    }
  }
}

TEST(batch_eval, ManySeedsWideFieldFallbackMatchesScalar) {
  util::Rng rng(0xBA7C4006ull);
  LinearHashEvaluator scalar;
  for (int i = 0; i < 200; ++i) {
    const std::size_t k = 2 + rng.nextBelow(3);
    const util::BigUInt p = randomWideModulus(rng, k, /*odd=*/true);
    const std::uint64_t dim = 1 + rng.nextBelow(30);
    const std::size_t seedCount = 1 + rng.nextBelow(11);
    std::vector<util::BigUInt> seeds;
    for (std::size_t j = 0; j < seedCount; ++j) {
      seeds.push_back(randomBelow(rng, p, k));
    }
    const util::DynBitset input = randomBits(rng, 1 + rng.nextBelow(dim));
    std::vector<util::BigUInt> got;
    BatchLinearHashEvaluator::hashBitsManySeeds(p, dim, seeds, input, got);
    ASSERT_EQ(got.size(), seedCount);
    for (std::size_t j = 0; j < seedCount; ++j) {
      scalar.rebind(p, dim, seeds[j]);
      EXPECT_EQ(got[j].toHex(), scalar.hashBits(input).toHex());
    }
  }
}

TEST(batch_eval, RebindAcrossBackendsKeepsValuesRight) {
  // Alternating u64 / Montgomery / plain rebinds on ONE evaluator: stale
  // table state from a previous backend must never leak into the next.
  util::Rng rng(0xBA7C4007ull);
  BatchLinearHashEvaluator batch;
  LinearHashEvaluator scalar;
  for (int i = 0; i < 300; ++i) {
    util::BigUInt p;
    util::BigUInt a;
    switch (i % 3) {
      case 0: {
        std::uint64_t p64 = rng.nextU64();
        if (p64 < 2) p64 = 2;
        p = util::BigUInt{p64};
        a = util::BigUInt{rng.nextU64() % p64};
        break;
      }
      case 1: {
        const std::size_t k = 2 + rng.nextBelow(3);
        p = randomWideModulus(rng, k, /*odd=*/true);
        a = randomBelow(rng, p, k);
        break;
      }
      default: {
        const std::size_t k = 2 + rng.nextBelow(3);
        p = randomWideModulus(rng, k, /*odd=*/false);
        a = randomBelow(rng, p, k);
        break;
      }
    }
    runMatrixCase(rng, p, a, batch, scalar);
  }
}

TEST(batch_eval, ArgumentChecksMatchScalar) {
  BatchLinearHashEvaluator batch;
  const util::BigUInt p{1009};
  batch.rebind(p, 16, util::BigUInt{7});

  std::vector<std::uint64_t> rowIndices{0};
  std::vector<util::DynBitset> rows{util::DynBitset(5)};
  std::vector<util::BigUInt> out;
  // n*n != dimension: same exception as the scalar evaluator.
  EXPECT_THROW(batch.hashMatrixRows(rowIndices, rows, 5, out), std::invalid_argument);

  rows[0] = util::DynBitset(3);  // Row width != n.
  EXPECT_THROW(batch.hashMatrixRows(rowIndices, rows, 4, out), std::out_of_range);

  rows[0] = util::DynBitset(4);
  rowIndices[0] = 4;  // Row index out of range.
  EXPECT_THROW(batch.hashMatrixRows(rowIndices, rows, 4, out), std::out_of_range);

  rowIndices.push_back(0);  // Length mismatch.
  EXPECT_THROW(batch.hashMatrixRows(rowIndices, rows, 4, out), std::invalid_argument);

  EXPECT_THROW(batch.rebind(util::BigUInt{1}, 4, util::BigUInt{0}),
               std::invalid_argument);
}

TEST(batch_eval, ToggleChangesStrategyNotValues) {
  // The toggle gates call-site strategy, not this engine — but guard the
  // contract anyway: flipping it never perturbs evaluator output.
  const bool saved = batchEnabled();
  util::Rng rng(0xBA7C4008ull);
  BatchLinearHashEvaluator batch;
  LinearHashEvaluator scalar;
  setBatchEnabled(false);
  runMatrixCase(rng, util::BigUInt{100003}, util::BigUInt{12345}, batch, scalar);
  setBatchEnabled(true);
  runMatrixCase(rng, util::BigUInt{100003}, util::BigUInt{54321}, batch, scalar);
  setBatchEnabled(saved);
}

}  // namespace
}  // namespace dip::hash
