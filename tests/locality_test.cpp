// Locality audit: a node's decision must depend ONLY on its closed
// neighborhood's messages and its own randomness (Definition 1). These
// tests mutate every field of NON-neighbors and assert decisions are
// unchanged — enforcing the model-fidelity promise of DESIGN.md 4.2.
#include <gtest/gtest.h>

#include "core/dsym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using util::Rng;

// A vertex outside v's closed neighborhood, if any.
std::optional<graph::Vertex> farVertexFrom(const graph::Graph& g, graph::Vertex v) {
  util::DynBitset closed = g.closedRow(v);
  for (graph::Vertex w = 0; w < g.numVertices(); ++w) {
    if (!closed.test(w)) return w;
  }
  return std::nullopt;
}

TEST(Locality, SymDmamDecisionIgnoresNonNeighbors) {
  Rng rng(341);
  const std::size_t n = 12;
  Rng setup(342);
  SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  graph::Graph g = graph::randomSymmetricConnected(n, rng);
  HonestSymDmamProver prover(protocol.family());

  SymDmamFirstMessage first = prover.firstMessage(g);
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < n; ++v) {
    challenges.push_back(protocol.family().randomIndex(rng));
  }
  SymDmamSecondMessage second = prover.secondMessage(g, first, challenges);

  for (graph::Vertex v = 0; v < n; ++v) {
    auto far = farVertexFrom(g, v);
    if (!far) continue;
    bool original = protocol.nodeDecision(g, v, first, challenges[v], second);

    // Mutate EVERY field of the far vertex, one at a time.
    for (int field = 0; field < 7; ++field) {
      SymDmamFirstMessage mutatedFirst = first;
      SymDmamSecondMessage mutatedSecond = second;
      switch (field) {
        case 0: mutatedFirst.rootPerNode[*far] = (first.rootPerNode[*far] + 1) % n; break;
        case 1: mutatedFirst.rho[*far] = (first.rho[*far] + 1) % n; break;
        case 2: mutatedFirst.parent[*far] = (first.parent[*far] + 1) % n; break;
        case 3: mutatedFirst.dist[*far] += 17; break;
        case 4:
          mutatedSecond.indexPerNode[*far] =
              util::addMod(second.indexPerNode[*far], util::BigUInt{1},
                           protocol.family().prime());
          break;
        case 5:
          mutatedSecond.a[*far] = util::addMod(second.a[*far], util::BigUInt{1},
                                               protocol.family().prime());
          break;
        case 6:
          mutatedSecond.b[*far] = util::addMod(second.b[*far], util::BigUInt{1},
                                               protocol.family().prime());
          break;
      }
      EXPECT_EQ(protocol.nodeDecision(g, v, mutatedFirst, challenges[v], mutatedSecond),
                original)
          << "node " << v << " reacted to non-neighbor " << *far << " field " << field;
    }
  }
}

TEST(Locality, DSymDecisionIgnoresNonNeighbors) {
  Rng rng(343);
  const std::size_t side = 5;
  graph::DSymLayout layout = graph::dsymLayout(side, 1);
  graph::Graph f = graph::randomConnected(side, 2, rng);
  graph::Graph g = graph::dsymInstance(f, 1);

  Rng setup(344);
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{layout.numVertices}, 3);
  DSymDamProtocol protocol(
      layout, hash::LinearHashFamily(
                  util::findPrimeInRange(util::BigUInt{10} * n3,
                                         util::BigUInt{100} * n3, setup),
                  static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices));
  HonestDSymProver prover(layout, protocol.family());

  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < layout.numVertices; ++v) {
    challenges.push_back(protocol.family().randomIndex(rng));
  }
  DSymMessage msg = prover.respond(g, challenges);

  for (graph::Vertex v = 0; v < layout.numVertices; ++v) {
    auto far = farVertexFrom(g, v);
    if (!far) continue;
    bool original = protocol.nodeDecision(g, v, msg, challenges[v]);
    DSymMessage mutated = msg;
    mutated.a[*far] = util::addMod(msg.a[*far], util::BigUInt{1}, protocol.family().prime());
    mutated.dist[*far] += 3;
    mutated.parent[*far] = (msg.parent[*far] + 1) % layout.numVertices;
    EXPECT_EQ(protocol.nodeDecision(g, v, mutated, challenges[v]), original) << v;
  }
}

TEST(Locality, NeighborsDoReactToMutations) {
  // Sanity counterpart: some NEIGHBOR of a mutated node must notice (the
  // locality test would be vacuous if nobody ever reacted).
  Rng rng(345);
  const std::size_t n = 10;
  Rng setup(346);
  SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  graph::Graph g = graph::randomSymmetricConnected(n, rng);
  HonestSymDmamProver prover(protocol.family());
  SymDmamFirstMessage first = prover.firstMessage(g);
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < n; ++v) {
    challenges.push_back(protocol.family().randomIndex(rng));
  }
  SymDmamSecondMessage second = prover.secondMessage(g, first, challenges);

  graph::Vertex victim = 3;
  SymDmamSecondMessage mutated = second;
  mutated.a[victim] =
      util::addMod(second.a[victim], util::BigUInt{1}, protocol.family().prime());
  bool someoneReacted = false;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (protocol.nodeDecision(g, v, first, challenges[v], mutated) !=
        protocol.nodeDecision(g, v, first, challenges[v], second)) {
      someoneReacted = true;
    }
  }
  EXPECT_TRUE(someoneReacted);
}

}  // namespace
}  // namespace dip::core
