// GNI wire-format tests: round trips, verification over decoded messages,
// and agreement between encoded sizes and transcript charges.
#include <gtest/gtest.h>

#include "core/gni_wire.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using util::Rng;

class GniWireTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(301);
    params_ = new GniParams(GniParams::choose(6, rng));
    Rng instRng(302);
    instance_ = new GniInstance(gniYesInstance(6, instRng));
  }
  static void TearDownTestSuite() {
    delete params_;
    delete instance_;
    params_ = nullptr;
    instance_ = nullptr;
  }

  // One honest interaction, shared across tests.
  struct Interaction {
    std::vector<std::vector<GniChallenge>> challenges;
    std::vector<util::BigUInt> checkChallenges;
    GniFirstMessage first;
    GniSecondMessage second;
  };
  Interaction makeInteraction(std::uint64_t seed) {
    Rng rng(seed);
    Interaction interaction;
    interaction.challenges.resize(6);
    for (graph::Vertex v = 0; v < 6; ++v) {
      for (std::size_t j = 0; j < params_->repetitions; ++j) {
        GniChallenge challenge;
        challenge.seed = params_->gsHash.randomSeed(rng);
        challenge.y = rng.nextBigBits(params_->ell);
        interaction.challenges[v].push_back(challenge);
      }
      interaction.checkChallenges.push_back(params_->checkFamily.randomIndex(rng));
    }
    HonestGniProver prover(*params_);
    interaction.first = prover.firstMessage(*instance_, interaction.challenges);
    interaction.second = prover.secondMessage(*instance_, interaction.challenges,
                                              interaction.first,
                                              interaction.checkChallenges);
    return interaction;
  }

  static GniParams* params_;
  static GniInstance* instance_;
};
GniParams* GniWireTest::params_ = nullptr;
GniInstance* GniWireTest::instance_ = nullptr;

TEST_F(GniWireTest, ChallengesRoundTripAtChargedSize) {
  Interaction interaction = makeInteraction(303);
  util::BitWriter encoded =
      wire::encodeGniChallenges(interaction.challenges[2], *params_);
  // A1 charges k * (3 fieldBits + ell) per node.
  EXPECT_EQ(encoded.bitCount(),
            params_->repetitions * (params_->gsHash.seedBits() + params_->ell));
  auto decoded = wire::decodeGniChallenges(encoded, *params_);
  ASSERT_EQ(decoded.size(), interaction.challenges[2].size());
  for (std::size_t j = 0; j < decoded.size(); ++j) {
    EXPECT_TRUE(decoded[j] == interaction.challenges[2][j]);
  }
}

TEST_F(GniWireTest, FirstMessageRoundTrip) {
  Interaction interaction = makeInteraction(304);
  wire::EncodedRound round = wire::encodeGniFirst(interaction.first, *instance_, *params_);
  GniFirstMessage decoded = wire::decodeGniFirst(round, *instance_, *params_);
  for (graph::Vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(decoded.perNode[v].root, interaction.first.perNode[v].root);
    EXPECT_EQ(decoded.perNode[v].parent, interaction.first.perNode[v].parent);
    EXPECT_EQ(decoded.perNode[v].dist, interaction.first.perNode[v].dist);
    EXPECT_EQ(decoded.perNode[v].claimed, interaction.first.perNode[v].claimed);
    EXPECT_EQ(decoded.perNode[v].b, interaction.first.perNode[v].b);
    EXPECT_EQ(decoded.perNode[v].s, interaction.first.perNode[v].s);
    EXPECT_EQ(decoded.perNode[v].echo, interaction.first.perNode[v].echo);
    // Claims only compared for claimed b=1 reps (others are absent on the
    // wire by design).
    for (std::size_t j = 0; j < params_->repetitions; ++j) {
      if (interaction.first.perNode[0].claimed[j] &&
          interaction.first.perNode[0].b[j] == 1) {
        EXPECT_EQ(decoded.perNode[v].claims[j], interaction.first.perNode[v].claims[j]);
      }
    }
  }
}

TEST_F(GniWireTest, SecondMessageRoundTrip) {
  Interaction interaction = makeInteraction(305);
  wire::EncodedRound round = wire::encodeGniSecond(interaction.second, interaction.first,
                                                   *instance_, *params_);
  GniSecondMessage decoded =
      wire::decodeGniSecond(round, interaction.first, *instance_, *params_);
  for (graph::Vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(decoded.perNode[v].checkSeed, interaction.second.perNode[v].checkSeed);
    for (std::size_t j = 0; j < params_->repetitions; ++j) {
      if (!interaction.first.perNode[0].claimed[j]) continue;
      EXPECT_EQ(decoded.perNode[v].h[j], interaction.second.perNode[v].h[j]);
      EXPECT_EQ(decoded.perNode[v].permI[j], interaction.second.perNode[v].permI[j]);
      EXPECT_EQ(decoded.perNode[v].permS[j], interaction.second.perNode[v].permS[j]);
    }
  }
}

TEST_F(GniWireTest, DecodedMessagesStillVerify) {
  Interaction interaction = makeInteraction(306);
  GniFirstMessage first = wire::decodeGniFirst(
      wire::encodeGniFirst(interaction.first, *instance_, *params_), *instance_, *params_);
  GniSecondMessage second = wire::decodeGniSecond(
      wire::encodeGniSecond(interaction.second, first, *instance_, *params_), first,
      *instance_, *params_);
  GniAmamProtocol protocol(*params_);
  // Whether the honest run clears the threshold depends on the challenge
  // draw; what must hold is that decode changes NOTHING about any node's
  // decision.
  for (graph::Vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(protocol.nodeDecision(*instance_, v, first, second,
                                    interaction.challenges[v],
                                    interaction.checkChallenges[v]),
              protocol.nodeDecision(*instance_, v, interaction.first, interaction.second,
                                    interaction.challenges[v],
                                    interaction.checkChallenges[v]));
  }
}

TEST_F(GniWireTest, InconsistentBroadcastRefused) {
  Interaction interaction = makeInteraction(307);
  interaction.first.perNode[3].claimed[0] ^= 1;
  EXPECT_THROW(wire::encodeGniFirst(interaction.first, *instance_, *params_),
               std::invalid_argument);
}

}  // namespace
}  // namespace dip::core
