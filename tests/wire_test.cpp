// Wire-format tests: every protocol message round-trips through its bit
// encoding, and the encoded sizes equal exactly what the transcript charges
// — so the cost numbers in every experiment are backed by real encodings.
#include <gtest/gtest.h>

#include "core/wire.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using util::Rng;

class WireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng setup(191);
    n_ = 12;
    family_ = hash::makeProtocol1Family(n_, setup);
    Rng graphRng(192);
    g_ = graph::randomSymmetricConnected(n_, graphRng);
  }
  std::size_t n_ = 0;
  hash::LinearHashFamily family_;
  graph::Graph g_{1};
};

TEST_F(WireTest, SymDmamFirstRoundTrip) {
  HonestSymDmamProver prover(family_);
  SymDmamFirstMessage original = prover.firstMessage(g_);
  wire::EncodedRound encoded = wire::encodeSymDmamFirst(original, n_);
  SymDmamFirstMessage decoded = wire::decodeSymDmamFirst(encoded, n_);

  EXPECT_EQ(decoded.rootPerNode, original.rootPerNode);
  EXPECT_EQ(decoded.rho, original.rho);
  EXPECT_EQ(decoded.parent, original.parent);
  EXPECT_EQ(decoded.dist, original.dist);

  // Bit accounting: broadcast = root id; unicast = rho, parent, dist.
  const unsigned idBits = util::bitsFor(n_);
  EXPECT_EQ(encoded.broadcastBits(), idBits);
  for (graph::Vertex v = 0; v < n_; ++v) {
    EXPECT_EQ(encoded.unicastBits(v), 3u * idBits);
  }
}

TEST_F(WireTest, SymDmamSecondRoundTripAndChargedBitsMatch) {
  Rng rng(193);
  SymDmamProtocol protocol(family_);
  HonestSymDmamProver prover(family_);
  SymDmamFirstMessage first = prover.firstMessage(g_);
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < n_; ++v) challenges.push_back(family_.randomIndex(rng));
  SymDmamSecondMessage original = prover.secondMessage(g_, first, challenges);

  wire::EncodedRound encoded = wire::encodeSymDmamSecond(original, n_, family_);
  SymDmamSecondMessage decoded = wire::decodeSymDmamSecond(encoded, n_, family_);
  EXPECT_EQ(decoded.indexPerNode[0], original.indexPerNode[0]);
  EXPECT_EQ(decoded.a, original.a);
  EXPECT_EQ(decoded.b, original.b);

  // The transcript of a real run charges exactly the encoded sizes.
  RunResult result = protocol.run(g_, prover, rng);
  ASSERT_TRUE(result.accepted);
  wire::EncodedRound first1 = wire::encodeSymDmamFirst(first, n_);
  for (graph::Vertex v = 0; v < n_; ++v) {
    std::size_t expected = first1.bitsForNode(v) + encoded.bitsForNode(v);
    EXPECT_EQ(result.transcript.perNode()[v].bitsFromProver, expected) << "node " << v;
    EXPECT_EQ(result.transcript.perNode()[v].bitsToProver, family_.seedBits());
  }
}

TEST_F(WireTest, SymDamRoundTripAndChargedBitsMatch) {
  Rng rng(194);
  Rng setup(195);
  hash::LinearHashFamily family2 = hash::makeProtocol2Family(8, setup);
  graph::Graph g = graph::randomSymmetricConnected(8, rng);
  SymDamProtocol protocol(family2);
  HonestSymDamProver prover(family2);

  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < 8; ++v) challenges.push_back(family2.randomIndex(rng));
  SymDamMessage original = prover.respond(g, challenges);
  wire::EncodedRound encoded = wire::encodeSymDam(original, 8, family2);
  SymDamMessage decoded = wire::decodeSymDam(encoded, 8, family2);
  EXPECT_EQ(decoded.rhoPerNode[3], original.rhoPerNode[3]);
  EXPECT_EQ(decoded.rootPerNode[0], original.rootPerNode[0]);
  EXPECT_EQ(decoded.a, original.a);
  EXPECT_EQ(decoded.b, original.b);
  EXPECT_EQ(decoded.parent, original.parent);

  RunResult result = protocol.run(g, prover, rng);
  ASSERT_TRUE(result.accepted);
  for (graph::Vertex v = 0; v < 8; ++v) {
    EXPECT_EQ(result.transcript.perNode()[v].bitsFromProver, encoded.bitsForNode(v));
  }
}

TEST_F(WireTest, DSymRoundTripAndChargedBitsMatch) {
  Rng rng(196);
  const std::size_t side = 5;
  graph::DSymLayout layout = graph::dsymLayout(side, 1);
  graph::Graph f = graph::randomConnected(side, 2, rng);
  graph::Graph g = graph::dsymInstance(f, 1);

  Rng setup(197);
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{layout.numVertices}, 3);
  hash::LinearHashFamily family(
      util::findPrimeInRange(util::BigUInt{10} * n3, util::BigUInt{100} * n3, setup),
      static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices);
  DSymDamProtocol protocol(layout, family);
  HonestDSymProver prover(layout, family);

  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < layout.numVertices; ++v) {
    challenges.push_back(family.randomIndex(rng));
  }
  DSymMessage original = prover.respond(g, challenges);
  wire::EncodedRound encoded = wire::encodeDSym(original, layout.numVertices, family);
  DSymMessage decoded = wire::decodeDSym(encoded, layout.numVertices, family);
  EXPECT_EQ(decoded.a, original.a);
  EXPECT_EQ(decoded.b, original.b);
  EXPECT_EQ(decoded.dist, original.dist);

  RunResult result = protocol.run(g, prover, rng);
  ASSERT_TRUE(result.accepted);
  for (graph::Vertex v = 0; v < layout.numVertices; ++v) {
    EXPECT_EQ(result.transcript.perNode()[v].bitsFromProver, encoded.bitsForNode(v));
  }
}

TEST_F(WireTest, ChallengeRoundTrip) {
  Rng rng(198);
  for (int i = 0; i < 20; ++i) {
    util::BigUInt index = family_.randomIndex(rng);
    util::BitWriter encoded = wire::encodeChallenge(index, family_);
    EXPECT_EQ(encoded.bitCount(), family_.seedBits());
    EXPECT_EQ(wire::decodeChallenge(encoded, family_), index);
  }
}

TEST_F(WireTest, InconsistentBroadcastRefused) {
  HonestSymDmamProver prover(family_);
  SymDmamFirstMessage message = prover.firstMessage(g_);
  message.rootPerNode[2] = (message.rootPerNode[2] + 1) % static_cast<graph::Vertex>(n_);
  EXPECT_THROW(wire::encodeSymDmamFirst(message, n_), std::invalid_argument);
}

TEST_F(WireTest, DecodedMessagesStillVerify) {
  // End to end: run the verification over DECODED messages; the protocol
  // must accept exactly as with the in-memory originals.
  Rng rng(199);
  SymDmamProtocol protocol(family_);
  HonestSymDmamProver prover(family_);
  SymDmamFirstMessage first =
      wire::decodeSymDmamFirst(wire::encodeSymDmamFirst(prover.firstMessage(g_), n_), n_);
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < n_; ++v) challenges.push_back(family_.randomIndex(rng));
  SymDmamSecondMessage second = wire::decodeSymDmamSecond(
      wire::encodeSymDmamSecond(prover.secondMessage(g_, first, challenges), n_, family_),
      n_, family_);
  for (graph::Vertex v = 0; v < n_; ++v) {
    EXPECT_TRUE(protocol.nodeDecision(g_, v, first, challenges[v], second));
  }
}

}  // namespace
}  // namespace dip::core
