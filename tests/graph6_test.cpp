// graph6 interchange-format tests: known vectors from the nauty
// documentation plus randomized round trips.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph6.hpp"
#include "util/rng.hpp"

namespace dip::graph {
namespace {

TEST(Graph6, KnownVectors) {
  // K3 is the canonical formats-guide example: "Bw".
  EXPECT_EQ(toGraph6(completeGraph(3)), "Bw");
  Graph k3 = fromGraph6("Bw");
  EXPECT_EQ(k3.numVertices(), 3u);
  EXPECT_EQ(k3.numEdges(), 3u);

  // Path 0-1-2: bits (0,1)=1, (0,2)=0, (1,2)=1 -> 101000 -> 'g'.
  EXPECT_EQ(toGraph6(pathGraph(3)), "Bg");

  // Empty and singleton graphs.
  EXPECT_EQ(toGraph6(Graph(1)), "@");  // 1 + 63 = '@', no edge bytes.
  EXPECT_EQ(fromGraph6("@").numVertices(), 1u);
  EXPECT_EQ(toGraph6(Graph(5)), "D??");  // 10 zero bits -> two '?' groups.
}

TEST(Graph6, RoundTripRandomGraphs) {
  util::Rng rng(321);
  for (int trial = 0; trial < 40; ++trial) {
    std::size_t n = 2 + rng.nextBelow(30);
    Graph g = erdosRenyi(n, 0.4, rng);
    Graph back = fromGraph6(toGraph6(g));
    EXPECT_EQ(back, g) << "n=" << n;
  }
}

TEST(Graph6, RoundTripStructuredFamilies) {
  for (const Graph& g : {completeGraph(10), cycleGraph(13), starGraph(20),
                         gridGraph(4, 5), pathGraph(62)}) {
    EXPECT_EQ(fromGraph6(toGraph6(g)), g);
  }
}

TEST(Graph6, RejectsMalformedInput) {
  EXPECT_THROW(fromGraph6(""), std::invalid_argument);
  EXPECT_THROW(fromGraph6("Bw extra"), std::invalid_argument);
  EXPECT_THROW(fromGraph6("B"), std::invalid_argument);  // Missing edge bytes.
  EXPECT_THROW(toGraph6(Graph(63)), std::invalid_argument);
  std::string badByte = "B";
  badByte.push_back(static_cast<char>(62));  // Below the printable range.
  EXPECT_THROW(fromGraph6(badByte), std::invalid_argument);
}

}  // namespace
}  // namespace dip::graph
