// Tests for the input-graph Symmetry protocol (extension): Protocol 1's
// machinery when the graph under test arrives as node inputs and its edges
// are not communication links.
#include <gtest/gtest.h>

#include <memory>

#include "core/sym_input.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "hash/linear_hash.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using util::Rng;

SymInputInstance makeInstance(std::size_t n, bool symmetricInput, Rng& rng) {
  SymInputInstance instance{graph::randomConnected(n, n / 2, rng),
                            symmetricInput ? graph::randomSymmetricConnected(n, rng)
                                           : graph::randomRigidConnected(n, rng)};
  return instance;
}

TEST(SymInput, CompletenessOnSymmetricInputs) {
  Rng rng(231);
  for (std::size_t n : {6u, 10u, 16u}) {
    Rng setup(300 + n);
    SymInputProtocol protocol(hash::makeProtocol1Family(n, setup));
    SymInputInstance instance = makeInstance(n, /*symmetricInput=*/true, rng);
    HonestSymInputProver prover(protocol.family());
    for (int trial = 0; trial < 10; ++trial) {
      EXPECT_TRUE(protocol.run(instance, prover, rng).accepted) << "n=" << n;
    }
  }
}

TEST(SymInput, InputMayBeDisconnected) {
  // The input graph never carries messages, so it may even be disconnected.
  Rng rng(232);
  const std::size_t n = 8;
  Rng setup(233);
  SymInputProtocol protocol(hash::makeProtocol1Family(n, setup));
  graph::Graph input(n);  // Two disjoint squares: plainly symmetric.
  for (graph::Vertex v = 0; v < 4; ++v) {
    input.addEdge(v, (v + 1) % 4);
    input.addEdge(4 + v, 4 + (v + 1) % 4);
  }
  SymInputInstance instance{graph::randomConnected(n, 4, rng), input};
  HonestSymInputProver prover(protocol.family());
  EXPECT_TRUE(protocol.run(instance, prover, rng).accepted);
}

TEST(SymInput, HonestProverRefusesRigidInput) {
  Rng rng(234);
  Rng setup(235);
  SymInputProtocol protocol(hash::makeProtocol1Family(8, setup));
  SymInputInstance instance = makeInstance(8, /*symmetricInput=*/false, rng);
  HonestSymInputProver prover(protocol.family());
  EXPECT_THROW(protocol.run(instance, prover, rng), std::invalid_argument);
}

TEST(SymInput, SoundAgainstFakeRho) {
  Rng rng(236);
  const std::size_t n = 8;
  Rng setup(237);
  SymInputProtocol protocol(hash::makeProtocol1Family(n, setup));
  SymInputInstance instance = makeInstance(n, /*symmetricInput=*/false, rng);

  int seed = 0;
  AcceptanceStats stats = protocol.estimateAcceptance(
      instance,
      [&] {
        return std::make_unique<CheatingSymInputProver>(
            protocol.family(), CheatingSymInputProver::Strategy::kFakeRhoHonestClaims,
            seed++);
      },
      300, rng);
  EXPECT_LT(stats.rate(), 0.05);
}

TEST(SymInput, ClaimLiarCaughtByConsistencyCheck) {
  // The liar commits a fake rho but borrows a REAL automorphism's images
  // for the claims; without the consistency check the fingerprints could
  // be massaged — with it, rejection.
  Rng rng(238);
  const std::size_t n = 10;
  Rng setup(239);
  SymInputProtocol protocol(hash::makeProtocol1Family(n, setup));
  SymInputInstance instance = makeInstance(n, /*symmetricInput=*/true, rng);

  int seed = 0;
  AcceptanceStats stats = protocol.estimateAcceptance(
      instance,
      [&] {
        return std::make_unique<CheatingSymInputProver>(
            protocol.family(), CheatingSymInputProver::Strategy::kClaimLiar, seed++);
      },
      200, rng);
  EXPECT_LT(stats.rate(), 0.05);
}

TEST(SymInput, TamperedClaimDetectedLocally) {
  Rng rng(240);
  const std::size_t n = 8;
  Rng setup(241);
  SymInputProtocol protocol(hash::makeProtocol1Family(n, setup));
  SymInputInstance instance = makeInstance(n, /*symmetricInput=*/true, rng);
  HonestSymInputProver prover(protocol.family());

  SymInputFirstMessage first = prover.firstMessage(instance);
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < n; ++v) {
    challenges.push_back(protocol.family().randomIndex(rng));
  }
  SymInputSecondMessage second = prover.secondMessage(instance, first, challenges);

  // Corrupt one non-self claim of node 2 (if it has any input neighbor).
  auto closedH = instance.input.closedNeighbors(2);
  for (std::size_t i = 0; i < closedH.size(); ++i) {
    if (closedH[i] != 2) {
      first.claims[2][i] = (first.claims[2][i] + 1) % static_cast<graph::Vertex>(n);
      break;
    }
  }
  bool anyReject = false;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!protocol.nodeDecision(instance, v, first, challenges[v], second)) {
      anyReject = true;
    }
  }
  EXPECT_TRUE(anyReject);
}

TEST(SymInput, CostBoundedByDegreeTimesLog) {
  // For bounded input degree the cost matches Protocol 1's O(log n); the
  // claims add (Delta + 1) ids.
  std::size_t prev = 0;
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    std::size_t cost = SymInputProtocol::costModel(n, 4).totalPerNode();
    if (prev) {
      EXPECT_LE(cost, prev + 80);
    }
    prev = cost;
  }
  // Even with linear degree it stays below the quadratic LCP.
  EXPECT_LT(SymInputProtocol::costModel(1024, 1023).totalPerNode(), 1024u * 1024u / 50);
}

TEST(SymInput, MeasuredCostMatchesModel) {
  Rng rng(242);
  const std::size_t n = 12;
  Rng setup(243);
  SymInputProtocol protocol(hash::makeProtocol1Family(n, setup));
  SymInputInstance instance = makeInstance(n, /*symmetricInput=*/true, rng);
  HonestSymInputProver prover(protocol.family());
  RunResult result = protocol.run(instance, prover, rng);
  ASSERT_TRUE(result.accepted);

  std::size_t maxDegree = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    maxDegree = std::max(maxDegree, instance.input.degree(v));
  }
  CostBreakdown model = SymInputProtocol::costModel(n, maxDegree);
  EXPECT_LE(result.transcript.maxPerNodeBits(), model.totalPerNode());
  EXPECT_GE(result.transcript.maxPerNodeBits(), model.totalPerNode() / 3);
}

}  // namespace
}  // namespace dip::core
