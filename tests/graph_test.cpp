// Tests for the graph substrate: Graph, generators, and the paper's
// structured builders (dumbbells, DSym instances).
#include <gtest/gtest.h>

#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/isomorphism.hpp"
#include "util/rng.hpp"

namespace dip::graph {
namespace {

TEST(Graph, EdgesAndDegrees) {
  Graph g = Graph::fromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.numVertices(), 4u);
  EXPECT_EQ(g.numEdges(), 3u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Graph, RejectsLoopsAndOutOfRange) {
  Graph g(3);
  EXPECT_THROW(g.addEdge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.addEdge(0, 3), std::out_of_range);
  g.addEdge(0, 1);
  g.addEdge(0, 1);  // Duplicate is a no-op.
  EXPECT_EQ(g.numEdges(), 1u);
}

TEST(Graph, ClosedRowIncludesSelf) {
  Graph g = Graph::fromEdges(3, {{0, 1}});
  auto closed = g.closedRow(0);
  EXPECT_TRUE(closed.test(0));
  EXPECT_TRUE(closed.test(1));
  EXPECT_FALSE(closed.test(2));
  EXPECT_FALSE(g.row(0).test(0));  // Open row excludes self.
}

TEST(Graph, NeighborsSorted) {
  Graph g = Graph::fromEdges(5, {{2, 4}, {2, 0}, {2, 3}});
  EXPECT_EQ(g.neighbors(2), (std::vector<Vertex>{0, 3, 4}));
  EXPECT_EQ(g.closedNeighbors(2), (std::vector<Vertex>{0, 2, 3, 4}));
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(pathGraph(5).isConnected());
  Graph disconnected(4);
  disconnected.addEdge(0, 1);
  EXPECT_FALSE(disconnected.isConnected());
  EXPECT_TRUE(Graph(1).isConnected());
}

TEST(Graph, RelabeledPreservesStructure) {
  Graph g = Graph::fromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  Permutation perm{3, 2, 1, 0};
  Graph h = g.relabeled(perm);
  EXPECT_TRUE(h.hasEdge(3, 2));
  EXPECT_TRUE(h.hasEdge(2, 1));
  EXPECT_TRUE(h.hasEdge(1, 0));
  EXPECT_EQ(h.numEdges(), 3u);
}

TEST(Graph, ImageOfHandlesNonInjectiveMaps) {
  util::DynBitset subset(4);
  subset.set(0);
  subset.set(1);
  Permutation collapse{2, 2, 3, 3};  // Not a permutation.
  auto image = Graph::imageOf(subset, collapse);
  EXPECT_TRUE(image.test(2));
  EXPECT_FALSE(image.test(3));
  EXPECT_EQ(image.count(), 1u);
}

TEST(Graph, UpperTriangleRoundTrip) {
  util::Rng rng(21);
  for (int i = 0; i < 20; ++i) {
    Graph g = erdosRenyi(7, 0.4, rng);
    Graph back = Graph::fromUpperTriangleBits(7, g.upperTriangleBits());
    EXPECT_EQ(back, g);
  }
}

TEST(Graph, FromUpperTriangleCodeMatchesBitsPath) {
  // The census fast path must construct the exact same graph as the
  // DynBitset decoder, for every code at small n and for spot checks at
  // the largest code-compatible size.
  for (std::size_t n = 1; n <= 5; ++n) {
    const std::size_t slots = n * (n - 1) / 2;
    for (std::uint64_t code = 0; code < (1ull << slots); ++code) {
      util::DynBitset bits(slots);
      for (std::size_t i = 0; i < slots; ++i) {
        if ((code >> i) & 1ull) bits.set(i);
      }
      EXPECT_EQ(Graph::fromUpperTriangleCode(n, code),
                Graph::fromUpperTriangleBits(n, bits))
          << "n=" << n << " code=" << code;
    }
  }
  // n = 11 has 55 slots: still one word. A sparse high-bit pattern.
  const std::uint64_t code = (1ull << 54) | (1ull << 31) | 1ull;
  util::DynBitset bits(55);
  bits.set(54);
  bits.set(31);
  bits.set(0);
  EXPECT_EQ(Graph::fromUpperTriangleCode(11, code),
            Graph::fromUpperTriangleBits(11, bits));
}

TEST(Graph, FromUpperTriangleCodeValidates) {
  // n = 12 needs 66 slots > 64: code form unrepresentable.
  EXPECT_THROW(Graph::fromUpperTriangleCode(12, 0), std::invalid_argument);
  // Bits beyond the slot count are rejected, not silently dropped.
  EXPECT_THROW(Graph::fromUpperTriangleCode(3, 1ull << 3), std::invalid_argument);
  EXPECT_EQ(Graph::fromUpperTriangleCode(3, 0b111).numEdges(), 3u);
}

TEST(Permutations, Helpers) {
  EXPECT_TRUE(isPermutation({1, 0, 2}, 3));
  EXPECT_FALSE(isPermutation({1, 1, 2}, 3));
  EXPECT_FALSE(isPermutation({0, 1}, 3));
  EXPECT_TRUE(isIdentity({0, 1, 2}));
  EXPECT_FALSE(isIdentity({1, 0, 2}));
  Permutation perm{2, 0, 1};
  EXPECT_EQ(compose(inverse(perm), perm), identityPermutation(3));
}

TEST(Permutations, IsAutomorphismDefinition) {
  Graph cycle = cycleGraph(5);
  // Rotation is an automorphism of C5.
  Permutation rotate{1, 2, 3, 4, 0};
  EXPECT_TRUE(isAutomorphism(cycle, rotate));
  // Swapping two adjacent vertices is not.
  Permutation bad{1, 0, 2, 3, 4};
  EXPECT_FALSE(isAutomorphism(cycle, bad));
}

// ---- Generators ----

TEST(Generators, ClassicFamilies) {
  EXPECT_EQ(pathGraph(6).numEdges(), 5u);
  EXPECT_EQ(cycleGraph(6).numEdges(), 6u);
  EXPECT_EQ(completeGraph(6).numEdges(), 15u);
  EXPECT_EQ(starGraph(6).numEdges(), 5u);
  EXPECT_EQ(gridGraph(3, 4).numEdges(), 3u * 3 + 2 * 4);
  EXPECT_TRUE(gridGraph(3, 4).isConnected());
}

TEST(Generators, ErdosRenyiDensity) {
  util::Rng rng(22);
  Graph dense = erdosRenyi(40, 0.9, rng);
  Graph sparse = erdosRenyi(40, 0.1, rng);
  EXPECT_GT(dense.numEdges(), sparse.numEdges());
  Graph empty = erdosRenyi(10, 0.0, rng);
  EXPECT_EQ(empty.numEdges(), 0u);
}

TEST(Generators, RandomTreeIsSpanningTree) {
  util::Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    Graph tree = randomTree(20, rng);
    EXPECT_EQ(tree.numEdges(), 19u);
    EXPECT_TRUE(tree.isConnected());
  }
}

TEST(Generators, RandomConnectedIsConnected) {
  util::Rng rng(24);
  for (int i = 0; i < 10; ++i) {
    Graph g = randomConnected(15, 10, rng);
    EXPECT_TRUE(g.isConnected());
    EXPECT_GE(g.numEdges(), 14u);
  }
}

TEST(Generators, RigidGraphsAreRigidAndConnected) {
  util::Rng rng(25);
  for (std::size_t n : {6u, 8u, 12u}) {
    Graph g = randomRigidConnected(n, rng);
    EXPECT_TRUE(g.isConnected());
    EXPECT_TRUE(isRigid(g));
  }
  EXPECT_THROW(randomRigidConnected(5, rng), std::invalid_argument);
}

TEST(Generators, SymmetricGraphsAreSymmetricAndConnected) {
  util::Rng rng(26);
  for (std::size_t n : {2u, 6u, 10u, 16u}) {
    Graph g = randomSymmetricConnected(n, rng);
    EXPECT_TRUE(g.isConnected()) << n;
    EXPECT_FALSE(isRigid(g)) << n;
  }
  EXPECT_THROW(randomSymmetricConnected(7, rng), std::invalid_argument);
}

TEST(Generators, RandomPermutationIsPermutation) {
  util::Rng rng(27);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(isPermutation(randomPermutation(12, rng), 12));
  }
}

TEST(Generators, IsomorphicCopyIsIsomorphic) {
  util::Rng rng(28);
  Graph g = randomConnected(9, 6, rng);
  Graph copy = randomIsomorphicCopy(g, rng);
  EXPECT_TRUE(areIsomorphic(g, copy));
}

// ---- Dumbbells (Section 3.4 family) ----

TEST(Dumbbell, LayoutAndStructure) {
  util::Rng rng(29);
  Graph f = randomRigidConnected(6, rng);
  Graph g = dumbbell(f, f);
  DumbbellLayout layout = dumbbellLayout(6);
  EXPECT_EQ(g.numVertices(), 14u);
  EXPECT_TRUE(g.hasEdge(layout.vA, layout.xA));
  EXPECT_TRUE(g.hasEdge(layout.xA, layout.xB));
  EXPECT_TRUE(g.hasEdge(layout.xB, layout.vB));
  EXPECT_TRUE(g.isConnected());
}

TEST(Dumbbell, SymmetricIffSidesEqual) {
  // The heart of the lower-bound construction: G(F, F) is symmetric;
  // G(F, F') for non-isomorphic rigid F, F' is not.
  util::Rng rng(30);
  Graph f1 = randomRigidConnected(6, rng);
  Graph f2 = randomRigidConnected(6, rng);
  while (areIsomorphic(f1, f2)) f2 = randomRigidConnected(6, rng);

  EXPECT_FALSE(isRigid(dumbbell(f1, f1)));
  EXPECT_FALSE(isRigid(dumbbell(f2, f2)));
  EXPECT_TRUE(isRigid(dumbbell(f1, f2)));
  EXPECT_TRUE(isRigid(dumbbell(f2, f1)));
}

// ---- DSym (Definition 5) ----

TEST(DSym, SigmaIsAutomorphismOfYesInstances) {
  util::Rng rng(31);
  for (std::size_t r : {0u, 1u, 3u}) {
    Graph f = randomConnected(5, 3, rng);
    Graph g = dsymInstance(f, r);
    DSymLayout layout = dsymLayout(5, r);
    EXPECT_EQ(g.numVertices(), layout.numVertices);
    Permutation sigma = dsymSigma(layout);
    EXPECT_TRUE(isPermutation(sigma, layout.numVertices));
    EXPECT_TRUE(isAutomorphism(g, sigma));
    EXPECT_TRUE(isDSymInstance(g, layout));
  }
}

TEST(DSym, SigmaSwapsSidesAndReversesPath) {
  DSymLayout layout = dsymLayout(4, 2);
  Permutation sigma = dsymSigma(layout);
  EXPECT_EQ(sigma[0], 4u);
  EXPECT_EQ(sigma[4], 0u);
  EXPECT_EQ(sigma[8], 12u);   // First path vertex (2n=8) -> last (2n+2r=12).
  EXPECT_EQ(sigma[10], 10u);  // Path center is the unique fixed point.
}

TEST(DSym, NoInstanceDetected) {
  util::Rng rng(32);
  Graph f = randomRigidConnected(6, rng);
  Graph fOther = randomRigidConnected(6, rng);
  while (fOther == f) fOther = randomRigidConnected(6, rng);
  Graph no = dsymNoInstance(f, fOther, 2);
  DSymLayout layout = dsymLayout(6, 2);
  EXPECT_FALSE(isDSymInstance(no, layout));
  EXPECT_TRUE(isDSymInstance(dsymInstance(f, 2), layout));
}

TEST(DSym, LocalStructureCatchesStrayEdges) {
  util::Rng rng(33);
  Graph f = randomConnected(4, 2, rng);
  Graph g = dsymInstance(f, 1);
  DSymLayout layout = dsymLayout(4, 1);
  // Add a forbidden cross edge between the two sides.
  g.addEdge(1, 5);
  bool someNodeRejects = false;
  for (Vertex v = 0; v < g.numVertices(); ++v) {
    if (!dsymLocalStructureOk(g, layout, v)) someNodeRejects = true;
  }
  EXPECT_TRUE(someNodeRejects);
}

}  // namespace
}  // namespace dip::graph
