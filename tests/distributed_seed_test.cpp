// Tests for the distributed-seed hash, including the executable
// demonstration of why the GNI protocol cannot use it for the
// permuted-matrix side (assignment dependence).
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "hash/distributed_seed.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::hash {
namespace {

using util::BigUInt;
using util::DynBitset;
using util::Rng;

class DistributedSeedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng setup(251);
    n_ = 8;
    hash_ = std::make_unique<DistributedSeedHash>(util::findPrimeWithBits(40, setup), n_);
    Rng rng(252);
    for (std::size_t u = 0; u < n_; ++u) seeds_.push_back(hash_->randomNodeSeed(rng));
    identityOwner_.resize(n_);
    std::iota(identityOwner_.begin(), identityOwner_.end(), 0);
  }

  std::vector<DynBitset> rowsOf(const graph::Graph& g) const {
    std::vector<DynBitset> rows;
    for (graph::Vertex v = 0; v < n_; ++v) rows.push_back(g.closedRow(v));
    return rows;
  }

  std::size_t n_ = 0;
  std::unique_ptr<DistributedSeedHash> hash_;
  std::vector<BigUInt> seeds_;
  std::vector<std::uint32_t> identityOwner_;
};

TEST_F(DistributedSeedTest, TreeCombinationMatchesDirect) {
  Rng rng(253);
  graph::Graph g = graph::randomConnected(n_, 5, rng);
  auto rows = rowsOf(g);
  // Sum of per-node pieces (any association order) == whole-matrix hash.
  BigUInt combined;
  for (std::size_t u = 0; u < n_; ++u) {
    combined = hash_->combine(combined, hash_->rowPiece(seeds_[u], rows[u]));
  }
  EXPECT_EQ(combined, hash_->hashRowsWithOwners(seeds_, rows, identityOwner_));
}

TEST_F(DistributedSeedTest, DistinctMatricesRarelyCollide) {
  Rng rng(254);
  std::size_t collisions = 0;
  const std::size_t trials = 2000;
  graph::Graph g1 = graph::completeGraph(n_);
  graph::Graph g2 = graph::cycleGraph(n_);
  auto rows1 = rowsOf(g1);
  auto rows2 = rowsOf(g2);
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<BigUInt> seeds;
    for (std::size_t u = 0; u < n_; ++u) seeds.push_back(hash_->randomNodeSeed(rng));
    if (hash_->hashRowsWithOwners(seeds, rows1, identityOwner_) ==
        hash_->hashRowsWithOwners(seeds, rows2, identityOwner_)) {
      ++collisions;
    }
  }
  // Bound n/P ~ 8/2^40: zero collisions expected at this scale.
  EXPECT_EQ(collisions, 0u);
}

TEST_F(DistributedSeedTest, SeedIsGenuinelySplit) {
  // Each node's contribution uses only its own seed: changing node 3's
  // seed changes only node 3's piece.
  Rng rng(255);
  graph::Graph g = graph::randomConnected(n_, 4, rng);
  auto rows = rowsOf(g);
  BigUInt pieceBefore = hash_->rowPiece(seeds_[5], rows[5]);
  std::vector<BigUInt> altered = seeds_;
  altered[3] = hash_->randomNodeSeed(rng);
  EXPECT_EQ(hash_->rowPiece(altered[5], rows[5]), pieceBefore);
  EXPECT_NE(hash_->rowPiece(altered[3], rows[3]), hash_->rowPiece(seeds_[3], rows[3]));
  EXPECT_LE(hash_->perNodeSeedBits(), 40u);
}

TEST_F(DistributedSeedTest, AssignmentDependenceBreaksGraphCounting) {
  // THE design-decision demonstration: hash the SAME matrix under two
  // different row-ownership assignments (as Goldwasser-Sipser would, when
  // two different sigma produce the same permuted graph). The values
  // differ, so the hash is not a function of the graph — the |S| counting
  // argument would break. The root-seeded EpsApiHash has no such owner
  // parameter, which is why the protocol uses it.
  Rng rng(256);
  graph::Graph g = graph::randomConnected(n_, 5, rng);
  auto rows = rowsOf(g);

  std::vector<std::uint32_t> swappedOwner = identityOwner_;
  std::swap(swappedOwner[0], swappedOwner[1]);

  BigUInt identityValue = hash_->hashRowsWithOwners(seeds_, rows, identityOwner_);
  BigUInt swappedValue = hash_->hashRowsWithOwners(seeds_, rows, swappedOwner);
  // Same matrix, different assignment, different hash (w.h.p. over seeds —
  // deterministic here since the seeds are fixed and rows 0, 1 differ).
  ASSERT_NE(rows[0], rows[1]);
  EXPECT_NE(identityValue, swappedValue);
}

TEST_F(DistributedSeedTest, FixedIndexProtocolsAreSafe) {
  // For fingerprints of sum [v, N(v)] the ownership IS the row index, so
  // the hash is well-defined: every honest party computes the same value.
  Rng rng(257);
  graph::Graph g = graph::randomSymmetricConnected(n_, rng);
  auto rows = rowsOf(g);
  BigUInt first = hash_->hashRowsWithOwners(seeds_, rows, identityOwner_);
  BigUInt second = hash_->hashRowsWithOwners(seeds_, rows, identityOwner_);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dip::hash
