// Adversarial bytes against the dipd frame codec, in the seeded-corpus
// style of tests/fuzz_seed.hpp: every iteration derives its mutations from
// a counter-based child stream and failures print a repro line naming
// (seed, trial). The contract under attack: truncated frames, bad verb
// tags, oversized length prefixes, trailing garbage and corrupt payloads
// must all surface as rpc::CodecError (or a clean "need more bytes"
// nullopt) — never a crash, never UB (the asan job runs this suite), and
// duplicate or stale range indices must never double-fold.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "fuzz_seed.hpp"
#include "rpc/frame.hpp"
#include "sim/shard.hpp"
#include "sim/trial.hpp"

namespace dip::rpc {
namespace {

constexpr std::uint64_t kFuzzSeed = 0xD12DF8A3ull;

std::vector<sim::TrialOutcome> sampleOutcomes(std::size_t count) {
  std::vector<sim::TrialOutcome> outcomes(count);
  for (std::size_t i = 0; i < count; ++i) {
    outcomes[i].accepted = (i % 3) != 0;
    outcomes[i].maxPerNodeBits = 100 + i;
    outcomes[i].digest = 0x9E3779B97F4A7C15ull * (i + 1);
  }
  return outcomes;
}

AssignMsg sampleAssign() {
  AssignMsg msg;
  msg.epoch = 3;
  msg.rangeIndex = 7;
  msg.lo = 112;
  msg.hi = 128;
  msg.masterSeed = 0xDEADBEEFCAFEF00Dull;
  msg.cell = "sym_dmam_p1";
  return msg;
}

PartialMsg samplePartial(bool done, std::size_t count) {
  PartialMsg msg;
  msg.workerId = 2;
  msg.epoch = 3;
  msg.rangeIndex = 7;
  msg.done = done;
  msg.outcomes = sampleOutcomes(count);
  return msg;
}

// Every well-formed frame the protocol can produce, encoded.
std::vector<std::vector<std::uint8_t>> corpus() {
  std::vector<std::vector<std::uint8_t>> frames;
  auto add = [&frames](Verb verb, const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> bytes;
    encodeFrame(verb, payload, bytes);
    frames.push_back(std::move(bytes));
  };
  add(Verb::kHello, encodeHello(HelloMsg{kProtocolVersion, 4242, 4}));
  add(Verb::kHello, encodeHelloAck(HelloAckMsg{kProtocolVersion, 1}));
  add(Verb::kAssign, encodeAssign(sampleAssign()));
  add(Verb::kPartial, encodePartial(samplePartial(true, 16)));
  add(Verb::kPartial, encodePartial(samplePartial(false, 0)));
  add(Verb::kRetire, encodeRetire(RetireMsg{9}));
  add(Verb::kRetire, {});
  add(Verb::kShutdown, {});
  return frames;
}

// Runs the full coordinator-side decode pipeline over a byte buffer:
// extract frames and decode each with its verb's decoder. Anything other
// than CodecError escaping is a bug.
void decodeAll(std::vector<std::uint8_t> buffer) {
  while (true) {
    std::optional<Frame> frame = extractFrame(buffer);
    if (!frame) return;
    switch (frame->verb) {
      case Verb::kHello:
        (void)decodeHello(*frame);
        break;
      case Verb::kAssign:
        (void)decodeAssign(*frame);
        break;
      case Verb::kPartial:
        (void)decodePartial(*frame);
        break;
      case Verb::kRetire:
        if (!frame->payload.empty()) (void)decodeRetire(*frame);
        break;
      case Verb::kShutdown:
        break;
    }
  }
}

TEST(rpc_fuzz, RoundtripsAllVerbs) {
  const HelloMsg hello{kProtocolVersion, 77, 8};
  std::vector<std::uint8_t> buffer;
  encodeFrame(Verb::kHello, encodeHello(hello), buffer);
  std::optional<Frame> frame = extractFrame(buffer);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(buffer.empty());
  const HelloMsg hello2 = decodeHello(*frame);
  EXPECT_EQ(hello2.pid, hello.pid);
  EXPECT_EQ(hello2.threads, hello.threads);

  const AssignMsg assign = sampleAssign();
  buffer.clear();
  encodeFrame(Verb::kAssign, encodeAssign(assign), buffer);
  const AssignMsg assign2 = decodeAssign(*extractFrame(buffer));
  EXPECT_EQ(assign2.epoch, assign.epoch);
  EXPECT_EQ(assign2.rangeIndex, assign.rangeIndex);
  EXPECT_EQ(assign2.lo, assign.lo);
  EXPECT_EQ(assign2.hi, assign.hi);
  EXPECT_EQ(assign2.masterSeed, assign.masterSeed);
  EXPECT_EQ(assign2.cell, assign.cell);

  const PartialMsg partial = samplePartial(true, 16);
  buffer.clear();
  encodeFrame(Verb::kPartial, encodePartial(partial), buffer);
  const PartialMsg partial2 = decodePartial(*extractFrame(buffer));
  EXPECT_EQ(partial2.workerId, partial.workerId);
  EXPECT_EQ(partial2.epoch, partial.epoch);
  EXPECT_EQ(partial2.rangeIndex, partial.rangeIndex);
  EXPECT_EQ(partial2.done, partial.done);
  EXPECT_EQ(partial2.outcomes, partial.outcomes);

  buffer.clear();
  encodeFrame(Verb::kRetire, encodeRetire(RetireMsg{5}), buffer);
  EXPECT_EQ(decodeRetire(*extractFrame(buffer)).rangesCompleted, 5u);
}

TEST(rpc_fuzz, TruncatedFramesWaitForMoreBytes) {
  // A prefix of a valid frame is not an error — it is an incomplete read.
  // extractFrame must return nullopt and leave the bytes untouched.
  for (const std::vector<std::uint8_t>& frame : corpus()) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      std::vector<std::uint8_t> buffer(frame.begin(),
                                       frame.begin() + static_cast<std::ptrdiff_t>(cut));
      const std::vector<std::uint8_t> before = buffer;
      EXPECT_FALSE(extractFrame(buffer).has_value()) << "cut=" << cut;
      EXPECT_EQ(buffer, before) << "cut=" << cut;
    }
  }
}

TEST(rpc_fuzz, OversizedLengthPrefixRejectedBeforeAllocation) {
  std::vector<std::uint8_t> buffer{0xFF, 0xFF, 0xFF, 0xFF, 1};  // ~4 GiB claim.
  EXPECT_THROW((void)extractFrame(buffer), CodecError);
  EXPECT_TRUE(buffer.empty());  // Poison consumed: the peer can be failed.
}

TEST(rpc_fuzz, UnknownVerbTagRejected) {
  for (std::uint8_t verb : {std::uint8_t{0}, std::uint8_t{6}, std::uint8_t{0xFF}}) {
    std::vector<std::uint8_t> buffer{0, 0, 0, 0, verb};
    EXPECT_THROW((void)extractFrame(buffer), CodecError) << int(verb);
    EXPECT_TRUE(buffer.empty());
  }
}

TEST(rpc_fuzz, TruncatedPayloadsRejected) {
  // Chop bytes off the PAYLOAD (fixing up the length prefix so the frame
  // layer accepts it): the verb decoder must throw, not read past the end.
  for (const std::vector<std::uint8_t>& frame : corpus()) {
    const std::size_t payloadBytes = frame.size() - 5;
    for (std::size_t keep = 0; keep < payloadBytes; ++keep) {
      std::vector<std::uint8_t> buffer(frame.begin(),
                                       frame.begin() + 5 + static_cast<std::ptrdiff_t>(keep));
      buffer[0] = static_cast<std::uint8_t>(keep & 0xFF);
      buffer[1] = static_cast<std::uint8_t>((keep >> 8) & 0xFF);
      buffer[2] = 0;
      buffer[3] = 0;
      std::optional<Frame> extracted;
      try {
        extracted = extractFrame(buffer);
      } catch (const CodecError&) {
        continue;  // Frame layer already rejected it: fine.
      }
      ASSERT_TRUE(extracted.has_value());
      Frame frameCopy = *extracted;
      if (frameCopy.payload == std::vector<std::uint8_t>(
                                   frame.begin() + 5, frame.end())) {
        continue;  // keep == payloadBytes edge: nothing actually truncated.
      }
      switch (frameCopy.verb) {
        case Verb::kHello:
          EXPECT_THROW((void)decodeHello(frameCopy), CodecError);
          break;
        case Verb::kAssign:
          EXPECT_THROW((void)decodeAssign(frameCopy), CodecError);
          break;
        case Verb::kPartial:
          EXPECT_THROW((void)decodePartial(frameCopy), CodecError);
          break;
        default:
          break;  // RETIRE/SHUTDOWN truncations can still be valid (empty).
      }
    }
  }
}

TEST(rpc_fuzz, TrailingGarbageRejected) {
  std::vector<std::uint8_t> payload = encodeAssign(sampleAssign());
  payload.push_back(0xAB);
  Frame frame{Verb::kAssign, payload};
  EXPECT_THROW((void)decodeAssign(frame), CodecError);
}

TEST(rpc_fuzz, VersionMismatchRejected) {
  HelloMsg hello;
  hello.version = kProtocolVersion + 1;
  Frame frame{Verb::kHello, encodeHello(hello)};
  EXPECT_THROW((void)decodeHello(frame), CodecError);
}

TEST(rpc_fuzz, ImplausibleAssignsRejected) {
  AssignMsg inverted = sampleAssign();
  inverted.hi = inverted.lo;  // Empty range.
  EXPECT_THROW((void)decodeAssign(Frame{Verb::kAssign, encodeAssign(inverted)}),
               CodecError);
  AssignMsg wide = sampleAssign();
  wide.hi = wide.lo + (1u << 20);  // Wider than any shard grain may be.
  EXPECT_THROW((void)decodeAssign(Frame{Verb::kAssign, encodeAssign(wide)}),
               CodecError);
  AssignMsg nameless = sampleAssign();
  nameless.cell.clear();
  EXPECT_THROW((void)decodeAssign(Frame{Verb::kAssign, encodeAssign(nameless)}),
               CodecError);
}

TEST(rpc_fuzz, BeaconWithOutcomesRejected) {
  const PartialMsg beacon = samplePartial(false, 4);  // Liveness + payload: no.
  EXPECT_THROW((void)decodePartial(Frame{Verb::kPartial, encodePartial(beacon)}),
               CodecError);
}

TEST(rpc_fuzz, DuplicateAndStalePartialsNeverDoubleFold) {
  // The coordinator-side fold pipeline against hostile PARTIAL replays: a
  // duplicate done-frame must fold zero additional outcomes, and a stale
  // range index must be rejected before touching the outcome store.
  sim::ShardScheduler sched(32, 16);
  (void)sched.claim(0);
  (void)sched.claim(0);
  std::vector<sim::TrialOutcome> store(32);
  std::size_t folds = 0;
  auto deliver = [&](const PartialMsg& msg) {
    std::vector<std::uint8_t> buffer;
    encodeFrame(Verb::kPartial, encodePartial(msg), buffer);
    const PartialMsg decoded = decodePartial(*extractFrame(buffer));
    const sim::SeedRange& range = sched.range(decoded.rangeIndex);
    ASSERT_EQ(decoded.outcomes.size(), range.hi - range.lo);
    if (sched.complete(decoded.rangeIndex)) {
      std::copy(decoded.outcomes.begin(), decoded.outcomes.end(),
                store.begin() + static_cast<std::ptrdiff_t>(range.lo));
      ++folds;
    }
  };
  PartialMsg done = samplePartial(true, 16);
  done.rangeIndex = 0;
  deliver(done);
  deliver(done);  // Exact replay: deduped.
  EXPECT_EQ(folds, 1u);

  PartialMsg stale = samplePartial(true, 16);
  stale.rangeIndex = 99;  // No shard carries this index.
  std::vector<std::uint8_t> buffer;
  encodeFrame(Verb::kPartial, encodePartial(stale), buffer);
  const PartialMsg decoded = decodePartial(*extractFrame(buffer));
  EXPECT_THROW((void)sched.range(decoded.rangeIndex), std::out_of_range);
  EXPECT_EQ(folds, 1u);
}

TEST(rpc_fuzz, MutatedFramesNeverCrash) {
  // The seeded mutation loop: flip, truncate, extend and splice corpus
  // frames; the decode pipeline may reject (CodecError) or accept, but must
  // never crash, leak, or read out of bounds (asan enforces the latter).
  const std::vector<std::vector<std::uint8_t>> frames = corpus();
  constexpr std::uint64_t kIterations = 4000;
  for (std::uint64_t trial = 0; trial < kIterations; ++trial) {
    SCOPED_TRACE(testutil::seedLine(kFuzzSeed, trial));
    util::Rng rng = testutil::fuzzStream(kFuzzSeed, trial);
    std::vector<std::uint8_t> buffer = frames[rng.nextBelow(frames.size())];
    const std::uint64_t mutations = 1 + rng.nextBelow(4);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      switch (rng.nextBelow(4)) {
        case 0:  // Flip a byte.
          if (!buffer.empty()) {
            buffer[rng.nextBelow(buffer.size())] ^=
                static_cast<std::uint8_t>(1 + rng.nextBelow(255));
          }
          break;
        case 1:  // Truncate.
          buffer.resize(rng.nextBelow(buffer.size() + 1));
          break;
        case 2:  // Extend with noise.
          for (std::uint64_t i = 0, n = rng.nextBelow(16); i < n; ++i) {
            buffer.push_back(static_cast<std::uint8_t>(rng.nextBelow(256)));
          }
          break;
        case 3: {  // Splice another corpus frame on the back.
          const std::vector<std::uint8_t>& other = frames[rng.nextBelow(frames.size())];
          buffer.insert(buffer.end(), other.begin(), other.end());
          break;
        }
      }
    }
    try {
      decodeAll(std::move(buffer));
    } catch (const CodecError&) {
      // The only exception the pipeline may surface.
    }
  }
}

}  // namespace
}  // namespace dip::rpc
