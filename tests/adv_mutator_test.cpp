// Unit tests for the wire-mutation adversary registry (src/adv/mutator.*):
// the registry is complete and name-addressable, every registered self-test
// seed replays deterministically, and every mutator actually perturbs a
// round (no silent no-op adversaries inflating the stress denominator).
// These tests are the runtime half of the dip-lint `mutator-selftest`
// contract: the lint proves every MessageMutator subclass has a registered
// seed; this file proves the seed does what the registry claims.
#include <gtest/gtest.h>

#include <algorithm>

#include <set>
#include <string>

#include "adv/mutator.hpp"
#include "core/wire.hpp"
#include "util/bitio.hpp"
#include "util/rng.hpp"

namespace dip::adv {
namespace {

core::wire::EncodedRound sampleRound(std::size_t numNodes, std::uint64_t seed) {
  util::Rng rng(seed);
  core::wire::EncodedRound round;
  for (int i = 0; i < 40; ++i) round.broadcast.writeBit(rng.nextBool());
  round.unicast.resize(numNodes);
  for (auto& payload : round.unicast) {
    for (int i = 0; i < 25; ++i) payload.writeBit(rng.nextBool());
  }
  return round;
}

bool roundsEqual(const core::wire::EncodedRound& a,
                 const core::wire::EncodedRound& b) {
  if (a.broadcast.bitCount() != b.broadcast.bitCount()) return false;
  if (!std::ranges::equal(a.broadcast.bytes(), b.broadcast.bytes())) return false;
  if (a.unicast.size() != b.unicast.size()) return false;
  for (std::size_t v = 0; v < a.unicast.size(); ++v) {
    if (a.unicast[v].bitCount() != b.unicast[v].bitCount()) return false;
    if (!std::ranges::equal(a.unicast[v].bytes(), b.unicast[v].bytes())) {
      return false;
    }
  }
  return true;
}

MutationContext sampleContext(std::size_t numNodes,
                              const core::wire::EncodedRound* previous) {
  MutationContext ctx;
  ctx.roundIndex = previous ? 1 : 0;
  ctx.finalRound = true;  // AdaptiveReMutator only acts on the final round.
  ctx.numNodes = numNodes;
  ctx.challengeDigest = 0xC0FFEE;
  ctx.previousRound = previous;
  return ctx;
}

TEST(MutatorRegistry, StandardBatteryIsCompleteAndUnique) {
  auto battery = standardMutators();
  EXPECT_EQ(battery.size(), 11u);
  std::set<std::string> names;
  for (const auto& mutator : battery) {
    ASSERT_NE(mutator, nullptr);
    EXPECT_TRUE(names.insert(mutator->name()).second)
        << "duplicate mutator name " << mutator->name();
  }
}

TEST(MutatorRegistry, MakeMutatorRoundTripsEveryName) {
  for (const auto& mutator : standardMutators()) {
    auto rebuilt = makeMutator(mutator->name());
    ASSERT_NE(rebuilt, nullptr) << mutator->name();
    EXPECT_STREQ(rebuilt->name(), mutator->name());
  }
  EXPECT_EQ(makeMutator("no-such-adversary"), nullptr);
}

TEST(MutatorRegistry, SelfTestTableCoversTheBattery) {
  const auto& entries = mutatorSelfTests();
  auto battery = standardMutators();
  EXPECT_EQ(entries.size(), battery.size());
  std::set<std::string> registered, classNames;
  std::set<std::uint64_t> seeds;
  for (const auto& entry : entries) {
    EXPECT_TRUE(registered.insert(entry.mutatorName).second)
        << "duplicate self-test registration for " << entry.mutatorName;
    EXPECT_TRUE(classNames.insert(entry.className).second);
    EXPECT_TRUE(seeds.insert(entry.seed).second)
        << "self-test seeds must be distinct (" << entry.mutatorName << ")";
    EXPECT_NE(makeMutator(entry.mutatorName), nullptr) << entry.mutatorName;
  }
  for (const auto& mutator : battery) {
    EXPECT_TRUE(registered.count(mutator->name()))
        << "battery mutator " << mutator->name() << " has no self-test seed";
  }
}

TEST(MutatorRegistry, SelfTestSeedsReplayDeterministically) {
  const std::size_t n = 5;
  for (const auto& entry : mutatorSelfTests()) {
    SCOPED_TRACE(entry.mutatorName);
    auto mutator = makeMutator(entry.mutatorName);
    ASSERT_NE(mutator, nullptr);
    core::wire::EncodedRound previous = sampleRound(n, entry.seed ^ 1);
    core::wire::EncodedRound original = sampleRound(n, entry.seed);
    MutationContext ctx = sampleContext(n, &previous);

    core::wire::EncodedRound first = original;
    util::Rng rngA(entry.seed);
    mutator->mutate(first, nullptr, ctx, rngA);

    core::wire::EncodedRound second = original;
    util::Rng rngB(entry.seed);
    mutator->mutate(second, nullptr, ctx, rngB);

    EXPECT_TRUE(roundsEqual(first, second))
        << "same seed must give the same mutant";
    EXPECT_FALSE(roundsEqual(first, original))
        << "registered seed must actually perturb the round";
  }
}

TEST(MutatorRegistry, AdaptiveMutatorLeavesCommitmentRoundsAlone) {
  auto mutator = makeMutator("adaptive-remutate");
  ASSERT_NE(mutator, nullptr);
  core::wire::EncodedRound original = sampleRound(4, 99);
  core::wire::EncodedRound round = original;
  MutationContext ctx = sampleContext(4, nullptr);
  ctx.finalRound = false;  // A committing round: the adaptive cheater waits.
  util::Rng rng(99);
  mutator->mutate(round, nullptr, ctx, rng);
  EXPECT_TRUE(roundsEqual(round, original));
}

TEST(MutatorBitHelpers, TotalBitsAndInvolutiveFlip) {
  core::wire::EncodedRound round = sampleRound(3, 7);
  const std::size_t total = totalRoundBits(round);
  std::size_t expected = round.broadcast.bitCount();
  for (const auto& payload : round.unicast) expected += payload.bitCount();
  EXPECT_EQ(total, expected);

  core::wire::EncodedRound original = round;
  for (std::size_t position : {std::size_t{0}, total / 2, total - 1}) {
    flipRoundBit(round, position);
    EXPECT_FALSE(roundsEqual(round, original)) << "bit " << position;
    flipRoundBit(round, position);
    EXPECT_TRUE(roundsEqual(round, original)) << "bit " << position;
  }
}

}  // namespace
}  // namespace dip::adv
