// Unit and property tests for the arbitrary-precision integer substrate.
#include "util/biguint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace dip::util {
namespace {

TEST(BigUInt, DefaultIsZero) {
  BigUInt zero;
  EXPECT_TRUE(zero.isZero());
  EXPECT_EQ(zero.bitLength(), 0u);
  EXPECT_EQ(zero.toDecimal(), "0");
  EXPECT_EQ(zero.toHex(), "0");
  EXPECT_EQ(zero.toU64(), 0u);
}

TEST(BigUInt, U64RoundTrip) {
  for (std::uint64_t value : {0ull, 1ull, 2ull, 255ull, 4294967295ull, 4294967296ull,
                              18446744073709551615ull}) {
    BigUInt big{value};
    EXPECT_TRUE(big.fitsU64());
    EXPECT_EQ(big.toU64(), value);
  }
}

TEST(BigUInt, DecimalRoundTrip) {
  const std::string digits = "123456789012345678901234567890123456789012345678901234567890";
  BigUInt big = BigUInt::fromDecimal(digits);
  EXPECT_EQ(big.toDecimal(), digits);
}

TEST(BigUInt, HexRoundTrip) {
  const std::string hex = "deadbeefcafebabe0123456789abcdef";
  BigUInt big = BigUInt::fromHex(hex);
  EXPECT_EQ(big.toHex(), hex);
}

TEST(BigUInt, HexAndDecimalAgree) {
  BigUInt fromHex = BigUInt::fromHex("ff");
  BigUInt fromDec = BigUInt::fromDecimal("255");
  EXPECT_EQ(fromHex, fromDec);
}

TEST(BigUInt, ParseRejectsGarbage) {
  EXPECT_THROW(BigUInt::fromDecimal(""), std::invalid_argument);
  EXPECT_THROW(BigUInt::fromDecimal("12a"), std::invalid_argument);
  EXPECT_THROW(BigUInt::fromHex(""), std::invalid_argument);
  EXPECT_THROW(BigUInt::fromHex("xyz"), std::invalid_argument);
}

TEST(BigUInt, ComparisonOrdering) {
  BigUInt small{7};
  BigUInt large = BigUInt::fromDecimal("123456789123456789123456789");
  EXPECT_LT(small, large);
  EXPECT_GT(large, small);
  EXPECT_EQ(small, BigUInt{7});
  EXPECT_LE(small, BigUInt{7});
  EXPECT_NE(small, BigUInt{8});
}

TEST(BigUInt, AdditionCarriesAcrossLimbs) {
  BigUInt a = BigUInt::fromHex("ffffffffffffffff");  // 2^64 - 1.
  BigUInt sum = a + BigUInt{1};
  EXPECT_EQ(sum.toHex(), "10000000000000000");
}

TEST(BigUInt, SubtractionBorrowsAcrossLimbs) {
  BigUInt a = BigUInt::fromHex("10000000000000000");
  BigUInt diff = a - BigUInt{1};
  EXPECT_EQ(diff.toHex(), "ffffffffffffffff");
}

TEST(BigUInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUInt{1} - BigUInt{2}, std::underflow_error);
}

TEST(BigUInt, MultiplicationKnownValue) {
  BigUInt a = BigUInt::fromDecimal("123456789123456789");
  BigUInt b = BigUInt::fromDecimal("987654321987654321");
  // Verified externally.
  EXPECT_EQ((a * b).toDecimal(), "121932631356500531347203169112635269");
}

TEST(BigUInt, ShiftLeftThenRightRestores) {
  BigUInt value = BigUInt::fromDecimal("98765432109876543210");
  for (std::size_t shift : {1u, 31u, 32u, 33u, 64u, 100u}) {
    BigUInt shifted = (value << shift) >> shift;
    EXPECT_EQ(shifted, value) << "shift=" << shift;
  }
}

TEST(BigUInt, ShiftRightDropsBits) {
  BigUInt value{0b1011};
  EXPECT_EQ((value >> 2).toU64(), 0b10u);
  EXPECT_TRUE((value >> 64).isZero());
}

TEST(BigUInt, BitAccess) {
  BigUInt value = BigUInt{1} << 100;
  EXPECT_TRUE(value.bit(100));
  EXPECT_FALSE(value.bit(99));
  EXPECT_FALSE(value.bit(101));
  EXPECT_EQ(value.bitLength(), 101u);
}

TEST(BigUInt, DivisionByZeroThrows) {
  EXPECT_THROW(divMod(BigUInt{1}, BigUInt{}), std::domain_error);
  EXPECT_THROW(BigUInt{5}.modU32(0), std::domain_error);
}

TEST(BigUInt, DivModKnownValues) {
  auto [q1, r1] = divMod(BigUInt{17}, BigUInt{5});
  EXPECT_EQ(q1.toU64(), 3u);
  EXPECT_EQ(r1.toU64(), 2u);

  BigUInt big = BigUInt::fromDecimal("340282366920938463463374607431768211456");  // 2^128.
  auto [q2, r2] = divMod(big, BigUInt::fromDecimal("18446744073709551616"));      // 2^64.
  EXPECT_EQ(q2.toDecimal(), "18446744073709551616");
  EXPECT_TRUE(r2.isZero());
}

TEST(BigUInt, ModU32MatchesDivMod) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    BigUInt value = rng.nextBigBits(1 + rng.nextBelow(200));
    std::uint32_t modulus = static_cast<std::uint32_t>(1 + rng.nextBelow(1u << 31));
    EXPECT_EQ(value.modU32(modulus), (value % BigUInt{modulus}).toU64());
  }
}

TEST(BigUInt, PowKnownValues) {
  EXPECT_EQ(BigUInt::pow(BigUInt{2}, 10).toU64(), 1024u);
  EXPECT_EQ(BigUInt::pow(BigUInt{10}, 0).toU64(), 1u);
  EXPECT_EQ(BigUInt::pow(BigUInt{}, 5).toU64(), 0u);
  EXPECT_EQ(BigUInt::pow(BigUInt{3}, 40).toDecimal(), "12157665459056928801");
}

TEST(BigUInt, PowModMatchesReference) {
  // pow(2, 100, 1e9+7) cross-checked with an external big-integer library.
  BigUInt p = BigUInt::fromDecimal("1000000007");
  EXPECT_EQ(powMod(BigUInt{2}, BigUInt{100}, p).toDecimal(), "976371285");
  // Fermat's little theorem: a^(p-1) = 1 mod p for prime p, gcd(a, p) = 1.
  EXPECT_EQ(powMod(BigUInt{12345}, p - BigUInt{1}, p), BigUInt{1});
}

TEST(BigUInt, ModularHelpers) {
  BigUInt m{97};
  EXPECT_EQ(addMod(BigUInt{96}, BigUInt{5}, m).toU64(), 4u);
  EXPECT_EQ(subMod(BigUInt{3}, BigUInt{5}, m).toU64(), 95u);
  EXPECT_EQ(mulMod(BigUInt{96}, BigUInt{96}, m).toU64(), 1u);
}

TEST(BigUInt, Log2Approximation) {
  EXPECT_NEAR((BigUInt{1} << 200).log2(), 200.0, 1e-9);
  EXPECT_NEAR(BigUInt{1024}.log2(), 10.0, 1e-9);
  BigUInt big = BigUInt::fromDecimal("1000000000000000000000000000000");
  EXPECT_NEAR(big.log2(), 99.65784284662088, 1e-6);
}

TEST(BigUInt, ToDoubleLargeIsFiniteOrInf) {
  EXPECT_DOUBLE_EQ(BigUInt{12345}.toDouble(), 12345.0);
  BigUInt huge = BigUInt{1} << 2000;
  EXPECT_TRUE(std::isinf(huge.toDouble()));
}

// Randomized algebraic property sweep at several operand widths.
class BigUIntPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BigUIntPropertyTest, DivModReconstructsDividend) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    BigUInt a = rng.nextBigBits(1 + rng.nextBelow(GetParam()));
    BigUInt b = rng.nextBigBits(1 + rng.nextBelow(GetParam() / 2 + 1));
    if (b.isZero()) continue;
    auto [q, r] = divMod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST_P(BigUIntPropertyTest, AdditionSubtractionInverse) {
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 300; ++i) {
    BigUInt a = rng.nextBigBits(GetParam());
    BigUInt b = rng.nextBigBits(GetParam());
    EXPECT_EQ(a + b - b, a);
    EXPECT_EQ(b + a - a, b);
  }
}

TEST_P(BigUIntPropertyTest, MultiplicationDistributesOverAddition) {
  Rng rng(GetParam() + 2);
  for (int i = 0; i < 100; ++i) {
    BigUInt a = rng.nextBigBits(GetParam());
    BigUInt b = rng.nextBigBits(GetParam());
    BigUInt c = rng.nextBigBits(GetParam());
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST_P(BigUIntPropertyTest, PowModAgreesWithIteratedMulMod) {
  Rng rng(GetParam() + 3);
  BigUInt m = rng.nextBigBits(GetParam());
  if (m < BigUInt{2}) m = BigUInt{97};
  for (int i = 0; i < 20; ++i) {
    BigUInt base = rng.nextBigBelow(m);
    std::uint64_t exp = rng.nextBelow(50);
    BigUInt expect{1};
    for (std::uint64_t e = 0; e < exp; ++e) expect = mulMod(expect, base, m);
    EXPECT_EQ(powMod(base, BigUInt{exp}, m), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BigUIntPropertyTest,
                         ::testing::Values(16, 48, 64, 96, 160, 320, 1024));

}  // namespace
}  // namespace dip::util
