// Tests for Protocol 2 — the O(n log n) dAM protocol for Sym (Theorem 1.3)
// — and the adaptive-adversary ablation that justifies its huge hash field.
#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "core/sym_dam.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using graph::Graph;
using util::Rng;

TEST(SymDam, CompletenessOnSymmetricGraphs) {
  Rng rng(101);
  for (std::size_t n : {6u, 8u, 12u}) {
    Rng setupRng(200 + n);
    SymDamProtocol protocol(hash::makeProtocol2Family(n, setupRng));
    Graph g = graph::randomSymmetricConnected(n, rng);
    HonestSymDamProver prover(protocol.family());
    for (int trial = 0; trial < 5; ++trial) {
      EXPECT_TRUE(protocol.run(g, prover, rng).accepted) << "n=" << n;
    }
  }
}

TEST(SymDam, SoundnessWithPaperParameters) {
  // With p in [10 n^(n+2), 100 n^(n+2)], even an adversary that sees the
  // seed first and searches thousands of mappings finds no collision: the
  // union bound over all n^n mappings leaves < 1/3 total failure mass.
  Rng rng(102);
  const std::size_t n = 7;
  Rng setupRng(103);
  SymDamProtocol protocol(hash::makeProtocol2Family(n, setupRng));
  Graph g = graph::randomRigidConnected(n, rng);

  int seed = 0;
  AcceptanceStats stats = protocol.estimateAcceptance(
      g,
      [&] {
        return std::make_unique<AdaptiveCollisionProver>(protocol.family(), 2000, seed++);
      },
      40, rng);
  EXPECT_EQ(stats.accepts, 0u);
}

TEST(SymDam, AblationShortHashBreaksSoundness) {
  // E8's core finding: run the SAME dAM protocol with Protocol 1's short
  // hash (p ~ n^3). Now the adaptive adversary finds a colliding mapping
  // for most seeds and the verifiers accept a NON-symmetric graph — this
  // is exactly why dAM needs the n log n-bit seed (or dMAM's commit round).
  Rng rng(104);
  const std::size_t n = 6;
  Rng setupRng(105);
  SymDamProtocol shortHashProtocol(hash::makeProtocol1Family(n, setupRng));
  Graph g = graph::randomRigidConnected(n, rng);

  int seed = 0;
  AcceptanceStats stats = shortHashProtocol.estimateAcceptance(
      g,
      [&] {
        return std::make_unique<AdaptiveCollisionProver>(shortHashProtocol.family(),
                                                         60000, seed++);
      },
      30, rng);
  // The adversary should fool the verifiers most of the time.
  EXPECT_GT(stats.rate(), 0.5);
}

TEST(SymDam, CommittedCheaterStillFailsWithShortHash) {
  // Control for the ablation: the SHORT hash is fine against an adversary
  // that cannot adapt to the seed (that is Protocol 1's whole point).
  // Simulate commitment by giving the adaptive prover a search budget of 1.
  Rng rng(106);
  const std::size_t n = 6;
  Rng setupRng(107);
  SymDamProtocol protocol(hash::makeProtocol1Family(n, setupRng));
  Graph g = graph::randomRigidConnected(n, rng);
  int seed = 0;
  AcceptanceStats stats = protocol.estimateAcceptance(
      g,
      [&] {
        return std::make_unique<AdaptiveCollisionProver>(protocol.family(), 1, seed++);
      },
      300, rng);
  EXPECT_LT(stats.rate(), 1.0 / 3.0);
}

TEST(SymDam, FingerprintIdentityForAutomorphism) {
  // mappedMatrixFingerprint(sigma) == mappedMatrixFingerprint(id) iff sigma
  // is an automorphism (Lemma 3.1), for every seed.
  Rng rng(108);
  const std::size_t n = 8;
  Rng setupRng(109);
  SymDamProtocol protocol(hash::makeProtocol2Family(n, setupRng));
  Graph g = graph::randomSymmetricConnected(n, rng);
  auto rho = graph::findNontrivialAutomorphism(g);
  ASSERT_TRUE(rho.has_value());

  for (int i = 0; i < 5; ++i) {
    util::BigUInt index = protocol.family().randomIndex(rng);
    util::BigUInt idFp = mappedMatrixFingerprint(g, protocol.family(), index,
                                                 graph::identityPermutation(n));
    EXPECT_EQ(mappedMatrixFingerprint(g, protocol.family(), index, *rho), idFp);
    // A non-automorphism permutation should differ (w.h.p. over the index).
    graph::Permutation bad = graph::randomPermutation(n, rng);
    if (!graph::isAutomorphism(g, bad)) {
      EXPECT_NE(mappedMatrixFingerprint(g, protocol.family(), index, bad), idFp);
    }
  }
}

TEST(SymDam, NonPermutationMappingsChangeFingerprint) {
  // Lemma 3.1's other half: a non-permutation always differs from the
  // identity fingerprint (some row of the mapped sum is zero).
  Rng rng(110);
  const std::size_t n = 6;
  Rng setupRng(111);
  SymDamProtocol protocol(hash::makeProtocol2Family(n, setupRng));
  Graph g = graph::randomRigidConnected(n, rng);
  util::BigUInt index = protocol.family().randomIndex(rng);
  util::BigUInt idFp = mappedMatrixFingerprint(g, protocol.family(), index,
                                               graph::identityPermutation(n));
  std::vector<graph::Vertex> collapse(n, 0);  // Everything maps to vertex 0.
  EXPECT_NE(mappedMatrixFingerprint(g, protocol.family(), index, collapse), idFp);
}

TEST(SymDam, CostModelMatchesMeasuredCost) {
  Rng rng(112);
  const std::size_t n = 10;
  Rng setupRng(113);
  SymDamProtocol protocol(hash::makeProtocol2Family(n, setupRng));
  Graph g = graph::randomSymmetricConnected(n, rng);
  HonestSymDamProver prover(protocol.family());
  RunResult result = protocol.run(g, prover, rng);
  CostBreakdown model = SymDamProtocol::costModel(n);
  EXPECT_LE(result.transcript.maxPerNodeBits(), model.totalPerNode());
  EXPECT_GE(result.transcript.maxPerNodeBits(), model.totalPerNode() / 2);
}

TEST(SymDam, CostScalesAsNLogN) {
  // Theorem 1.3: Theta(n log n) bits per node. The ratio cost/(n log2 n)
  // must stay within constant factors across a wide sweep.
  double minRatio = 1e18;
  double maxRatio = 0.0;
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    double cost = static_cast<double>(SymDamProtocol::costModel(n).totalPerNode());
    double ratio = cost / (static_cast<double>(n) * std::log2(static_cast<double>(n)));
    minRatio = std::min(minRatio, ratio);
    maxRatio = std::max(maxRatio, ratio);
  }
  EXPECT_LT(maxRatio / minRatio, 4.0);
}

TEST(SymDam, ExponentiallyCheaperThanQuadraticAtScale) {
  // Against the Omega(n^2) LCP baseline, n log n wins from moderate n on.
  for (std::size_t n : {64u, 256u, 1024u}) {
    std::size_t cost = SymDamProtocol::costModel(n).totalPerNode();
    EXPECT_LT(cost, n * n) << "n=" << n;
  }
}

}  // namespace
}  // namespace dip::core
