// Failure injection / adversarial fuzz: random structured corruption of
// protocol messages. Two invariants must survive ANY corruption:
//   (1) no crash — verification handles arbitrary field values gracefully;
//   (2) no soundness leak — corrupted messages on YES instances either
//       still verify (when the corruption misses every read field) or are
//       rejected; corrupted messages can never make a NO instance accepted
//       beyond the hash-collision budget.
// Each fuzz round draws from its own counter-based child stream (see
// fuzz_seed.hpp), so a failure reproduces from the printed seed line alone.
#include <gtest/gtest.h>

#include "core/dsym_dam.hpp"
#include "core/gni_amam.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "fuzz_seed.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using testutil::fuzzStream;
using testutil::seedLine;
using util::Rng;

// Applies one random structured mutation to a Protocol 1 message pair.
void mutateSymDmam(Rng& rng, std::size_t n, const hash::LinearHashFamily& family,
                   SymDmamFirstMessage& first, SymDmamSecondMessage& second) {
  graph::Vertex victim = static_cast<graph::Vertex>(rng.nextBelow(n));
  switch (rng.nextBelow(8)) {
    case 0:
      first.rootPerNode[victim] = static_cast<graph::Vertex>(rng.nextBelow(2 * n));
      break;
    case 1:
      first.rho[victim] = static_cast<graph::Vertex>(rng.nextBelow(2 * n));
      break;
    case 2:
      first.parent[victim] = static_cast<graph::Vertex>(rng.nextBelow(2 * n));
      break;
    case 3:
      first.dist[victim] = static_cast<std::uint32_t>(rng.nextBelow(2 * n));
      break;
    case 4:
      second.indexPerNode[victim] = rng.nextBigBelow(family.prime());
      break;
    case 5:
      second.a[victim] = rng.nextBigBelow(family.prime());
      break;
    case 6:
      second.b[victim] = rng.nextBigBelow(family.prime());
      break;
    case 7:
      // Out-of-field value: must be rejected by domain checks, not crash.
      second.a[victim] = family.prime() + util::BigUInt{rng.nextBelow(100)};
      break;
  }
}

TEST(Fuzz, SymDmamNeverCrashesAndCatchesCorruption) {
  constexpr std::uint64_t kSeed = 221;
  const std::size_t n = 10;
  Rng setup(222);
  SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  Rng graphRng(kSeed);
  graph::Graph g = graph::randomSymmetricConnected(n, graphRng);
  HonestSymDmamProver prover(protocol.family());

  std::size_t corruptedAccepts = 0;
  const std::uint64_t rounds = 300;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    SCOPED_TRACE(seedLine(kSeed, round));
    Rng rng = fuzzStream(kSeed, round);
    SymDmamFirstMessage first = prover.firstMessage(g);
    std::vector<util::BigUInt> challenges;
    for (graph::Vertex v = 0; v < n; ++v) {
      challenges.push_back(protocol.family().randomIndex(rng));
    }
    SymDmamSecondMessage second = prover.secondMessage(g, first, challenges);

    int mutations = 1 + static_cast<int>(rng.nextBelow(3));
    for (int m = 0; m < mutations; ++m) {
      mutateSymDmam(rng, n, protocol.family(), first, second);
    }
    bool allAccept = true;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (!protocol.nodeDecision(g, v, first, challenges[v], second)) {
        allAccept = false;
        break;
      }
    }
    if (allAccept) ++corruptedAccepts;
  }
  // A mutation can hit a field nobody reads on this tree (e.g. the root's
  // parent pointer) or replace a value with itself; most corruptions must
  // be caught.
  EXPECT_LT(corruptedAccepts, static_cast<std::size_t>(rounds) / 4);
}

TEST(Fuzz, SymDamRejectsRandomGarbageMessages) {
  // Entirely random (well-shaped) messages on a rigid graph: acceptance
  // would require simultaneously forging tree, chains, and the root
  // equality — never happens.
  constexpr std::uint64_t kSeed = 223;
  const std::size_t n = 8;
  Rng setup(224);
  SymDamProtocol protocol(hash::makeProtocol1Family(n, setup));  // Short hash: hardest case.
  Rng graphRng(kSeed);
  graph::Graph g = graph::randomRigidConnected(n, graphRng);

  for (std::uint64_t round = 0; round < 200; ++round) {
    Rng rng = fuzzStream(kSeed, round);
    SymDamMessage msg;
    std::vector<graph::Vertex> rho(n);
    for (auto& x : rho) x = static_cast<graph::Vertex>(rng.nextBelow(n));
    msg.rhoPerNode.assign(n, rho);
    msg.indexPerNode.assign(n, rng.nextBigBelow(protocol.family().prime()));
    msg.rootPerNode.assign(n, static_cast<graph::Vertex>(rng.nextBelow(n)));
    msg.parent.resize(n);
    msg.dist.resize(n);
    msg.a.resize(n);
    msg.b.resize(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      msg.parent[v] = static_cast<graph::Vertex>(rng.nextBelow(n));
      msg.dist[v] = static_cast<std::uint32_t>(rng.nextBelow(n));
      msg.a[v] = rng.nextBigBelow(protocol.family().prime());
      msg.b[v] = rng.nextBigBelow(protocol.family().prime());
    }
    util::BigUInt ownChallenge = protocol.family().randomIndex(rng);
    bool allAccept = true;
    for (graph::Vertex v = 0; v < n && allAccept; ++v) {
      allAccept = protocol.nodeDecision(g, v, msg, ownChallenge);
    }
    EXPECT_FALSE(allAccept) << seedLine(kSeed, round);
  }
}

TEST(Fuzz, DSymSurvivesArbitraryGraphInputs) {
  // Feed the DSym verifier graphs that are NOT DSym-shaped at all (wrong
  // sizes handled by run(); here: right size, random structure). No crash,
  // and the structural checks reject.
  constexpr std::uint64_t kSeed = 225;
  const std::size_t side = 5;
  graph::DSymLayout layout = graph::dsymLayout(side, 1);
  Rng setup(226);
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{layout.numVertices}, 3);
  DSymDamProtocol protocol(
      layout, hash::LinearHashFamily(
                  util::findPrimeInRange(util::BigUInt{10} * n3,
                                         util::BigUInt{100} * n3, setup),
                  static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices));

  for (std::uint64_t round = 0; round < 20; ++round) {
    Rng rng = fuzzStream(kSeed, round);
    graph::Graph g = graph::randomConnected(layout.numVertices, layout.numVertices, rng);
    HonestDSymProver prover(layout, protocol.family());
    RunResult result = protocol.run(g, prover, rng);
    // Random connected graphs essentially never satisfy the rigid DSym
    // wiring; acceptance would need every structural check to pass.
    EXPECT_FALSE(result.accepted) << seedLine(kSeed, round);
  }
}

TEST(Fuzz, BigUIntMessageFieldsAtDomainBoundaries) {
  // Boundary values (0, p-1, p, p+1) in every chain slot: domain checks
  // must handle them without exceptions leaking through nodeDecision.
  constexpr std::uint64_t kSeed = 227;
  const std::size_t n = 8;
  Rng setup(228);
  SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  Rng rng = fuzzStream(kSeed, 0);
  graph::Graph g = graph::randomSymmetricConnected(n, rng);
  HonestSymDmamProver prover(protocol.family());

  SymDmamFirstMessage first = prover.firstMessage(g);
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < n; ++v) {
    challenges.push_back(protocol.family().randomIndex(rng));
  }
  SymDmamSecondMessage second = prover.secondMessage(g, first, challenges);

  const util::BigUInt& p = protocol.family().prime();
  for (const util::BigUInt& boundary :
       {util::BigUInt{}, p - util::BigUInt{1}, p, p + util::BigUInt{1}}) {
    SymDmamSecondMessage corrupted = second;
    corrupted.a[3] = boundary;
    for (graph::Vertex v = 0; v < n; ++v) {
      // Must not throw — just accept/reject.
      (void)protocol.nodeDecision(g, v, first, challenges[v], corrupted);
    }
  }
}

TEST(Fuzz, GniMessagesSurviveStructuredCorruption) {
  // Mutate an honest GNI interaction's messages in random slots; no crash,
  // and every all-nodes-accept outcome must trace back to a mutation that
  // hit an unclaimed repetition (whose fields nobody reads) or was a
  // self-replacement.
  constexpr std::uint64_t kSeed = 229;
  Rng rng(kSeed);
  Rng setup(230);
  GniParams params = GniParams::choose(6, setup);
  GniAmamProtocol protocol(params);
  GniInstance yes = gniYesInstance(6, rng);

  std::vector<std::vector<GniChallenge>> challenges(6);
  for (graph::Vertex v = 0; v < 6; ++v) {
    for (std::size_t j = 0; j < params.repetitions; ++j) {
      GniChallenge challenge;
      challenge.seed = params.gsHash.randomSeed(rng);
      challenge.y = rng.nextBigBits(params.ell);
      challenges[v].push_back(challenge);
    }
  }
  HonestGniProver prover(params);
  GniFirstMessage first = prover.firstMessage(yes, challenges);
  std::vector<util::BigUInt> checkChallenges;
  for (graph::Vertex v = 0; v < 6; ++v) {
    checkChallenges.push_back(params.checkFamily.randomIndex(rng));
  }
  GniSecondMessage second = prover.secondMessage(yes, challenges, first, checkChallenges);

  for (std::uint64_t round = 0; round < 60; ++round) {
    Rng stream = fuzzStream(kSeed, round);
    GniFirstMessage corruptedFirst = first;
    GniSecondMessage corruptedSecond = second;
    graph::Vertex victim = static_cast<graph::Vertex>(stream.nextBelow(6));
    std::size_t rep = stream.nextBelow(params.repetitions);
    bool hitClaimed = first.perNode[0].claimed[rep] != 0;
    switch (stream.nextBelow(5)) {
      case 0:
        corruptedFirst.perNode[victim].s[rep] =
            static_cast<graph::Vertex>(stream.nextBelow(6));
        break;
      case 1:
        corruptedFirst.perNode[victim].b[rep] ^= 1;
        break;
      case 2:
        corruptedSecond.perNode[victim].h[rep] =
            stream.nextBigBelow(params.gsHash.fieldPrime());
        break;
      case 3:
        corruptedSecond.perNode[victim].permS[rep] =
            stream.nextBigBelow(params.checkFamily.prime());
        break;
      case 4:
        corruptedFirst.perNode[victim].parent =
            static_cast<graph::Vertex>(stream.nextBelow(6));
        break;
    }
    bool allAccept = true;
    bool unchanged =
        corruptedFirst.perNode[victim].s == first.perNode[victim].s &&
        corruptedFirst.perNode[victim].b == first.perNode[victim].b &&
        corruptedFirst.perNode[victim].parent == first.perNode[victim].parent &&
        corruptedSecond.perNode[victim].h == second.perNode[victim].h &&
        corruptedSecond.perNode[victim].permS == second.perNode[victim].permS;
    for (graph::Vertex v = 0; v < 6; ++v) {
      if (!protocol.nodeDecision(yes, v, corruptedFirst, corruptedSecond, challenges[v],
                                 checkChallenges[v])) {
        allAccept = false;
        break;
      }
    }
    if (allAccept && hitClaimed && !unchanged) {
      // A read-field corruption of a claimed repetition slipped through:
      // only possible for the b-flip of a rep whose OTHER fields happen to
      // verify — flag anything else.
      ADD_FAILURE() << "corruption accepted: " << seedLine(kSeed, round);
    }
  }
}

}  // namespace
}  // namespace dip::core
