// Tests for the hashing substrate: the linear family of Theorem 3.2 and the
// distributed eps-almost-pairwise-independent hash of Section 4.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hash/eps_api.hpp"
#include "hash/linear_hash.hpp"
#include "util/bitio.hpp"
#include "util/mathutil.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::hash {
namespace {

using util::BigUInt;
using util::DynBitset;
using util::Rng;

LinearHashFamily smallFamily(std::uint64_t p, std::uint64_t n) {
  return LinearHashFamily(BigUInt{p}, n * n);
}

TEST(LinearHash, Linearity) {
  // Theorem 3.2 property (1): h(x + x') = h(x) + h(x') — verified on
  // disjoint matrix rows, which is exactly how the protocols use it.
  Rng rng(61);
  const std::uint64_t n = 8;
  LinearHashFamily family = makeProtocol1Family(n, rng);
  graph::Graph g = graph::randomConnected(n, 6, rng);

  BigUInt a = family.randomIndex(rng);
  BigUInt sumOfRowHashes;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> allEntries;
  for (graph::Vertex v = 0; v < n; ++v) {
    DynBitset closed = g.closedRow(v);
    sumOfRowHashes =
        util::addMod(sumOfRowHashes, family.hashMatrixRow(a, v, closed, n), family.prime());
    closed.forEachSet([&](std::size_t w) { allEntries.push_back({v * n + w, 1}); });
  }
  EXPECT_EQ(family.hashSparse(a, allEntries), sumOfRowHashes);
}

TEST(LinearHash, RowHashMatchesSparseHash) {
  Rng rng(62);
  const std::uint64_t n = 6;
  LinearHashFamily family = smallFamily(10007, n);
  DynBitset row(n);
  row.set(0);
  row.set(3);
  row.set(5);
  BigUInt a{1234};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries{
      {2 * n + 0, 1}, {2 * n + 3, 1}, {2 * n + 5, 1}};
  EXPECT_EQ(family.hashMatrixRow(a, 2, row, n), family.hashSparse(a, entries));
}

TEST(LinearHash, MatrixEntryWithCoefficient) {
  const std::uint64_t n = 5;
  LinearHashFamily family = smallFamily(101, n);
  BigUInt a{7};
  // coefficient * a^(position+1) mod p, position = 3*n+2 = 17.
  BigUInt expect = util::mulMod(util::powMod(a, BigUInt{18}, family.prime()),
                                BigUInt{4}, family.prime());
  EXPECT_EQ(family.hashMatrixEntry(a, 3, 2, 4, n), expect);
}

TEST(LinearHash, EmpiricalCollisionRateWithinBound) {
  // Theorem 3.2 property (2): Pr[h(x) = h(x')] <= m/p for x != x'.
  Rng rng(63);
  const std::uint64_t n = 6;
  const std::uint64_t m = n * n;
  LinearHashFamily family = smallFamily(4099, n);  // Prime ~ 4x the bound's 10n^3.

  std::size_t collisions = 0;
  const std::size_t trials = 4000;
  for (std::size_t t = 0; t < trials; ++t) {
    // Two distinct random sparse vectors.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> x1{{rng.nextBelow(m), 1}};
    std::vector<std::pair<std::uint64_t, std::uint64_t>> x2{{rng.nextBelow(m), 1}};
    if (x1 == x2) continue;
    BigUInt a = family.randomIndex(rng);
    if (family.hashSparse(a, x1) == family.hashSparse(a, x2)) ++collisions;
  }
  double rate = static_cast<double>(collisions) / trials;
  EXPECT_LE(rate, family.collisionBound() * 2.0 + 0.005);
}

TEST(LinearHash, Protocol1FamilyParameters) {
  Rng rng(64);
  for (std::size_t n : {4u, 16u, 64u}) {
    LinearHashFamily family = makeProtocol1Family(n, rng);
    BigUInt n3 = BigUInt::pow(BigUInt{n}, 3);
    EXPECT_GE(family.prime(), BigUInt{10} * n3);
    EXPECT_LE(family.prime(), BigUInt{100} * n3);
    EXPECT_EQ(family.dimension(), n * n);
    EXPECT_TRUE(util::isProbablePrime(family.prime(), rng));
    // Soundness headroom: m/p <= 1/(10 n) < 1/3.
    EXPECT_LT(family.collisionBound(), 1.0 / (10.0 * static_cast<double>(n)) + 1e-12);
  }
}

TEST(LinearHash, Protocol2FamilyParameters) {
  Rng rng(65);
  for (std::size_t n : {4u, 8u, 12u}) {
    LinearHashFamily family = makeProtocol2Family(n, rng);
    BigUInt nPow = BigUInt::pow(BigUInt{n}, n + 2);
    EXPECT_GE(family.prime(), BigUInt{10} * nPow);
    EXPECT_LE(family.prime(), BigUInt{100} * nPow);
    // Seed length is Theta(n log n): enough to union bound n^n mappings.
    EXPECT_GE(family.seedBits(), n);
  }
}

TEST(LinearHash, DistinctMatricesRarelyCollideUnderProtocolFamilies) {
  // End-to-end fingerprint property on real graphs: the fingerprints of
  // sum [v, N(v)] and sum [rho(v), rho(N(v))] for a non-automorphism rho
  // differ for almost every index.
  Rng rng(66);
  const std::size_t n = 8;
  LinearHashFamily family = makeProtocol1Family(n, rng);
  graph::Graph g = graph::randomRigidConnected(n, rng);
  graph::Permutation rho = graph::randomPermutation(n, rng);
  while (graph::isIdentity(rho)) rho = graph::randomPermutation(n, rng);

  std::size_t collisions = 0;
  const std::size_t trials = 300;
  for (std::size_t t = 0; t < trials; ++t) {
    BigUInt a = family.randomIndex(rng);
    BigUInt lhs, rhs;
    for (graph::Vertex v = 0; v < n; ++v) {
      lhs = util::addMod(lhs, family.hashMatrixRow(a, v, g.closedRow(v), n),
                         family.prime());
      rhs = util::addMod(
          rhs,
          family.hashMatrixRow(a, rho[v], graph::Graph::imageOf(g.closedRow(v), rho), n),
          family.prime());
    }
    if (lhs == rhs) ++collisions;
  }
  // Expected collision rate <= n^2/p ~ 1/80; 300 trials should see < 15.
  EXPECT_LT(collisions, 15u);
}

// ---- eps-API hash ----

TEST(EpsApi, ParametersAndEpsilon) {
  Rng rng(67);
  EpsApiHash h = EpsApiHash::create(6, 12, rng);
  EXPECT_EQ(h.n(), 6u);
  EXPECT_EQ(h.outputBits(), 12u);
  // P >= 2^ell * n^2 * 2^slack.
  EXPECT_GE(h.fieldPrime(), (BigUInt{1} << 12) * BigUInt{36} * BigUInt{128});
  EXPECT_LT(h.epsilonBound(), 0.1);
  EXPECT_TRUE(util::isProbablePrime(h.fieldPrime(), rng));
}

TEST(EpsApi, TreeCombineMatchesDirectHash) {
  // The recursive h(T_v) = f(h(T_u1), ..., I(v)) computation must agree
  // with hashing the whole matrix at once.
  Rng rng(68);
  const std::size_t n = 7;
  EpsApiHash h = EpsApiHash::create(n, 10, rng);
  graph::Graph g = graph::randomConnected(n, 5, rng);
  EpsApiHash::Seed seed = h.randomSeed(rng);

  std::vector<DynBitset> rows;
  for (graph::Vertex v = 0; v < n; ++v) rows.push_back(g.closedRow(v));

  BigUInt combined;
  for (graph::Vertex v = 0; v < n; ++v) {
    combined = h.combine(combined, h.innerRow(seed, v, rows[v]));
  }
  EXPECT_EQ(h.outer(seed, combined), h.hashRows(seed, rows));
}

TEST(EpsApi, PreparedPowersMatchDirect) {
  Rng rng(69);
  const std::size_t n = 6;
  EpsApiHash h = EpsApiHash::create(n, 11, rng);
  EpsApiHash::Seed seed = h.randomSeed(rng);
  EpsApiHash::PowerTable table = h.preparePowers(seed);
  graph::Graph g = graph::randomConnected(n, 4, rng);
  std::vector<DynBitset> rows;
  for (graph::Vertex v = 0; v < n; ++v) rows.push_back(g.closedRow(v));
  EXPECT_EQ(h.hashRowsPrepared(seed, table, rows), h.hashRows(seed, rows));
  for (graph::Vertex v = 0; v < n; ++v) {
    EXPECT_EQ(h.innerRowPrepared(table, v, rows[v]), h.innerRow(seed, v, rows[v]));
  }
}

TEST(EpsApi, OutputsInRange) {
  Rng rng(70);
  EpsApiHash h = EpsApiHash::create(5, 9, rng);
  BigUInt bound = BigUInt{1} << 9;
  for (int i = 0; i < 50; ++i) {
    EpsApiHash::Seed seed = h.randomSeed(rng);
    BigUInt value = h.outer(seed, rng.nextBigBelow(h.fieldPrime()));
    EXPECT_LT(value, bound);
  }
}

TEST(EpsApi, MarginalsNearUniform) {
  // Property (2) of eps-API (near-regularity): Pr[H(x) = y] ~ 2^-ell.
  Rng rng(71);
  const std::size_t n = 5;
  const std::size_t ell = 4;  // Small range so statistics converge fast.
  EpsApiHash h = EpsApiHash::create(n, ell, rng);
  graph::Graph g = graph::completeGraph(n);
  std::vector<DynBitset> rows;
  for (graph::Vertex v = 0; v < n; ++v) rows.push_back(g.closedRow(v));

  std::vector<std::size_t> histogram(1u << ell, 0);
  const std::size_t trials = 6000;
  for (std::size_t t = 0; t < trials; ++t) {
    EpsApiHash::Seed seed = h.randomSeed(rng);
    histogram[h.hashRows(seed, rows).toU64()] += 1;
  }
  const double expected = static_cast<double>(trials) / (1u << ell);
  for (std::size_t bucket = 0; bucket < histogram.size(); ++bucket) {
    EXPECT_GT(histogram[bucket], expected * 0.6) << "bucket " << bucket;
    EXPECT_LT(histogram[bucket], expected * 1.4) << "bucket " << bucket;
  }
}

TEST(EpsApi, PairwiseCollisionsNearUniform) {
  // The eps-API pairwise property, measured as a collision rate between two
  // fixed distinct matrices: should be ~ 2^-ell (1 + eps).
  Rng rng(72);
  const std::size_t n = 5;
  const std::size_t ell = 4;
  EpsApiHash h = EpsApiHash::create(n, ell, rng);
  graph::Graph g1 = graph::completeGraph(n);
  graph::Graph g2 = graph::cycleGraph(n);
  std::vector<DynBitset> rows1, rows2;
  for (graph::Vertex v = 0; v < n; ++v) {
    rows1.push_back(g1.closedRow(v));
    rows2.push_back(g2.closedRow(v));
  }

  std::size_t collisions = 0;
  const std::size_t trials = 8000;
  for (std::size_t t = 0; t < trials; ++t) {
    EpsApiHash::Seed seed = h.randomSeed(rng);
    if (h.hashRows(seed, rows1) == h.hashRows(seed, rows2)) ++collisions;
  }
  const double rate = static_cast<double>(collisions) / trials;
  const double ideal = 1.0 / (1u << ell);
  EXPECT_GT(rate, ideal * 0.5);
  EXPECT_LT(rate, ideal * (1.0 + h.epsilonBound()) * 1.6);
}

TEST(EpsApi, SeedBitsMatchTheorem) {
  // With ell = Theta(n log n), the seed is O(n log n) bits — the budget of
  // Theorem 1.5.
  Rng rng(73);
  for (std::size_t n : {4u, 6u, 8u}) {
    std::size_t ell = util::factorial(n).bitLength() + 2;
    EpsApiHash h = EpsApiHash::create(n, ell, rng);
    EXPECT_LE(h.seedBits(), 3 * (ell + 2 * util::BigUInt{n}.bitLength() + 9));
  }
}

}  // namespace
}  // namespace dip::hash
