// The fault-injection tier: kill, hang and delay a worker mid-range and
// require the folded TrialStats and per-trial outcome vectors to stay
// byte-identical to the single-process reference in EVERY scenario.
//
// Fault parameters are derived from counter-based child streams in the
// fuzz_seed.hpp style — each iteration prints a repro line naming
// (seed, trial), and replaying that pair reconstructs the exact FaultPlan.
//
// What each scenario certifies (asserted via the scheduler counters, not
// just the absence of divergence):
//   kill  — worker _exits mid-range: the coordinator sees EOF, re-issues
//           the dead worker's ranges (lastReissues > 0), the fold is
//           unaffected, and the fleet reports one fewer live worker.
//   hang  — worker stops making progress mid-range: heartbeat beacons
//           cease, the timeout marks it suspect, ranges re-issue.
//   delay — worker stalls past the timeout, is suspected, and then
//           DELIVERS its completion late into a still-running batch: the
//           exactly-once gate drops the duplicate (lastDuplicates > 0).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_seed.hpp"
#include "sim/distributed.hpp"
#include "sim/trial.hpp"
#include "sim/workload.hpp"

namespace dip::sim {
namespace {

constexpr std::uint64_t kFaultSeed = 0xFA017B01ull;
constexpr char kCell[] = "sym_dmam_p1";
// Small batch for the kill/hang scenarios; the delay scenario needs a batch
// long enough (hundreds of milliseconds of wall time) that the suspected
// worker's late completion is guaranteed to arrive while the run is still
// in flight, forcing the dedup path inside the live fold.
constexpr std::size_t kTrials = 48;
constexpr std::size_t kDelayTrials = 9000;

struct Reference {
  TrialStats stats;
  std::vector<TrialOutcome> outcomes;
};

const Reference& reference(std::size_t trials) {
  auto make = [](std::size_t n) {
    Reference r;
    TrialConfig config;
    config.threads = 1;
    r.stats = workload::makeCell(kCell)->run(config, n, &r.outcomes);
    return r;
  };
  static const Reference small = make(kTrials);
  static const Reference large = make(kDelayTrials);
  return trials == kTrials ? small : large;
}

// The faulty fleet shape: 2 workers, small grain and beacon interval so a
// fault always lands with ranges in flight, short timeout so the suspect
// path runs in test time. afterTrials is bounded well below the ~half of
// the batch a single worker executes, so the trigger ALWAYS fires, and is
// kept off the grain boundary so it interrupts a range.
DistributedConfig faultyConfig(FaultPlan::Kind kind, util::Rng& rng) {
  DistributedConfig dist;
  dist.workers = 2;
  dist.threadsPerWorker = 1;
  dist.maxOutstanding = 2;
  dist.graceMillis = 400;
  dist.fault.kind = kind;
  dist.fault.worker = rng.nextBelow(dist.workers);
  if (kind == FaultPlan::Kind::kDelay) {
    dist.grain = 64;
    dist.beaconTrials = 32;
    dist.timeoutMillis = 120;
    dist.fault.afterTrials = 1 + rng.nextBelow(60);
    // Longer than the heartbeat timeout (suspicion + re-issue happen), far
    // shorter than the batch's wall time (the late completion lands in-run).
    dist.fault.delayMillis = 250 + static_cast<unsigned>(rng.nextBelow(70));
  } else {
    dist.grain = 8;
    dist.beaconTrials = 4;
    dist.timeoutMillis = 150;
    dist.fault.afterTrials = 1 + rng.nextBelow(11);
  }
  if (dist.fault.afterTrials % dist.grain == 0) ++dist.fault.afterTrials;
  return dist;
}

struct ScenarioResult {
  TrialStats stats;
  std::vector<TrialOutcome> outcomes;
  unsigned liveAfter = 0;
  std::uint64_t reissues = 0;
  std::uint64_t duplicates = 0;
};

ScenarioResult runScenario(FaultPlan::Kind kind, std::uint64_t trial,
                           std::size_t trials) {
  util::Rng rng = testutil::fuzzStream(kFaultSeed, trial);
  const DistributedConfig dist = faultyConfig(kind, rng);
  DistributedRunner runner(TrialConfig{}, dist);
  ScenarioResult result;
  result.stats = runner.runCell(kCell, trials, &result.outcomes);
  result.liveAfter = runner.liveWorkers();
  result.reissues = runner.lastReissues();
  result.duplicates = runner.lastDuplicates();
  runner.shutdown();
  return result;
}

void expectByteIdentical(const ScenarioResult& result, std::size_t trials) {
  const Reference& ref = reference(trials);
  EXPECT_TRUE(result.stats.sameResults(ref.stats));
  EXPECT_EQ(result.outcomes, ref.outcomes);
}

TEST(distributed_fault, NoFaultBaseline) {
  SCOPED_TRACE(testutil::seedLine(kFaultSeed, 0));
  const ScenarioResult result = runScenario(FaultPlan::Kind::kNone, 0, kTrials);
  expectByteIdentical(result, kTrials);
  EXPECT_EQ(result.liveAfter, 2u);
  EXPECT_EQ(result.reissues, 0u);
  EXPECT_EQ(result.duplicates, 0u);
}

TEST(distributed_fault, KilledWorkerMidRangeFoldsIdentically) {
  // The dead worker's socket EOFs; its in-flight ranges re-issue to the
  // survivor. Three independent fault placements.
  for (std::uint64_t trial : {1u, 2u, 3u}) {
    SCOPED_TRACE(testutil::seedLine(kFaultSeed, trial));
    const ScenarioResult result = runScenario(FaultPlan::Kind::kKill, trial, kTrials);
    expectByteIdentical(result, kTrials);
    EXPECT_EQ(result.liveAfter, 1u);   // One corpse, one survivor.
    EXPECT_GE(result.reissues, 1u);    // Recovery actually ran.
  }
}

TEST(distributed_fault, HungWorkerMidRangeFoldsIdentically) {
  // Beacons stop, the heartbeat deadline fires, the worker is suspected
  // (not killed) and its ranges re-issue. It stays "live" — suspicion is
  // reversible — until shutdown force-reaps it.
  for (std::uint64_t trial : {4u, 5u}) {
    SCOPED_TRACE(testutil::seedLine(kFaultSeed, trial));
    const ScenarioResult result = runScenario(FaultPlan::Kind::kHang, trial, kTrials);
    expectByteIdentical(result, kTrials);
    EXPECT_EQ(result.liveAfter, 2u);
    EXPECT_GE(result.reissues, 1u);
  }
}

TEST(distributed_fault, DelayedWorkerTriggersDedupNotDoubleFold) {
  // The sharpest scenario: the suspected worker comes BACK and delivers a
  // completion for a range that was re-issued and already folded from the
  // other worker. accepts and digest double-count if the exactly-once gate
  // is broken; lastDuplicates proves the gate actually fired.
  for (std::uint64_t trial : {6u, 7u}) {
    SCOPED_TRACE(testutil::seedLine(kFaultSeed, trial));
    const ScenarioResult result =
        runScenario(FaultPlan::Kind::kDelay, trial, kDelayTrials);
    expectByteIdentical(result, kDelayTrials);
    EXPECT_EQ(result.liveAfter, 2u);   // Rehabilitated, not killed.
    EXPECT_GE(result.reissues, 1u);
    EXPECT_GE(result.duplicates, 1u);  // The late completion was deduped.
  }
}

TEST(distributed_fault, FaultPlansAreReproducible) {
  // The repro contract: replaying (seed, trial) reconstructs the plan.
  util::Rng a = testutil::fuzzStream(kFaultSeed, 6);
  util::Rng b = testutil::fuzzStream(kFaultSeed, 6);
  const DistributedConfig da = faultyConfig(FaultPlan::Kind::kDelay, a);
  const DistributedConfig db = faultyConfig(FaultPlan::Kind::kDelay, b);
  EXPECT_EQ(da.fault.worker, db.fault.worker);
  EXPECT_EQ(da.fault.afterTrials, db.fault.afterTrials);
  EXPECT_EQ(da.fault.delayMillis, db.fault.delayMillis);
}

}  // namespace
}  // namespace dip::sim
