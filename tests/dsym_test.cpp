// Tests for the DSym dAM protocol (Section 3.3) — the O(log n) side of the
// exponential separation of Theorem 1.2.
#include <gtest/gtest.h>

#include <memory>

#include "core/dsym_dam.hpp"
#include "net/spanning.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "pls/sym_lcp.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using graph::Graph;
using util::Rng;

DSymDamProtocol makeProtocol(const graph::DSymLayout& layout, std::uint64_t seed) {
  Rng rng(seed);
  return DSymDamProtocol(
      layout, hash::LinearHashFamily(
                  util::findPrimeInRange(
                      util::BigUInt{10} * util::BigUInt::pow(
                                              util::BigUInt{layout.numVertices}, 3),
                      util::BigUInt{100} * util::BigUInt::pow(
                                               util::BigUInt{layout.numVertices}, 3),
                      rng),
                  static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices));
}

TEST(DSymDam, CompletenessOnYesInstances) {
  Rng rng(121);
  for (std::size_t side : {4u, 6u, 8u}) {
    for (std::size_t radius : {1u, 2u}) {
      Graph f = graph::randomConnected(side, side / 2, rng);
      Graph g = graph::dsymInstance(f, radius);
      graph::DSymLayout layout = graph::dsymLayout(side, radius);
      DSymDamProtocol protocol = makeProtocol(layout, 300 + side * 10 + radius);
      HonestDSymProver prover(layout, protocol.family());
      EXPECT_TRUE(protocol.run(g, prover, rng).accepted)
          << "side=" << side << " radius=" << radius;
    }
  }
}

TEST(DSymDam, SoundnessOnMismatchedSides) {
  // NO-instance with intact structure but non-matching sides: only the
  // fingerprint equality can catch it, and it does (except with
  // probability <= N^2/p).
  Rng rng(122);
  const std::size_t side = 6;
  Graph f = graph::randomRigidConnected(side, rng);
  Graph fOther = graph::randomRigidConnected(side, rng);
  while (fOther == f) fOther = graph::randomRigidConnected(side, rng);
  Graph no = graph::dsymNoInstance(f, fOther, 1);
  graph::DSymLayout layout = graph::dsymLayout(side, 1);
  ASSERT_FALSE(graph::isDSymInstance(no, layout));

  DSymDamProtocol protocol = makeProtocol(layout, 400);
  AcceptanceStats stats = protocol.estimateAcceptance(
      no, [&] { return std::make_unique<CheatingDSymProver>(layout, protocol.family()); },
      300, rng);
  EXPECT_LT(stats.interval().low, 1.0 / 3.0);
  EXPECT_LT(stats.rate(), 0.1);
}

TEST(DSymDam, StructuralViolationsRejectedDeterministically) {
  // A stray cross edge breaks the purely-local structural check: zero
  // acceptance regardless of the prover.
  Rng rng(123);
  const std::size_t side = 5;
  Graph f = graph::randomConnected(side, 2, rng);
  Graph g = graph::dsymInstance(f, 1);
  g.addEdge(1, static_cast<graph::Vertex>(side + 2));  // Cross edge.
  graph::DSymLayout layout = graph::dsymLayout(side, 1);

  DSymDamProtocol protocol = makeProtocol(layout, 500);
  AcceptanceStats stats = protocol.estimateAcceptance(
      g, [&] { return std::make_unique<CheatingDSymProver>(layout, protocol.family()); },
      30, rng);
  EXPECT_EQ(stats.accepts, 0u);
}

TEST(DSymDam, BrokenPathRejected) {
  // Remove a path edge: the graph is disconnected, but more importantly the
  // path nodes' local checks fail. Build the broken graph directly.
  const std::size_t side = 4;
  Rng rng(124);
  Graph f = graph::randomConnected(side, 2, rng);
  graph::DSymLayout layout = graph::dsymLayout(side, 1);
  Graph g(layout.numVertices);
  // Copy everything EXCEPT one path edge from the genuine instance.
  Graph good = graph::dsymInstance(f, 1);
  for (graph::Vertex v = 0; v < good.numVertices(); ++v) {
    good.row(v).forEachSet([&](std::size_t u) {
      if (u > v && !(v == 2 * side && u == 2 * side + 1)) {
        g.addEdge(v, static_cast<graph::Vertex>(u));
      }
    });
  }
  bool someNodeRejects = false;
  for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
    if (!graph::dsymLocalStructureOk(g, layout, v)) someNodeRejects = true;
  }
  EXPECT_TRUE(someNodeRejects);
}

TEST(DSymDam, CostIsLogarithmic) {
  // The separation: DSym dAM costs O(log N) while any LCP needs Omega(N^2)
  // (Goos-Suomela); compare against our Theta(N^2) SymLCP baseline.
  std::size_t prev = 0;
  for (std::size_t side : {8u, 16u, 32u, 64u, 128u}) {
    graph::DSymLayout layout = graph::dsymLayout(side, 2);
    std::size_t cost = DSymDamProtocol::costModel(layout).totalPerNode();
    std::size_t lcpBits = pls::SymLcp::adviceBitsPerNode(layout.numVertices);
    EXPECT_LT(cost, lcpBits) << "side=" << side;
    if (side >= 32) {
      EXPECT_LT(cost * 10, lcpBits) << "side=" << side;  // >= 10x cheaper at scale.
    }
    if (prev) {
      EXPECT_LE(cost, prev + 40);
    }
    prev = cost;
  }
  // At side = 128 (N = 261): interactive ~ a few hundred bits, LCP ~ 68k.
  graph::DSymLayout big = graph::dsymLayout(128, 2);
  EXPECT_LT(DSymDamProtocol::costModel(big).totalPerNode(), 400u);
  EXPECT_GT(pls::SymLcp::adviceBitsPerNode(big.numVertices), 60000u);
}

TEST(DSymDam, AnyValidTreeAndRootAccepted) {
  // The prover is free to choose ANY root and spanning tree; the protocol
  // must accept every honest variant, not just the library prover's
  // root-0 BFS tree. Construct the messages by hand for other roots.
  Rng rng(126);
  const std::size_t side = 5;
  Graph f = graph::randomConnected(side, 2, rng);
  Graph g = graph::dsymInstance(f, 1);
  graph::DSymLayout layout = graph::dsymLayout(side, 1);
  DSymDamProtocol protocol = makeProtocol(layout, 700);
  const std::size_t n = layout.numVertices;

  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < n; ++v) {
    challenges.push_back(protocol.family().randomIndex(rng));
  }
  for (graph::Vertex root : {graph::Vertex{0}, graph::Vertex{3},
                             static_cast<graph::Vertex>(n - 1)}) {
    net::SpanningTreeAdvice tree = net::buildBfsTree(g, root);
    ChainValues chains = aggregateChains(g, protocol.family(), challenges[root],
                                         graph::dsymSigma(layout), tree);
    DSymMessage msg;
    msg.indexPerNode.assign(n, challenges[root]);
    msg.rootPerNode.assign(n, root);
    msg.parent = tree.parent;
    msg.dist = tree.dist;
    msg.a = chains.a;
    msg.b = chains.b;
    for (graph::Vertex v = 0; v < n; ++v) {
      EXPECT_TRUE(protocol.nodeDecision(g, v, msg, challenges[v]))
          << "root " << root << " node " << v;
    }
  }
}

TEST(DSymDam, MeasuredCostMatchesModel) {
  Rng rng(125);
  const std::size_t side = 6;
  Graph f = graph::randomConnected(side, 3, rng);
  Graph g = graph::dsymInstance(f, 2);
  graph::DSymLayout layout = graph::dsymLayout(side, 2);
  DSymDamProtocol protocol = makeProtocol(layout, 600);
  HonestDSymProver prover(layout, protocol.family());
  RunResult result = protocol.run(g, prover, rng);
  ASSERT_TRUE(result.accepted);
  CostBreakdown model = DSymDamProtocol::costModel(layout);
  EXPECT_LE(result.transcript.maxPerNodeBits(), model.totalPerNode());
  EXPECT_GE(result.transcript.maxPerNodeBits(), model.totalPerNode() / 2);
}

}  // namespace
}  // namespace dip::core
