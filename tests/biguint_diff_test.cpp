// Randomized differential suite: the 64-bit BigUInt engine against the
// frozen 32-bit reference implementation (biguint_ref), the same oracle
// pattern as findIsomorphismBacktracking for the graph layer. Every op runs
// thousands of random operand pairs through both engines and demands
// bit-identical results; the Karatsuba cases pin operand sizes to the
// threshold boundary where the schoolbook/Karatsuba dispatch switches.
//
// CI runs this suite under ASan/UBSan (full ctest) and TSan (the sanitizer
// preset's regex includes biguint_diff).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/biguint.hpp"
#include "util/biguint_ref.hpp"
#include "util/rng.hpp"

namespace dip::util {
namespace {

constexpr int kPairsPerOp = 10000;

// Hex is the bridge between the engines: both sides implement it
// independently, so a round-trip mismatch is itself a finding.
BigUInt toNew(const BigUIntRef& ref) { return BigUInt::fromHex(ref.toHex()); }
BigUIntRef toRef(const BigUInt& x) { return BigUIntRef::fromHex(x.toHex()); }

void expectMatch(const BigUInt& got, const BigUIntRef& want, const char* op) {
  EXPECT_EQ(got.toHex(), want.toHex()) << "op: " << op;
}

// A random value of random width in [0, maxBits], biased toward odd 32-bit
// limb counts so 64-bit packing sees half-full top limbs.
BigUIntRef randomRef(Rng& rng, std::size_t maxBits) {
  std::size_t bits = rng.nextBelow(maxBits + 1);
  std::vector<std::uint32_t> limbs((bits + 31) / 32);
  for (auto& limb : limbs) limb = static_cast<std::uint32_t>(rng.nextU64());
  if (!limbs.empty() && bits % 32 != 0) {
    limbs.back() &= (std::uint32_t{1} << (bits % 32)) - 1;
  }
  return BigUIntRef::fromLimbs(std::move(limbs));
}

// Exactly `limbs64` full 64-bit limbs with the top bit set.
BigUIntRef randomRefWithLimbs64(Rng& rng, std::size_t limbs64) {
  std::vector<std::uint32_t> limbs(limbs64 * 2);
  for (auto& limb : limbs) limb = static_cast<std::uint32_t>(rng.nextU64());
  if (!limbs.empty()) limbs.back() |= 0x80000000u;
  return BigUIntRef::fromLimbs(std::move(limbs));
}

TEST(biguint_diff, HexRoundTripAgrees) {
  Rng rng(0xD1FF001ull);
  for (int i = 0; i < kPairsPerOp; ++i) {
    BigUIntRef a = randomRef(rng, 1024);
    BigUInt converted = toNew(a);
    EXPECT_EQ(converted.toHex(), a.toHex());
    EXPECT_EQ(toRef(converted).toHex(), a.toHex());
  }
}

TEST(biguint_diff, DecimalRoundTripAgrees) {
  Rng rng(0xD1FF002ull);
  for (int i = 0; i < kPairsPerOp; ++i) {
    BigUIntRef a = randomRef(rng, 768);
    std::string decimal = a.toDecimal();
    EXPECT_EQ(toNew(a).toDecimal(), decimal);
    EXPECT_EQ(BigUInt::fromDecimal(decimal).toHex(), a.toHex());
  }
}

TEST(biguint_diff, AddSubMatchOracle) {
  Rng rng(0xD1FF003ull);
  for (int i = 0; i < kPairsPerOp; ++i) {
    BigUIntRef a = randomRef(rng, 1024);
    BigUIntRef b = randomRef(rng, 1024);
    expectMatch(toNew(a) + toNew(b), a + b, "+");
    const BigUIntRef& hi = a < b ? b : a;
    const BigUIntRef& lo = a < b ? a : b;
    expectMatch(toNew(hi) - toNew(lo), hi - lo, "-");
  }
}

TEST(biguint_diff, MulMatchesOracle) {
  Rng rng(0xD1FF004ull);
  for (int i = 0; i < kPairsPerOp; ++i) {
    // Mixed widths exercise the unbalanced chop path as well as the
    // balanced Karatsuba one.
    BigUIntRef a = randomRef(rng, 2048);
    BigUIntRef b = randomRef(rng, i % 3 == 0 ? 2048 : 512);
    expectMatch(toNew(a) * toNew(b), a * b, "*");
  }
}

TEST(biguint_diff, KaratsubaThresholdBoundary) {
  Rng rng(0xD1FF005ull);
  // k - 1, k, k + 1 limbs around the dispatch threshold, plus doubled sizes
  // so the recursion itself crosses the boundary. Both square and
  // rectangular shapes.
  const std::size_t k = BigUInt::kKaratsubaThresholdLimbs;
  const std::size_t sizes[] = {k - 1, k, k + 1, 2 * k - 1, 2 * k, 2 * k + 1};
  for (std::size_t an : sizes) {
    for (std::size_t bn : sizes) {
      for (int repeat = 0; repeat < 20; ++repeat) {
        BigUIntRef a = randomRefWithLimbs64(rng, an);
        BigUIntRef b = randomRefWithLimbs64(rng, bn);
        expectMatch(toNew(a) * toNew(b), a * b, "* (threshold)");
      }
    }
  }
}

TEST(biguint_diff, DivModMatchesOracle) {
  Rng rng(0xD1FF006ull);
  for (int i = 0; i < kPairsPerOp; ++i) {
    BigUIntRef a = randomRef(rng, 1536);
    BigUIntRef b = randomRef(rng, i % 4 == 0 ? 64 : 768);
    if (b.isZero()) b = BigUIntRef{1};
    DivModResult got = divMod(toNew(a), toNew(b));
    DivModResultRef want = refDivMod(a, b);
    expectMatch(got.quotient, want.quotient, "/");
    expectMatch(got.remainder, want.remainder, "%");
  }
}

TEST(biguint_diff, ShiftsMatchOracle) {
  Rng rng(0xD1FF007ull);
  for (int i = 0; i < kPairsPerOp; ++i) {
    BigUIntRef a = randomRef(rng, 1024);
    std::size_t shift = rng.nextBelow(200);
    expectMatch(toNew(a) << shift, a << shift, "<<");
    expectMatch(toNew(a) >> shift, a >> shift, ">>");
  }
}

TEST(biguint_diff, ModularOpsMatchOracle) {
  Rng rng(0xD1FF008ull);
  for (int i = 0; i < kPairsPerOp; ++i) {
    BigUIntRef m = randomRef(rng, 512);
    if (m < BigUIntRef{2}) m = BigUIntRef{2};
    BigUIntRef a = randomRef(rng, 512) % m;
    BigUIntRef b = randomRef(rng, 512) % m;
    expectMatch(addMod(toNew(a), toNew(b), toNew(m)), refAddMod(a, b, m), "addMod");
    expectMatch(subMod(toNew(a), toNew(b), toNew(m)), refSubMod(a, b, m), "subMod");
    expectMatch(mulMod(toNew(a), toNew(b), toNew(m)), refMulMod(a, b, m), "mulMod");
  }
}

TEST(biguint_diff, PowModMatchesNaiveOracle) {
  Rng rng(0xD1FF009ull);
  // powMod dispatches across three backends (u64 ladder, Montgomery,
  // Barrett); vary modulus width and parity to hit each one.
  for (int i = 0; i < 2000; ++i) {
    std::size_t mBits = i % 3 == 0 ? 48 : 320;
    BigUIntRef m = randomRef(rng, mBits);
    if (m < BigUIntRef{2}) m = BigUIntRef{2};
    BigUIntRef base = randomRef(rng, mBits);
    BigUIntRef exponent = randomRef(rng, 64);
    expectMatch(powMod(toNew(base), toNew(exponent), toNew(m)),
                refPowMod(base, exponent, m), "powMod");
  }
}

TEST(biguint_diff, ToDecimal4096BitLength) {
  // Chunked toDecimal regression: 2^4096 has exactly 1234 decimal digits
  // and round-trips; a dense 4096-bit value agrees with the oracle's
  // digit-at-a-time conversion (interior zero chunks must be padded).
  BigUInt big = BigUInt{1} << 4096;
  std::string decimal = big.toDecimal();
  EXPECT_EQ(decimal.size(), 1234u);
  EXPECT_EQ(BigUInt::fromDecimal(decimal).toHex(), big.toHex());

  Rng rng(0xD1FF00Aull);
  for (int i = 0; i < 20; ++i) {
    BigUIntRef dense = randomRefWithLimbs64(rng, 64);  // 4096 bits.
    EXPECT_EQ(toNew(dense).toDecimal(), dense.toDecimal());
  }
  // Values with long runs of zero limbs exercise the full-chunk zero
  // padding between the most significant chunk and the tail.
  BigUInt sparse = (BigUInt{1} << 4095) + BigUInt{7};
  EXPECT_EQ(BigUInt::fromDecimal(sparse.toDecimal()).toHex(), sparse.toHex());
}

}  // namespace
}  // namespace dip::util
