// Integration tests: end-to-end flows that cross module boundaries the way
// the experiments and examples do.
#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "core/dsym_dam.hpp"
#include "core/gni_amam.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "lb/census.hpp"
#include "lb/packing.hpp"
#include "pls/sym_lcp.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip {
namespace {

using util::Rng;

// The lower-bound family meets the upper-bound protocol: dumbbells G(F, F)
// are symmetric, so Protocol 1 proves them symmetric; dumbbells G(F, F')
// are rigid, so cheaters fail on them.
TEST(Integration, Protocol1OnLowerBoundDumbbells) {
  Rng rng(201);
  graph::Graph f1 = graph::randomRigidConnected(6, rng);
  graph::Graph f2 = graph::randomRigidConnected(6, rng);
  while (graph::areIsomorphic(f1, f2)) f2 = graph::randomRigidConnected(6, rng);

  graph::Graph same = graph::dumbbell(f1, f1);
  graph::Graph mixed = graph::dumbbell(f1, f2);
  const std::size_t n = same.numVertices();

  Rng setup(202);
  core::SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  core::HonestSymDmamProver honest(protocol.family());
  EXPECT_TRUE(protocol.run(same, honest, rng).accepted);

  int seed = 0;
  core::AcceptanceStats cheater = protocol.estimateAcceptance(
      mixed,
      [&] {
        return std::make_unique<core::CheatingRhoProver>(
            protocol.family(), core::CheatingRhoProver::Strategy::kRandomPermutation,
            seed++);
      },
      200, rng);
  EXPECT_LT(cheater.rate(), 0.05);
}

// The interactive protocol and the LCP baseline must AGREE on every
// instance (they decide the same language), while costing exponentially
// differently.
TEST(Integration, InteractiveAndLcpAgreeOnSym) {
  Rng rng(203);
  for (int trial = 0; trial < 6; ++trial) {
    bool makeSymmetric = trial % 2 == 0;
    graph::Graph g = makeSymmetric ? graph::randomSymmetricConnected(10, rng)
                                   : graph::randomRigidConnected(10, rng);
    // LCP verdict.
    auto advice = pls::SymLcp::honestAdvice(g);
    bool lcpAccepts =
        advice.has_value() &&
        pls::SymLcp::accepts(g, std::vector<pls::SymLcpAdvice>(10, *advice));
    // Interactive verdict (honest prover where possible).
    Rng setup(204 + trial);
    core::SymDmamProtocol protocol(hash::makeProtocol1Family(10, setup));
    bool interactiveAccepts = false;
    if (makeSymmetric) {
      core::HonestSymDmamProver prover(protocol.family());
      interactiveAccepts = protocol.run(g, prover, rng).accepted;
    }
    EXPECT_EQ(lcpAccepts, makeSymmetric);
    EXPECT_EQ(interactiveAccepts, makeSymmetric);
  }
}

// DSym instances are symmetric graphs, so they can ALSO be proven symmetric
// by the general Sym protocols (DSym's protocol is just cheaper).
TEST(Integration, DSymInstancesAreSymInstances) {
  Rng rng(205);
  graph::Graph f = graph::randomConnected(5, 3, rng);
  graph::Graph g = graph::dsymInstance(f, 1);
  const std::size_t n = g.numVertices();
  ASSERT_FALSE(graph::isRigid(g));

  Rng setup(206);
  core::SymDmamProtocol symProtocol(hash::makeProtocol1Family(n, setup));
  core::HonestSymDmamProver symProver(symProtocol.family());
  core::RunResult symRun = symProtocol.run(g, symProver, rng);
  EXPECT_TRUE(symRun.accepted);

  graph::DSymLayout layout = graph::dsymLayout(5, 1);
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{n}, 3);
  Rng setup2(207);
  core::DSymDamProtocol dsymProtocol(
      layout, hash::LinearHashFamily(
                  util::findPrimeInRange(util::BigUInt{10} * n3,
                                         util::BigUInt{100} * n3, setup2),
                  static_cast<std::uint64_t>(n) * n));
  core::HonestDSymProver dsymProver(layout, dsymProtocol.family());
  core::RunResult dsymRun = dsymProtocol.run(g, dsymProver, rng);
  EXPECT_TRUE(dsymRun.accepted);

  // Both succeed; DSym's specialized protocol is the cheaper one (it needs
  // no commitment round and no mapping broadcast).
  EXPECT_LE(dsymRun.transcript.maxPerNodeBits(), symRun.transcript.maxPerNodeBits());
}

// GNI ground truth chains through the graph engine: the GNI protocol's
// verdict agrees with isomorphism search on every generated instance.
TEST(Integration, GniVerdictMatchesGroundTruth) {
  Rng rng(208);
  Rng setup(209);
  core::GniParams params = core::GniParams::choose(6, setup);
  core::GniAmamProtocol protocol(params);

  for (int trial = 0; trial < 2; ++trial) {
    core::GniInstance yes = core::gniYesInstance(6, rng);
    core::GniInstance no = core::gniNoInstance(6, rng);
    ASSERT_FALSE(graph::areIsomorphic(yes.g0, yes.g1));
    ASSERT_TRUE(graph::areIsomorphic(no.g0, no.g1));
    // Per-round hit rates must be ordered correctly even on single
    // instances (ratio ~2 in expectation).
    auto yesHits = protocol.estimatePerRoundHit(yes, 80, rng);
    auto noHits = protocol.estimatePerRoundHit(no, 80, rng);
    EXPECT_GT(yesHits.rate() + 0.05, noHits.rate());
  }
}

// The census, the asymptotic family bound, and the packing curve must be
// mutually consistent where they overlap.
TEST(Integration, CensusAndPackingConsistent) {
  lb::CensusResult census6 = lb::exhaustiveCensus(6);
  // The exact |F(6)| = 8 is above the (loose, asymptotic) lower-bound
  // estimate only for larger n; sanity: both are finite and the packing
  // bound evaluated on the EXACT count is achievable.
  double exactLog2F = std::log2(static_cast<double>(census6.rigidClasses));
  EXPECT_GE(lb::lowerBoundBits(lb::log2FamilyLowerBound(64)), lb::lowerBoundBits(exactLog2F));
  // Packing capacity at L = 2 already covers |F(6)| (8 graphs): no
  // contradiction at tiny n — the bound only bites asymptotically.
  EXPECT_GT(lb::packingCapacityLog2(2), exactLog2F);
}

// Full pipeline determinism: identical seeds give identical transcripts and
// verdicts (the whole simulation is reproducible).
TEST(Integration, RunsAreDeterministic) {
  Rng setup(210);
  core::SymDmamProtocol protocol(hash::makeProtocol1Family(14, setup));
  Rng graphRng(211);
  graph::Graph g = graph::randomSymmetricConnected(14, graphRng);
  core::HonestSymDmamProver prover(protocol.family());

  Rng rng1(212), rng2(212);
  core::RunResult run1 = protocol.run(g, prover, rng1);
  core::RunResult run2 = protocol.run(g, prover, rng2);
  EXPECT_EQ(run1.accepted, run2.accepted);
  EXPECT_EQ(run1.transcript.maxPerNodeBits(), run2.transcript.maxPerNodeBits());
  EXPECT_EQ(run1.transcript.totalBits(), run2.transcript.totalBits());
}

// Cost-model cross-protocol sanity: on the same instance size, the paper's
// ordering dMAM < dAM < LCP holds for all n past the tiny regime.
TEST(Integration, CostOrderingAcrossProtocols) {
  for (std::size_t n : {32u, 64u, 256u, 1024u}) {
    std::size_t mam = core::SymDmamProtocol::costModel(n).totalPerNode();
    std::size_t am = core::SymDamProtocol::costModel(n).totalPerNode();
    std::size_t lcp = pls::SymLcp::adviceBitsPerNode(n);
    EXPECT_LT(mam, am) << n;
    EXPECT_LT(am, lcp) << n;
  }
}

}  // namespace
}  // namespace dip
