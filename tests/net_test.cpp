// Tests for the simulation substrate: transcripts, spanning-tree advice,
// broadcast consistency.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "net/spanning.hpp"
#include "net/transcript.hpp"
#include "util/rng.hpp"

namespace dip::net {
namespace {

TEST(Transcript, ChargesAccumulate) {
  Transcript transcript(3);
  transcript.beginRound("r1");
  transcript.chargeToProver(0, 10);
  transcript.chargeFromProver(0, 5);
  transcript.chargeFromProver(2, 7);
  EXPECT_EQ(transcript.perNode()[0].bitsToProver, 10u);
  EXPECT_EQ(transcript.perNode()[0].bitsFromProver, 5u);
  EXPECT_EQ(transcript.perNode()[1].total(), 0u);
  EXPECT_EQ(transcript.maxPerNodeBits(), 15u);
  EXPECT_EQ(transcript.totalBits(), 22u);
}

TEST(Transcript, BroadcastChargesEveryNode) {
  Transcript transcript(4);
  transcript.chargeBroadcastFromProver(9);
  for (const auto& cost : transcript.perNode()) {
    EXPECT_EQ(cost.bitsFromProver, 9u);
  }
  EXPECT_EQ(transcript.totalBits(), 36u);
}

TEST(Transcript, RoundSummariesTrackMax) {
  Transcript transcript(2);
  transcript.beginRound("first");
  transcript.chargeToProver(0, 3);
  transcript.chargeToProver(1, 8);
  transcript.beginRound("second");
  transcript.chargeFromProver(0, 2);
  ASSERT_EQ(transcript.rounds().size(), 2u);
  EXPECT_EQ(transcript.rounds()[0].label, "first");
  EXPECT_EQ(transcript.rounds()[0].maxBitsThisRound, 8u);
  EXPECT_EQ(transcript.rounds()[1].maxBitsThisRound, 2u);
}

TEST(Transcript, OutOfRangeVertexThrows) {
  Transcript transcript(2);
  EXPECT_THROW(transcript.chargeToProver(2, 1), std::out_of_range);
}

TEST(BroadcastConsistent, DetectsLocalDisagreement) {
  graph::Graph path = graph::pathGraph(4);
  std::vector<int> consistent{5, 5, 5, 5};
  auto allOk = broadcastConsistent(path, consistent);
  EXPECT_EQ(allOk, (std::vector<bool>{true, true, true, true}));

  std::vector<int> tampered{5, 5, 6, 6};
  auto decisions = broadcastConsistent(path, tampered);
  // The disagreement edge 1-2 makes both endpoints reject.
  EXPECT_TRUE(decisions[0]);
  EXPECT_FALSE(decisions[1]);
  EXPECT_FALSE(decisions[2]);
  EXPECT_TRUE(decisions[3]);
}

TEST(SpanningTree, BfsTreeIsValidEverywhere) {
  util::Rng rng(51);
  graph::Graph g = graph::randomConnected(20, 15, rng);
  SpanningTreeAdvice advice = buildBfsTree(g, 7);
  EXPECT_EQ(advice.root, 7u);
  EXPECT_EQ(advice.dist[7], 0u);
  for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
    EXPECT_TRUE(verifyTreeLocally(g, advice, v)) << "node " << v;
  }
}

TEST(SpanningTree, DisconnectedGraphThrows) {
  graph::Graph g(4);
  g.addEdge(0, 1);
  EXPECT_THROW(buildBfsTree(g, 0), std::invalid_argument);
}

TEST(SpanningTree, LocalCheckCatchesBadParent) {
  graph::Graph g = graph::pathGraph(4);
  SpanningTreeAdvice advice = buildBfsTree(g, 0);
  advice.parent[3] = 1;  // Not a neighbor of 3.
  EXPECT_FALSE(verifyTreeLocally(g, advice, 3));
}

TEST(SpanningTree, LocalCheckCatchesBadDistance) {
  graph::Graph g = graph::pathGraph(4);
  SpanningTreeAdvice advice = buildBfsTree(g, 0);
  advice.dist[2] = 5;  // Parent's distance is 1, not 4.
  EXPECT_FALSE(verifyTreeLocally(g, advice, 2));
  // And node 3's check also breaks (its parent 2 now has wrong distance).
  EXPECT_FALSE(verifyTreeLocally(g, advice, 3));
}

TEST(SpanningTree, LocalCheckCatchesBadRootDistance) {
  graph::Graph g = graph::pathGraph(3);
  SpanningTreeAdvice advice = buildBfsTree(g, 1);
  advice.dist[1] = 2;
  EXPECT_FALSE(verifyTreeLocally(g, advice, 1));
}

TEST(SpanningTree, ChildrenComputedFromClaims) {
  graph::Graph star = graph::starGraph(5);
  SpanningTreeAdvice advice = buildBfsTree(star, 0);
  auto children = childrenOf(star, advice, 0);
  EXPECT_EQ(children.size(), 4u);
  EXPECT_TRUE(childrenOf(star, advice, 1).empty());
}

TEST(SpanningTree, RootNeverCountedAsChild) {
  // Even if a cheating prover points the root's parent entry at a
  // neighbor, the root must not appear in any children set (its parent
  // entry is meaningless — Lemma 3.3 builds the tree from non-root edges).
  graph::Graph path = graph::pathGraph(3);
  SpanningTreeAdvice advice = buildBfsTree(path, 0);
  advice.parent[0] = 1;  // Adversarial: root claims parent 1.
  auto children = childrenOf(path, advice, 1);
  EXPECT_TRUE(std::find(children.begin(), children.end(), 0u) == children.end());
}

TEST(SpanningTree, BottomUpOrderLeavesFirst) {
  graph::Graph path = graph::pathGraph(5);
  SpanningTreeAdvice advice = buildBfsTree(path, 0);
  auto order = bottomUpOrder(advice);
  // Distances decrease along the order.
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_GE(advice.dist[order[i]], advice.dist[order[i + 1]]);
  }
  EXPECT_EQ(order.back(), 0u);
}

}  // namespace
}  // namespace dip::net
