// Pins every classic cheating strategy (src/adv/classic_cheaters.*) under
// its paper bound: committed-rho cheaters on Protocol 1 succeed at most at
// the collision rate n^2/p <= 1/(10 n), structural liars are caught every
// single time, and the representative cheater for each remaining protocol
// stays under the 1/3 soundness error. The E7 bench prints these same
// sweeps; this test makes the bounds a regression gate rather than a table
// someone has to eyeball.
//
// The measured-rate assertion is rate() <= bound, not a Wilson-interval
// containment: a 0/200 cell has Wilson upper ~0.019, above the 1/80
// collision bound for n=8, so interval containment would reject perfectly
// sound rows. (The interval-based certification lives in the E14 mutation
// stress, whose per-protocol trial counts give it room against 1/3.)
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "adv/classic_cheaters.hpp"

namespace dip::adv {
namespace {

sim::TrialConfig testEngine() {
  sim::TrialConfig engine;
  engine.threads = 0;  // Results are thread-count invariant by construction.
  return engine;
}

void expectCellSound(const CheaterCell& cell) {
  SCOPED_TRACE(cell.protocol + " / " + cell.strategy);
  ASSERT_GT(cell.stats.trials, 0u);
  if (cell.exactCatch) {
    EXPECT_EQ(cell.stats.accepts, 0u)
        << "structural lie must be caught deterministically";
  } else {
    EXPECT_GT(cell.bound, 0.0);
    EXPECT_LE(cell.stats.rate(), cell.bound);
  }
}

TEST(ClassicCheaters, Protocol1SweepStaysUnderCollisionBound) {
  auto cells = protocol1CheaterSweep(testEngine());
  ASSERT_EQ(cells.size(), 8u);  // 3 rho strategies x {8,16} + chain liar x 2.
  int exact = 0;
  for (const CheaterCell& cell : cells) {
    EXPECT_EQ(cell.protocol, "sym_dmam");
    expectCellSound(cell);
    if (cell.exactCatch) ++exact;
  }
  EXPECT_EQ(exact, 2);  // The chain-value liar rows, one per n.
}

TEST(ClassicCheaters, CrossProtocolSweepStaysUnderSoundnessError) {
  auto cells = crossProtocolCheaterSweep(testEngine());
  ASSERT_FALSE(cells.empty());
  std::set<std::string> protocols;
  for (const CheaterCell& cell : cells) {
    protocols.insert(cell.protocol);
    expectCellSound(cell);
    if (!cell.exactCatch) {
      EXPECT_LE(cell.bound, 1.0 / 3.0 + 1e-12);
    }
  }
  // Every non-Protocol-1 protocol has at least one representative cheater.
  for (const char* protocol :
       {"sym_dam", "dsym_dam", "sym_input", "gni_amam", "gni_general"}) {
    EXPECT_TRUE(protocols.count(protocol)) << protocol;
  }
}

TEST(ClassicCheaters, SweepsAreDeterministicAcrossThreadCounts) {
  sim::TrialConfig one;
  one.threads = 1;
  sim::TrialConfig four;
  four.threads = 4;
  auto a = protocol1CheaterSweep(one);
  auto b = protocol1CheaterSweep(four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].stats.sameResults(b[i].stats))
        << a[i].protocol << " / " << a[i].strategy;
  }
}

}  // namespace
}  // namespace dip::adv
