// Tests for the lower-bound machinery (Section 3.4): the rigid-family
// census, the packing inequality, and the simple-protocol analyzer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "lb/census.hpp"
#include "lb/packing.hpp"
#include "lb/simple_protocol.hpp"
#include "util/rng.hpp"

namespace dip::lb {
namespace {

TEST(Census, KnownIsomorphismClassCounts) {
  // OEIS A000088: 1, 2, 4, 11, 34, 156 isomorphism classes for n = 1..6.
  EXPECT_EQ(exhaustiveCensus(1).isoClasses, 1u);
  EXPECT_EQ(exhaustiveCensus(2).isoClasses, 2u);
  EXPECT_EQ(exhaustiveCensus(3).isoClasses, 4u);
  EXPECT_EQ(exhaustiveCensus(4).isoClasses, 11u);
  EXPECT_EQ(exhaustiveCensus(5).isoClasses, 34u);
  EXPECT_EQ(exhaustiveCensus(6).isoClasses, 156u);
}

TEST(Census, RigidFamilyEmptyBelowSix) {
  for (std::size_t n = 2; n <= 5; ++n) {
    CensusResult census = exhaustiveCensus(n);
    EXPECT_EQ(census.labeledRigid, 0u) << n;
    EXPECT_EQ(census.rigidClasses, 0u) << n;
  }
}

TEST(Census, RigidFamilyAtSix) {
  // The classical count: exactly 8 asymmetric graphs on 6 vertices
  // (A003400), i.e. |F(6)| = 8 and 8 * 6! = 5760 labeled rigid graphs.
  CensusResult census = exhaustiveCensus(6);
  EXPECT_EQ(census.labeledGraphs, 32768u);
  EXPECT_EQ(census.rigidClasses, 8u);
  EXPECT_EQ(census.labeledRigid, 8u * 720u);
}

TEST(Census, RigidFamilyAtSeven) {
  // n = 7: 1044 isomorphism classes (A000088), 152 of them asymmetric
  // (A003400), so 152 * 7! = 766080 labeled rigid graphs out of 2^21.
  CensusResult census = exhaustiveCensus(7);
  EXPECT_EQ(census.labeledGraphs, 1u << 21);
  EXPECT_EQ(census.isoClasses, 1044u);
  EXPECT_EQ(census.rigidClasses, 152u);
  EXPECT_EQ(census.labeledRigid, 766080u);
}

TEST(Census, ResultIndependentOfThreadCount) {
  // The determinism contract: identical results at every pool size.
  CensusResult serial = exhaustiveCensus(6, 1);
  for (unsigned threads : {2u, 3u, 4u, 8u}) {
    CensusResult parallel = exhaustiveCensus(6, threads);
    EXPECT_EQ(parallel.labeledGraphs, serial.labeledGraphs) << threads;
    EXPECT_EQ(parallel.labeledRigid, serial.labeledRigid) << threads;
    EXPECT_EQ(parallel.rigidClasses, serial.rigidClasses) << threads;
    EXPECT_EQ(parallel.isoClasses, serial.isoClasses) << threads;
  }
}

TEST(Census, RigidFamilyAtEight) {
  // Extended tier: 2^28 labeled graphs. ~40 s single-threaded; opt in with
  // DIP_CENSUS8=1 (the E4 benchmark mirrors this gate).
  if (std::getenv("DIP_CENSUS8") == nullptr) {
    GTEST_SKIP() << "set DIP_CENSUS8=1 to run the n = 8 census";
  }
  CensusResult census = exhaustiveCensus(8);
  EXPECT_EQ(census.labeledGraphs, 1u << 28);
  EXPECT_EQ(census.isoClasses, 12346u);           // OEIS A000088.
  EXPECT_EQ(census.labeledRigid % 40320u, 0u);    // Rigid orbits have size 8!.
  EXPECT_EQ(census.rigidClasses, 3696u);          // OEIS A003400.
}

TEST(Census, OrbitCountingConsistency) {
  // Burnside bookkeeping: labeledRigid must be divisible by n!, and rigid
  // classes can never exceed all classes.
  for (std::size_t n : {4u, 5u, 6u}) {
    CensusResult census = exhaustiveCensus(n);
    std::uint64_t fact = 1;
    for (std::size_t i = 2; i <= n; ++i) fact *= i;
    EXPECT_EQ(census.labeledRigid % fact, 0u);
    EXPECT_LE(census.rigidClasses, census.isoClasses);
  }
}

TEST(Census, AsymptoticLowerBoundIsSane) {
  // log2 |F(n)| ~ n(n-1)/2 - log2(n!): positive and superlinear from n = 7.
  EXPECT_GT(log2FamilyLowerBound(7), 8.0);
  EXPECT_GT(log2FamilyLowerBound(16), 70.0);
  // Quadratic growth dominates.
  EXPECT_GT(log2FamilyLowerBound(64) / log2FamilyLowerBound(32), 3.0);
}

TEST(Packing, CapacityMatchesFormula) {
  // 5^(2^(2^L)) for L = 1: 5^4; L = 2: 5^16.
  EXPECT_NEAR(packingCapacityLog2(1), 4.0 * std::log2(5.0), 1e-9);
  EXPECT_NEAR(packingCapacityLog2(2), 16.0 * std::log2(5.0), 1e-9);
}

TEST(Packing, LowerBoundMonotoneAndLogLog) {
  // The bound grows, and it grows like log log n: doubling n adds o(1).
  double prev = 0.0;
  for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    double bound = lowerBoundBits(log2FamilyLowerBound(n));
    EXPECT_GE(bound, prev);
    prev = bound;
  }
  // Against the trivial check: the bound is tiny but non-zero at scale —
  // the signature of log log n.
  EXPECT_GT(lowerBoundBits(log2FamilyLowerBound(1u << 14)), 0.4);
  EXPECT_LT(lowerBoundBits(log2FamilyLowerBound(1u << 14)), 3.0);
}

TEST(Packing, ConsistencyWithCapacity) {
  // At the returned bound L*, the capacity at 4 L* must cover the family
  // (the inequality direction the derivation inverted).
  for (std::size_t n : {64u, 1024u}) {
    double logF = log2FamilyLowerBound(n);
    double bound = lowerBoundBits(logF);
    EXPECT_GE(packingCapacityLog2(static_cast<std::size_t>(std::ceil(4.0 * bound)) + 1),
              logF);
  }
}

TEST(Packing, CurveEmitsAllPoints) {
  auto curve = packingCurve({8, 16, 32});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve[0].n, 8u);
  EXPECT_LT(curve[0].lowerBound, curve[2].lowerBound + 1e-9);
}

// ---- Simple-protocol analyzer ----

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(161);
    // Two tiny sides (k = 2): dumbbell has 6 nodes — exhaustive analysis
    // is instant.
    fPath_ = graph::pathGraph(2);   // Single edge.
    fEmpty_ = graph::Graph(2);      // No edge.
    layout_ = graph::dumbbellLayout(2);
  }
  graph::Graph fPath_{2};
  graph::Graph fEmpty_{2};
  graph::DumbbellLayout layout_;
};

TEST_F(AnalyzerTest, FreeProtocolAcceptsEverything) {
  SimpleProtocolAnalyzer analyzer(freeToyProtocol(), layout_);
  graph::Graph dumbbell = graph::dumbbell(fPath_, fPath_);
  EXPECT_DOUBLE_EQ(analyzer.bestProverAcceptance(dumbbell), 1.0);
  EXPECT_DOUBLE_EQ(analyzer.intersectionProbability(dumbbell), 1.0);
  // All response sets are the full set {0, 1} -> bitmask 0b11.
  auto mu = analyzer.responseSetDistribution(dumbbell, true);
  ASSERT_EQ(mu.size(), 1u);
  EXPECT_EQ(mu.begin()->first, 0b11u);
  EXPECT_DOUBLE_EQ(mu.begin()->second, 1.0);
}

TEST_F(AnalyzerTest, Lemma39IdentityHoldsForParityToy) {
  // Lemma 3.9: best-prover acceptance == Pr[M_A and M_B intersect], for
  // every dumbbell — verified by two INDEPENDENT exhaustive computations.
  SimpleProtocolAnalyzer analyzer(parityToyProtocol(), layout_);
  for (const auto& [fa, fb] : {std::pair{&fPath_, &fPath_}, {&fPath_, &fEmpty_},
                               {&fEmpty_, &fEmpty_}}) {
    graph::Graph dumbbell = graph::dumbbell(*fa, *fb);
    EXPECT_NEAR(analyzer.bestProverAcceptance(dumbbell),
                analyzer.intersectionProbability(dumbbell), 1e-12);
  }
}

TEST_F(AnalyzerTest, ResponseSetsDependOnlyOnOwnSide) {
  // Lemma 3.8's separation: side A's achievable set is the same whether
  // the other side is F or F' (for a shared challenge restriction) —
  // checked here distributionally: mu_A over G(F, F) equals mu_A over
  // G(F, F') because the A side is identical.
  SimpleProtocolAnalyzer analyzer(parityToyProtocol(), layout_);
  auto muSame = analyzer.responseSetDistribution(graph::dumbbell(fPath_, fPath_), true);
  auto muMixed = analyzer.responseSetDistribution(graph::dumbbell(fPath_, fEmpty_), true);
  EXPECT_LT(SimpleProtocolAnalyzer::l1Distance(muSame, muMixed), 1e-12);
}

TEST_F(AnalyzerTest, DistributionsDifferAcrossSides) {
  // Different F on the A side gives a different mu_A for the parity toy.
  SimpleProtocolAnalyzer analyzer(parityToyProtocol(), layout_);
  auto muPath = analyzer.responseSetDistribution(graph::dumbbell(fPath_, fPath_), true);
  auto muEmpty = analyzer.responseSetDistribution(graph::dumbbell(fEmpty_, fEmpty_), true);
  EXPECT_GT(SimpleProtocolAnalyzer::l1Distance(muPath, muEmpty), 0.0);
}

TEST_F(AnalyzerTest, L1DistanceProperties) {
  ResponseSetDistribution mu1{{0b01, 0.5}, {0b10, 0.5}};
  ResponseSetDistribution mu2{{0b01, 0.25}, {0b11, 0.75}};
  EXPECT_DOUBLE_EQ(SimpleProtocolAnalyzer::l1Distance(mu1, mu1), 0.0);
  EXPECT_DOUBLE_EQ(SimpleProtocolAnalyzer::l1Distance(mu1, mu2),
                   0.25 + 0.5 + 0.75);  // |.5-.25| + |.5-0| + |0-.75|
  EXPECT_DOUBLE_EQ(SimpleProtocolAnalyzer::l1Distance(mu1, mu2),
                   SimpleProtocolAnalyzer::l1Distance(mu2, mu1));
}

TEST(PackingGeometry, Lemma312BallPacking) {
  // Numeric spot-check of Lemma 3.12: greedily pack distributions on [d]
  // that are pairwise > 1/2 apart in L1; the count must stay below 5^d.
  // (For d = 2 the true max is small; the bound is 25.)
  std::vector<std::vector<double>> packed;
  util::Rng rng(162);
  for (int attempt = 0; attempt < 20000; ++attempt) {
    double p = static_cast<double>(rng.nextBelow(1001)) / 1000.0;
    std::vector<double> candidate{p, 1.0 - p};
    bool farFromAll = true;
    for (const auto& other : packed) {
      double dist = std::abs(candidate[0] - other[0]) + std::abs(candidate[1] - other[1]);
      if (dist <= 0.5) {
        farFromAll = false;
        break;
      }
    }
    if (farFromAll) packed.push_back(candidate);
  }
  EXPECT_LE(packed.size(), 25u);  // 5^2.
  EXPECT_GE(packed.size(), 3u);   // Non-degenerate packing found.
}

}  // namespace
}  // namespace dip::lb
