// Property-based round-trip tests for every wire codec: a random VALID
// message must satisfy encode -> decode -> encode with byte-identical
// payloads and an unchanged bitsForNode() profile. This is the invariant
// the adversary engine's field surfaces lean on (decode -> tweak ->
// re-encode must not smuggle bits in or out), and the invariant the
// DIP_AUDIT charge cross-checks assume when re-encoding decoded mutants.
//
// Linear-hash protocol messages are drawn field-by-field at full encoded
// width (ids possibly >= n, values possibly >= p: the codec must carry
// them; rejecting is the decision layer's job). GNI messages are generated
// by the honest provers on fresh random challenges — their shape constraints
// (claim vectors sized by closed neighborhoods, per-repetition flags) make
// the prover the natural random-valid-message generator.
// Every iteration draws from a counter-based child stream (fuzz_seed.hpp).
#include <gtest/gtest.h>

#include <algorithm>

#include <vector>

#include "core/dsym_dam.hpp"
#include "core/gni_amam.hpp"
#include "core/gni_general.hpp"
#include "core/gni_general_wire.hpp"
#include "core/gni_wire.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "core/sym_input.hpp"
#include "core/sym_input_wire.hpp"
#include "core/wire.hpp"
#include "fuzz_seed.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "util/bitio.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using testutil::fuzzStream;
using testutil::seedLine;
using util::Rng;

void expectRoundsIdentical(const wire::EncodedRound& a, const wire::EncodedRound& b) {
  ASSERT_EQ(a.unicast.size(), b.unicast.size());
  EXPECT_EQ(a.broadcast.bitCount(), b.broadcast.bitCount());
  EXPECT_TRUE(std::ranges::equal(a.broadcast.bytes(), b.broadcast.bytes()));
  for (graph::Vertex v = 0; v < a.unicast.size(); ++v) {
    EXPECT_EQ(a.unicast[v].bitCount(), b.unicast[v].bitCount()) << "node " << v;
    EXPECT_TRUE(std::ranges::equal(a.unicast[v].bytes(), b.unicast[v].bytes()))
        << "node " << v;
    EXPECT_EQ(a.bitsForNode(v), b.bitsForNode(v)) << "node " << v;
  }
}

std::vector<graph::Vertex> randomIds(Rng& rng, std::size_t count, unsigned idBits) {
  std::vector<graph::Vertex> ids(count);
  for (auto& id : ids) id = static_cast<graph::Vertex>(rng.nextBits(idBits));
  return ids;
}

std::vector<util::BigUInt> randomBigs(Rng& rng, std::size_t count, std::size_t bits) {
  std::vector<util::BigUInt> values(count);
  for (auto& value : values) value = rng.nextBigBits(bits);
  return values;
}

class WireRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    n_ = 9;
    family_ = hash::makeProtocol1FamilyCached(n_);
    idBits_ = util::bitsFor(n_);
  }
  std::size_t n_ = 0;
  unsigned idBits_ = 0;
  hash::LinearHashFamily family_;
};

TEST_F(WireRoundTrip, SymDmamFirst) {
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE(seedLine(401, trial));
    Rng rng = fuzzStream(401, trial);
    SymDmamFirstMessage msg;
    msg.rootPerNode.assign(n_, static_cast<graph::Vertex>(rng.nextBits(idBits_)));
    msg.rho = randomIds(rng, n_, idBits_);
    msg.parent = randomIds(rng, n_, idBits_);
    msg.dist.assign(n_, 0);
    for (auto& d : msg.dist) d = static_cast<std::uint32_t>(rng.nextBits(idBits_));
    wire::EncodedRound first = wire::encodeSymDmamFirst(msg, n_);
    SymDmamFirstMessage decoded = wire::decodeSymDmamFirst(first, n_);
    expectRoundsIdentical(first, wire::encodeSymDmamFirst(decoded, n_));
  }
}

TEST_F(WireRoundTrip, SymDmamSecond) {
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE(seedLine(402, trial));
    Rng rng = fuzzStream(402, trial);
    SymDmamSecondMessage msg;
    msg.indexPerNode.assign(n_, rng.nextBigBits(family_.seedBits()));
    msg.a = randomBigs(rng, n_, family_.valueBits());
    msg.b = randomBigs(rng, n_, family_.valueBits());
    wire::EncodedRound round = wire::encodeSymDmamSecond(msg, n_, family_);
    SymDmamSecondMessage decoded = wire::decodeSymDmamSecond(round, n_, family_);
    expectRoundsIdentical(round, wire::encodeSymDmamSecond(decoded, n_, family_));
  }
}

TEST_F(WireRoundTrip, SymDam) {
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE(seedLine(403, trial));
    Rng rng = fuzzStream(403, trial);
    SymDamMessage msg;
    msg.rhoPerNode.assign(n_, randomIds(rng, n_, idBits_));
    msg.indexPerNode.assign(n_, rng.nextBigBits(family_.seedBits()));
    msg.rootPerNode.assign(n_, static_cast<graph::Vertex>(rng.nextBits(idBits_)));
    msg.parent = randomIds(rng, n_, idBits_);
    msg.dist.assign(n_, 0);
    for (auto& d : msg.dist) d = static_cast<std::uint32_t>(rng.nextBits(idBits_));
    msg.a = randomBigs(rng, n_, family_.valueBits());
    msg.b = randomBigs(rng, n_, family_.valueBits());
    wire::EncodedRound round = wire::encodeSymDam(msg, n_, family_);
    SymDamMessage decoded = wire::decodeSymDam(round, n_, family_);
    expectRoundsIdentical(round, wire::encodeSymDam(decoded, n_, family_));
  }
}

TEST_F(WireRoundTrip, DSym) {
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE(seedLine(404, trial));
    Rng rng = fuzzStream(404, trial);
    DSymMessage msg;
    msg.indexPerNode.assign(n_, rng.nextBigBits(family_.seedBits()));
    msg.rootPerNode.assign(n_, static_cast<graph::Vertex>(rng.nextBits(idBits_)));
    msg.parent = randomIds(rng, n_, idBits_);
    msg.dist.assign(n_, 0);
    for (auto& d : msg.dist) d = static_cast<std::uint32_t>(rng.nextBits(idBits_));
    msg.a = randomBigs(rng, n_, family_.valueBits());
    msg.b = randomBigs(rng, n_, family_.valueBits());
    wire::EncodedRound round = wire::encodeDSym(msg, n_, family_);
    DSymMessage decoded = wire::decodeDSym(round, n_, family_);
    expectRoundsIdentical(round, wire::encodeDSym(decoded, n_, family_));
  }
}

TEST_F(WireRoundTrip, Challenge) {
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE(seedLine(405, trial));
    Rng rng = fuzzStream(405, trial);
    util::BigUInt index = rng.nextBigBits(family_.seedBits());
    util::BitWriter encoded = wire::encodeChallenge(index, family_);
    util::BigUInt decoded = wire::decodeChallenge(encoded, family_);
    util::BitWriter reencoded = wire::encodeChallenge(decoded, family_);
    EXPECT_EQ(encoded.bitCount(), reencoded.bitCount());
    EXPECT_TRUE(std::ranges::equal(encoded.bytes(), reencoded.bytes()));
  }
}

TEST_F(WireRoundTrip, SymInputFirstAndSecond) {
  Rng instanceRng(406);
  SymInputInstance instance{graph::randomConnected(n_, n_ / 2, instanceRng),
                            graph::randomRigidConnected(n_, instanceRng)};
  for (std::uint64_t trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE(seedLine(407, trial));
    Rng rng = fuzzStream(407, trial);
    SymInputFirstMessage first;
    first.witnessPerNode.assign(n_, static_cast<graph::Vertex>(rng.nextBits(idBits_)));
    first.rho = randomIds(rng, n_, idBits_);
    first.parent = randomIds(rng, n_, idBits_);
    first.dist.assign(n_, 0);
    for (auto& d : first.dist) d = static_cast<std::uint32_t>(rng.nextBits(idBits_));
    first.claims.resize(n_);
    for (graph::Vertex v = 0; v < n_; ++v) {
      first.claims[v] =
          randomIds(rng, instance.input.closedNeighbors(v).size(), idBits_);
    }
    wire::EncodedRound round1 = wire::encodeSymInputFirst(first, instance);
    SymInputFirstMessage decoded1 = wire::decodeSymInputFirst(round1, instance);
    expectRoundsIdentical(round1, wire::encodeSymInputFirst(decoded1, instance));

    SymInputSecondMessage second;
    second.indexPerNode.assign(n_, rng.nextBigBits(family_.seedBits()));
    second.a = randomBigs(rng, n_, family_.valueBits());
    second.b = randomBigs(rng, n_, family_.valueBits());
    second.consC = randomBigs(rng, n_, family_.valueBits());
    second.consT = randomBigs(rng, n_, family_.valueBits());
    wire::EncodedRound round2 = wire::encodeSymInputSecond(second, n_, family_);
    SymInputSecondMessage decoded2 = wire::decodeSymInputSecond(round2, n_, family_);
    expectRoundsIdentical(round2, wire::encodeSymInputSecond(decoded2, n_, family_));
  }
}

// GNI message shapes (claim vectors sized per closed neighborhood, flags
// gating which fields hit the wire) come from the honest prover; challenge
// randomness varies per trial, so claimed/b flag patterns vary too.
TEST(WireRoundTripGni, FirstAndSecond) {
  const std::size_t n = 6;
  Rng setup(408);
  GniParams params = GniParams::choose(n, setup);
  GniInstance yes = gniYesInstance(n, setup);
  GniInstance no = gniNoInstance(n, setup);
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE(seedLine(409, trial));
    Rng rng = fuzzStream(409, trial);
    const GniInstance& instance = (trial % 2 == 0) ? yes : no;
    std::vector<std::vector<GniChallenge>> challenges(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      for (std::size_t j = 0; j < params.repetitions; ++j) {
        GniChallenge challenge;
        challenge.seed = params.gsHash.randomSeed(rng);
        challenge.y = rng.nextBigBits(params.ell);
        challenges[v].push_back(challenge);
      }
    }
    HonestGniProver prover(params);
    GniFirstMessage first = prover.firstMessage(instance, challenges);
    wire::EncodedRound round1 = wire::encodeGniFirst(first, instance, params);
    GniFirstMessage decoded1 = wire::decodeGniFirst(round1, instance, params);
    expectRoundsIdentical(round1, wire::encodeGniFirst(decoded1, instance, params));

    std::vector<util::BigUInt> checkChallenges;
    for (graph::Vertex v = 0; v < n; ++v) {
      checkChallenges.push_back(params.checkFamily.randomIndex(rng));
    }
    GniSecondMessage second =
        prover.secondMessage(instance, challenges, first, checkChallenges);
    wire::EncodedRound round2 = wire::encodeGniSecond(second, first, instance, params);
    GniSecondMessage decoded2 = wire::decodeGniSecond(round2, first, instance, params);
    expectRoundsIdentical(round2,
                          wire::encodeGniSecond(decoded2, first, instance, params));
  }
}

TEST(WireRoundTripGni, GeneralFirstAndSecond) {
  const std::size_t n = 4;
  Rng setup(410);
  GniGeneralParams params = GniGeneralParams::choose(n, setup);
  // n = 4 admits no rigid graph, so there is no YES (non-isomorphic
  // symmetric) instance at this size; the isomorphic instance exercises the
  // same wire paths, with the claimed/b flag pattern varying per trial.
  GniInstance no = gniGeneralNoInstance(n, setup);
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE(seedLine(411, trial));
    Rng rng = fuzzStream(411, trial);
    const GniInstance& instance = no;
    std::vector<std::vector<GniChallenge>> challenges(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      for (std::size_t j = 0; j < params.repetitions; ++j) {
        GniChallenge challenge;
        challenge.seed = params.gsHash.randomSeed(rng);
        challenge.y = rng.nextBigBits(params.ell);
        challenges[v].push_back(challenge);
      }
    }
    HonestGniGeneralProver prover(params);
    GniGenFirstMessage first = prover.firstMessage(instance, challenges);
    wire::EncodedRound round1 = wire::encodeGniGenFirst(first, instance, params);
    GniGenFirstMessage decoded1 = wire::decodeGniGenFirst(round1, instance, params);
    expectRoundsIdentical(round1, wire::encodeGniGenFirst(decoded1, instance, params));

    std::vector<util::BigUInt> checkChallenges;
    for (graph::Vertex v = 0; v < n; ++v) {
      checkChallenges.push_back(params.checkFamily.randomIndex(rng));
    }
    GniGenSecondMessage second =
        prover.secondMessage(instance, challenges, first, checkChallenges);
    wire::EncodedRound round2 =
        wire::encodeGniGenSecond(second, first, instance, params);
    GniGenSecondMessage decoded2 =
        wire::decodeGniGenSecond(round2, first, instance, params);
    expectRoundsIdentical(round2,
                          wire::encodeGniGenSecond(decoded2, first, instance, params));
  }
}

}  // namespace
}  // namespace dip::core
