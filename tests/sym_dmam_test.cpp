// Tests for Protocol 1 — the O(log n) dMAM protocol for Sym (Theorem 1.1).
#include <gtest/gtest.h>

#include <memory>

#include "core/sym_dmam.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using graph::Graph;
using util::Rng;

SymDmamProtocol makeProtocol(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return SymDmamProtocol(hash::makeProtocol1Family(n, rng));
}

TEST(SymDmam, CompletenessOnSymmetricGraphs) {
  // Honest prover + symmetric graph => accept (completeness is perfect for
  // this protocol: every check is an identity the honest prover satisfies).
  Rng rng(81);
  for (std::size_t n : {6u, 10u, 16u, 24u}) {
    Graph g = graph::randomSymmetricConnected(n, rng);
    SymDmamProtocol protocol = makeProtocol(n, 1000 + n);
    HonestSymDmamProver prover(protocol.family());
    for (int trial = 0; trial < 10; ++trial) {
      EXPECT_TRUE(protocol.run(g, prover, rng).accepted) << "n=" << n;
    }
  }
}

TEST(SymDmam, CompletenessOnClassicSymmetricFamilies) {
  Rng rng(82);
  for (const Graph& g : {graph::cycleGraph(9), graph::completeGraph(7),
                         graph::starGraph(8), graph::gridGraph(3, 3)}) {
    SymDmamProtocol protocol = makeProtocol(g.numVertices(), 2000 + g.numVertices());
    HonestSymDmamProver prover(protocol.family());
    EXPECT_TRUE(protocol.run(g, prover, rng).accepted);
  }
}

TEST(SymDmam, HonestProverRejectsRigidGraph) {
  Rng rng(83);
  Graph g = graph::randomRigidConnected(8, rng);
  SymDmamProtocol protocol = makeProtocol(8, 3000);
  HonestSymDmamProver prover(protocol.family());
  EXPECT_THROW(protocol.run(g, prover, rng), std::invalid_argument);
}

TEST(SymDmam, SoundnessAgainstCommittedCheaters) {
  // On a rigid graph, a prover that commits to any fake rho before seeing
  // the seed is caught except with probability <= n^2/p <= 1/(10n) — far
  // below the 1/3 requirement.
  Rng rng(84);
  const std::size_t n = 8;
  Graph g = graph::randomRigidConnected(n, rng);
  SymDmamProtocol protocol = makeProtocol(n, 4000);

  int proverSeed = 0;
  for (auto strategy : {CheatingRhoProver::Strategy::kRandomPermutation,
                        CheatingRhoProver::Strategy::kTransposition}) {
    AcceptanceStats stats = protocol.estimateAcceptance(
        g,
        [&] {
          return std::make_unique<CheatingRhoProver>(protocol.family(), strategy,
                                                     9000 + proverSeed++);
        },
        400, rng);
    EXPECT_LT(stats.interval().low, 1.0 / 3.0);
    EXPECT_LT(stats.rate(), 0.1) << "strategy " << static_cast<int>(strategy);
  }
}

TEST(SymDmam, IdentityRhoAlwaysRejected) {
  // The rho_r != r check catches the identity deterministically.
  Rng rng(85);
  Graph g = graph::randomRigidConnected(7, rng);
  SymDmamProtocol protocol = makeProtocol(7, 5000);
  AcceptanceStats stats = protocol.estimateAcceptance(
      g,
      [&] {
        return std::make_unique<CheatingRhoProver>(
            protocol.family(), CheatingRhoProver::Strategy::kIdentity, 1);
      },
      50, rng);
  EXPECT_EQ(stats.accepts, 0u);
}

TEST(SymDmam, HashChainLiesCaughtDeterministically) {
  // Corrupting any subtree sum breaks a local chain equation at some node.
  Rng rng(86);
  Graph g = graph::randomSymmetricConnected(12, rng);
  SymDmamProtocol protocol = makeProtocol(12, 6000);
  int seed = 0;
  AcceptanceStats stats = protocol.estimateAcceptance(
      g, [&] { return std::make_unique<HashChainLiarProver>(protocol.family(), seed++); },
      60, rng);
  EXPECT_EQ(stats.accepts, 0u);
}

TEST(SymDmam, TamperedTreeRejected) {
  // White-box: break the spanning tree advice; the local tree check at the
  // tampered node must fail.
  Rng rng(87);
  Graph g = graph::cycleGraph(8);
  SymDmamProtocol protocol = makeProtocol(8, 7000);
  HonestSymDmamProver prover(protocol.family());

  SymDmamFirstMessage first = prover.firstMessage(g);
  first.dist[(first.rootPerNode[0] + 4) % 8] += 2;  // Corrupt a distance.
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < 8; ++v) {
    challenges.push_back(protocol.family().randomIndex(rng));
  }
  SymDmamSecondMessage second = prover.secondMessage(g, first, challenges);
  bool anyReject = false;
  for (graph::Vertex v = 0; v < 8; ++v) {
    if (!protocol.nodeDecision(g, v, first, challenges[v], second)) anyReject = true;
  }
  EXPECT_TRUE(anyReject);
}

TEST(SymDmam, InconsistentBroadcastRejected) {
  // A prover "broadcasting" different roots to different nodes is caught by
  // neighbor comparison.
  Rng rng(88);
  Graph g = graph::cycleGraph(6);
  SymDmamProtocol protocol = makeProtocol(6, 8000);
  HonestSymDmamProver prover(protocol.family());

  SymDmamFirstMessage first = prover.firstMessage(g);
  first.rootPerNode[3] = (first.rootPerNode[3] + 1) % 6;
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < 6; ++v) {
    challenges.push_back(protocol.family().randomIndex(rng));
  }
  SymDmamSecondMessage second = prover.secondMessage(g, first, challenges);
  bool anyReject = false;
  for (graph::Vertex v = 0; v < 6; ++v) {
    if (!protocol.nodeDecision(g, v, first, challenges[v], second)) anyReject = true;
  }
  EXPECT_TRUE(anyReject);
}

TEST(SymDmam, WrongIndexEchoRejectedByRoot) {
  Rng rng(89);
  Graph g = graph::completeGraph(5);
  SymDmamProtocol protocol = makeProtocol(5, 9000);
  HonestSymDmamProver prover(protocol.family());

  SymDmamFirstMessage first = prover.firstMessage(g);
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < 5; ++v) {
    challenges.push_back(protocol.family().randomIndex(rng));
  }
  SymDmamSecondMessage second = prover.secondMessage(g, first, challenges);
  // Echo a different index (consistently) — the root's i == i_r check fires.
  graph::Vertex root = first.rootPerNode[0];
  util::BigUInt wrong = util::addMod(challenges[root], util::BigUInt{1},
                                     protocol.family().prime());
  // Keep chains consistent with the wrong index so only the echo check fails.
  net::SpanningTreeAdvice tree{root, first.parent, first.dist};
  ChainValues chains = aggregateChains(g, protocol.family(), wrong, first.rho, tree);
  second.indexPerNode.assign(5, wrong);
  second.a = chains.a;
  second.b = chains.b;
  EXPECT_FALSE(protocol.nodeDecision(g, root, first, challenges[root], second));
}

TEST(SymDmam, TranscriptChargesAllRounds) {
  Rng rng(90);
  Graph g = graph::randomSymmetricConnected(16, rng);
  SymDmamProtocol protocol = makeProtocol(16, 10000);
  HonestSymDmamProver prover(protocol.family());
  RunResult result = protocol.run(g, prover, rng);
  ASSERT_TRUE(result.accepted);
  ASSERT_EQ(result.transcript.rounds().size(), 3u);
  for (const auto& round : result.transcript.rounds()) {
    EXPECT_GT(round.maxBitsThisRound, 0u) << round.label;
  }
  // Every node pays the same challenge cost; responses dominated by hashes.
  EXPECT_GT(result.transcript.maxPerNodeBits(), 0u);
}

TEST(SymDmam, CostModelMatchesMeasuredCost) {
  // The structural cost model and an actual execution must agree on the
  // per-node bit count (the model uses the upper end of the prime range,
  // so it can exceed the measured cost by at most a few bits per value).
  Rng rng(91);
  const std::size_t n = 12;
  Graph g = graph::randomSymmetricConnected(n, rng);
  SymDmamProtocol protocol = makeProtocol(n, 11000);
  HonestSymDmamProver prover(protocol.family());
  RunResult result = protocol.run(g, prover, rng);
  CostBreakdown model = SymDmamProtocol::costModel(n);
  EXPECT_LE(result.transcript.maxPerNodeBits(), model.totalPerNode());
  EXPECT_GE(result.transcript.maxPerNodeBits(), model.totalPerNode() / 2);
}

TEST(SymDmam, CostScalesLogarithmically) {
  // Theorem 1.1: O(log n) bits per node. Doubling n must increase the cost
  // by only an additive constant (a few bits), not multiplicatively.
  std::size_t prev = 0;
  for (std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    std::size_t cost = SymDmamProtocol::costModel(n).totalPerNode();
    if (prev != 0) {
      EXPECT_LE(cost, prev + 40) << "n=" << n;  // ~9 extra bits per doubling.
      EXPECT_GT(cost, prev);
    }
    prev = cost;
  }
  // Strongly sublinear: at n = 1024 the whole exchange is a few hundred bits.
  EXPECT_LT(SymDmamProtocol::costModel(1024).totalPerNode(), 500u);
}

}  // namespace
}  // namespace dip::core
