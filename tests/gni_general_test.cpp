// Tests for the automorphism-compensated general-input GNI protocol — the
// paper's fix (via Goldwasser-Sipser [15]) for symmetric graphs, where the
// basic counting |S| = 2n! vs n! breaks.
#include <gtest/gtest.h>

#include <cmath>

#include <memory>
#include <set>

#include "core/gni_general.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using util::Rng;

TEST(AllAutomorphisms, MatchesCountAndGroupAxioms) {
  Rng rng(171);
  for (const graph::Graph& g :
       {graph::cycleGraph(5), graph::pathGraph(4), graph::completeGraph(4),
        graph::randomSymmetricConnected(8, rng)}) {
    auto group = graph::allAutomorphisms(g);
    EXPECT_EQ(group.size(), graph::countAutomorphisms(g));
    // Identity present; closed under composition (spot-check); all genuine.
    std::set<graph::Permutation> set(group.begin(), group.end());
    EXPECT_TRUE(set.count(graph::identityPermutation(g.numVertices())));
    for (const auto& alpha : group) {
      EXPECT_TRUE(graph::isAutomorphism(g, alpha));
      EXPECT_TRUE(set.count(graph::inverse(alpha)));
    }
    if (group.size() >= 2) {
      EXPECT_TRUE(set.count(graph::compose(group[0], group[1])));
    }
  }
}

class GniGeneralTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(172);
    params_ = new GniGeneralParams(GniGeneralParams::choose(6, rng));
  }
  static void TearDownTestSuite() {
    delete params_;
    params_ = nullptr;
  }
  static GniGeneralParams* params_;
};
GniGeneralParams* GniGeneralTest::params_ = nullptr;

TEST_F(GniGeneralTest, ParameterDerivation) {
  EXPECT_EQ(params_->n, 6u);
  EXPECT_EQ(params_->ell, 12u);  // Same 2^ell in [4*720, 8*720) as basic GNI.
  EXPECT_GT(params_->perRoundYesLb, params_->perRoundNoUb * 1.3);
  EXPECT_GT(params_->repetitions, 0u);
  // The GS hash covers (2n x 2n) matrices.
  EXPECT_EQ(params_->gsHash.n(), 12u);
}

TEST_F(GniGeneralTest, PerRoundGapSurvivesSymmetricInputs) {
  // The whole point of the compensation: with a SYMMETRIC g0, the
  // candidate-count gap must still be ~2x. (The basic protocol's gap
  // collapses here: |{sigma(G_0)}| = n!/|Aut| on the symmetric side.)
  Rng rng(173);
  GniInstance yes = gniGeneralYesInstance(6, rng);
  GniInstance no = gniGeneralNoInstance(6, rng);
  ASSERT_FALSE(graph::isRigid(yes.g0));  // Genuinely symmetric instance.
  ASSERT_FALSE(graph::isRigid(no.g0));

  GniGeneralProtocol protocol(*params_);
  const std::size_t trials = 150;
  AcceptanceStats yesStats = protocol.estimatePerRoundHit(yes, trials, rng);
  AcceptanceStats noStats = protocol.estimatePerRoundHit(no, trials, rng);

  EXPECT_GT(yesStats.rate(), noStats.rate());
  EXPECT_GT(yesStats.interval().low, 0.17);
  EXPECT_LT(noStats.interval().high, 0.32);
}

TEST_F(GniGeneralTest, CompletenessOnSymmetricInputs) {
  Rng rng(174);
  GniInstance yes = gniGeneralYesInstance(6, rng);
  GniGeneralProtocol protocol(*params_);
  AcceptanceStats stats = protocol.estimateAcceptance(
      yes, [&] { return std::make_unique<HonestGniGeneralProver>(*params_); }, 8, rng);
  EXPECT_GT(stats.rate(), 2.0 / 3.0);
}

TEST_F(GniGeneralTest, SoundnessOnSymmetricInputs) {
  Rng rng(175);
  GniInstance no = gniGeneralNoInstance(6, rng);
  GniGeneralProtocol protocol(*params_);
  AcceptanceStats stats = protocol.estimateAcceptance(
      no, [&] { return std::make_unique<HonestGniGeneralProver>(*params_); }, 8, rng);
  EXPECT_LT(stats.rate(), 1.0 / 3.0);
}

TEST_F(GniGeneralTest, WorksOnRigidInputsToo) {
  // Rigid graphs have |Aut| = 1; the compensated protocol degenerates to
  // the basic one and must still work.
  Rng rng(176);
  GniInstance yes = gniYesInstance(6, rng);
  GniGeneralProtocol protocol(*params_);
  AcceptanceStats hit = protocol.estimatePerRoundHit(yes, 100, rng);
  EXPECT_GT(hit.interval().high, params_->perRoundYesLb * 0.8);
}

TEST_F(GniGeneralTest, HonestRunsVerifyAllChains) {
  Rng rng(177);
  GniInstance yes = gniGeneralYesInstance(6, rng);
  GniGeneralProtocol protocol(*params_);
  HonestGniGeneralProver prover(*params_);
  RunResult result = protocol.run(yes, prover, rng);
  ASSERT_EQ(result.transcript.rounds().size(), 4u);
  EXPECT_GT(result.transcript.maxPerNodeBits(), 0u);
}

TEST_F(GniGeneralTest, TamperedAlphaCaught) {
  // White-box: corrupt one node's alpha commitment after an honest first
  // message; either the alpha-permutation check, the automorphism check or
  // a chain equation must fail at some node.
  Rng rng(178);
  GniInstance yes = gniGeneralYesInstance(6, rng);
  GniGeneralProtocol protocol(*params_);
  HonestGniGeneralProver prover(*params_);

  std::vector<std::vector<GniChallenge>> challenges(6);
  for (graph::Vertex v = 0; v < 6; ++v) {
    for (std::size_t j = 0; j < params_->repetitions; ++j) {
      GniChallenge challenge;
      challenge.seed = params_->gsHash.randomSeed(rng);
      challenge.y = rng.nextBigBits(params_->ell);
      challenges[v].push_back(challenge);
    }
  }
  GniGenFirstMessage first = prover.firstMessage(yes, challenges);
  std::vector<util::BigUInt> checkChallenges;
  for (graph::Vertex v = 0; v < 6; ++v) {
    checkChallenges.push_back(params_->checkFamily.randomIndex(rng));
  }
  GniGenSecondMessage second =
      prover.secondMessage(yes, challenges, first, checkChallenges);

  // Find a claimed repetition and corrupt node 3's alpha value.
  for (std::size_t j = 0; j < params_->repetitions; ++j) {
    if (!first.perNode[0].claimed[j]) continue;
    first.perNode[3].a[j] = (first.perNode[3].a[j] + 1) % 6;
    break;
  }
  bool anyReject = false;
  for (graph::Vertex v = 0; v < 6; ++v) {
    if (!protocol.nodeDecision(yes, v, first, second, challenges[v],
                               checkChallenges[v])) {
      anyReject = true;
    }
  }
  EXPECT_TRUE(anyReject);
}

TEST_F(GniGeneralTest, CostStaysNLogNPerRepetition) {
  double minRatio = 1e18, maxRatio = 0.0;
  const std::size_t k = 64;
  for (std::size_t n : {8u, 32u, 128u, 512u}) {
    double cost =
        static_cast<double>(GniGeneralProtocol::costModel(n, k).totalPerNode());
    double ratio = cost / (static_cast<double>(k) * static_cast<double>(n) *
                           std::log2(static_cast<double>(n)));
    minRatio = std::min(minRatio, ratio);
    maxRatio = std::max(maxRatio, ratio);
  }
  EXPECT_LT(maxRatio / minRatio, 6.0);
}

}  // namespace
}  // namespace dip::core
