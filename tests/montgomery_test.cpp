// Montgomery arithmetic tests: exact agreement with the reference modular
// routines across widths, plus edge cases.
#include <gtest/gtest.h>

#include "util/montgomery.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::util {
namespace {

TEST(Montgomery, RejectsEvenOrTinyModulus) {
  EXPECT_THROW(MontgomeryContext(BigUInt{10}), std::invalid_argument);
  EXPECT_THROW(MontgomeryContext(BigUInt{1}), std::invalid_argument);
  EXPECT_NO_THROW(MontgomeryContext(BigUInt{3}));
}

TEST(Montgomery, RoundTripThroughRepresentation) {
  Rng rng(291);
  MontgomeryContext ctx(findPrimeWithBits(128, rng));
  for (int i = 0; i < 50; ++i) {
    BigUInt x = rng.nextBigBelow(ctx.modulus());
    EXPECT_EQ(ctx.fromMontgomery(ctx.toMontgomery(x)), x);
  }
}

TEST(Montgomery, MulModMatchesReference) {
  Rng rng(292);
  for (std::size_t bits : {33u, 64u, 96u, 160u, 256u, 521u}) {
    BigUInt modulus = findPrimeWithBits(bits, rng);
    MontgomeryContext ctx(modulus);
    for (int i = 0; i < 30; ++i) {
      BigUInt a = rng.nextBigBelow(modulus);
      BigUInt b = rng.nextBigBelow(modulus);
      EXPECT_EQ(ctx.mulMod(a, b), mulMod(a, b, modulus)) << bits;
    }
  }
}

TEST(Montgomery, PowModMatchesReference) {
  Rng rng(293);
  for (std::size_t bits : {40u, 128u, 300u}) {
    BigUInt modulus = findPrimeWithBits(bits, rng);
    MontgomeryContext ctx(modulus);
    for (int i = 0; i < 10; ++i) {
      BigUInt base = rng.nextBigBelow(modulus);
      BigUInt exponent = rng.nextBigBits(bits);
      EXPECT_EQ(ctx.powMod(base, exponent), powMod(base, exponent, modulus)) << bits;
    }
  }
}

TEST(Montgomery, PowModEdgeCases) {
  Rng rng(294);
  BigUInt modulus = findPrimeWithBits(100, rng);
  MontgomeryContext ctx(modulus);
  EXPECT_EQ(ctx.powMod(BigUInt{5}, BigUInt{}), BigUInt{1});    // x^0 = 1.
  EXPECT_EQ(ctx.powMod(BigUInt{}, BigUInt{9}), BigUInt{});     // 0^e = 0.
  EXPECT_EQ(ctx.powMod(BigUInt{1}, rng.nextBigBits(90)), BigUInt{1});
  // Operands larger than the modulus reduce first.
  BigUInt big = modulus * BigUInt{7} + BigUInt{11};
  EXPECT_EQ(ctx.mulMod(big, BigUInt{2}), mulMod(big % modulus, BigUInt{2}, modulus));
}

TEST(Montgomery, OddCompositeModuliWork) {
  // Montgomery needs oddness, not primality.
  Rng rng(295);
  BigUInt modulus = BigUInt::fromDecimal("123456789123456789123456789");  // Odd composite.
  MontgomeryContext ctx(modulus);
  for (int i = 0; i < 20; ++i) {
    BigUInt a = rng.nextBigBelow(modulus);
    BigUInt b = rng.nextBigBelow(modulus);
    EXPECT_EQ(ctx.mulMod(a, b), mulMod(a, b, modulus));
  }
}

TEST(Montgomery, FermatWitnessViaContext) {
  // A full Miller-Rabin-style use: a^(p-1) = 1 mod p through the context.
  Rng rng(296);
  BigUInt p = findPrimeWithBits(200, rng);
  MontgomeryContext ctx(p);
  for (int i = 0; i < 5; ++i) {
    BigUInt a = addMod(rng.nextBigBelow(p - BigUInt{2}), BigUInt{2}, p);
    EXPECT_EQ(ctx.powMod(a, p - BigUInt{1}), BigUInt{1});
  }
}

}  // namespace
}  // namespace dip::util
