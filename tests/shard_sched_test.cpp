// ShardScheduler: the coordinator's exactly-once bookkeeping, tested as the
// pure state machine it is — including the heartbeat-timeout re-issue race
// that the fault tier then reproduces end-to-end with real processes. Runs
// under the tsan preset alongside the bounded-queue suite.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/shard.hpp"

namespace dip::sim {
namespace {

TEST(shard_sched, RangesPartitionTrials) {
  const auto ranges = shardRanges(37, 10);
  ASSERT_EQ(ranges.size(), 4u);
  std::uint64_t expectLo = 0;
  for (const SeedRange& range : ranges) {
    EXPECT_EQ(range.lo, expectLo);
    EXPECT_EQ(range.index, expectLo / 10);
    expectLo = range.hi;
  }
  EXPECT_EQ(expectLo, 37u);
  EXPECT_EQ(ranges.back().hi - ranges.back().lo, 7u);  // Last range short.
}

TEST(shard_sched, ZeroGrainCoercedToOne) {
  EXPECT_EQ(shardRanges(5, 0).size(), 5u);
  EXPECT_TRUE(shardRanges(0, 0).empty());
}

TEST(shard_sched, ClaimsLowestIndexFirst) {
  ShardScheduler sched(30, 10);
  EXPECT_EQ(sched.rangeCount(), 3u);
  EXPECT_EQ(sched.claim(0)->index, 0u);
  EXPECT_EQ(sched.claim(1)->index, 1u);
  EXPECT_EQ(sched.claim(0)->index, 2u);
  EXPECT_FALSE(sched.claim(1).has_value());  // Everything assigned.
  EXPECT_EQ(sched.outstandingFor(0), 2u);
  EXPECT_EQ(sched.outstandingFor(1), 1u);
}

TEST(shard_sched, CompleteIsExactlyOnce) {
  ShardScheduler sched(20, 10);
  (void)sched.claim(0);
  (void)sched.claim(0);
  EXPECT_TRUE(sched.complete(0));   // First completion folds.
  EXPECT_FALSE(sched.complete(0));  // Duplicate drops.
  EXPECT_FALSE(sched.finished());
  EXPECT_TRUE(sched.complete(1));
  EXPECT_TRUE(sched.finished());
  EXPECT_EQ(sched.completedCount(), 2u);
}

TEST(shard_sched, StaleRangeIndexThrows) {
  ShardScheduler sched(20, 10);
  EXPECT_THROW((void)sched.complete(2), std::out_of_range);
  EXPECT_THROW((void)sched.range(99), std::out_of_range);
}

TEST(shard_sched, ReissueRequeuesOnlyThatWorkersRanges) {
  ShardScheduler sched(40, 10);
  (void)sched.claim(0);  // range 0
  (void)sched.claim(1);  // range 1
  (void)sched.claim(0);  // range 2
  ASSERT_TRUE(sched.complete(0));
  EXPECT_EQ(sched.reissueWorker(0), 1u);  // Only range 2 (0 is done).
  EXPECT_EQ(sched.pendingCount(), 2u);    // Range 2 back + range 3 never claimed.
  EXPECT_EQ(sched.outstandingFor(0), 0u);
  EXPECT_EQ(sched.outstandingFor(1), 1u);
  EXPECT_EQ(sched.reissueWorker(0), 0u);  // Idempotent.
  // Re-issue hands out the lowest index first.
  EXPECT_EQ(sched.claim(1)->index, 2u);
  EXPECT_EQ(sched.claim(1)->index, 3u);
}

TEST(shard_sched, TimeoutReissueRaceFoldsExactlyOnce) {
  // The heartbeat-timeout race end to end: worker 0 is suspected, its range
  // re-issues to worker 1, then BOTH completions arrive (the suspect was
  // merely slow). Exactly one may fold, whichever lands first.
  ShardScheduler sched(10, 10);
  ASSERT_EQ(sched.claim(0)->index, 0u);
  EXPECT_EQ(sched.reissueWorker(0), 1u);       // Timeout: back to pending.
  ASSERT_EQ(sched.claim(1)->index, 0u);        // Re-issued to worker 1.
  EXPECT_TRUE(sched.complete(0));              // Worker 1 finishes...
  EXPECT_FALSE(sched.complete(0));             // ...then worker 0's late copy.
  EXPECT_TRUE(sched.finished());
}

TEST(shard_sched, LateCompletionBeforeReclaimSkipsStaleQueueEntry) {
  // Reverse interleaving: the suspect completes while its range still sits
  // in the pending queue. The stale queue entry must not be claimable.
  ShardScheduler sched(20, 10);
  ASSERT_EQ(sched.claim(0)->index, 0u);
  EXPECT_EQ(sched.reissueWorker(0), 1u);
  EXPECT_TRUE(sched.complete(0));          // Late completion wins the fold.
  ASSERT_EQ(sched.claim(1)->index, 1u);    // Claim skips the done range 0.
  EXPECT_FALSE(sched.claim(1).has_value());
}

TEST(shard_sched, DeadWorkerRangesRecoverable) {
  ShardScheduler sched(50, 10);
  for (int i = 0; i < 5; ++i) (void)sched.claim(0);
  EXPECT_EQ(sched.outstandingFor(0), 5u);
  EXPECT_EQ(sched.reissueWorker(0), 5u);  // Worker died: everything back.
  std::uint64_t next = 0;
  while (auto range = sched.claim(1)) {
    EXPECT_EQ(range->index, next++);
    EXPECT_TRUE(sched.complete(range->index));
  }
  EXPECT_TRUE(sched.finished());
}

}  // namespace
}  // namespace dip::sim
