// Parameterized protocol sweeps: completeness of Protocol 1 across many
// structurally different symmetric families and sizes; soundness of the
// committed cheater across many rigid instances; DSym across radii.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/dsym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using util::Rng;

// ---- Protocol 1 completeness across families ----

struct FamilyCase {
  std::string name;
  graph::Graph (*make)(std::size_t);
  std::size_t size;
};

graph::Graph makeCycle(std::size_t n) { return graph::cycleGraph(n); }
graph::Graph makeComplete(std::size_t n) { return graph::completeGraph(n); }
graph::Graph makeStar(std::size_t n) { return graph::starGraph(n); }
graph::Graph makeGrid(std::size_t n) { return graph::gridGraph(n, n); }
graph::Graph makePrism(std::size_t n) {
  Rng rng(999 + n);
  return graph::randomSymmetricConnected(n, rng);
}
graph::Graph makeDoubleDumbbell(std::size_t n) {
  Rng rng(555 + n);
  graph::Graph f = graph::randomRigidConnected(n, rng);
  return graph::dumbbell(f, f);
}

class Protocol1Completeness : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(Protocol1Completeness, HonestProverAlwaysAccepted) {
  const FamilyCase& familyCase = GetParam();
  graph::Graph g = familyCase.make(familyCase.size);
  ASSERT_FALSE(graph::isRigid(g)) << familyCase.name;
  ASSERT_TRUE(g.isConnected()) << familyCase.name;

  Rng setup(1000 + g.numVertices());
  SymDmamProtocol protocol(hash::makeProtocol1Family(g.numVertices(), setup));
  HonestSymDmamProver prover(protocol.family());
  Rng rng(2000 + g.numVertices());
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_TRUE(protocol.run(g, prover, rng).accepted) << familyCase.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, Protocol1Completeness,
    ::testing::Values(FamilyCase{"cycle9", makeCycle, 9},
                      FamilyCase{"cycle24", makeCycle, 24},
                      FamilyCase{"complete8", makeComplete, 8},
                      FamilyCase{"star12", makeStar, 12},
                      FamilyCase{"grid4x4", makeGrid, 4},
                      FamilyCase{"grid6x6", makeGrid, 6},
                      FamilyCase{"prism20", makePrism, 20},
                      FamilyCase{"prism40", makePrism, 40},
                      FamilyCase{"dumbbell6", makeDoubleDumbbell, 6},
                      FamilyCase{"dumbbell9", makeDoubleDumbbell, 9}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) { return info.param.name; });

// ---- Protocol 1 soundness across rigid instances ----

class Protocol1Soundness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Protocol1Soundness, CheaterBelowCollisionBudget) {
  const std::size_t n = GetParam();
  Rng rng(3000 + n);
  Rng setup(4000 + n);
  SymDmamProtocol protocol(hash::makeProtocol1Family(n, setup));
  graph::Graph g = graph::randomRigidConnected(n, rng);
  int seed = 0;
  AcceptanceStats stats = protocol.estimateAcceptance(
      g,
      [&] {
        return std::make_unique<CheatingRhoProver>(
            protocol.family(), CheatingRhoProver::Strategy::kRandomPermutation, seed++);
      },
      150, rng);
  // Collision budget is 1/(10n); with 150 trials, >= 10 accepts would be
  // astronomically unlikely.
  EXPECT_LE(stats.accepts, 10u) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, Protocol1Soundness, ::testing::Values(6, 8, 12, 20, 28));

// ---- DSym across path radii and side structures ----

struct DSymCase {
  std::size_t side;
  std::size_t radius;
};

class DSymSweep : public ::testing::TestWithParam<DSymCase> {};

TEST_P(DSymSweep, YesAcceptedNoRejected) {
  const DSymCase& dsymCase = GetParam();
  Rng rng(5000 + dsymCase.side * 10 + dsymCase.radius);
  graph::DSymLayout layout = graph::dsymLayout(dsymCase.side, dsymCase.radius);

  Rng setup(6000 + dsymCase.side * 10 + dsymCase.radius);
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{layout.numVertices}, 3);
  DSymDamProtocol protocol(
      layout, hash::LinearHashFamily(
                  util::findPrimeInRange(util::BigUInt{10} * n3,
                                         util::BigUInt{100} * n3, setup),
                  static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices));

  // YES instance.
  graph::Graph f = graph::randomConnected(dsymCase.side, dsymCase.side / 2, rng);
  graph::Graph yes = graph::dsymInstance(f, dsymCase.radius);
  HonestDSymProver prover(layout, protocol.family());
  EXPECT_TRUE(protocol.run(yes, prover, rng).accepted);

  // NO instance (mismatched sides), needs rigid sides to be guaranteed
  // non-symmetric under sigma.
  if (dsymCase.side >= 6) {
    graph::Graph fRigid = graph::randomRigidConnected(dsymCase.side, rng);
    graph::Graph fOther = graph::randomRigidConnected(dsymCase.side, rng);
    while (fOther == fRigid) fOther = graph::randomRigidConnected(dsymCase.side, rng);
    graph::Graph no = graph::dsymNoInstance(fRigid, fOther, dsymCase.radius);
    std::size_t accepts = 0;
    for (int trial = 0; trial < 40; ++trial) {
      if (protocol.run(no, prover, rng).accepted) ++accepts;
    }
    EXPECT_LE(accepts, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, DSymSweep,
                         ::testing::Values(DSymCase{4, 0}, DSymCase{4, 3}, DSymCase{6, 1},
                                           DSymCase{6, 4}, DSymCase{8, 2},
                                           DSymCase{10, 1}),
                         [](const ::testing::TestParamInfo<DSymCase>& info) {
                           return "side" + std::to_string(info.param.side) + "r" +
                                  std::to_string(info.param.radius);
                         });

}  // namespace
}  // namespace dip::core
