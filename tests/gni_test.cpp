// Tests for the distributed Goldwasser-Sipser dAMAM protocol for Graph
// Non-Isomorphism (Section 4, Theorem 1.5).
#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "core/gni_amam.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "pls/gni_fullinfo.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

using util::Rng;

// Shared fixture: parameter choice involves prime searches, so do it once.
class GniTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(151);
    params_ = new GniParams(GniParams::choose(6, rng));
  }
  static void TearDownTestSuite() {
    delete params_;
    params_ = nullptr;
  }
  static GniParams* params_;
};
GniParams* GniTest::params_ = nullptr;

TEST_F(GniTest, ParameterDerivation) {
  const GniParams& params = *params_;
  EXPECT_EQ(params.n, 6u);
  // 2^ell in [4 * 720, 8 * 720).
  EXPECT_EQ(params.ell, 12u);
  EXPECT_GT(params.perRoundYesLb, params.perRoundNoUb * 1.3);
  EXPECT_GT(params.repetitions, 0u);
  EXPECT_GT(params.threshold, 0u);
  EXPECT_LT(params.threshold, params.repetitions);
  // The amplification must certify the 2/3 vs 1/3 gap by construction.
  EXPECT_GT(util::binomialTailGE(params.repetitions, params.perRoundYesLb,
                                 params.threshold),
            2.0 / 3.0);
  EXPECT_LT(util::binomialTailGE(params.repetitions, params.perRoundNoUb,
                                 params.threshold),
            1.0 / 3.0);
}

TEST_F(GniTest, InstanceGenerators) {
  Rng rng(152);
  GniInstance yes = gniYesInstance(6, rng);
  EXPECT_TRUE(graph::isRigid(yes.g0));
  EXPECT_TRUE(graph::isRigid(yes.g1));
  EXPECT_FALSE(graph::areIsomorphic(yes.g0, yes.g1));
  GniInstance no = gniNoInstance(6, rng);
  EXPECT_TRUE(graph::areIsomorphic(no.g0, no.g1));
}

TEST_F(GniTest, PerRoundGapMatchesTheory) {
  // The heart of Goldwasser-Sipser: the preimage-existence probability is
  // ~2q for non-isomorphic pairs and ~q for isomorphic ones. This is the
  // per-repetition experiment E5 reports.
  Rng rng(153);
  GniInstance yes = gniYesInstance(6, rng);
  GniInstance no = gniNoInstance(6, rng);
  GniAmamProtocol protocol(*params_);

  const std::size_t trials = 220;
  AcceptanceStats yesStats = protocol.estimatePerRoundHit(yes, trials, rng);
  AcceptanceStats noStats = protocol.estimatePerRoundHit(no, trials, rng);

  // Theory: yes >= perRoundYesLb (~0.29), no <= q (~0.18).
  EXPECT_GT(yesStats.interval().high, params_->perRoundYesLb);
  EXPECT_LT(noStats.interval().low, params_->perRoundNoUb + 0.02);
  // The measured gap itself.
  EXPECT_GT(yesStats.rate(), noStats.rate());
  EXPECT_GT(yesStats.interval().low, 0.2);
  EXPECT_LT(noStats.interval().high, 0.3);
}

TEST_F(GniTest, CompletenessOfFullProtocol) {
  // Non-isomorphic instance + honest prover: accept w.p. > 2/3. Each full
  // run enumerates 2 n! candidates per repetition, so keep trials modest.
  Rng rng(154);
  GniInstance yes = gniYesInstance(6, rng);
  GniAmamProtocol protocol(*params_);
  AcceptanceStats stats = protocol.estimateAcceptance(
      yes, [&] { return std::make_unique<HonestGniProver>(*params_); }, 12, rng);
  EXPECT_GT(stats.rate(), 2.0 / 3.0);
}

TEST_F(GniTest, SoundnessOfFullProtocol) {
  // Isomorphic instance: even the optimal prover (the honest searcher —
  // every other message is forced) falls below the threshold w.p. > 2/3.
  Rng rng(155);
  GniInstance no = gniNoInstance(6, rng);
  GniAmamProtocol protocol(*params_);
  AcceptanceStats stats = protocol.estimateAcceptance(
      no, [&] { return std::make_unique<HonestGniProver>(*params_); }, 12, rng);
  EXPECT_LT(stats.rate(), 1.0 / 3.0);
}

TEST_F(GniTest, NonPermutationMappingsCaught) {
  // The permutation check (the reason for the second Arthur round): a
  // prover committing to non-injective mappings is rejected.
  Rng rng(156);
  GniInstance no = gniNoInstance(6, rng);
  GniAmamProtocol protocol(*params_);
  int seed = 0;
  AcceptanceStats stats = protocol.estimateAcceptance(
      no,
      [&] { return std::make_unique<NonPermutationGniProver>(*params_, seed++); },
      10, rng);
  EXPECT_EQ(stats.accepts, 0u);
}

TEST_F(GniTest, HonestRunVerifiesAllChainsAndCharges) {
  Rng rng(157);
  GniInstance yes = gniYesInstance(6, rng);
  GniAmamProtocol protocol(*params_);
  HonestGniProver prover(*params_);
  RunResult result = protocol.run(yes, prover, rng);
  ASSERT_EQ(result.transcript.rounds().size(), 4u);  // A1, M1, A2, M2.
  for (const auto& round : result.transcript.rounds()) {
    EXPECT_GT(round.maxBitsThisRound, 0u) << round.label;
  }
}

TEST_F(GniTest, CostModelScalesAsNLogNPerRepetition) {
  // Theorem 1.5: O(n log n) per node (k is a constant). Check the ratio
  // cost / (k * n log2 n) stays within constant factors.
  double minRatio = 1e18, maxRatio = 0.0;
  const std::size_t k = 64;
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    double cost = static_cast<double>(GniAmamProtocol::costModel(n, k).totalPerNode());
    double ratio = cost / (static_cast<double>(k) * static_cast<double>(n) *
                           std::log2(static_cast<double>(n)));
    minRatio = std::min(minRatio, ratio);
    maxRatio = std::max(maxRatio, ratio);
  }
  EXPECT_LT(maxRatio / minRatio, 6.0);
}

TEST_F(GniTest, InteractiveBeatsFullInformationAtScale) {
  // The separation against the non-interactive Theta(n^2) baseline: with
  // constant repetitions, n log n eventually wins.
  const std::size_t k = 64;
  bool crossed = false;
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    std::size_t interactive = GniAmamProtocol::costModel(n, k).totalPerNode();
    std::size_t baseline = pls::GniFullInfo::adviceBitsPerNode(n);
    if (interactive < baseline) crossed = true;
  }
  EXPECT_TRUE(crossed);
  EXPECT_LT(GniAmamProtocol::costModel(4096, k).totalPerNode(),
            pls::GniFullInfo::adviceBitsPerNode(4096));
}

TEST_F(GniTest, SearchPreimageRespectsHashSemantics) {
  // White-box: when the honest prover claims a repetition, re-hashing its
  // committed (sigma, b) must reproduce the target y.
  Rng rng(158);
  GniInstance yes = gniYesInstance(6, rng);
  GniAmamProtocol protocol(*params_);

  // One full interaction, then re-verify the first claimed repetition.
  std::vector<std::vector<GniChallenge>> challenges(6);
  for (graph::Vertex v = 0; v < 6; ++v) {
    for (std::size_t j = 0; j < params_->repetitions; ++j) {
      GniChallenge challenge;
      challenge.seed = params_->gsHash.randomSeed(rng);
      challenge.y = rng.nextBigBits(params_->ell);
      challenges[v].push_back(challenge);
    }
  }
  HonestGniProver prover(*params_);
  GniFirstMessage first = prover.firstMessage(yes, challenges);
  for (std::size_t j = 0; j < params_->repetitions; ++j) {
    if (!first.perNode[0].claimed[j]) continue;
    graph::Permutation sigma(6);
    for (graph::Vertex v = 0; v < 6; ++v) sigma[v] = first.perNode[v].s[j];
    EXPECT_TRUE(graph::isPermutation(sigma, 6));
    const graph::Graph& gb = first.perNode[0].b[j] == 0 ? yes.g0 : yes.g1;
    std::vector<util::DynBitset> rows(6, util::DynBitset(6));
    for (graph::Vertex v = 0; v < 6; ++v) {
      rows[sigma[v]] = graph::Graph::imageOf(gb.closedRow(v), sigma);
    }
    EXPECT_EQ(params_->gsHash.hashRows(challenges[0][j].seed, rows),
              challenges[0][j].y);
    break;
  }
}

}  // namespace
}  // namespace dip::core
