// Canonical-form tests, including the independent cross-validation of the
// isomorphism engine and the census.
#include <gtest/gtest.h>

#include "graph/canonical.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "lb/census.hpp"
#include "util/rng.hpp"

namespace dip::graph {
namespace {

TEST(Canonical, InvariantUnderRelabeling) {
  util::Rng rng(271);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = erdosRenyi(6, 0.5, rng);
    Graph h = randomIsomorphicCopy(g, rng);
    EXPECT_EQ(canonicalForm(g), canonicalForm(h));
  }
}

TEST(Canonical, SeparatesNonIsomorphicGraphs) {
  EXPECT_NE(canonicalForm(pathGraph(5)), canonicalForm(starGraph(5)));
  Graph twoTriangles =
      Graph::fromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_NE(canonicalForm(cycleGraph(6)), canonicalForm(twoTriangles));
}

TEST(Canonical, AgreesWithSearchEngineOnRandomPairs) {
  // Two independent isomorphism deciders must agree on every pair.
  util::Rng rng(272);
  for (int trial = 0; trial < 40; ++trial) {
    Graph g0 = erdosRenyi(5, 0.5, rng);
    Graph g1 = (trial % 3 == 0) ? randomIsomorphicCopy(g0, rng) : erdosRenyi(5, 0.5, rng);
    EXPECT_EQ(isomorphicByCanonicalForm(g0, g1), areIsomorphic(g0, g1)) << trial;
  }
}

TEST(Canonical, ClassCountsMatchBurnsideCensus) {
  // Counting isomorphism classes two entirely different ways — canonical
  // deduplication vs Burnside orbit counting — must agree exactly.
  for (std::size_t n = 1; n <= 5; ++n) {
    EXPECT_EQ(countIsoClassesByCanonicalForm(n), lb::exhaustiveCensus(n).isoClasses)
        << "n=" << n;
  }
}

TEST(Canonical, RejectsOversizedGraphs) {
  EXPECT_THROW(canonicalForm(Graph(9)), std::invalid_argument);
}

}  // namespace
}  // namespace dip::graph
