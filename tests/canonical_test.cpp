// Canonical-form tests, including the independent cross-validation of the
// isomorphism engine and the census.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "graph/canonical.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "lb/census.hpp"
#include "util/rng.hpp"

namespace dip::graph {
namespace {

TEST(Canonical, InvariantUnderRelabeling) {
  util::Rng rng(271);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = erdosRenyi(6, 0.5, rng);
    Graph h = randomIsomorphicCopy(g, rng);
    EXPECT_EQ(canonicalForm(g), canonicalForm(h));
  }
}

TEST(Canonical, InvariantUnderRelabelingLargerGraphs) {
  // The branch-and-bound engine handles sizes the n! sweep never could;
  // relabeling invariance is the property test that needs no oracle.
  util::Rng rng(273);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 9 + static_cast<std::size_t>(trial % 8);
    Graph g = erdosRenyi(n, 0.4, rng);
    Graph h = randomIsomorphicCopy(g, rng);
    EXPECT_EQ(canonicalForm(g), canonicalForm(h)) << "n=" << n;
  }
}

TEST(Canonical, SeparatesNonIsomorphicGraphs) {
  EXPECT_NE(canonicalForm(pathGraph(5)), canonicalForm(starGraph(5)));
  Graph twoTriangles =
      Graph::fromEdges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  EXPECT_NE(canonicalForm(cycleGraph(6)), canonicalForm(twoTriangles));
}

TEST(Canonical, AgreesWithBruteForceOracleExhaustively) {
  // The IR-pruned branch-and-bound must equal the all-permutations minimum
  // on EVERY graph with n <= 6 (2^15 graphs at n = 6 alone).
  for (std::size_t n = 1; n <= 6; ++n) {
    const std::size_t slots = n * (n - 1) / 2;
    for (std::uint64_t code = 0; code < (1ull << slots); ++code) {
      Graph g = Graph::fromUpperTriangleCode(n, code);
      ASSERT_EQ(canonicalForm(g), bruteForceCanonicalForm(g))
          << "n=" << n << " code=" << code;
    }
  }
}

TEST(Canonical, AgreesWithSearchEngineOnRandomPairs) {
  // Two independent isomorphism deciders must agree on every pair.
  util::Rng rng(272);
  for (int trial = 0; trial < 40; ++trial) {
    Graph g0 = erdosRenyi(5, 0.5, rng);
    Graph g1 = (trial % 3 == 0) ? randomIsomorphicCopy(g0, rng) : erdosRenyi(5, 0.5, rng);
    EXPECT_EQ(isomorphicByCanonicalForm(g0, g1), areIsomorphic(g0, g1)) << trial;
  }
}

TEST(Canonical, ClassCountsMatchBurnsideCensus) {
  // Counting isomorphism classes two entirely different ways — canonical
  // deduplication vs Burnside orbit counting — must agree exactly.
  for (std::size_t n = 1; n <= 5; ++n) {
    EXPECT_EQ(countIsoClassesByCanonicalForm(n), lb::exhaustiveCensus(n).isoClasses)
        << "n=" << n;
  }
}

TEST(Canonical, RejectsOversizedGraphs) {
  // The brute oracle still stops at n = 8 (9! permutations is already too
  // many); the branch-and-bound engine stops at the 64-bit pattern limit.
  EXPECT_THROW(bruteForceCanonicalForm(Graph(9)), std::invalid_argument);
  EXPECT_THROW(canonicalForm(Graph(65)), std::invalid_argument);
  EXPECT_NO_THROW(canonicalForm(Graph(9)));
}

TEST(CanonicalCache, SecondLookupIsAHit) {
  canonicalFormCacheResetForTests();
  util::Rng rng(274);
  Graph g = erdosRenyi(7, 0.5, rng);
  const std::size_t before = canonicalFormCacheSearches();
  std::vector<std::uint8_t> first = cachedCanonicalForm(g);
  EXPECT_EQ(canonicalFormCacheSearches(), before + 1);
  EXPECT_EQ(cachedCanonicalForm(g), first);
  EXPECT_EQ(canonicalFormCacheSearches(), before + 1);  // No new search ran.
  EXPECT_EQ(first, canonicalForm(g));

  // A different graph is a distinct entry.
  cachedCanonicalForm(erdosRenyi(7, 0.5, rng));
  EXPECT_EQ(canonicalFormCacheSearches(), before + 2);
}

TEST(CanonicalCache, ConcurrentFirstUseRunsExactlyOneSearch) {
  canonicalFormCacheResetForTests();
  util::Rng rng(275);
  Graph g = erdosRenyi(8, 0.5, rng);
  const std::size_t before = canonicalFormCacheSearches();

  const std::size_t threads = 8;
  std::vector<std::vector<std::uint8_t>> seen(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    pool.emplace_back([&, i] { seen[i] = cachedCanonicalForm(g); });
  }
  for (std::thread& t : pool) t.join();

  // Single-flight: every thread observed the same form and only one search
  // ran, no matter how the threads raced to the empty cache.
  EXPECT_EQ(canonicalFormCacheSearches(), before + 1);
  for (std::size_t i = 1; i < threads; ++i) EXPECT_EQ(seen[i], seen[0]);
  EXPECT_EQ(seen[0], canonicalForm(g));
}

}  // namespace
}  // namespace dip::graph
