// The process-wide memoized prime cache (util/primes): hit/miss semantics,
// reproducibility of the window-derived search, and single-flight locking
// under concurrent first use.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/biguint.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::util {
namespace {

TEST(prime_cache, CachedMatchesColdSearch) {
  primeCacheResetForTests();
  const BigUInt lo{10000};
  const BigUInt hi{100000};

  BigUInt cached = cachedPrimeInRange(lo, hi);
  // The determinism contract: the cache seeds its search purely from the
  // window, so a cold search with the derived seed reproduces it exactly.
  Rng cold(primeSearchSeed(lo, hi));
  BigUInt fresh = findPrimeInRange(lo, hi, cold);
  EXPECT_EQ(cached, fresh);
  EXPECT_TRUE(cached >= lo);
  EXPECT_TRUE(cached <= hi);
}

TEST(prime_cache, SecondLookupIsAHit) {
  primeCacheResetForTests();
  const BigUInt lo{3000};
  const BigUInt hi{30000};

  BigUInt first = cachedPrimeInRange(lo, hi);
  std::size_t searches = primeCacheSearchCount();
  EXPECT_EQ(searches, 1u);
  BigUInt second = cachedPrimeInRange(lo, hi);
  EXPECT_EQ(first, second);
  EXPECT_EQ(primeCacheSearchCount(), searches);  // No new search ran.

  // A different window is a distinct entry.
  cachedPrimeInRange(BigUInt{50000}, BigUInt{500000});
  EXPECT_EQ(primeCacheSearchCount(), searches + 1);
}

TEST(prime_cache, CachedPrimeWithBitsIsStable) {
  primeCacheResetForTests();
  BigUInt p = cachedPrimeWithBits(24);
  EXPECT_EQ(p.bitLength(), 24u);
  EXPECT_EQ(p, cachedPrimeWithBits(24));
  EXPECT_EQ(primeCacheSearchCount(), 1u);
}

TEST(prime_cache, ConcurrentFirstUseRunsExactlyOneSearch) {
  primeCacheResetForTests();
  const BigUInt lo{7000000};
  const BigUInt hi{70000000};

  const std::size_t threads = 8;
  std::vector<BigUInt> seen(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    pool.emplace_back([&, i] { seen[i] = cachedPrimeInRange(lo, hi); });
  }
  for (std::thread& t : pool) t.join();

  // Single-flight: every thread observed the same value and only one real
  // search ran, no matter how the threads raced to the empty cache.
  EXPECT_EQ(primeCacheSearchCount(), 1u);
  for (std::size_t i = 1; i < threads; ++i) EXPECT_EQ(seen[i], seen[0]);
  Rng cold(primeSearchSeed(lo, hi));
  EXPECT_EQ(seen[0], findPrimeInRange(lo, hi, cold));
}

}  // namespace
}  // namespace dip::util
