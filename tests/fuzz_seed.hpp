// Shared seed plumbing for the fuzz tests: every fuzz iteration draws all
// of its randomness from a counter-based child stream, exactly like the
// trial engine (Rng(masterSeed).child(index) — a pure function of the
// pair), and failures carry a reproduction line naming that pair. To replay
// one failing iteration, construct fuzzStream(seed, trial) and run the loop
// body once.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/rng.hpp"

namespace dip::testutil {

inline util::Rng fuzzStream(std::uint64_t masterSeed, std::uint64_t trial) {
  return util::Rng(masterSeed).child(trial);
}

// The line a failing assertion prints, in the same --seed vocabulary the
// benches use for the trial engine.
inline std::string seedLine(std::uint64_t masterSeed, std::uint64_t trial) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer),
                "repro: --seed 0x%llX trial %llu (stream = Rng(seed).child(trial))",
                static_cast<unsigned long long>(masterSeed),
                static_cast<unsigned long long>(trial));
  return buffer;
}

}  // namespace dip::testutil
