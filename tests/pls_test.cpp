// Tests for the "distributed NP" baselines: the Theta(n^2) SymLCP of [17]
// and the full-information GNI scheme.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "pls/gni_fullinfo.hpp"
#include "pls/sym_lcp.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::pls {
namespace {

using graph::Graph;
using util::Rng;

TEST(SymLcp, HonestAdviceAcceptedOnSymmetricGraphs) {
  Rng rng(131);
  for (std::size_t n : {6u, 10u, 14u}) {
    Graph g = graph::randomSymmetricConnected(n, rng);
    auto advice = SymLcp::honestAdvice(g);
    ASSERT_TRUE(advice.has_value());
    std::vector<SymLcpAdvice> perNode(n, *advice);
    EXPECT_TRUE(SymLcp::accepts(g, perNode));
  }
}

TEST(SymLcp, NoAdviceForRigidGraphs) {
  Rng rng(132);
  Graph g = graph::randomRigidConnected(8, rng);
  EXPECT_FALSE(SymLcp::honestAdvice(g).has_value());
}

TEST(SymLcp, SoundAgainstFakePermutation) {
  // Any advice on a rigid graph is rejected: the claimed matrix must match
  // reality (each row endorsed), and no non-trivial rho preserves it.
  Rng rng(133);
  Graph g = graph::randomRigidConnected(7, rng);
  const std::size_t n = g.numVertices();
  SymLcpAdvice advice;
  for (graph::Vertex v = 0; v < n; ++v) advice.matrixRows.push_back(g.row(v));
  advice.rho = graph::randomPermutation(n, rng);
  while (graph::isIdentity(advice.rho)) advice.rho = graph::randomPermutation(n, rng);
  for (graph::Vertex v = 0; v < n; ++v) {
    if (advice.rho[v] != v) {
      advice.witness = v;
      break;
    }
  }
  std::vector<SymLcpAdvice> perNode(n, advice);
  EXPECT_FALSE(SymLcp::accepts(g, perNode));
}

TEST(SymLcp, SoundAgainstLiedMatrix) {
  // The prover lies about the matrix (to fake a symmetric graph): the node
  // owning a mismatched row rejects.
  Rng rng(134);
  Graph rigid = graph::randomRigidConnected(6, rng);
  Graph symmetric = graph::randomSymmetricConnected(6, rng);
  auto advice = SymLcp::honestAdvice(symmetric);
  ASSERT_TRUE(advice.has_value());
  std::vector<SymLcpAdvice> perNode(6, *advice);
  EXPECT_FALSE(SymLcp::accepts(rigid, perNode));
}

TEST(SymLcp, InconsistentAdviceCaughtByNeighbors) {
  Rng rng(135);
  Graph g = graph::randomSymmetricConnected(8, rng);
  auto advice = SymLcp::honestAdvice(g);
  ASSERT_TRUE(advice.has_value());
  std::vector<SymLcpAdvice> perNode(8, *advice);
  // Give one node a subtly different witness — neighbors must notice.
  perNode[3].witness = (perNode[3].witness + 1) % 8;
  auto decisions = SymLcp::verify(g, perNode);
  bool someReject = false;
  for (bool d : decisions) someReject |= !d;
  EXPECT_TRUE(someReject);
}

TEST(SymLcp, IdentityRhoRejected) {
  Rng rng(136);
  Graph g = graph::randomSymmetricConnected(6, rng);
  auto advice = SymLcp::honestAdvice(g);
  ASSERT_TRUE(advice.has_value());
  advice->rho = graph::identityPermutation(6);
  advice->witness = 0;
  std::vector<SymLcpAdvice> perNode(6, *advice);
  EXPECT_FALSE(SymLcp::accepts(g, perNode));
}

TEST(SymLcp, AdviceBitsAreQuadratic) {
  EXPECT_EQ(SymLcp::adviceBitsPerNode(16), 16u * 16 + 16 * 4 + 4);
  // Quadratic growth: quadrupling from n to 2n (up to the log factor).
  for (std::size_t n : {32u, 64u, 128u}) {
    double ratio = static_cast<double>(SymLcp::adviceBitsPerNode(2 * n)) /
                   static_cast<double>(SymLcp::adviceBitsPerNode(n));
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 4.5);
  }
}

TEST(GniFullInfo, AcceptsNonIsomorphicPairs) {
  Rng rng(137);
  Graph g0 = graph::randomRigidConnected(7, rng);
  Graph g1 = graph::randomRigidConnected(7, rng);
  while (graph::areIsomorphic(g0, g1)) g1 = graph::randomRigidConnected(7, rng);

  std::vector<util::DynBitset> inputs;
  for (graph::Vertex v = 0; v < 7; ++v) inputs.push_back(g1.row(v));
  std::vector<GniFullInfoAdvice> perNode(7, GniFullInfo::honestAdvice(g0, g1));
  EXPECT_TRUE(GniFullInfo::accepts(g0, inputs, perNode));
}

TEST(GniFullInfo, RejectsIsomorphicPairs) {
  Rng rng(138);
  Graph g0 = graph::randomRigidConnected(7, rng);
  Graph g1 = graph::randomIsomorphicCopy(g0, rng);
  std::vector<util::DynBitset> inputs;
  for (graph::Vertex v = 0; v < 7; ++v) inputs.push_back(g1.row(v));
  std::vector<GniFullInfoAdvice> perNode(7, GniFullInfo::honestAdvice(g0, g1));
  EXPECT_FALSE(GniFullInfo::accepts(g0, inputs, perNode));
}

TEST(GniFullInfo, RejectsLiesAboutEitherGraph) {
  // The prover cannot pretend the graphs differ by lying about rows: each
  // node endorses its own row of both graphs.
  Rng rng(139);
  Graph g0 = graph::randomRigidConnected(6, rng);
  Graph g1 = graph::randomIsomorphicCopy(g0, rng);
  Graph fake = graph::randomRigidConnected(6, rng);
  while (graph::areIsomorphic(fake, g0)) fake = graph::randomRigidConnected(6, rng);

  std::vector<util::DynBitset> inputs;
  for (graph::Vertex v = 0; v < 6; ++v) inputs.push_back(g1.row(v));
  // Lie: present `fake` as the second graph.
  std::vector<GniFullInfoAdvice> perNode(6, GniFullInfo::honestAdvice(g0, fake));
  EXPECT_FALSE(GniFullInfo::accepts(g0, inputs, perNode));
}

TEST(GniFullInfo, MalformedRowsRejected) {
  Rng rng(140);
  Graph g0 = graph::randomRigidConnected(6, rng);
  Graph g1 = graph::randomRigidConnected(6, rng);
  while (graph::areIsomorphic(g0, g1)) g1 = graph::randomRigidConnected(6, rng);
  std::vector<util::DynBitset> inputs;
  for (graph::Vertex v = 0; v < 6; ++v) inputs.push_back(g1.row(v));

  auto advice = GniFullInfo::honestAdvice(g0, g1);
  advice.g1Rows[2].set(2);  // Self-loop: not a valid adjacency row. But node
                            // 2 endorses its own row, so give the tampered
                            // copy to everyone (consistent lie).
  std::vector<GniFullInfoAdvice> perNode(6, advice);
  EXPECT_FALSE(GniFullInfo::accepts(g0, inputs, perNode));
}

TEST(GniFullInfo, AdviceBitsQuadratic) {
  EXPECT_EQ(GniFullInfo::adviceBitsPerNode(10), 200u);
  EXPECT_EQ(GniFullInfo::adviceBitsPerNode(100), 20000u);
}

}  // namespace
}  // namespace dip::pls
