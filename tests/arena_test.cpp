// The bump arena behind the batch hash engine's tables and the trial
// workers' per-trial scratch. The properties under test are exactly the
// ones the batch evaluator leans on:
//   - alignment of every slice, for every legal power-of-two request;
//   - reset-and-reuse pointer identity (identical allocation sequences after
//     reset() reproduce identical addresses — table pointers stay stable
//     across same-shape rebinds);
//   - growth boundaries: block chaining, geometric capacity growth, and
//     oversized single requests;
//   - under AddressSanitizer, reset() poisons retired regions so stale table
//     pointers fault instead of silently reading recycled memory.
// CI runs this suite in the asan-ubsan job (full ctest) where the poisoning
// tests are active; elsewhere they compile to skips.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DIP_TEST_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define DIP_TEST_ASAN 1
#endif

#if defined(DIP_TEST_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace dip::util {
namespace {

TEST(arena, AlignmentHonoredForEveryLegalAlign) {
  Arena arena;
  for (std::size_t align = 1; align <= alignof(std::max_align_t); align *= 2) {
    for (std::size_t bytes : {1u, 3u, 8u, 17u, 64u, 1000u}) {
      void* p = arena.allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
      // The slice must be writable end to end.
      std::memset(p, 0xAB, bytes);
    }
  }
}

TEST(arena, RejectsIllegalAlignment) {
  Arena arena;
  EXPECT_THROW(arena.allocate(8, 3), std::invalid_argument);
  EXPECT_THROW(arena.allocate(8, 0), std::invalid_argument);
  EXPECT_THROW(arena.allocate(8, 2 * alignof(std::max_align_t)),
               std::invalid_argument);
}

TEST(arena, ZeroByteAllocationsAreValidAndDistinctFromPayloads) {
  Arena arena;
  void* a = arena.allocate(0);
  void* b = arena.allocate(16);
  void* c = arena.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(arena, ResetThenIdenticalSequenceReproducesIdenticalPointers) {
  Arena arena;
  // A shape like the batch evaluator's: a few differently-sized and
  // differently-aligned tables, including one that forces a second block.
  const std::size_t sizes[] = {48, 8, Arena::kDefaultBlockBytes + 100, 256, 1};
  const std::size_t aligns[] = {8, 1, 16, 8, 1};

  std::vector<void*> first;
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    first.push_back(arena.allocate(sizes[i], aligns[i]));
  }
  const std::size_t usedBefore = arena.bytesInUse();
  const std::size_t capacityBefore = arena.capacity();
  const std::size_t blocksBefore = arena.blockCount();

  arena.reset();
  EXPECT_EQ(arena.bytesInUse(), 0u);
  EXPECT_EQ(arena.capacity(), capacityBefore) << "reset must keep storage";
  EXPECT_EQ(arena.blockCount(), blocksBefore);

  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    EXPECT_EQ(arena.allocate(sizes[i], aligns[i]), first[i]) << "slice " << i;
  }
  EXPECT_EQ(arena.bytesInUse(), usedBefore);
}

TEST(arena, GrowthBoundaryChainsBlocksGeometrically) {
  Arena arena;
  EXPECT_EQ(arena.blockCount(), 0u);
  arena.allocate(1);
  EXPECT_EQ(arena.blockCount(), 1u);
  EXPECT_EQ(arena.capacity(), Arena::kDefaultBlockBytes);

  // Fill the remainder of block 1, then one more byte must chain block 2.
  arena.allocate(Arena::kDefaultBlockBytes - arena.bytesInUse(), 1);
  EXPECT_EQ(arena.blockCount(), 1u);
  arena.allocate(1, 1);
  EXPECT_EQ(arena.blockCount(), 2u);
  EXPECT_GE(arena.capacity(), 2 * Arena::kDefaultBlockBytes);

  // A request larger than the doubled size gets a block at least that big.
  const std::size_t huge = 16 * Arena::kDefaultBlockBytes;
  void* p = arena.allocate(huge, 1);
  std::memset(p, 0x5A, huge);
  EXPECT_GE(arena.capacity(), huge);
}

TEST(arena, ManySmallAllocationsStayWithinGeometricCapacity) {
  Arena arena;
  std::size_t total = 0;
  for (int i = 0; i < 20000; ++i) {
    arena.allocate(24, 8);
    total += 24;
  }
  EXPECT_GE(arena.capacity(), total);
  // Geometric doubling wastes at most ~2x plus per-slice alignment padding.
  EXPECT_LE(arena.capacity(), 4 * total + Arena::kMaxBlockBytes);
}

TEST(arena, ReuseAfterResetIsWritableEverywhere) {
  Arena arena;
  for (int round = 0; round < 50; ++round) {
    arena.reset();
    auto* words = arena.allocateArray<std::uint64_t>(512);
    for (int i = 0; i < 512; ++i) {
      EXPECT_EQ(words[i], 0u);  // allocateArray zero-initializes.
      words[i] = 0xFEEDFACEull + i;
    }
  }
}

#if defined(DIP_TEST_ASAN)
TEST(arena, AsanPoisonsResetRegions) {
  Arena arena;
  auto* slice = static_cast<unsigned char*>(arena.allocate(64, 8));
  slice[0] = 1;
  EXPECT_EQ(__asan_address_is_poisoned(slice), 0);
  arena.reset();
  // After reset the retired slice is poisoned: a stale table pointer is a
  // diagnosable fault, not silent reuse.
  EXPECT_EQ(__asan_address_is_poisoned(slice), 1);
  // Reallocating the same shape unpoisons exactly the slice again.
  auto* again = static_cast<unsigned char*>(arena.allocate(64, 8));
  EXPECT_EQ(again, slice);
  EXPECT_EQ(__asan_address_is_poisoned(again), 0);
  EXPECT_EQ(__asan_address_is_poisoned(again + 63), 0);
}

TEST(arena, AsanPoisonsUnusedTail) {
  Arena arena;
  auto* slice = static_cast<unsigned char*>(arena.allocate(16, 8));
  // The byte just past the slice (padding / unallocated tail) is poisoned.
  EXPECT_EQ(__asan_address_is_poisoned(slice + 16), 1);
}
#else
TEST(arena, AsanPoisonsResetRegions) {
  GTEST_SKIP() << "AddressSanitizer not enabled in this build";
}
#endif

}  // namespace
}  // namespace dip::util
