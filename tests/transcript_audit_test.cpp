// Edge cases for the Transcript bit accounting plus the DIP_AUDIT runtime
// cross-check machinery (net/audit.hpp): the charged numbers are the paper's
// f(n) measure, so wraparound, bad vertices and charge/encoding mismatches
// must all fail loudly instead of corrupting cost reports. The final section
// drives wire-mutated provers through real protocol runs: an adversarial
// round must be cleanly accepted/rejected (or die at the decoder as
// MutantRejected) — a std::logic_error would mean the mutation desynced the
// charge accounting from the wire, which is an implementation bug, not a
// cheater being caught.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "adv/adapters_wire.hpp"
#include "adv/mutator.hpp"
#include "core/sym_dmam.hpp"
#include "core/sym_input.hpp"
#include "core/wire.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "net/audit.hpp"
#include "net/transcript.hpp"
#include "util/rng.hpp"

namespace dip::net {
namespace {

constexpr std::size_t kSizeMax = std::numeric_limits<std::size_t>::max();

TEST(TranscriptEdge, ZeroNodeTranscript) {
  Transcript t(0);
  EXPECT_EQ(t.numNodes(), 0u);
  EXPECT_EQ(t.maxPerNodeBits(), 0u);
  EXPECT_EQ(t.totalBits(), 0u);
  t.beginRound("empty");
  t.chargeBroadcastFromProver(17);  // Broadcast to nobody: a no-op.
  EXPECT_EQ(t.totalBits(), 0u);
  EXPECT_THROW(t.chargeToProver(0, 1), std::out_of_range);
  EXPECT_THROW(t.chargeFromProver(0, 1), std::out_of_range);
  EXPECT_THROW(t.roundBitsToProver(0), std::out_of_range);
}

TEST(TranscriptEdge, BeginRoundBeforeAnyCharge) {
  Transcript t(3);
  t.beginRound("first");
  EXPECT_EQ(t.rounds().size(), 1u);
  EXPECT_EQ(t.rounds().back().maxBitsThisRound, 0u);
  for (graph::Vertex v = 0; v < 3; ++v) {
    EXPECT_EQ(t.roundBitsToProver(v), 0u);
    EXPECT_EQ(t.roundBitsFromProver(v), 0u);
  }
  // Charges before any beginRound are counted "since construction".
  Transcript untracked(2);
  untracked.chargeToProver(1, 9);
  EXPECT_EQ(untracked.roundBitsToProver(1), 9u);
  EXPECT_TRUE(untracked.rounds().empty());
}

TEST(TranscriptEdge, ChargeOverflowNearSizeMaxThrows) {
  Transcript t(2);
  t.chargeToProver(0, kSizeMax);
  EXPECT_EQ(t.roundBitsToProver(0), kSizeMax);
  EXPECT_THROW(t.chargeToProver(0, 1), std::overflow_error);
  // The failed charge must not have corrupted the stored total.
  EXPECT_EQ(t.perNode()[0].bitsToProver, kSizeMax);

  Transcript u(2);
  u.chargeFromProver(1, kSizeMax - 4);
  EXPECT_THROW(u.chargeFromProver(1, 5), std::overflow_error);
  u.chargeFromProver(1, 4);  // Exactly reaching the max is still fine.
  EXPECT_EQ(u.perNode()[1].bitsFromProver, kSizeMax);

  Transcript b(3);
  b.chargeFromProver(2, kSizeMax);
  EXPECT_THROW(b.chargeBroadcastFromProver(1), std::overflow_error);
}

TEST(TranscriptEdge, MaxAndTotalConsistentAfterBroadcastCharging) {
  Transcript t(4);
  t.beginRound("M: broadcast");
  t.chargeBroadcastFromProver(10);
  EXPECT_EQ(t.maxPerNodeBits(), 10u);
  EXPECT_EQ(t.totalBits(), 40u);
  t.chargeToProver(1, 5);
  t.chargeFromProver(1, 3);
  EXPECT_EQ(t.maxPerNodeBits(), 18u);
  EXPECT_EQ(t.totalBits(), 48u);
  std::size_t sum = 0;
  for (const NodeCost& cost : t.perNode()) sum += cost.total();
  EXPECT_EQ(t.totalBits(), sum);
  EXPECT_EQ(t.rounds().back().maxBitsThisRound, 18u);
  EXPECT_EQ(t.roundBitsFromProver(1), 13u);
  EXPECT_EQ(t.roundBitsToProver(1), 5u);
}

TEST(TranscriptEdge, RoundWindowsResetAtBeginRound) {
  Transcript t(2);
  t.beginRound("A");
  t.chargeToProver(0, 7);
  EXPECT_EQ(t.roundBitsToProver(0), 7u);
  t.beginRound("M");
  EXPECT_EQ(t.roundBitsToProver(0), 0u);
  t.chargeFromProver(0, 11);
  EXPECT_EQ(t.roundBitsFromProver(0), 11u);
  EXPECT_EQ(t.perNode()[0].bitsToProver, 7u);  // Cumulative totals persist.
}

TEST(AuditCharge, MatchingBitsPass) {
  EXPECT_NO_THROW(auditCharge("Test/M", 3, 128, 128));
  EXPECT_NO_THROW(auditCharge("Test/M", 0, 0, 0));
}

TEST(AuditCharge, MismatchThrowsWithContext) {
  try {
    auditCharge("Proto/M1", 5, 100, 96);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("Proto/M1"), std::string::npos) << what;
    EXPECT_NE(what.find("100"), std::string::npos) << what;
    EXPECT_NE(what.find("96"), std::string::npos) << what;
  }
}

TEST(AuditChargedRound, CrossChecksEveryNode) {
  Transcript t(3);
  t.beginRound("M");
  t.chargeBroadcastFromProver(4);
  t.chargeFromProver(0, 2);
  t.chargeFromProver(1, 2);
  t.chargeFromProver(2, 2);

  auto encode = [] {
    core::wire::EncodedRound round;
    round.broadcast.writeUInt(9, 4);
    round.unicast.resize(3);
    for (auto& w : round.unicast) w.writeUInt(3, 2);
    return round;
  };
  EXPECT_NO_THROW(auditChargedRound("Test/M", t, encode));

  // One node undercharged by one bit: the auditor must notice.
  t.chargeFromProver(2, 1);
  EXPECT_THROW(auditChargedRound("Test/M", t, encode), std::logic_error);
}

TEST(AuditChargedRound, AdversarialEncodingFailureIsSkipped) {
  // Messages with no honest wire form (the encoder throws invalid_argument)
  // are skipped by the auditor: the decision checks reject them instead.
  Transcript t(1);
  t.beginRound("M");
  t.chargeFromProver(0, 1);
  auto encode = []() -> core::wire::EncodedRound {
    throw std::invalid_argument("no honest wire form");
  };
  EXPECT_NO_THROW(auditChargedRound("Test/M", t, encode));
}

}  // namespace
}  // namespace dip::net

namespace dip::adv {
namespace {

// Runs every standard mutator against a protocol a few times and classifies
// each trial. The contract under test: a mutated round either runs to a
// verdict (the charge-vs-wire audit holds — decisive when the suite is
// compiled with DIP_AUDIT, as the asan preset is) or throws MutantRejected
// at the decode boundary; std::logic_error must never escape, because run()
// charges from the decoded message the verifiers actually consume.
struct MutantAuditCounts {
  int verdicts = 0;
  int rejected = 0;
};

template <typename RunTrial>
MutantAuditCounts auditMutants(RunTrial&& runTrial, int trialsPerMutator) {
  MutantAuditCounts counts;
  const auto mutators = standardMutators();
  for (std::size_t m = 0; m < mutators.size(); ++m) {
    for (int t = 0; t < trialsPerMutator; ++t) {
      SCOPED_TRACE(std::string(mutators[m]->name()) + " trial " + std::to_string(t));
      util::Rng trialRng = util::Rng(0xA0D1'7000 + m).child(static_cast<std::uint64_t>(t));
      try {
        runTrial(*mutators[m], trialRng);
        ++counts.verdicts;
      } catch (const MutantRejected&) {
        ++counts.rejected;
      } catch (const std::logic_error& err) {
        ADD_FAILURE() << "mutated round desynced the charge audit: " << err.what();
      }
    }
  }
  return counts;
}

TEST(MutantChargeAudit, SymDmamMutantsNeverDesyncCharges) {
  const std::size_t n = 8;
  util::Rng setup(0xA0D17);
  core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(n));
  // Symmetric graph: the honest base prover needs a real automorphism, and
  // honest-round mutants are the sharpest audit probe (their charges come
  // from a round that WOULD have passed).
  graph::Graph g = graph::randomSymmetricConnected(n, setup);
  MutantAuditCounts counts = auditMutants(
      [&](const MessageMutator& mutator, util::Rng& rng) {
        auto base = std::make_unique<core::HonestSymDmamProver>(protocol.family());
        MutantSymDmamProver prover(std::move(base), mutator, protocol.family(),
                                   rng.child(1));
        protocol.run(g, prover, rng);
      },
      10);
  EXPECT_GT(counts.verdicts, 0);
  // The truncation mutator (at least) must actually exercise the decoder
  // rejection path, otherwise this test is vacuously green.
  EXPECT_GT(counts.rejected, 0);
}

TEST(MutantChargeAudit, SymInputMutantsNeverDesyncCharges) {
  const std::size_t n = 8;
  util::Rng setup(0xA0D18);
  core::SymInputProtocol protocol(hash::makeProtocol1FamilyCached(n));
  // Symmetric input: the honest prover needs a real automorphism to commit.
  core::SymInputInstance instance{graph::randomConnected(n, n / 2, setup),
                                  graph::randomSymmetricConnected(n, setup)};
  MutantAuditCounts counts = auditMutants(
      [&](const MessageMutator& mutator, util::Rng& rng) {
        auto base = std::make_unique<core::HonestSymInputProver>(protocol.family());
        MutantSymInputProver prover(std::move(base), mutator, protocol.family(),
                                    rng.child(1));
        protocol.run(instance, prover, rng);
      },
      10);
  EXPECT_GT(counts.verdicts, 0);
  EXPECT_GT(counts.rejected, 0);
}

}  // namespace
}  // namespace dip::adv
