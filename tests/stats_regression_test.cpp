// Statistical acceptance regression tier (seed-pinned, engine-driven).
//
// One completeness cell and one committed-cheater soundness cell per
// protocol, run through sim::estimateAcceptance with pinned master seeds.
// The assertions are the paper's thresholds — completeness >= 2/3,
// soundness <= 1/3 — plus a Wilson-interval separation (the YES lower
// confidence bound must clear the NO upper bound), so a regression that
// merely nudges rates toward each other fails before it crosses 1/2.
// Thread counts are pinned explicitly: the engine's determinism contract
// makes the cells reproducible byte-for-byte regardless.
//
// On top of the statistical thresholds, every cell pins its EXACT golden
// row (accepts, maxPerNodeBits, digest), captured before the batch hash
// engine rewired the trial paths. The batch engine changes evaluation
// strategy, never values, so these rows must not move — under either
// setting of the DIP_BATCH toggle.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "core/dsym_dam.hpp"
#include "core/gni_amam.hpp"
#include "core/gni_general.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "core/sym_input.hpp"
#include "graph/builders.hpp"
#include "graph/generators.hpp"
#include "hash/batch_eval.hpp"
#include "hash/linear_hash.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

namespace dip::sim {
namespace {

using graph::Graph;
using util::Rng;

TrialConfig config(std::uint64_t masterSeed) {
  TrialConfig c;
  c.masterSeed = masterSeed;
  c.threads = 4;
  return c;
}

// Every cell runs twice, batch engine off then on: the golden rows are
// engine-invariant (the batch engine changes evaluation strategy, never
// values), so both passes must reproduce the identical pinned rows.
template <typename Cell>
void runUnderBothEngines(Cell&& cell) {
  const bool saved = hash::batchEnabled();
  hash::setBatchEnabled(false);
  {
    SCOPED_TRACE("batch engine off");
    cell();
  }
  hash::setBatchEnabled(true);
  {
    SCOPED_TRACE("batch engine on");
    cell();
  }
  hash::setBatchEnabled(saved);
}

// Pre-batch-rewiring golden row for a cell: accept count, per-node cost
// and transcript digest are pinned exactly, batch engine on or off.
void expectGolden(const TrialStats& stats, std::size_t accepts,
                  std::size_t maxPerNodeBits, std::uint64_t digest) {
  EXPECT_EQ(stats.accepts, accepts);
  EXPECT_EQ(stats.maxPerNodeBits, maxPerNodeBits);
  EXPECT_EQ(stats.digest, digest) << std::hex << "got digest 0x" << stats.digest;
}

void expectSeparation(const TrialStats& yes, const TrialStats& no) {
  EXPECT_GE(yes.rate(), 2.0 / 3.0);
  EXPECT_LE(no.rate(), 1.0 / 3.0);
  // The confidence intervals must not touch: yes stays above no with margin.
  EXPECT_GT(yes.interval().low, no.interval().high);
}

TEST(stats_regression, SymDmamProtocol1) {
  const std::size_t n = 10;
  Rng rng(501);
  core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(n));
  Graph symmetric = graph::randomSymmetricConnected(n, rng);
  Graph rigid = graph::randomRigidConnected(n, rng);

  runUnderBothEngines([&] {
    TrialStats honest = estimateAcceptance(
        protocol, symmetric,
        [&](std::size_t) {
          return std::make_unique<core::HonestSymDmamProver>(protocol.family());
        },
        120, config(50101));
    TrialStats cheater = estimateAcceptance(
        protocol, rigid,
        [&](std::size_t trial) {
          return std::make_unique<core::CheatingRhoProver>(
              protocol.family(), core::CheatingRhoProver::Strategy::kRandomPermutation,
              trial);
        },
        120, config(50102));
    expectSeparation(honest, cheater);
    // Protocol 1's completeness is perfect; soundness error is <= 1/(10 n).
    EXPECT_EQ(honest.accepts, honest.trials);
    expectGolden(honest, 120, 84, 0xdd6dc81783e05d5full);
    expectGolden(cheater, 0, 84, 0x7a9ab4d2d10ee38dull);
  });
}

TEST(stats_regression, SymDamProtocol2) {
  const std::size_t n = 6;
  Rng rng(502);
  core::SymDamProtocol protocol(hash::makeProtocol2FamilyCached(n));
  Graph symmetric = graph::randomSymmetricConnected(n, rng);
  Graph rigid = graph::randomRigidConnected(n, rng);

  runUnderBothEngines([&] {
    TrialStats honest = estimateAcceptance(
        protocol, symmetric,
        [&](std::size_t) {
          return std::make_unique<core::HonestSymDamProver>(protocol.family());
        },
        60, config(50201));
    // The committed cheater for dAM: an adaptive searcher with budget 1 is
    // morally a committed prover (it cannot retry against the seen seed).
    TrialStats cheater = estimateAcceptance(
        protocol, rigid,
        [&](std::size_t trial) {
          return std::make_unique<core::AdaptiveCollisionProver>(protocol.family(), 1,
                                                                 trial);
        },
        60, config(50202));
    expectSeparation(honest, cheater);
    expectGolden(honest, 60, 139, 0x22ec98eaf93de960ull);
    expectGolden(cheater, 0, 139, 0x1b95d4a2e75b2e07ull);
  });
}

TEST(stats_regression, DSymDam) {
  const std::size_t side = 6;
  Rng rng(503);
  graph::DSymLayout layout = graph::dsymLayout(side, 1);
  // Protocol 1's family shape (p ~ 10..100 N^3, dimension N^2) is exactly
  // the DSym family for N = layout vertices.
  core::DSymDamProtocol protocol(layout,
                                 hash::makeProtocol1FamilyCached(layout.numVertices));

  Graph f = graph::randomRigidConnected(side, rng);
  Graph fOther = graph::randomRigidConnected(side, rng);
  while (fOther == f) fOther = graph::randomRigidConnected(side, rng);
  Graph yes = graph::dsymInstance(f, 1);
  Graph no = graph::dsymNoInstance(f, fOther, 1);
  ASSERT_FALSE(graph::isDSymInstance(no, layout));

  auto factory = [&](std::size_t) {
    return std::make_unique<core::HonestDSymProver>(layout, protocol.family());
  };
  runUnderBothEngines([&] {
    TrialStats honest = estimateAcceptance(protocol, yes, factory, 60, config(50301));
    TrialStats cheater = estimateAcceptance(protocol, no, factory, 120, config(50302));
    expectSeparation(honest, cheater);
    expectGolden(honest, 60, 84, 0x3a459e457f132b33ull);
    expectGolden(cheater, 0, 84, 0x68e01786eba41870ull);
  });
}

TEST(stats_regression, SymInput) {
  const std::size_t n = 8;
  Rng rng(504);
  core::SymInputProtocol protocol(hash::makeProtocol1FamilyCached(n));
  core::SymInputInstance symmetric{graph::randomConnected(n, n / 2, rng),
                                   graph::randomSymmetricConnected(n, rng)};
  core::SymInputInstance rigid{graph::randomConnected(n, n / 2, rng),
                               graph::randomRigidConnected(n, rng)};

  runUnderBothEngines([&] {
    TrialStats honest = estimateAcceptance(
        protocol, symmetric,
        [&](std::size_t) {
          return std::make_unique<core::HonestSymInputProver>(protocol.family());
        },
        100, config(50401));
    TrialStats cheater = estimateAcceptance(
        protocol, rigid,
        [&](std::size_t trial) {
          return std::make_unique<core::CheatingSymInputProver>(
              protocol.family(),
              core::CheatingSymInputProver::Strategy::kFakeRhoHonestClaims, trial);
        },
        120, config(50402));
    expectSeparation(honest, cheater);
    expectGolden(honest, 100, 111, 0x6d8c7df5397fbb0bull);
    expectGolden(cheater, 1, 117, 0xd1f516473d729129ull);
  });
}

TEST(stats_regression, GniAmam) {
  Rng setup(505);
  core::GniParams params = core::GniParams::choose(6, setup);
  core::GniAmamProtocol protocol(params);
  Rng rng(50599);
  core::GniInstance yes = core::gniYesInstance(6, rng);
  core::GniInstance no = core::gniNoInstance(6, rng);

  // The honest strategy is also the optimal cheating strategy on an
  // isomorphic (NO) instance: the candidate set is simply half as large.
  auto factory = [&](std::size_t) {
    return std::make_unique<core::HonestGniProver>(params);
  };
  runUnderBothEngines([&] {
    TrialStats honest = estimateAcceptance(protocol, yes, factory, 12, config(50501));
    TrialStats cheater = estimateAcceptance(protocol, no, factory, 12, config(50502));
    expectSeparation(honest, cheater);
    expectGolden(honest, 12, 16041, 0x960f13c90be3c0feull);
    expectGolden(cheater, 2, 13295, 0x3e78c627342e2eceull);
  });
}

TEST(stats_regression, GniGeneral) {
  Rng setup(506);
  core::GniGeneralParams params = core::GniGeneralParams::choose(6, setup);
  core::GniGeneralProtocol protocol(params);
  Rng rng(50699);
  core::GniInstance yes = core::gniGeneralYesInstance(6, rng);
  core::GniInstance no = core::gniGeneralNoInstance(6, rng);

  auto factory = [&](std::size_t) {
    return std::make_unique<core::HonestGniGeneralProver>(params);
  };
  runUnderBothEngines([&] {
    TrialStats honest = estimateAcceptance(protocol, yes, factory, 10, config(50601));
    TrialStats cheater = estimateAcceptance(protocol, no, factory, 10, config(50602));
    expectSeparation(honest, cheater);
    expectGolden(honest, 10, 19868, 0xa75fd724290064cbull);
    expectGolden(cheater, 0, 15191, 0x6c43e49b05e1ad00ull);
  });
}

}  // namespace
}  // namespace dip::sim
