// The bench_throughput workload's determinism contract: every cell's
// deterministic columns (accepts, trials, maxPerNodeBits, digest) are a pure
// function of the master seed — identical at 1, 2 and 8 worker threads, and
// identical whether the hash paths run through the batch engine (width-N
// lanes, shared power tables) or the scalar evaluator (width 1). Only
// wallSeconds may differ, and TrialStats::sameResults excludes it.
//
// The fast Sym-family cells and the slow GNI cells run as separate tests so
// the sanitizer jobs (this suite is in the tsan preset's regex) keep a
// bounded wall time per test.
#include <gtest/gtest.h>

#include <vector>

#include "hash/batch_eval.hpp"
#include "sim/throughput.hpp"

namespace dip::sim {
namespace {

// Restores the process-wide engine toggle even on assertion failure.
class BatchToggleGuard {
 public:
  BatchToggleGuard() : saved_(hash::batchEnabled()) {}
  ~BatchToggleGuard() { hash::setBatchEnabled(saved_); }

 private:
  bool saved_;
};

TrialConfig config(unsigned threads) {
  TrialConfig c;
  c.masterSeed = 0;  // The committed-baseline workload.
  c.threads = threads;
  return c;
}

void expectSameCells(const std::vector<ThroughputCell>& got,
                     const std::vector<ThroughputCell>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].protocol, want[i].protocol) << label;
    EXPECT_TRUE(got[i].stats.sameResults(want[i].stats))
        << label << " cell " << got[i].protocol << ": accepts " << got[i].stats.accepts
        << "/" << want[i].stats.accepts << " digest " << std::hex
        << got[i].stats.digest << "/" << want[i].stats.digest;
  }
}

TEST(throughput_determinism, FastCellsIdenticalAcrossThreadsAndEngine) {
  BatchToggleGuard guard;
  const ThroughputSelection fastOnly{.fast = true, .gni = false};

  hash::setBatchEnabled(true);
  const std::vector<ThroughputCell> baseline =
      runThroughputWorkload(config(1), fastOnly);
  ASSERT_EQ(baseline.size(), 4u);

  for (bool batch : {true, false}) {
    hash::setBatchEnabled(batch);
    for (unsigned threads : {1u, 2u, 8u}) {
      if (batch && threads == 1) continue;  // That IS the baseline.
      std::vector<ThroughputCell> cells = runThroughputWorkload(config(threads), fastOnly);
      expectSameCells(cells, baseline,
                      batch ? "batch engine" : "scalar engine");
    }
  }
}

TEST(throughput_determinism, GniCellsIdenticalAcrossThreadsAndEngine) {
  BatchToggleGuard guard;
  const ThroughputSelection gniOnly{.fast = false, .gni = true};

  hash::setBatchEnabled(true);
  const std::vector<ThroughputCell> baseline =
      runThroughputWorkload(config(1), gniOnly);
  ASSERT_EQ(baseline.size(), 2u);

  hash::setBatchEnabled(false);
  expectSameCells(runThroughputWorkload(config(1), gniOnly), baseline,
                  "scalar engine");
  hash::setBatchEnabled(true);
  expectSameCells(runThroughputWorkload(config(8), gniOnly), baseline,
                  "batch engine, 8 threads");
}

TEST(throughput_determinism, MasterSeedOffsetsChangeResults) {
  // The master seed must actually reach the per-trial randomness. The fast
  // Sym-family cells cannot show this through TrialStats: honest provers
  // always accept and their wire messages are fixed-width, so accepts and
  // the bit-accounting digest are seed-invariant by design. The GNI cells'
  // transcripts carry variable-width field elements, so their digests (and
  // maxPerNodeBits) shift with the seed.
  BatchToggleGuard guard;
  hash::setBatchEnabled(true);
  const ThroughputSelection gniOnly{.fast = false, .gni = true};
  TrialConfig other = config(1);
  other.masterSeed = 1;
  const std::vector<ThroughputCell> a = runThroughputWorkload(config(1), gniOnly);
  const std::vector<ThroughputCell> b = runThroughputWorkload(other, gniOnly);
  ASSERT_EQ(a.size(), b.size());
  bool anyDiffer = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i].stats.sameResults(b[i].stats)) anyDiffer = true;
  }
  EXPECT_TRUE(anyDiffer) << "master seed must reach every cell";
}

}  // namespace
}  // namespace dip::sim
