// The dipd backpressure primitive, driven with real concurrency: these
// suites run under the tsan preset (see .github/workflows/ci.yml), so the
// blocking, shutdown-while-full and close-then-drain paths are exercised
// with the race detector watching.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/bounded_queue.hpp"

namespace dip::sim {
namespace {

TEST(bounded_queue, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.tryPush(i));
  EXPECT_FALSE(queue.tryPush(99));  // Full.
  for (int i = 0; i < 4; ++i) {
    auto got = queue.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(bounded_queue, ZeroCapacityCoercedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.tryPush(7));
  EXPECT_FALSE(queue.tryPush(8));
}

TEST(bounded_queue, PushBlocksWhenFullUntilPop) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));  // Blocks until the consumer pops.
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // Still blocked on the full queue.
  EXPECT_EQ(queue.pop().value_or(-1), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop().value_or(-1), 2);
}

TEST(bounded_queue, PopBlocksUntilPush) {
  BoundedQueue<int> queue(2);
  std::thread consumer([&] {
    auto got = queue.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 41);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(queue.push(41));
  consumer.join();
}

TEST(bounded_queue, ShutdownWhileFullReleasesBlockedPusher) {
  // The worker-retire race: the reader is wedged mid-push on a full queue
  // when close() arrives. The pusher must wake, fail, and drop its item.
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> result{true};
  std::thread producer([&] { result.store(queue.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
  EXPECT_FALSE(result.load());  // Push failed: closed mid-wait.
  // The item buffered before close still drains.
  EXPECT_EQ(queue.pop().value_or(-1), 1);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(bounded_queue, CloseWakesBlockedPopper) {
  BoundedQueue<int> queue(2);
  std::thread consumer([&] { EXPECT_FALSE(queue.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(5));
  EXPECT_FALSE(queue.tryPush(5));
}

TEST(bounded_queue, CloseThenDrainDeliversBufferedItemsInOrder) {
  BoundedQueue<int> queue(4);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.push(i));
  queue.close();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(queue.pop().value_or(-1), i);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(bounded_queue, MultiProducerMultiConsumerConserveItems) {
  // Backpressure stress: more items than capacity, several producers and
  // consumers. Every pushed value must be popped exactly once.
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 200;
  BoundedQueue<std::uint64_t> queue(4);
  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(static_cast<std::uint64_t>(p * kPerProducer + i)));
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto got = queue.pop()) {
        sum.fetch_add(*got);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  queue.close();
  threads[kProducers].join();
  threads[kProducers + 1].join();
  const std::uint64_t total = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

}  // namespace
}  // namespace dip::sim
