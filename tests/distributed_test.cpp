// Differential determinism: the multi-process DistributedRunner against the
// in-process TrialRunner substrate, across a worker-count x threads-per-
// worker matrix for all six registered workload cells. The contract
// (docs/DISTRIBUTED.md): identical TrialStats AND identical per-trial
// outcome vectors — not statistically close, byte-identical — because both
// substrates compute outcomes as pure functions of (cell, master seed,
// global trial index) and fold through sim::foldOutcomes in index order.
//
// These tests fork real worker processes, so they live in their own binary
// under the `dist_quick` ctest label (like the adv_stress tier) and the
// per-push CI jobs run them as a dedicated step.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/distributed.hpp"
#include "sim/trial.hpp"
#include "sim/workload.hpp"

namespace dip::sim {
namespace {

// Trials per cell for the differential matrix: full committed counts for
// the tiny GNI cells, a fast prefix for the large Sym-family cells (a
// prefix of a deterministic stream is as differential as the whole).
std::size_t matrixLimit(const workload::CellInfo& info) {
  return info.gni ? 0 : 64;  // 0 = the committed full count.
}

struct Reference {
  TrialStats stats;
  std::vector<TrialOutcome> outcomes;
};

Reference inProcessReference(const workload::CellInfo& info, std::uint64_t seed) {
  TrialConfig config;
  config.masterSeed = seed;
  config.threads = 2;  // Thread count must not matter; 2 exercises the pool.
  Reference ref;
  ref.stats = workload::makeCell(info.name)->run(config, matrixLimit(info),
                                                 &ref.outcomes);
  return ref;
}

TEST(distributed_diff, MatchesInProcessAcrossWorkerAndThreadMatrix) {
  const std::uint64_t seed = 0;  // The committed bench/golden base seed.
  std::vector<Reference> refs;
  for (const workload::CellInfo& info : workload::cells()) {
    refs.push_back(inProcessReference(info, seed));
  }

  for (unsigned workers : {1u, 2u, 4u}) {
    for (unsigned threadsPerWorker : {1u, 4u}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " threadsPerWorker=" + std::to_string(threadsPerWorker));
      TrialConfig base;
      base.masterSeed = seed;
      DistributedConfig dist;
      dist.workers = workers;
      dist.threadsPerWorker = threadsPerWorker;
      dist.grain = 8;  // Several ranges per worker even for the tiny cells.
      DistributedRunner runner(base, dist);
      std::size_t i = 0;
      for (const workload::CellInfo& info : workload::cells()) {
        SCOPED_TRACE(std::string(info.name));
        std::vector<TrialOutcome> outcomes;
        const TrialStats stats =
            runner.runCell(info.name, matrixLimit(info), &outcomes);
        EXPECT_TRUE(stats.sameResults(refs[i].stats));
        EXPECT_EQ(outcomes, refs[i].outcomes);
        ++i;
      }
      EXPECT_EQ(runner.liveWorkers(), workers);  // Nobody died doing this.
      runner.shutdown();
    }
  }
}

TEST(distributed_diff, NonZeroBaseSeedPropagatesToWorkers) {
  // The master seed crosses the wire in ASSIGN; both substrates must agree
  // on a non-default seed too. (The honest-prover cells always accept with
  // a fixed bit account, so digests can COINCIDE across seeds — the binding
  // check is the full outcome-vector comparison below, which would expose a
  // worker running the wrong stream.)
  const workload::CellInfo* info = workload::findCell("sym_dam_p2");
  ASSERT_NE(info, nullptr);
  const Reference ref = inProcessReference(*info, 0xABCDEF0123ull);

  TrialConfig base;
  base.masterSeed = 0xABCDEF0123ull;
  DistributedConfig dist;
  dist.workers = 2;
  dist.grain = 8;
  DistributedRunner runner(base, dist);
  std::vector<TrialOutcome> outcomes;
  const TrialStats stats = runner.runCell(info->name, matrixLimit(*info), &outcomes);
  EXPECT_TRUE(stats.sameResults(ref.stats));
  EXPECT_EQ(outcomes, ref.outcomes);
}

TEST(distributed_diff, DaemonSessionServesRepeatedAndMixedRuns) {
  // One fleet, many verification requests (the service shape): repeated
  // runs of the same cell are identical (worker-side cell caches and the
  // coordinator epoch guard), interleaved with a different cell.
  TrialConfig base;
  DistributedConfig dist;
  dist.workers = 2;
  dist.grain = 8;
  DistributedRunner runner(base, dist);
  const TrialStats first = runner.runCell("sym_dmam_p1", 48);
  const TrialStats other = runner.runCell("sym_input", 48);
  const TrialStats second = runner.runCell("sym_dmam_p1", 48);
  EXPECT_TRUE(first.sameResults(second));
  EXPECT_FALSE(first.sameResults(other));

  // And a shorter re-run is a prefix, not a rescaled batch.
  const TrialStats prefix = runner.runCell("sym_dmam_p1", 16);
  EXPECT_EQ(prefix.trials, 16u);
}

TEST(distributed_diff, UnknownCellThrowsWithoutSpawning) {
  DistributedRunner runner(TrialConfig{}, DistributedConfig{});
  EXPECT_THROW((void)runner.runCell("no_such_cell"), std::invalid_argument);
}

TEST(distributed_diff, GrainExtremesStillByteIdentical) {
  // Grain 1 (one trial per ASSIGN, maximal scheduling churn) and a grain
  // larger than the whole run (a single range) bracket the sharding space.
  const workload::CellInfo* info = workload::findCell("sym_dmam_p1");
  ASSERT_NE(info, nullptr);
  const Reference ref = inProcessReference(*info, 0);
  for (std::uint64_t grain : {std::uint64_t{1}, std::uint64_t{1000}}) {
    SCOPED_TRACE("grain=" + std::to_string(grain));
    TrialConfig base;
    DistributedConfig dist;
    dist.workers = 2;
    dist.grain = grain;
    DistributedRunner runner(base, dist);
    std::vector<TrialOutcome> outcomes;
    const TrialStats stats = runner.runCell(info->name, matrixLimit(*info), &outcomes);
    EXPECT_TRUE(stats.sameResults(ref.stats));
    EXPECT_EQ(outcomes, ref.outcomes);
  }
}

}  // namespace
}  // namespace dip::sim
