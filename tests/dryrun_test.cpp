// The structural dry-run engine's contract: a dry run with widths taken
// from the REAL hash families reproduces a measured execution's per-node
// transcript costs bit for bit (same FNV fold, same max), for every
// protocol; the model-width formulas agree with their exact counterparts;
// and dense/CSR representations produce identical reports.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/dsym_dam.hpp"
#include "core/gni_amam.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "graph/builders.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "pls/sym_lcp.hpp"
#include "sim/dryrun.hpp"
#include "util/bitio.hpp"
#include "util/primes.hpp"
#include "util/rng.hpp"

namespace dip::sim {
namespace {

SymWidths widthsOf(std::size_t n, const hash::LinearHashFamily& family) {
  return {util::bitsFor(n), family.seedBits(), family.valueBits()};
}

TEST(DryRun, SymDmamMatchesMeasuredRun) {
  for (std::size_t n : {6u, 8u, 12u}) {
    core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(n));
    const SymWidths widths = widthsOf(n, protocol.family());
    util::Rng rng(7000 + n);
    graph::Graph g = graph::randomSymmetricConnected(n, rng);
    core::HonestSymDmamProver prover(protocol.family());
    core::RunResult run = protocol.run(g, prover, rng);

    const DryRunReport dry = dryRunSymDmam(g, widths);
    EXPECT_EQ(dry.costDigest, costDigestOf(run.transcript)) << "n=" << n;
    EXPECT_EQ(dry.maxPerNodeBits, run.transcript.maxPerNodeBits()) << "n=" << n;
    EXPECT_EQ(dry.totalBits, run.transcript.totalBits()) << "n=" << n;
  }
}

TEST(DryRun, SymDamMatchesMeasuredRun) {
  for (std::size_t n : {6u, 8u}) {
    core::SymDamProtocol protocol(hash::makeProtocol2FamilyCached(n));
    const SymWidths widths = widthsOf(n, protocol.family());
    util::Rng rng(7100 + n);
    graph::Graph g = graph::randomSymmetricConnected(n, rng);
    core::HonestSymDamProver prover(protocol.family());
    core::RunResult run = protocol.run(g, prover, rng);

    const DryRunReport dry = dryRunSymDam(g, widths);
    EXPECT_EQ(dry.costDigest, costDigestOf(run.transcript)) << "n=" << n;
    EXPECT_EQ(dry.maxPerNodeBits, run.transcript.maxPerNodeBits()) << "n=" << n;
  }
}

TEST(DryRun, DsymDamMatchesMeasuredRun) {
  const std::size_t side = 6;
  graph::DSymLayout layout = graph::dsymLayout(side, 1);
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{layout.numVertices}, 3);
  hash::LinearHashFamily family(
      util::cachedPrimeInRange(util::BigUInt{10} * n3, util::BigUInt{100} * n3),
      static_cast<std::uint64_t>(layout.numVertices) * layout.numVertices);
  core::DSymDamProtocol protocol(layout, family);
  const SymWidths widths = widthsOf(layout.numVertices, protocol.family());

  util::Rng rng(7200);
  graph::Graph f = graph::randomRigidConnected(side, rng);
  graph::Graph g = graph::dsymInstance(f, 1);
  core::HonestDSymProver prover(layout, protocol.family());
  core::RunResult run = protocol.run(g, prover, rng);

  const DryRunReport dry = dryRunDsymDam(g, widths);
  EXPECT_EQ(dry.costDigest, costDigestOf(run.transcript));
  EXPECT_EQ(dry.maxPerNodeBits, run.transcript.maxPerNodeBits());
}

TEST(DryRun, GniMatchesMeasuredRun) {
  const std::size_t n = 6;
  util::Rng setupRng(7300);
  core::GniParams params = core::GniParams::choose(n, setupRng);
  core::GniAmamProtocol protocol(params);
  GniWidths widths;
  widths.idBits = util::bitsFor(n);
  widths.seedBlockBits = params.gsHash.seedBits() + params.ell;
  widths.innerBits = params.gsHash.innerValueBits();
  widths.checkBits = params.checkFamily.seedBits();
  widths.repetitions = params.repetitions;

  util::Rng instRng(7301);
  const core::GniInstance instances[] = {core::gniYesInstance(n, instRng),
                                         core::gniNoInstance(n, instRng)};
  for (std::size_t which = 0; which < 2; ++which) {
    const core::GniInstance& instance = instances[which];
    const std::uint64_t seed = 7310 + which;

    // Replicate run()'s A1 sampling (rng.split(v), then per repetition a GS
    // seed and an ell-bit target) to recover the honest prover's claim
    // profile — the only prover-dependent input of the GNI dry run.
    util::Rng replayRng(seed);
    std::vector<std::vector<core::GniChallenge>> challenges(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      util::Rng nodeRng = replayRng.split(v);
      for (std::size_t j = 0; j < params.repetitions; ++j) {
        core::GniChallenge challenge;
        challenge.seed = params.gsHash.randomSeed(nodeRng);
        challenge.y = nodeRng.nextBigBits(params.ell);
        challenges[v].push_back(std::move(challenge));
      }
    }
    core::HonestGniProver replayProver(params);
    core::GniFirstMessage first = replayProver.firstMessage(instance, challenges);
    GniClaimProfile profile;
    profile.claimed = first.perNode[0].claimed;
    profile.b = first.perNode[0].b;

    util::Rng runRng(seed);
    core::HonestGniProver prover(params);
    core::RunResult run = protocol.run(instance, prover, runRng);

    const DryRunReport dry =
        dryRunGniAmam(instance.g0, instance.g1, widths, profile);
    EXPECT_EQ(dry.costDigest, costDigestOf(run.transcript)) << "instance " << which;
    EXPECT_EQ(dry.maxPerNodeBits, run.transcript.maxPerNodeBits())
        << "instance " << which;
    EXPECT_EQ(dry.totalBits, run.transcript.totalBits()) << "instance " << which;
  }
}

TEST(DryRun, DenseAndCsrReportsAgree) {
  util::Rng rng(7400);
  graph::Graph dense[] = {graph::randomTree(60, rng), graph::gridGraph(6, 9),
                          graph::randomConnected(40, 25, rng)};
  for (const graph::Graph& g : dense) {
    graph::CsrGraph c = graph::CsrGraph::fromGraph(g);
    const std::size_t n = g.numVertices();

    const SymWidths w1 = symDmamModelWidths(n);
    EXPECT_EQ(dryRunSymDmam(g, w1).costDigest, dryRunSymDmam(c, w1).costDigest);
    const SymWidths w2 = symDamModelWidths(n);
    EXPECT_EQ(dryRunSymDam(g, w2).costDigest, dryRunSymDam(c, w2).costDigest);
    const SymWidths w3 = dsymDamModelWidths(n);
    EXPECT_EQ(dryRunDsymDam(g, w3).costDigest, dryRunDsymDam(c, w3).costDigest);

    GniClaimProfile profile;
    profile.claimed.assign(2, 1);
    profile.b = {1, 0};
    const GniWidths wg = gniModelWidths(n, 2);
    const DryRunReport a = dryRunGniAmam(g, g, wg, profile);
    const DryRunReport b = dryRunGniAmam(c, c, wg, profile);
    EXPECT_EQ(a.costDigest, b.costDigest);
    EXPECT_EQ(a.maxPerNodeBits, b.maxPerNodeBits);
    EXPECT_EQ(a.treeHeight, b.treeHeight);
    EXPECT_EQ(a.maxDegree, b.maxDegree);
    EXPECT_EQ(a.numEdges, b.numEdges);
  }
}

TEST(DryRun, SymDamFloatWidthMatchesExactBelowThreshold) {
  // The float branch only activates above kSymDamExactThreshold, where the
  // exact 100 n^(n+2) is too wide to materialize; pin it against the exact
  // branch on the same formula over a spread of sizes up to the threshold.
  for (std::size_t n : {16u, 100u, 511u, 1000u, 2048u, 4095u, 4096u}) {
    ASSERT_LE(n, kSymDamExactThreshold);
    const std::size_t exact = symDamModelWidths(n).seedBits;
    const long double bits =
        std::log2(100.0L) +
        static_cast<long double>(n + 2) * std::log2(static_cast<long double>(n));
    const std::size_t floated = static_cast<std::size_t>(bits) + 1;
    EXPECT_EQ(floated, exact) << "n=" << n;
  }
}

TEST(DryRun, LcpBaselineMatchesCommittedFormula) {
  for (std::size_t n : {4u, 64u, 1000u}) {
    graph::Graph g = graph::pathGraph(n);
    const DryRunReport report = dryRunSymLcp(g, util::bitsFor(n));
    EXPECT_EQ(report.maxPerNodeBits, pls::SymLcp::adviceBitsPerNode(n)) << "n=" << n;
    EXPECT_EQ(report.totalBits, n * pls::SymLcp::adviceBitsPerNode(n)) << "n=" << n;
  }
}

TEST(DryRun, CostFoldIsOrderSensitiveAndPinned) {
  // The digest is a plain FNV-1a over little-endian byte streams; pin one
  // vector so accidental fold changes (order, widths, seeding) surface as a
  // test diff rather than silently re-baselining every digest in the repo.
  CostFold fold;
  fold.addNode(3, 5);
  fold.addNode(7, 11);
  CostFold swapped;
  swapped.addNode(7, 11);
  swapped.addNode(3, 5);
  EXPECT_NE(fold.digest, swapped.digest);
  EXPECT_EQ(fold.maxPerNodeBits, 18u);
  EXPECT_EQ(fold.totalBits, 26u);
}

}  // namespace
}  // namespace dip::sim
