// Tests for sim::parallelMap — the deterministic indexed fan-out that the
// census (and any future sweep) builds on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/parallel_map.hpp"

namespace dip::sim {
namespace {

TEST(ParallelMap, ResultsLandAtTheirOwnIndex) {
  auto results = parallelMap<std::size_t>(100, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelMap, IdenticalAcrossThreadCounts) {
  // The determinism contract: the result vector is a pure function of
  // (count, fn), never of the pool size or scheduling.
  auto reference = parallelMap<std::uint64_t>(
      257, 1, [](std::size_t i) { return (i * 2654435761u) ^ (i << 7); });
  for (unsigned threads : {2u, 3u, 8u, 64u}) {
    auto results = parallelMap<std::uint64_t>(
        257, threads, [](std::size_t i) { return (i * 2654435761u) ^ (i << 7); });
    EXPECT_EQ(results, reference) << "threads=" << threads;
  }
}

TEST(ParallelMap, NonTrivialResultTypes) {
  auto results = parallelMap<std::string>(
      10, 4, [](std::size_t i) { return std::string(i, 'x'); });
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i].size(), i);
}

TEST(ParallelMap, EmptyBatchReturnsEmpty) {
  auto results = parallelMap<int>(0, 8, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(ParallelMap, SmallestIndexFailureWins) {
  // Several items throw; the caller must see the failure with the smallest
  // index regardless of which worker hit which item first.
  for (unsigned threads : {1u, 4u}) {
    try {
      parallelMap<int>(64, threads, [](std::size_t i) -> int {
        if (i % 10 == 7) throw std::runtime_error("item " + std::to_string(i));
        return static_cast<int>(i);
      });
      FAIL() << "expected a rethrown failure";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "item 7") << "threads=" << threads;
    }
  }
}

TEST(ParallelMap, EveryIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(200);
  for (auto& h : hits) h.store(0);
  parallelMap<int>(200, 8, [&](std::size_t i) {
    hits[i].fetch_add(1);
    return 0;
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

}  // namespace
}  // namespace dip::sim
