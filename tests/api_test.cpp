// Tests for the high-level facade API.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "util/rng.hpp"

namespace dip::core {
namespace {

TEST(Api, DecideSymmetryOnSymmetricGraph) {
  util::Rng rng(311);
  graph::Graph g = graph::randomSymmetricConnected(12, rng);
  Decision decision = decideSymmetry(g);
  EXPECT_TRUE(decision.accepted);
  EXPECT_TRUE(decision.proverHadWitness);
  EXPECT_EQ(decision.rounds, 3u);
  EXPECT_GT(decision.maxBitsPerNode, 0u);
  EXPECT_LT(decision.maxBitsPerNode, 200u);  // O(log n) at n = 12.
}

TEST(Api, DecideSymmetryOnRigidGraph) {
  util::Rng rng(312);
  graph::Graph g = graph::randomRigidConnected(8, rng);
  Decision decision = decideSymmetry(g);
  EXPECT_FALSE(decision.accepted);
  EXPECT_FALSE(decision.proverHadWitness);
}

TEST(Api, DecideSymmetryAmplifiedCostsScale) {
  util::Rng rng(313);
  graph::Graph g = graph::randomSymmetricConnected(10, rng);
  DecideOptions one;
  DecideOptions three;
  three.repetitions = 3;
  Decision d1 = decideSymmetry(g, one);
  Decision d3 = decideSymmetry(g, three);
  EXPECT_TRUE(d1.accepted);
  EXPECT_TRUE(d3.accepted);
  EXPECT_EQ(d3.maxBitsPerNode, 3 * d1.maxBitsPerNode);
}

TEST(Api, DecideSymmetryDeterministicForSeed) {
  util::Rng rng(314);
  graph::Graph g = graph::randomSymmetricConnected(10, rng);
  DecideOptions options;
  options.seed = 99;
  Decision a = decideSymmetry(g, options);
  Decision b = decideSymmetry(g, options);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.maxBitsPerNode, b.maxBitsPerNode);
}

TEST(Api, DecideInputSymmetry) {
  util::Rng rng(315);
  graph::Graph network = graph::randomConnected(10, 5, rng);
  graph::Graph symmetricInput = graph::randomSymmetricConnected(10, rng);
  graph::Graph rigidInput = graph::randomRigidConnected(10, rng);

  Decision yes = decideInputSymmetry(network, symmetricInput);
  EXPECT_TRUE(yes.accepted);
  Decision no = decideInputSymmetry(network, rigidInput);
  EXPECT_FALSE(no.accepted);
  EXPECT_FALSE(no.proverHadWitness);
}

TEST(Api, DecideNonIsomorphismRigidPath) {
  util::Rng rng(316);
  graph::Graph g0 = graph::randomRigidConnected(6, rng);
  graph::Graph g1 = graph::randomRigidConnected(6, rng);
  while (graph::areIsomorphic(g0, g1)) g1 = graph::randomRigidConnected(6, rng);
  Decision decision = decideNonIsomorphism(g0, g1);
  EXPECT_EQ(decision.rounds, 4u);
  EXPECT_GT(decision.maxBitsPerNode, 0u);
  // One amplified run accepts with probability > 2/3; assert statistically
  // via three independent seeds (at least one should accept, overwhelmingly).
  bool anyAccepted = decision.accepted;
  for (std::uint64_t seed : {2ull, 3ull}) {
    DecideOptions options;
    options.seed = seed;
    anyAccepted = anyAccepted || decideNonIsomorphism(g0, g1, options).accepted;
  }
  EXPECT_TRUE(anyAccepted);
}

TEST(Api, DecideNonIsomorphismDispatchesToGeneralOnSymmetricInputs) {
  util::Rng rng(317);
  graph::Graph g0 = graph::randomSymmetricConnected(6, rng);
  graph::Graph g1 = graph::randomIsomorphicCopy(g0, rng);
  // Isomorphic pair: should reject (soundness); the general protocol path
  // is required because g0 is symmetric.
  ASSERT_FALSE(graph::isRigid(g0));
  bool allRejectedOrRare = true;
  Decision decision = decideNonIsomorphism(g0, g1);
  if (decision.accepted) allRejectedOrRare = false;  // < 1/3 probability event.
  // Accept the (rare) statistical outlier but flag systematic failure via a
  // second seed.
  if (!allRejectedOrRare) {
    DecideOptions options;
    options.seed = 5;
    EXPECT_FALSE(decideNonIsomorphism(g0, g1, options).accepted);
  }
}

}  // namespace
}  // namespace dip::core
