#include "hash/eps_api.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hash/batch_eval.hpp"
#include "util/primes.hpp"

namespace dip::hash {

EpsApiHash::EpsApiHash(std::size_t n, std::size_t ell, LinearHashFamily inner)
    : n_(n), ell_(ell), inner_(std::move(inner)) {}

EpsApiHash EpsApiHash::create(std::size_t n, std::size_t outputBits, util::Rng& rng,
                              unsigned slackBits) {
  if (n < 1) throw std::invalid_argument("EpsApiHash: n < 1");
  if (outputBits < 1) throw std::invalid_argument("EpsApiHash: outputBits < 1");
  // P prime with about outputBits + 2 log2(n) + slackBits + 1 bits, so that
  // P >= 2^outputBits * n^2 * 2^slackBits.
  std::size_t nBits = util::BigUInt{n}.bitLength();
  std::size_t fieldBits = outputBits + 2 * nBits + slackBits + 1;
  util::BigUInt prime = util::findPrimeWithBits(fieldBits, rng);
  return EpsApiHash(n, outputBits,
                    LinearHashFamily(std::move(prime),
                                     static_cast<std::uint64_t>(n) * n));
}

double EpsApiHash::epsilonBound() const {
  const double p = inner_.prime().toDouble();
  const double range = std::pow(2.0, static_cast<double>(ell_));
  const double m = static_cast<double>(n_) * static_cast<double>(n_);
  // Inner collision turned into joint probability, plus outer rounding.
  double fiberSlack = range / p;  // <= 2^-slack / n^2
  double innerTerm = (m + 1.0) / p * range * (1.0 + fiberSlack);
  double roundingTerm = 3.0 * fiberSlack;  // (1 + s)^2 <= 1 + 3s for s <= 1.
  return innerTerm + roundingTerm;
}

EpsApiHash::Seed EpsApiHash::randomSeed(util::Rng& rng) const {
  Seed seed;
  seed.a = inner_.randomIndex(rng);
  seed.alpha = rng.nextBigBelow(inner_.prime());
  seed.beta = rng.nextBigBelow(inner_.prime());
  return seed;
}

util::BigUInt EpsApiHash::innerRow(const Seed& seed, std::uint64_t rowIndex,
                                   const util::DynBitset& rowBits) const {
  return inner_.hashMatrixRow(seed.a, rowIndex, rowBits, n_);
}

EpsApiHash::RowHasher::RowHasher(const EpsApiHash& hash, const Seed& seed)
    : n_(hash.n()), evaluator_(hash.inner(), seed.a) {}

util::BigUInt EpsApiHash::RowHasher::innerRow(std::uint64_t rowIndex,
                                              const util::DynBitset& rowBits) {
  return evaluator_.hashMatrixRow(rowIndex, rowBits, n_);
}

util::BigUInt EpsApiHash::combine(const util::BigUInt& left,
                                  const util::BigUInt& right) const {
  return util::addMod(left, right, inner_.prime());
}

util::BigUInt EpsApiHash::outer(const Seed& seed, const util::BigUInt& innerValue) const {
  util::BigUInt affine = util::addMod(
      util::mulMod(seed.alpha, innerValue, inner_.prime()), seed.beta, inner_.prime());
  // affine mod 2^ell: clear the bits above ell.
  util::BigUInt high = affine >> ell_;
  return affine - (high << ell_);
}

util::BigUInt EpsApiHash::hashRows(const Seed& seed,
                                   const std::vector<util::DynBitset>& rows) const {
  if (rows.size() != n_) throw std::invalid_argument("hashRows: row count mismatch");
  if (batchEnabled()) {
    // Whole-matrix fingerprint over the shared power tables: row u is
    // rowIndex u, so the index list is just iota.
    thread_local BatchLinearHashEvaluator batch;
    thread_local std::vector<std::uint64_t> rowIndices;
    batch.rebind(inner_, seed.a);
    if (rowIndices.size() != n_) {
      rowIndices.resize(n_);
      std::iota(rowIndices.begin(), rowIndices.end(), 0);
    }
    return outer(seed, batch.accumulateMatrixRows(rowIndices, rows, n_));
  }
  // Scalar path (DIP_BATCH=0): one evaluator for the whole matrix — rows
  // accumulate in the backend domain and convert out once.
  LinearHashEvaluator evaluator(inner_, seed.a);
  evaluator.resetAccumulator();
  for (std::size_t u = 0; u < n_; ++u) {
    evaluator.accumulateMatrixRow(u, rows[u], n_);
  }
  return outer(seed, evaluator.accumulatedValue());
}

EpsApiHash::PowerTable EpsApiHash::preparePowers(const Seed& seed) const {
  PowerTable table;
  const std::size_t count = n_ * n_;
  LinearHashEvaluator evaluator(inner_, seed.a);
  evaluator.powerTable(count, table.powers);
  if (inner_.prime().fitsU64()) {
    table.powers64.reserve(count);
    for (const util::BigUInt& power : table.powers) {
      table.powers64.push_back(power.toU64());
    }
  }
  return table;
}

util::BigUInt EpsApiHash::innerRowPrepared(const PowerTable& table,
                                           std::uint64_t rowIndex,
                                           const util::DynBitset& rowBits) const {
  if (!table.powers64.empty()) {
    const std::uint64_t p = inner_.prime().toU64();
    std::uint64_t acc = 0;
    rowBits.forEachSet([&](std::size_t w) {
      std::uint64_t term = table.powers64[rowIndex * n_ + w];
      acc += term;
      if (acc < term || acc >= p) acc -= p;
    });
    return util::BigUInt{acc};
  }
  util::BigUInt acc;
  const util::BigUInt& p = inner_.prime();
  rowBits.forEachSet([&](std::size_t w) {
    acc = util::addMod(acc, table.powers[rowIndex * n_ + w], p);
  });
  return acc;
}

util::BigUInt EpsApiHash::hashRowsPrepared(const Seed& seed, const PowerTable& table,
                                           const std::vector<util::DynBitset>& rows) const {
  if (!table.powers64.empty()) {
    // The prover's hot path: the entire candidate matrix accumulates in one
    // native word, with a single BigUInt materialized for the outer layer.
    const std::uint64_t p = inner_.prime().toU64();
    std::uint64_t acc = 0;
    for (std::size_t u = 0; u < n_; ++u) {
      rows[u].forEachSet([&](std::size_t w) {
        std::uint64_t term = table.powers64[u * n_ + w];
        acc += term;
        if (acc < term || acc >= p) acc -= p;
      });
    }
    return outer(seed, util::BigUInt{acc});
  }
  util::BigUInt acc;
  for (std::size_t u = 0; u < n_; ++u) {
    acc = combine(acc, innerRowPrepared(table, u, rows[u]));
  }
  return outer(seed, acc);
}

}  // namespace dip::hash
