#include "hash/batch_eval.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <stdexcept>

namespace dip::hash {

namespace {

__extension__ using U128 = unsigned __int128;

std::uint64_t mulModU64(std::uint64_t x, std::uint64_t y, std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<U128>(x) * y % m);
}

std::uint64_t powModU64(std::uint64_t base, std::uint64_t exponent, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  std::uint64_t square = base % m;
  while (exponent != 0) {
    if (exponent & 1) result = mulModU64(result, square, m);
    exponent >>= 1;
    if (exponent != 0) square = mulModU64(square, square, m);
  }
  return result;
}

// acc = (acc + term) mod p for acc, term < p < 2^64: a wrap past 2^64 and a
// sum >= p both correct with the same single subtraction (the wrapped case
// re-wraps to exactly acc + term - p).
inline std::uint64_t addModTrick(std::uint64_t acc, std::uint64_t term,
                                 std::uint64_t p) {
  acc += term;
  if (acc < term || acc >= p) acc -= p;
  return acc;
}

bool initialBatchEnabled() {
  if (const char* env = std::getenv("DIP_BATCH")) {
    if (env[0] == '0' && env[1] == '\0') return false;
  }
  return true;
}

std::atomic<bool>& batchFlag() {
  static std::atomic<bool> flag{initialBatchEnabled()};
  return flag;
}

}  // namespace

bool batchEnabled() { return batchFlag().load(std::memory_order_relaxed); }
void setBatchEnabled(bool enabled) {
  batchFlag().store(enabled, std::memory_order_relaxed);
}

void BatchLinearHashEvaluator::rebind(const LinearHashFamily& family,
                                      const util::BigUInt& a) {
  rebind(family.prime(), family.dimension(), a);
}

void BatchLinearHashEvaluator::rebind(const util::BigUInt& p, std::uint64_t dimension,
                                      const util::BigUInt& a) {
  const bool sameP = backend_ != Backend::kUnbound && p == p_;
  if (sameP && dimension == m_ && a == aBound_) return;
  if (!sameP) {
    if (p < util::BigUInt{2}) {
      throw std::invalid_argument("BatchLinearHashEvaluator: p < 2");
    }
    p_ = p;
    if (p_.fitsU64()) {
      backend_ = Backend::kU64;
      p64_ = p_.toU64();
      ctx_.reset();
    } else if (p_.isOdd()) {
      backend_ = Backend::kMontgomery;
      ctx_ = util::cachedMontgomeryContext(p_);
    } else {
      backend_ = Backend::kPlain;
      ctx_.reset();
    }
  }
  m_ = dimension;
  aBound_ = a;
  switch (backend_) {
    case Backend::kU64:
      a64_ = a.modU64(p64_);
      break;
    case Backend::kMontgomery:
      ctx_->toValue(a, aV_, scratch_);
      break;
    case Backend::kPlain:
      aPlain_ = a % p_;
      break;
    case Backend::kUnbound:
      break;
  }
  // Invalidate the tables: the arena rewind poisons the old slices under
  // ASan, so a caller holding a stale table pointer across rebind faults
  // loudly instead of reading the previous index's powers.
  arena_.reset();
  colCount_ = 0;
  rowBaseN_ = 0;
  colPow64_ = rowBase64_ = nullptr;
  colPowM_ = rowBaseM_ = rowSumM_ = accM_ = nullptr;
  colPowP_.clear();
  rowBaseP_.clear();
}

void BatchLinearHashEvaluator::prepareTables(std::size_t count, std::uint64_t n) {
  if (backend_ == Backend::kUnbound) {
    throw std::logic_error("BatchLinearHashEvaluator: used before rebind");
  }
  const bool needCols = count > colCount_;
  const bool needRows = n != 0 && n != rowBaseN_;
  if (!needCols && !needRows) return;
  const std::size_t cols = std::max(count, colCount_);
  switch (backend_) {
    case Backend::kU64: {
      if (needCols) {
        colPow64_ = arena_.allocateArray<std::uint64_t>(cols);
        std::uint64_t power = a64_;
        for (std::size_t w = 0; w < cols; ++w) {
          colPow64_[w] = power;
          if (w + 1 < cols) power = mulModU64(power, a64_, p64_);
        }
        colCount_ = cols;
      }
      if (needRows) {
        rowBase64_ = arena_.allocateArray<std::uint64_t>(n);
        const std::uint64_t step = powModU64(a64_, n, p64_);
        std::uint64_t base = 1 % p64_;
        for (std::uint64_t r = 0; r < n; ++r) {
          rowBase64_[r] = base;
          if (r + 1 < n) base = mulModU64(base, step, p64_);
        }
        rowBaseN_ = n;
      }
      break;
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      if (rowSumM_ == nullptr) {
        rowSumM_ = arena_.allocateArray<util::MontgomeryContext::Limb>(k);
        accM_ = arena_.allocateArray<util::MontgomeryContext::Limb>(k);
      }
      if (needCols) {
        colPowM_ = arena_.allocateArray<util::MontgomeryContext::Limb>(cols * k);
        if (cols > 0) {
          ctx_->valueToRaw(aV_, colPowM_);
          for (std::size_t w = 1; w < cols; ++w) {
            ctx_->mulRaw(colPowM_ + (w - 1) * k, colPowM_, colPowM_ + w * k,
                         scratch_);
          }
        }
        colCount_ = cols;
      }
      if (needRows) {
        rowBaseM_ = arena_.allocateArray<util::MontgomeryContext::Limb>(n * k);
        ctx_->powValue(aV_, util::BigUInt{n}, stageV_, scratch_);  // Mont(a^n).
        ctx_->valueToRaw(ctx_->oneValue(), rowBaseM_);
        for (std::uint64_t r = 1; r < n; ++r) {
          ctx_->mulRaw(rowBaseM_ + (r - 1) * k, stageV_.limbs().data(),
                       rowBaseM_ + r * k, scratch_);
        }
        rowBaseN_ = n;
      }
      break;
    }
    default: {
      if (needCols) {
        colPowP_.resize(cols);
        util::BigUInt power = aPlain_;
        for (std::size_t w = 0; w < cols; ++w) {
          colPowP_[w] = power;
          if (w + 1 < cols) power = util::mulMod(power, aPlain_, p_);
        }
        colCount_ = cols;
      }
      if (needRows) {
        rowBaseP_.resize(n);
        const util::BigUInt step = util::powMod(aPlain_, util::BigUInt{n}, p_);
        util::BigUInt base = util::BigUInt{1} % p_;
        for (std::uint64_t r = 0; r < n; ++r) {
          rowBaseP_[r] = base;
          if (r + 1 < n) base = util::mulMod(base, step, p_);
        }
        rowBaseN_ = n;
      }
      break;
    }
  }
}

void BatchLinearHashEvaluator::checkRow(std::uint64_t rowIndex,
                                        const util::DynBitset& bits,
                                        std::uint64_t n) const {
  if (n * n != m_) throw std::invalid_argument("hashMatrixRow: dimension mismatch");
  if (rowIndex >= n || bits.size() != n) {
    throw std::out_of_range("hashMatrixRow: bad row");
  }
}

void BatchLinearHashEvaluator::hashMatrixRows(std::span<const std::uint64_t> rowIndices,
                                              std::span<const util::DynBitset> rows,
                                              std::uint64_t n,
                                              std::vector<util::BigUInt>& out) {
  if (rowIndices.size() != rows.size()) {
    throw std::invalid_argument("hashMatrixRows: index/row count mismatch");
  }
  prepareTables(n, n);
  out.clear();
  out.reserve(rows.size());
  switch (backend_) {
    case Backend::kU64: {
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        std::uint64_t sum = 0;
        rows[i].forEachSet([&](std::size_t w) {
          sum = addModTrick(sum, colPow64_[w], p64_);
        });
        out.push_back(util::BigUInt{mulModU64(rowBase64_[rowIndices[i]], sum, p64_)});
      }
      break;
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        std::fill(rowSumM_, rowSumM_ + k, 0);
        rows[i].forEachSet([&](std::size_t w) {
          ctx_->addRaw(rowSumM_, colPowM_ + w * k, rowSumM_);
        });
        ctx_->mulRaw(rowSumM_, rowBaseM_ + rowIndices[i] * k, rowSumM_, scratch_);
        out.push_back(ctx_->rawToPlain(rowSumM_));
      }
      break;
    }
    default: {
      util::BigUInt row;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        row = util::BigUInt{};
        rows[i].forEachSet([&](std::size_t w) {
          row = util::addMod(row, colPowP_[w], p_);
        });
        out.push_back(util::mulMod(row, rowBaseP_[rowIndices[i]], p_));
      }
      break;
    }
  }
}

util::BigUInt BatchLinearHashEvaluator::accumulateMatrixRows(
    std::span<const std::uint64_t> rowIndices, std::span<const util::DynBitset> rows,
    std::uint64_t n) {
  if (rowIndices.size() != rows.size()) {
    throw std::invalid_argument("accumulateMatrixRows: index/row count mismatch");
  }
  prepareTables(n, n);
  switch (backend_) {
    case Backend::kU64: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        std::uint64_t sum = 0;
        rows[i].forEachSet([&](std::size_t w) {
          sum = addModTrick(sum, colPow64_[w], p64_);
        });
        acc = addModTrick(acc, mulModU64(rowBase64_[rowIndices[i]], sum, p64_), p64_);
      }
      return util::BigUInt{acc};
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      std::fill(accM_, accM_ + k, 0);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        std::fill(rowSumM_, rowSumM_ + k, 0);
        rows[i].forEachSet([&](std::size_t w) {
          ctx_->addRaw(rowSumM_, colPowM_ + w * k, rowSumM_);
        });
        ctx_->mulRaw(rowSumM_, rowBaseM_ + rowIndices[i] * k, rowSumM_, scratch_);
        ctx_->addRaw(accM_, rowSumM_, accM_);
      }
      return ctx_->rawToPlain(accM_);
    }
    default: {
      util::BigUInt acc;
      util::BigUInt row;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        row = util::BigUInt{};
        rows[i].forEachSet([&](std::size_t w) {
          row = util::addMod(row, colPowP_[w], p_);
        });
        acc = util::addMod(acc, util::mulMod(row, rowBaseP_[rowIndices[i]], p_), p_);
      }
      return acc;
    }
  }
}

void BatchLinearHashEvaluator::hashBitsMany(std::span<const util::DynBitset> inputs,
                                            std::vector<util::BigUInt>& out) {
  std::size_t maxSize = 0;
  for (const util::DynBitset& bits : inputs) {
    if (bits.size() > m_) throw std::out_of_range("hashBits: bits exceed dimension");
    maxSize = std::max(maxSize, bits.size());
  }
  prepareTables(maxSize, 0);
  out.clear();
  out.reserve(inputs.size());
  switch (backend_) {
    case Backend::kU64: {
      for (const util::DynBitset& bits : inputs) {
        std::uint64_t sum = 0;
        bits.forEachSet([&](std::size_t w) {
          sum = addModTrick(sum, colPow64_[w], p64_);
        });
        out.push_back(util::BigUInt{sum});
      }
      break;
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      for (const util::DynBitset& bits : inputs) {
        std::fill(rowSumM_, rowSumM_ + k, 0);
        bits.forEachSet([&](std::size_t w) {
          ctx_->addRaw(rowSumM_, colPowM_ + w * k, rowSumM_);
        });
        out.push_back(ctx_->rawToPlain(rowSumM_));
      }
      break;
    }
    default: {
      util::BigUInt row;
      for (const util::DynBitset& bits : inputs) {
        row = util::BigUInt{};
        bits.forEachSet([&](std::size_t w) {
          row = util::addMod(row, colPowP_[w], p_);
        });
        out.push_back(row);
      }
      break;
    }
  }
}

void BatchLinearHashEvaluator::hashBitsManySeeds(const util::BigUInt& p,
                                                 std::uint64_t dimension,
                                                 std::span<const util::BigUInt> seeds,
                                                 const util::DynBitset& input,
                                                 std::vector<util::BigUInt>& out) {
  if (input.size() > dimension) {
    throw std::out_of_range("hashBits: bits exceed dimension");
  }
  out.clear();
  out.reserve(seeds.size());
  if (!p.fitsU64()) {
    // Wide fields: no table is shareable across distinct indices, so this is
    // the scalar walk per seed (rebind keeps the Montgomery context).
    thread_local LinearHashEvaluator evaluator;
    for (const util::BigUInt& seed : seeds) {
      evaluator.rebind(p, dimension, seed);
      out.push_back(evaluator.hashBits(input));
    }
    return;
  }
  const std::uint64_t p64 = p.toU64();
  // Gather the walk once: every lane visits the same positions.
  thread_local std::vector<std::uint32_t> positions;
  positions.clear();
  positions.reserve(input.size());
  input.forEachSet([&](std::size_t w) {
    positions.push_back(static_cast<std::uint32_t>(w));
  });
  for (std::size_t base = 0; base < seeds.size(); base += kLanes) {
    const std::size_t lanes = std::min(kLanes, seeds.size() - base);
    std::array<std::uint64_t, kLanes> aL{};
    std::array<std::uint64_t, kLanes> powL{};
    std::array<std::uint64_t, kLanes> rowL{};
    for (std::size_t j = 0; j < lanes; ++j) {
      aL[j] = seeds[base + j].modU64(p64);
      powL[j] = aL[j];  // Exponent 1, matching the scalar walk's start.
      rowL[j] = 0;
    }
    // The lane block advances all power chains position by position: the
    // chains are independent, so the kLanes 128-bit products overlap in the
    // pipeline instead of serializing like the scalar evaluator's single
    // Horner chain.
    std::size_t exponent = 1;
    for (std::uint32_t w : positions) {
      const std::size_t target = static_cast<std::size_t>(w) + 1;
      for (; exponent < target; ++exponent) {
        for (std::size_t j = 0; j < lanes; ++j) {
          powL[j] = mulModU64(powL[j], aL[j], p64);
        }
      }
      for (std::size_t j = 0; j < lanes; ++j) {
        rowL[j] = addModTrick(rowL[j], powL[j], p64);
      }
    }
    for (std::size_t j = 0; j < lanes; ++j) {
      out.push_back(util::BigUInt{rowL[j]});
    }
  }
}

}  // namespace dip::hash
