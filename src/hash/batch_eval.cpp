#include "hash/batch_eval.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DIP_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#endif

namespace dip::hash {

namespace {

__extension__ using U128 = unsigned __int128;

std::uint64_t mulModU64(std::uint64_t x, std::uint64_t y, std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<U128>(x) * y % m);
}

std::uint64_t powModU64(std::uint64_t base, std::uint64_t exponent, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  std::uint64_t square = base % m;
  while (exponent != 0) {
    if (exponent & 1) result = mulModU64(result, square, m);
    exponent >>= 1;
    if (exponent != 0) square = mulModU64(square, square, m);
  }
  return result;
}

// acc = (acc + term) mod p for acc, term < p < 2^64: a wrap past 2^64 and a
// sum >= p both correct with the same single subtraction (the wrapped case
// re-wraps to exactly acc + term - p).
inline std::uint64_t addModTrick(std::uint64_t acc, std::uint64_t term,
                                 std::uint64_t p) {
  acc += term;
  if (acc < term || acc >= p) acc -= p;
  return acc;
}

bool initialBatchEnabled() {
  if (const char* env = std::getenv("DIP_BATCH")) {
    if (env[0] == '0' && env[1] == '\0') return false;
  }
  return true;
}

std::atomic<bool>& batchFlag() {
  static std::atomic<bool> flag{initialBatchEnabled()};
  return flag;
}

bool avx2Supported() {
#if DIP_HAVE_AVX2_KERNEL
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool initialAvx2Enabled() {
  if (!avx2Supported()) return false;
  if (const char* env = std::getenv("DIP_AVX2")) {
    if (env[0] == '0' && env[1] == '\0') return false;
  }
  return true;
}

std::atomic<bool>& avx2Flag() {
  static std::atomic<bool> flag{initialAvx2Enabled()};
  return flag;
}

#if DIP_HAVE_AVX2_KERNEL

// Four-lane addModTrick. Unsigned compares via the sign-bit bias: for
// canonical residues x, y < p < 2^64, x < y (unsigned) iff
// (x ^ bias) < (y ^ bias) (signed), which AVX2's cmpgt can evaluate.
__attribute__((target("avx2"))) inline __m256i addModLanes(__m256i acc, __m256i term,
                                                           __m256i pV, __m256i pBiased,
                                                           __m256i bias) {
  const __m256i sum = _mm256_add_epi64(acc, term);
  const __m256i sumBiased = _mm256_xor_si256(sum, bias);
  const __m256i wrapped =
      _mm256_cmpgt_epi64(_mm256_xor_si256(term, bias), sumBiased);  // sum < term.
  const __m256i below = _mm256_cmpgt_epi64(pBiased, sumBiased);     // sum < p.
  const __m256i needSub =
      _mm256_or_si256(wrapped, _mm256_cmpeq_epi64(below, _mm256_setzero_si256()));
  return _mm256_sub_epi64(sum, _mm256_and_si256(pV, needSub));
}

// Residue sum over gathered table entries: two 4x64 accumulators so the
// gather latency of one block overlaps the modular add of the other. Every
// lane stays a canonical residue, so the lane fold plus scalar tail give the
// same value as the serial left-to-right walk (modular addition of canonical
// residues is associative and commutative).
__attribute__((target("avx2"))) std::uint64_t residueSumAvx2(
    const std::uint64_t* table, const std::uint32_t* positions, std::size_t count,
    std::uint64_t p) {
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i pV = _mm256_set1_epi64x(static_cast<long long>(p));
  const __m256i pBiased = _mm256_xor_si256(pV, bias);
  const long long* tableLL = reinterpret_cast<const long long*>(table);
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i idx0 = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(positions + i)));
    const __m256i idx1 = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(positions + i + 4)));
    acc0 = addModLanes(acc0, _mm256_i64gather_epi64(tableLL, idx0, 8), pV, pBiased, bias);
    acc1 = addModLanes(acc1, _mm256_i64gather_epi64(tableLL, idx1, 8), pV, pBiased, bias);
  }
  alignas(32) std::uint64_t lanes[8];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes + 4), acc1);
  std::uint64_t sum = 0;
  for (std::uint64_t lane : lanes) sum = addModTrick(sum, lane, p);
  for (; i < count; ++i) sum = addModTrick(sum, table[positions[i]], p);
  return sum;
}

#endif  // DIP_HAVE_AVX2_KERNEL

// Below this many input bits the serial walk wins: the vector path has to
// materialize the position list and fold eight lanes regardless of how much
// work the gather loop actually finds (protects small-n cells like the
// protocol-2 family, n = 6).
constexpr std::size_t kAvx2MinBits = 16;

// Shared inner loop of the u64 backend: sum of table[w] over set bits of
// `bits`, mod p. Runtime-dispatched to the AVX2 gather kernel for dense rows
// when enabled; the serial forEachSet walk is the portable fallback and the
// reference semantics.
std::uint64_t bitsResidueSum(const util::DynBitset& bits, const std::uint64_t* table,
                             std::uint64_t p) {
#if DIP_HAVE_AVX2_KERNEL
  if (bits.size() >= kAvx2MinBits && avx2Flag().load(std::memory_order_relaxed)) {
    thread_local std::vector<std::uint32_t> positions;
    positions.clear();
    positions.reserve(bits.size());
    bits.forEachSet(
        [&](std::size_t w) { positions.push_back(static_cast<std::uint32_t>(w)); });
    return residueSumAvx2(table, positions.data(), positions.size(), p);
  }
#endif
  std::uint64_t sum = 0;
  bits.forEachSet([&](std::size_t w) { sum = addModTrick(sum, table[w], p); });
  return sum;
}

}  // namespace

bool batchEnabled() { return batchFlag().load(std::memory_order_relaxed); }
void setBatchEnabled(bool enabled) {
  batchFlag().store(enabled, std::memory_order_relaxed);
}

bool avx2Enabled() { return avx2Flag().load(std::memory_order_relaxed); }
void setAvx2Enabled(bool enabled) {
  avx2Flag().store(enabled && avx2Supported(), std::memory_order_relaxed);
}

void BatchLinearHashEvaluator::rebind(const LinearHashFamily& family,
                                      const util::BigUInt& a) {
  rebind(family.prime(), family.dimension(), a);
}

void BatchLinearHashEvaluator::rebind(const util::BigUInt& p, std::uint64_t dimension,
                                      const util::BigUInt& a) {
  const bool sameP = backend_ != Backend::kUnbound && p == p_;
  if (sameP && dimension == m_ && a == aBound_) return;
  if (!sameP) {
    if (p < util::BigUInt{2}) {
      throw std::invalid_argument("BatchLinearHashEvaluator: p < 2");
    }
    p_ = p;
    if (p_.fitsU64()) {
      backend_ = Backend::kU64;
      p64_ = p_.toU64();
      ctx_.reset();
    } else if (p_.isOdd()) {
      backend_ = Backend::kMontgomery;
      ctx_ = util::cachedMontgomeryContext(p_);
    } else {
      backend_ = Backend::kPlain;
      ctx_.reset();
    }
  }
  m_ = dimension;
  aBound_ = a;
  switch (backend_) {
    case Backend::kU64:
      a64_ = a.modU64(p64_);
      break;
    case Backend::kMontgomery:
      ctx_->toValue(a, aV_, scratch_);
      break;
    case Backend::kPlain:
      aPlain_ = a % p_;
      break;
    case Backend::kUnbound:
      break;
  }
  // Invalidate the tables: the arena rewind poisons the old slices under
  // ASan, so a caller holding a stale table pointer across rebind faults
  // loudly instead of reading the previous index's powers.
  arena_.reset();
  colCount_ = 0;
  rowBaseN_ = 0;
  colPow64_ = rowBase64_ = nullptr;
  colPowM_ = rowBaseM_ = rowSumM_ = accM_ = nullptr;
  colPowP_.clear();
  rowBaseP_.clear();
}

void BatchLinearHashEvaluator::prepareTables(std::size_t count, std::uint64_t n) {
  if (backend_ == Backend::kUnbound) {
    throw std::logic_error("BatchLinearHashEvaluator: used before rebind");
  }
  const bool needCols = count > colCount_;
  const bool needRows = n != 0 && n != rowBaseN_;
  if (!needCols && !needRows) return;
  const std::size_t cols = std::max(count, colCount_);
  switch (backend_) {
    case Backend::kU64: {
      if (needCols) {
        colPow64_ = arena_.allocateArray<std::uint64_t>(cols);
        std::uint64_t power = a64_;
        for (std::size_t w = 0; w < cols; ++w) {
          colPow64_[w] = power;
          if (w + 1 < cols) power = mulModU64(power, a64_, p64_);
        }
        colCount_ = cols;
      }
      if (needRows) {
        rowBase64_ = arena_.allocateArray<std::uint64_t>(n);
        const std::uint64_t step = powModU64(a64_, n, p64_);
        std::uint64_t base = 1 % p64_;
        for (std::uint64_t r = 0; r < n; ++r) {
          rowBase64_[r] = base;
          if (r + 1 < n) base = mulModU64(base, step, p64_);
        }
        rowBaseN_ = n;
      }
      break;
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      if (rowSumM_ == nullptr) {
        rowSumM_ = arena_.allocateArray<util::MontgomeryContext::Limb>(k);
        accM_ = arena_.allocateArray<util::MontgomeryContext::Limb>(k);
      }
      if (needCols) {
        colPowM_ = arena_.allocateArray<util::MontgomeryContext::Limb>(cols * k);
        if (cols > 0) {
          ctx_->valueToRaw(aV_, colPowM_);
          for (std::size_t w = 1; w < cols; ++w) {
            ctx_->mulRaw(colPowM_ + (w - 1) * k, colPowM_, colPowM_ + w * k,
                         scratch_);
          }
        }
        colCount_ = cols;
      }
      if (needRows) {
        rowBaseM_ = arena_.allocateArray<util::MontgomeryContext::Limb>(n * k);
        ctx_->powValue(aV_, util::BigUInt{n}, stageV_, scratch_);  // Mont(a^n).
        ctx_->valueToRaw(ctx_->oneValue(), rowBaseM_);
        for (std::uint64_t r = 1; r < n; ++r) {
          ctx_->mulRaw(rowBaseM_ + (r - 1) * k, stageV_.limbs().data(),
                       rowBaseM_ + r * k, scratch_);
        }
        rowBaseN_ = n;
      }
      break;
    }
    default: {
      if (needCols) {
        colPowP_.resize(cols);
        util::BigUInt power = aPlain_;
        for (std::size_t w = 0; w < cols; ++w) {
          colPowP_[w] = power;
          if (w + 1 < cols) power = util::mulMod(power, aPlain_, p_);
        }
        colCount_ = cols;
      }
      if (needRows) {
        rowBaseP_.resize(n);
        const util::BigUInt step = util::powMod(aPlain_, util::BigUInt{n}, p_);
        util::BigUInt base = util::BigUInt{1} % p_;
        for (std::uint64_t r = 0; r < n; ++r) {
          rowBaseP_[r] = base;
          if (r + 1 < n) base = util::mulMod(base, step, p_);
        }
        rowBaseN_ = n;
      }
      break;
    }
  }
}

void BatchLinearHashEvaluator::checkRow(std::uint64_t rowIndex,
                                        const util::DynBitset& bits,
                                        std::uint64_t n) const {
  if (n * n != m_) throw std::invalid_argument("hashMatrixRow: dimension mismatch");
  if (rowIndex >= n || bits.size() != n) {
    throw std::out_of_range("hashMatrixRow: bad row");
  }
}

void BatchLinearHashEvaluator::hashMatrixRows(std::span<const std::uint64_t> rowIndices,
                                              std::span<const util::DynBitset> rows,
                                              std::uint64_t n,
                                              std::vector<util::BigUInt>& out) {
  if (rowIndices.size() != rows.size()) {
    throw std::invalid_argument("hashMatrixRows: index/row count mismatch");
  }
  prepareTables(n, n);
  // Rewrite out in place: resize keeps the elements' limb buffers alive, so
  // a steady-state caller (the per-trial verifier loops) allocates nothing.
  out.resize(rows.size());
  switch (backend_) {
    case Backend::kU64: {
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        const std::uint64_t sum = bitsResidueSum(rows[i], colPow64_, p64_);
        out[i].assignU64(mulModU64(rowBase64_[rowIndices[i]], sum, p64_));
      }
      break;
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        std::fill(rowSumM_, rowSumM_ + k, 0);
        rows[i].forEachSet([&](std::size_t w) {
          ctx_->addRaw(rowSumM_, colPowM_ + w * k, rowSumM_);
        });
        ctx_->mulRaw(rowSumM_, rowBaseM_ + rowIndices[i] * k, rowSumM_, scratch_);
        out[i] = ctx_->rawToPlain(rowSumM_);
      }
      break;
    }
    default: {
      util::BigUInt row;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        row = util::BigUInt{};
        rows[i].forEachSet([&](std::size_t w) {
          row = util::addMod(row, colPowP_[w], p_);
        });
        out[i] = util::mulMod(row, rowBaseP_[rowIndices[i]], p_);
      }
      break;
    }
  }
}

util::BigUInt BatchLinearHashEvaluator::accumulateMatrixRows(
    std::span<const std::uint64_t> rowIndices, std::span<const util::DynBitset> rows,
    std::uint64_t n) {
  if (rowIndices.size() != rows.size()) {
    throw std::invalid_argument("accumulateMatrixRows: index/row count mismatch");
  }
  prepareTables(n, n);
  switch (backend_) {
    case Backend::kU64: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        const std::uint64_t sum = bitsResidueSum(rows[i], colPow64_, p64_);
        acc = addModTrick(acc, mulModU64(rowBase64_[rowIndices[i]], sum, p64_), p64_);
      }
      return util::BigUInt{acc};
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      std::fill(accM_, accM_ + k, 0);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        std::fill(rowSumM_, rowSumM_ + k, 0);
        rows[i].forEachSet([&](std::size_t w) {
          ctx_->addRaw(rowSumM_, colPowM_ + w * k, rowSumM_);
        });
        ctx_->mulRaw(rowSumM_, rowBaseM_ + rowIndices[i] * k, rowSumM_, scratch_);
        ctx_->addRaw(accM_, rowSumM_, accM_);
      }
      return ctx_->rawToPlain(accM_);
    }
    default: {
      util::BigUInt acc;
      util::BigUInt row;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        checkRow(rowIndices[i], rows[i], n);
        row = util::BigUInt{};
        rows[i].forEachSet([&](std::size_t w) {
          row = util::addMod(row, colPowP_[w], p_);
        });
        acc = util::addMod(acc, util::mulMod(row, rowBaseP_[rowIndices[i]], p_), p_);
      }
      return acc;
    }
  }
}

void BatchLinearHashEvaluator::checkEntry(std::uint64_t rowIndex,
                                          std::uint64_t colIndex,
                                          std::uint64_t n) const {
  if (n * n != m_) throw std::invalid_argument("hashMatrixEntry: dimension mismatch");
  if (rowIndex >= n || colIndex >= n) {
    throw std::out_of_range("hashMatrixEntry: bad entry");
  }
}

util::BigUInt BatchLinearHashEvaluator::hashMatrixRow(std::uint64_t rowIndex,
                                                      const util::DynBitset& columnBits,
                                                      std::uint64_t n) {
  prepareTables(n, n);
  checkRow(rowIndex, columnBits, n);
  switch (backend_) {
    case Backend::kU64: {
      const std::uint64_t sum = bitsResidueSum(columnBits, colPow64_, p64_);
      return util::BigUInt{mulModU64(rowBase64_[rowIndex], sum, p64_)};
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      std::fill(rowSumM_, rowSumM_ + k, 0);
      columnBits.forEachSet([&](std::size_t w) {
        ctx_->addRaw(rowSumM_, colPowM_ + w * k, rowSumM_);
      });
      ctx_->mulRaw(rowSumM_, rowBaseM_ + rowIndex * k, rowSumM_, scratch_);
      return ctx_->rawToPlain(rowSumM_);
    }
    default: {
      util::BigUInt row;
      columnBits.forEachSet([&](std::size_t w) {
        row = util::addMod(row, colPowP_[w], p_);
      });
      return util::mulMod(row, rowBaseP_[rowIndex], p_);
    }
  }
}

util::BigUInt BatchLinearHashEvaluator::hashMatrixEntry(std::uint64_t rowIndex,
                                                        std::uint64_t colIndex,
                                                        std::uint64_t coefficient,
                                                        std::uint64_t n) {
  prepareTables(n, n);
  checkEntry(rowIndex, colIndex, n);
  switch (backend_) {
    case Backend::kU64: {
      // rowBase[r] * colPow[c] = a^(r*n) * a^(c+1) = a^(r*n + c + 1).
      std::uint64_t term = mulModU64(rowBase64_[rowIndex], colPow64_[colIndex], p64_);
      return util::BigUInt{mulModU64(term, coefficient % p64_, p64_)};
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      ctx_->mulRaw(rowBaseM_ + rowIndex * k, colPowM_ + colIndex * k, rowSumM_,
                   scratch_);
      if (coefficient != 1) {
        ctx_->toValue(util::BigUInt{coefficient}, stageV_, scratch_);
        ctx_->mulRaw(rowSumM_, stageV_.limbs().data(), rowSumM_, scratch_);
      }
      return ctx_->rawToPlain(rowSumM_);
    }
    default: {
      util::BigUInt term = util::mulMod(rowBaseP_[rowIndex], colPowP_[colIndex], p_);
      return util::mulMod(term, util::BigUInt{coefficient} % p_, p_);
    }
  }
}

util::BigUInt BatchLinearHashEvaluator::accumulateMatrixEntries(
    std::span<const std::uint64_t> rowIndices, std::span<const std::uint64_t> colIndices,
    std::uint64_t n) {
  if (rowIndices.size() != colIndices.size()) {
    throw std::invalid_argument("accumulateMatrixEntries: index count mismatch");
  }
  prepareTables(n, n);
  switch (backend_) {
    case Backend::kU64: {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < rowIndices.size(); ++i) {
        checkEntry(rowIndices[i], colIndices[i], n);
        acc = addModTrick(
            acc, mulModU64(rowBase64_[rowIndices[i]], colPow64_[colIndices[i]], p64_),
            p64_);
      }
      return util::BigUInt{acc};
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      std::fill(accM_, accM_ + k, 0);
      for (std::size_t i = 0; i < rowIndices.size(); ++i) {
        checkEntry(rowIndices[i], colIndices[i], n);
        ctx_->mulRaw(rowBaseM_ + rowIndices[i] * k, colPowM_ + colIndices[i] * k,
                     rowSumM_, scratch_);
        ctx_->addRaw(accM_, rowSumM_, accM_);
      }
      return ctx_->rawToPlain(accM_);
    }
    default: {
      util::BigUInt acc;
      for (std::size_t i = 0; i < rowIndices.size(); ++i) {
        checkEntry(rowIndices[i], colIndices[i], n);
        acc = util::addMod(
            acc, util::mulMod(rowBaseP_[rowIndices[i]], colPowP_[colIndices[i]], p_),
            p_);
      }
      return acc;
    }
  }
}

void BatchLinearHashEvaluator::hashBitsMany(std::span<const util::DynBitset> inputs,
                                            std::vector<util::BigUInt>& out) {
  std::size_t maxSize = 0;
  for (const util::DynBitset& bits : inputs) {
    if (bits.size() > m_) throw std::out_of_range("hashBits: bits exceed dimension");
    maxSize = std::max(maxSize, bits.size());
  }
  prepareTables(maxSize, 0);
  out.resize(inputs.size());
  switch (backend_) {
    case Backend::kU64: {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        out[i].assignU64(bitsResidueSum(inputs[i], colPow64_, p64_));
      }
      break;
    }
    case Backend::kMontgomery: {
      const std::size_t k = ctx_->numLimbs();
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        std::fill(rowSumM_, rowSumM_ + k, 0);
        inputs[i].forEachSet([&](std::size_t w) {
          ctx_->addRaw(rowSumM_, colPowM_ + w * k, rowSumM_);
        });
        out[i] = ctx_->rawToPlain(rowSumM_);
      }
      break;
    }
    default: {
      util::BigUInt row;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        row = util::BigUInt{};
        inputs[i].forEachSet([&](std::size_t w) {
          row = util::addMod(row, colPowP_[w], p_);
        });
        out[i] = row;
      }
      break;
    }
  }
}

void BatchLinearHashEvaluator::hashBitsManySeeds(const util::BigUInt& p,
                                                 std::uint64_t dimension,
                                                 std::span<const util::BigUInt> seeds,
                                                 const util::DynBitset& input,
                                                 std::vector<util::BigUInt>& out) {
  if (input.size() > dimension) {
    throw std::out_of_range("hashBits: bits exceed dimension");
  }
  out.resize(seeds.size());
  if (!p.fitsU64()) {
    // Wide fields: no table is shareable across distinct indices, so this is
    // the scalar walk per seed (rebind keeps the Montgomery context).
    thread_local LinearHashEvaluator evaluator;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      evaluator.rebind(p, dimension, seeds[i]);
      out[i] = evaluator.hashBits(input);
    }
    return;
  }
  const std::uint64_t p64 = p.toU64();
  // Gather the walk once: every lane visits the same positions.
  thread_local std::vector<std::uint32_t> positions;
  positions.clear();
  positions.reserve(input.size());
  input.forEachSet([&](std::size_t w) {
    positions.push_back(static_cast<std::uint32_t>(w));
  });
  for (std::size_t base = 0; base < seeds.size(); base += kLanes) {
    const std::size_t lanes = std::min(kLanes, seeds.size() - base);
    std::array<std::uint64_t, kLanes> aL{};
    std::array<std::uint64_t, kLanes> powL{};
    std::array<std::uint64_t, kLanes> rowL{};
    for (std::size_t j = 0; j < lanes; ++j) {
      aL[j] = seeds[base + j].modU64(p64);
      powL[j] = aL[j];  // Exponent 1, matching the scalar walk's start.
      rowL[j] = 0;
    }
    // The lane block advances all power chains position by position: the
    // chains are independent, so the kLanes 128-bit products overlap in the
    // pipeline instead of serializing like the scalar evaluator's single
    // Horner chain.
    std::size_t exponent = 1;
    for (std::uint32_t w : positions) {
      const std::size_t target = static_cast<std::size_t>(w) + 1;
      for (; exponent < target; ++exponent) {
        for (std::size_t j = 0; j < lanes; ++j) {
          powL[j] = mulModU64(powL[j], aL[j], p64);
        }
      }
      for (std::size_t j = 0; j < lanes; ++j) {
        rowL[j] = addModTrick(rowL[j], powL[j], p64);
      }
    }
    for (std::size_t j = 0; j < lanes; ++j) {
      out[base + j].assignU64(rowL[j]);
    }
  }
}

}  // namespace dip::hash
