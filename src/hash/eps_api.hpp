// Distributed epsilon-almost-pairwise-independent hash (Section 4).
//
// The Goldwasser-Sipser protocol needs a hash from n x n adjacency matrices
// to {0,1}^ell whose pairwise statistics are close to pairwise-independent,
// that is computable "up a spanning tree" with each node contributing the
// hash of the one matrix row it can see, and whose claimed value the nodes
// can verify with prover assistance. A truly pairwise-independent hash
// needs a Theta(n^2)-bit seed [29], which no node can afford; the paper
// relaxes to eps-API.
//
// Construction (composition eps-AU ∘ PI, cf. Bierbrauer et al. [5]):
//   inner:  H1(X) = sum over matrix entries X[u][w] * A^(u n + w + 1) mod P
//           — the linear (polynomial evaluation) hash over a prime field P,
//           seed A in Z_P. For X != X' the collision probability is at most
//           (n^2 + 1)/P (Schwartz). H1 is a sum of per-row terms, so each
//           node hashes its own row and the prover helps sum up the tree,
//           exactly the recursive h(T_v) = f(h(T_u_1), ..., I(v)) shape.
//   outer:  H2(z) = ((alpha z + beta) mod P) mod 2^ell, (alpha, beta) in
//           Z_P^2 — an affine pairwise-independent layer with rounding
//           distortion at most 2^ell / P per fiber.
//
// With P >= 2^ell * n^2 * 2^slack the composition is eps-API with
//   eps <= 2^(1-slack) + (n^2+1) 2^ell / P + O(2^ell/P),
// and near-regular: Pr[H(x) = y] = (1 ± 2^ell/P) / 2^ell.
//
// Seed = (A, alpha, beta): 3 * ceil(log2 P) = O(ell + log n) bits, supplied
// by the root node's challenge (the paper's i = i_r trick from Protocol 1).
// With ell = Theta(n log n) as GNI requires, the per-node cost is
// O(n log n), matching Theorem 1.5. The paper's full version distributes
// the seed across nodes; the PODC text does not specify that construction,
// and a root-supplied seed has identical cost and statistics here (see
// DESIGN.md section 4.4).
#pragma once

#include <cstdint>

#include "hash/linear_hash.hpp"
#include "util/biguint.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace dip::hash {

class EpsApiHash {
 public:
  struct Seed {
    util::BigUInt a;      // Inner polynomial evaluation point.
    util::BigUInt alpha;  // Outer affine multiplier.
    util::BigUInt beta;   // Outer affine offset.
  };

  // Trivial placeholder (n = 1, 1 output bit); parameter structs carrying
  // a hash by value need this before real parameters are chosen.
  EpsApiHash() : EpsApiHash(1, 1, LinearHashFamily{}) {}

  // A hash from n x n 0/1 matrices to {0,1}^outputBits, with field size
  // P >= 2^outputBits * n^2 * 2^slackBits (prime).
  static EpsApiHash create(std::size_t n, std::size_t outputBits,
                           util::Rng& rng, unsigned slackBits = 7);

  std::size_t n() const { return n_; }
  std::size_t outputBits() const { return ell_; }
  const util::BigUInt& fieldPrime() const { return inner_.prime(); }
  const LinearHashFamily& inner() const { return inner_; }

  // The eps in the API guarantee, as an upper bound.
  double epsilonBound() const;

  // Bits to transmit the seed / an inner value / an output value.
  std::size_t seedBits() const { return 3 * inner_.seedBits(); }
  std::size_t innerValueBits() const { return inner_.valueBits(); }

  Seed randomSeed(util::Rng& rng) const;

  // Node-side: inner hash of the matrix [rowIndex, rowBits] (one row).
  util::BigUInt innerRow(const Seed& seed, std::uint64_t rowIndex,
                         const util::DynBitset& rowBits) const;
  // In-domain row hasher pinned to one seed: each innerRow costs one
  // convert-out and no steady-state heap allocation. Hoist one of these
  // outside any loop that hashes many rows under the same seed.
  class RowHasher {
   public:
    RowHasher(const EpsApiHash& hash, const Seed& seed);
    util::BigUInt innerRow(std::uint64_t rowIndex, const util::DynBitset& rowBits);

   private:
    std::size_t n_;
    LinearHashEvaluator evaluator_;
  };
  // Tree combination: sum of child subtree inner values plus own row term.
  util::BigUInt combine(const util::BigUInt& left, const util::BigUInt& right) const;
  // Root-side: outer layer applied to the completed inner value.
  util::BigUInt outer(const Seed& seed, const util::BigUInt& innerValue) const;

  // Full hash of an explicit matrix given as n row bitsets (test helper /
  // prover-side preimage search).
  util::BigUInt hashRows(const Seed& seed,
                         const std::vector<util::DynBitset>& rows) const;

  // Precomputed powers a^1 .. a^(n^2) of a seed's evaluation point. The
  // honest Goldwasser-Sipser prover hashes ~n! candidate matrices per
  // repetition; with the table each candidate costs only modular additions.
  // `powers` stays in the plain domain on purpose: prover-side code adds
  // table entries straight into plain accumulators. When P fits a 64-bit
  // word, `powers64` mirrors the table so the whole candidate accumulation
  // runs in native words with no BigUInt traffic.
  struct PowerTable {
    std::vector<util::BigUInt> powers;     // powers[j] = a^(j+1) mod P.
    std::vector<std::uint64_t> powers64;   // Same values; filled iff P < 2^64.
  };
  PowerTable preparePowers(const Seed& seed) const;
  util::BigUInt innerRowPrepared(const PowerTable& table, std::uint64_t rowIndex,
                                 const util::DynBitset& rowBits) const;
  util::BigUInt hashRowsPrepared(const Seed& seed, const PowerTable& table,
                                 const std::vector<util::DynBitset>& rows) const;

 private:
  EpsApiHash(std::size_t n, std::size_t ell, LinearHashFamily inner);

  std::size_t n_;
  std::size_t ell_;
  LinearHashFamily inner_;
};

}  // namespace dip::hash
