#include "hash/linear_hash.hpp"

#include <stdexcept>

#include "util/primes.hpp"

namespace dip::hash {

LinearHashFamily::LinearHashFamily(util::BigUInt p, std::uint64_t dimension)
    : p_(std::move(p)), m_(dimension) {
  if (p_ < util::BigUInt{2}) throw std::invalid_argument("LinearHashFamily: p < 2");
  valueBits_ = p_.bitLength();
}

double LinearHashFamily::collisionBound() const {
  return static_cast<double>(m_) / p_.toDouble();
}

util::BigUInt LinearHashFamily::randomIndex(util::Rng& rng) const {
  return rng.nextBigBelow(p_);
}

util::BigUInt LinearHashFamily::hashSparse(
    const util::BigUInt& a,
    std::span<const std::pair<std::uint64_t, std::uint64_t>> entries) const {
  util::BigUInt acc;
  for (const auto& [position, coefficient] : entries) {
    if (position >= m_) throw std::out_of_range("hashSparse: position out of range");
    util::BigUInt term = util::powMod(a, util::BigUInt{position + 1}, p_);
    term = util::mulMod(term, util::BigUInt{coefficient} % p_, p_);
    acc = util::addMod(acc, term, p_);
  }
  return acc;
}

util::BigUInt LinearHashFamily::hashMatrixRow(const util::BigUInt& a,
                                              std::uint64_t rowIndex,
                                              const util::DynBitset& columnBits,
                                              std::uint64_t n) const {
  if (n * n != m_) throw std::invalid_argument("hashMatrixRow: dimension mismatch");
  if (rowIndex >= n || columnBits.size() != n) {
    throw std::out_of_range("hashMatrixRow: bad row");
  }
  // Positions rowIndex*n + w + 1 for each set column w. Start from
  // a^(rowIndex*n + 1) and walk the columns with one modular multiplication
  // per step.
  util::BigUInt power = util::powMod(a, util::BigUInt{rowIndex * n + 1}, p_);
  util::BigUInt acc;
  std::size_t previous = 0;
  bool first = true;
  columnBits.forEachSet([&](std::size_t w) {
    std::size_t gap = first ? w : w - previous;
    for (std::size_t step = 0; step < gap; ++step) power = util::mulMod(power, a, p_);
    acc = util::addMod(acc, power, p_);
    previous = w;
    first = false;
  });
  return acc;
}

util::BigUInt LinearHashFamily::hashMatrixEntry(const util::BigUInt& a,
                                                std::uint64_t rowIndex,
                                                std::uint64_t colIndex,
                                                std::uint64_t coefficient,
                                                std::uint64_t n) const {
  if (n * n != m_) throw std::invalid_argument("hashMatrixEntry: dimension mismatch");
  if (rowIndex >= n || colIndex >= n) throw std::out_of_range("hashMatrixEntry: bad entry");
  std::uint64_t position = rowIndex * n + colIndex;
  util::BigUInt term = util::powMod(a, util::BigUInt{position + 1}, p_);
  return util::mulMod(term, util::BigUInt{coefficient} % p_, p_);
}

LinearHashFamily makeProtocol1Family(std::size_t n, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("makeProtocol1Family: n < 2");
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{n}, 3);
  util::BigUInt lo = util::BigUInt{10} * n3;
  util::BigUInt hi = util::BigUInt{100} * n3;
  return LinearHashFamily(util::findPrimeInRange(lo, hi, rng),
                          static_cast<std::uint64_t>(n) * n);
}

LinearHashFamily makeProtocol2Family(std::size_t n, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("makeProtocol2Family: n < 2");
  util::BigUInt nPow = util::BigUInt::pow(util::BigUInt{n}, n + 2);
  util::BigUInt lo = util::BigUInt{10} * nPow;
  util::BigUInt hi = util::BigUInt{100} * nPow;
  return LinearHashFamily(util::findPrimeInRange(lo, hi, rng),
                          static_cast<std::uint64_t>(n) * n);
}

LinearHashFamily makeProtocol1FamilyCached(std::size_t n) {
  if (n < 2) throw std::invalid_argument("makeProtocol1FamilyCached: n < 2");
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{n}, 3);
  return LinearHashFamily(
      util::cachedPrimeInRange(util::BigUInt{10} * n3, util::BigUInt{100} * n3),
      static_cast<std::uint64_t>(n) * n);
}

LinearHashFamily makeProtocol2FamilyCached(std::size_t n) {
  if (n < 2) throw std::invalid_argument("makeProtocol2FamilyCached: n < 2");
  util::BigUInt nPow = util::BigUInt::pow(util::BigUInt{n}, n + 2);
  return LinearHashFamily(
      util::cachedPrimeInRange(util::BigUInt{10} * nPow, util::BigUInt{100} * nPow),
      static_cast<std::uint64_t>(n) * n);
}

}  // namespace dip::hash
