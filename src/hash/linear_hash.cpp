#include "hash/linear_hash.hpp"

#include <stdexcept>

#include "util/primes.hpp"

namespace dip::hash {

namespace {

__extension__ using U128 = unsigned __int128;

std::uint64_t mulModU64(std::uint64_t x, std::uint64_t y, std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<U128>(x) * y % m);
}

std::uint64_t addModU64(std::uint64_t x, std::uint64_t y, std::uint64_t m) {
  U128 sum = static_cast<U128>(x) + y;
  if (sum >= m) sum -= m;
  return static_cast<std::uint64_t>(sum);
}

std::uint64_t powModU64(std::uint64_t base, std::uint64_t exponent, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  std::uint64_t square = base % m;
  while (exponent != 0) {
    if (exponent & 1) result = mulModU64(result, square, m);
    exponent >>= 1;
    if (exponent != 0) square = mulModU64(square, square, m);
  }
  return result;
}

// One evaluator per thread backing the family's per-call methods, so legacy
// call sites get the backend dispatch without holding an evaluator
// themselves. rebind() short-circuits when (p, dimension, a) are unchanged,
// which is the common case inside protocol loops.
LinearHashEvaluator& threadEvaluator(const util::BigUInt& p, std::uint64_t dimension,
                                     const util::BigUInt& a) {
  thread_local LinearHashEvaluator evaluator;
  evaluator.rebind(p, dimension, a);
  return evaluator;
}

}  // namespace

// --- LinearHashEvaluator --------------------------------------------------

LinearHashEvaluator::LinearHashEvaluator(const LinearHashFamily& family,
                                         const util::BigUInt& a) {
  rebind(family, a);
}

void LinearHashEvaluator::rebind(const LinearHashFamily& family, const util::BigUInt& a) {
  rebind(family.prime(), family.dimension(), a);
}

void LinearHashEvaluator::rebind(const util::BigUInt& p, std::uint64_t dimension,
                                 const util::BigUInt& a) {
  const bool sameP = backend_ != Backend::kUnbound && p == p_;
  if (sameP && dimension == m_ && a == aBound_) return;
  if (!sameP) {
    if (p < util::BigUInt{2}) {
      throw std::invalid_argument("LinearHashEvaluator: p < 2");
    }
    p_ = p;
    if (p_.fitsU64()) {
      backend_ = Backend::kU64;
      p64_ = p_.toU64();
      ctx_.reset();
    } else if (p_.isOdd()) {
      backend_ = Backend::kMontgomery;
      ctx_ = util::cachedMontgomeryContext(p_);
    } else {
      backend_ = Backend::kPlain;
      ctx_.reset();
    }
  }
  m_ = dimension;
  aBound_ = a;
  switch (backend_) {
    case Backend::kU64:
      a64_ = a.modU64(p64_);
      break;
    case Backend::kMontgomery:
      ctx_->toValue(a, aV_, scratch_);
      aWindow_.limbs = 0;  // Base changed: rebuild lazily on first pow.
      break;
    case Backend::kPlain:
      aPlain_ = a % p_;
      break;
    case Backend::kUnbound:
      break;
  }
  resetAccumulator();
}

void LinearHashEvaluator::clearRow() {
  switch (backend_) {
    case Backend::kU64:
      row64_ = 0;
      break;
    case Backend::kMontgomery:
      rowV_ = ctx_->zeroValue();
      break;
    case Backend::kPlain:
      rowPlain_ = util::BigUInt{};
      break;
    case Backend::kUnbound:
      throw std::logic_error("LinearHashEvaluator: used before rebind");
  }
}

util::BigUInt LinearHashEvaluator::rowValue() {
  switch (backend_) {
    case Backend::kU64:
      return util::BigUInt{row64_};
    case Backend::kMontgomery:
      return ctx_->fromValue(rowV_);
    default:
      return rowPlain_;
  }
}

void LinearHashEvaluator::walkBits(std::uint64_t startExponent,
                                   const util::DynBitset& bits) {
  clearRow();
  std::size_t previous = 0;
  bool first = true;
  switch (backend_) {
    case Backend::kU64: {
      std::uint64_t power = powModU64(a64_, startExponent, p64_);
      bits.forEachSet([&](std::size_t w) {
        std::size_t gap = first ? w : w - previous;
        for (std::size_t step = 0; step < gap; ++step) {
          power = mulModU64(power, a64_, p64_);
        }
        row64_ = addModU64(row64_, power, p64_);
        previous = w;
        first = false;
      });
      break;
    }
    case Backend::kMontgomery: {
      exponent_ = util::BigUInt{startExponent};
      powPinnedA(exponent_, powerV_);
      bits.forEachSet([&](std::size_t w) {
        std::size_t gap = first ? w : w - previous;
        for (std::size_t step = 0; step < gap; ++step) {
          ctx_->mulValue(powerV_, aV_, powerV_, scratch_);
        }
        ctx_->addValue(rowV_, powerV_, rowV_);
        previous = w;
        first = false;
      });
      break;
    }
    default: {
      powerPlain_ = util::powMod(aPlain_, util::BigUInt{startExponent}, p_);
      bits.forEachSet([&](std::size_t w) {
        std::size_t gap = first ? w : w - previous;
        for (std::size_t step = 0; step < gap; ++step) {
          powerPlain_ = util::mulMod(powerPlain_, aPlain_, p_);
        }
        rowPlain_ = util::addMod(rowPlain_, powerPlain_, p_);
        previous = w;
        first = false;
      });
      break;
    }
  }
}

void LinearHashEvaluator::powPinnedA(const util::BigUInt& exponent,
                                     util::MontgomeryValue& out) {
  if (aWindow_.limbs == 0) ctx_->prepareWindow(aV_, aWindow_, scratch_);
  ctx_->powValueWindowed(aWindow_, exponent, out, scratch_);
}

void LinearHashEvaluator::addTerm(std::uint64_t position, std::uint64_t coefficient) {
  switch (backend_) {
    case Backend::kU64: {
      std::uint64_t term = powModU64(a64_, position + 1, p64_);
      term = mulModU64(term, coefficient % p64_, p64_);
      row64_ = addModU64(row64_, term, p64_);
      break;
    }
    case Backend::kMontgomery: {
      exponent_ = util::BigUInt{position + 1};
      powPinnedA(exponent_, powerV_);
      if (coefficient != 1) {
        coeffBig_ = util::BigUInt{coefficient};
        ctx_->toValue(coeffBig_, coeffV_, scratch_);
        ctx_->mulValue(powerV_, coeffV_, powerV_, scratch_);
      }
      ctx_->addValue(rowV_, powerV_, rowV_);
      break;
    }
    default: {
      powerPlain_ = util::powMod(aPlain_, util::BigUInt{position + 1}, p_);
      powerPlain_ = util::mulMod(powerPlain_, util::BigUInt{coefficient} % p_, p_);
      rowPlain_ = util::addMod(rowPlain_, powerPlain_, p_);
      break;
    }
  }
}

util::BigUInt LinearHashEvaluator::hashSparse(
    std::span<const std::pair<std::uint64_t, std::uint64_t>> entries) {
  clearRow();
  for (const auto& [position, coefficient] : entries) {
    if (position >= m_) throw std::out_of_range("hashSparse: position out of range");
    addTerm(position, coefficient);
  }
  return rowValue();
}

util::BigUInt LinearHashEvaluator::hashMatrixRow(std::uint64_t rowIndex,
                                                 const util::DynBitset& columnBits,
                                                 std::uint64_t n) {
  if (n * n != m_) throw std::invalid_argument("hashMatrixRow: dimension mismatch");
  if (rowIndex >= n || columnBits.size() != n) {
    throw std::out_of_range("hashMatrixRow: bad row");
  }
  walkBits(rowIndex * n + 1, columnBits);
  return rowValue();
}

util::BigUInt LinearHashEvaluator::hashMatrixEntry(std::uint64_t rowIndex,
                                                   std::uint64_t colIndex,
                                                   std::uint64_t coefficient,
                                                   std::uint64_t n) {
  if (n * n != m_) throw std::invalid_argument("hashMatrixEntry: dimension mismatch");
  if (rowIndex >= n || colIndex >= n) throw std::out_of_range("hashMatrixEntry: bad entry");
  clearRow();
  addTerm(rowIndex * n + colIndex, coefficient);
  return rowValue();
}

util::BigUInt LinearHashEvaluator::hashBits(const util::DynBitset& bits) {
  if (bits.size() > m_) throw std::out_of_range("hashBits: bits exceed dimension");
  walkBits(1, bits);
  return rowValue();
}

void LinearHashEvaluator::powerTable(std::size_t count,
                                     std::vector<util::BigUInt>& out) {
  out.clear();
  out.reserve(count);
  switch (backend_) {
    case Backend::kU64: {
      std::uint64_t power = a64_;
      for (std::size_t j = 0; j < count; ++j) {
        out.push_back(util::BigUInt{power});
        if (j + 1 < count) power = mulModU64(power, a64_, p64_);
      }
      break;
    }
    case Backend::kMontgomery: {
      powerV_ = aV_;
      for (std::size_t j = 0; j < count; ++j) {
        out.push_back(ctx_->fromValue(powerV_));
        if (j + 1 < count) ctx_->mulValue(powerV_, aV_, powerV_, scratch_);
      }
      break;
    }
    default: {
      powerPlain_ = aPlain_;
      for (std::size_t j = 0; j < count; ++j) {
        out.push_back(powerPlain_);
        if (j + 1 < count) powerPlain_ = util::mulMod(powerPlain_, aPlain_, p_);
      }
      break;
    }
  }
}

void LinearHashEvaluator::resetAccumulator() {
  switch (backend_) {
    case Backend::kU64:
      acc64_ = 0;
      break;
    case Backend::kMontgomery:
      accV_ = ctx_->zeroValue();
      break;
    case Backend::kPlain:
      accPlain_ = util::BigUInt{};
      break;
    case Backend::kUnbound:
      break;
  }
}

void LinearHashEvaluator::accumulateMatrixRow(std::uint64_t rowIndex,
                                              const util::DynBitset& columnBits,
                                              std::uint64_t n) {
  if (n * n != m_) throw std::invalid_argument("hashMatrixRow: dimension mismatch");
  if (rowIndex >= n || columnBits.size() != n) {
    throw std::out_of_range("hashMatrixRow: bad row");
  }
  walkBits(rowIndex * n + 1, columnBits);
  switch (backend_) {
    case Backend::kU64:
      acc64_ = addModU64(acc64_, row64_, p64_);
      break;
    case Backend::kMontgomery:
      ctx_->addValue(accV_, rowV_, accV_);
      break;
    default:
      accPlain_ = util::addMod(accPlain_, rowPlain_, p_);
      break;
  }
}

util::BigUInt LinearHashEvaluator::accumulatedValue() {
  switch (backend_) {
    case Backend::kU64:
      return util::BigUInt{acc64_};
    case Backend::kMontgomery:
      return ctx_->fromValue(accV_);
    default:
      return accPlain_;
  }
}

// --- LinearHashFamily -----------------------------------------------------

LinearHashFamily::LinearHashFamily(util::BigUInt p, std::uint64_t dimension)
    : p_(std::move(p)), m_(dimension) {
  if (p_ < util::BigUInt{2}) throw std::invalid_argument("LinearHashFamily: p < 2");
  valueBits_ = p_.bitLength();
}

double LinearHashFamily::collisionBound() const {
  return static_cast<double>(m_) / p_.toDouble();
}

util::BigUInt LinearHashFamily::randomIndex(util::Rng& rng) const {
  return rng.nextBigBelow(p_);
}

util::BigUInt LinearHashFamily::hashSparse(
    const util::BigUInt& a,
    std::span<const std::pair<std::uint64_t, std::uint64_t>> entries) const {
  return threadEvaluator(p_, m_, a).hashSparse(entries);
}

util::BigUInt LinearHashFamily::hashMatrixRow(const util::BigUInt& a,
                                              std::uint64_t rowIndex,
                                              const util::DynBitset& columnBits,
                                              std::uint64_t n) const {
  return threadEvaluator(p_, m_, a).hashMatrixRow(rowIndex, columnBits, n);
}

util::BigUInt LinearHashFamily::hashMatrixEntry(const util::BigUInt& a,
                                                std::uint64_t rowIndex,
                                                std::uint64_t colIndex,
                                                std::uint64_t coefficient,
                                                std::uint64_t n) const {
  return threadEvaluator(p_, m_, a).hashMatrixEntry(rowIndex, colIndex, coefficient, n);
}

LinearHashFamily makeProtocol1Family(std::size_t n, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("makeProtocol1Family: n < 2");
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{n}, 3);
  util::BigUInt lo = util::BigUInt{10} * n3;
  util::BigUInt hi = util::BigUInt{100} * n3;
  return LinearHashFamily(util::findPrimeInRange(lo, hi, rng),
                          static_cast<std::uint64_t>(n) * n);
}

LinearHashFamily makeProtocol2Family(std::size_t n, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("makeProtocol2Family: n < 2");
  util::BigUInt nPow = util::BigUInt::pow(util::BigUInt{n}, n + 2);
  util::BigUInt lo = util::BigUInt{10} * nPow;
  util::BigUInt hi = util::BigUInt{100} * nPow;
  return LinearHashFamily(util::findPrimeInRange(lo, hi, rng),
                          static_cast<std::uint64_t>(n) * n);
}

LinearHashFamily makeProtocol1FamilyCached(std::size_t n) {
  if (n < 2) throw std::invalid_argument("makeProtocol1FamilyCached: n < 2");
  util::BigUInt n3 = util::BigUInt::pow(util::BigUInt{n}, 3);
  return LinearHashFamily(
      util::cachedPrimeInRange(util::BigUInt{10} * n3, util::BigUInt{100} * n3),
      static_cast<std::uint64_t>(n) * n);
}

LinearHashFamily makeProtocol2FamilyCached(std::size_t n) {
  if (n < 2) throw std::invalid_argument("makeProtocol2FamilyCached: n < 2");
  util::BigUInt nPow = util::BigUInt::pow(util::BigUInt{n}, n + 2);
  return LinearHashFamily(
      util::cachedPrimeInRange(util::BigUInt{10} * nPow, util::BigUInt{100} * nPow),
      static_cast<std::uint64_t>(n) * n);
}

}  // namespace dip::hash
