#include "hash/distributed_seed.hpp"

#include <stdexcept>

#include "hash/batch_eval.hpp"
#include "hash/linear_hash.hpp"

namespace dip::hash {

DistributedSeedHash::DistributedSeedHash(util::BigUInt fieldPrime, std::size_t n)
    : p_(std::move(fieldPrime)), n_(n) {
  if (p_ < util::BigUInt{2}) throw std::invalid_argument("DistributedSeedHash: P < 2");
}

double DistributedSeedHash::collisionBound() const {
  return static_cast<double>(n_) / p_.toDouble();
}

util::BigUInt DistributedSeedHash::rowPiece(const util::BigUInt& nodeSeed,
                                            const util::DynBitset& rowBits) const {
  if (rowBits.size() != n_) {
    throw std::invalid_argument("DistributedSeedHash::rowPiece: row size mismatch");
  }
  // poly(row, a) = sum over set bits w of a^(w+1), evaluated incrementally
  // in the evaluator's backend domain (hashBits starts the walk at a^1).
  thread_local LinearHashEvaluator evaluator;
  evaluator.rebind(p_, n_, nodeSeed);
  return evaluator.hashBits(rowBits);
}

util::BigUInt DistributedSeedHash::combine(const util::BigUInt& left,
                                           const util::BigUInt& right) const {
  return util::addMod(left, right, p_);
}

util::BigUInt DistributedSeedHash::hashRowsWithOwners(
    const std::vector<util::BigUInt>& seeds, const std::vector<util::DynBitset>& rows,
    const std::vector<std::uint32_t>& owner) const {
  if (seeds.size() != n_ || rows.size() != n_ || owner.size() != n_) {
    throw std::invalid_argument("DistributedSeedHash: size mismatch");
  }
  if (batchEnabled()) {
    // Group rows by owning seed: each owner's rows share one column power
    // table (sum order regroups, which is exact in Z_p). Row-size checks
    // stay identical to rowPiece's.
    for (std::size_t u = 0; u < n_; ++u) {
      if (rows[u].size() != n_) {
        throw std::invalid_argument(
            "DistributedSeedHash::rowPiece: row size mismatch");
      }
    }
    thread_local BatchLinearHashEvaluator batch;
    thread_local std::vector<util::DynBitset> grouped;
    thread_local std::vector<util::BigUInt> pieces;
    util::BigUInt acc;
    grouped.reserve(n_);
    for (std::size_t o = 0; o < n_; ++o) {
      grouped.clear();
      for (std::size_t u = 0; u < n_; ++u) {
        if (owner[u] == o) grouped.push_back(rows[u]);
      }
      if (grouped.empty()) continue;
      batch.rebind(p_, n_, seeds[o]);
      batch.hashBitsMany(grouped, pieces);
      for (const util::BigUInt& piece : pieces) acc = combine(acc, piece);
    }
    return acc;
  }
  util::BigUInt acc;
  for (std::size_t u = 0; u < n_; ++u) {
    acc = combine(acc, rowPiece(seeds[owner[u]], rows[u]));
  }
  return acc;
}

}  // namespace dip::hash
