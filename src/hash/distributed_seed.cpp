#include "hash/distributed_seed.hpp"

#include <stdexcept>

#include "hash/linear_hash.hpp"

namespace dip::hash {

DistributedSeedHash::DistributedSeedHash(util::BigUInt fieldPrime, std::size_t n)
    : p_(std::move(fieldPrime)), n_(n) {
  if (p_ < util::BigUInt{2}) throw std::invalid_argument("DistributedSeedHash: P < 2");
}

double DistributedSeedHash::collisionBound() const {
  return static_cast<double>(n_) / p_.toDouble();
}

util::BigUInt DistributedSeedHash::rowPiece(const util::BigUInt& nodeSeed,
                                            const util::DynBitset& rowBits) const {
  if (rowBits.size() != n_) {
    throw std::invalid_argument("DistributedSeedHash::rowPiece: row size mismatch");
  }
  // poly(row, a) = sum over set bits w of a^(w+1), evaluated incrementally
  // in the evaluator's backend domain (hashBits starts the walk at a^1).
  thread_local LinearHashEvaluator evaluator;
  evaluator.rebind(p_, n_, nodeSeed);
  return evaluator.hashBits(rowBits);
}

util::BigUInt DistributedSeedHash::combine(const util::BigUInt& left,
                                           const util::BigUInt& right) const {
  return util::addMod(left, right, p_);
}

util::BigUInt DistributedSeedHash::hashRowsWithOwners(
    const std::vector<util::BigUInt>& seeds, const std::vector<util::DynBitset>& rows,
    const std::vector<std::uint32_t>& owner) const {
  if (seeds.size() != n_ || rows.size() != n_ || owner.size() != n_) {
    throw std::invalid_argument("DistributedSeedHash: size mismatch");
  }
  util::BigUInt acc;
  for (std::size_t u = 0; u < n_; ++u) {
    acc = combine(acc, rowPiece(seeds[owner[u]], rows[u]));
  }
  return acc;
}

}  // namespace dip::hash
