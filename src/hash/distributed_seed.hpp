// The distributed-seed hash variant (Section 4's "each node contributing a
// small part" of the seed), kept as a first-class construction with its
// trade-off made executable.
//
// Construction: every node u holds a PRIVATE evaluation point a_u in Z_P;
// the hash of an n x n matrix X is
//     H1(X) = sum_u poly(X_u, a_u) mod P,   poly(r, a) = sum_w r_w a^(w+1),
// i.e. row u is fingerprinted with node u's own seed. For X != X' the
// difference is a non-zero polynomial in the a_u of total degree <= n
// (Schwartz-Zippel), so Pr[collision] <= n/P — an eps-almost-universal
// family whose seed is genuinely split across the nodes: O(log P) bits per
// node, never assembled anywhere. It combines up a spanning tree exactly
// like the root-seeded hash.
//
// THE TRADE-OFF (why the GNI protocol in this library uses the root-seeded
// EpsApiHash instead): H1's value depends on WHICH NODE vouches for which
// row. In Goldwasser-Sipser, node v vouches for row sigma(v) of sigma(G_b),
// so two (sigma, b) pairs that produce the SAME graph but different row
// assignments hash differently — the hash is no longer a function of the
// graph, and the |S| = 2 n! vs n! counting collapses (tests demonstrate
// this concretely). The distributed seed is perfectly sound for protocols
// where each node's row INDEX is fixed (e.g. fingerprinting sum [v, N(v)]
// itself); it cannot serve the permuted-matrix side.
#pragma once

#include <vector>

#include "util/biguint.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace dip::hash {

class DistributedSeedHash {
 public:
  // Hash of n x n 0/1 matrices into Z_P; P prime (not re-verified).
  DistributedSeedHash(util::BigUInt fieldPrime, std::size_t n);

  const util::BigUInt& fieldPrime() const { return p_; }
  std::size_t n() const { return n_; }

  // Collision probability bound n/P for distinct matrices under uniform
  // per-node seeds.
  double collisionBound() const;

  // Bits each node contributes (its private seed) — the "small part".
  std::size_t perNodeSeedBits() const { return p_.bitLength(); }

  // One node's private seed.
  util::BigUInt randomNodeSeed(util::Rng& rng) const { return rng.nextBigBelow(p_); }

  // Node u's contribution: poly(row, a_u) — computable from u's local data
  // alone.
  util::BigUInt rowPiece(const util::BigUInt& nodeSeed,
                         const util::DynBitset& rowBits) const;

  // Tree combination (mod-P addition, associative/commutative).
  util::BigUInt combine(const util::BigUInt& left, const util::BigUInt& right) const;

  // Whole-matrix hash given all rows and all node seeds, with row u hashed
  // under seeds[owner[u]] — `owner` captures which node vouches for which
  // row (identity ownership = the well-defined case).
  util::BigUInt hashRowsWithOwners(const std::vector<util::BigUInt>& seeds,
                                   const std::vector<util::DynBitset>& rows,
                                   const std::vector<std::uint32_t>& owner) const;

 private:
  util::BigUInt p_;
  std::size_t n_;
};

}  // namespace dip::hash
