// Batch evaluation engine for the Theorem 3.2 linear hash family.
//
// The scalar LinearHashEvaluator walks each row's bits with one modular
// multiply per column position: hashing a full n x n matrix costs ~n^2
// multiplies. The batch engine exploits the factorization
//
//     h_a([r, bits]) = a^(r*n) * sum_{w in bits} a^(w+1)   (mod p)
//
// to share ALL power computation across rows: one column power table
// P[w] = a^(w+1) (n multiplies, built once per (a, n)) plus one row-base
// table B[r] = a^(r*n) turns every subsequent row into popcount modular
// ADDS and a single multiply. A full matrix drops from ~n^2 to ~2n
// multiplies; protocol trial paths evaluate thousands of rows per pinned
// index, so the tables amortize to near-zero.
//
// Backends mirror the scalar evaluator exactly — results are bit-identical
// (both produce the canonical residue < p; tests/batch_eval_test.cpp proves
// it differentially over 10^4 seeded matrices):
//   - kU64 (p < 2^64): tables are flat uint64 slices, row sums use
//     add-with-conditional-subtract (no multiply), one 128-bit product per
//     row. The many-seeds entry point runs kLanes parallel power chains so
//     independent Horner walks overlap in the pipeline.
//   - kMontgomery (p odd, wider): tables are flat raw-limb Montgomery
//     residues driven through PR 4's fixed-k CIOS kernels
//     (MontgomeryContext::mulRaw/addRaw) with one caller-owned Scratch;
//     one convert-out per hash value (or per batch, for accumulation).
//   - kPlain (p even, wider — placeholder fields only): BigUInt tables.
//
// All table storage lives in a private util::Arena, reset on every rebind:
// the hot loops allocate nothing, and a stale table pointer after rebind is
// an ASan-diagnosable error rather than silent reuse. Not thread-safe; use
// one batch evaluator per thread (the call sites keep thread_local
// instances — the "per-protocol arenas", since each protocol family pins
// its own evaluator shape).
//
// The process-wide batch toggle exists so bench_throughput can measure the
// scalar path on identical workloads (DIP_BATCH=0, or setBatchEnabled).
// Toggling never changes any result, only the evaluation strategy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hash/linear_hash.hpp"
#include "util/arena.hpp"
#include "util/biguint.hpp"
#include "util/bitset.hpp"
#include "util/montgomery.hpp"

namespace dip::hash {

// Default true; the DIP_BATCH environment variable (read once, "0" disables)
// sets the initial state and setBatchEnabled overrides it at runtime.
bool batchEnabled();
void setBatchEnabled(bool enabled);

// AVX2 residue-lane toggle for the u64 backend's dense-row inner loop.
// Defaults to on when the build has the kernel, the CPU reports AVX2, and
// DIP_AVX2 is not "0"; setAvx2Enabled(true) is clamped to CPU support so the
// differential tests can flip it freely on any machine. Toggling never
// changes any result, only which kernel computes the identical residue sum.
bool avx2Enabled();
void setAvx2Enabled(bool enabled);

class BatchLinearHashEvaluator {
 public:
  // Lane width of the u64 many-seeds path: enough independent multiply
  // chains to cover the 128-bit product latency, small enough to stay in
  // registers.
  static constexpr std::size_t kLanes = 8;

  BatchLinearHashEvaluator() = default;

  // (Re)pins (p, dimension, a). No-op when nothing changed (tables and the
  // Montgomery context survive); otherwise the arena resets and tables
  // rebuild lazily on first use.
  void rebind(const util::BigUInt& p, std::uint64_t dimension, const util::BigUInt& a);
  void rebind(const LinearHashFamily& family, const util::BigUInt& a);

  // out[i] = hashMatrixRow(rowIndices[i], rows[i], n) under the pinned
  // index; same argument checks as the scalar evaluator. rowIndices and
  // rows must have equal lengths.
  void hashMatrixRows(std::span<const std::uint64_t> rowIndices,
                      std::span<const util::DynBitset> rows, std::uint64_t n,
                      std::vector<util::BigUInt>& out);

  // Sum over i of hashMatrixRow(rowIndices[i], rows[i], n) mod p, with a
  // single convert-out — the fingerprint shape (eps_api hashRows,
  // mappedMatrixFingerprint).
  util::BigUInt accumulateMatrixRows(std::span<const std::uint64_t> rowIndices,
                                     std::span<const util::DynBitset> rows,
                                     std::uint64_t n);

  // Single-call forms under the pinned index — same values and argument
  // checks as the scalar evaluator, but every power is a table lookup
  // (row base times column power). These serve call sites that interleave
  // row and entry hashes per node (sym_input's piecesFor, the GNI check
  // pieces), where the work per call is too mixed for the span entry points
  // but the index is pinned across thousands of calls.
  util::BigUInt hashMatrixRow(std::uint64_t rowIndex, const util::DynBitset& columnBits,
                              std::uint64_t n);
  util::BigUInt hashMatrixEntry(std::uint64_t rowIndex, std::uint64_t colIndex,
                                std::uint64_t coefficient, std::uint64_t n);

  // Sum over i of hashMatrixEntry(rowIndices[i], colIndices[i], 1, n) mod p
  // with a single convert-out — the consistency-series shape. rowIndices and
  // colIndices must have equal lengths.
  util::BigUInt accumulateMatrixEntries(std::span<const std::uint64_t> rowIndices,
                                        std::span<const std::uint64_t> colIndices,
                                        std::uint64_t n);

  // One seed x many inputs: out[i] = hashBits(inputs[i]) (start exponent 1,
  // coefficient 1; each input.size() <= dimension).
  void hashBitsMany(std::span<const util::DynBitset> inputs,
                    std::vector<util::BigUInt>& out);

  // Many seeds x one input: out[j] = h_{seeds[j]}(input). The u64 backend
  // interleaves kLanes independent power chains; wider fields fall back to
  // per-seed scalar walks (the table trick cannot span distinct indices).
  static void hashBitsManySeeds(const util::BigUInt& p, std::uint64_t dimension,
                                std::span<const util::BigUInt> seeds,
                                const util::DynBitset& input,
                                std::vector<util::BigUInt>& out);

 private:
  enum class Backend { kUnbound, kU64, kMontgomery, kPlain };

  // Ensures P[w] = a^(w+1) for w in [0, count) and, when n > 0, B[r] =
  // a^(r*n) for r in [0, n). Growth rebuilds from scratch (arena bump);
  // shapes are bounded by the family dimension.
  void prepareTables(std::size_t count, std::uint64_t n);
  void checkRow(std::uint64_t rowIndex, const util::DynBitset& bits,
                std::uint64_t n) const;
  void checkEntry(std::uint64_t rowIndex, std::uint64_t colIndex,
                  std::uint64_t n) const;

  Backend backend_ = Backend::kUnbound;
  util::BigUInt p_;
  std::uint64_t m_ = 0;
  util::BigUInt aBound_;
  util::Arena arena_;
  std::size_t colCount_ = 0;   // Entries built in the column power table.
  std::uint64_t rowBaseN_ = 0; // n the row-base table was built for (0 = none).
  // kU64 backend.
  std::uint64_t p64_ = 0;
  std::uint64_t a64_ = 0;
  std::uint64_t* colPow64_ = nullptr;
  std::uint64_t* rowBase64_ = nullptr;
  // kMontgomery backend: flat k-limb residues, colPowM_[w*k], rowBaseM_[r*k].
  std::shared_ptr<const util::MontgomeryContext> ctx_;
  util::MontgomeryContext::Scratch scratch_;
  util::MontgomeryContext::Limb* colPowM_ = nullptr;
  util::MontgomeryContext::Limb* rowBaseM_ = nullptr;
  util::MontgomeryContext::Limb* rowSumM_ = nullptr;  // k-limb staging slices.
  util::MontgomeryContext::Limb* accM_ = nullptr;
  util::MontgomeryValue aV_;
  util::MontgomeryValue stageV_;
  // kPlain backend.
  util::BigUInt aPlain_;
  std::vector<util::BigUInt> colPowP_;
  std::vector<util::BigUInt> rowBaseP_;
};

}  // namespace dip::hash
