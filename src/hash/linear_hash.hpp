// The linear hash family of Theorem 3.2.
//
// For a prime p and dimension m, the family is indexed by an evaluation
// point a in Z_p:
//     h_a(x) = sum_k x_k * a^(k+1)   (mod p),     x in Z_p^m.
// Properties used by the paper's protocols:
//   (1) Linearity: h_a(x + x') = h_a(x) + h_a(x') mod p — so the hash of the
//       whole adjacency matrix is the sum of per-node row hashes, summable
//       up a spanning tree.
//   (2) Collision: for x != x', h_a(x) = h_a(x') iff a is a root of a
//       non-zero polynomial of degree <= m, so Pr_a[collision] <= m/p.
// Family size is p, so a random index costs ceil(log2 p) bits.
//
// Matrix convention: an n x n matrix over Z_p is the m = n^2 dimensional
// vector with entry (row u, column w) at position u*n + w. The paper's
// [v, N(v)] (the matrix whose v-th row is the closed neighborhood of v and
// which is zero elsewhere) hashes via hashMatrixRow.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "util/biguint.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace dip::hash {

class LinearHashFamily {
 public:
  // Trivial placeholder family (p = 2, dimension 1); parameter structs that
  // carry a family by value need this before real parameters are chosen.
  LinearHashFamily() : LinearHashFamily(util::BigUInt{2}, 1) {}
  // Family over Z_p^dimension. Requires p prime (not re-verified here).
  LinearHashFamily(util::BigUInt p, std::uint64_t dimension);

  const util::BigUInt& prime() const { return p_; }
  std::uint64_t dimension() const { return m_; }

  // Bits to transmit a hash index (seed) or a hash value.
  std::size_t seedBits() const { return valueBits_; }
  std::size_t valueBits() const { return valueBits_; }

  // Upper bound on the collision probability m/p.
  double collisionBound() const;

  // Draws a random index a in [0, p).
  util::BigUInt randomIndex(util::Rng& rng) const;

  // h_a of a sparse vector given as (position, coefficient) entries.
  util::BigUInt hashSparse(
      const util::BigUInt& a,
      std::span<const std::pair<std::uint64_t, std::uint64_t>> entries) const;

  // h_a of the matrix [rowIndex, columnBits]: the n x n 0/1 matrix whose
  // rowIndex-th row is columnBits and which is zero elsewhere. Requires
  // dimension() == n * n. Incremental powers: O(n) modular multiplications.
  util::BigUInt hashMatrixRow(const util::BigUInt& a, std::uint64_t rowIndex,
                              const util::DynBitset& columnBits,
                              std::uint64_t n) const;

  // h_a of coefficient * e_(rowIndex*n + colIndex) — a single matrix entry.
  util::BigUInt hashMatrixEntry(const util::BigUInt& a, std::uint64_t rowIndex,
                                std::uint64_t colIndex, std::uint64_t coefficient,
                                std::uint64_t n) const;

 private:
  util::BigUInt p_;
  std::uint64_t m_;
  std::size_t valueBits_;
};

// Protocol 1's parameters: p prime in [10 n^3, 100 n^3], dimension n^2.
// O(log n) seed and value bits.
LinearHashFamily makeProtocol1Family(std::size_t n, util::Rng& rng);

// Protocol 2's parameters: p prime in [10 n^(n+2), 100 n^(n+2)], dimension
// n^2. O(n log n) seed and value bits — large enough to union-bound over all
// n^n mappings after the challenge is revealed (Theorem 3.5).
LinearHashFamily makeProtocol2Family(std::size_t n, util::Rng& rng);

// Memoized variants: the prime comes from util::cachedPrimeInRange, so the
// family for a given n is a pure function of n (no caller Rng stream is
// consumed) and the Miller-Rabin search runs once per window per process —
// the form the trial engine and the bench drivers use.
LinearHashFamily makeProtocol1FamilyCached(std::size_t n);
LinearHashFamily makeProtocol2FamilyCached(std::size_t n);

}  // namespace dip::hash
