// The linear hash family of Theorem 3.2.
//
// For a prime p and dimension m, the family is indexed by an evaluation
// point a in Z_p:
//     h_a(x) = sum_k x_k * a^(k+1)   (mod p),     x in Z_p^m.
// Properties used by the paper's protocols:
//   (1) Linearity: h_a(x + x') = h_a(x) + h_a(x') mod p — so the hash of the
//       whole adjacency matrix is the sum of per-node row hashes, summable
//       up a spanning tree.
//   (2) Collision: for x != x', h_a(x) = h_a(x') iff a is a root of a
//       non-zero polynomial of degree <= m, so Pr_a[collision] <= m/p.
// Family size is p, so a random index costs ceil(log2 p) bits.
//
// Matrix convention: an n x n matrix over Z_p is the m = n^2 dimensional
// vector with entry (row u, column w) at position u*n + w. The paper's
// [v, N(v)] (the matrix whose v-th row is the closed neighborhood of v and
// which is zero elsewhere) hashes via hashMatrixRow.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "util/biguint.hpp"
#include "util/bitset.hpp"
#include "util/montgomery.hpp"
#include "util/rng.hpp"

namespace dip::hash {

class LinearHashFamily {
 public:
  // Trivial placeholder family (p = 2, dimension 1); parameter structs that
  // carry a family by value need this before real parameters are chosen.
  LinearHashFamily() : LinearHashFamily(util::BigUInt{2}, 1) {}
  // Family over Z_p^dimension. Requires p prime (not re-verified here).
  LinearHashFamily(util::BigUInt p, std::uint64_t dimension);

  const util::BigUInt& prime() const { return p_; }
  std::uint64_t dimension() const { return m_; }

  // Bits to transmit a hash index (seed) or a hash value.
  std::size_t seedBits() const { return valueBits_; }
  std::size_t valueBits() const { return valueBits_; }

  // Upper bound on the collision probability m/p.
  double collisionBound() const;

  // Draws a random index a in [0, p).
  util::BigUInt randomIndex(util::Rng& rng) const;

  // h_a of a sparse vector given as (position, coefficient) entries.
  util::BigUInt hashSparse(
      const util::BigUInt& a,
      std::span<const std::pair<std::uint64_t, std::uint64_t>> entries) const;

  // h_a of the matrix [rowIndex, columnBits]: the n x n 0/1 matrix whose
  // rowIndex-th row is columnBits and which is zero elsewhere. Requires
  // dimension() == n * n. Incremental powers: O(n) modular multiplications.
  util::BigUInt hashMatrixRow(const util::BigUInt& a, std::uint64_t rowIndex,
                              const util::DynBitset& columnBits,
                              std::uint64_t n) const;

  // h_a of coefficient * e_(rowIndex*n + colIndex) — a single matrix entry.
  util::BigUInt hashMatrixEntry(const util::BigUInt& a, std::uint64_t rowIndex,
                                std::uint64_t colIndex, std::uint64_t coefficient,
                                std::uint64_t n) const;

 private:
  util::BigUInt p_;
  std::uint64_t m_;
  std::size_t valueBits_;
};

// In-domain evaluator for one evaluation point of a LinearHashFamily.
//
// The family's per-call methods re-derive everything from (a, p) on every
// invocation; protocol hot loops call them thousands of times with the SAME
// index. The evaluator pins the index once and picks the cheapest backend
// for the field:
//   - p < 2^64: all arithmetic in native 64-bit words (128-bit products),
//     zero BigUInt traffic until the final value;
//   - p odd and wider: the process-wide memoized Montgomery context — Horner
//     chains run at one REDC per multiply, with a single convert-in (the
//     index) and one convert-out per hash value;
//   - p even and wider (placeholder fields only): plain BigUInt arithmetic.
// Steady-state evaluation allocates nothing: scratch, running power, and
// accumulators are members, and rebind() reuses them across indices (and
// across families sharing a prime). Values are bit-identical to the family
// methods' — the backends differ only in representation.
//
// Not thread-safe; use one evaluator per thread (thread_local is fine).
class LinearHashEvaluator {
 public:
  LinearHashEvaluator() = default;  // Unbound; rebind() before use.
  LinearHashEvaluator(const LinearHashFamily& family, const util::BigUInt& a);

  // (Re)pins the evaluator to family parameters (p, dimension) and the
  // evaluation point a. A no-op when nothing changed; keeps the Montgomery
  // context and all scratch when only the index changed.
  void rebind(const util::BigUInt& p, std::uint64_t dimension, const util::BigUInt& a);
  void rebind(const LinearHashFamily& family, const util::BigUInt& a);

  // Family-method equivalents (same values, same argument checks).
  util::BigUInt hashSparse(
      std::span<const std::pair<std::uint64_t, std::uint64_t>> entries);
  util::BigUInt hashMatrixRow(std::uint64_t rowIndex, const util::DynBitset& columnBits,
                              std::uint64_t n);
  util::BigUInt hashMatrixEntry(std::uint64_t rowIndex, std::uint64_t colIndex,
                                std::uint64_t coefficient, std::uint64_t n);

  // Sum over set bits w of a^(w+1): the hash of `bits` read as positions
  // 0..size-1 with coefficient 1 (the distributed-seed hash's per-row
  // polynomial). Requires bits.size() <= dimension.
  util::BigUInt hashBits(const util::DynBitset& bits);

  // Fills out[j] = a^(j+1) mod p for j in [0, count) — the EpsApiHash power
  // table, built with one in-domain multiply per entry.
  void powerTable(std::size_t count, std::vector<util::BigUInt>& out);

  // In-domain fingerprint accumulation: sums hashMatrixRow values without
  // converting intermediate rows out of the backend domain; one convert-out
  // total, in accumulatedValue().
  void resetAccumulator();
  void accumulateMatrixRow(std::uint64_t rowIndex, const util::DynBitset& columnBits,
                           std::uint64_t n);
  util::BigUInt accumulatedValue();

 private:
  enum class Backend { kUnbound, kU64, kMontgomery, kPlain };

  // Row walk shared by every hash shape: the row accumulator collects the
  // running power over set bits, the power starting at a^startExponent and
  // advancing by one multiply per position.
  void walkBits(std::uint64_t startExponent, const util::DynBitset& bits);
  // a^(position+1) * (coefficient mod p), added into the row accumulator.
  void addTerm(std::uint64_t position, std::uint64_t coefficient);
  void clearRow();
  util::BigUInt rowValue();  // Converts the row accumulator out.
  // a^exponent in-domain via the pinned-base window (built lazily on first
  // use after a rebind, then shared by every pow until the index changes).
  void powPinnedA(const util::BigUInt& exponent, util::MontgomeryValue& out);

  Backend backend_ = Backend::kUnbound;
  util::BigUInt p_;
  std::uint64_t m_ = 0;
  util::BigUInt aBound_;  // The currently pinned index, pre-reduction.
  // kU64 backend.
  std::uint64_t p64_ = 0;
  std::uint64_t a64_ = 0;
  std::uint64_t row64_ = 0;
  std::uint64_t acc64_ = 0;
  // kMontgomery backend.
  std::shared_ptr<const util::MontgomeryContext> ctx_;
  util::MontgomeryContext::Scratch scratch_;
  util::MontgomeryValue aV_;
  util::MontgomeryContext::PowWindow aWindow_;  // limbs == 0 until built.
  util::MontgomeryValue powerV_;
  util::MontgomeryValue coeffV_;
  util::MontgomeryValue rowV_;
  util::MontgomeryValue accV_;
  util::BigUInt exponent_;  // Hoisted exponent / coefficient staging.
  util::BigUInt coeffBig_;
  // kPlain backend.
  util::BigUInt aPlain_;
  util::BigUInt powerPlain_;
  util::BigUInt rowPlain_;
  util::BigUInt accPlain_;
};

// Protocol 1's parameters: p prime in [10 n^3, 100 n^3], dimension n^2.
// O(log n) seed and value bits.
LinearHashFamily makeProtocol1Family(std::size_t n, util::Rng& rng);

// Protocol 2's parameters: p prime in [10 n^(n+2), 100 n^(n+2)], dimension
// n^2. O(n log n) seed and value bits — large enough to union-bound over all
// n^n mappings after the challenge is revealed (Theorem 3.5).
LinearHashFamily makeProtocol2Family(std::size_t n, util::Rng& rng);

// Memoized variants: the prime comes from util::cachedPrimeInRange, so the
// family for a given n is a pure function of n (no caller Rng stream is
// consumed) and the Miller-Rabin search runs once per window per process —
// the form the trial engine and the bench drivers use.
LinearHashFamily makeProtocol1FamilyCached(std::size_t n);
LinearHashFamily makeProtocol2FamilyCached(std::size_t n);

}  // namespace dip::hash
