#include "net/spanning.hpp"

#include <algorithm>

#include "util/bitio.hpp"

namespace dip::net {

void bottomUpOrderInto(const SpanningTreeAdvice& advice,
                       std::vector<graph::Vertex>& order) {
  // Counting sort by decreasing distance, stable within a distance class —
  // the exact order the stable_sort formulation produced, without its
  // temporary buffer (this runs once per trial in the chain aggregators).
  const std::size_t n = advice.dist.size();
  order.resize(n);
  std::uint32_t maxDist = 0;
  for (std::uint32_t d : advice.dist) maxDist = std::max(maxDist, d);
  thread_local std::vector<std::size_t> starts;
  starts.assign(static_cast<std::size_t>(maxDist) + 2, 0);
  for (std::uint32_t d : advice.dist) ++starts[maxDist - d + 1];
  for (std::size_t i = 1; i < starts.size(); ++i) starts[i] += starts[i - 1];
  for (std::size_t v = 0; v < n; ++v) {
    order[starts[maxDist - advice.dist[v]]++] = static_cast<graph::Vertex>(v);
  }
}

std::vector<graph::Vertex> bottomUpOrder(const SpanningTreeAdvice& advice) {
  std::vector<graph::Vertex> order;
  bottomUpOrderInto(advice, order);
  return order;
}

std::uint32_t treeHeight(const SpanningTreeAdvice& advice) {
  std::uint32_t maxDist = 0;
  for (std::uint32_t d : advice.dist) maxDist = std::max(maxDist, d);
  return maxDist;
}

std::size_t treeAdviceBitsPerNode(std::size_t numVertices) {
  unsigned idBits = util::bitsFor(numVertices);
  // parent id (unicast) + distance in [n] (unicast) + root id (broadcast).
  return static_cast<std::size_t>(idBits) * 2 + idBits;
}

}  // namespace dip::net
