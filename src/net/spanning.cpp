#include "net/spanning.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/bitio.hpp"

namespace dip::net {

SpanningTreeAdvice buildBfsTree(const graph::Graph& g, graph::Vertex root) {
  const std::size_t n = g.numVertices();
  if (root >= n) throw std::out_of_range("buildBfsTree: root out of range");
  SpanningTreeAdvice advice;
  advice.root = root;
  advice.parent.assign(n, root);
  advice.dist.assign(n, UINT32_MAX);
  // BFS frontier as a flat vector with a read cursor: every vertex enters
  // the queue at most once, and the thread-local buffer keeps its capacity
  // across the per-trial calls.
  thread_local std::vector<graph::Vertex> queue;
  queue.clear();
  queue.push_back(root);
  advice.dist[root] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    graph::Vertex v = queue[head];
    g.row(v).forEachSet([&](std::size_t u) {
      if (advice.dist[u] == UINT32_MAX) {
        advice.dist[u] = advice.dist[v] + 1;
        advice.parent[u] = v;
        queue.push_back(static_cast<graph::Vertex>(u));
      }
    });
  }
  for (std::uint32_t d : advice.dist) {
    if (d == UINT32_MAX) throw std::invalid_argument("buildBfsTree: graph not connected");
  }
  return advice;
}

bool verifyTreeLocally(const graph::Graph& g, const SpanningTreeAdvice& advice,
                       graph::Vertex v) {
  if (advice.parent.size() != g.numVertices() || advice.dist.size() != g.numVertices()) {
    return false;
  }
  if (v == advice.root) return advice.dist[v] == 0;
  graph::Vertex parent = advice.parent[v];
  if (parent >= g.numVertices() || !g.hasEdge(v, parent)) return false;
  return advice.dist[v] >= 1 && advice.dist[parent] == advice.dist[v] - 1;
}

std::vector<graph::Vertex> childrenOf(const graph::Graph& g,
                                      const SpanningTreeAdvice& advice,
                                      graph::Vertex v) {
  std::vector<graph::Vertex> children;
  forEachChild(g, advice, v, [&](graph::Vertex u) { children.push_back(u); });
  return children;
}

void bottomUpOrderInto(const SpanningTreeAdvice& advice,
                       std::vector<graph::Vertex>& order) {
  // Counting sort by decreasing distance, stable within a distance class —
  // the exact order the stable_sort formulation produced, without its
  // temporary buffer (this runs once per trial in the chain aggregators).
  const std::size_t n = advice.dist.size();
  order.resize(n);
  std::uint32_t maxDist = 0;
  for (std::uint32_t d : advice.dist) maxDist = std::max(maxDist, d);
  thread_local std::vector<std::size_t> starts;
  starts.assign(static_cast<std::size_t>(maxDist) + 2, 0);
  for (std::uint32_t d : advice.dist) ++starts[maxDist - d + 1];
  for (std::size_t i = 1; i < starts.size(); ++i) starts[i] += starts[i - 1];
  for (std::size_t v = 0; v < n; ++v) {
    order[starts[maxDist - advice.dist[v]]++] = static_cast<graph::Vertex>(v);
  }
}

std::vector<graph::Vertex> bottomUpOrder(const SpanningTreeAdvice& advice) {
  std::vector<graph::Vertex> order;
  bottomUpOrderInto(advice, order);
  return order;
}

std::size_t treeAdviceBitsPerNode(std::size_t numVertices) {
  unsigned idBits = util::bitsFor(numVertices);
  // parent id (unicast) + distance in [n] (unicast) + root id (broadcast).
  return static_cast<std::size_t>(idBits) * 2 + idBits;
}

}  // namespace dip::net
