#include "net/spanning.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "util/bitio.hpp"

namespace dip::net {

SpanningTreeAdvice buildBfsTree(const graph::Graph& g, graph::Vertex root) {
  const std::size_t n = g.numVertices();
  if (root >= n) throw std::out_of_range("buildBfsTree: root out of range");
  SpanningTreeAdvice advice;
  advice.root = root;
  advice.parent.assign(n, root);
  advice.dist.assign(n, UINT32_MAX);
  std::deque<graph::Vertex> queue{root};
  advice.dist[root] = 0;
  while (!queue.empty()) {
    graph::Vertex v = queue.front();
    queue.pop_front();
    g.row(v).forEachSet([&](std::size_t u) {
      if (advice.dist[u] == UINT32_MAX) {
        advice.dist[u] = advice.dist[v] + 1;
        advice.parent[u] = v;
        queue.push_back(static_cast<graph::Vertex>(u));
      }
    });
  }
  for (std::uint32_t d : advice.dist) {
    if (d == UINT32_MAX) throw std::invalid_argument("buildBfsTree: graph not connected");
  }
  return advice;
}

bool verifyTreeLocally(const graph::Graph& g, const SpanningTreeAdvice& advice,
                       graph::Vertex v) {
  if (advice.parent.size() != g.numVertices() || advice.dist.size() != g.numVertices()) {
    return false;
  }
  if (v == advice.root) return advice.dist[v] == 0;
  graph::Vertex parent = advice.parent[v];
  if (parent >= g.numVertices() || !g.hasEdge(v, parent)) return false;
  return advice.dist[v] >= 1 && advice.dist[parent] == advice.dist[v] - 1;
}

std::vector<graph::Vertex> childrenOf(const graph::Graph& g,
                                      const SpanningTreeAdvice& advice,
                                      graph::Vertex v) {
  std::vector<graph::Vertex> children;
  g.row(v).forEachSet([&](std::size_t u) {
    if (advice.parent[u] == v && static_cast<graph::Vertex>(u) != advice.root) {
      children.push_back(static_cast<graph::Vertex>(u));
    }
  });
  return children;
}

std::vector<graph::Vertex> bottomUpOrder(const SpanningTreeAdvice& advice) {
  std::vector<graph::Vertex> order(advice.dist.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](graph::Vertex a, graph::Vertex b) {
    return advice.dist[a] > advice.dist[b];
  });
  return order;
}

std::size_t treeAdviceBitsPerNode(std::size_t numVertices) {
  unsigned idBits = util::bitsFor(numVertices);
  // parent id (unicast) + distance in [n] (unicast) + root id (broadcast).
  return static_cast<std::size_t>(idBits) * 2 + idBits;
}

}  // namespace dip::net
