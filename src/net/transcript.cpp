#include "net/transcript.hpp"

#include <algorithm>
#include <stdexcept>

namespace dip::net {

Transcript::Transcript(std::size_t numNodes)
    : perNode_(numNodes), roundStartTotals_(numNodes, 0) {}

void Transcript::beginRound(std::string label) {
  rounds_.push_back({std::move(label), 0});
  for (std::size_t v = 0; v < perNode_.size(); ++v) {
    roundStartTotals_[v] = perNode_[v].total();
  }
}

void Transcript::noteRoundCharge(graph::Vertex v) {
  if (rounds_.empty()) return;
  std::size_t delta = perNode_[v].total() - roundStartTotals_[v];
  rounds_.back().maxBitsThisRound = std::max(rounds_.back().maxBitsThisRound, delta);
}

void Transcript::chargeToProver(graph::Vertex v, std::size_t bits) {
  if (v >= perNode_.size()) throw std::out_of_range("Transcript: bad vertex");
  perNode_[v].bitsToProver += bits;
  noteRoundCharge(v);
}

void Transcript::chargeFromProver(graph::Vertex v, std::size_t bits) {
  if (v >= perNode_.size()) throw std::out_of_range("Transcript: bad vertex");
  perNode_[v].bitsFromProver += bits;
  noteRoundCharge(v);
}

void Transcript::chargeBroadcastFromProver(std::size_t bits) {
  for (graph::Vertex v = 0; v < perNode_.size(); ++v) {
    perNode_[v].bitsFromProver += bits;
    noteRoundCharge(v);
  }
}

std::size_t Transcript::maxPerNodeBits() const {
  std::size_t best = 0;
  for (const auto& cost : perNode_) best = std::max(best, cost.total());
  return best;
}

std::size_t Transcript::totalBits() const {
  std::size_t sum = 0;
  for (const auto& cost : perNode_) sum += cost.total();
  return sum;
}

}  // namespace dip::net
