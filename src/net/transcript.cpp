#include "net/transcript.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dip::net {

namespace {

// Bit totals are size_t; a cheating caller (or a corrupted wire length)
// must not be able to wrap the accounting silently.
std::size_t checkedAdd(std::size_t base, std::size_t bits) {
  if (bits > std::numeric_limits<std::size_t>::max() - base) {
    throw std::overflow_error("Transcript: bit total overflow");
  }
  return base + bits;
}

}  // namespace

Transcript::Transcript(std::size_t numNodes)
    : perNode_(numNodes), roundStart_(numNodes) {}

void Transcript::beginRound(std::string label) {
  rounds_.push_back({std::move(label), 0});
  roundStart_ = perNode_;
}

void Transcript::noteRoundCharge(graph::Vertex v) {
  if (rounds_.empty()) return;
  std::size_t delta = perNode_[v].total() - roundStart_[v].total();
  rounds_.back().maxBitsThisRound = std::max(rounds_.back().maxBitsThisRound, delta);
}

void Transcript::checkVertex(graph::Vertex v) const {
  if (v >= perNode_.size()) throw std::out_of_range("Transcript: bad vertex");
}

void Transcript::chargeToProver(graph::Vertex v, std::size_t bits) {
  checkVertex(v);
  perNode_[v].bitsToProver = checkedAdd(perNode_[v].bitsToProver, bits);
  noteRoundCharge(v);
}

void Transcript::chargeFromProver(graph::Vertex v, std::size_t bits) {
  checkVertex(v);
  perNode_[v].bitsFromProver = checkedAdd(perNode_[v].bitsFromProver, bits);
  noteRoundCharge(v);
}

void Transcript::chargeBroadcastFromProver(std::size_t bits) {
  for (graph::Vertex v = 0; v < perNode_.size(); ++v) {
    perNode_[v].bitsFromProver = checkedAdd(perNode_[v].bitsFromProver, bits);
    noteRoundCharge(v);
  }
}

std::size_t Transcript::roundBitsToProver(graph::Vertex v) const {
  checkVertex(v);
  return perNode_[v].bitsToProver - roundStart_[v].bitsToProver;
}

std::size_t Transcript::roundBitsFromProver(graph::Vertex v) const {
  checkVertex(v);
  return perNode_[v].bitsFromProver - roundStart_[v].bitsFromProver;
}

std::size_t Transcript::maxPerNodeBits() const {
  std::size_t best = 0;
  for (const auto& cost : perNode_) best = std::max(best, cost.total());
  return best;
}

std::size_t Transcript::totalBits() const {
  std::size_t sum = 0;
  for (const auto& cost : perNode_) sum += cost.total();
  return sum;
}

}  // namespace dip::net
