// The spanning-tree proof-labeling building block (Korman-Kutten-Peleg [23])
// that both Sym protocols and the GNI protocol "sum their hash values up the
// tree" with.
//
// The prover supplies, per node v: a claimed parent t_v, a claimed distance
// d_v from the root, and (broadcast) a claimed root r. Each node verifies
// LOCALLY (Protocol 1, line 1):
//     v != r:  t_v in N(v)  and  d_{t_v} = d_v - 1
//     v == r:  d_v = 0
// On a connected graph, all nodes passing implies the parent edges form a
// spanning tree rooted at r (distances strictly decrease toward the root,
// so parent chains terminate at r and cannot cycle).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dip::net {

struct SpanningTreeAdvice {
  graph::Vertex root = 0;
  std::vector<graph::Vertex> parent;  // parent[root] == root by convention.
  std::vector<std::uint32_t> dist;
};

// BFS tree from `root` (the honest prover's choice). Requires g connected.
SpanningTreeAdvice buildBfsTree(const graph::Graph& g, graph::Vertex root);

// Node v's local tree check. v reads only its own advice and the advice of
// its closed neighborhood (d_{t_v} is visible because t_v must be a
// neighbor).
bool verifyTreeLocally(const graph::Graph& g, const SpanningTreeAdvice& advice,
                       graph::Vertex v);

// C(v) = { u in N(v) | t_u = v } — v's children under the claimed advice
// (Protocol 1, line 2). Computable from v's local view.
std::vector<graph::Vertex> childrenOf(const graph::Graph& g,
                                      const SpanningTreeAdvice& advice,
                                      graph::Vertex v);

// Visits C(v) in the same ascending order childrenOf returns, without
// materializing the vector — the per-node chain folds run once per node per
// trial, so the hot loops use this form.
template <typename Visitor>
void forEachChild(const graph::Graph& g, const SpanningTreeAdvice& advice,
                  graph::Vertex v, Visitor&& visit) {
  g.row(v).forEachSet([&](std::size_t u) {
    if (advice.parent[u] == v && static_cast<graph::Vertex>(u) != advice.root) {
      visit(static_cast<graph::Vertex>(u));
    }
  });
}

// Vertices ordered by decreasing claimed distance (leaves first); the honest
// prover aggregates subtree hash values in this order.
std::vector<graph::Vertex> bottomUpOrder(const SpanningTreeAdvice& advice);
// Same order written into a caller-reused buffer (counting sort, no
// temporaries) — the per-trial aggregators use this form.
void bottomUpOrderInto(const SpanningTreeAdvice& advice,
                       std::vector<graph::Vertex>& order);

// Number of bits the advice costs per node: parent id + distance + root id.
std::size_t treeAdviceBitsPerNode(std::size_t numVertices);

}  // namespace dip::net
