// The spanning-tree proof-labeling building block (Korman-Kutten-Peleg [23])
// that both Sym protocols and the GNI protocol "sum their hash values up the
// tree" with.
//
// The prover supplies, per node v: a claimed parent t_v, a claimed distance
// d_v from the root, and (broadcast) a claimed root r. Each node verifies
// LOCALLY (Protocol 1, line 1):
//     v != r:  t_v in N(v)  and  d_{t_v} = d_v - 1
//     v == r:  d_v = 0
// On a connected graph, all nodes passing implies the parent edges form a
// spanning tree rooted at r (distances strictly decrease toward the root,
// so parent chains terminate at r and cannot cycle).
//
// Everything here is templated over the graph representation: any type with
// `numVertices()`, `hasEdge(u, v)` and an ascending `forEachNeighbor(v, fn)`
// qualifies — the dense `graph::Graph` and the compressed `graph::CsrGraph`
// both do, and they produce identical advice for equal graphs (BFS visits
// neighbors in the same ascending order either way).
#pragma once

#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"

namespace dip::net {

struct SpanningTreeAdvice {
  graph::Vertex root = 0;
  std::vector<graph::Vertex> parent;  // parent[root] == root by convention.
  std::vector<std::uint32_t> dist;
};

// BFS tree from `root` (the honest prover's choice). Requires g connected.
template <typename G>
SpanningTreeAdvice buildBfsTree(const G& g, graph::Vertex root) {
  const std::size_t n = g.numVertices();
  if (root >= n) throw std::out_of_range("buildBfsTree: root out of range");
  SpanningTreeAdvice advice;
  advice.root = root;
  advice.parent.assign(n, root);
  advice.dist.assign(n, UINT32_MAX);
  // BFS frontier as a flat vector with a read cursor: every vertex enters
  // the queue at most once, and the thread-local buffer keeps its capacity
  // across the per-trial calls.
  thread_local std::vector<graph::Vertex> queue;
  queue.clear();
  queue.push_back(root);
  advice.dist[root] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    graph::Vertex v = queue[head];
    g.forEachNeighbor(v, [&](graph::Vertex u) {
      if (advice.dist[u] == UINT32_MAX) {
        advice.dist[u] = advice.dist[v] + 1;
        advice.parent[u] = v;
        queue.push_back(u);
      }
    });
  }
  for (std::uint32_t d : advice.dist) {
    if (d == UINT32_MAX) throw std::invalid_argument("buildBfsTree: graph not connected");
  }
  return advice;
}

// Node v's local tree check. v reads only its own advice and the advice of
// its closed neighborhood (d_{t_v} is visible because t_v must be a
// neighbor).
template <typename G>
bool verifyTreeLocally(const G& g, const SpanningTreeAdvice& advice,
                       graph::Vertex v) {
  if (advice.parent.size() != g.numVertices() || advice.dist.size() != g.numVertices()) {
    return false;
  }
  if (v == advice.root) return advice.dist[v] == 0;
  graph::Vertex parent = advice.parent[v];
  if (parent >= g.numVertices() || !g.hasEdge(v, parent)) return false;
  return advice.dist[v] >= 1 && advice.dist[parent] == advice.dist[v] - 1;
}

// Visits C(v) = { u in N(v) | t_u = v } — v's children under the claimed
// advice (Protocol 1, line 2) — in ascending order without materializing the
// vector; the per-node chain folds run once per node per trial, so the hot
// loops use this form. Computable from v's local view.
template <typename G, typename Visitor>
void forEachChild(const G& g, const SpanningTreeAdvice& advice,
                  graph::Vertex v, Visitor&& visit) {
  g.forEachNeighbor(v, [&](graph::Vertex u) {
    if (advice.parent[u] == v && u != advice.root) visit(u);
  });
}

// C(v) as a sorted vector; convenience for tests and cold paths only.
template <typename G>
std::vector<graph::Vertex> childrenOf(const G& g, const SpanningTreeAdvice& advice,
                                      graph::Vertex v) {
  std::vector<graph::Vertex> children;
  forEachChild(g, advice, v, [&](graph::Vertex u) { children.push_back(u); });
  return children;
}

// Vertices ordered by decreasing claimed distance (leaves first); the honest
// prover aggregates subtree hash values in this order.
std::vector<graph::Vertex> bottomUpOrder(const SpanningTreeAdvice& advice);
// Same order written into a caller-reused buffer (counting sort, no
// temporaries) — the per-trial aggregators use this form.
void bottomUpOrderInto(const SpanningTreeAdvice& advice,
                       std::vector<graph::Vertex>& order);

// Height of the claimed tree: max distance over all nodes.
std::uint32_t treeHeight(const SpanningTreeAdvice& advice);

// Number of bits the advice costs per node: parent id + distance + root id.
std::size_t treeAdviceBitsPerNode(std::size_t numVertices);

}  // namespace dip::net
