// Communication accounting for interactive distributed proofs.
//
// The paper's complexity measure is the total number of bits exchanged
// between any individual node and the prover (challenges included, for
// upper bounds). Every protocol execution charges its encoded messages to a
// Transcript; benchmarks and tests read the per-node maximum off the
// CostReport. Node-to-node exchange of received responses (each node seeing
// M_{N(v)}) is part of the model and is not charged, matching the paper.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dip::net {

struct NodeCost {
  std::size_t bitsToProver = 0;
  std::size_t bitsFromProver = 0;
  std::size_t total() const { return bitsToProver + bitsFromProver; }
};

struct RoundSummary {
  std::string label;
  std::size_t maxBitsThisRound = 0;  // Max per-node bits charged in the round.
};

class Transcript {
 public:
  explicit Transcript(std::size_t numNodes);

  // Marks the start of a named protocol round (for per-round reporting).
  void beginRound(std::string label);

  void chargeToProver(graph::Vertex v, std::size_t bits);
  void chargeFromProver(graph::Vertex v, std::size_t bits);
  // A broadcast response: every node receives (and pays for) `bits` bits.
  void chargeBroadcastFromProver(std::size_t bits);

  std::size_t numNodes() const { return perNode_.size(); }
  const std::vector<NodeCost>& perNode() const { return perNode_; }
  const std::vector<RoundSummary>& rounds() const { return rounds_; }

  // Bits charged to node v since the last beginRound (since construction if
  // no round was begun). The DIP_AUDIT cross-checks compare these against
  // the bitCount() of the real wire encodings of the round's messages.
  std::size_t roundBitsToProver(graph::Vertex v) const;
  std::size_t roundBitsFromProver(graph::Vertex v) const;

  // Max over nodes of total bits exchanged with the prover (the paper's f(n)).
  std::size_t maxPerNodeBits() const;
  std::size_t totalBits() const;

 private:
  void noteRoundCharge(graph::Vertex v);
  void checkVertex(graph::Vertex v) const;

  std::vector<NodeCost> perNode_;
  std::vector<NodeCost> roundStart_;  // Per-node costs at round start.
  std::vector<RoundSummary> rounds_;
};

// Per-node broadcast-consistency check: node v accepts iff every neighbor
// received the same value it did (the paper's implicit verification for
// Broadcast-type prover messages). On a connected graph, all nodes passing
// implies a globally consistent value.
template <typename T>
std::vector<bool> broadcastConsistent(const graph::Graph& g, const std::vector<T>& values) {
  std::vector<bool> ok(g.numVertices(), true);
  for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
    g.row(v).forEachSet([&](std::size_t u) {
      if (!(values[u] == values[v])) ok[v] = false;
    });
  }
  return ok;
}

}  // namespace dip::net
