// DIP_AUDIT: runtime cross-checks between transcript accounting and wire
// encodings.
//
// The paper's cost claims are bit-accounting claims: maxPerNodeBits() is
// only meaningful if every chargeToProver/chargeFromProver call charges
// exactly what the corresponding wire encoding emits. Compiling with
// -DDIP_AUDIT=1 (the `asan-ubsan` CMake preset turns this on) makes every
// protocol round re-encode its messages through the real wire format and
// compare, per node, the charged bits against EncodedRound::bitsForNode().
// A mismatch throws std::logic_error — it is a bug in the library, never a
// property of the prover's message.
//
// auditCharge itself is compiled unconditionally (it is cheap and lets the
// linter self-test and the unit tests exercise it); the per-round hooks in
// the protocol run() paths are the part gated behind DIP_AUDIT.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "graph/graph.hpp"
#include "net/transcript.hpp"
#include "util/arena.hpp"

#ifndef DIP_AUDIT
#define DIP_AUDIT 0
#endif

namespace dip::net {

inline constexpr bool kAuditEnabled = DIP_AUDIT != 0;

// Throws std::logic_error unless chargedBits == encodedBits for node v.
void auditCharge(const char* label, graph::Vertex v, std::size_t chargedBits,
                 std::size_t encodedBits);

// Per-worker (thread-local) arena backing the audit re-encodings: the wire
// encoders bump-allocate payload bytes here instead of the heap, and
// auditChargedRound rewinds it before each round. Audit call sites that
// encode outside auditChargedRound (the challenge loops) reset it
// themselves before their first encode of a round.
util::Arena& roundArena();

// Audits one prover->nodes round: encode() must return an EncodedRound-like
// object (broadcast + per-node unicast, bitsForNode()); the bits charged to
// each node since the last beginRound must equal its encoded share.
//
// encode() is allowed to throw std::invalid_argument: the wire formats
// encode only the honest/consistent message shape, and an adversarial
// prover may send messages with no honest wire form (inconsistent
// broadcast copies, out-of-range fields). Those messages are rejected by
// the per-node decision checks; the accounting audit does not apply.
template <typename EncodeFn>
void auditChargedRound(const char* label, const Transcript& transcript,
                       EncodeFn&& encode) {
  roundArena().reset();
  try {
    auto round = encode();
    for (graph::Vertex v = 0; v < transcript.numNodes(); ++v) {
      auditCharge(label, v, transcript.roundBitsFromProver(v), round.bitsForNode(v));
    }
  } catch (const std::invalid_argument&) {
    // No honest wire form: skip (see above).
  }
}

}  // namespace dip::net
