#include "net/audit.hpp"

#include <string>

namespace dip::net {

util::Arena& roundArena() {
  thread_local util::Arena arena;
  return arena;
}

void auditCharge(const char* label, graph::Vertex v, std::size_t chargedBits,
                 std::size_t encodedBits) {
  if (chargedBits == encodedBits) return;
  throw std::logic_error(std::string("transcript audit [") + label + "]: node " +
                         std::to_string(v) + " charged " +
                         std::to_string(chargedBits) + " bits but the wire encoding has " +
                         std::to_string(encodedBits));
}

}  // namespace dip::net
