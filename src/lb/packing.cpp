#include "lb/packing.hpp"

#include <cmath>

#include "lb/census.hpp"

namespace dip::lb {

double packingCapacityLog2(std::size_t lengthBits) {
  // log2(5^(2^(2^L))) = 2^(2^L) * log2(5).
  double inner = std::exp2(static_cast<double>(lengthBits));
  double d = std::exp2(inner);
  return d * std::log2(5.0);
}

double lowerBoundBits(double log2FamilySize) {
  // L >= (1/4) log2 log2 (log2|F| / log2 5); clamp the chain at zero.
  double x = log2FamilySize / std::log2(5.0);
  if (x <= 1.0) return 0.0;
  double y = std::log2(x);
  if (y <= 1.0) return 0.0;
  return 0.25 * std::log2(y);
}

std::vector<PackingCurvePoint> packingCurve(const std::vector<std::size_t>& ns) {
  std::vector<PackingCurvePoint> curve;
  curve.reserve(ns.size());
  for (std::size_t n : ns) {
    PackingCurvePoint point;
    point.n = n;
    point.log2Family = log2FamilyLowerBound(n);
    point.lowerBound = lowerBoundBits(point.log2Family);
    curve.push_back(point);
  }
  return curve;
}

}  // namespace dip::lb
