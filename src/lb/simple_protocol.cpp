#include "lb/simple_protocol.hpp"

#include <cmath>
#include <stdexcept>

namespace dip::lb {

namespace {

// Enumerates all assignments of `width`-bit values to `slots` positions,
// calling visit(values) for each; returns true if any visit returned true.
bool enumerateAssignments(std::size_t slots, unsigned width,
                          std::vector<std::uint8_t>& values,
                          const std::function<bool(const std::vector<std::uint8_t>&)>& visit) {
  const std::uint64_t perSlot = 1ull << width;
  std::uint64_t totalLog = slots * width;
  if (totalLog > 30) throw std::invalid_argument("enumerateAssignments: too large");
  const std::uint64_t total = 1ull << totalLog;
  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t rest = code;
    for (std::size_t i = 0; i < slots; ++i) {
      values[i] = static_cast<std::uint8_t>(rest % perSlot);
      rest /= perSlot;
    }
    if (visit(values)) return true;
  }
  return false;
}

}  // namespace

SimpleProtocolAnalyzer::SimpleProtocolAnalyzer(SimpleToyProtocol protocol,
                                               graph::DumbbellLayout layout)
    : protocol_(std::move(protocol)), layout_(layout) {
  if (protocol_.responseBits > 6 || protocol_.challengeBits > 8) {
    throw std::invalid_argument("SimpleProtocolAnalyzer: bits too large");
  }
}

std::vector<graph::Vertex> SimpleProtocolAnalyzer::sideVertices(bool sideA) const {
  std::vector<graph::Vertex> side;
  const std::size_t k = layout_.sideSize;
  graph::Vertex base = sideA ? 0 : static_cast<graph::Vertex>(k);
  for (std::size_t i = 0; i < k; ++i) side.push_back(base + static_cast<graph::Vertex>(i));
  return side;
}

bool SimpleProtocolAnalyzer::sideAccepts(const graph::Graph& dumbbell, bool sideA,
                                         const std::vector<std::uint8_t>& challenges,
                                         std::vector<std::uint8_t>& responses,
                                         std::uint8_t bridgeResponse,
                                         const std::vector<graph::Vertex>& side) const {
  graph::Vertex bridge = sideA ? layout_.xA : layout_.xB;
  responses[bridge] = bridgeResponse;
  if (!protocol_.bridgeF(dumbbell, bridge, challenges, bridgeResponse)) return false;
  for (graph::Vertex v : side) {
    if (!protocol_.interiorAccepts(dumbbell, v, challenges, responses)) return false;
  }
  return true;
}

std::uint64_t SimpleProtocolAnalyzer::responseSet(
    const graph::Graph& dumbbell, bool sideA,
    const std::vector<std::uint8_t>& challenges) const {
  const std::vector<graph::Vertex> side = sideVertices(sideA);
  const unsigned L = protocol_.responseBits;
  const std::uint64_t responsesPerNode = 1ull << L;
  std::uint64_t achievable = 0;

  // For each candidate bridge response m, search any side assignment that
  // makes the whole side accept.
  std::vector<std::uint8_t> responses(dumbbell.numVertices(), 0);
  std::vector<std::uint8_t> sideValues(side.size(), 0);
  for (std::uint64_t m = 0; m < responsesPerNode; ++m) {
    bool found = enumerateAssignments(
        side.size(), L, sideValues, [&](const std::vector<std::uint8_t>& values) {
          for (std::size_t i = 0; i < side.size(); ++i) responses[side[i]] = values[i];
          return sideAccepts(dumbbell, sideA, challenges, responses,
                             static_cast<std::uint8_t>(m), side);
        });
    if (found) achievable |= 1ull << m;
  }
  return achievable;
}

ResponseSetDistribution SimpleProtocolAnalyzer::responseSetDistribution(
    const graph::Graph& dumbbell, bool sideA) const {
  const std::size_t n = dumbbell.numVertices();
  const unsigned c = protocol_.challengeBits;
  std::vector<std::uint8_t> challenges(n, 0);
  ResponseSetDistribution distribution;
  std::uint64_t count = 0;
  enumerateAssignments(n, c, challenges, [&](const std::vector<std::uint8_t>& r) {
    distribution[responseSet(dumbbell, sideA, r)] += 1.0;
    ++count;
    return false;
  });
  for (auto& [set, probability] : distribution) {
    probability /= static_cast<double>(count);
  }
  return distribution;
}

double SimpleProtocolAnalyzer::intersectionProbability(const graph::Graph& dumbbell) const {
  const std::size_t n = dumbbell.numVertices();
  const unsigned c = protocol_.challengeBits;
  std::vector<std::uint8_t> challenges(n, 0);
  std::uint64_t hits = 0;
  std::uint64_t count = 0;
  enumerateAssignments(n, c, challenges, [&](const std::vector<std::uint8_t>& r) {
    std::uint64_t setA = responseSet(dumbbell, true, r);
    std::uint64_t setB = responseSet(dumbbell, false, r);
    if (setA & setB) ++hits;
    ++count;
    return false;
  });
  return static_cast<double>(hits) / static_cast<double>(count);
}

double SimpleProtocolAnalyzer::bestProverAcceptance(const graph::Graph& dumbbell) const {
  const std::size_t n = dumbbell.numVertices();
  const unsigned c = protocol_.challengeBits;
  const unsigned L = protocol_.responseBits;
  const std::vector<graph::Vertex> sideA = sideVertices(true);
  const std::vector<graph::Vertex> sideB = sideVertices(false);

  std::vector<std::uint8_t> challenges(n, 0);
  std::uint64_t hits = 0;
  std::uint64_t count = 0;
  enumerateAssignments(n, c, challenges, [&](const std::vector<std::uint8_t>& r) {
    // Search ANY full response matrix accepted by every node, honoring the
    // simple-protocol bridge semantics (equal bridge responses).
    std::vector<std::uint8_t> responses(n, 0);
    std::vector<std::uint8_t> all(n, 0);
    bool found = enumerateAssignments(n, L, all, [&](const std::vector<std::uint8_t>& m) {
      if (m[layout_.xA] != m[layout_.xB]) return false;
      for (std::size_t i = 0; i < n; ++i) responses[i] = m[i];
      if (!protocol_.bridgeF(dumbbell, layout_.xA, r, responses[layout_.xA])) return false;
      if (!protocol_.bridgeF(dumbbell, layout_.xB, r, responses[layout_.xB])) return false;
      for (graph::Vertex v : sideA) {
        if (!protocol_.interiorAccepts(dumbbell, v, r, responses)) return false;
      }
      for (graph::Vertex v : sideB) {
        if (!protocol_.interiorAccepts(dumbbell, v, r, responses)) return false;
      }
      return true;
    });
    if (found) ++hits;
    ++count;
    return false;
  });
  return static_cast<double>(hits) / static_cast<double>(count);
}

double SimpleProtocolAnalyzer::l1Distance(const ResponseSetDistribution& mu1,
                                          const ResponseSetDistribution& mu2) {
  double distance = 0.0;
  for (const auto& [set, probability] : mu1) {
    auto it = mu2.find(set);
    double other = (it == mu2.end()) ? 0.0 : it->second;
    distance += std::abs(probability - other);
  }
  for (const auto& [set, probability] : mu2) {
    if (mu1.find(set) == mu1.end()) distance += probability;
  }
  return distance;
}

SimpleToyProtocol parityToyProtocol() {
  // An XOR-constraint toy: interior node v accepts iff
  //     m_v == r_v XOR (XOR of m_u over open neighbors u).
  // The constraints form a GF(2) linear system over the side's responses
  // with the bridge response as a boundary value, so WHICH bridge responses
  // are achievable (the set M_A(F, r)) genuinely depends on the side
  // graph's structure — e.g. with a 2-vertex side, an edge forces
  // m_xA = r_0 XOR r_1 (singleton set) while no edge leaves m_xA free
  // (full set).
  SimpleToyProtocol protocol;
  protocol.challengeBits = 1;
  protocol.responseBits = 1;
  protocol.interiorAccepts = [](const graph::Graph& g, graph::Vertex v,
                                const std::vector<std::uint8_t>& challenges,
                                const std::vector<std::uint8_t>& responses) {
    std::uint8_t expected = challenges[v] & 1u;
    g.forEachNeighbor(v, [&](graph::Vertex u) { expected ^= responses[u] & 1u; });
    return (responses[v] & 1u) == expected;
  };
  protocol.bridgeF = [](const graph::Graph&, graph::Vertex,
                        const std::vector<std::uint8_t>&, std::uint8_t) {
    // Achievability comes entirely from the interior XOR system.
    return true;
  };
  return protocol;
}

SimpleToyProtocol freeToyProtocol() {
  SimpleToyProtocol protocol;
  protocol.challengeBits = 1;
  protocol.responseBits = 1;
  protocol.interiorAccepts = [](const graph::Graph&, graph::Vertex,
                                const std::vector<std::uint8_t>&,
                                const std::vector<std::uint8_t>&) { return true; };
  protocol.bridgeF = [](const graph::Graph&, graph::Vertex,
                        const std::vector<std::uint8_t>&, std::uint8_t) { return true; };
  return protocol;
}

}  // namespace dip::lb
