#include "lb/census.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/graph.hpp"
#include "graph/isomorphism.hpp"
#include "util/bitset.hpp"
#include "util/mathutil.hpp"

namespace dip::lb {

CensusResult exhaustiveCensus(std::size_t n) {
  if (n < 1 || n > 7) {
    throw std::invalid_argument("exhaustiveCensus: supported for 1 <= n <= 7");
  }
  const std::size_t edgeSlots = n * (n - 1) / 2;
  const std::uint64_t total = 1ull << edgeSlots;

  std::uint64_t factorialN = 1;
  for (std::size_t i = 2; i <= n; ++i) factorialN *= i;

  CensusResult result;
  result.n = n;
  result.labeledGraphs = total;

  std::uint64_t automorphismSum = 0;  // For Burnside.
  for (std::uint64_t code = 0; code < total; ++code) {
    util::DynBitset bits(edgeSlots);
    for (std::size_t i = 0; i < edgeSlots; ++i) {
      if ((code >> i) & 1ull) bits.set(i);
    }
    graph::Graph g = graph::Graph::fromUpperTriangleBits(n, bits);
    std::uint64_t autCount = graph::countAutomorphisms(g);
    automorphismSum += autCount;
    if (autCount == 1) ++result.labeledRigid;
  }

  result.rigidClasses = result.labeledRigid / factorialN;
  result.isoClasses = automorphismSum / factorialN;
  return result;
}

double log2FamilyLowerBound(std::size_t n) {
  double log2Fact = 0.0;
  for (std::size_t i = 2; i <= n; ++i) log2Fact += std::log2(static_cast<double>(i));
  double edges = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return edges - log2Fact;
}

}  // namespace dip::lb
