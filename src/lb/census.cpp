#include "lb/census.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ir.hpp"
#include "sim/parallel_map.hpp"

namespace dip::lb {

namespace {

// Sum over all n! permutations of 2^(pair cycles): by Burnside/
// Cauchy-Frobenius the number of graphs fixed by a relabeling pi is
// 2^(# cycles of pi acting on unordered vertex pairs), and
//   sum over labeled graphs G of |Aut(G)| = sum over pi of |Fix(pi)|,
// so the graph-side automorphism sum the census used to accumulate one
// countAutomorphisms call at a time collapses to an exact n!-term sum —
// instant next to the 2^(n(n-1)/2) sweep it replaces.
std::uint64_t pairCycleFixSum(std::size_t n) {
  const std::size_t slots = n * (n - 1) / 2;
  std::vector<std::size_t> pairIndex(n * n, 0);
  {
    std::size_t index = 0;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v, ++index) {
        pairIndex[u * n + v] = index;
        pairIndex[v * n + u] = index;
      }
    }
  }
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  std::vector<std::size_t> pairOf(2 * slots, 0);
  std::vector<bool> visited(slots);
  std::uint64_t sum = 0;
  do {
    // Image of pair slot {u, v} under perm, as a slot-to-slot map.
    std::size_t index = 0;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v, ++index) {
        pairOf[index] = pairIndex[perm[u] * n + perm[v]];
      }
    }
    std::fill(visited.begin(), visited.end(), false);
    std::size_t cycles = 0;
    for (std::size_t s = 0; s < slots; ++s) {
      if (visited[s]) continue;
      ++cycles;
      for (std::size_t t = s; !visited[t]; t = pairOf[t]) visited[t] = true;
    }
    sum += 1ull << cycles;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return sum;
}

}  // namespace

CensusResult exhaustiveCensus(std::size_t n, unsigned threads) {
  if (n < 1 || n > 8) {
    throw std::invalid_argument("exhaustiveCensus: supported for 1 <= n <= 8");
  }
  const std::size_t edgeSlots = n * (n - 1) / 2;
  const std::uint64_t total = 1ull << edgeSlots;

  std::uint64_t factorialN = 1;
  for (std::size_t i = 2; i <= n; ++i) factorialN *= i;

  CensusResult result;
  result.n = n;
  result.labeledGraphs = total;

  // Rigid sweep: every labeled graph through the IR engine's code-level
  // rigidity test, fanned over fixed-size chunks of the edge-code space.
  // The chunk layout depends only on n (never on the thread count), and the
  // per-chunk counts are folded in chunk order, so the census is
  // bit-identical at every pool size.
  const std::size_t chunkBits = std::min<std::size_t>(edgeSlots, 16);
  const std::size_t chunkCount = static_cast<std::size_t>(total >> chunkBits);
  const std::vector<std::uint64_t> rigidPerChunk =
      sim::parallelMap<std::uint64_t>(chunkCount, threads, [&](std::size_t chunk) {
        graph::IrSolver solver;  // Workspace reused across the whole chunk.
        const std::uint64_t begin = static_cast<std::uint64_t>(chunk) << chunkBits;
        const std::uint64_t end = begin + (1ull << chunkBits);
        std::uint64_t rigid = 0;
        for (std::uint64_t code = begin; code < end; ++code) {
          if (solver.isRigidCode(n, code)) ++rigid;
        }
        return rigid;
      });
  for (const std::uint64_t rigid : rigidPerChunk) result.labeledRigid += rigid;

  result.rigidClasses = result.labeledRigid / factorialN;
  result.isoClasses = pairCycleFixSum(n) / factorialN;
  return result;
}

double log2FamilyLowerBound(std::size_t n) {
  double log2Fact = 0.0;
  for (std::size_t i = 2; i <= n; ++i) log2Fact += std::log2(static_cast<double>(i));
  double edges = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return edges - log2Fact;
}

}  // namespace dip::lb
