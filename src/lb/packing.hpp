// The packing argument of Section 3.4, made numeric.
//
// Theorem 1.4's chain of inequalities: a correct simple dAM protocol of
// length L induces, for each F in the rigid family, a distribution
// mu_A(F) over SETS of L-bit responses (domain size d = 2^(2^L)); by
// Lemma 3.11 any two are >= 2/3 apart in L1, and by the volume bound of
// Lemma 3.12 at most 5^d such distributions fit. A general protocol of
// length L becomes simple at length 4L (Lemma 3.7). Therefore
//     5^(2^(2^(4L))) >= |F(n)|
// and solving for L gives the Omega(log log n) bound this module emits.
#pragma once

#include <cstddef>
#include <vector>

namespace dip::lb {

// d = 2^(2^L) capped to avoid overflow; used by tests on tiny L.
double packingCapacityLog2(std::size_t lengthBits);

// The smallest L ruled IN by the packing inequality: returns the largest
// value Lbar such that every correct dAM protocol for Sym must have length
// > Lbar, given log2 |F(n)|. Derivation:
//   5^(2^(2^(4L))) >= |F|  =>  L >= (1/4) log2 log2 (log2|F| / log2 5).
double lowerBoundBits(double log2FamilySize);

struct PackingCurvePoint {
  std::size_t n = 0;
  double log2Family = 0.0;
  double lowerBound = 0.0;  // In bits; the paper's Omega(log log n).
};

// The lower-bound curve over a sweep of n values (asymptotic family size).
std::vector<PackingCurvePoint> packingCurve(const std::vector<std::size_t>& ns);

}  // namespace dip::lb
