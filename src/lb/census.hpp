// Exhaustive census of small graphs: how large is the family F of rigid,
// pairwise-non-isomorphic graphs that drives the Omega(log log n) lower
// bound (Section 3.4)?
//
// The paper needs |F(n)| = Omega(2^(n^2) / n!) (all-but-vanishing fraction
// of graphs are rigid). For small n we can compute |F(n)| EXACTLY: every
// rigid graph has an orbit of exactly n! labeled copies, so
//     |F(n)| = (# labeled rigid graphs) / n!,
// and the number of isomorphism classes overall follows from Burnside:
//     # classes = (1/n!) * sum over labeled graphs of |Aut(G)|.
// The rigid count sweeps all 2^(n(n-1)/2) labeled graphs through the IR
// engine (parallelized over fixed edge-code chunks on sim::parallelMap);
// the automorphism sum uses Burnside's other side — sum over the n!
// relabelings of 2^(pair cycles) — which needs no sweep at all.
#pragma once

#include <cstdint>

#include "util/biguint.hpp"

namespace dip::lb {

struct CensusResult {
  std::size_t n = 0;
  std::uint64_t labeledGraphs = 0;   // 2^(n(n-1)/2)
  std::uint64_t labeledRigid = 0;    // Labeled graphs with trivial Aut.
  std::uint64_t rigidClasses = 0;    // |F(n)| — the lower bound's family.
  std::uint64_t isoClasses = 0;      // All isomorphism classes (Burnside).
};

// Exhaustive sweep; practical for n <= 8 (n = 8 visits 2^28 graphs).
// threads = 0 resolves via DIP_THREADS / hardware concurrency; the result
// is identical at every thread count.
CensusResult exhaustiveCensus(std::size_t n, unsigned threads = 0);

// log2 of the asymptotic family-size lower bound the paper uses:
// |F(n)| >= (1 - o(1)) 2^C(n,2) / n!; we report the dominant terms
// n(n-1)/2 - log2(n!). Valid as a lower bound for n >= 7.
double log2FamilyLowerBound(std::size_t n);

}  // namespace dip::lb
