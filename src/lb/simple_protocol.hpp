// Executable machinery behind the lower-bound framework of Section 3.4:
// simple protocols (Definition 6), achievable-response sets M_A / M_B
// (Lemma 3.8), the best-prover acceptance identity (Lemma 3.9), and the
// response-set distributions mu_A whose L1 separation (Lemma 3.11) feeds
// the packing bound.
//
// Everything here is exhaustive and exact, so it only runs on toy instances
// (a handful of nodes, 1-2 challenge/response bits) — exactly what is
// needed to validate the framework computationally; the asymptotic bound
// itself comes from lb/packing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "graph/builders.hpp"
#include "graph/graph.hpp"

namespace dip::lb {

// A 1-round dAM protocol on dumbbell graphs in SIMPLE form (Definition 6):
// interior nodes use `interiorAccepts`; each bridge node x accepts iff its
// predicate f_x holds AND both bridge nodes received the same response.
//
// Challenges and responses are global vectors indexed by vertex; decision
// functions must only read entries of the closed neighborhood of their
// vertex (the analyzer's locality fuzz test enforces this for the built-in
// toys).
struct SimpleToyProtocol {
  unsigned challengeBits = 1;  // Per-node challenge length (<= 8).
  unsigned responseBits = 1;   // Per-node response length L (<= 6).
  std::function<bool(const graph::Graph&, graph::Vertex,
                     const std::vector<std::uint8_t>& challenges,
                     const std::vector<std::uint8_t>& responses)>
      interiorAccepts;
  std::function<bool(const graph::Graph&, graph::Vertex bridgeNode,
                     const std::vector<std::uint8_t>& challenges,
                     std::uint8_t ownResponse)>
      bridgeF;
};

// A response-set distribution: probability of each achievable-response SET,
// with a set of L-bit values encoded as a bitmask over {0,1}^L (Lemma 3.8's
// M_A(F, r) ranges over subsets of {0,1}^L, i.e. a domain of size 2^(2^L)).
using ResponseSetDistribution = std::map<std::uint64_t, double>;

class SimpleProtocolAnalyzer {
 public:
  SimpleProtocolAnalyzer(SimpleToyProtocol protocol, graph::DumbbellLayout layout);

  // M_side(F, r): the bitmask of bridge responses m that extend to a
  // response assignment making the whole side (V_side plus its bridge node)
  // accept, for the FIXED global challenge vector.
  std::uint64_t responseSet(const graph::Graph& dumbbell, bool sideA,
                            const std::vector<std::uint8_t>& challenges) const;

  // mu_side(F): the distribution of M_side(F, r) over uniform challenges,
  // computed exactly by enumerating all challenge vectors. The dumbbell
  // passed in should be G(F, F).
  ResponseSetDistribution responseSetDistribution(const graph::Graph& dumbbell,
                                                  bool sideA) const;

  // Pr_r[ M_A(F_A, r) and M_B(F_B, r) intersect ] — by Lemma 3.9 this
  // equals the best prover's acceptance probability on G(F_A, F_B).
  double intersectionProbability(const graph::Graph& dumbbell) const;

  // Independent ground truth for Lemma 3.9: max over provers of
  // Pr_r(all nodes accept), by enumerating every challenge and searching
  // for ANY accepting full response matrix (with the simple-protocol bridge
  // semantics). Exponential in n; tiny instances only.
  double bestProverAcceptance(const graph::Graph& dumbbell) const;

  // L1 distance between two response-set distributions (Lemma 3.11's
  // metric).
  static double l1Distance(const ResponseSetDistribution& mu1,
                           const ResponseSetDistribution& mu2);

 private:
  bool sideAccepts(const graph::Graph& dumbbell, bool sideA,
                   const std::vector<std::uint8_t>& challenges,
                   std::vector<std::uint8_t>& responses, std::uint8_t bridgeResponse,
                   const std::vector<graph::Vertex>& sideVertices) const;
  std::vector<graph::Vertex> sideVertices(bool sideA) const;

  SimpleToyProtocol protocol_;
  graph::DumbbellLayout layout_;
};

// Built-in toy: a parity-fingerprint protocol. Interior node v accepts iff
// its response equals the XOR of its own challenge bit with the parities of
// its closed-neighborhood challenge bits and degree; the bridge predicate
// compares the response with the adjacent side vertex's challenge. Not a
// correct Sym protocol (none this short is — that is the point of the
// lower bound); it exercises every analyzer code path with non-trivial
// response sets.
SimpleToyProtocol parityToyProtocol();

// Degenerate toy accepting everything (sanity baseline: all response sets
// are full, all distributions identical).
SimpleToyProtocol freeToyProtocol();

}  // namespace dip::lb
