// dip::core high-level API — one-call entry points that bundle parameter
// choice, prover construction, and protocol execution. This is the facade a
// downstream user starts from; the per-protocol classes remain available
// for anything custom (adversarial provers, ablations, cost studies).
#pragma once

#include <cstdint>
#include <optional>

#include "core/gni_amam.hpp"
#include "core/gni_general.hpp"
#include "core/result.hpp"
#include "graph/graph.hpp"

namespace dip::core {

// Outcome of a high-level decision call.
struct Decision {
  bool accepted = false;              // Did the interactive proof go through?
  std::size_t maxBitsPerNode = 0;     // The paper's cost measure, exact.
  std::size_t rounds = 0;             // Message rounds used.
  bool proverHadWitness = false;      // Honest prover found what it needed.
};

// Options common to the decision calls.
struct DecideOptions {
  std::uint64_t seed = 1;        // Verifier randomness (deterministic replay).
  std::size_t repetitions = 1;   // AND-amplification for one-sided protocols.
};

// Decides whether the network graph is symmetric with Protocol 1
// (dMAM[O(log n)]). The graph must be connected. Returns accepted = false
// with proverHadWitness = false when the graph is rigid (the honest prover
// cannot lie; this is the protocol refusing, not failing).
Decision decideSymmetry(const graph::Graph& network, const DecideOptions& options = {});

// Decides whether an INPUT graph (rows held by the nodes of `network`) is
// symmetric — the input-convention variant.
Decision decideInputSymmetry(const graph::Graph& network, const graph::Graph& input,
                             const DecideOptions& options = {});

// Decides Graph Non-Isomorphism with the distributed Goldwasser-Sipser
// protocol. Uses the rigid-input protocol when both graphs are rigid and
// the automorphism-compensated general protocol otherwise (the paper's
// composition). Exponential-time honest prover: intended for small n.
Decision decideNonIsomorphism(const graph::Graph& g0, const graph::Graph& g1,
                              const DecideOptions& options = {});

}  // namespace dip::core
