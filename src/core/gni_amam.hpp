// The O(n log n)-bit dAMAM protocol for Graph Non-Isomorphism (Section 4,
// Theorem 1.5) — a distributed version of the Goldwasser-Sipser set-size
// lower bound protocol [15].
//
// Setting (Definition 4): the network graph is G0; each node v additionally
// receives its row N_G1(v) of a second graph G1 as input. Both graphs are
// assumed RIGID (asymmetric) — the paper makes the same restriction and
// handles general graphs by composing with the Sym protocol of Section 3.2.
//
// Idea: let S = { sigma(G_b) : sigma a permutation, b in {0,1} } (all
// matrices taken with self-loops). If G0 !~ G1 then |S| = 2 n!; if G0 ~ G1
// then |S| = n! (rigidity makes sigma -> sigma(G_b) injective per side).
// The verifiers estimate |S|: they choose a hash H into {0,1}^ell with
// 2^ell ~ 4 n! and a target y, and the prover must exhibit x in S with
// H(x) = y. Averaged over uniform y, each candidate is hit with probability
// exactly 2^-ell, so
//     Pr[exists x in S : H(x) = y]  >=  2q - 2 q^2 (1 + eps)   (G0 !~ G1)
//     Pr[exists x in S : H(x) = y]  <=  q                      (G0 ~ G1)
// where q = n!/2^ell and eps is the hash's almost-pairwise-independence
// slack — a constant multiplicative gap, amplified to 2/3 vs 1/3 by k
// parallel repetitions with a threshold count.
//
// Round structure (Arthur-Merlin-Arthur-Mertin; tree root fixed at node 0):
//   A1  every node sends, per repetition: an eps-API seed (A, alpha, beta)
//       and a target y — the prover uses node 0's copies. O(k n log n) bits.
//   M1  prover: broadcasts the echo of node 0's challenges, a claimed bit
//       per repetition, and b_j; unicasts the spanning tree (t_v, d_v) and,
//       per claimed repetition, sigma_j(v) POINTWISE plus, when b_j = 1,
//       the claimed images of v's G1-neighbors (v cannot see those nodes'
//       commitments — G1 edges are not communication links).
//   A2  every node sends a fresh linear-hash index for the commitment
//       checks (the prover is now committed to every sigma_j).
//   M2  prover: broadcasts the echo of node 0's check index; unicasts per
//       claimed repetition the subtree sums for (i) the Goldwasser-Sipser
//       inner hash of sigma_j(G_b), (ii) the permutation check, and
//       (iii) when b_j = 1, the claimed-image consistency check.
//
// The two M2 commitment checks are what the extra Arthur round buys:
//   * permutation check — fingerprint of sum_v [v, e_v] (the identity
//     matrix, locally known) vs sum_v [sigma(v), e_sigma(v)]; equal iff
//     sigma is a permutation (a missing row stays zero on one side);
//   * consistency check (b = 1) — fingerprint of the "claims" matrix
//     sum_v sum_{u in N1(v)} [u, e_claim(v,u)] vs the reference
//     sum_u (deg1(u)+1) [u, e_sigma(u)]; entries are counts < n, so over
//     Z_p' equality holds iff every claim matches the owner's commitment.
// Both hashes use the FRESH A2 seed, so each check fails to catch a lie
// with probability <= n^2/p' — chosen negligible.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/result.hpp"
#include "graph/graph.hpp"
#include "hash/eps_api.hpp"
#include "hash/linear_hash.hpp"
#include "net/spanning.hpp"
#include "util/rng.hpp"

namespace dip::core {

// A Graph Non-Isomorphism instance. g0 must be connected (it is the
// network); g1 arrives row-by-row as node inputs.
struct GniInstance {
  graph::Graph g0;
  graph::Graph g1;
};

// YES-instance: two rigid, connected, non-isomorphic graphs on n vertices.
GniInstance gniYesInstance(std::size_t n, util::Rng& rng);
// NO-instance: g1 is a scrambled isomorphic copy of a rigid connected g0.
GniInstance gniNoInstance(std::size_t n, util::Rng& rng);

// Protocol parameters, derived from n (see DESIGN.md 4.5 for the math).
struct GniParams {
  std::size_t n = 0;
  std::size_t ell = 0;          // Output bits, 2^ell in [4 n!, 8 n!).
  std::size_t repetitions = 0;  // k.
  std::size_t threshold = 0;    // Accept iff >= threshold repetitions claimed+verified.
  double perRoundYesLb = 0.0;
  double perRoundNoUb = 0.0;
  hash::EpsApiHash gsHash;           // Goldwasser-Sipser hash (shared; fresh seeds/rep).
  hash::LinearHashFamily checkFamily;  // Fresh-seed commitment checks.

  static GniParams choose(std::size_t n, util::Rng& rng);
};

// One node's A1 challenge content for one repetition.
struct GniChallenge {
  hash::EpsApiHash::Seed seed;
  util::BigUInt y;

  bool operator==(const GniChallenge& other) const {
    return seed.a == other.seed.a && seed.alpha == other.seed.alpha &&
           seed.beta == other.seed.beta && y == other.y;
  }
};

// What one node receives in M1. Broadcast fields are per-node copies so
// that adversarial provers can attempt inconsistent broadcasts.
struct GniM1PerNode {
  graph::Vertex root = 0;                 // Broadcast (must be 0).
  graph::Vertex parent = 0;               // Unicast.
  std::uint32_t dist = 0;                 // Unicast.
  std::vector<GniChallenge> echo;         // Broadcast copy, [rep].
  std::vector<std::uint8_t> claimed;      // Broadcast copy, [rep].
  std::vector<std::uint8_t> b;            // Broadcast copy, [rep].
  std::vector<graph::Vertex> s;           // Unicast: own sigma_j(v), [rep].
  // Unicast, only for claimed reps with b = 1: claimed images of v's CLOSED
  // G1-neighborhood, aligned with the sorted closed neighbor list
  // (claims[rep][i] = claimed sigma of the i-th closed G1-neighbor of v).
  std::vector<std::vector<graph::Vertex>> claims;
};

struct GniM2PerNode {
  util::BigUInt checkSeed;                // Broadcast copy of node 0's A2 index.
  // Per repetition (entries for unclaimed reps are ignored / zero):
  std::vector<util::BigUInt> h;           // GS inner subtree sums.
  std::vector<util::BigUInt> permI;       // Identity-matrix side subtree sums.
  std::vector<util::BigUInt> permS;       // sigma-side subtree sums.
  std::vector<util::BigUInt> consC;       // Claims-matrix side (b=1 only).
  std::vector<util::BigUInt> consT;       // Reference side (b=1 only).
};

struct GniFirstMessage {
  std::vector<GniM1PerNode> perNode;
};
struct GniSecondMessage {
  std::vector<GniM2PerNode> perNode;
};

class GniProver {
 public:
  virtual ~GniProver() = default;
  virtual GniFirstMessage firstMessage(
      const GniInstance& instance,
      const std::vector<std::vector<GniChallenge>>& challenges) = 0;
  virtual GniSecondMessage secondMessage(
      const GniInstance& instance,
      const std::vector<std::vector<GniChallenge>>& challenges,
      const GniFirstMessage& first,
      const std::vector<util::BigUInt>& checkChallenges) = 0;
};

class GniAmamProtocol {
 public:
  explicit GniAmamProtocol(GniParams params);

  const GniParams& params() const { return params_; }

  RunResult run(const GniInstance& instance, GniProver& prover, util::Rng& rng) const;

  template <typename ProverFactory>
  AcceptanceStats estimateAcceptance(const GniInstance& instance,
                                     ProverFactory&& proverFactory, std::size_t trials,
                                     util::Rng& rng) const {
    AcceptanceStats stats;
    stats.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
      auto prover = proverFactory();
      if (run(instance, *prover, rng).accepted) ++stats.accepts;
    }
    return stats;
  }

  // Single-repetition variant: Pr[prover can claim one repetition] — the
  // quantity with the 2q vs q gap; cheaper to estimate than the amplified
  // protocol and what E5 reports alongside it.
  AcceptanceStats estimatePerRoundHit(const GniInstance& instance, std::size_t trials,
                                      util::Rng& rng) const;

  // One per-repetition hit trial (the loop body of estimatePerRoundHit),
  // exposed so the trial engine can run hits as independent seeded trials.
  bool perRoundHitOnce(const GniInstance& instance, util::Rng& rng) const;

  // Structural cost model (bits per node) for instance size n with k
  // repetitions; no prime search. Theta(k * n log n).
  static CostBreakdown costModel(std::size_t n, std::size_t repetitions);

  bool nodeDecision(const GniInstance& instance, graph::Vertex v,
                    const GniFirstMessage& first, const GniSecondMessage& second,
                    const std::vector<GniChallenge>& ownChallenges,
                    const util::BigUInt& ownCheckChallenge) const;

 private:
  GniParams params_;
};

// The honest (computationally unbounded) prover: decides isomorphism
// outright, and per repetition enumerates all 2 n! candidates (sigma, b)
// searching for a preimage of y; claims exactly the repetitions where one
// exists.
class HonestGniProver : public GniProver {
 public:
  explicit HonestGniProver(const GniParams& params);
  GniFirstMessage firstMessage(
      const GniInstance& instance,
      const std::vector<std::vector<GniChallenge>>& challenges) override;
  GniSecondMessage secondMessage(
      const GniInstance& instance,
      const std::vector<std::vector<GniChallenge>>& challenges,
      const GniFirstMessage& first,
      const std::vector<util::BigUInt>& checkChallenges) override;

  // Exposed for analysis: did repetition j find a preimage in the last
  // firstMessage call?
  const std::vector<std::uint8_t>& lastClaims() const { return lastClaims_; }

 private:
  struct Found {
    graph::Permutation sigma;
    std::uint8_t b = 0;
  };
  const GniParams& params_;
  std::vector<std::uint8_t> lastClaims_;
  std::vector<std::optional<Found>> lastFound_;
};

// The optimal cheating prover IS the honest prover (every message is forced
// given (sigma_j, b_j), and the honest search already maximizes the number
// of claimable repetitions); on isomorphic instances its claim rate is the
// soundness error. A separate adversary probes the commitment checks with a
// non-permutation sigma, which the permutation check must catch.
class NonPermutationGniProver : public GniProver {
 public:
  NonPermutationGniProver(const GniParams& params, std::uint64_t seed);
  GniFirstMessage firstMessage(
      const GniInstance& instance,
      const std::vector<std::vector<GniChallenge>>& challenges) override;
  GniSecondMessage secondMessage(
      const GniInstance& instance,
      const std::vector<std::vector<GniChallenge>>& challenges,
      const GniFirstMessage& first,
      const std::vector<util::BigUInt>& checkChallenges) override;

 private:
  const GniParams& params_;
  util::Rng rng_;
};

}  // namespace dip::core
