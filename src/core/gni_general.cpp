#include "core/gni_general.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/chain_util.hpp"
#include "core/gni_general_wire.hpp"
#include "core/gni_wire.hpp"
#include "core/wire.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "hash/batch_eval.hpp"
#include "net/audit.hpp"
#include "util/bitio.hpp"
#include "util/mathutil.hpp"
#include "util/primes.hpp"

namespace dip::core {

namespace {

__extension__ using U128 = unsigned __int128;

// Pads an n-bit row to the hash's 2n-bit row width.
util::DynBitset padRow(const util::DynBitset& row, std::size_t width) {
  util::DynBitset padded(width);
  row.forEachSet([&](std::size_t i) { padded.set(i); });
  return padded;
}

// The GS inner-hash piece node v vouches for: H's row sigma(v) plus alpha's
// permutation-matrix row at index n + sigma(v).
util::BigUInt gsPairPiece(const hash::EpsApiHash& gsHash, std::size_t n,
                          const hash::EpsApiHash::Seed& seed, graph::Vertex sv,
                          graph::Vertex av, const util::DynBitset& hRow) {
  util::BigUInt piece = gsHash.innerRow(seed, sv, padRow(hRow, 2 * n));
  util::DynBitset alphaRow(2 * n);
  alphaRow.set(av);
  return gsHash.combine(piece, gsHash.innerRow(seed, n + sv, alphaRow));
}

// Exhaustive preimage search over S = {(sigma(G_b), alpha)}.
struct GeneralHit {
  graph::Permutation sigma;
  graph::Permutation alpha;
  std::uint8_t b = 0;
};
std::optional<GeneralHit> searchGeneralPreimage(
    const GniInstance& instance, const hash::EpsApiHash& gsHash, std::size_t n,
    const hash::EpsApiHash::Seed& seed, const util::BigUInt& y,
    const std::vector<graph::Permutation>& aut0,
    const std::vector<graph::Permutation>& aut1) {
  hash::EpsApiHash::PowerTable table = gsHash.preparePowers(seed);
  const util::BigUInt& bigP = gsHash.fieldPrime();
  const std::size_t width = 2 * n;
  const std::size_t ell = gsHash.outputBits();

  if (hash::batchEnabled() && !table.powers64.empty() && ell < 64 && y.fitsU64()) {
    // Native-word search. Padding an n-bit row to width 2n changes no bit
    // positions, and sigma is a permutation, so row sigma(v) of H =
    // sigma(G_b) contributes exactly the powers at {sigma(u) : u in N[v]} —
    // no row bitsets, no BigUInt traffic, and alpha = sigma.beta.sigma^-1
    // lands in two reused index buffers instead of three fresh permutations
    // per candidate. Values match the scalar loop below exactly.
    const std::uint64_t p64 = gsHash.fieldPrime().toU64();
    const std::uint64_t alphaSeed64 = seed.alpha.modU64(p64);
    const std::uint64_t betaSeed64 = seed.beta.modU64(p64);
    const std::uint64_t mask = (std::uint64_t{1} << ell) - 1;
    const std::uint64_t y64 = y.toU64();
    graph::Permutation sigmaInv(n);
    graph::Permutation alpha(n);
    for (std::uint8_t b = 0; b < 2; ++b) {
      const graph::Graph& gb = (b == 0) ? instance.g0 : instance.g1;
      const std::vector<graph::Permutation>& aut = (b == 0) ? aut0 : aut1;
      graph::Permutation sigma = graph::identityPermutation(n);
      do {
        std::uint64_t hPart = 0;
        for (graph::Vertex v = 0; v < n; ++v) {
          const std::size_t rowBase = static_cast<std::size_t>(sigma[v]) * width;
          sigmaInv[sigma[v]] = v;
          gb.closedRow(v).forEachSet([&](std::size_t u) {
            const std::uint64_t term = table.powers64[rowBase + sigma[u]];
            hPart += term;
            if (hPart < term || hPart >= p64) hPart -= p64;
          });
        }
        for (const graph::Permutation& beta : aut) {
          std::uint64_t full = hPart;
          for (graph::Vertex u = 0; u < n; ++u) {
            alpha[u] = sigma[beta[sigmaInv[u]]];
            const std::uint64_t term =
                table.powers64[(n + u) * width + alpha[u]];
            full += term;
            if (full < term || full >= p64) full -= p64;
          }
          std::uint64_t affine =
              static_cast<std::uint64_t>(static_cast<U128>(alphaSeed64) * full % p64);
          affine += betaSeed64;
          if (affine < betaSeed64 || affine >= p64) affine -= p64;
          if ((affine & mask) == y64) return GeneralHit{sigma, alpha, b};
        }
      } while (std::next_permutation(sigma.begin(), sigma.end()));
    }
    return std::nullopt;
  }

  for (std::uint8_t b = 0; b < 2; ++b) {
    const graph::Graph& gb = (b == 0) ? instance.g0 : instance.g1;
    const std::vector<graph::Permutation>& aut = (b == 0) ? aut0 : aut1;
    graph::Permutation sigma = graph::identityPermutation(n);
    do {
      // H = sigma(G_b); its row part of the inner hash is shared by every
      // alpha, so compute it once per sigma.
      util::BigUInt hPart;
      for (graph::Vertex v = 0; v < n; ++v) {
        util::DynBitset row = padRow(graph::Graph::imageOf(gb.closedRow(v), sigma), width);
        hPart = util::addMod(hPart, gsHash.innerRowPrepared(table, sigma[v], row), bigP);
      }
      for (const graph::Permutation& beta : aut) {
        // alpha = sigma . beta . sigma^{-1} is an automorphism of H.
        graph::Permutation alpha = graph::compose(sigma, graph::compose(beta,
                                                          graph::inverse(sigma)));
        util::BigUInt full = hPart;
        for (graph::Vertex u = 0; u < n; ++u) {
          full = util::addMod(full, table.powers[(n + u) * width + alpha[u]], bigP);
        }
        if (gsHash.outer(seed, full) == y) return GeneralHit{sigma, alpha, b};
      }
    } while (std::next_permutation(sigma.begin(), sigma.end()));
  }
  return std::nullopt;
}

}  // namespace

GniGeneralParams GniGeneralParams::choose(std::size_t n, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("GniGeneralParams: n < 2");
  GniGeneralParams params;
  params.n = n;
  util::BigUInt nFactorial = util::factorial(n);
  params.ell = nFactorial.bitLength() + 2;  // 2^ell in [4 n!, 8 n!).
  params.gsHash = hash::EpsApiHash::create(2 * n, params.ell, rng);

  std::size_t checkBits = 3 * util::bitsFor(n) + 24;
  params.checkFamily = hash::LinearHashFamily(
      util::findPrimeWithBits(checkBits, rng), static_cast<std::uint64_t>(n) * n);

  const double q = std::exp2(nFactorial.log2() - static_cast<double>(params.ell));
  const double fs = std::exp2(static_cast<double>(params.ell) -
                              params.gsHash.fieldPrime().log2());
  const double m = 4.0 * static_cast<double>(n) * static_cast<double>(n);
  const double pairFactor = (m + 1.0) * fs + 1.0 + 3.0 * fs;
  params.perRoundYesLb = 2.0 * q - 2.0 * q * q * pairFactor;
  params.perRoundNoUb = q + 6.0 * m / params.checkFamily.prime().toDouble() + 1e-9;

  for (std::size_t k = 16; k <= 16384; k *= 2) {
    std::size_t tau = static_cast<std::size_t>(
        static_cast<double>(k) * (params.perRoundYesLb + params.perRoundNoUb) / 2.0);
    if (tau == 0) tau = 1;
    if (util::binomialTailGE(k, params.perRoundYesLb, tau) > 0.70 &&
        util::binomialTailGE(k, params.perRoundNoUb, tau) < 0.30) {
      params.repetitions = k;
      params.threshold = tau;
      break;
    }
  }
  if (params.repetitions == 0) {
    throw std::runtime_error("GniGeneralParams: amplification search failed");
  }
  return params;
}

GniGeneralProtocol::GniGeneralProtocol(GniGeneralParams params)
    : params_(std::move(params)) {}

bool GniGeneralProtocol::nodeDecision(const GniInstance& instance, graph::Vertex v,
                                      const GniGenFirstMessage& first,
                                      const GniGenSecondMessage& second,
                                      const std::vector<GniChallenge>& ownChallenges,
                                      const util::BigUInt& ownCheckChallenge) const {
  const std::size_t n = instance.g0.numVertices();
  const std::size_t k = params_.repetitions;
  const util::BigUInt& bigP = params_.gsHash.fieldPrime();
  const util::BigUInt& checkP = params_.checkFamily.prime();
  const util::BigUInt yBound = util::BigUInt{1} << params_.ell;
  const GniGenM1PerNode& m1 = first.perNode[v];
  const GniGenM2PerNode& m2 = second.perNode[v];

  // Shape checks.
  if (m1.echo.size() != k || m1.claimed.size() != k || m1.b.size() != k ||
      m1.s.size() != k || m1.a.size() != k || m1.sClaims.size() != k ||
      m1.aClaims.size() != k) {
    return false;
  }
  if (m2.h.size() != k || m2.identity.size() != k || m2.permS.size() != k ||
      m2.permA.size() != k || m2.autL.size() != k || m2.autR.size() != k ||
      m2.consSC.size() != k || m2.consST.size() != k || m2.consAC.size() != k ||
      m2.consAT.size() != k) {
    return false;
  }
  if (m1.root != 0) return false;

  // Broadcast consistency.
  bool consistent = true;
  instance.g0.row(v).forEachSet([&](std::size_t u) {
    const GniGenM1PerNode& other = first.perNode[u];
    if (other.root != m1.root || other.echo != m1.echo || other.claimed != m1.claimed ||
        other.b != m1.b || !(second.perNode[u].checkSeed == m2.checkSeed)) {
      consistent = false;
    }
  });
  if (!consistent || m2.checkSeed >= checkP) return false;

  // Tree check (root fixed at 0).
  if (v == 0) {
    if (m1.dist != 0) return false;
  } else {
    if (m1.parent >= n || !instance.g0.hasEdge(v, m1.parent)) return false;
    if (m1.dist < 1 || first.perNode[m1.parent].dist != m1.dist - 1) return false;
  }
  std::vector<graph::Vertex> children;
  instance.g0.row(v).forEachSet([&](std::size_t u) {
    if (first.perNode[u].parent == v && u != 0) {
      children.push_back(static_cast<graph::Vertex>(u));
    }
  });

  const std::vector<graph::Vertex> closed1 = instance.g1.closedNeighbors(v);

  // checkSeed is pinned across every repetition of this decision, so the
  // nine check-family pieces batch into table lookups (the GS piece's seed
  // changes per repetition and stays scalar).
  const bool useBatch = hash::batchEnabled();
  thread_local hash::BatchLinearHashEvaluator checkBatch;
  thread_local std::vector<std::uint64_t> consRows;
  thread_local std::vector<std::uint64_t> consCols;
  if (useBatch) checkBatch.rebind(params_.checkFamily, m2.checkSeed);

  std::size_t claimedCount = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (!m1.claimed[j]) continue;
    ++claimedCount;
    if (m1.b[j] > 1) return false;

    const GniChallenge& challenge = m1.echo[j];
    if (challenge.seed.a >= bigP || challenge.seed.alpha >= bigP ||
        challenge.seed.beta >= bigP || challenge.y >= yBound) {
      return false;
    }
    graph::Vertex sv = m1.s[j];
    graph::Vertex av = m1.a[j];
    if (sv >= n || av >= n) return false;

    // Assemble H's row sigma(v) and its alpha-image from the visible
    // commitments (neighbors for b = 0, prover claims for b = 1).
    util::DynBitset hRow(n);
    util::DynBitset alphaHRow(n);
    if (m1.b[j] == 0) {
      bool ok = true;
      instance.g0.closedRow(v).forEachSet([&](std::size_t u) {
        graph::Vertex su = first.perNode[u].s[j];
        graph::Vertex au = first.perNode[u].a[j];
        if (su >= n || au >= n) {
          ok = false;
        } else {
          hRow.set(su);
          alphaHRow.set(au);
        }
      });
      if (!ok) return false;
    } else {
      const auto& sClaims = m1.sClaims[j];
      const auto& aClaims = m1.aClaims[j];
      if (sClaims.size() != closed1.size() || aClaims.size() != closed1.size()) {
        return false;
      }
      for (std::size_t i = 0; i < closed1.size(); ++i) {
        if (sClaims[i] >= n || aClaims[i] >= n) return false;
        if (closed1[i] == v && (sClaims[i] != sv || aClaims[i] != av)) return false;
        hRow.set(sClaims[i]);
        alphaHRow.set(aClaims[i]);
      }
    }

    // (i) GS hash of the pair (H, alpha).
    util::BigUInt gsPiece =
        gsPairPiece(params_.gsHash, n, challenge.seed, sv, av, hRow);
    if (m2.h[j] >= bigP ||
        !chainLinkHoldsAt(
            gsPiece, children,
            [&](graph::Vertex u) -> const util::BigUInt& {
              return second.perNode[u].h[j];
            },
            v, bigP)) {
      return false;
    }

    // (ii)-(vi) check-family chains. The accessor reads children's message
    // entries only, keeping the decision local to M_{N(v)}.
    auto entry = [&](std::vector<util::BigUInt> GniGenM2PerNode::* field) {
      return [&, field](graph::Vertex u) -> const util::BigUInt& {
        return (second.perNode[u].*field)[j];
      };
    };
    const auto& cf = params_.checkFamily;
    util::BigUInt idPiece = useBatch ? checkBatch.hashMatrixEntry(v, v, 1, n)
                                     : cf.hashMatrixEntry(m2.checkSeed, v, v, 1, n);
    util::BigUInt permSPiece = useBatch
                                   ? checkBatch.hashMatrixEntry(sv, sv, 1, n)
                                   : cf.hashMatrixEntry(m2.checkSeed, sv, sv, 1, n);
    util::BigUInt permAPiece = useBatch
                                   ? checkBatch.hashMatrixEntry(av, av, 1, n)
                                   : cf.hashMatrixEntry(m2.checkSeed, av, av, 1, n);
    util::BigUInt autLPiece = useBatch ? checkBatch.hashMatrixRow(sv, hRow, n)
                                       : cf.hashMatrixRow(m2.checkSeed, sv, hRow, n);
    util::BigUInt autRPiece = useBatch
                                  ? checkBatch.hashMatrixRow(av, alphaHRow, n)
                                  : cf.hashMatrixRow(m2.checkSeed, av, alphaHRow, n);
    if (!chainLinkHoldsAt(idPiece, children, entry(&GniGenM2PerNode::identity), v, checkP) ||
        !chainLinkHoldsAt(permSPiece, children, entry(&GniGenM2PerNode::permS), v, checkP) ||
        !chainLinkHoldsAt(permAPiece, children, entry(&GniGenM2PerNode::permA), v, checkP) ||
        !chainLinkHoldsAt(autLPiece, children, entry(&GniGenM2PerNode::autL), v, checkP) ||
        !chainLinkHoldsAt(autRPiece, children, entry(&GniGenM2PerNode::autR), v, checkP)) {
      return false;
    }

    if (m1.b[j] == 1) {
      util::BigUInt consSCPiece, consACPiece;
      if (useBatch) {
        consRows.clear();
        consCols.clear();
        for (std::size_t i = 0; i < closed1.size(); ++i) {
          consRows.push_back(closed1[i]);
          consCols.push_back(m1.sClaims[j][i]);
        }
        consSCPiece = checkBatch.accumulateMatrixEntries(consRows, consCols, n);
        consCols.clear();
        for (std::size_t i = 0; i < closed1.size(); ++i) {
          consCols.push_back(m1.aClaims[j][i]);
        }
        consACPiece = checkBatch.accumulateMatrixEntries(consRows, consCols, n);
      } else {
        for (std::size_t i = 0; i < closed1.size(); ++i) {
          consSCPiece = util::addMod(
              consSCPiece, cf.hashMatrixEntry(m2.checkSeed, closed1[i], m1.sClaims[j][i], 1, n),
              checkP);
          consACPiece = util::addMod(
              consACPiece, cf.hashMatrixEntry(m2.checkSeed, closed1[i], m1.aClaims[j][i], 1, n),
              checkP);
        }
      }
      util::BigUInt consSTPiece =
          useBatch ? checkBatch.hashMatrixEntry(v, sv, closed1.size(), n)
                   : cf.hashMatrixEntry(m2.checkSeed, v, sv, closed1.size(), n);
      util::BigUInt consATPiece =
          useBatch ? checkBatch.hashMatrixEntry(v, av, closed1.size(), n)
                   : cf.hashMatrixEntry(m2.checkSeed, v, av, closed1.size(), n);
      if (!chainLinkHoldsAt(consSCPiece, children, entry(&GniGenM2PerNode::consSC), v, checkP) ||
          !chainLinkHoldsAt(consSTPiece, children, entry(&GniGenM2PerNode::consST), v, checkP) ||
          !chainLinkHoldsAt(consACPiece, children, entry(&GniGenM2PerNode::consAC), v, checkP) ||
          !chainLinkHoldsAt(consATPiece, children, entry(&GniGenM2PerNode::consAT), v, checkP)) {
        return false;
      }
    }

    // Root-only equalities.
    if (v == 0) {
      if (!(params_.gsHash.outer(challenge.seed, m2.h[j]) == challenge.y)) return false;
      if (!(m2.identity[j] == m2.permS[j])) return false;   // sigma is a permutation.
      if (!(m2.identity[j] == m2.permA[j])) return false;   // alpha is a permutation.
      if (!(m2.autL[j] == m2.autR[j])) return false;        // alpha in Aut(H).
      if (m1.b[j] == 1) {
        if (!(m2.consSC[j] == m2.consST[j])) return false;
        if (!(m2.consAC[j] == m2.consAT[j])) return false;
      }
      if (!(challenge == ownChallenges[j])) return false;
    }
  }

  if (v == 0 && !(m2.checkSeed == ownCheckChallenge)) return false;
  return claimedCount >= params_.threshold;
}

RunResult GniGeneralProtocol::run(const GniInstance& instance, GniGeneralProver& prover,
                                  util::Rng& rng) const {
  const std::size_t n = instance.g0.numVertices();
  if (n != params_.n || instance.g1.numVertices() != n) {
    throw std::invalid_argument("GniGeneralProtocol: size mismatch");
  }
  const std::size_t k = params_.repetitions;
  const unsigned idBits = util::bitsFor(n);
  const std::size_t seedBlockBits = params_.gsHash.seedBits() + params_.ell;
  const std::size_t innerBits = params_.gsHash.innerValueBits();
  const std::size_t checkBits = params_.checkFamily.seedBits();

  RunResult result;
  result.transcript = net::Transcript(n);
  net::Transcript& transcript = result.transcript;

  transcript.beginRound("A1: GS seeds + targets");
  std::vector<std::vector<GniChallenge>> challenges(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::Rng nodeRng = rng.split(v);
    for (std::size_t j = 0; j < k; ++j) {
      GniChallenge challenge;
      challenge.seed = params_.gsHash.randomSeed(nodeRng);
      challenge.y = nodeRng.nextBigBits(params_.ell);
      challenges[v].push_back(std::move(challenge));
    }
    transcript.chargeToProver(v, k * seedBlockBits);
  }
#if DIP_AUDIT
  for (graph::Vertex v = 0; v < n; ++v) {
    net::auditCharge(
        "GniGeneral/A1", v, transcript.roundBitsToProver(v),
        wire::encodeGniChallenges(challenges[v], params_.gsHash, params_.ell)
            .bitCount());
  }
#endif

  transcript.beginRound("M1: echo + (sigma, alpha) commitments");
  GniGenFirstMessage first = prover.firstMessage(instance, challenges);
  if (first.perNode.size() != n) throw std::runtime_error("malformed general GNI M1");
  transcript.chargeBroadcastFromProver(idBits + k * seedBlockBits + 2 * k);
  for (graph::Vertex v = 0; v < n; ++v) {
    std::size_t claimBits = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (first.perNode[v].claimed[j] && first.perNode[v].b[j] == 1) {
        claimBits += (first.perNode[v].sClaims[j].size() +
                      first.perNode[v].aClaims[j].size()) *
                     idBits;
      }
    }
    transcript.chargeFromProver(v, 2 * idBits + 2 * k * idBits + claimBits);
  }
#if DIP_AUDIT
  net::auditChargedRound("GniGeneral/M1", transcript, [&] {
    return wire::encodeGniGenFirst(first, instance, params_);
  });
#endif

  transcript.beginRound("A2: check indices");
  std::vector<util::BigUInt> checkChallenges;
  for (graph::Vertex v = 0; v < n; ++v) {
    util::Rng nodeRng = rng.split(0x20000u + v);
    checkChallenges.push_back(params_.checkFamily.randomIndex(nodeRng));
    transcript.chargeToProver(v, checkBits);
  }
#if DIP_AUDIT
  net::roundArena().reset();
  for (graph::Vertex v = 0; v < n; ++v) {
    net::auditCharge("GniGeneral/A2", v, transcript.roundBitsToProver(v),
                     wire::encodeChallenge(checkChallenges[v], params_.checkFamily,
                                           &net::roundArena())
                         .bitCount());
  }
#endif

  transcript.beginRound("M2: check echo + chains");
  GniGenSecondMessage second =
      prover.secondMessage(instance, challenges, first, checkChallenges);
  if (second.perNode.size() != n) throw std::runtime_error("malformed general GNI M2");
  transcript.chargeBroadcastFromProver(checkBits);
  for (graph::Vertex v = 0; v < n; ++v) {
    std::size_t bits = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (!first.perNode[v].claimed[j]) continue;
      bits += innerBits + 5 * checkBits;  // h + identity/permS/permA/autL/autR.
      if (first.perNode[v].b[j] == 1) bits += 4 * checkBits;
    }
    transcript.chargeFromProver(v, bits);
  }
#if DIP_AUDIT
  net::auditChargedRound("GniGeneral/M2", transcript, [&] {
    return wire::encodeGniGenSecond(second, first, instance, params_);
  });
#endif

  result.accepted = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!nodeDecision(instance, v, first, second, challenges[v], checkChallenges[v])) {
      result.accepted = false;
      break;
    }
  }
  return result;
}

AcceptanceStats GniGeneralProtocol::estimatePerRoundHit(const GniInstance& instance,
                                                        std::size_t trials,
                                                        util::Rng& rng) const {
  auto aut0 = graph::allAutomorphisms(instance.g0);
  auto aut1 = graph::allAutomorphisms(instance.g1);
  AcceptanceStats stats;
  stats.trials = trials;
  for (std::size_t t = 0; t < trials; ++t) {
    if (perRoundHitOnce(instance, aut0, aut1, rng)) ++stats.accepts;
  }
  return stats;
}

bool GniGeneralProtocol::perRoundHitOnce(const GniInstance& instance,
                                         const std::vector<graph::Permutation>& aut0,
                                         const std::vector<graph::Permutation>& aut1,
                                         util::Rng& rng) const {
  hash::EpsApiHash::Seed seed = params_.gsHash.randomSeed(rng);
  util::BigUInt y = rng.nextBigBits(params_.ell);
  return searchGeneralPreimage(instance, params_.gsHash, params_.n, seed, y, aut0, aut1)
      .has_value();
}

CostBreakdown GniGeneralProtocol::costModel(std::size_t n, std::size_t repetitions) {
  const unsigned idBits = util::bitsFor(n);
  double log2Fact = 0.0;
  for (std::size_t i = 2; i <= n; ++i) log2Fact += std::log2(static_cast<double>(i));
  const std::size_t ell = static_cast<std::size_t>(log2Fact) + 3;
  const std::size_t fieldBits = ell + 2 * util::bitsFor(2 * n) + 8;
  const std::size_t seedBlockBits = 3 * fieldBits + ell;
  const std::size_t checkBits = 3 * util::bitsFor(n) + 24;
  const std::size_t k = repetitions;

  CostBreakdown cost;
  cost.bitsToProverPerNode = k * seedBlockBits + checkBits;
  cost.bitsFromProverPerNode = idBits + k * seedBlockBits + 2 * k  // M1 broadcast.
                               + 2 * idBits + 2 * k * idBits       // Tree + s + a.
                               + 2 * k * n * idBits                // Claims (worst case).
                               + checkBits                         // M2 broadcast.
                               + k * (fieldBits + 9 * checkBits);  // Chains.
  return cost;
}

// ---- Honest prover ----

HonestGniGeneralProver::HonestGniGeneralProver(const GniGeneralParams& params)
    : params_(params) {}

GniGenFirstMessage HonestGniGeneralProver::firstMessage(
    const GniInstance& instance,
    const std::vector<std::vector<GniChallenge>>& challenges) {
  const std::size_t n = instance.g0.numVertices();
  const std::size_t k = params_.repetitions;
  const std::vector<GniChallenge>& rootChallenges = challenges[0];
  auto aut0 = graph::allAutomorphisms(instance.g0);
  auto aut1 = graph::allAutomorphisms(instance.g1);

  lastFound_.assign(k, std::nullopt);
  std::vector<std::uint8_t> claimed(k, 0);
  for (std::size_t j = 0; j < k; ++j) {
    auto hit = searchGeneralPreimage(instance, params_.gsHash, n,
                                     rootChallenges[j].seed, rootChallenges[j].y, aut0,
                                     aut1);
    if (hit) {
      claimed[j] = 1;
      lastFound_[j] = Found{std::move(hit->sigma), std::move(hit->alpha), hit->b};
    }
  }

  net::SpanningTreeAdvice tree = net::buildBfsTree(instance.g0, 0);
  GniGenFirstMessage first;
  first.perNode.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    GniGenM1PerNode& m1 = first.perNode[v];
    m1.root = 0;
    m1.parent = tree.parent[v];
    m1.dist = tree.dist[v];
    m1.echo = rootChallenges;
    m1.claimed = claimed;
    m1.b.assign(k, 0);
    m1.s.assign(k, 0);
    m1.a.assign(k, 0);
    m1.sClaims.resize(k);
    m1.aClaims.resize(k);
    for (std::size_t j = 0; j < k; ++j) {
      if (!lastFound_[j]) continue;
      const Found& found = *lastFound_[j];
      m1.b[j] = found.b;
      m1.s[j] = found.sigma[v];
      m1.a[j] = found.alpha[found.sigma[v]];
      if (found.b == 1) {
        m1.sClaims[j].reserve(instance.g1.degree(v) + 1);
        m1.aClaims[j].reserve(instance.g1.degree(v) + 1);
        instance.g1.forEachClosedNeighbor(v, [&](graph::Vertex u) {
          m1.sClaims[j].push_back(found.sigma[u]);
          m1.aClaims[j].push_back(found.alpha[found.sigma[u]]);
        });
      }
    }
  }
  return first;
}

GniGenSecondMessage HonestGniGeneralProver::secondMessage(
    const GniInstance& instance, const std::vector<std::vector<GniChallenge>>& challenges,
    const GniGenFirstMessage& /*first*/, const std::vector<util::BigUInt>& checkChallenges) {
  const std::size_t n = instance.g0.numVertices();
  const std::size_t k = params_.repetitions;
  const util::BigUInt& bigP = params_.gsHash.fieldPrime();
  const util::BigUInt& checkP = params_.checkFamily.prime();
  const util::BigUInt& checkSeed = checkChallenges[0];
  const auto& cf = params_.checkFamily;
  net::SpanningTreeAdvice tree = net::buildBfsTree(instance.g0, 0);

  GniGenSecondMessage second;
  second.perNode.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    GniGenM2PerNode& m2 = second.perNode[v];
    m2.checkSeed = checkSeed;
    for (auto field : {&GniGenM2PerNode::h, &GniGenM2PerNode::identity,
                       &GniGenM2PerNode::permS, &GniGenM2PerNode::permA,
                       &GniGenM2PerNode::autL, &GniGenM2PerNode::autR,
                       &GniGenM2PerNode::consSC, &GniGenM2PerNode::consST,
                       &GniGenM2PerNode::consAC, &GniGenM2PerNode::consAT}) {
      (m2.*field).assign(k, util::BigUInt{});
    }
  }

  for (std::size_t j = 0; j < k; ++j) {
    if (!lastFound_[j]) continue;
    const Found& found = *lastFound_[j];
    const graph::Graph& gb = (found.b == 0) ? instance.g0 : instance.g1;
    const GniChallenge& challenge = challenges[0][j];

    std::vector<util::BigUInt> gsPieces(n), idPieces(n), permSPieces(n), permAPieces(n),
        autLPieces(n), autRPieces(n), consSCPieces(n), consSTPieces(n), consACPieces(n),
        consATPieces(n);
    std::vector<std::uint64_t> lIdx, rIdx;
    std::vector<util::DynBitset> lRows, rRows;
    const bool useBatch = hash::batchEnabled();
    thread_local hash::BatchLinearHashEvaluator batch;
    thread_local hash::BatchLinearHashEvaluator gsBatch;
    thread_local std::vector<std::uint64_t> gsIdx;
    thread_local std::vector<util::DynBitset> gsRows;
    thread_local std::vector<std::uint64_t> consRows;
    thread_local std::vector<std::uint64_t> consCols;
    std::vector<graph::Vertex> avList(n);
    if (useBatch) {
      lIdx.reserve(n);
      rIdx.reserve(n);
      lRows.reserve(n);
      rRows.reserve(n);
      gsIdx.clear();
      gsRows.clear();
      // checkSeed is pinned for the whole message and the GS seed for the
      // whole repetition: rows and entries on both families become table
      // lookups (the batch evaluators' rebind short-circuits across j for
      // the check family).
      batch.rebind(cf.prime(), cf.dimension(), checkSeed);
      gsBatch.rebind(params_.gsHash.inner(), challenge.seed.a);
    }
    const std::size_t width = 2 * n;
    for (graph::Vertex v = 0; v < n; ++v) {
      graph::Vertex sv = found.sigma[v];
      graph::Vertex av = found.alpha[sv];
      avList[v] = av;
      util::DynBitset hRow = graph::Graph::imageOf(gb.closedRow(v), found.sigma);
      util::DynBitset alphaHRow = graph::Graph::imageOf(hRow, found.alpha);

      if (useBatch) {
        gsIdx.push_back(sv);
        gsRows.push_back(padRow(hRow, width));
        idPieces[v] = batch.hashMatrixEntry(v, v, 1, n);
        permSPieces[v] = batch.hashMatrixEntry(sv, sv, 1, n);
        permAPieces[v] = batch.hashMatrixEntry(av, av, 1, n);
        // The 2n automorphism-check row hashes all share checkSeed: defer
        // them into two batch calls over one set of power tables.
        lIdx.push_back(sv);
        lRows.push_back(std::move(hRow));
        rIdx.push_back(av);
        rRows.push_back(std::move(alphaHRow));
      } else {
        gsPieces[v] = gsPairPiece(params_.gsHash, n, challenge.seed, sv, av, hRow);
        idPieces[v] = cf.hashMatrixEntry(checkSeed, v, v, 1, n);
        permSPieces[v] = cf.hashMatrixEntry(checkSeed, sv, sv, 1, n);
        permAPieces[v] = cf.hashMatrixEntry(checkSeed, av, av, 1, n);
        autLPieces[v] = cf.hashMatrixRow(checkSeed, sv, hRow, n);
        autRPieces[v] = cf.hashMatrixRow(checkSeed, av, alphaHRow, n);
      }
      if (found.b == 1) {
        const std::size_t closedCount = instance.g1.degree(v) + 1;
        if (useBatch) {
          consRows.clear();
          consCols.clear();
          instance.g1.forEachClosedNeighbor(v, [&](graph::Vertex u) {
            consRows.push_back(u);
            consCols.push_back(found.sigma[u]);
          });
          consSCPieces[v] = batch.accumulateMatrixEntries(consRows, consCols, n);
          consCols.clear();
          instance.g1.forEachClosedNeighbor(v, [&](graph::Vertex u) {
            consCols.push_back(found.alpha[found.sigma[u]]);
          });
          consACPieces[v] = batch.accumulateMatrixEntries(consRows, consCols, n);
          consSTPieces[v] = batch.hashMatrixEntry(v, sv, closedCount, n);
          consATPieces[v] = batch.hashMatrixEntry(v, av, closedCount, n);
        } else {
          util::BigUInt accS, accA;
          instance.g1.forEachClosedNeighbor(v, [&](graph::Vertex u) {
            accS = util::addMod(
                accS, cf.hashMatrixEntry(checkSeed, u, found.sigma[u], 1, n), checkP);
            accA = util::addMod(
                accA, cf.hashMatrixEntry(checkSeed, u, found.alpha[found.sigma[u]], 1, n),
                checkP);
          });
          consSCPieces[v] = accS;
          consACPieces[v] = accA;
          consSTPieces[v] = cf.hashMatrixEntry(checkSeed, v, sv, closedCount, n);
          consATPieces[v] = cf.hashMatrixEntry(checkSeed, v, av, closedCount, n);
        }
      }
    }
    if (useBatch) {
      // gsPairPiece(sv, av, hRow) = innerRow(sv, pad(hRow)) +
      // innerRow(n + sv, one-hot av) — the one-hot row is a single matrix
      // entry of the 2n x 2n inner hash.
      gsBatch.hashMatrixRows(gsIdx, gsRows, width, gsPieces);
      for (graph::Vertex v = 0; v < n; ++v) {
        gsPieces[v] = params_.gsHash.combine(
            gsPieces[v],
            gsBatch.hashMatrixEntry(n + gsIdx[v], avList[v], 1, width));
      }
      batch.hashMatrixRows(lIdx, lRows, n, autLPieces);
      batch.hashMatrixRows(rIdx, rRows, n, autRPieces);
    }

    auto assign = [&](std::vector<util::BigUInt> GniGenM2PerNode::* field,
                      const std::vector<util::BigUInt>& pieces, const util::BigUInt& prime) {
      auto sums = subtreeSums(instance.g0, tree, pieces, prime);
      for (graph::Vertex v = 0; v < n; ++v) (second.perNode[v].*field)[j] = sums[v];
    };
    assign(&GniGenM2PerNode::h, gsPieces, bigP);
    assign(&GniGenM2PerNode::identity, idPieces, checkP);
    assign(&GniGenM2PerNode::permS, permSPieces, checkP);
    assign(&GniGenM2PerNode::permA, permAPieces, checkP);
    assign(&GniGenM2PerNode::autL, autLPieces, checkP);
    assign(&GniGenM2PerNode::autR, autRPieces, checkP);
    if (found.b == 1) {
      assign(&GniGenM2PerNode::consSC, consSCPieces, checkP);
      assign(&GniGenM2PerNode::consST, consSTPieces, checkP);
      assign(&GniGenM2PerNode::consAC, consACPieces, checkP);
      assign(&GniGenM2PerNode::consAT, consATPieces, checkP);
    }
  }
  return second;
}

// ---- Instance generators ----

GniInstance gniGeneralYesInstance(std::size_t n, util::Rng& rng) {
  // A symmetric g0 (the case the basic protocol cannot count) against a
  // rigid, non-isomorphic g1.
  graph::Graph g0 = graph::randomSymmetricConnected(n, rng);
  graph::Graph g1 = graph::randomRigidConnected(n, rng);
  // Different automorphism counts already guarantee non-isomorphism.
  return GniInstance{std::move(g0), std::move(g1)};
}

GniInstance gniGeneralNoInstance(std::size_t n, util::Rng& rng) {
  graph::Graph g0 = graph::randomSymmetricConnected(n, rng);
  graph::Graph g1 = graph::randomIsomorphicCopy(g0, rng);
  return GniInstance{std::move(g0), std::move(g1)};
}

}  // namespace dip::core
