// Wire formats for the GNI dAMAM protocol messages (honest/consistent
// shape), completing the bit-exact serialization story: challenges, the M1
// commitment round and the M2 chain round all round-trip through real byte
// streams whose lengths match the transcript charges.
#pragma once

#include "core/gni_amam.hpp"
#include "core/wire.hpp"

namespace dip::core::wire {

// One node's A1 challenge block (k repetitions of seed + target). The
// (gsHash, ell) overloads serve any Goldwasser-Sipser-style parameter set
// (the rigid dAMAM protocol and the general-graph variant alike).
util::BitWriter encodeGniChallenges(const std::vector<GniChallenge>& challenges,
                                    const hash::EpsApiHash& gsHash, std::size_t ell);
std::vector<GniChallenge> decodeGniChallenges(const util::BitWriter& encoded,
                                              const hash::EpsApiHash& gsHash,
                                              std::size_t ell, std::size_t repetitions);
util::BitWriter encodeGniChallenges(const std::vector<GniChallenge>& challenges,
                                    const GniParams& params);
std::vector<GniChallenge> decodeGniChallenges(const util::BitWriter& encoded,
                                              const GniParams& params);

// M1: broadcast = root + echo + claimed/b bits; unicast = tree + s values +
// claims for claimed b=1 repetitions.
EncodedRound encodeGniFirst(const GniFirstMessage& message, const GniInstance& instance,
                            const GniParams& params);
GniFirstMessage decodeGniFirst(const EncodedRound& round, const GniInstance& instance,
                               const GniParams& params);

// M2: broadcast = check-seed echo; unicast = per-claimed-repetition chains.
// Decoding needs M1 (claimed/b flags decide which fields are present).
EncodedRound encodeGniSecond(const GniSecondMessage& message,
                             const GniFirstMessage& first, const GniInstance& instance,
                             const GniParams& params);
GniSecondMessage decodeGniSecond(const EncodedRound& round, const GniFirstMessage& first,
                                 const GniInstance& instance, const GniParams& params);

}  // namespace dip::core::wire
