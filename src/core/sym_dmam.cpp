#include "core/sym_dmam.hpp"

#include <stdexcept>

#include "core/wire.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "hash/batch_eval.hpp"
#include "net/audit.hpp"
#include "util/bitio.hpp"

namespace dip::core {

namespace {

// rho(N(v)) for the chain: the characteristic vector of the images, under
// the rho values visible in v's closed neighborhood, of v's closed
// neighborhood. Out-of-range rho values make the node reject (handled by
// the caller); duplicates are fine (it is an image SET).
util::DynBitset localImageOfClosedRow(const graph::Graph& g, graph::Vertex v,
                                      const std::vector<graph::Vertex>& rho) {
  util::DynBitset image(g.numVertices());
  util::DynBitset closed = g.closedRow(v);
  closed.forEachSet([&](std::size_t u) { image.set(rho[u]); });
  return image;
}

bool rhoInRange(const graph::Graph& g, graph::Vertex v,
                const std::vector<graph::Vertex>& rho) {
  bool ok = rho[v] < g.numVertices();
  g.row(v).forEachSet([&](std::size_t u) {
    if (rho[u] >= g.numVertices()) ok = false;
  });
  return ok;
}

}  // namespace

ChainValues aggregateChains(const graph::Graph& g, const hash::LinearHashFamily& family,
                            const util::BigUInt& index,
                            const std::vector<graph::Vertex>& rho,
                            const net::SpanningTreeAdvice& tree) {
  const std::size_t n = g.numVertices();
  ChainValues values;
  values.a.assign(n, util::BigUInt{});
  values.b.assign(n, util::BigUInt{});
  if (hash::batchEnabled()) {
    // Per-vertex row hashes depend only on v, not on tree order: evaluate
    // all 2n of them in two batch calls over the shared power tables, then
    // run the bottom-up fold on the precomputed values.
    thread_local hash::BatchLinearHashEvaluator batch;
    thread_local std::vector<std::uint64_t> aIdx;
    thread_local std::vector<std::uint64_t> bIdx;
    thread_local std::vector<util::DynBitset> aRows;
    thread_local std::vector<util::DynBitset> bRows;
    batch.rebind(family.prime(), family.dimension(), index);
    aIdx.clear();
    bIdx.clear();
    aRows.clear();
    bRows.clear();
    aIdx.reserve(n);
    bIdx.reserve(n);
    aRows.reserve(n);
    bRows.reserve(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      aIdx.push_back(v);
      aRows.push_back(g.closedRow(v));
      bIdx.push_back(rho[v]);
      bRows.push_back(localImageOfClosedRow(g, v, rho));
    }
    batch.hashMatrixRows(aIdx, aRows, n, values.a);
    batch.hashMatrixRows(bIdx, bRows, n, values.b);
    thread_local std::vector<graph::Vertex> order;
    net::bottomUpOrderInto(tree, order);
    for (graph::Vertex v : order) {
      net::forEachChild(g, tree, v, [&](graph::Vertex child) {
        util::addModInPlace(values.a[v], values.a[child], family.prime());
        util::addModInPlace(values.b[v], values.b[child], family.prime());
      });
    }
    return values;
  }
  // Scalar path (DIP_BATCH=0): one evaluator for the whole bottom-up pass —
  // the index is fixed, so every row hash reuses the pinned backend state.
  thread_local hash::LinearHashEvaluator evaluator;
  evaluator.rebind(family.prime(), family.dimension(), index);
  thread_local std::vector<graph::Vertex> order;
  net::bottomUpOrderInto(tree, order);
  for (graph::Vertex v : order) {
    util::BigUInt a = evaluator.hashMatrixRow(v, g.closedRow(v), n);
    util::BigUInt b = evaluator.hashMatrixRow(rho[v],
                                              localImageOfClosedRow(g, v, rho), n);
    net::forEachChild(g, tree, v, [&](graph::Vertex child) {
      util::addModInPlace(a, values.a[child], family.prime());
      util::addModInPlace(b, values.b[child], family.prime());
    });
    values.a[v] = a;
    values.b[v] = b;
  }
  return values;
}

SymDmamProtocol::SymDmamProtocol(hash::LinearHashFamily family)
    : family_(std::move(family)) {}

bool SymDmamProtocol::nodeDecision(const graph::Graph& g, graph::Vertex v,
                                   const SymDmamFirstMessage& first,
                                   const util::BigUInt& ownChallenge,
                                   const SymDmamSecondMessage& second) const {
  return nodeDecisionAt(g, v, first, ownChallenge, second, nullptr, nullptr);
}

bool SymDmamProtocol::nodeDecisionAt(const graph::Graph& g, graph::Vertex v,
                                     const SymDmamFirstMessage& first,
                                     const util::BigUInt& ownChallenge,
                                     const SymDmamSecondMessage& second,
                                     const util::BigUInt* expectABase,
                                     const util::BigUInt* expectBBase) const {
  const std::size_t n = g.numVertices();
  const util::BigUInt& p = family_.prime();

  // Broadcast consistency: the claimed root and index must agree with every
  // neighbor's copy.
  graph::Vertex root = first.rootPerNode[v];
  const util::BigUInt& index = second.indexPerNode[v];
  bool consistent = root < n;
  g.row(v).forEachSet([&](std::size_t u) {
    if (first.rootPerNode[u] != root || !(second.indexPerNode[u] == index)) {
      consistent = false;
    }
  });
  if (!consistent) return false;
  if (index >= p) return false;

  // Line 1: spanning-tree local checks (thread-local advice: see sym_dam).
  thread_local net::SpanningTreeAdvice tree;
  tree.root = root;
  tree.parent = first.parent;
  tree.dist = first.dist;
  if (!net::verifyTreeLocally(g, tree, v)) return false;

  // Lines 2-3: chain verification.
  if (!rhoInRange(g, v, first.rho)) return false;
  thread_local util::BigUInt expectA;
  thread_local util::BigUInt expectB;
  expectA = expectABase ? expectABase[v]
                        : family_.hashMatrixRow(index, v, g.closedRow(v), n);
  expectB = expectBBase ? expectBBase[v]
                        : family_.hashMatrixRow(index, first.rho[v],
                                                localImageOfClosedRow(g, v, first.rho), n);
  bool childrenOk = true;
  net::forEachChild(g, tree, v, [&](graph::Vertex child) {
    if (!childrenOk) return;
    if (second.a[child] >= p || second.b[child] >= p) {
      childrenOk = false;
      return;
    }
    util::addModInPlace(expectA, second.a[child], p);
    util::addModInPlace(expectB, second.b[child], p);
  });
  if (!childrenOk) return false;
  if (!(second.a[v] == expectA) || !(second.b[v] == expectB)) return false;

  // Line 4: root-only checks.
  if (v == root) {
    if (!(second.a[v] == second.b[v])) return false;
    if (first.rho[v] == v) return false;
    if (!(index == ownChallenge)) return false;
  }
  return true;
}

RunResult SymDmamProtocol::run(const graph::Graph& g, SymDmamProver& prover,
                               util::Rng& rng) const {
  const std::size_t n = g.numVertices();
  if (n == 0) throw std::invalid_argument("SymDmamProtocol: empty graph");
  const unsigned idBits = util::bitsFor(n);
  const std::size_t seedBits = family_.seedBits();
  const std::size_t valueBits = family_.valueBits();

  RunResult result;
  result.transcript = net::Transcript(n);
  net::Transcript& transcript = result.transcript;

  // M1.
  transcript.beginRound("M1: root/rho/tree");
  SymDmamFirstMessage first = prover.firstMessage(g);
  if (first.rootPerNode.size() != n || first.rho.size() != n ||
      first.parent.size() != n || first.dist.size() != n) {
    throw std::runtime_error("SymDmamProver: malformed first message");
  }
  transcript.chargeBroadcastFromProver(idBits);  // Root id.
  for (graph::Vertex v = 0; v < n; ++v) {
    transcript.chargeFromProver(v, 3 * idBits);  // rho_v, t_v, d_v.
  }
#if DIP_AUDIT
  net::auditChargedRound("SymDmam/M1", transcript,
                         [&] { return wire::encodeSymDmamFirst(first, n, &net::roundArena()); });
#endif

  // A: challenges.
  transcript.beginRound("A: hash indices");
  std::vector<util::BigUInt> challenges;
  challenges.reserve(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::Rng nodeRng = rng.split(v);
    challenges.push_back(family_.randomIndex(nodeRng));
    transcript.chargeToProver(v, seedBits);
  }
#if DIP_AUDIT
  net::roundArena().reset();
  for (graph::Vertex v = 0; v < n; ++v) {
    net::auditCharge(
        "SymDmam/A", v, transcript.roundBitsToProver(v),
        wire::encodeChallenge(challenges[v], family_, &net::roundArena()).bitCount());
  }
#endif

  // M2.
  transcript.beginRound("M2: index echo + chain values");
  SymDmamSecondMessage second = prover.secondMessage(g, first, challenges);
  if (second.indexPerNode.size() != n || second.a.size() != n || second.b.size() != n) {
    throw std::runtime_error("SymDmamProver: malformed second message");
  }
  transcript.chargeBroadcastFromProver(seedBits);  // Index echo.
  for (graph::Vertex v = 0; v < n; ++v) {
    transcript.chargeFromProver(v, 2 * valueBits);  // a_v, b_v.
  }
#if DIP_AUDIT
  net::auditChargedRound("SymDmam/M2", transcript, [&] {
    return wire::encodeSymDmamSecond(second, n, family_, &net::roundArena());
  });
#endif

  // Decisions. The verifier side hashes the same 2n rows the prover did; in
  // the common case (index broadcast uniform, rho in range) all of them
  // share one seed, so the batch engine computes them over shared power
  // tables instead of 2n scalar walks. Any node whose precondition fails
  // falls back to the per-node scalar recomputation — values are identical
  // either way, only the evaluation strategy differs.
  thread_local std::vector<util::BigUInt> baseA;
  thread_local std::vector<util::BigUInt> baseB;
  const util::BigUInt* preA = nullptr;
  const util::BigUInt* preB = nullptr;
  if (hash::batchEnabled()) {
    const util::BigUInt& index = second.indexPerNode[0];
    bool uniform = index < family_.prime();
    for (graph::Vertex v = 1; uniform && v < n; ++v) {
      if (!(second.indexPerNode[v] == index)) uniform = false;
    }
    for (graph::Vertex v = 0; uniform && v < n; ++v) {
      if (first.rho[v] >= n) uniform = false;
    }
    if (uniform) {
      thread_local hash::BatchLinearHashEvaluator batch;
      thread_local std::vector<std::uint64_t> aIdx;
      thread_local std::vector<std::uint64_t> bIdx;
      thread_local std::vector<util::DynBitset> aRows;
      thread_local std::vector<util::DynBitset> bRows;
      batch.rebind(family_.prime(), family_.dimension(), index);
      aIdx.clear();
      bIdx.clear();
      aRows.clear();
      bRows.clear();
      aIdx.reserve(n);
      bIdx.reserve(n);
      aRows.reserve(n);
      bRows.reserve(n);
      for (graph::Vertex v = 0; v < n; ++v) {
        aIdx.push_back(v);
        aRows.push_back(g.closedRow(v));
        bIdx.push_back(first.rho[v]);
        bRows.push_back(localImageOfClosedRow(g, v, first.rho));
      }
      batch.hashMatrixRows(aIdx, aRows, n, baseA);
      batch.hashMatrixRows(bIdx, bRows, n, baseB);
      preA = baseA.data();
      preB = baseB.data();
    }
  }
  result.accepted = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!nodeDecisionAt(g, v, first, challenges[v], second, preA, preB)) {
      result.accepted = false;
      break;
    }
  }
  return result;
}

CostBreakdown SymDmamProtocol::costModel(std::size_t n) {
  // p in [10 n^3, 100 n^3]  =>  seed/value bits <= log2(100 n^3).
  const unsigned idBits = util::bitsFor(n);
  util::BigUInt pHi = util::BigUInt{100} * util::BigUInt::pow(util::BigUInt{n}, 3);
  const std::size_t hashBits = pHi.bitLength();
  CostBreakdown cost;
  cost.bitsToProverPerNode = hashBits;                       // i_v.
  cost.bitsFromProverPerNode = idBits                        // Root broadcast.
                               + 3 * idBits                  // rho_v, t_v, d_v.
                               + hashBits                    // Index echo.
                               + 2 * hashBits;               // a_v, b_v.
  return cost;
}

// ---- Honest prover ----

HonestSymDmamProver::HonestSymDmamProver(const hash::LinearHashFamily& family)
    : family_(family) {}

SymDmamFirstMessage HonestSymDmamProver::firstMessage(const graph::Graph& g) {
  auto rho = graph::findNontrivialAutomorphism(g);
  if (!rho) {
    throw std::invalid_argument("HonestSymDmamProver: graph is not symmetric");
  }
  graph::Vertex root = 0;
  for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
    if ((*rho)[v] != v) {
      root = v;
      break;
    }
  }
  net::SpanningTreeAdvice tree = net::buildBfsTree(g, root);
  SymDmamFirstMessage first;
  first.rootPerNode.assign(g.numVertices(), root);
  first.rho = *rho;
  first.parent = tree.parent;
  first.dist = tree.dist;
  return first;
}

SymDmamSecondMessage HonestSymDmamProver::secondMessage(
    const graph::Graph& g, const SymDmamFirstMessage& first,
    const std::vector<util::BigUInt>& challenges) {
  graph::Vertex root = first.rootPerNode[0];
  net::SpanningTreeAdvice tree{root, first.parent, first.dist};
  const util::BigUInt& index = challenges[root];
  ChainValues chains = aggregateChains(g, family_, index, first.rho, tree);
  SymDmamSecondMessage second;
  second.indexPerNode.assign(g.numVertices(), index);
  second.a = std::move(chains.a);
  second.b = std::move(chains.b);
  return second;
}

// ---- Cheating provers ----

CheatingRhoProver::CheatingRhoProver(const hash::LinearHashFamily& family,
                                     Strategy strategy, std::uint64_t seed)
    : family_(family), strategy_(strategy), rng_(seed) {}

SymDmamFirstMessage CheatingRhoProver::firstMessage(const graph::Graph& g) {
  const std::size_t n = g.numVertices();
  graph::Permutation rho;
  switch (strategy_) {
    case Strategy::kIdentity:
      rho = graph::identityPermutation(n);
      break;
    case Strategy::kRandomPermutation: {
      do {
        rho = graph::randomPermutation(n, rng_);
      } while (graph::isIdentity(rho));
      break;
    }
    case Strategy::kTransposition: {
      // Swap two same-degree vertices if possible (least detectable lie).
      rho = graph::identityPermutation(n);
      bool swapped = false;
      for (graph::Vertex u = 0; u < n && !swapped; ++u) {
        for (graph::Vertex w = u + 1; w < n && !swapped; ++w) {
          if (g.degree(u) == g.degree(w)) {
            std::swap(rho[u], rho[w]);
            swapped = true;
          }
        }
      }
      if (!swapped) std::swap(rho[0], rho[n - 1]);
      break;
    }
  }
  graph::Vertex root = 0;
  while (root < n && rho[root] == root) ++root;
  if (root == n) root = 0;  // Identity strategy: doomed, pick any root.
  net::SpanningTreeAdvice tree = net::buildBfsTree(g, root);
  SymDmamFirstMessage first;
  first.rootPerNode.assign(n, root);
  first.rho = rho;
  first.parent = tree.parent;
  first.dist = tree.dist;
  return first;
}

SymDmamSecondMessage CheatingRhoProver::secondMessage(
    const graph::Graph& g, const SymDmamFirstMessage& first,
    const std::vector<util::BigUInt>& challenges) {
  // Past the commitment, honest play maximizes acceptance: the chain sums
  // are forced by the local checks, so the only hope is a hash collision at
  // the root.
  graph::Vertex root = first.rootPerNode[0];
  net::SpanningTreeAdvice tree{root, first.parent, first.dist};
  const util::BigUInt& index = challenges[root];
  ChainValues chains = aggregateChains(g, family_, index, first.rho, tree);
  SymDmamSecondMessage second;
  second.indexPerNode.assign(g.numVertices(), index);
  second.a = std::move(chains.a);
  second.b = std::move(chains.b);
  return second;
}

HashChainLiarProver::HashChainLiarProver(const hash::LinearHashFamily& family,
                                         std::uint64_t seed)
    : family_(family), inner_(family), rng_(seed) {}

SymDmamFirstMessage HashChainLiarProver::firstMessage(const graph::Graph& g) {
  return inner_.firstMessage(g);
}

SymDmamSecondMessage HashChainLiarProver::secondMessage(
    const graph::Graph& g, const SymDmamFirstMessage& first,
    const std::vector<util::BigUInt>& challenges) {
  SymDmamSecondMessage second = inner_.secondMessage(g, first, challenges);
  graph::Vertex victim = static_cast<graph::Vertex>(rng_.nextBelow(g.numVertices()));
  second.a[victim] = util::addMod(second.a[victim], util::BigUInt{1}, family_.prime());
  return second;
}

}  // namespace dip::core
