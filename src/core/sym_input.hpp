// Symmetry of an INPUT graph (extension).
//
// Definition 4's discussion distinguishes the network graph from graphs
// given as inputs: each node v holds a row N_H(v) of some graph H, but H's
// edges are NOT communication links. Deciding whether H is symmetric is the
// natural companion problem (and the missing piece for composing Sym with
// GNI on the input side): Protocol 1's fingerprint machinery still works —
// trees and messages run over the NETWORK graph, rows come from inputs —
// except that node v can no longer see the rho-images of its H-neighbors,
// so the prover must CLAIM them, and the claims must be checked for
// consistency with the owners' commitments.
//
// Round structure (dMAM, same shape as Protocol 1; root fixed at node 0):
//   M1  prover -> nodes: broadcast witness vertex w (rho(w) != w); unicast
//       rho_v, the spanning tree (t_v, d_v), and the claimed images
//       { rho(u) : u in closed N_H(v) }.
//   A   nodes -> prover: a random index i_v of the linear hash family.
//   M2  prover -> nodes: broadcast i (= i_0); unicast subtree sums for
//       (a) the fingerprint of sum [v, N_H(v)],
//       (b) the fingerprint of sum [rho(v), rho(N_H(v))] (via the claims),
//       (c) the claim-consistency pair: sum over v of sum_{u in N_H(v)}
//           [u, e_claim(v,u)] vs sum_u (deg_H(u)+1) [u, e_rho(u)] — equal
//           iff every claim matches the owner's committed rho(u) (entries
//           are counts < n, no wrap-around over Z_p).
// Because rho and all claims are committed BEFORE the seed is drawn, one
// O(log n)-bit seed suffices for all three checks: Sym of an input graph is
// in dMAM[O(log n + Delta_H log n)], where Delta_H is H's maximum degree —
// for bounded-degree inputs the same O(log n) as Theorem 1.1.
#pragma once

#include <vector>

#include "core/result.hpp"
#include "graph/graph.hpp"
#include "hash/linear_hash.hpp"
#include "util/rng.hpp"

namespace dip::core {

// The instance: a connected network plus the input graph H (delivered to
// the nodes row by row).
struct SymInputInstance {
  graph::Graph network;
  graph::Graph input;
};

struct SymInputFirstMessage {
  std::vector<graph::Vertex> witnessPerNode;  // Broadcast: some w with rho(w) != w.
  std::vector<graph::Vertex> rho;             // Unicast commitments.
  std::vector<graph::Vertex> parent;          // Unicast tree advice.
  std::vector<std::uint32_t> dist;
  // claims[v][i] = claimed rho of the i-th sorted closed H-neighbor of v.
  std::vector<std::vector<graph::Vertex>> claims;
};

struct SymInputSecondMessage {
  std::vector<util::BigUInt> indexPerNode;  // Broadcast echo of node 0's index.
  std::vector<util::BigUInt> a;             // Fingerprint of sum [v, N_H(v)].
  std::vector<util::BigUInt> b;             // Fingerprint of sum [rho(v), rho(N_H(v))].
  std::vector<util::BigUInt> consC;         // Claims-matrix side.
  std::vector<util::BigUInt> consT;         // Owner-commitment side.
};

class SymInputProver {
 public:
  virtual ~SymInputProver() = default;
  virtual SymInputFirstMessage firstMessage(const SymInputInstance& instance) = 0;
  virtual SymInputSecondMessage secondMessage(
      const SymInputInstance& instance, const SymInputFirstMessage& first,
      const std::vector<util::BigUInt>& challenges) = 0;
};

class SymInputProtocol {
 public:
  // family must have dimension n^2 (use makeProtocol1Family).
  explicit SymInputProtocol(hash::LinearHashFamily family);

  const hash::LinearHashFamily& family() const { return family_; }

  RunResult run(const SymInputInstance& instance, SymInputProver& prover,
                util::Rng& rng) const;

  template <typename ProverFactory>
  AcceptanceStats estimateAcceptance(const SymInputInstance& instance,
                                     ProverFactory&& proverFactory, std::size_t trials,
                                     util::Rng& rng) const {
    AcceptanceStats stats;
    stats.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
      auto prover = proverFactory();
      if (run(instance, *prover, rng).accepted) ++stats.accepts;
    }
    return stats;
  }

  // Max bits per node for an n-node instance with max input degree delta.
  static CostBreakdown costModel(std::size_t n, std::size_t maxInputDegree);

  bool nodeDecision(const SymInputInstance& instance, graph::Vertex v,
                    const SymInputFirstMessage& first, const util::BigUInt& ownChallenge,
                    const SymInputSecondMessage& second) const;

 private:
  hash::LinearHashFamily family_;
};

// Honest prover: finds a non-trivial automorphism of the INPUT graph and
// plays the three-chain protocol faithfully.
class HonestSymInputProver : public SymInputProver {
 public:
  explicit HonestSymInputProver(const hash::LinearHashFamily& family);
  SymInputFirstMessage firstMessage(const SymInputInstance& instance) override;
  SymInputSecondMessage secondMessage(const SymInputInstance& instance,
                                      const SymInputFirstMessage& first,
                                      const std::vector<util::BigUInt>& challenges) override;

 private:
  const hash::LinearHashFamily& family_;
};

// Cheater that commits to a fake rho with HONEST claims (hash-collision
// hope), and one that lies in the claims to try to make a fake rho look
// consistent (the consistency check must catch it).
class CheatingSymInputProver : public SymInputProver {
 public:
  enum class Strategy {
    kFakeRhoHonestClaims,  // Claims match the fake rho: caught at the root equality.
    kClaimLiar,            // Claims describe a DIFFERENT mapping than committed.
  };
  CheatingSymInputProver(const hash::LinearHashFamily& family, Strategy strategy,
                         std::uint64_t seed);
  SymInputFirstMessage firstMessage(const SymInputInstance& instance) override;
  SymInputSecondMessage secondMessage(const SymInputInstance& instance,
                                      const SymInputFirstMessage& first,
                                      const std::vector<util::BigUInt>& challenges) override;

 private:
  const hash::LinearHashFamily& family_;
  Strategy strategy_;
  util::Rng rng_;
  graph::Permutation trueRhoForClaims_;  // kClaimLiar: the mapping claims follow.
};

}  // namespace dip::core
