#include "core/sym_input_wire.hpp"

#include <stdexcept>

namespace dip::core::wire {

EncodedRound encodeSymInputFirst(const SymInputFirstMessage& message,
                                 const SymInputInstance& instance) {
  const std::size_t n = instance.network.numVertices();
  const unsigned idBits = util::bitsFor(n);
  if (n == 0) throw std::invalid_argument("encodeSymInputFirst: empty round");
  if (message.witnessPerNode.size() != n || message.rho.size() != n ||
      message.parent.size() != n || message.dist.size() != n ||
      message.claims.size() != n) {
    throw std::invalid_argument("encodeSymInputFirst: wrong per-node count");
  }
  for (graph::Vertex v = 0; v < n; ++v) {
    if (message.witnessPerNode[v] != message.witnessPerNode[0]) {
      throw std::invalid_argument(
          "encodeSymInputFirst: inconsistent witness broadcast");
    }
    if (message.claims[v].size() != instance.input.degree(v) + 1) {
      throw std::invalid_argument("encodeSymInputFirst: wrong claim count");
    }
  }

  EncodedRound round;
  round.broadcast.writeUInt(message.witnessPerNode[0], idBits);
  round.unicast.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::BitWriter& writer = round.unicast[v];
    writer.writeUInt(message.rho[v], idBits);
    writer.writeUInt(message.parent[v], idBits);
    writer.writeUInt(message.dist[v], idBits);
    for (graph::Vertex image : message.claims[v]) writer.writeUInt(image, idBits);
  }
  return round;
}

SymInputFirstMessage decodeSymInputFirst(const EncodedRound& round,
                                         const SymInputInstance& instance) {
  const std::size_t n = instance.network.numVertices();
  const unsigned idBits = util::bitsFor(n);
  requireUnicastCount(round, n);

  SymInputFirstMessage message;
  util::BitReader broadcast(round.broadcast);
  graph::Vertex witness = static_cast<graph::Vertex>(broadcast.readUInt(idBits));
  message.witnessPerNode.assign(n, witness);
  message.rho.resize(n);
  message.parent.resize(n);
  message.dist.resize(n);
  message.claims.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::BitReader reader(round.unicast[v]);
    message.rho[v] = static_cast<graph::Vertex>(reader.readUInt(idBits));
    message.parent[v] = static_cast<graph::Vertex>(reader.readUInt(idBits));
    message.dist[v] = static_cast<std::uint32_t>(reader.readUInt(idBits));
    const std::size_t claimCount = instance.input.degree(v) + 1;
    message.claims[v].reserve(claimCount);
    for (std::size_t i = 0; i < claimCount; ++i) {
      message.claims[v].push_back(static_cast<graph::Vertex>(reader.readUInt(idBits)));
    }
  }
  return message;
}

EncodedRound encodeSymInputSecond(const SymInputSecondMessage& message, std::size_t n,
                                  const hash::LinearHashFamily& family) {
  if (n == 0) throw std::invalid_argument("encodeSymInputSecond: empty round");
  if (message.indexPerNode.size() != n || message.a.size() != n ||
      message.b.size() != n || message.consC.size() != n ||
      message.consT.size() != n) {
    throw std::invalid_argument("encodeSymInputSecond: wrong per-node count");
  }
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!(message.indexPerNode[v] == message.indexPerNode[0])) {
      throw std::invalid_argument("encodeSymInputSecond: inconsistent index echo");
    }
  }

  EncodedRound round;
  round.broadcast.writeBig(message.indexPerNode[0], family.seedBits());
  round.unicast.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::BitWriter& writer = round.unicast[v];
    writer.writeBig(message.a[v], family.valueBits());
    writer.writeBig(message.b[v], family.valueBits());
    writer.writeBig(message.consC[v], family.valueBits());
    writer.writeBig(message.consT[v], family.valueBits());
  }
  return round;
}

SymInputSecondMessage decodeSymInputSecond(const EncodedRound& round, std::size_t n,
                                           const hash::LinearHashFamily& family) {
  requireUnicastCount(round, n);
  SymInputSecondMessage message;
  util::BitReader broadcast(round.broadcast);
  message.indexPerNode.assign(n, broadcast.readBig(family.seedBits()));
  message.a.resize(n);
  message.b.resize(n);
  message.consC.resize(n);
  message.consT.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::BitReader reader(round.unicast[v]);
    message.a[v] = reader.readBig(family.valueBits());
    message.b[v] = reader.readBig(family.valueBits());
    message.consC[v] = reader.readBig(family.valueBits());
    message.consT[v] = reader.readBig(family.valueBits());
  }
  return message;
}

}  // namespace dip::core::wire
