#include "core/sym_input.hpp"

#include <stdexcept>

#include "core/chain_util.hpp"
#include "core/sym_input_wire.hpp"
#include "core/wire.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "hash/batch_eval.hpp"
#include "net/audit.hpp"
#include "net/spanning.hpp"
#include "util/bitio.hpp"

namespace dip::core {

namespace {

// Per-node chain pieces for the three checks, given the committed rho and
// (possibly lying) claims. Used by both the honest prover and the verifier.
struct SymInputPieces {
  util::BigUInt a, b, consC, consT;
};

SymInputPieces piecesFor(const SymInputInstance& instance,
                         const hash::LinearHashFamily& family,
                         const util::BigUInt& index, graph::Vertex v,
                         graph::Vertex rhoV,
                         const std::vector<graph::Vertex>& claims) {
  const std::size_t n = instance.network.numVertices();
  const util::BigUInt& p = family.prime();
  std::vector<graph::Vertex> closedH = instance.input.closedNeighbors(v);

  SymInputPieces pieces;
  util::DynBitset claimedImages(n);
  for (graph::Vertex image : claims) claimedImages.set(image);

  if (hash::batchEnabled()) {
    // The index is pinned across every per-node call of a trial (prover loop
    // and the verifier's uniform echo), so the batch evaluator's rebind
    // short-circuits and all four pieces become table lookups. Values are
    // bit-identical to the scalar path below.
    thread_local hash::BatchLinearHashEvaluator batch;
    batch.rebind(family, index);
    pieces.a = batch.hashMatrixRow(v, instance.input.closedRow(v), n);
    pieces.b = batch.hashMatrixRow(rhoV, claimedImages, n);
    thread_local std::vector<std::uint64_t> consRows;
    thread_local std::vector<std::uint64_t> consCols;
    consRows.clear();
    consCols.clear();
    for (std::size_t i = 0; i < closedH.size(); ++i) {
      consRows.push_back(closedH[i]);
      consCols.push_back(claims[i]);
    }
    pieces.consC = batch.accumulateMatrixEntries(consRows, consCols, n);
    pieces.consT = batch.hashMatrixEntry(v, rhoV, closedH.size(), n);
    return pieces;
  }

  pieces.a = family.hashMatrixRow(index, v, instance.input.closedRow(v), n);
  pieces.b = family.hashMatrixRow(index, rhoV, claimedImages, n);
  for (std::size_t i = 0; i < closedH.size(); ++i) {
    pieces.consC = util::addMod(
        pieces.consC, family.hashMatrixEntry(index, closedH[i], claims[i], 1, n), p);
  }
  pieces.consT = family.hashMatrixEntry(index, v, rhoV, closedH.size(), n);
  return pieces;
}

}  // namespace

SymInputProtocol::SymInputProtocol(hash::LinearHashFamily family)
    : family_(std::move(family)) {}

bool SymInputProtocol::nodeDecision(const SymInputInstance& instance, graph::Vertex v,
                                    const SymInputFirstMessage& first,
                                    const util::BigUInt& ownChallenge,
                                    const SymInputSecondMessage& second) const {
  const std::size_t n = instance.network.numVertices();
  const util::BigUInt& p = family_.prime();

  // Broadcast consistency (witness, index echo).
  graph::Vertex witness = first.witnessPerNode[v];
  const util::BigUInt& index = second.indexPerNode[v];
  if (witness >= n || index >= p) return false;
  bool consistent = true;
  instance.network.row(v).forEachSet([&](std::size_t u) {
    if (first.witnessPerNode[u] != witness ||
        !(second.indexPerNode[u] == index)) {
      consistent = false;
    }
  });
  if (!consistent) return false;

  // Tree checks over the NETWORK graph (root fixed at node 0).
  if (v == 0) {
    if (first.dist[v] != 0) return false;
  } else {
    graph::Vertex parent = first.parent[v];
    if (parent >= n || !instance.network.hasEdge(v, parent)) return false;
    if (first.dist[v] < 1 || first.dist[parent] != first.dist[v] - 1) return false;
  }
  std::vector<graph::Vertex> children;
  instance.network.row(v).forEachSet([&](std::size_t u) {
    if (first.parent[u] == v && u != 0) {
      children.push_back(static_cast<graph::Vertex>(u));
    }
  });

  // Commitment and claims shape.
  graph::Vertex rhoV = first.rho[v];
  if (rhoV >= n) return false;
  std::vector<graph::Vertex> closedH = instance.input.closedNeighbors(v);
  const std::vector<graph::Vertex>& claims = first.claims[v];
  if (claims.size() != closedH.size()) return false;
  for (std::size_t i = 0; i < closedH.size(); ++i) {
    if (claims[i] >= n) return false;
    if (closedH[i] == v && claims[i] != rhoV) return false;  // Self-claim check.
  }

  // The witness node enforces non-triviality.
  if (v == witness && rhoV == v) return false;

  // Chain checks for all four series.
  SymInputPieces pieces = piecesFor(instance, family_, index, v, rhoV, claims);
  if (!chainLinkHolds(pieces.a, children, second.a, v, p) ||
      !chainLinkHolds(pieces.b, children, second.b, v, p) ||
      !chainLinkHolds(pieces.consC, children, second.consC, v, p) ||
      !chainLinkHolds(pieces.consT, children, second.consT, v, p)) {
    return false;
  }

  // Root equalities and echo.
  if (v == 0) {
    if (!(second.a[v] == second.b[v])) return false;
    if (!(second.consC[v] == second.consT[v])) return false;
    if (!(index == ownChallenge)) return false;
  }
  return true;
}

RunResult SymInputProtocol::run(const SymInputInstance& instance, SymInputProver& prover,
                                util::Rng& rng) const {
  const std::size_t n = instance.network.numVertices();
  if (instance.input.numVertices() != n) {
    throw std::invalid_argument("SymInputProtocol: input size mismatch");
  }
  const unsigned idBits = util::bitsFor(n);
  const std::size_t seedBits = family_.seedBits();
  const std::size_t valueBits = family_.valueBits();

  RunResult result;
  result.transcript = net::Transcript(n);
  net::Transcript& transcript = result.transcript;

  transcript.beginRound("M1: rho/claims/tree");
  SymInputFirstMessage first = prover.firstMessage(instance);
  if (first.witnessPerNode.size() != n || first.rho.size() != n ||
      first.parent.size() != n || first.dist.size() != n || first.claims.size() != n) {
    throw std::runtime_error("SymInputProver: malformed first message");
  }
  transcript.chargeBroadcastFromProver(idBits);  // Witness.
  for (graph::Vertex v = 0; v < n; ++v) {
    transcript.chargeFromProver(v, 3 * idBits + first.claims[v].size() * idBits);
  }
#if DIP_AUDIT
  net::auditChargedRound("SymInput/M1", transcript, [&] {
    return wire::encodeSymInputFirst(first, instance);
  });
#endif

  transcript.beginRound("A: hash indices");
  std::vector<util::BigUInt> challenges;
  for (graph::Vertex v = 0; v < n; ++v) {
    util::Rng nodeRng = rng.split(v);
    challenges.push_back(family_.randomIndex(nodeRng));
    transcript.chargeToProver(v, seedBits);
  }
#if DIP_AUDIT
  net::roundArena().reset();
  for (graph::Vertex v = 0; v < n; ++v) {
    net::auditCharge(
        "SymInput/A", v, transcript.roundBitsToProver(v),
        wire::encodeChallenge(challenges[v], family_, &net::roundArena()).bitCount());
  }
#endif

  transcript.beginRound("M2: index echo + chains");
  SymInputSecondMessage second = prover.secondMessage(instance, first, challenges);
  if (second.indexPerNode.size() != n || second.a.size() != n || second.b.size() != n ||
      second.consC.size() != n || second.consT.size() != n) {
    throw std::runtime_error("SymInputProver: malformed second message");
  }
  transcript.chargeBroadcastFromProver(seedBits);
  for (graph::Vertex v = 0; v < n; ++v) {
    transcript.chargeFromProver(v, 4 * valueBits);
  }
#if DIP_AUDIT
  net::auditChargedRound("SymInput/M2", transcript, [&] {
    return wire::encodeSymInputSecond(second, n, family_);
  });
#endif

  result.accepted = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!nodeDecision(instance, v, first, challenges[v], second)) {
      result.accepted = false;
      break;
    }
  }
  return result;
}

CostBreakdown SymInputProtocol::costModel(std::size_t n, std::size_t maxInputDegree) {
  const unsigned idBits = util::bitsFor(n);
  util::BigUInt pHi = util::BigUInt{100} * util::BigUInt::pow(util::BigUInt{n}, 3);
  const std::size_t hashBits = pHi.bitLength();
  CostBreakdown cost;
  cost.bitsToProverPerNode = hashBits;
  cost.bitsFromProverPerNode = idBits                                  // Witness.
                               + 3 * idBits                            // rho, t, d.
                               + (maxInputDegree + 1) * idBits         // Claims.
                               + hashBits                              // Echo.
                               + 4 * hashBits;                         // Chains.
  return cost;
}

// ---- Honest prover ----

namespace {

SymInputFirstMessage buildFirstMessage(const SymInputInstance& instance,
                                       const graph::Permutation& rho,
                                       const graph::Permutation& claimMapping) {
  const std::size_t n = instance.network.numVertices();
  net::SpanningTreeAdvice tree = net::buildBfsTree(instance.network, 0);
  SymInputFirstMessage first;
  graph::Vertex witness = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (rho[v] != v) {
      witness = v;
      break;
    }
  }
  first.witnessPerNode.assign(n, witness);
  first.rho = rho;
  first.parent = tree.parent;
  first.dist = tree.dist;
  first.claims.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    first.claims[v].reserve(instance.input.degree(v) + 1);
    instance.input.forEachClosedNeighbor(v, [&](graph::Vertex u) {
      // The self-claim must match the commitment even when lying elsewhere.
      first.claims[v].push_back(u == v ? rho[v] : claimMapping[u]);
    });
  }
  return first;
}

SymInputSecondMessage buildSecondMessage(const SymInputInstance& instance,
                                         const hash::LinearHashFamily& family,
                                         const SymInputFirstMessage& first,
                                         const util::BigUInt& index) {
  const std::size_t n = instance.network.numVertices();
  net::SpanningTreeAdvice tree{0, first.parent, first.dist};
  std::vector<util::BigUInt> aPieces(n), bPieces(n), cPieces(n), tPieces(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    SymInputPieces pieces =
        piecesFor(instance, family, index, v, first.rho[v], first.claims[v]);
    aPieces[v] = pieces.a;
    bPieces[v] = pieces.b;
    cPieces[v] = pieces.consC;
    tPieces[v] = pieces.consT;
  }
  SymInputSecondMessage second;
  second.indexPerNode.assign(n, index);
  second.a = subtreeSums(instance.network, tree, aPieces, family.prime());
  second.b = subtreeSums(instance.network, tree, bPieces, family.prime());
  second.consC = subtreeSums(instance.network, tree, cPieces, family.prime());
  second.consT = subtreeSums(instance.network, tree, tPieces, family.prime());
  return second;
}

}  // namespace

HonestSymInputProver::HonestSymInputProver(const hash::LinearHashFamily& family)
    : family_(family) {}

SymInputFirstMessage HonestSymInputProver::firstMessage(const SymInputInstance& instance) {
  auto rho = graph::findNontrivialAutomorphism(instance.input);
  if (!rho) {
    throw std::invalid_argument("HonestSymInputProver: input graph is not symmetric");
  }
  return buildFirstMessage(instance, *rho, *rho);
}

SymInputSecondMessage HonestSymInputProver::secondMessage(
    const SymInputInstance& instance, const SymInputFirstMessage& first,
    const std::vector<util::BigUInt>& challenges) {
  return buildSecondMessage(instance, family_, first, challenges[0]);
}

// ---- Cheating prover ----

CheatingSymInputProver::CheatingSymInputProver(const hash::LinearHashFamily& family,
                                               Strategy strategy, std::uint64_t seed)
    : family_(family), strategy_(strategy), rng_(seed) {}

SymInputFirstMessage CheatingSymInputProver::firstMessage(
    const SymInputInstance& instance) {
  const std::size_t n = instance.network.numVertices();
  graph::Permutation rho;
  do {
    rho = graph::randomPermutation(n, rng_);
  } while (graph::isIdentity(rho));

  if (strategy_ == Strategy::kFakeRhoHonestClaims) {
    trueRhoForClaims_ = rho;
  } else {
    // Claims follow a DIFFERENT mapping — ideally a real automorphism of
    // the input, which would make the fingerprints match if the
    // consistency check did not exist.
    auto automorphism = graph::findNontrivialAutomorphism(instance.input);
    trueRhoForClaims_ = automorphism ? *automorphism : graph::randomPermutation(n, rng_);
  }
  return buildFirstMessage(instance, rho, trueRhoForClaims_);
}

SymInputSecondMessage CheatingSymInputProver::secondMessage(
    const SymInputInstance& instance, const SymInputFirstMessage& first,
    const std::vector<util::BigUInt>& challenges) {
  // Chains are forced by the local checks; play them consistently with the
  // (possibly lying) first message and hope for a collision at the root.
  return buildSecondMessage(instance, family_, first, challenges[0]);
}

}  // namespace dip::core
