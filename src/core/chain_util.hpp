// Shared tree-aggregation helpers for prover-assisted fingerprint chains.
//
// Every protocol in the paper sums per-node hash contributions "up the
// tree": the prover supplies each node its subtree sum, and each node
// verifies it against its own piece plus its children's claimed sums — so
// every lie is caught by a purely local equation.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "net/spanning.hpp"
#include "util/biguint.hpp"

namespace dip::core {

// Honest-prover side: exact subtree sums of `pieces` along the tree, mod
// prime.
inline std::vector<util::BigUInt> subtreeSums(const graph::Graph& g,
                                              const net::SpanningTreeAdvice& tree,
                                              const std::vector<util::BigUInt>& pieces,
                                              const util::BigUInt& prime) {
  std::vector<util::BigUInt> sums(g.numVertices());
  for (graph::Vertex v : net::bottomUpOrder(tree)) {
    util::BigUInt acc = pieces[v];
    net::forEachChild(g, tree, v, [&](graph::Vertex child) {
      acc = util::addMod(acc, sums[child], prime);
    });
    sums[v] = acc;
  }
  return sums;
}

// Verifier side: does `claimed[v]` equal v's own piece plus its children's
// claimed sums (all values range-checked against the prime)?
inline bool chainLinkHolds(const util::BigUInt& ownPiece,
                           const std::vector<graph::Vertex>& children,
                           const std::vector<util::BigUInt>& claimed, graph::Vertex v,
                           const util::BigUInt& prime) {
  util::BigUInt expect = ownPiece;
  for (graph::Vertex child : children) {
    if (claimed[child] >= prime) return false;
    expect = util::addMod(expect, claimed[child], prime);
  }
  return claimed[v] == expect;
}

// Accessor form: reads only the children's entries and the own one, so
// decision code never materializes a whole-graph column of message values.
template <typename ClaimedAt>
bool chainLinkHoldsAt(const util::BigUInt& ownPiece,
                      const std::vector<graph::Vertex>& children,
                      ClaimedAt&& claimedAt, graph::Vertex v,
                      const util::BigUInt& prime) {
  util::BigUInt expect = ownPiece;
  for (graph::Vertex child : children) {
    const util::BigUInt& value = claimedAt(child);
    if (value >= prime) return false;
    expect = util::addMod(expect, value, prime);
  }
  return claimedAt(v) == expect;
}

}  // namespace dip::core
