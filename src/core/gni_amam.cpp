#include "core/gni_amam.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/chain_util.hpp"
#include "core/gni_wire.hpp"
#include "core/wire.hpp"
#include "graph/generators.hpp"
#include "graph/isomorphism.hpp"
#include "hash/batch_eval.hpp"
#include "net/audit.hpp"
#include "util/bitio.hpp"
#include "util/mathutil.hpp"
#include "util/primes.hpp"

namespace dip::core {

namespace {

__extension__ using U128 = unsigned __int128;

// Rows (with self-loops) of sigma(G_b): row sigma(v) is the image of v's
// closed G_b neighborhood under sigma.
std::vector<util::DynBitset> permutedClosedRows(const graph::Graph& gb,
                                                const graph::Permutation& sigma) {
  const std::size_t n = gb.numVertices();
  std::vector<util::DynBitset> rows(n, util::DynBitset(n));
  for (graph::Vertex v = 0; v < n; ++v) {
    rows[sigma[v]] = graph::Graph::imageOf(gb.closedRow(v), sigma);
  }
  return rows;
}

// Exhaustive Goldwasser-Sipser preimage search over S = {sigma(G_b)}.
struct PreimageHit {
  graph::Permutation sigma;
  std::uint8_t b = 0;
};
std::optional<PreimageHit> searchPreimage(const GniInstance& instance,
                                          const hash::EpsApiHash& gsHash,
                                          const hash::EpsApiHash::Seed& seed,
                                          const util::BigUInt& y) {
  const std::size_t n = instance.g0.numVertices();
  hash::EpsApiHash::PowerTable table = gsHash.preparePowers(seed);
  const std::size_t ell = gsHash.outputBits();
  if (hash::batchEnabled() && !table.powers64.empty() && ell < 64 && y.fitsU64()) {
    // Native-word search: sigma is a permutation, so row sigma(v) of
    // sigma(G_b) has exactly the bits {sigma(u) : u in N[v]} — the whole
    // candidate hash is a direct power-table accumulation with no row
    // materialization, and the outer affine layer runs in u64 (mod 2^ell is
    // a mask since ell < 64). Values match the scalar path below exactly:
    // modular sums are grouping-independent and every step stays canonical.
    const std::uint64_t p64 = gsHash.fieldPrime().toU64();
    const std::uint64_t alpha64 = seed.alpha.modU64(p64);
    const std::uint64_t beta64 = seed.beta.modU64(p64);
    const std::uint64_t mask = (std::uint64_t{1} << ell) - 1;
    const std::uint64_t y64 = y.toU64();
    for (std::uint8_t b = 0; b < 2; ++b) {
      const graph::Graph& gb = (b == 0) ? instance.g0 : instance.g1;
      graph::Permutation sigma = graph::identityPermutation(n);
      do {
        std::uint64_t acc = 0;
        for (graph::Vertex v = 0; v < n; ++v) {
          const std::size_t rowBase = static_cast<std::size_t>(sigma[v]) * n;
          gb.closedRow(v).forEachSet([&](std::size_t u) {
            const std::uint64_t term = table.powers64[rowBase + sigma[u]];
            acc += term;
            if (acc < term || acc >= p64) acc -= p64;
          });
        }
        std::uint64_t affine =
            static_cast<std::uint64_t>(static_cast<U128>(alpha64) * acc % p64);
        affine += beta64;
        if (affine < beta64 || affine >= p64) affine -= p64;
        if ((affine & mask) == y64) return PreimageHit{sigma, b};
      } while (std::next_permutation(sigma.begin(), sigma.end()));
    }
    return std::nullopt;
  }
  for (std::uint8_t b = 0; b < 2; ++b) {
    const graph::Graph& gb = (b == 0) ? instance.g0 : instance.g1;
    graph::Permutation sigma = graph::identityPermutation(n);
    do {
      if (gsHash.hashRowsPrepared(seed, table, permutedClosedRows(gb, sigma)) == y) {
        return PreimageHit{sigma, b};
      }
    } while (std::next_permutation(sigma.begin(), sigma.end()));
  }
  return std::nullopt;
}

std::vector<graph::Vertex> sortedClosed1(const GniInstance& instance, graph::Vertex v) {
  return instance.g1.closedNeighbors(v);
}

}  // namespace

GniInstance gniYesInstance(std::size_t n, util::Rng& rng) {
  GniInstance instance{graph::randomRigidConnected(n, rng),
                       graph::randomRigidConnected(n, rng)};
  while (graph::areIsomorphic(instance.g0, instance.g1)) {
    instance.g1 = graph::randomRigidConnected(n, rng);
  }
  return instance;
}

GniInstance gniNoInstance(std::size_t n, util::Rng& rng) {
  graph::Graph g0 = graph::randomRigidConnected(n, rng);
  graph::Graph g1 = graph::randomIsomorphicCopy(g0, rng);
  return GniInstance{std::move(g0), std::move(g1)};
}

GniParams GniParams::choose(std::size_t n, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("GniParams: n < 2");
  GniParams params;
  params.n = n;
  util::BigUInt nFactorial = util::factorial(n);
  // 2^ell in [4 n!, 8 n!).
  params.ell = nFactorial.bitLength() + 2;
  params.gsHash = hash::EpsApiHash::create(n, params.ell, rng);

  // Commitment-check family: dimension n^2, prime with enough headroom that
  // k repetitions x 3 checks still leave negligible collision probability.
  std::size_t checkBits = 3 * util::bitsFor(n) + 24;
  params.checkFamily = hash::LinearHashFamily(
      util::findPrimeWithBits(checkBits, rng), static_cast<std::uint64_t>(n) * n);

  // Per-round acceptance bounds (DESIGN.md 4.5). q = n!/2^ell in (1/8, 1/4].
  const double q = std::exp2(nFactorial.log2() - static_cast<double>(params.ell));
  const double fs = std::exp2(static_cast<double>(params.ell) -
                              params.gsHash.fieldPrime().log2());
  const double m = static_cast<double>(n) * static_cast<double>(n);
  // 2^ell * Pr[H(x) = H(x')] <= 2^ell (m+1)/P + (1 + 3 fs).
  const double pairFactor = (m + 1.0) * fs + 1.0 + 3.0 * fs;
  params.perRoundYesLb = 2.0 * q - 2.0 * q * q * pairFactor;
  params.perRoundNoUb = q + 3.0 * m / params.checkFamily.prime().toDouble() + 1e-9;

  // Smallest k whose threshold test separates 2/3 from 1/3 (with margin).
  for (std::size_t k = 16; k <= 16384; k *= 2) {
    std::size_t tau = static_cast<std::size_t>(
        static_cast<double>(k) * (params.perRoundYesLb + params.perRoundNoUb) / 2.0);
    if (tau == 0) tau = 1;
    double yesTail = util::binomialTailGE(k, params.perRoundYesLb, tau);
    double noTail = util::binomialTailGE(k, params.perRoundNoUb, tau);
    if (yesTail > 0.70 && noTail < 0.30) {
      params.repetitions = k;
      params.threshold = tau;
      break;
    }
  }
  if (params.repetitions == 0) {
    throw std::runtime_error("GniParams: amplification search failed");
  }
  return params;
}

GniAmamProtocol::GniAmamProtocol(GniParams params) : params_(std::move(params)) {}

bool GniAmamProtocol::nodeDecision(const GniInstance& instance, graph::Vertex v,
                                   const GniFirstMessage& first,
                                   const GniSecondMessage& second,
                                   const std::vector<GniChallenge>& ownChallenges,
                                   const util::BigUInt& ownCheckChallenge) const {
  const std::size_t n = instance.g0.numVertices();
  const std::size_t k = params_.repetitions;
  const util::BigUInt& bigP = params_.gsHash.fieldPrime();
  const util::BigUInt& checkP = params_.checkFamily.prime();
  const util::BigUInt yBound = util::BigUInt{1} << params_.ell;
  const GniM1PerNode& m1 = first.perNode[v];
  const GniM2PerNode& m2 = second.perNode[v];

  // Shape checks.
  if (m1.echo.size() != k || m1.claimed.size() != k || m1.b.size() != k ||
      m1.s.size() != k || m1.claims.size() != k) {
    return false;
  }
  if (m2.h.size() != k || m2.permI.size() != k || m2.permS.size() != k ||
      m2.consC.size() != k || m2.consT.size() != k) {
    return false;
  }
  // The protocol fixes the tree root at node 0.
  if (m1.root != 0) return false;

  // Broadcast consistency against the G0 neighbors.
  bool consistent = true;
  instance.g0.row(v).forEachSet([&](std::size_t u) {
    const GniM1PerNode& other = first.perNode[u];
    if (other.root != m1.root || other.echo != m1.echo || other.claimed != m1.claimed ||
        other.b != m1.b || !(second.perNode[u].checkSeed == m2.checkSeed)) {
      consistent = false;
    }
  });
  if (!consistent) return false;
  if (m2.checkSeed >= checkP) return false;

  // Spanning-tree local check (root fixed at 0).
  if (v == 0) {
    if (m1.dist != 0) return false;
  } else {
    if (m1.parent >= n || !instance.g0.hasEdge(v, m1.parent)) return false;
    if (m1.dist < 1 || first.perNode[m1.parent].dist != m1.dist - 1) return false;
  }
  std::vector<graph::Vertex> children;
  instance.g0.row(v).forEachSet([&](std::size_t u) {
    if (first.perNode[u].parent == v && u != 0) {
      children.push_back(static_cast<graph::Vertex>(u));
    }
  });

  const std::vector<graph::Vertex> closed1 = sortedClosed1(instance, v);

  // checkSeed is pinned for every repetition of this decision (and, under
  // the honest uniform broadcast, across all nodes of the trial), so the
  // check-family pieces batch into table lookups. The GS piece stays on the
  // scalar evaluator: its seed changes every repetition, so shared tables
  // would rebuild per call.
  const bool useBatch = hash::batchEnabled();
  thread_local hash::BatchLinearHashEvaluator checkBatch;
  thread_local std::vector<std::uint64_t> consRows;
  thread_local std::vector<std::uint64_t> consCols;
  if (useBatch) checkBatch.rebind(params_.checkFamily, m2.checkSeed);

  std::size_t claimedCount = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (!m1.claimed[j]) continue;
    ++claimedCount;
    if (m1.b[j] > 1) return false;

    // Seed and value domain checks.
    const GniChallenge& challenge = m1.echo[j];
    if (challenge.seed.a >= bigP || challenge.seed.alpha >= bigP ||
        challenge.seed.beta >= bigP || challenge.y >= yBound) {
      return false;
    }
    if (m2.h[j] >= bigP || m2.permI[j] >= checkP || m2.permS[j] >= checkP) return false;

    // Own commitment in range.
    graph::Vertex sv = m1.s[j];
    if (sv >= n) return false;

    // Assemble the row of sigma(G_b) this node vouches for.
    util::DynBitset image(n);
    if (m1.b[j] == 0) {
      bool ok = true;
      util::DynBitset closed0 = instance.g0.closedRow(v);
      closed0.forEachSet([&](std::size_t u) {
        graph::Vertex su = first.perNode[u].s[j];
        if (su >= n) {
          ok = false;
        } else {
          image.set(su);
        }
      });
      if (!ok) return false;
    } else {
      const std::vector<graph::Vertex>& claims = m1.claims[j];
      if (claims.size() != closed1.size()) return false;
      for (std::size_t i = 0; i < closed1.size(); ++i) {
        if (claims[i] >= n) return false;
        if (closed1[i] == v && claims[i] != sv) return false;  // Self-claim check.
        image.set(claims[i]);
      }
    }

    // Chain checks. Each expected value is own piece + children's sums.
    auto chainOk = [&](const util::BigUInt& piece,
                       const std::vector<util::BigUInt> GniM2PerNode::* field,
                       const util::BigUInt& prime) {
      util::BigUInt expect = piece;
      for (graph::Vertex child : children) {
        const util::BigUInt& childVal = (second.perNode[child].*field)[j];
        if (childVal >= prime) return false;
        expect = util::addMod(expect, childVal, prime);
      }
      return (m2.*field)[j] == expect;
    };

    // (i) Goldwasser-Sipser inner hash of sigma(G_b).
    util::BigUInt gsPiece = params_.gsHash.innerRow(challenge.seed, sv, image);
    if (!chainOk(gsPiece, &GniM2PerNode::h, bigP)) return false;

    // (ii) Permutation check: identity side vs sigma side.
    util::BigUInt permIPiece =
        useBatch ? checkBatch.hashMatrixEntry(v, v, 1, n)
                 : params_.checkFamily.hashMatrixEntry(m2.checkSeed, v, v, 1, n);
    util::BigUInt permSPiece =
        useBatch ? checkBatch.hashMatrixEntry(sv, sv, 1, n)
                 : params_.checkFamily.hashMatrixEntry(m2.checkSeed, sv, sv, 1, n);
    if (!chainOk(permIPiece, &GniM2PerNode::permI, checkP)) return false;
    if (!chainOk(permSPiece, &GniM2PerNode::permS, checkP)) return false;

    // (iii) Claimed-image consistency (b = 1 only).
    if (m1.b[j] == 1) {
      if (m2.consC[j] >= checkP || m2.consT[j] >= checkP) return false;
      util::BigUInt consCPiece;
      if (useBatch) {
        consRows.clear();
        consCols.clear();
        for (std::size_t i = 0; i < closed1.size(); ++i) {
          consRows.push_back(closed1[i]);
          consCols.push_back(m1.claims[j][i]);
        }
        consCPiece = checkBatch.accumulateMatrixEntries(consRows, consCols, n);
      } else {
        for (std::size_t i = 0; i < closed1.size(); ++i) {
          consCPiece = util::addMod(
              consCPiece,
              params_.checkFamily.hashMatrixEntry(m2.checkSeed, closed1[i],
                                                  m1.claims[j][i], 1, n),
              checkP);
        }
      }
      util::BigUInt consTPiece =
          useBatch
              ? checkBatch.hashMatrixEntry(v, sv,
                                           static_cast<std::uint64_t>(closed1.size()), n)
              : params_.checkFamily.hashMatrixEntry(
                    m2.checkSeed, v, sv, static_cast<std::uint64_t>(closed1.size()), n);
      if (!chainOk(consCPiece, &GniM2PerNode::consC, checkP)) return false;
      if (!chainOk(consTPiece, &GniM2PerNode::consT, checkP)) return false;
    }

    // Root-only equality and echo checks.
    if (v == 0) {
      if (!(params_.gsHash.outer(challenge.seed, m2.h[j]) == challenge.y)) return false;
      if (!(m2.permI[j] == m2.permS[j])) return false;
      if (m1.b[j] == 1 && !(m2.consC[j] == m2.consT[j])) return false;
      if (!(challenge == ownChallenges[j])) return false;
    }
  }

  if (v == 0 && !(m2.checkSeed == ownCheckChallenge)) return false;
  return claimedCount >= params_.threshold;
}

RunResult GniAmamProtocol::run(const GniInstance& instance, GniProver& prover,
                               util::Rng& rng) const {
  const std::size_t n = instance.g0.numVertices();
  if (n != params_.n) throw std::invalid_argument("GniAmamProtocol: size mismatch");
  if (instance.g1.numVertices() != n) {
    throw std::invalid_argument("GniAmamProtocol: g1 size mismatch");
  }
  const std::size_t k = params_.repetitions;
  const unsigned idBits = util::bitsFor(n);
  const std::size_t seedBlockBits = params_.gsHash.seedBits() + params_.ell;
  const std::size_t innerBits = params_.gsHash.innerValueBits();
  const std::size_t checkBits = params_.checkFamily.seedBits();

  RunResult result;
  result.transcript = net::Transcript(n);
  net::Transcript& transcript = result.transcript;

  // A1: eps-API seeds and targets.
  transcript.beginRound("A1: GS seeds + targets");
  std::vector<std::vector<GniChallenge>> challenges(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::Rng nodeRng = rng.split(v);
    challenges[v].reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      GniChallenge challenge;
      challenge.seed = params_.gsHash.randomSeed(nodeRng);
      challenge.y = nodeRng.nextBigBits(params_.ell);
      challenges[v].push_back(std::move(challenge));
    }
    transcript.chargeToProver(v, k * seedBlockBits);
  }
#if DIP_AUDIT
  for (graph::Vertex v = 0; v < n; ++v) {
    net::auditCharge("GniAmam/A1", v, transcript.roundBitsToProver(v),
                     wire::encodeGniChallenges(challenges[v], params_).bitCount());
  }
#endif

  // M1: commitments.
  transcript.beginRound("M1: echo + sigma commitments");
  GniFirstMessage first = prover.firstMessage(instance, challenges);
  if (first.perNode.size() != n) throw std::runtime_error("GniProver: malformed M1");
  transcript.chargeBroadcastFromProver(idBits               // Root.
                                       + k * seedBlockBits  // Echo.
                                       + 2 * k);            // claimed + b bits.
  for (graph::Vertex v = 0; v < n; ++v) {
    std::size_t claimBits = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (first.perNode[v].claimed[j] && first.perNode[v].b[j] == 1) {
        claimBits += first.perNode[v].claims[j].size() * idBits;
      }
    }
    transcript.chargeFromProver(v, 2 * idBits       // t_v, d_v.
                                       + k * idBits  // s values.
                                       + claimBits);
  }
#if DIP_AUDIT
  net::auditChargedRound("GniAmam/M1", transcript, [&] {
    return wire::encodeGniFirst(first, instance, params_);
  });
#endif

  // A2: fresh commitment-check indices.
  transcript.beginRound("A2: check indices");
  std::vector<util::BigUInt> checkChallenges;
  checkChallenges.reserve(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::Rng nodeRng = rng.split(0x10000u + v);
    checkChallenges.push_back(params_.checkFamily.randomIndex(nodeRng));
    transcript.chargeToProver(v, checkBits);
  }
#if DIP_AUDIT
  net::roundArena().reset();
  for (graph::Vertex v = 0; v < n; ++v) {
    net::auditCharge("GniAmam/A2", v, transcript.roundBitsToProver(v),
                     wire::encodeChallenge(checkChallenges[v], params_.checkFamily,
                                           &net::roundArena())
                         .bitCount());
  }
#endif

  // M2: chain values.
  transcript.beginRound("M2: check echo + chains");
  GniSecondMessage second =
      prover.secondMessage(instance, challenges, first, checkChallenges);
  if (second.perNode.size() != n) throw std::runtime_error("GniProver: malformed M2");
  transcript.chargeBroadcastFromProver(checkBits);
  for (graph::Vertex v = 0; v < n; ++v) {
    std::size_t bits = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (!first.perNode[v].claimed[j]) continue;
      bits += innerBits + 2 * checkBits;
      if (first.perNode[v].b[j] == 1) bits += 2 * checkBits;
    }
    transcript.chargeFromProver(v, bits);
  }
#if DIP_AUDIT
  net::auditChargedRound("GniAmam/M2", transcript, [&] {
    return wire::encodeGniSecond(second, first, instance, params_);
  });
#endif

  result.accepted = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!nodeDecision(instance, v, first, second, challenges[v], checkChallenges[v])) {
      result.accepted = false;
      break;
    }
  }
  return result;
}

AcceptanceStats GniAmamProtocol::estimatePerRoundHit(const GniInstance& instance,
                                                     std::size_t trials,
                                                     util::Rng& rng) const {
  AcceptanceStats stats;
  stats.trials = trials;
  for (std::size_t t = 0; t < trials; ++t) {
    if (perRoundHitOnce(instance, rng)) ++stats.accepts;
  }
  return stats;
}

bool GniAmamProtocol::perRoundHitOnce(const GniInstance& instance, util::Rng& rng) const {
  hash::EpsApiHash::Seed seed = params_.gsHash.randomSeed(rng);
  util::BigUInt y = rng.nextBigBits(params_.ell);
  return searchPreimage(instance, params_.gsHash, seed, y).has_value();
}

CostBreakdown GniAmamProtocol::costModel(std::size_t n, std::size_t repetitions) {
  const unsigned idBits = util::bitsFor(n);
  // ell ~ log2(n!) + 3; field prime ~ ell + 2 log2 n + 8 bits (create()).
  double log2Fact = 0.0;
  for (std::size_t i = 2; i <= n; ++i) log2Fact += std::log2(static_cast<double>(i));
  const std::size_t ell = static_cast<std::size_t>(log2Fact) + 3;
  const std::size_t fieldBits = ell + 2 * util::bitsFor(n) + 8;
  const std::size_t seedBlockBits = 3 * fieldBits + ell;
  const std::size_t checkBits = 3 * util::bitsFor(n) + 24;
  const std::size_t k = repetitions;

  CostBreakdown cost;
  cost.bitsToProverPerNode = k * seedBlockBits + checkBits;  // A1 + A2.
  cost.bitsFromProverPerNode = idBits + k * seedBlockBits + 2 * k  // M1 broadcast.
                               + 2 * idBits + k * idBits           // Tree + s.
                               + k * n * idBits                    // Claims (worst case).
                               + checkBits                         // M2 broadcast.
                               + k * (fieldBits + 4 * checkBits);  // Chains.
  return cost;
}

// ---- Honest prover ----

HonestGniProver::HonestGniProver(const GniParams& params) : params_(params) {}

GniFirstMessage HonestGniProver::firstMessage(
    const GniInstance& instance,
    const std::vector<std::vector<GniChallenge>>& challenges) {
  const std::size_t n = instance.g0.numVertices();
  const std::size_t k = params_.repetitions;
  const std::vector<GniChallenge>& rootChallenges = challenges[0];

  lastClaims_.assign(k, 0);
  lastFound_.assign(k, std::nullopt);
  for (std::size_t j = 0; j < k; ++j) {
    auto hit = searchPreimage(instance, params_.gsHash, rootChallenges[j].seed,
                              rootChallenges[j].y);
    if (hit) {
      lastClaims_[j] = 1;
      lastFound_[j] = Found{std::move(hit->sigma), hit->b};
    }
  }

  net::SpanningTreeAdvice tree = net::buildBfsTree(instance.g0, 0);
  GniFirstMessage first;
  first.perNode.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    GniM1PerNode& m1 = first.perNode[v];
    m1.root = 0;
    m1.parent = tree.parent[v];
    m1.dist = tree.dist[v];
    m1.echo = rootChallenges;
    m1.claimed = lastClaims_;
    m1.b.assign(k, 0);
    m1.s.assign(k, 0);
    m1.claims.resize(k);
    for (std::size_t j = 0; j < k; ++j) {
      if (!lastFound_[j]) continue;
      const Found& found = *lastFound_[j];
      m1.b[j] = found.b;
      m1.s[j] = found.sigma[v];
      if (found.b == 1) {
        m1.claims[j].reserve(instance.g1.degree(v) + 1);
        instance.g1.forEachClosedNeighbor(
            v, [&](graph::Vertex u) { m1.claims[j].push_back(found.sigma[u]); });
      }
    }
  }
  return first;
}

GniSecondMessage HonestGniProver::secondMessage(
    const GniInstance& instance, const std::vector<std::vector<GniChallenge>>& challenges,
    const GniFirstMessage& /*first*/, const std::vector<util::BigUInt>& checkChallenges) {
  const std::size_t n = instance.g0.numVertices();
  const std::size_t k = params_.repetitions;
  const util::BigUInt& bigP = params_.gsHash.fieldPrime();
  const util::BigUInt& checkP = params_.checkFamily.prime();
  const util::BigUInt& checkSeed = checkChallenges[0];
  net::SpanningTreeAdvice tree = net::buildBfsTree(instance.g0, 0);

  GniSecondMessage second;
  second.perNode.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    GniM2PerNode& m2 = second.perNode[v];
    m2.checkSeed = checkSeed;
    m2.h.assign(k, util::BigUInt{});
    m2.permI.assign(k, util::BigUInt{});
    m2.permS.assign(k, util::BigUInt{});
    m2.consC.assign(k, util::BigUInt{});
    m2.consT.assign(k, util::BigUInt{});
  }

  for (std::size_t j = 0; j < k; ++j) {
    if (!lastFound_[j]) continue;
    const Found& found = *lastFound_[j];
    const graph::Graph& gb = (found.b == 0) ? instance.g0 : instance.g1;
    const GniChallenge& challenge = challenges[0][j];

    std::vector<util::BigUInt> gsPieces(n), permIPieces(n), permSPieces(n);
    std::vector<util::BigUInt> consCPieces(n), consTPieces(n);
    const bool useBatch = hash::batchEnabled();
    hash::EpsApiHash::RowHasher rowHasher(params_.gsHash, challenge.seed);
    thread_local hash::BatchLinearHashEvaluator gsBatch;
    thread_local hash::BatchLinearHashEvaluator checkBatch;
    thread_local std::vector<std::uint64_t> gsIdx;
    thread_local std::vector<util::DynBitset> gsRows;
    thread_local std::vector<std::uint64_t> consRows;
    thread_local std::vector<std::uint64_t> consCols;
    if (useBatch) {
      // The GS seed is pinned for the whole repetition and checkSeed for the
      // whole message: all row and entry hashes become table lookups.
      gsBatch.rebind(params_.gsHash.inner(), challenge.seed.a);
      checkBatch.rebind(params_.checkFamily, checkSeed);
      gsIdx.clear();
      gsRows.clear();
    }
    for (graph::Vertex v = 0; v < n; ++v) {
      util::DynBitset image = graph::Graph::imageOf(gb.closedRow(v), found.sigma);
      if (useBatch) {
        gsIdx.push_back(found.sigma[v]);
        gsRows.push_back(std::move(image));
        permIPieces[v] = checkBatch.hashMatrixEntry(v, v, 1, n);
        permSPieces[v] =
            checkBatch.hashMatrixEntry(found.sigma[v], found.sigma[v], 1, n);
      } else {
        gsPieces[v] = rowHasher.innerRow(found.sigma[v], image);
        permIPieces[v] = params_.checkFamily.hashMatrixEntry(checkSeed, v, v, 1, n);
        permSPieces[v] = params_.checkFamily.hashMatrixEntry(checkSeed, found.sigma[v],
                                                             found.sigma[v], 1, n);
      }
      if (found.b == 1) {
        const std::size_t closedCount = instance.g1.degree(v) + 1;
        if (useBatch) {
          consRows.clear();
          consCols.clear();
          instance.g1.forEachClosedNeighbor(v, [&](graph::Vertex u) {
            consRows.push_back(u);
            consCols.push_back(found.sigma[u]);
          });
          consCPieces[v] = checkBatch.accumulateMatrixEntries(consRows, consCols, n);
          consTPieces[v] = checkBatch.hashMatrixEntry(v, found.sigma[v],
                                                      closedCount, n);
        } else {
          util::BigUInt acc;
          instance.g1.forEachClosedNeighbor(v, [&](graph::Vertex u) {
            acc = util::addMod(acc,
                               params_.checkFamily.hashMatrixEntry(
                                   checkSeed, u, found.sigma[u], 1, n),
                               checkP);
          });
          consCPieces[v] = acc;
          consTPieces[v] = params_.checkFamily.hashMatrixEntry(
              checkSeed, v, found.sigma[v], closedCount, n);
        }
      }
    }
    if (useBatch) {
      gsBatch.hashMatrixRows(gsIdx, gsRows, n, gsPieces);
    }

    auto gsSums = subtreeSums(instance.g0, tree, gsPieces, bigP);
    auto permISums = subtreeSums(instance.g0, tree, permIPieces, checkP);
    auto permSSums = subtreeSums(instance.g0, tree, permSPieces, checkP);
    std::vector<util::BigUInt> consCSums, consTSums;
    if (found.b == 1) {
      consCSums = subtreeSums(instance.g0, tree, consCPieces, checkP);
      consTSums = subtreeSums(instance.g0, tree, consTPieces, checkP);
    }
    for (graph::Vertex v = 0; v < n; ++v) {
      second.perNode[v].h[j] = gsSums[v];
      second.perNode[v].permI[j] = permISums[v];
      second.perNode[v].permS[j] = permSSums[v];
      if (found.b == 1) {
        second.perNode[v].consC[j] = consCSums[v];
        second.perNode[v].consT[j] = consTSums[v];
      }
    }
  }
  return second;
}

// ---- Non-permutation adversary ----

NonPermutationGniProver::NonPermutationGniProver(const GniParams& params,
                                                 std::uint64_t seed)
    : params_(params), rng_(seed) {}

GniFirstMessage NonPermutationGniProver::firstMessage(
    const GniInstance& instance,
    const std::vector<std::vector<GniChallenge>>& challenges) {
  // Claim every repetition with a random NON-permutation mapping; the
  // permutation check must catch this (up to hash collision).
  const std::size_t n = instance.g0.numVertices();
  const std::size_t k = params_.repetitions;
  net::SpanningTreeAdvice tree = net::buildBfsTree(instance.g0, 0);

  std::vector<std::vector<graph::Vertex>> sigmas(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<graph::Vertex>& sigma = sigmas[j];
    sigma.resize(n);
    for (auto& value : sigma) value = static_cast<graph::Vertex>(rng_.nextBelow(n));
    sigma[0] = sigma[n - 1];  // Force a collision: definitely not injective.
  }

  GniFirstMessage first;
  first.perNode.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    GniM1PerNode& m1 = first.perNode[v];
    m1.root = 0;
    m1.parent = tree.parent[v];
    m1.dist = tree.dist[v];
    m1.echo = challenges[0];
    m1.claimed.assign(k, 1);
    m1.b.assign(k, 0);
    m1.s.assign(k, 0);
    m1.claims.resize(k);
    for (std::size_t j = 0; j < k; ++j) m1.s[j] = sigmas[j][v];
  }
  return first;
}

GniSecondMessage NonPermutationGniProver::secondMessage(
    const GniInstance& instance, const std::vector<std::vector<GniChallenge>>& challenges,
    const GniFirstMessage& first, const std::vector<util::BigUInt>& checkChallenges) {
  // Build fully consistent chains for the committed mappings; only the
  // root's permI == permS equality can fail (and must, w.h.p.).
  const std::size_t n = instance.g0.numVertices();
  const std::size_t k = params_.repetitions;
  const util::BigUInt& bigP = params_.gsHash.fieldPrime();
  const util::BigUInt& checkP = params_.checkFamily.prime();
  const util::BigUInt& checkSeed = checkChallenges[0];
  net::SpanningTreeAdvice tree = net::buildBfsTree(instance.g0, 0);

  GniSecondMessage second;
  second.perNode.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    GniM2PerNode& m2 = second.perNode[v];
    m2.checkSeed = checkSeed;
    m2.h.assign(k, util::BigUInt{});
    m2.permI.assign(k, util::BigUInt{});
    m2.permS.assign(k, util::BigUInt{});
    m2.consC.assign(k, util::BigUInt{});
    m2.consT.assign(k, util::BigUInt{});
  }

  for (std::size_t j = 0; j < k; ++j) {
    std::vector<graph::Vertex> sigma(n);
    for (graph::Vertex v = 0; v < n; ++v) sigma[v] = first.perNode[v].s[j];
    const GniChallenge& challenge = challenges[0][j];

    std::vector<util::BigUInt> gsPieces(n), permIPieces(n), permSPieces(n);
    hash::EpsApiHash::RowHasher rowHasher(params_.gsHash, challenge.seed);
    for (graph::Vertex v = 0; v < n; ++v) {
      // Mirror exactly what each node will recompute: the image of its
      // closed G0 row under the committed s values.
      util::DynBitset image(n);
      instance.g0.closedRow(v).forEachSet([&](std::size_t u) { image.set(sigma[u]); });
      gsPieces[v] = rowHasher.innerRow(sigma[v], image);
      permIPieces[v] = params_.checkFamily.hashMatrixEntry(checkSeed, v, v, 1, n);
      permSPieces[v] =
          params_.checkFamily.hashMatrixEntry(checkSeed, sigma[v], sigma[v], 1, n);
    }
    auto gsSums = subtreeSums(instance.g0, tree, gsPieces, bigP);
    auto permISums = subtreeSums(instance.g0, tree, permIPieces, checkP);
    auto permSSums = subtreeSums(instance.g0, tree, permSPieces, checkP);
    for (graph::Vertex v = 0; v < n; ++v) {
      second.perNode[v].h[j] = gsSums[v];
      second.perNode[v].permI[j] = permISums[v];
      second.perNode[v].permS[j] = permSSums[v];
    }
  }
  return second;
}

}  // namespace dip::core
