#include "core/wire.hpp"

#include <stdexcept>
#include <string>

namespace dip::core::wire {

namespace {

unsigned idBitsFor(std::size_t n) { return util::bitsFor(n); }

void requireConsistentBroadcast(bool consistent) {
  if (!consistent) {
    throw std::invalid_argument(
        "wire: broadcast fields are inconsistent; wire formats encode the "
        "honest message shape");
  }
}

void requireFieldCount(std::size_t actual, std::size_t expected, const char* what) {
  if (actual != expected) {
    throw std::invalid_argument(std::string("wire: ") + what +
                                " has wrong per-node count");
  }
}

void requireNonEmpty(std::size_t n) {
  if (n == 0) throw std::invalid_argument("wire: empty round (n must be positive)");
}

// Empty round with the requested storage backend: heap writers, or arena
// writers when the caller routes the encoding through a per-worker arena.
EncodedRound makeRound(std::size_t n, util::Arena* arena) {
  EncodedRound round;
  if (arena != nullptr) {
    round.broadcast = util::BitWriter(*arena);
    round.unicast.assign(n, util::BitWriter(*arena));
  } else {
    round.unicast.resize(n);
  }
  return round;
}

}  // namespace

void requireUnicastCount(const EncodedRound& round, std::size_t n) {
  if (round.unicast.size() != n) {
    throw std::invalid_argument("wire: round has wrong unicast payload count");
  }
}

// ---- Protocol 1 ----

EncodedRound encodeSymDmamFirst(const SymDmamFirstMessage& message, std::size_t n,
                                util::Arena* arena) {
  const unsigned idBits = idBitsFor(n);
  requireNonEmpty(n);
  requireFieldCount(message.rootPerNode.size(), n, "rootPerNode");
  requireFieldCount(message.rho.size(), n, "rho");
  requireFieldCount(message.parent.size(), n, "parent");
  requireFieldCount(message.dist.size(), n, "dist");
  EncodedRound round = makeRound(n, arena);
  bool consistent = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (message.rootPerNode[v] != message.rootPerNode[0]) consistent = false;
  }
  requireConsistentBroadcast(consistent);

  round.broadcast.writeUInt(message.rootPerNode[0], idBits);
  for (graph::Vertex v = 0; v < n; ++v) {
    round.unicast[v].writeUInt(message.rho[v], idBits);
    round.unicast[v].writeUInt(message.parent[v], idBits);
    round.unicast[v].writeUInt(message.dist[v], idBits);
  }
  return round;
}

SymDmamFirstMessage decodeSymDmamFirst(const EncodedRound& round, std::size_t n) {
  const unsigned idBits = idBitsFor(n);
  requireUnicastCount(round, n);
  SymDmamFirstMessage message;
  util::BitReader broadcast(round.broadcast);
  graph::Vertex root = static_cast<graph::Vertex>(broadcast.readUInt(idBits));
  message.rootPerNode.assign(n, root);
  message.rho.resize(n);
  message.parent.resize(n);
  message.dist.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::BitReader reader(round.unicast[v]);
    message.rho[v] = static_cast<graph::Vertex>(reader.readUInt(idBits));
    message.parent[v] = static_cast<graph::Vertex>(reader.readUInt(idBits));
    message.dist[v] = static_cast<std::uint32_t>(reader.readUInt(idBits));
  }
  return message;
}

EncodedRound encodeSymDmamSecond(const SymDmamSecondMessage& message, std::size_t n,
                                 const hash::LinearHashFamily& family,
                                 util::Arena* arena) {
  requireNonEmpty(n);
  requireFieldCount(message.indexPerNode.size(), n, "indexPerNode");
  requireFieldCount(message.a.size(), n, "a");
  requireFieldCount(message.b.size(), n, "b");
  EncodedRound round = makeRound(n, arena);
  bool consistent = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!(message.indexPerNode[v] == message.indexPerNode[0])) consistent = false;
  }
  requireConsistentBroadcast(consistent);

  round.broadcast.writeBig(message.indexPerNode[0], family.seedBits());
  for (graph::Vertex v = 0; v < n; ++v) {
    round.unicast[v].writeBig(message.a[v], family.valueBits());
    round.unicast[v].writeBig(message.b[v], family.valueBits());
  }
  return round;
}

SymDmamSecondMessage decodeSymDmamSecond(const EncodedRound& round, std::size_t n,
                                         const hash::LinearHashFamily& family) {
  requireUnicastCount(round, n);
  SymDmamSecondMessage message;
  util::BitReader broadcast(round.broadcast);
  message.indexPerNode.assign(n, broadcast.readBig(family.seedBits()));
  message.a.resize(n);
  message.b.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::BitReader reader(round.unicast[v]);
    message.a[v] = reader.readBig(family.valueBits());
    message.b[v] = reader.readBig(family.valueBits());
  }
  return message;
}

// ---- Protocol 2 ----

EncodedRound encodeSymDam(const SymDamMessage& message, std::size_t n,
                          const hash::LinearHashFamily& family, util::Arena* arena) {
  const unsigned idBits = idBitsFor(n);
  requireNonEmpty(n);
  requireFieldCount(message.rhoPerNode.size(), n, "rhoPerNode");
  requireFieldCount(message.indexPerNode.size(), n, "indexPerNode");
  requireFieldCount(message.rootPerNode.size(), n, "rootPerNode");
  requireFieldCount(message.parent.size(), n, "parent");
  requireFieldCount(message.dist.size(), n, "dist");
  requireFieldCount(message.a.size(), n, "a");
  requireFieldCount(message.b.size(), n, "b");
  requireFieldCount(message.rhoPerNode[0].size(), n, "rhoPerNode[0]");
  EncodedRound round = makeRound(n, arena);
  bool consistent = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (message.rhoPerNode[v] != message.rhoPerNode[0] ||
        !(message.indexPerNode[v] == message.indexPerNode[0]) ||
        message.rootPerNode[v] != message.rootPerNode[0]) {
      consistent = false;
    }
  }
  requireConsistentBroadcast(consistent);

  for (graph::Vertex image : message.rhoPerNode[0]) {
    round.broadcast.writeUInt(image, idBits);
  }
  round.broadcast.writeBig(message.indexPerNode[0], family.seedBits());
  round.broadcast.writeUInt(message.rootPerNode[0], idBits);
  for (graph::Vertex v = 0; v < n; ++v) {
    round.unicast[v].writeUInt(message.parent[v], idBits);
    round.unicast[v].writeUInt(message.dist[v], idBits);
    round.unicast[v].writeBig(message.a[v], family.valueBits());
    round.unicast[v].writeBig(message.b[v], family.valueBits());
  }
  return round;
}

SymDamMessage decodeSymDam(const EncodedRound& round, std::size_t n,
                           const hash::LinearHashFamily& family) {
  const unsigned idBits = idBitsFor(n);
  requireUnicastCount(round, n);
  SymDamMessage message;
  util::BitReader broadcast(round.broadcast);
  std::vector<graph::Vertex> rho(n);
  for (graph::Vertex& image : rho) {
    image = static_cast<graph::Vertex>(broadcast.readUInt(idBits));
  }
  message.rhoPerNode.assign(n, rho);
  message.indexPerNode.assign(n, broadcast.readBig(family.seedBits()));
  message.rootPerNode.assign(
      n, static_cast<graph::Vertex>(broadcast.readUInt(idBits)));
  message.parent.resize(n);
  message.dist.resize(n);
  message.a.resize(n);
  message.b.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::BitReader reader(round.unicast[v]);
    message.parent[v] = static_cast<graph::Vertex>(reader.readUInt(idBits));
    message.dist[v] = static_cast<std::uint32_t>(reader.readUInt(idBits));
    message.a[v] = reader.readBig(family.valueBits());
    message.b[v] = reader.readBig(family.valueBits());
  }
  return message;
}

// ---- DSym ----

EncodedRound encodeDSym(const DSymMessage& message, std::size_t n,
                        const hash::LinearHashFamily& family, util::Arena* arena) {
  const unsigned idBits = idBitsFor(n);
  requireNonEmpty(n);
  requireFieldCount(message.indexPerNode.size(), n, "indexPerNode");
  requireFieldCount(message.rootPerNode.size(), n, "rootPerNode");
  requireFieldCount(message.parent.size(), n, "parent");
  requireFieldCount(message.dist.size(), n, "dist");
  requireFieldCount(message.a.size(), n, "a");
  requireFieldCount(message.b.size(), n, "b");
  EncodedRound round = makeRound(n, arena);
  bool consistent = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!(message.indexPerNode[v] == message.indexPerNode[0]) ||
        message.rootPerNode[v] != message.rootPerNode[0]) {
      consistent = false;
    }
  }
  requireConsistentBroadcast(consistent);

  round.broadcast.writeBig(message.indexPerNode[0], family.seedBits());
  round.broadcast.writeUInt(message.rootPerNode[0], idBits);
  for (graph::Vertex v = 0; v < n; ++v) {
    round.unicast[v].writeUInt(message.parent[v], idBits);
    round.unicast[v].writeUInt(message.dist[v], idBits);
    round.unicast[v].writeBig(message.a[v], family.valueBits());
    round.unicast[v].writeBig(message.b[v], family.valueBits());
  }
  return round;
}

DSymMessage decodeDSym(const EncodedRound& round, std::size_t n,
                       const hash::LinearHashFamily& family) {
  const unsigned idBits = idBitsFor(n);
  requireUnicastCount(round, n);
  DSymMessage message;
  util::BitReader broadcast(round.broadcast);
  message.indexPerNode.assign(n, broadcast.readBig(family.seedBits()));
  message.rootPerNode.assign(
      n, static_cast<graph::Vertex>(broadcast.readUInt(idBits)));
  message.parent.resize(n);
  message.dist.resize(n);
  message.a.resize(n);
  message.b.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::BitReader reader(round.unicast[v]);
    message.parent[v] = static_cast<graph::Vertex>(reader.readUInt(idBits));
    message.dist[v] = static_cast<std::uint32_t>(reader.readUInt(idBits));
    message.a[v] = reader.readBig(family.valueBits());
    message.b[v] = reader.readBig(family.valueBits());
  }
  return message;
}

// ---- Challenges ----

util::BitWriter encodeChallenge(const util::BigUInt& index,
                                const hash::LinearHashFamily& family,
                                util::Arena* arena) {
  util::BitWriter writer = arena ? util::BitWriter(*arena) : util::BitWriter();
  writer.writeBig(index, family.seedBits());
  return writer;
}

util::BigUInt decodeChallenge(const util::BitWriter& encoded,
                              const hash::LinearHashFamily& family) {
  util::BitReader reader(encoded);
  return reader.readBig(family.seedBits());
}

}  // namespace dip::core::wire
