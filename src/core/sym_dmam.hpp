// Protocol 1 (Section 3.1): the O(log n)-bit dMAM protocol for Graph
// Symmetry — Theorem 1.1, Sym in dMAM[O(log n)].
//
// Round structure (Merlin-Arthur-Merlin):
//   M1  prover -> nodes:  broadcast root r; unicast (rho_v, t_v, d_v) —
//       the claimed automorphism image, spanning-tree parent and distance.
//   A   nodes -> prover:  each node sends a random hash index i_v in [|H|].
//   M2  prover -> nodes:  broadcast index i (supposedly i_r); unicast
//       subtree hash values a_v, b_v in [p].
// Each node then verifies (Protocol 1, lines 1-4):
//   1. spanning-tree local checks, broadcast consistency;
//   2. C(v) = children under the claimed tree;
//   3. a_v = h_i([v, N(v)]) + sum of children's a values, and
//      b_v = h_i([rho_v, rho(N(v))]) + sum of children's b values, where
//      rho(N(v)) is computable because v sees its neighbors' rho values;
//   4. root only: a_r = b_r, rho_r != r, i = i_r.
//
// Soundness hinges on the commit-then-challenge order: the hash seed is
// drawn AFTER the prover fixed rho, so if rho is not an automorphism the
// two matrix fingerprints collide with probability <= n^2/p <= 1/(10n).
#pragma once

#include <memory>
#include <vector>

#include "core/result.hpp"
#include "graph/graph.hpp"
#include "hash/linear_hash.hpp"
#include "net/spanning.hpp"
#include "util/rng.hpp"

namespace dip::core {

// M1: the prover's commitment. Broadcast fields are per-node so that
// adversarial provers can attempt inconsistent "broadcasts" (which the
// neighbor-consistency check must catch).
struct SymDmamFirstMessage {
  std::vector<graph::Vertex> rootPerNode;   // Broadcast: claimed root.
  std::vector<graph::Vertex> rho;           // Unicast: claimed image rho_v.
  std::vector<graph::Vertex> parent;        // Unicast: claimed parent t_v.
  std::vector<std::uint32_t> dist;          // Unicast: claimed distance d_v.
};

// M2: the prover's response to the challenge.
struct SymDmamSecondMessage {
  std::vector<util::BigUInt> indexPerNode;  // Broadcast: claimed root index i.
  std::vector<util::BigUInt> a;             // Unicast: subtree hash of sum [u, N(u)].
  std::vector<util::BigUInt> b;             // Unicast: subtree hash of sum [rho(u), rho(N(u))].
};

class SymDmamProver {
 public:
  virtual ~SymDmamProver() = default;
  virtual SymDmamFirstMessage firstMessage(const graph::Graph& g) = 0;
  virtual SymDmamSecondMessage secondMessage(
      const graph::Graph& g, const SymDmamFirstMessage& first,
      const std::vector<util::BigUInt>& challenges) = 0;
};

class SymDmamProtocol {
 public:
  // The family should come from makeProtocol1Family(n, rng) for the paper's
  // parameters; any family over dimension n^2 is accepted (ablations).
  explicit SymDmamProtocol(hash::LinearHashFamily family);

  const hash::LinearHashFamily& family() const { return family_; }

  // Executes one interaction. Node randomness derives from rng. The graph
  // must be connected (the model assumes a connected network).
  RunResult run(const graph::Graph& g, SymDmamProver& prover, util::Rng& rng) const;

  // Repeated independent executions; proverFactory() may be stateful per run.
  template <typename ProverFactory>
  AcceptanceStats estimateAcceptance(const graph::Graph& g, ProverFactory&& proverFactory,
                                     std::size_t trials, util::Rng& rng) const {
    AcceptanceStats stats;
    stats.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
      auto prover = proverFactory();
      if (run(g, *prover, rng).accepted) ++stats.accepts;
    }
    return stats;
  }

  // Structural per-node message sizes for an n-vertex instance (paper
  // parameters p in [10 n^3, 100 n^3]); no execution, no prime search.
  static CostBreakdown costModel(std::size_t n);

  // Node v's decision function, exposed for white-box tests. Only v's local
  // view is consulted: its closed neighborhood, its own challenge, and the
  // M1/M2 fields of itself and its neighbors.
  bool nodeDecision(const graph::Graph& g, graph::Vertex v,
                    const SymDmamFirstMessage& first,
                    const util::BigUInt& ownChallenge,
                    const SymDmamSecondMessage& second) const;

 private:
  // nodeDecision with optionally precomputed per-node row hashes (the
  // expectA/expectB bases before child sums). Non-null pointers must hold,
  // for every v, exactly the values the scalar recomputation would produce;
  // run() guarantees this by batching only when the index is a uniform
  // broadcast and every rho entry is in range.
  bool nodeDecisionAt(const graph::Graph& g, graph::Vertex v,
                      const SymDmamFirstMessage& first,
                      const util::BigUInt& ownChallenge,
                      const SymDmamSecondMessage& second,
                      const util::BigUInt* expectABase,
                      const util::BigUInt* expectBBase) const;

  hash::LinearHashFamily family_;
};

// ---- Provers ----

// The honest prover of Theorem 3.4: finds a non-trivial automorphism, roots
// a BFS tree at a moved vertex, echoes the root's challenge, and aggregates
// subtree hashes exactly as equation (1) prescribes.
class HonestSymDmamProver : public SymDmamProver {
 public:
  explicit HonestSymDmamProver(const hash::LinearHashFamily& family);
  SymDmamFirstMessage firstMessage(const graph::Graph& g) override;
  SymDmamSecondMessage secondMessage(const graph::Graph& g,
                                     const SymDmamFirstMessage& first,
                                     const std::vector<util::BigUInt>& challenges) override;

 private:
  const hash::LinearHashFamily& family_;
};

// Cheating prover for NON-symmetric graphs: commits to a fake rho produced
// by a pluggable strategy, then plays the rest of the protocol honestly
// (correct tree, correct chain sums for its fake rho). This is the optimal
// cheating strategy class — every other deviation is caught
// deterministically by a local check — so its acceptance rate measures the
// soundness error <= n^2/p directly.
class CheatingRhoProver : public SymDmamProver {
 public:
  enum class Strategy {
    kRandomPermutation,   // Uniform non-identity permutation.
    kTransposition,       // Swap two same-degree vertices (best effort).
    kIdentity,            // rho = id: must be caught by the rho_r != r check.
  };
  CheatingRhoProver(const hash::LinearHashFamily& family, Strategy strategy,
                    std::uint64_t seed);
  SymDmamFirstMessage firstMessage(const graph::Graph& g) override;
  SymDmamSecondMessage secondMessage(const graph::Graph& g,
                                     const SymDmamFirstMessage& first,
                                     const std::vector<util::BigUInt>& challenges) override;

 private:
  const hash::LinearHashFamily& family_;
  Strategy strategy_;
  util::Rng rng_;
};

// Corrupts one subtree hash value of an otherwise honest run; the local
// chain check at the corrupted node's parent (or the node itself) must
// catch this deterministically.
class HashChainLiarProver : public SymDmamProver {
 public:
  HashChainLiarProver(const hash::LinearHashFamily& family, std::uint64_t seed);
  SymDmamFirstMessage firstMessage(const graph::Graph& g) override;
  SymDmamSecondMessage secondMessage(const graph::Graph& g,
                                     const SymDmamFirstMessage& first,
                                     const std::vector<util::BigUInt>& challenges) override;

 private:
  const hash::LinearHashFamily& family_;
  HonestSymDmamProver inner_;
  util::Rng rng_;
};

// Shared helper: per-node chain contributions and subtree aggregation for
// the [u, N(u)] / [rho(u), rho(N(u))] fingerprints (used by Protocols 1, 2
// and the DSym protocol).
struct ChainValues {
  std::vector<util::BigUInt> a;
  std::vector<util::BigUInt> b;
};
ChainValues aggregateChains(const graph::Graph& g, const hash::LinearHashFamily& family,
                            const util::BigUInt& index,
                            const std::vector<graph::Vertex>& rho,
                            const net::SpanningTreeAdvice& tree);

}  // namespace dip::core
