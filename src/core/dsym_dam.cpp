#include "core/dsym_dam.hpp"

#include <stdexcept>

#include "core/wire.hpp"
#include "hash/batch_eval.hpp"
#include "net/audit.hpp"
#include "net/spanning.hpp"
#include "util/bitio.hpp"

namespace dip::core {

DSymDamProtocol::DSymDamProtocol(graph::DSymLayout layout, hash::LinearHashFamily family)
    : layout_(layout), family_(std::move(family)), sigma_(graph::dsymSigma(layout_)) {
  const std::uint64_t n = layout_.numVertices;
  if (family_.dimension() != n * n) {
    throw std::invalid_argument("DSymDamProtocol: family dimension mismatch");
  }
}

bool DSymDamProtocol::nodeDecision(const graph::Graph& g, graph::Vertex v,
                                   const DSymMessage& msg,
                                   const util::BigUInt& ownChallenge) const {
  return nodeDecisionAt(g, v, msg, ownChallenge, nullptr, nullptr);
}

bool DSymDamProtocol::nodeDecisionAt(const graph::Graph& g, graph::Vertex v,
                                     const DSymMessage& msg,
                                     const util::BigUInt& ownChallenge,
                                     const util::BigUInt* expectABase,
                                     const util::BigUInt* expectBBase) const {
  const std::size_t n = g.numVertices();
  const util::BigUInt& p = family_.prime();
  if (n != layout_.numVertices) return false;

  // Structural conditions (2)-(3): purely local, no prover input.
  if (!graph::dsymLocalStructureOk(g, layout_, v)) return false;

  // Broadcast consistency.
  const util::BigUInt& index = msg.indexPerNode[v];
  graph::Vertex root = msg.rootPerNode[v];
  if (root >= n || index >= p) return false;
  bool consistent = true;
  g.row(v).forEachSet([&](std::size_t u) {
    if (!(msg.indexPerNode[u] == index) || msg.rootPerNode[u] != root) {
      consistent = false;
    }
  });
  if (!consistent) return false;

  // Spanning-tree local checks (thread-local advice: see sym_dam).
  thread_local net::SpanningTreeAdvice tree;
  tree.root = root;
  tree.parent = msg.parent;
  tree.dist = msg.dist;
  if (!net::verifyTreeLocally(g, tree, v)) return false;

  // Chain verification with the FIXED sigma (locally computable from the
  // public layout; precomputed once at protocol construction).
  const graph::Permutation& sigma = sigma_;
  thread_local util::BigUInt expectA;
  thread_local util::BigUInt expectB;
  expectA = expectABase ? expectABase[v]
                        : family_.hashMatrixRow(index, v, g.closedRow(v), n);
  expectB = expectBBase
                ? expectBBase[v]
                : family_.hashMatrixRow(index, sigma[v],
                                        graph::Graph::imageOf(g.closedRow(v), sigma), n);
  bool childrenOk = true;
  net::forEachChild(g, tree, v, [&](graph::Vertex child) {
    if (!childrenOk) return;
    if (msg.a[child] >= p || msg.b[child] >= p) {
      childrenOk = false;
      return;
    }
    util::addModInPlace(expectA, msg.a[child], p);
    util::addModInPlace(expectB, msg.b[child], p);
  });
  if (!childrenOk) return false;
  if (!(msg.a[v] == expectA) || !(msg.b[v] == expectB)) return false;

  // Root checks: fingerprints equal, index echo matches own challenge.
  // (No rho_r != r check: sigma is non-trivial by construction.)
  if (v == root) {
    if (!(msg.a[v] == msg.b[v])) return false;
    if (!(index == ownChallenge)) return false;
  }
  return true;
}

RunResult DSymDamProtocol::run(const graph::Graph& g, DSymProver& prover,
                               util::Rng& rng) const {
  const std::size_t n = g.numVertices();
  if (n != layout_.numVertices) {
    throw std::invalid_argument("DSymDamProtocol: graph size does not match layout");
  }
  const unsigned idBits = util::bitsFor(n);
  const std::size_t seedBits = family_.seedBits();
  const std::size_t valueBits = family_.valueBits();

  RunResult result;
  result.transcript = net::Transcript(n);
  net::Transcript& transcript = result.transcript;

  transcript.beginRound("A: hash indices");
  std::vector<util::BigUInt> challenges;
  challenges.reserve(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::Rng nodeRng = rng.split(v);
    challenges.push_back(family_.randomIndex(nodeRng));
    transcript.chargeToProver(v, seedBits);
  }
#if DIP_AUDIT
  net::roundArena().reset();
  for (graph::Vertex v = 0; v < n; ++v) {
    net::auditCharge(
        "DSym/A", v, transcript.roundBitsToProver(v),
        wire::encodeChallenge(challenges[v], family_, &net::roundArena()).bitCount());
  }
#endif

  transcript.beginRound("M: index/root/tree/chains");
  DSymMessage msg = prover.respond(g, challenges);
  if (msg.indexPerNode.size() != n || msg.rootPerNode.size() != n ||
      msg.parent.size() != n || msg.dist.size() != n || msg.a.size() != n ||
      msg.b.size() != n) {
    throw std::runtime_error("DSymProver: malformed message");
  }
  transcript.chargeBroadcastFromProver(seedBits + idBits);  // Index + root.
  for (graph::Vertex v = 0; v < n; ++v) {
    transcript.chargeFromProver(v, 2 * idBits + 2 * valueBits);
  }
#if DIP_AUDIT
  net::auditChargedRound("DSym/M", transcript,
                         [&] { return wire::encodeDSym(msg, n, family_, &net::roundArena()); });
#endif

  // Decisions. sigma is fixed by the public layout, so when the index
  // broadcast is uniform (the honest/common case) all 2n verifier row
  // hashes share one seed and batch over shared power tables; otherwise
  // each node falls back to its scalar recomputation. Values are identical
  // either way, only the evaluation strategy differs.
  thread_local std::vector<util::BigUInt> baseA;
  thread_local std::vector<util::BigUInt> baseB;
  const util::BigUInt* preA = nullptr;
  const util::BigUInt* preB = nullptr;
  if (hash::batchEnabled()) {
    const util::BigUInt& index = msg.indexPerNode[0];
    bool uniform = index < family_.prime();
    for (graph::Vertex v = 1; uniform && v < n; ++v) {
      if (!(msg.indexPerNode[v] == index)) uniform = false;
    }
    if (uniform) {
      const graph::Permutation& sigma = sigma_;
      thread_local hash::BatchLinearHashEvaluator batch;
      thread_local std::vector<std::uint64_t> aIdx;
      thread_local std::vector<std::uint64_t> bIdx;
      thread_local std::vector<util::DynBitset> aRows;
      thread_local std::vector<util::DynBitset> bRows;
      batch.rebind(family_.prime(), family_.dimension(), index);
      aIdx.clear();
      bIdx.clear();
      aRows.clear();
      bRows.clear();
      aIdx.reserve(n);
      bIdx.reserve(n);
      aRows.reserve(n);
      bRows.reserve(n);
      for (graph::Vertex v = 0; v < n; ++v) {
        aIdx.push_back(v);
        aRows.push_back(g.closedRow(v));
        bIdx.push_back(sigma[v]);
        bRows.push_back(graph::Graph::imageOf(g.closedRow(v), sigma));
      }
      batch.hashMatrixRows(aIdx, aRows, n, baseA);
      batch.hashMatrixRows(bIdx, bRows, n, baseB);
      preA = baseA.data();
      preB = baseB.data();
    }
  }
  result.accepted = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!nodeDecisionAt(g, v, msg, challenges[v], preA, preB)) {
      result.accepted = false;
      break;
    }
  }
  return result;
}

CostBreakdown DSymDamProtocol::costModel(const graph::DSymLayout& layout) {
  const std::size_t n = layout.numVertices;
  const unsigned idBits = util::bitsFor(n);
  util::BigUInt pHi = util::BigUInt{100} * util::BigUInt::pow(util::BigUInt{n}, 3);
  const std::size_t hashBits = pHi.bitLength();
  CostBreakdown cost;
  cost.bitsToProverPerNode = hashBits;
  cost.bitsFromProverPerNode = hashBits + idBits   // Index + root broadcast.
                               + 2 * idBits        // t_v, d_v.
                               + 2 * hashBits;     // a_v, b_v.
  return cost;
}

HonestDSymProver::HonestDSymProver(const graph::DSymLayout& layout,
                                   const hash::LinearHashFamily& family)
    : layout_(layout), family_(family) {}

DSymMessage HonestDSymProver::respond(const graph::Graph& g,
                                      const std::vector<util::BigUInt>& challenges) {
  const std::size_t n = g.numVertices();
  const graph::Vertex root = 0;
  net::SpanningTreeAdvice tree = net::buildBfsTree(g, root);
  const util::BigUInt& index = challenges[root];
  ChainValues chains =
      aggregateChains(g, family_, index, graph::dsymSigma(layout_), tree);
  DSymMessage msg;
  msg.indexPerNode.assign(n, index);
  msg.rootPerNode.assign(n, root);
  msg.parent = tree.parent;
  msg.dist = tree.dist;
  msg.a = std::move(chains.a);
  msg.b = std::move(chains.b);
  return msg;
}

}  // namespace dip::core
