// Shared result types for protocol executions.
#pragma once

#include <cstddef>

#include "net/transcript.hpp"
#include "util/mathutil.hpp"

namespace dip::core {

// Outcome of one protocol execution against one prover.
struct RunResult {
  bool accepted = false;           // All nodes accepted.
  net::Transcript transcript{0};   // Exact bit accounting for the run.
};

// Empirical acceptance statistics over repeated independent executions.
struct AcceptanceStats {
  std::size_t accepts = 0;
  std::size_t trials = 0;
  util::WilsonInterval interval() const { return util::wilson95(accepts, trials); }
  double rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(accepts) / static_cast<double>(trials);
  }
};

// Structural message-size breakdown of a protocol for a given instance
// size, independent of any actual execution (message schedules do not
// depend on the prover's search, so cost curves extend to large n).
struct CostBreakdown {
  std::size_t bitsToProverPerNode = 0;    // Challenge bits (charged, as the paper does).
  std::size_t bitsFromProverPerNode = 0;  // Response bits (max over nodes).
  std::size_t totalPerNode() const { return bitsToProverPerNode + bitsFromProverPerNode; }
};

}  // namespace dip::core
