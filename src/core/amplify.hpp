// Soundness amplification by sequential repetition.
//
// The paper's correctness convention is the standard (2/3, 1/3) gap; any
// protocol with one-sided completeness (the honest prover ALWAYS convinces
// — true for Protocols 1, 2 and DSym, whose completeness is an algebraic
// identity) amplifies by AND-composition: run t independent executions and
// accept iff all accept. Completeness stays perfect; soundness error drops
// to (soundness)^t, at t times the communication.
//
// runAmplified executes t independent runs with fresh verifier randomness
// and merges the transcripts (costs add), so amplified cost reporting stays
// exact.
#pragma once

#include <cstddef>

#include "core/result.hpp"
#include "util/rng.hpp"

namespace dip::core {

// Protocol must expose run(instance, prover, rng) -> RunResult. The same
// prover object is reused across repetitions (provers here are stateless or
// re-randomized internally); transcripts are summed into the result.
template <typename Protocol, typename Instance, typename Prover>
RunResult runAmplified(const Protocol& protocol, const Instance& instance, Prover& prover,
                       std::size_t repetitions, util::Rng& rng) {
  RunResult merged;
  merged.accepted = true;
  for (std::size_t t = 0; t < repetitions; ++t) {
    RunResult single = protocol.run(instance, prover, rng);
    if (t == 0) {
      merged.transcript = single.transcript;
    } else {
      // Sum the per-node charges (round labels kept from the first run).
      // dip-lint: allow(charge-audit) -- transcript merge, not a wire round;
      // each inner run was already audit-checked against its own encodings.
      for (graph::Vertex v = 0; v < single.transcript.numNodes(); ++v) {
        merged.transcript.chargeToProver(v, single.transcript.perNode()[v].bitsToProver);
        merged.transcript.chargeFromProver(v,
                                           single.transcript.perNode()[v].bitsFromProver);
      }
    }
    if (!single.accepted) {
      merged.accepted = false;
      break;  // AND-composition: one rejection settles it.
    }
  }
  return merged;
}

// The soundness error after t repetitions of a protocol with single-run
// soundness error `singleRunError`.
inline double amplifiedSoundness(double singleRunError, std::size_t repetitions) {
  double error = 1.0;
  for (std::size_t t = 0; t < repetitions; ++t) error *= singleRunError;
  return error;
}

}  // namespace dip::core
