#include "core/gni_wire.hpp"

#include <stdexcept>

namespace dip::core::wire {

namespace {

void writeSeed(util::BitWriter& writer, const hash::EpsApiHash::Seed& seed,
               std::size_t fieldBits) {
  writer.writeBig(seed.a, fieldBits);
  writer.writeBig(seed.alpha, fieldBits);
  writer.writeBig(seed.beta, fieldBits);
}

hash::EpsApiHash::Seed readSeed(util::BitReader& reader, std::size_t fieldBits) {
  hash::EpsApiHash::Seed seed;
  seed.a = reader.readBig(fieldBits);
  seed.alpha = reader.readBig(fieldBits);
  seed.beta = reader.readBig(fieldBits);
  return seed;
}

}  // namespace

util::BitWriter encodeGniChallenges(const std::vector<GniChallenge>& challenges,
                                    const hash::EpsApiHash& gsHash, std::size_t ell) {
  const std::size_t fieldBits = gsHash.innerValueBits();
  util::BitWriter writer;
  for (const GniChallenge& challenge : challenges) {
    writeSeed(writer, challenge.seed, fieldBits);
    writer.writeBig(challenge.y, ell);
  }
  return writer;
}

std::vector<GniChallenge> decodeGniChallenges(const util::BitWriter& encoded,
                                              const hash::EpsApiHash& gsHash,
                                              std::size_t ell, std::size_t repetitions) {
  const std::size_t fieldBits = gsHash.innerValueBits();
  util::BitReader reader(encoded);
  std::vector<GniChallenge> challenges;
  challenges.reserve(repetitions);
  for (std::size_t j = 0; j < repetitions; ++j) {
    GniChallenge challenge;
    challenge.seed = readSeed(reader, fieldBits);
    challenge.y = reader.readBig(ell);
    challenges.push_back(std::move(challenge));
  }
  return challenges;
}

util::BitWriter encodeGniChallenges(const std::vector<GniChallenge>& challenges,
                                    const GniParams& params) {
  return encodeGniChallenges(challenges, params.gsHash, params.ell);
}

std::vector<GniChallenge> decodeGniChallenges(const util::BitWriter& encoded,
                                              const GniParams& params) {
  return decodeGniChallenges(encoded, params.gsHash, params.ell, params.repetitions);
}

EncodedRound encodeGniFirst(const GniFirstMessage& message, const GniInstance& instance,
                            const GniParams& params) {
  const std::size_t n = instance.g0.numVertices();
  const unsigned idBits = util::bitsFor(n);
  const std::size_t fieldBits = params.gsHash.innerValueBits();
  if (n == 0 || message.perNode.size() != n) {
    throw std::invalid_argument("encodeGniFirst: wrong per-node count");
  }
  const GniM1PerNode& reference = message.perNode[0];
  for (graph::Vertex v = 0; v < n; ++v) {
    const GniM1PerNode& m1 = message.perNode[v];
    if (m1.root != reference.root || m1.echo != reference.echo ||
        m1.claimed != reference.claimed || m1.b != reference.b) {
      throw std::invalid_argument("encodeGniFirst: inconsistent broadcast fields");
    }
  }

  if (reference.echo.size() != params.repetitions ||
      reference.claimed.size() != params.repetitions ||
      reference.b.size() != params.repetitions) {
    throw std::invalid_argument("encodeGniFirst: wrong broadcast repetition count");
  }

  EncodedRound round;
  round.broadcast.writeUInt(reference.root, idBits);
  for (std::size_t j = 0; j < params.repetitions; ++j) {
    writeSeed(round.broadcast, reference.echo[j].seed, fieldBits);
    round.broadcast.writeBig(reference.echo[j].y, params.ell);
    round.broadcast.writeBit(reference.claimed[j]);
    round.broadcast.writeBit(reference.b[j]);
  }
  round.unicast.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    const GniM1PerNode& m1 = message.perNode[v];
    if (m1.s.size() != params.repetitions || m1.claims.size() != params.repetitions) {
      throw std::invalid_argument("encodeGniFirst: wrong per-repetition count");
    }
    util::BitWriter& writer = round.unicast[v];
    writer.writeUInt(m1.parent, idBits);
    writer.writeUInt(m1.dist, idBits);
    for (std::size_t j = 0; j < params.repetitions; ++j) {
      writer.writeUInt(m1.s[j], idBits);
      if (reference.claimed[j] && reference.b[j] == 1) {
        // Claim count is determined by the node's closed G1 neighborhood.
        for (graph::Vertex image : m1.claims[j]) writer.writeUInt(image, idBits);
      }
    }
  }
  return round;
}

GniFirstMessage decodeGniFirst(const EncodedRound& round, const GniInstance& instance,
                               const GniParams& params) {
  const std::size_t n = instance.g0.numVertices();
  const unsigned idBits = util::bitsFor(n);
  const std::size_t fieldBits = params.gsHash.innerValueBits();
  const std::size_t k = params.repetitions;
  requireUnicastCount(round, n);

  util::BitReader broadcast(round.broadcast);
  graph::Vertex root = static_cast<graph::Vertex>(broadcast.readUInt(idBits));
  std::vector<GniChallenge> echo;
  echo.reserve(k);
  std::vector<std::uint8_t> claimed(k), b(k);
  for (std::size_t j = 0; j < k; ++j) {
    GniChallenge challenge;
    challenge.seed = readSeed(broadcast, fieldBits);
    challenge.y = broadcast.readBig(params.ell);
    echo.push_back(std::move(challenge));
    claimed[j] = broadcast.readBit() ? 1 : 0;
    b[j] = broadcast.readBit() ? 1 : 0;
  }

  GniFirstMessage message;
  message.perNode.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    GniM1PerNode& m1 = message.perNode[v];
    m1.root = root;
    m1.echo = echo;
    m1.claimed = claimed;
    m1.b = b;
    util::BitReader reader(round.unicast[v]);
    m1.parent = static_cast<graph::Vertex>(reader.readUInt(idBits));
    m1.dist = static_cast<std::uint32_t>(reader.readUInt(idBits));
    m1.s.resize(k);
    m1.claims.resize(k);
    const std::size_t claimCount = instance.g1.degree(v) + 1;
    for (std::size_t j = 0; j < k; ++j) {
      m1.s[j] = static_cast<graph::Vertex>(reader.readUInt(idBits));
      if (claimed[j] && b[j] == 1) {
        for (std::size_t i = 0; i < claimCount; ++i) {
          m1.claims[j].push_back(static_cast<graph::Vertex>(reader.readUInt(idBits)));
        }
      }
    }
  }
  return message;
}

EncodedRound encodeGniSecond(const GniSecondMessage& message,
                             const GniFirstMessage& first, const GniInstance& instance,
                             const GniParams& params) {
  const std::size_t n = instance.g0.numVertices();
  const std::size_t innerBits = params.gsHash.innerValueBits();
  const std::size_t checkBits = params.checkFamily.seedBits();
  if (n == 0 || message.perNode.size() != n || first.perNode.size() != n) {
    throw std::invalid_argument("encodeGniSecond: wrong per-node count");
  }
  const GniM1PerNode& flags = first.perNode[0];
  if (flags.claimed.size() != params.repetitions || flags.b.size() != params.repetitions) {
    throw std::invalid_argument("wire: wrong M1 flag repetition count");
  }

  for (graph::Vertex v = 0; v < n; ++v) {
    if (!(message.perNode[v].checkSeed == message.perNode[0].checkSeed)) {
      throw std::invalid_argument("encodeGniSecond: inconsistent check seed");
    }
  }

  EncodedRound round;
  round.broadcast.writeBig(message.perNode[0].checkSeed, checkBits);
  round.unicast.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    const GniM2PerNode& m2 = message.perNode[v];
    if (m2.h.size() != params.repetitions || m2.permI.size() != params.repetitions ||
        m2.permS.size() != params.repetitions ||
        m2.consC.size() != params.repetitions ||
        m2.consT.size() != params.repetitions) {
      throw std::invalid_argument("encodeGniSecond: wrong per-repetition count");
    }
    util::BitWriter& writer = round.unicast[v];
    for (std::size_t j = 0; j < params.repetitions; ++j) {
      if (!flags.claimed[j]) continue;
      writer.writeBig(m2.h[j], innerBits);
      writer.writeBig(m2.permI[j], checkBits);
      writer.writeBig(m2.permS[j], checkBits);
      if (flags.b[j] == 1) {
        writer.writeBig(m2.consC[j], checkBits);
        writer.writeBig(m2.consT[j], checkBits);
      }
    }
  }
  return round;
}

GniSecondMessage decodeGniSecond(const EncodedRound& round, const GniFirstMessage& first,
                                 const GniInstance& instance, const GniParams& params) {
  const std::size_t n = instance.g0.numVertices();
  const std::size_t innerBits = params.gsHash.innerValueBits();
  const std::size_t checkBits = params.checkFamily.seedBits();
  const std::size_t k = params.repetitions;
  requireUnicastCount(round, n);
  if (first.perNode.size() != n) {
    throw std::invalid_argument("decodeGniSecond: wrong M1 per-node count");
  }
  const GniM1PerNode& flags = first.perNode[0];
  if (flags.claimed.size() != params.repetitions || flags.b.size() != params.repetitions) {
    throw std::invalid_argument("wire: wrong M1 flag repetition count");
  }

  util::BitReader broadcast(round.broadcast);
  util::BigUInt checkSeed = broadcast.readBig(checkBits);

  GniSecondMessage message;
  message.perNode.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    GniM2PerNode& m2 = message.perNode[v];
    m2.checkSeed = checkSeed;
    m2.h.assign(k, util::BigUInt{});
    m2.permI.assign(k, util::BigUInt{});
    m2.permS.assign(k, util::BigUInt{});
    m2.consC.assign(k, util::BigUInt{});
    m2.consT.assign(k, util::BigUInt{});
    util::BitReader reader(round.unicast[v]);
    for (std::size_t j = 0; j < k; ++j) {
      if (!flags.claimed[j]) continue;
      m2.h[j] = reader.readBig(innerBits);
      m2.permI[j] = reader.readBig(checkBits);
      m2.permS[j] = reader.readBig(checkBits);
      if (flags.b[j] == 1) {
        m2.consC[j] = reader.readBig(checkBits);
        m2.consT[j] = reader.readBig(checkBits);
      }
    }
  }
  return message;
}

}  // namespace dip::core::wire
