// General-input GNI: the automorphism-compensated Goldwasser-Sipser
// protocol (Section 4's "fixed cleverly in [15]" remark, made distributed).
//
// The basic protocol (gni_amam.hpp) counts S = {sigma(G_b)} and needs
// |S| = 2 n! vs n!; if an input graph is symmetric, distinct permutations
// produce the same graph and the count shrinks by |Aut|. The classical fix
// has the prover exhibit, together with sigma(G_b), an AUTOMORPHISM alpha
// of it: over
//     S = { (H, alpha) : H = sigma(G_b), alpha in Aut(H) }
// each isomorphism class contributes exactly (n!/|Aut|) * |Aut| = n! pairs,
// so |S| = 2 n! iff G0 !~ G1 and n! otherwise — for ALL inputs.
//
// Distributed realization (four rounds, root fixed at node 0):
//   A1  per repetition: eps-API seed over (2n x 2n) matrices + target y.
//   M1  prover commits POINTWISE: s_v = sigma(v) and a_v = alpha(sigma(v));
//       for b = 1 it also claims the commitments of v's G1-neighbors
//       (their graph edges are not communication links).
//   A2  fresh linear-hash index for the commitment checks.
//   M2  subtree sums for: the Goldwasser-Sipser hash of the PAIR (H, alpha)
//       (H's rows at indices 0..n-1, alpha's permutation matrix at indices
//       n..2n-1); the sigma- and alpha-permutation checks; the
//       automorphism check  sum_u [u, H_u] == sum_u [alpha(u), alpha(H_u)]
//       (Lemma 3.1 applied to H); and, for b = 1, the claimed-commitment
//       consistency checks.
// Per-node cost stays O(n log n) per repetition.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/gni_amam.hpp"  // GniInstance, GniChallenge, AcceptanceStats.
#include "core/result.hpp"
#include "hash/eps_api.hpp"
#include "hash/linear_hash.hpp"
#include "util/rng.hpp"

namespace dip::core {

struct GniGeneralParams {
  std::size_t n = 0;
  std::size_t ell = 0;
  std::size_t repetitions = 0;
  std::size_t threshold = 0;
  double perRoundYesLb = 0.0;
  double perRoundNoUb = 0.0;
  hash::EpsApiHash gsHash;             // Over (2n) x (2n) matrices.
  hash::LinearHashFamily checkFamily;  // Dimension n^2, fresh-seed checks.

  static GniGeneralParams choose(std::size_t n, util::Rng& rng);
};

struct GniGenM1PerNode {
  graph::Vertex root = 0;
  graph::Vertex parent = 0;
  std::uint32_t dist = 0;
  std::vector<GniChallenge> echo;      // Broadcast copy, [rep].
  std::vector<std::uint8_t> claimed;   // Broadcast copy, [rep].
  std::vector<std::uint8_t> b;         // Broadcast copy, [rep].
  std::vector<graph::Vertex> s;        // Unicast: sigma(v), [rep].
  std::vector<graph::Vertex> a;        // Unicast: alpha(sigma(v)), [rep].
  // For claimed reps with b = 1, aligned with sorted closed G1 neighbors:
  std::vector<std::vector<graph::Vertex>> sClaims;  // [rep][idx].
  std::vector<std::vector<graph::Vertex>> aClaims;  // [rep][idx].
};

struct GniGenM2PerNode {
  util::BigUInt checkSeed;  // Broadcast copy.
  // Per repetition subtree sums (ignored for unclaimed reps):
  std::vector<util::BigUInt> h;         // GS hash of (H, alpha), field P.
  std::vector<util::BigUInt> identity;  // sum [v, e_v] chain (shared I side).
  std::vector<util::BigUInt> permS;     // sum [s_v, e_s_v].
  std::vector<util::BigUInt> permA;     // sum [a_v, e_a_v].
  std::vector<util::BigUInt> autL;      // sum [s_v, Hrow_v].
  std::vector<util::BigUInt> autR;      // sum [a_v, alpha(Hrow_v)].
  std::vector<util::BigUInt> consSC, consST;  // b=1: sigma-claim consistency.
  std::vector<util::BigUInt> consAC, consAT;  // b=1: alpha-claim consistency.
};

struct GniGenFirstMessage {
  std::vector<GniGenM1PerNode> perNode;
};
struct GniGenSecondMessage {
  std::vector<GniGenM2PerNode> perNode;
};

class GniGeneralProver {
 public:
  virtual ~GniGeneralProver() = default;
  virtual GniGenFirstMessage firstMessage(
      const GniInstance& instance,
      const std::vector<std::vector<GniChallenge>>& challenges) = 0;
  virtual GniGenSecondMessage secondMessage(
      const GniInstance& instance,
      const std::vector<std::vector<GniChallenge>>& challenges,
      const GniGenFirstMessage& first,
      const std::vector<util::BigUInt>& checkChallenges) = 0;
};

class GniGeneralProtocol {
 public:
  explicit GniGeneralProtocol(GniGeneralParams params);

  const GniGeneralParams& params() const { return params_; }

  RunResult run(const GniInstance& instance, GniGeneralProver& prover,
                util::Rng& rng) const;

  template <typename ProverFactory>
  AcceptanceStats estimateAcceptance(const GniInstance& instance,
                                     ProverFactory&& proverFactory, std::size_t trials,
                                     util::Rng& rng) const {
    AcceptanceStats stats;
    stats.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
      auto prover = proverFactory();
      if (run(instance, *prover, rng).accepted) ++stats.accepts;
    }
    return stats;
  }

  // Pr[some (sigma, b, alpha) hits the target] per repetition — the 2q vs q
  // quantity, now valid for symmetric inputs too.
  AcceptanceStats estimatePerRoundHit(const GniInstance& instance, std::size_t trials,
                                      util::Rng& rng) const;

  // One hit trial against precomputed automorphism lists (compute them once
  // with graph::allAutomorphisms and share across the trial engine's
  // workers; the lists are read-only during trials).
  bool perRoundHitOnce(const GniInstance& instance,
                       const std::vector<graph::Permutation>& aut0,
                       const std::vector<graph::Permutation>& aut1,
                       util::Rng& rng) const;

  static CostBreakdown costModel(std::size_t n, std::size_t repetitions);

  bool nodeDecision(const GniInstance& instance, graph::Vertex v,
                    const GniGenFirstMessage& first, const GniGenSecondMessage& second,
                    const std::vector<GniChallenge>& ownChallenges,
                    const util::BigUInt& ownCheckChallenge) const;

 private:
  GniGeneralParams params_;
};

// Honest prover: precomputes Aut(G_0) and Aut(G_1), then per repetition
// enumerates (b, sigma, beta in Aut(G_b)) — with alpha = sigma beta
// sigma^{-1} — searching for a hash preimage of y.
class HonestGniGeneralProver : public GniGeneralProver {
 public:
  explicit HonestGniGeneralProver(const GniGeneralParams& params);
  GniGenFirstMessage firstMessage(
      const GniInstance& instance,
      const std::vector<std::vector<GniChallenge>>& challenges) override;
  GniGenSecondMessage secondMessage(
      const GniInstance& instance,
      const std::vector<std::vector<GniChallenge>>& challenges,
      const GniGenFirstMessage& first,
      const std::vector<util::BigUInt>& checkChallenges) override;

 private:
  struct Found {
    graph::Permutation sigma;
    graph::Permutation alpha;
    std::uint8_t b = 0;
  };
  const GniGeneralParams& params_;
  std::vector<std::optional<Found>> lastFound_;
};

// Instance generators for the general protocol's distinguishing feature:
// SYMMETRIC inputs (the basic protocol's counting breaks on these).
GniInstance gniGeneralYesInstance(std::size_t n, util::Rng& rng);  // Non-isomorphic, symmetric g0.
GniInstance gniGeneralNoInstance(std::size_t n, util::Rng& rng);   // Isomorphic, symmetric.

}  // namespace dip::core
