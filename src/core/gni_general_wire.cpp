#include "core/gni_general_wire.hpp"

#include <stdexcept>

namespace dip::core::wire {

namespace {

void writeSeed(util::BitWriter& writer, const hash::EpsApiHash::Seed& seed,
               std::size_t fieldBits) {
  writer.writeBig(seed.a, fieldBits);
  writer.writeBig(seed.alpha, fieldBits);
  writer.writeBig(seed.beta, fieldBits);
}

hash::EpsApiHash::Seed readSeed(util::BitReader& reader, std::size_t fieldBits) {
  hash::EpsApiHash::Seed seed;
  seed.a = reader.readBig(fieldBits);
  seed.alpha = reader.readBig(fieldBits);
  seed.beta = reader.readBig(fieldBits);
  return seed;
}

}  // namespace

EncodedRound encodeGniGenFirst(const GniGenFirstMessage& message,
                               const GniInstance& instance,
                               const GniGeneralParams& params) {
  const std::size_t n = instance.g0.numVertices();
  const unsigned idBits = util::bitsFor(n);
  const std::size_t fieldBits = params.gsHash.innerValueBits();
  const std::size_t k = params.repetitions;
  if (n == 0 || message.perNode.size() != n) {
    throw std::invalid_argument("encodeGniGenFirst: wrong per-node count");
  }
  const GniGenM1PerNode& reference = message.perNode[0];
  for (graph::Vertex v = 0; v < n; ++v) {
    const GniGenM1PerNode& m1 = message.perNode[v];
    if (m1.root != reference.root || m1.echo != reference.echo ||
        m1.claimed != reference.claimed || m1.b != reference.b) {
      throw std::invalid_argument("encodeGniGenFirst: inconsistent broadcast fields");
    }
  }
  if (reference.echo.size() != k || reference.claimed.size() != k ||
      reference.b.size() != k) {
    throw std::invalid_argument("encodeGniGenFirst: wrong broadcast repetition count");
  }

  EncodedRound round;
  round.broadcast.writeUInt(reference.root, idBits);
  for (std::size_t j = 0; j < k; ++j) {
    writeSeed(round.broadcast, reference.echo[j].seed, fieldBits);
    round.broadcast.writeBig(reference.echo[j].y, params.ell);
    round.broadcast.writeBit(reference.claimed[j]);
    round.broadcast.writeBit(reference.b[j]);
  }
  round.unicast.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    const GniGenM1PerNode& m1 = message.perNode[v];
    if (m1.s.size() != k || m1.a.size() != k || m1.sClaims.size() != k ||
        m1.aClaims.size() != k) {
      throw std::invalid_argument("encodeGniGenFirst: wrong per-repetition count");
    }
    util::BitWriter& writer = round.unicast[v];
    writer.writeUInt(m1.parent, idBits);
    writer.writeUInt(m1.dist, idBits);
    for (std::size_t j = 0; j < k; ++j) {
      writer.writeUInt(m1.s[j], idBits);
      writer.writeUInt(m1.a[j], idBits);
      if (reference.claimed[j] && reference.b[j] == 1) {
        for (graph::Vertex image : m1.sClaims[j]) writer.writeUInt(image, idBits);
        for (graph::Vertex image : m1.aClaims[j]) writer.writeUInt(image, idBits);
      }
    }
  }
  return round;
}

GniGenFirstMessage decodeGniGenFirst(const EncodedRound& round,
                                     const GniInstance& instance,
                                     const GniGeneralParams& params) {
  const std::size_t n = instance.g0.numVertices();
  const unsigned idBits = util::bitsFor(n);
  const std::size_t fieldBits = params.gsHash.innerValueBits();
  const std::size_t k = params.repetitions;
  requireUnicastCount(round, n);

  util::BitReader broadcast(round.broadcast);
  graph::Vertex root = static_cast<graph::Vertex>(broadcast.readUInt(idBits));
  std::vector<GniChallenge> echo;
  echo.reserve(k);
  std::vector<std::uint8_t> claimed(k), b(k);
  for (std::size_t j = 0; j < k; ++j) {
    GniChallenge challenge;
    challenge.seed = readSeed(broadcast, fieldBits);
    challenge.y = broadcast.readBig(params.ell);
    echo.push_back(std::move(challenge));
    claimed[j] = broadcast.readBit() ? 1 : 0;
    b[j] = broadcast.readBit() ? 1 : 0;
  }

  GniGenFirstMessage message;
  message.perNode.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    GniGenM1PerNode& m1 = message.perNode[v];
    m1.root = root;
    m1.echo = echo;
    m1.claimed = claimed;
    m1.b = b;
    util::BitReader reader(round.unicast[v]);
    m1.parent = static_cast<graph::Vertex>(reader.readUInt(idBits));
    m1.dist = static_cast<std::uint32_t>(reader.readUInt(idBits));
    m1.s.resize(k);
    m1.a.resize(k);
    m1.sClaims.resize(k);
    m1.aClaims.resize(k);
    const std::size_t claimCount = instance.g1.degree(v) + 1;
    for (std::size_t j = 0; j < k; ++j) {
      m1.s[j] = static_cast<graph::Vertex>(reader.readUInt(idBits));
      m1.a[j] = static_cast<graph::Vertex>(reader.readUInt(idBits));
      if (claimed[j] && b[j] == 1) {
        for (std::size_t i = 0; i < claimCount; ++i) {
          m1.sClaims[j].push_back(static_cast<graph::Vertex>(reader.readUInt(idBits)));
        }
        for (std::size_t i = 0; i < claimCount; ++i) {
          m1.aClaims[j].push_back(static_cast<graph::Vertex>(reader.readUInt(idBits)));
        }
      }
    }
  }
  return message;
}

EncodedRound encodeGniGenSecond(const GniGenSecondMessage& message,
                                const GniGenFirstMessage& first,
                                const GniInstance& instance,
                                const GniGeneralParams& params) {
  const std::size_t n = instance.g0.numVertices();
  const std::size_t innerBits = params.gsHash.innerValueBits();
  const std::size_t checkBits = params.checkFamily.seedBits();
  const std::size_t k = params.repetitions;
  if (n == 0 || message.perNode.size() != n || first.perNode.size() != n) {
    throw std::invalid_argument("encodeGniGenSecond: wrong per-node count");
  }
  const GniGenM1PerNode& flags = first.perNode[0];
  if (flags.claimed.size() != k || flags.b.size() != k) {
    throw std::invalid_argument("wire: wrong M1 flag repetition count");
  }

  for (graph::Vertex v = 0; v < n; ++v) {
    if (!(message.perNode[v].checkSeed == message.perNode[0].checkSeed)) {
      throw std::invalid_argument("encodeGniGenSecond: inconsistent check seed");
    }
  }

  EncodedRound round;
  round.broadcast.writeBig(message.perNode[0].checkSeed, checkBits);
  round.unicast.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    const GniGenM2PerNode& m2 = message.perNode[v];
    if (m2.h.size() != k || m2.identity.size() != k || m2.permS.size() != k ||
        m2.permA.size() != k || m2.autL.size() != k || m2.autR.size() != k ||
        m2.consSC.size() != k || m2.consST.size() != k || m2.consAC.size() != k ||
        m2.consAT.size() != k) {
      throw std::invalid_argument("encodeGniGenSecond: wrong per-repetition count");
    }
    util::BitWriter& writer = round.unicast[v];
    for (std::size_t j = 0; j < k; ++j) {
      if (!flags.claimed[j]) continue;
      writer.writeBig(m2.h[j], innerBits);
      writer.writeBig(m2.identity[j], checkBits);
      writer.writeBig(m2.permS[j], checkBits);
      writer.writeBig(m2.permA[j], checkBits);
      writer.writeBig(m2.autL[j], checkBits);
      writer.writeBig(m2.autR[j], checkBits);
      if (flags.b[j] == 1) {
        writer.writeBig(m2.consSC[j], checkBits);
        writer.writeBig(m2.consST[j], checkBits);
        writer.writeBig(m2.consAC[j], checkBits);
        writer.writeBig(m2.consAT[j], checkBits);
      }
    }
  }
  return round;
}

GniGenSecondMessage decodeGniGenSecond(const EncodedRound& round,
                                       const GniGenFirstMessage& first,
                                       const GniInstance& instance,
                                       const GniGeneralParams& params) {
  const std::size_t n = instance.g0.numVertices();
  const std::size_t innerBits = params.gsHash.innerValueBits();
  const std::size_t checkBits = params.checkFamily.seedBits();
  const std::size_t k = params.repetitions;
  requireUnicastCount(round, n);
  if (first.perNode.size() != n) {
    throw std::invalid_argument("decodeGniGenSecond: wrong M1 per-node count");
  }
  const GniGenM1PerNode& flags = first.perNode[0];
  if (flags.claimed.size() != k || flags.b.size() != k) {
    throw std::invalid_argument("wire: wrong M1 flag repetition count");
  }

  util::BitReader broadcast(round.broadcast);
  util::BigUInt checkSeed = broadcast.readBig(checkBits);

  GniGenSecondMessage message;
  message.perNode.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    GniGenM2PerNode& m2 = message.perNode[v];
    m2.checkSeed = checkSeed;
    m2.h.assign(k, util::BigUInt{});
    m2.identity.assign(k, util::BigUInt{});
    m2.permS.assign(k, util::BigUInt{});
    m2.permA.assign(k, util::BigUInt{});
    m2.autL.assign(k, util::BigUInt{});
    m2.autR.assign(k, util::BigUInt{});
    m2.consSC.assign(k, util::BigUInt{});
    m2.consST.assign(k, util::BigUInt{});
    m2.consAC.assign(k, util::BigUInt{});
    m2.consAT.assign(k, util::BigUInt{});
    util::BitReader reader(round.unicast[v]);
    for (std::size_t j = 0; j < k; ++j) {
      if (!flags.claimed[j]) continue;
      m2.h[j] = reader.readBig(innerBits);
      m2.identity[j] = reader.readBig(checkBits);
      m2.permS[j] = reader.readBig(checkBits);
      m2.permA[j] = reader.readBig(checkBits);
      m2.autL[j] = reader.readBig(checkBits);
      m2.autR[j] = reader.readBig(checkBits);
      if (flags.b[j] == 1) {
        m2.consSC[j] = reader.readBig(checkBits);
        m2.consST[j] = reader.readBig(checkBits);
        m2.consAC[j] = reader.readBig(checkBits);
        m2.consAT[j] = reader.readBig(checkBits);
      }
    }
  }
  return message;
}

}  // namespace dip::core::wire
