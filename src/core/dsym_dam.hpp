// The O(log n)-bit dAM protocol for Dumbbell Symmetry (Section 3.3,
// Theorems 1.2 / 3.6): the exponential separation between distributed NP
// (locally checkable proofs, Omega(n^2) for DSym by [17]) and distributed AM.
//
// DSym fixes the candidate automorphism to the known mapping sigma of
// Definition 5, so the prover has nothing to commit to — the first Merlin
// round of Protocol 1 disappears and the whole protocol is Arthur-Merlin:
//   A   nodes -> prover:  random hash index i_v in [p], p in [10 N^3, 100 N^3].
//   M   prover -> nodes:  broadcast index i (= i_r) and root r; unicast
//                         (t_v, d_v, a_v, b_v).
// Each node additionally checks, with NO prover help, the local structural
// conditions (2)-(3) of Section 3.3: its path edges exist and it has no
// stray cross edges. The chain checks then compare the fingerprints of
// sum [v, N(v)] and sum [sigma(v), sigma(N(v))]; since sigma is a fixed
// permutation known to everyone, a fingerprint mismatch catches every
// non-DSym instance that survives the structural checks, with collision
// probability <= N^2/p <= 1/(10 N).
#pragma once

#include <vector>

#include "core/result.hpp"
#include "core/sym_dmam.hpp"
#include "graph/builders.hpp"
#include "hash/linear_hash.hpp"
#include "util/rng.hpp"

namespace dip::core {

struct DSymMessage {
  std::vector<util::BigUInt> indexPerNode;  // Broadcast.
  std::vector<graph::Vertex> rootPerNode;   // Broadcast.
  std::vector<graph::Vertex> parent;        // Unicast.
  std::vector<std::uint32_t> dist;          // Unicast.
  std::vector<util::BigUInt> a;             // Unicast.
  std::vector<util::BigUInt> b;             // Unicast.
};

class DSymProver {
 public:
  virtual ~DSymProver() = default;
  virtual DSymMessage respond(const graph::Graph& g,
                              const std::vector<util::BigUInt>& challenges) = 0;
};

class DSymDamProtocol {
 public:
  // layout is the public parameterization of the language (side size n,
  // path radius r); family must have dimension N^2 for N = layout vertices.
  DSymDamProtocol(graph::DSymLayout layout, hash::LinearHashFamily family);

  const graph::DSymLayout& layout() const { return layout_; }
  const hash::LinearHashFamily& family() const { return family_; }

  RunResult run(const graph::Graph& g, DSymProver& prover, util::Rng& rng) const;

  template <typename ProverFactory>
  AcceptanceStats estimateAcceptance(const graph::Graph& g, ProverFactory&& proverFactory,
                                     std::size_t trials, util::Rng& rng) const {
    AcceptanceStats stats;
    stats.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
      auto prover = proverFactory();
      if (run(g, *prover, rng).accepted) ++stats.accepts;
    }
    return stats;
  }

  // O(log N) bits per node with the paper's p in [10 N^3, 100 N^3].
  static CostBreakdown costModel(const graph::DSymLayout& layout);

  bool nodeDecision(const graph::Graph& g, graph::Vertex v, const DSymMessage& msg,
                    const util::BigUInt& ownChallenge) const;

 private:
  // nodeDecision with optionally precomputed per-node row hashes (the
  // expectA/expectB bases before child sums); run() supplies them from the
  // batch engine when the index broadcast is uniform. Non-null pointers
  // must hold exactly the values the scalar recomputation would produce.
  bool nodeDecisionAt(const graph::Graph& g, graph::Vertex v, const DSymMessage& msg,
                      const util::BigUInt& ownChallenge,
                      const util::BigUInt* expectABase,
                      const util::BigUInt* expectBBase) const;

  graph::DSymLayout layout_;
  hash::LinearHashFamily family_;
  // dsymSigma(layout_), fixed for the protocol's lifetime — the per-node
  // decisions read it instead of recomputing the permutation per call.
  graph::Permutation sigma_;
};

// Honest prover: nothing to find (sigma is fixed); supplies the tree and
// the correct chain sums.
class HonestDSymProver : public DSymProver {
 public:
  HonestDSymProver(const graph::DSymLayout& layout, const hash::LinearHashFamily& family);
  DSymMessage respond(const graph::Graph& g,
                      const std::vector<util::BigUInt>& challenges) override;

 private:
  const graph::DSymLayout& layout_;
  const hash::LinearHashFamily& family_;
};

// Cheating prover for NO-instances: plays honestly (optimal — every message
// is forced up to hash collisions, and the structural checks need no
// prover input at all).
using CheatingDSymProver = HonestDSymProver;

}  // namespace dip::core
