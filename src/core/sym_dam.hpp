// Protocol 2 (Section 3.2): the O(n log n)-bit dAM protocol for Graph
// Symmetry — Theorem 1.3, Sym in dAM[O(n log n)].
//
// In dAM the challenge comes FIRST, so the prover cannot be forced to
// commit to the permutation before seeing the hash seed. The paper's fix is
// twofold: broadcast the ENTIRE mapping rho (n ceil(log n) bits), and use a
// hash over a prime p in [10 n^(n+2), 100 n^(n+2)] — large enough that a
// union bound over all n^n candidate mappings still leaves collision
// probability < 1/3 (proof of Theorem 3.5). Note the verifiers never check
// that rho is a permutation: by Lemma 3.1, equality of the two matrix
// fingerprint sums already forces rho to be an automorphism (and in
// particular a permutation).
//
// Round structure (Arthur-Merlin):
//   A   nodes -> prover:  random hash index i_v in [p]  (O(n log n) bits).
//   M   prover -> nodes:  broadcast (rho : V -> V, index i, root r);
//                         unicast (t_v, d_v, a_v, b_v).
// Verification is Protocol 2 lines 1-4 (same chains as Protocol 1, but each
// node evaluates rho itself from the broadcast copy).
//
// The AdaptiveCollisionProver implements the attack this protocol must
// resist: it sees the seed BEFORE choosing rho and searches mappings for a
// fingerprint collision. With the paper's parameters the search is hopeless;
// with a short (Protocol 1-sized) hash it succeeds easily — the E8 ablation.
#pragma once

#include <vector>

#include "core/result.hpp"
#include "core/sym_dmam.hpp"
#include "graph/graph.hpp"
#include "hash/linear_hash.hpp"
#include "net/spanning.hpp"
#include "util/rng.hpp"

namespace dip::core {

struct SymDamMessage {
  // Broadcast fields (per-node so cheaters can try inconsistency).
  std::vector<std::vector<graph::Vertex>> rhoPerNode;  // Full mapping at each node.
  std::vector<util::BigUInt> indexPerNode;
  std::vector<graph::Vertex> rootPerNode;
  // Unicast fields.
  std::vector<graph::Vertex> parent;
  std::vector<std::uint32_t> dist;
  std::vector<util::BigUInt> a;
  std::vector<util::BigUInt> b;
};

class SymDamProver {
 public:
  virtual ~SymDamProver() = default;
  virtual SymDamMessage respond(const graph::Graph& g,
                                const std::vector<util::BigUInt>& challenges) = 0;
};

class SymDamProtocol {
 public:
  // Use makeProtocol2Family(n, rng) for the paper's parameters, or
  // makeProtocol1Family for the E8 "short hash" ablation.
  explicit SymDamProtocol(hash::LinearHashFamily family);

  const hash::LinearHashFamily& family() const { return family_; }

  RunResult run(const graph::Graph& g, SymDamProver& prover, util::Rng& rng) const;

  template <typename ProverFactory>
  AcceptanceStats estimateAcceptance(const graph::Graph& g, ProverFactory&& proverFactory,
                                     std::size_t trials, util::Rng& rng) const {
    AcceptanceStats stats;
    stats.trials = trials;
    for (std::size_t t = 0; t < trials; ++t) {
      auto prover = proverFactory();
      if (run(g, *prover, rng).accepted) ++stats.accepts;
    }
    return stats;
  }

  // Structural cost with the paper's p in [10 n^(n+2), 100 n^(n+2)]:
  // Theta(n log n) bits per node.
  static CostBreakdown costModel(std::size_t n);

  bool nodeDecision(const graph::Graph& g, graph::Vertex v, const SymDamMessage& msg,
                    const util::BigUInt& ownChallenge) const;

 private:
  // nodeDecision with optional precomputed chain bases: expectABase[v] /
  // expectBBase[v] are the node's own-row hashes under the uniform broadcast
  // index (null = compute per node). run() batches them when the broadcast
  // is uniform; values are identical either way.
  bool nodeDecisionAt(const graph::Graph& g, graph::Vertex v, const SymDamMessage& msg,
                      const util::BigUInt& ownChallenge,
                      const util::BigUInt* expectABase,
                      const util::BigUInt* expectBBase) const;

  hash::LinearHashFamily family_;
};

// Honest prover: real automorphism, echoes the root's index.
class HonestSymDamProver : public SymDamProver {
 public:
  explicit HonestSymDamProver(const hash::LinearHashFamily& family);
  SymDamMessage respond(const graph::Graph& g,
                        const std::vector<util::BigUInt>& challenges) override;

 private:
  const hash::LinearHashFamily& family_;
};

// Adaptive cheater for NON-symmetric graphs: sees the seed, then samples up
// to `searchBudget` random non-identity mappings sigma : V -> V looking for
// h_i(sum [v, N(v)]) == h_i(sum [sigma(v), sigma(N(v))]); falls back to the
// best-effort mapping if none found. Measures how much adaptivity buys
// against a given hash size.
class AdaptiveCollisionProver : public SymDamProver {
 public:
  AdaptiveCollisionProver(const hash::LinearHashFamily& family, std::size_t searchBudget,
                          std::uint64_t seed);
  SymDamMessage respond(const graph::Graph& g,
                        const std::vector<util::BigUInt>& challenges) override;

  // True if the last respond() found a genuine fingerprint collision.
  bool lastSearchSucceeded() const { return lastSearchSucceeded_; }

 private:
  const hash::LinearHashFamily& family_;
  std::size_t searchBudget_;
  util::Rng rng_;
  bool lastSearchSucceeded_ = false;
};

// Fingerprint of sum_v [sigma(v), sigma(N(v))] under h_index — the quantity
// both sides of the root equality check reduce to (exposed for tests and
// for the adaptive search).
util::BigUInt mappedMatrixFingerprint(const graph::Graph& g,
                                      const hash::LinearHashFamily& family,
                                      const util::BigUInt& index,
                                      const std::vector<graph::Vertex>& sigma);

}  // namespace dip::core
