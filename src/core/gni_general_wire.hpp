// Wire formats for the general-graph GNI dAMAM protocol (honest/consistent
// message shape). Same layout as the rigid-instance formats in
// gni_wire.hpp with the extra alpha-commitment fields: per repetition the
// prover unicasts both sigma(v) and alpha(sigma(v)), and M2 carries the
// five permutation/automorphism chains plus four b=1 consistency chains.
// With these, every GniGeneralProtocol charge is backed by a real byte
// stream (cross-checked under DIP_AUDIT).
#pragma once

#include "core/gni_general.hpp"
#include "core/gni_wire.hpp"

namespace dip::core::wire {

// M1: broadcast = root + challenge echo + claimed/b bits; unicast = tree,
// (sigma, alpha) values, and claims for claimed b=1 repetitions.
EncodedRound encodeGniGenFirst(const GniGenFirstMessage& message,
                               const GniInstance& instance,
                               const GniGeneralParams& params);
GniGenFirstMessage decodeGniGenFirst(const EncodedRound& round,
                                     const GniInstance& instance,
                                     const GniGeneralParams& params);

// M2: broadcast = check-seed echo; unicast = per-claimed-repetition chains.
EncodedRound encodeGniGenSecond(const GniGenSecondMessage& message,
                                const GniGenFirstMessage& first,
                                const GniInstance& instance,
                                const GniGeneralParams& params);
GniGenSecondMessage decodeGniGenSecond(const EncodedRound& round,
                                       const GniGenFirstMessage& first,
                                       const GniInstance& instance,
                                       const GniGeneralParams& params);

}  // namespace dip::core::wire
