#include "core/api.hpp"

#include "core/amplify.hpp"
#include "core/sym_dmam.hpp"
#include "core/sym_input.hpp"
#include "graph/isomorphism.hpp"
#include "hash/linear_hash.hpp"
#include "util/rng.hpp"

namespace dip::core {

Decision decideSymmetry(const graph::Graph& network, const DecideOptions& options) {
  Decision decision;
  decision.rounds = 3;
  if (graph::isRigid(network)) {
    // The honest prover has no witness; in the live protocol it would send
    // nothing convincing and every run rejects.
    decision.proverHadWitness = false;
    return decision;
  }
  decision.proverHadWitness = true;
  util::Rng setup(options.seed ^ 0x53594d31u);
  SymDmamProtocol protocol(hash::makeProtocol1Family(network.numVertices(), setup));
  HonestSymDmamProver prover(protocol.family());
  util::Rng rng(options.seed);
  RunResult result = runAmplified(protocol, network, prover,
                                  std::max<std::size_t>(1, options.repetitions), rng);
  decision.accepted = result.accepted;
  decision.maxBitsPerNode = result.transcript.maxPerNodeBits();
  return decision;
}

Decision decideInputSymmetry(const graph::Graph& network, const graph::Graph& input,
                             const DecideOptions& options) {
  Decision decision;
  decision.rounds = 3;
  if (graph::isRigid(input)) {
    decision.proverHadWitness = false;
    return decision;
  }
  decision.proverHadWitness = true;
  util::Rng setup(options.seed ^ 0x53594d32u);
  SymInputProtocol protocol(hash::makeProtocol1Family(network.numVertices(), setup));
  HonestSymInputProver prover(protocol.family());
  SymInputInstance instance{network, input};
  util::Rng rng(options.seed);
  RunResult result = runAmplified(protocol, instance, prover,
                                  std::max<std::size_t>(1, options.repetitions), rng);
  decision.accepted = result.accepted;
  decision.maxBitsPerNode = result.transcript.maxPerNodeBits();
  return decision;
}

Decision decideNonIsomorphism(const graph::Graph& g0, const graph::Graph& g1,
                              const DecideOptions& options) {
  Decision decision;
  decision.rounds = 4;
  decision.proverHadWitness = true;  // The GS prover always participates.
  const std::size_t n = g0.numVertices();
  util::Rng setup(options.seed ^ 0x474e4931u);
  util::Rng rng(options.seed);

  if (graph::isRigid(g0) && graph::isRigid(g1)) {
    GniParams params = GniParams::choose(n, setup);
    GniAmamProtocol protocol(params);
    HonestGniProver prover(params);
    RunResult result = protocol.run(GniInstance{g0, g1}, prover, rng);
    decision.accepted = result.accepted;
    decision.maxBitsPerNode = result.transcript.maxPerNodeBits();
    return decision;
  }
  // Symmetric inputs: the automorphism-compensated protocol.
  GniGeneralParams params = GniGeneralParams::choose(n, setup);
  GniGeneralProtocol protocol(params);
  HonestGniGeneralProver prover(params);
  RunResult result = protocol.run(GniInstance{g0, g1}, prover, rng);
  decision.accepted = result.accepted;
  decision.maxBitsPerNode = result.transcript.maxPerNodeBits();
  return decision;
}

}  // namespace dip::core
