// Wire formats: bit-exact serialization of protocol messages.
//
// Transcripts charge each message its encoded size; this module supplies
// the actual encodings, so the charged numbers are backed by real byte
// streams (tests verify round trips and that encoded lengths equal the
// charged bit counts). Wire formats describe the honest/consistent message
// shape: broadcast fields are encoded once (the simulation's per-node
// broadcast copies exist so that adversarial provers can attempt
// inconsistent broadcasts, which never reach a wire).
#pragma once

#include <cstddef>
#include <vector>

#include "core/dsym_dam.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "util/bitio.hpp"

namespace dip::core::wire {

// A fully encoded prover round: one broadcast payload plus one unicast
// payload per node.
//
// Every encoder takes an optional util::Arena: when given, all payload
// bytes bump-allocate from it (see BitWriter's arena backend) so the
// audit-mode re-encoding inside a trial costs no heap traffic; the round
// must then be dropped before the arena resets. With no arena the payloads
// own heap storage and the round is freestanding.
struct EncodedRound {
  util::BitWriter broadcast;
  std::vector<util::BitWriter> unicast;

  std::size_t broadcastBits() const { return broadcast.bitCount(); }
  std::size_t unicastBits(graph::Vertex v) const { return unicast.at(v).bitCount(); }
  // Bits a single node receives: the broadcast plus its own unicast share.
  std::size_t bitsForNode(graph::Vertex v) const {
    return broadcastBits() + unicastBits(v);
  }
};

// Decoder-side shape check: throws std::invalid_argument unless the round
// carries exactly one unicast payload per node. Every decoder calls this
// before indexing, so a malformed round fails cleanly instead of reading
// out of bounds (BitReader bounds-checks the payloads themselves).
void requireUnicastCount(const EncodedRound& round, std::size_t n);

// ---- Protocol 1 (dMAM) ----

EncodedRound encodeSymDmamFirst(const SymDmamFirstMessage& message, std::size_t n,
                                util::Arena* arena = nullptr);
SymDmamFirstMessage decodeSymDmamFirst(const EncodedRound& round, std::size_t n);

EncodedRound encodeSymDmamSecond(const SymDmamSecondMessage& message, std::size_t n,
                                 const hash::LinearHashFamily& family,
                                 util::Arena* arena = nullptr);
SymDmamSecondMessage decodeSymDmamSecond(const EncodedRound& round, std::size_t n,
                                         const hash::LinearHashFamily& family);

// ---- Protocol 2 (dAM) ----

EncodedRound encodeSymDam(const SymDamMessage& message, std::size_t n,
                          const hash::LinearHashFamily& family,
                          util::Arena* arena = nullptr);
SymDamMessage decodeSymDam(const EncodedRound& round, std::size_t n,
                           const hash::LinearHashFamily& family);

// ---- DSym (dAM) ----

EncodedRound encodeDSym(const DSymMessage& message, std::size_t n,
                        const hash::LinearHashFamily& family,
                        util::Arena* arena = nullptr);
DSymMessage decodeDSym(const EncodedRound& round, std::size_t n,
                       const hash::LinearHashFamily& family);

// ---- Challenges (verifier -> prover) ----

// Encodes one node's hash-index challenge; exactly family.seedBits() bits.
util::BitWriter encodeChallenge(const util::BigUInt& index,
                                const hash::LinearHashFamily& family,
                                util::Arena* arena = nullptr);
util::BigUInt decodeChallenge(const util::BitWriter& encoded,
                              const hash::LinearHashFamily& family);

}  // namespace dip::core::wire
