#include "core/sym_dam.hpp"

#include <stdexcept>

#include "core/wire.hpp"
#include "graph/isomorphism.hpp"
#include "hash/batch_eval.hpp"
#include "net/audit.hpp"
#include "util/bitio.hpp"

namespace dip::core {

util::BigUInt mappedMatrixFingerprint(const graph::Graph& g,
                                      const hash::LinearHashFamily& family,
                                      const util::BigUInt& index,
                                      const std::vector<graph::Vertex>& sigma) {
  const std::size_t n = g.numVertices();
  if (hash::batchEnabled()) {
    // The collision search evaluates thousands of candidate sigmas under one
    // pinned index: the batch evaluator's shared power tables make each
    // fingerprint popcount adds plus one multiply per row (the scalar walk
    // below pays ~n multiplies per row).
    thread_local hash::BatchLinearHashEvaluator batch;
    thread_local std::vector<std::uint64_t> rowIndices;
    thread_local std::vector<util::DynBitset> rows;
    batch.rebind(family.prime(), family.dimension(), index);
    rowIndices.clear();
    rows.clear();
    rowIndices.reserve(n);
    rows.reserve(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      rowIndices.push_back(sigma[v]);
      rows.push_back(graph::Graph::imageOf(g.closedRow(v), sigma));
    }
    return batch.accumulateMatrixRows(rowIndices, rows, n);
  }
  // Scalar path (DIP_BATCH=0): rebind short-circuits and the rows accumulate
  // in the evaluator's backend domain, converting out once per fingerprint.
  thread_local hash::LinearHashEvaluator evaluator;
  evaluator.rebind(family.prime(), family.dimension(), index);
  evaluator.resetAccumulator();
  for (graph::Vertex v = 0; v < n; ++v) {
    evaluator.accumulateMatrixRow(sigma[v], graph::Graph::imageOf(g.closedRow(v), sigma), n);
  }
  return evaluator.accumulatedValue();
}

SymDamProtocol::SymDamProtocol(hash::LinearHashFamily family)
    : family_(std::move(family)) {}

bool SymDamProtocol::nodeDecision(const graph::Graph& g, graph::Vertex v,
                                  const SymDamMessage& msg,
                                  const util::BigUInt& ownChallenge) const {
  return nodeDecisionAt(g, v, msg, ownChallenge, nullptr, nullptr);
}

bool SymDamProtocol::nodeDecisionAt(const graph::Graph& g, graph::Vertex v,
                                    const SymDamMessage& msg,
                                    const util::BigUInt& ownChallenge,
                                    const util::BigUInt* expectABase,
                                    const util::BigUInt* expectBBase) const {
  const std::size_t n = g.numVertices();
  const util::BigUInt& p = family_.prime();

  // Broadcast consistency (rho, index, root) against all neighbors.
  const std::vector<graph::Vertex>& rho = msg.rhoPerNode[v];
  const util::BigUInt& index = msg.indexPerNode[v];
  graph::Vertex root = msg.rootPerNode[v];
  if (rho.size() != n || root >= n || index >= p) return false;
  for (graph::Vertex u : rho) {
    if (u >= n) return false;
  }
  bool consistent = true;
  g.row(v).forEachSet([&](std::size_t u) {
    if (msg.rhoPerNode[u] != rho || !(msg.indexPerNode[u] == index) ||
        msg.rootPerNode[u] != root) {
      consistent = false;
    }
  });
  if (!consistent) return false;

  // Line 1: spanning-tree local checks. The advice struct is rebuilt per
  // node from the message fields; copy-assigning into a thread-local keeps
  // the vector capacity across the n decisions (and across trials).
  thread_local net::SpanningTreeAdvice tree;
  tree.root = root;
  tree.parent = msg.parent;
  tree.dist = msg.dist;
  if (!net::verifyTreeLocally(g, tree, v)) return false;

  // Lines 2-3: chain verification. rho is fully known here, so the node
  // evaluates rho(N(v)) itself. Thread-local accumulators keep the fold's
  // limb storage alive across the n decisions.
  thread_local util::BigUInt expectA;
  thread_local util::BigUInt expectB;
  expectA = expectABase ? expectABase[v]
                        : family_.hashMatrixRow(index, v, g.closedRow(v), n);
  expectB = expectBBase ? expectBBase[v]
                        : family_.hashMatrixRow(
                              index, rho[v], graph::Graph::imageOf(g.closedRow(v), rho), n);
  bool childrenOk = true;
  net::forEachChild(g, tree, v, [&](graph::Vertex child) {
    if (!childrenOk) return;
    if (msg.a[child] >= p || msg.b[child] >= p) {
      childrenOk = false;
      return;
    }
    util::addModInPlace(expectA, msg.a[child], p);
    util::addModInPlace(expectB, msg.b[child], p);
  });
  if (!childrenOk) return false;
  if (!(msg.a[v] == expectA) || !(msg.b[v] == expectB)) return false;

  // Line 4: root-only checks.
  if (v == root) {
    if (!(msg.a[v] == msg.b[v])) return false;
    if (rho[v] == v) return false;
    if (!(index == ownChallenge)) return false;
  }
  return true;
}

RunResult SymDamProtocol::run(const graph::Graph& g, SymDamProver& prover,
                              util::Rng& rng) const {
  const std::size_t n = g.numVertices();
  if (n == 0) throw std::invalid_argument("SymDamProtocol: empty graph");
  const unsigned idBits = util::bitsFor(n);
  const std::size_t seedBits = family_.seedBits();
  const std::size_t valueBits = family_.valueBits();

  RunResult result;
  result.transcript = net::Transcript(n);
  net::Transcript& transcript = result.transcript;

  // A: challenges first (this is what makes it Arthur-Merlin).
  transcript.beginRound("A: hash indices");
  std::vector<util::BigUInt> challenges;
  challenges.reserve(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    util::Rng nodeRng = rng.split(v);
    challenges.push_back(family_.randomIndex(nodeRng));
    transcript.chargeToProver(v, seedBits);
  }
#if DIP_AUDIT
  net::roundArena().reset();
  for (graph::Vertex v = 0; v < n; ++v) {
    net::auditCharge(
        "SymDam/A", v, transcript.roundBitsToProver(v),
        wire::encodeChallenge(challenges[v], family_, &net::roundArena()).bitCount());
  }
#endif

  // M: the prover's single response.
  transcript.beginRound("M: rho/index/root/tree/chains");
  SymDamMessage msg = prover.respond(g, challenges);
  if (msg.rhoPerNode.size() != n || msg.indexPerNode.size() != n ||
      msg.rootPerNode.size() != n || msg.parent.size() != n || msg.dist.size() != n ||
      msg.a.size() != n || msg.b.size() != n) {
    throw std::runtime_error("SymDamProver: malformed message");
  }
  transcript.chargeBroadcastFromProver(n * idBits   // Full rho.
                                       + seedBits   // Index echo.
                                       + idBits);   // Root.
  for (graph::Vertex v = 0; v < n; ++v) {
    transcript.chargeFromProver(v, 2 * idBits        // t_v, d_v.
                                       + 2 * valueBits);  // a_v, b_v.
  }
#if DIP_AUDIT
  net::auditChargedRound("SymDam/M", transcript,
                         [&] { return wire::encodeSymDam(msg, n, family_, &net::roundArena()); });
#endif

  // Decisions. Under the honest uniform broadcast (one index, one rho copy
  // at every node, entries in range) the 2n per-node row hashes all share a
  // seed, so they batch over shared power tables; any trial failing the
  // precondition falls back to per-node scalar recomputation with identical
  // values.
  thread_local std::vector<util::BigUInt> baseA;
  thread_local std::vector<util::BigUInt> baseB;
  const util::BigUInt* preA = nullptr;
  const util::BigUInt* preB = nullptr;
  if (hash::batchEnabled() && n > 0) {
    const util::BigUInt& index = msg.indexPerNode[0];
    const std::vector<graph::Vertex>& rho = msg.rhoPerNode[0];
    bool uniform = index < family_.prime() && rho.size() == n;
    for (graph::Vertex v = 1; uniform && v < n; ++v) {
      if (!(msg.indexPerNode[v] == index) || msg.rhoPerNode[v] != rho) {
        uniform = false;
      }
    }
    for (graph::Vertex v = 0; uniform && v < n; ++v) {
      if (rho[v] >= n) uniform = false;
    }
    if (uniform) {
      thread_local hash::BatchLinearHashEvaluator batch;
      thread_local std::vector<std::uint64_t> aIdx;
      thread_local std::vector<std::uint64_t> bIdx;
      thread_local std::vector<util::DynBitset> aRows;
      thread_local std::vector<util::DynBitset> bRows;
      batch.rebind(family_.prime(), family_.dimension(), index);
      aIdx.clear();
      bIdx.clear();
      aRows.clear();
      bRows.clear();
      aIdx.reserve(n);
      bIdx.reserve(n);
      aRows.reserve(n);
      bRows.reserve(n);
      for (graph::Vertex v = 0; v < n; ++v) {
        aIdx.push_back(v);
        aRows.push_back(g.closedRow(v));
        bIdx.push_back(rho[v]);
        bRows.push_back(graph::Graph::imageOf(g.closedRow(v), rho));
      }
      batch.hashMatrixRows(aIdx, aRows, n, baseA);
      batch.hashMatrixRows(bIdx, bRows, n, baseB);
      preA = baseA.data();
      preB = baseB.data();
    }
  }
  result.accepted = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!nodeDecisionAt(g, v, msg, challenges[v], preA, preB)) {
      result.accepted = false;
      break;
    }
  }
  return result;
}

CostBreakdown SymDamProtocol::costModel(std::size_t n) {
  const unsigned idBits = util::bitsFor(n);
  // p in [10 n^(n+2), 100 n^(n+2)] => about (n+2) log2(n) + 7 bits.
  util::BigUInt pHi =
      util::BigUInt{100} * util::BigUInt::pow(util::BigUInt{n}, n + 2);
  const std::size_t hashBits = pHi.bitLength();
  CostBreakdown cost;
  cost.bitsToProverPerNode = hashBits;
  cost.bitsFromProverPerNode = n * idBits       // Full rho broadcast.
                               + hashBits       // Index echo.
                               + idBits         // Root.
                               + 2 * idBits     // t_v, d_v.
                               + 2 * hashBits;  // a_v, b_v.
  return cost;
}

// ---- Honest prover ----

HonestSymDamProver::HonestSymDamProver(const hash::LinearHashFamily& family)
    : family_(family) {}

SymDamMessage HonestSymDamProver::respond(const graph::Graph& g,
                                          const std::vector<util::BigUInt>& challenges) {
  auto rho = graph::findNontrivialAutomorphism(g);
  if (!rho) throw std::invalid_argument("HonestSymDamProver: graph is not symmetric");
  const std::size_t n = g.numVertices();
  graph::Vertex root = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    if ((*rho)[v] != v) {
      root = v;
      break;
    }
  }
  net::SpanningTreeAdvice tree = net::buildBfsTree(g, root);
  const util::BigUInt& index = challenges[root];
  ChainValues chains = aggregateChains(g, family_, index, *rho, tree);

  SymDamMessage msg;
  msg.rhoPerNode.assign(n, *rho);
  msg.indexPerNode.assign(n, index);
  msg.rootPerNode.assign(n, root);
  msg.parent = tree.parent;
  msg.dist = tree.dist;
  msg.a = std::move(chains.a);
  msg.b = std::move(chains.b);
  return msg;
}

// ---- Adaptive cheater ----

AdaptiveCollisionProver::AdaptiveCollisionProver(const hash::LinearHashFamily& family,
                                                 std::size_t searchBudget,
                                                 std::uint64_t seed)
    : family_(family), searchBudget_(searchBudget), rng_(seed) {}

SymDamMessage AdaptiveCollisionProver::respond(
    const graph::Graph& g, const std::vector<util::BigUInt>& challenges) {
  const std::size_t n = g.numVertices();
  lastSearchSucceeded_ = false;

  // The cheater may pick any root; the index echoed must match that root's
  // challenge. Try root 0's challenge (any fixed choice is equivalent: the
  // challenge is already visible).
  // Strategy: for each candidate mapping sigma (non-identity), the forced
  // root value b_r equals fingerprint(sigma), and a_r equals
  // fingerprint(identity); search for a collision.
  std::vector<graph::Vertex> best;
  graph::Vertex bestRoot = 0;
  util::BigUInt index;

  // Precompute per-root targets lazily: fingerprint depends on the index,
  // which depends on the chosen root's challenge. Use root candidates in
  // order; for each root, run a slice of the budget.
  const std::size_t rootsToTry = std::min<std::size_t>(n, 4);
  const std::size_t perRootBudget = searchBudget_ / rootsToTry + 1;
  for (std::size_t rootIdx = 0; rootIdx < rootsToTry && !lastSearchSucceeded_; ++rootIdx) {
    graph::Vertex root = static_cast<graph::Vertex>(rootIdx);
    const util::BigUInt& candidateIndex = challenges[root];
    util::BigUInt candidateTarget =
        mappedMatrixFingerprint(g, family_, candidateIndex,
                                graph::identityPermutation(n));
    for (std::size_t attempt = 0; attempt < perRootBudget; ++attempt) {
      // Random mapping V -> V (not necessarily a permutation — Theorem 3.5
      // union-bounds over all n^n mappings, so the adversary may use any).
      std::vector<graph::Vertex> sigma(n);
      for (auto& s : sigma) s = static_cast<graph::Vertex>(rng_.nextBelow(n));
      if (sigma[root] == root) sigma[root] = static_cast<graph::Vertex>((root + 1) % n);
      if (graph::isIdentity(sigma)) continue;
      util::BigUInt fp = mappedMatrixFingerprint(g, family_, candidateIndex, sigma);
      if (fp == candidateTarget) {
        best = sigma;
        bestRoot = root;
        index = candidateIndex;
        lastSearchSucceeded_ = true;
        break;
      }
    }
  }

  if (!lastSearchSucceeded_) {
    // Doomed: play a transposition and hope (the root equality will fail).
    best = graph::identityPermutation(n);
    std::swap(best[0], best[n - 1]);
    bestRoot = 0;
    index = challenges[bestRoot];
  }

  net::SpanningTreeAdvice tree = net::buildBfsTree(g, bestRoot);
  ChainValues chains = aggregateChains(g, family_, index, best, tree);
  SymDamMessage msg;
  msg.rhoPerNode.assign(n, best);
  msg.indexPerNode.assign(n, index);
  msg.rootPerNode.assign(n, bestRoot);
  msg.parent = tree.parent;
  msg.dist = tree.dist;
  msg.a = std::move(chains.a);
  msg.b = std::move(chains.b);
  return msg;
}

}  // namespace dip::core
