// Wire formats for the input-graph symmetry protocol (honest/consistent
// message shape). Claim counts are determined by the instance's input
// graph (claims[v] covers v's sorted closed H-neighborhood), so both
// directions need the instance. With these, every SymInputProtocol charge
// is backed by a real byte stream (cross-checked under DIP_AUDIT).
#pragma once

#include "core/sym_input.hpp"
#include "core/wire.hpp"

namespace dip::core::wire {

// M1: broadcast = witness id; unicast = rho, tree advice, claimed images.
EncodedRound encodeSymInputFirst(const SymInputFirstMessage& message,
                                 const SymInputInstance& instance);
SymInputFirstMessage decodeSymInputFirst(const EncodedRound& round,
                                         const SymInputInstance& instance);

// M2: broadcast = index echo; unicast = the four chain values per node.
EncodedRound encodeSymInputSecond(const SymInputSecondMessage& message, std::size_t n,
                                  const hash::LinearHashFamily& family);
SymInputSecondMessage decodeSymInputSecond(const EncodedRound& round, std::size_t n,
                                           const hash::LinearHashFamily& family);

}  // namespace dip::core::wire
