// The deterministic parallel trial engine.
//
// TrialRunner fans a batch of independent protocol trials across a
// std::thread pool. Determinism contract (see docs/SIMULATION.md):
//
//   1. Trial t draws all of its randomness from a counter-based stream
//      derived as Rng(masterSeed).child(t) — a pure function of
//      (masterSeed, t), independent of scheduling, thread count, and of
//      every other trial.
//   2. Each trial writes its TrialOutcome into its own slot of a
//      preallocated results array; after the workers join, the runner folds
//      the slots in trial-index order into TrialStats. No accumulator is
//      shared between workers, so there is no merge-order race to get wrong.
//   3. Shared inputs (protocol, instance, hash family) are captured by
//      const reference and must not be mutated by trial bodies. Protocol
//      run() paths are const and allocate per-run state locally, so
//      concurrent trials are safe — the tsan preset guards this.
//
// Exceptions thrown by a trial body (including the DIP_AUDIT logic_error
// cross-checks, which stay armed inside workers) are captured, the batch is
// drained, and the first one (by trial index) is rethrown on the caller's
// thread.
//
// Thread workers belong HERE: dip-lint's thread-containment rule forbids
// std::thread anywhere else under src/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "sim/trial.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace dip::sim {

// Per-trial view handed to the body: the trial's index within the batch,
// its private counter-derived stream, and the owning worker's scratch
// arena. The arena is reset before every trial (so slices never leak
// between trials, and under ASan a stale cross-trial pointer faults); trial
// bodies may bump-allocate per-round scratch from it without touching the
// heap. It is never null inside run().
struct TrialContext {
  std::size_t index = 0;
  util::RngStream rng{0};
  util::Arena* arena = nullptr;
};

struct TrialConfig {
  std::uint64_t masterSeed = 0;
  // 0 = resolve from the DIP_THREADS environment variable, falling back to
  // the hardware concurrency. Any positive value is taken as-is.
  unsigned threads = 0;
};

// The thread count a config resolves to (exposed so benches can report it).
// resolveThreads(0) consults DIP_THREADS, then std::thread::hardware_concurrency().
unsigned resolveThreads(unsigned requested);

class TrialRunner {
 public:
  explicit TrialRunner(TrialConfig config);

  unsigned threads() const { return threads_; }
  std::uint64_t masterSeed() const { return config_.masterSeed; }

  // Runs `trials` executions of `body` and folds the outcomes in index
  // order. If `outcomes` is non-null it receives the full per-trial vector
  // (the determinism tests compare these across thread counts).
  TrialStats run(std::size_t trials,
                 const std::function<TrialOutcome(TrialContext&)>& body,
                 std::vector<TrialOutcome>* outcomes = nullptr) const;

  // Runs the GLOBAL trial indices [lo, hi) and returns their outcomes, with
  // outcome i corresponding to global index lo + i. ctx.index and the
  // counter-derived stream both use the global index, so a range run is a
  // verbatim slice of the full run: run(n, body) is runRange(0, n, body)
  // folded through sim::foldOutcomes. This is the seed-range primitive the
  // distributed workers execute — any partition of [0, n) into ranges,
  // concatenated back in index order, reproduces the single-process fold
  // bit for bit.
  std::vector<TrialOutcome> runRange(
      std::uint64_t lo, std::uint64_t hi,
      const std::function<TrialOutcome(TrialContext&)>& body) const;

 private:
  TrialConfig config_;
  unsigned threads_;
};

}  // namespace dip::sim
