#include "sim/shard.hpp"

#include <algorithm>
#include <stdexcept>

namespace dip::sim {

std::vector<SeedRange> shardRanges(std::uint64_t trials, std::uint64_t grain) {
  if (grain == 0) grain = 1;
  std::vector<SeedRange> ranges;
  ranges.reserve(static_cast<std::size_t>((trials + grain - 1) / grain));
  std::uint64_t index = 0;
  for (std::uint64_t lo = 0; lo < trials; lo += grain) {
    ranges.push_back({index++, lo, std::min(lo + grain, trials)});
  }
  return ranges;
}

ShardScheduler::ShardScheduler(std::uint64_t trials, std::uint64_t grain)
    : trials_(trials), ranges_(shardRanges(trials, grain)) {
  states_.assign(ranges_.size(), State::kPending);
  assignee_.assign(ranges_.size(), 0);
  for (const SeedRange& range : ranges_) pending_.push_back(range.index);
}

const SeedRange& ShardScheduler::range(std::uint64_t index) const {
  if (index >= ranges_.size()) {
    throw std::out_of_range("ShardScheduler::range: index out of range");
  }
  return ranges_[static_cast<std::size_t>(index)];
}

std::optional<SeedRange> ShardScheduler::claim(std::uint64_t worker) {
  while (!pending_.empty()) {
    const std::uint64_t index = pending_.front();
    pending_.pop_front();
    // A pending entry can be stale: the range may have completed while it
    // sat queued after a re-issue (its original assignee delivered late).
    if (states_[static_cast<std::size_t>(index)] != State::kPending) continue;
    states_[static_cast<std::size_t>(index)] = State::kAssigned;
    assignee_[static_cast<std::size_t>(index)] = worker;
    return ranges_[static_cast<std::size_t>(index)];
  }
  return std::nullopt;
}

bool ShardScheduler::complete(std::uint64_t rangeIndex) {
  if (rangeIndex >= ranges_.size()) {
    throw std::out_of_range("ShardScheduler::complete: stale range index");
  }
  State& state = states_[static_cast<std::size_t>(rangeIndex)];
  if (state == State::kDone) {
    ++duplicates_;
    return false;  // Duplicate: already folded.
  }
  state = State::kDone;
  ++completed_;
  return true;
}

std::size_t ShardScheduler::reissueWorker(std::uint64_t worker) {
  std::size_t requeued = 0;
  for (const SeedRange& range : ranges_) {
    const std::size_t i = static_cast<std::size_t>(range.index);
    if (states_[i] == State::kAssigned && assignee_[i] == worker) {
      states_[i] = State::kPending;
      pending_.push_back(range.index);
      ++requeued;
    }
  }
  // Lowest-index-first keeps re-issue deterministic given the same claim
  // sequence (and the fold never depends on it either way).
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()), pending_.end());
  reissued_ += requeued;
  return requeued;
}

std::size_t ShardScheduler::outstandingFor(std::uint64_t worker) const {
  std::size_t count = 0;
  for (const SeedRange& range : ranges_) {
    const std::size_t i = static_cast<std::size_t>(range.index);
    if (states_[i] == State::kAssigned && assignee_[i] == worker) ++count;
  }
  return count;
}

}  // namespace dip::sim
