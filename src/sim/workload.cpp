#include "sim/workload.hpp"

#include <array>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/dsym_dam.hpp"
#include "core/gni_amam.hpp"
#include "core/gni_general.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "core/sym_input.hpp"
#include "graph/generators.hpp"
#include "hash/linear_hash.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

namespace dip::sim::workload {

namespace {

// Registry rows. Seeds, sizes and trial counts are COMMITTED values: the
// stats_regression goldens and BENCH_throughput.json pin the resulting
// digests, so changing any number here is a baseline-regenerating change.
constexpr std::array<CellInfo, 6> kCells{{
    {"sym_dmam_p1", 200, 70101, false},
    {"sym_dam_p2", 4000, 70201, false},
    {"dsym_dam", 1500, 70301, false},
    {"sym_input", 1200, 70401, false},
    {"gni_amam", 4, 70501, true},
    {"gni_general", 2, 70601, true},
}};

TrialConfig cellConfig(const TrialConfig& base, std::uint64_t offset) {
  TrialConfig config = base;
  config.masterSeed = base.masterSeed + offset;
  return config;
}

// Type-erased cell: construction captures the protocol/instance state in a
// range closure once; both substrates call through it.
class LambdaCell : public Cell {
 public:
  using RangeFn = std::function<std::vector<TrialOutcome>(
      std::uint64_t, std::uint64_t, const TrialConfig&)>;

  LambdaCell(const CellInfo& info, RangeFn range)
      : Cell(info), range_(std::move(range)) {}

  std::vector<TrialOutcome> runRange(std::uint64_t lo, std::uint64_t hi,
                                     const TrialConfig& config) const override {
    return range_(lo, hi, config);
  }

 private:
  RangeFn range_;
};

std::unique_ptr<Cell> makeSymDmamP1(const CellInfo& info) {
  // Large enough that hashing the n x n matrix dominates the trial; this
  // is the cell where the batch engine's row factorization shows up most.
  const std::size_t n = 48;
  util::Rng rng(701);
  auto protocol =
      std::make_shared<core::SymDmamProtocol>(hash::makeProtocol1FamilyCached(n));
  auto g = std::make_shared<graph::Graph>(graph::randomSymmetricConnected(n, rng));
  const std::uint64_t offset = info.seedOffset;
  return std::make_unique<LambdaCell>(
      info, [protocol, g, offset](std::uint64_t lo, std::uint64_t hi,
                                  const TrialConfig& config) {
        return estimateAcceptanceRange(
            *protocol, *g,
            [&](std::size_t) {
              return std::make_unique<core::HonestSymDmamProver>(protocol->family());
            },
            lo, hi, cellConfig(config, offset));
      });
}

std::unique_ptr<Cell> makeSymDamP2(const CellInfo& info) {
  const std::size_t n = 6;
  util::Rng rng(702);
  auto protocol =
      std::make_shared<core::SymDamProtocol>(hash::makeProtocol2FamilyCached(n));
  auto g = std::make_shared<graph::Graph>(graph::randomSymmetricConnected(n, rng));
  const std::uint64_t offset = info.seedOffset;
  return std::make_unique<LambdaCell>(
      info, [protocol, g, offset](std::uint64_t lo, std::uint64_t hi,
                                  const TrialConfig& config) {
        return estimateAcceptanceRange(
            *protocol, *g,
            [&](std::size_t) {
              return std::make_unique<core::HonestSymDamProver>(protocol->family());
            },
            lo, hi, cellConfig(config, offset));
      });
}

std::unique_ptr<Cell> makeDsymDam(const CellInfo& info) {
  const std::size_t side = 8;
  util::Rng rng(703);
  auto layout = std::make_shared<graph::DSymLayout>(graph::dsymLayout(side, 1));
  auto protocol = std::make_shared<core::DSymDamProtocol>(
      *layout, hash::makeProtocol1FamilyCached(layout->numVertices));
  graph::Graph f = graph::randomRigidConnected(side, rng);
  auto yes = std::make_shared<graph::Graph>(graph::dsymInstance(f, 1));
  const std::uint64_t offset = info.seedOffset;
  return std::make_unique<LambdaCell>(
      info, [layout, protocol, yes, offset](std::uint64_t lo, std::uint64_t hi,
                                            const TrialConfig& config) {
        return estimateAcceptanceRange(
            *protocol, *yes,
            [&](std::size_t) {
              return std::make_unique<core::HonestDSymProver>(*layout,
                                                              protocol->family());
            },
            lo, hi, cellConfig(config, offset));
      });
}

std::unique_ptr<Cell> makeSymInput(const CellInfo& info) {
  const std::size_t n = 8;
  util::Rng rng(704);
  auto protocol =
      std::make_shared<core::SymInputProtocol>(hash::makeProtocol1FamilyCached(n));
  auto instance = std::make_shared<core::SymInputInstance>(core::SymInputInstance{
      graph::randomConnected(n, n / 2, rng), graph::randomSymmetricConnected(n, rng)});
  const std::uint64_t offset = info.seedOffset;
  return std::make_unique<LambdaCell>(
      info, [protocol, instance, offset](std::uint64_t lo, std::uint64_t hi,
                                         const TrialConfig& config) {
        return estimateAcceptanceRange(
            *protocol, *instance,
            [&](std::size_t) {
              return std::make_unique<core::HonestSymInputProver>(protocol->family());
            },
            lo, hi, cellConfig(config, offset));
      });
}

std::unique_ptr<Cell> makeGniAmam(const CellInfo& info) {
  util::Rng setup(705);
  auto params = std::make_shared<core::GniParams>(core::GniParams::choose(6, setup));
  auto protocol = std::make_shared<core::GniAmamProtocol>(*params);
  util::Rng rng(70599);
  auto yes = std::make_shared<core::GniInstance>(core::gniYesInstance(6, rng));
  const std::uint64_t offset = info.seedOffset;
  return std::make_unique<LambdaCell>(
      info, [params, protocol, yes, offset](std::uint64_t lo, std::uint64_t hi,
                                            const TrialConfig& config) {
        return estimateAcceptanceRange(
            *protocol, *yes,
            [&](std::size_t) { return std::make_unique<core::HonestGniProver>(*params); },
            lo, hi, cellConfig(config, offset));
      });
}

std::unique_ptr<Cell> makeGniGeneral(const CellInfo& info) {
  util::Rng setup(706);
  auto params = std::make_shared<core::GniGeneralParams>(
      core::GniGeneralParams::choose(6, setup));
  auto protocol = std::make_shared<core::GniGeneralProtocol>(*params);
  util::Rng rng(70699);
  auto yes = std::make_shared<core::GniInstance>(core::gniGeneralYesInstance(6, rng));
  const std::uint64_t offset = info.seedOffset;
  return std::make_unique<LambdaCell>(
      info, [params, protocol, yes, offset](std::uint64_t lo, std::uint64_t hi,
                                            const TrialConfig& config) {
        return estimateAcceptanceRange(
            *protocol, *yes,
            [&](std::size_t) {
              return std::make_unique<core::HonestGniGeneralProver>(*params);
            },
            lo, hi, cellConfig(config, offset));
      });
}

}  // namespace

std::span<const CellInfo> cells() { return kCells; }

const CellInfo* findCell(std::string_view name) {
  for (const CellInfo& cell : kCells) {
    if (cell.name == name) return &cell;
  }
  return nullptr;
}

TrialStats Cell::run(const TrialConfig& config, std::size_t trialLimit,
                     std::vector<TrialOutcome>* outcomes) const {
  const std::size_t trials =
      trialLimit > 0 ? trialLimit : info_.trials;
  const auto started = std::chrono::steady_clock::now();
  std::vector<TrialOutcome> results = runRange(0, trials, config);
  TrialStats stats = foldOutcomes(results);
  stats.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  if (outcomes) *outcomes = std::move(results);
  return stats;
}

std::unique_ptr<Cell> makeCell(std::string_view name) {
  const CellInfo* info = findCell(name);
  if (info == nullptr) {
    throw std::invalid_argument("workload::makeCell: unknown cell '" +
                                std::string(name) + "'");
  }
  if (name == "sym_dmam_p1") return makeSymDmamP1(*info);
  if (name == "sym_dam_p2") return makeSymDamP2(*info);
  if (name == "dsym_dam") return makeDsymDam(*info);
  if (name == "sym_input") return makeSymInput(*info);
  if (name == "gni_amam") return makeGniAmam(*info);
  return makeGniGeneral(*info);
}

}  // namespace dip::sim::workload
