#include "sim/throughput.hpp"

#include <array>
#include <string>
#include <utility>

#include "hash/batch_eval.hpp"
#include "sim/workload.hpp"

namespace dip::sim {

namespace {

// The no-win list behind scalarPreferred(): protocols whose committed
// baseline speedup fell below 1.0 run scalar even under the batch engine.
// Deliberately empty while every cell wins; a regressing cell gets its
// stable identifier added here (and check_throughput.py enforces that a
// sub-1.0 cell is either pinned or fixed).
constexpr std::array<std::string_view, 0> kScalarPreferred{};

}  // namespace

bool scalarPreferred(std::string_view protocol) {
  for (std::string_view name : kScalarPreferred) {
    if (name == protocol) return true;
  }
  return false;
}

std::vector<ThroughputCell> runThroughputWorkload(const TrialConfig& config,
                                                  ThroughputSelection select) {
  // The cells themselves live in the workload registry (sim/workload.*) so
  // the distributed substrate shards the very same workloads; this function
  // keeps the per-cell engine-choice bookkeeping that the throughput bench
  // and its regression gate report on.
  std::vector<ThroughputCell> cells;
  cells.reserve(workload::cells().size());
  for (const workload::CellInfo& info : workload::cells()) {
    if (info.gni ? !select.gni : !select.fast) continue;
    const bool wantBatch = hash::batchEnabled();
    const bool fallback = wantBatch && scalarPreferred(info.name);
    if (fallback) hash::setBatchEnabled(false);
    TrialStats stats = workload::makeCell(info.name)->run(config);
    if (fallback) hash::setBatchEnabled(true);
    cells.push_back({std::string(info.name), std::move(stats),
                     fallback ? "scalar-fallback" : (wantBatch ? "batch" : "scalar")});
  }
  return cells;
}

}  // namespace dip::sim
