#include "sim/throughput.hpp"

#include <array>
#include <memory>
#include <utility>

#include "core/dsym_dam.hpp"
#include "core/gni_amam.hpp"
#include "core/gni_general.hpp"
#include "core/sym_dam.hpp"
#include "core/sym_dmam.hpp"
#include "core/sym_input.hpp"
#include "graph/generators.hpp"
#include "hash/batch_eval.hpp"
#include "hash/linear_hash.hpp"
#include "sim/acceptance.hpp"
#include "util/rng.hpp"

namespace dip::sim {

namespace {

TrialConfig cellConfig(const TrialConfig& base, std::uint64_t offset) {
  TrialConfig config = base;
  config.masterSeed = base.masterSeed + offset;
  return config;
}

// The no-win list behind scalarPreferred(): protocols whose committed
// baseline speedup fell below 1.0 run scalar even under the batch engine.
// Deliberately empty while every cell wins; a regressing cell gets its
// stable identifier added here (and check_throughput.py enforces that a
// sub-1.0 cell is either pinned or fixed).
constexpr std::array<std::string_view, 0> kScalarPreferred{};

// Runs one cell body with the per-protocol engine choice applied and
// records which engine actually ran.
template <typename Body>
void runCell(std::vector<ThroughputCell>& cells, const char* name, Body&& body) {
  const bool wantBatch = hash::batchEnabled();
  const bool fallback = wantBatch && scalarPreferred(name);
  if (fallback) hash::setBatchEnabled(false);
  TrialStats stats = std::forward<Body>(body)();
  if (fallback) hash::setBatchEnabled(true);
  cells.push_back({name, std::move(stats),
                   fallback ? "scalar-fallback" : (wantBatch ? "batch" : "scalar")});
}

}  // namespace

bool scalarPreferred(std::string_view protocol) {
  for (std::string_view name : kScalarPreferred) {
    if (name == protocol) return true;
  }
  return false;
}

std::vector<ThroughputCell> runThroughputWorkload(const TrialConfig& config,
                                                  ThroughputSelection select) {
  std::vector<ThroughputCell> cells;
  cells.reserve(6);
  if (select.fast) {
    // Large enough that hashing the n x n matrix dominates the trial; this
    // is the cell where the batch engine's row factorization shows up most.
    const std::size_t n = 48;
    util::Rng rng(701);
    core::SymDmamProtocol protocol(hash::makeProtocol1FamilyCached(n));
    graph::Graph g = graph::randomSymmetricConnected(n, rng);
    runCell(cells, "sym_dmam_p1", [&] {
      return estimateAcceptance(
          protocol, g,
          [&](std::size_t) {
            return std::make_unique<core::HonestSymDmamProver>(protocol.family());
          },
          200, cellConfig(config, 70101));
    });
  }
  if (select.fast) {
    const std::size_t n = 6;
    util::Rng rng(702);
    core::SymDamProtocol protocol(hash::makeProtocol2FamilyCached(n));
    graph::Graph g = graph::randomSymmetricConnected(n, rng);
    runCell(cells, "sym_dam_p2", [&] {
      return estimateAcceptance(
          protocol, g,
          [&](std::size_t) {
            return std::make_unique<core::HonestSymDamProver>(protocol.family());
          },
          4000, cellConfig(config, 70201));
    });
  }
  if (select.fast) {
    const std::size_t side = 8;
    util::Rng rng(703);
    graph::DSymLayout layout = graph::dsymLayout(side, 1);
    core::DSymDamProtocol protocol(layout,
                                   hash::makeProtocol1FamilyCached(layout.numVertices));
    graph::Graph f = graph::randomRigidConnected(side, rng);
    graph::Graph yes = graph::dsymInstance(f, 1);
    runCell(cells, "dsym_dam", [&] {
      return estimateAcceptance(
          protocol, yes,
          [&](std::size_t) {
            return std::make_unique<core::HonestDSymProver>(layout, protocol.family());
          },
          1500, cellConfig(config, 70301));
    });
  }
  if (select.fast) {
    const std::size_t n = 8;
    util::Rng rng(704);
    core::SymInputProtocol protocol(hash::makeProtocol1FamilyCached(n));
    core::SymInputInstance instance{graph::randomConnected(n, n / 2, rng),
                                    graph::randomSymmetricConnected(n, rng)};
    runCell(cells, "sym_input", [&] {
      return estimateAcceptance(
          protocol, instance,
          [&](std::size_t) {
            return std::make_unique<core::HonestSymInputProver>(protocol.family());
          },
          1200, cellConfig(config, 70401));
    });
  }
  if (select.gni) {
    util::Rng setup(705);
    core::GniParams params = core::GniParams::choose(6, setup);
    core::GniAmamProtocol protocol(params);
    util::Rng rng(70599);
    core::GniInstance yes = core::gniYesInstance(6, rng);
    runCell(cells, "gni_amam", [&] {
      return estimateAcceptance(
          protocol, yes,
          [&](std::size_t) { return std::make_unique<core::HonestGniProver>(params); },
          4, cellConfig(config, 70501));
    });
  }
  if (select.gni) {
    util::Rng setup(706);
    core::GniGeneralParams params = core::GniGeneralParams::choose(6, setup);
    core::GniGeneralProtocol protocol(params);
    util::Rng rng(70699);
    core::GniInstance yes = core::gniGeneralYesInstance(6, rng);
    runCell(cells, "gni_general", [&] {
      return estimateAcceptance(
          protocol, yes,
          [&](std::size_t) {
            return std::make_unique<core::HonestGniGeneralProver>(params);
          },
          2, cellConfig(config, 70601));
    });
  }
  return cells;
}

}  // namespace dip::sim
